; guess_three.s — the smallest possible system-level backtracking program.
;
; Opens a DFS exploration scope, guesses one of three extensions, prints
; 'A' + the guess, fails to backtrack, and exits once the scope is
; exhausted.  Run it with:
;
;   dune exec bin/lwsnap_cli.exe -- run examples/guess_three.s

main:
    mov   rdi, 0            ; DFS
    mov   rax, 8            ; sys_guess_strategy
    syscall
    cmp   rax, 0
    je    done              ; scope exhausted: fall through to exit

    mov   rdi, 3            ; three extensions
    mov   rax, 6            ; sys_guess
    syscall

    add   rax, 'A'          ; turn the extension number into a letter
    mov   rcx, buf
    stb   [rcx], rax
    stib  [rcx+1], 10       ; newline
    mov   rdi, 1
    mov   rsi, buf
    mov   rdx, 2
    mov   rax, 1            ; sys_write
    syscall

    mov   rax, 7            ; sys_guess_fail: explore the next extension
    syscall

done:
    mov   rdi, 0
    mov   rax, 0            ; sys_exit
    syscall

.align 4096
buf:
.zeros 8
