(* The interpreter: programs, flags, stack discipline, faults, fuel. *)

module As = Mem.Addr_space
module Cpu = Vcpu.Cpu
module Interp = Vcpu.Interp
module R = Isa.Reg
open Isa.Asm

let check = Alcotest.check

(* Assemble, load at the default origin, return (cpu, aspace). *)
let load items =
  let image = assemble ~entry:"main" items in
  let aspace = As.create (Mem.Phys_mem.create ()) in
  let len = String.length image.code in
  let pages = (len + 4095) / 4096 in
  for p = 0 to pages - 1 do
    let off = p * 4096 in
    As.map_data aspace ~vpn:(Mem.Page.vpn_of_addr (image.origin + off))
      (String.sub image.code off (min 4096 (len - off)))
  done;
  (* a stack page *)
  for vpn = 100 to 103 do
    As.map_zero aspace ~vpn
  done;
  let cpu = Cpu.create ~entry:image.entry in
  Cpu.set cpu R.rsp (104 * 4096);
  cpu, aspace

let run_to_halt items =
  let cpu, aspace = load items in
  match Interp.run cpu aspace ~fuel:1_000_000 with
  | Interp.Halt -> cpu, aspace
  | other -> Alcotest.failf "expected halt, got %a" Interp.pp_vmexit other

let exit_testable = Alcotest.testable Interp.pp_vmexit ( = )

let arithmetic () =
  let cpu, _ =
    run_to_halt
      [ label "main";
        mov R.rax (i 10);
        add R.rax (i 32);        (* 42 *)
        mov R.rbx (r R.rax);
        imul R.rbx (i 10);       (* 420 *)
        mov R.rcx (r R.rbx);
        div R.rcx (i 42);        (* 10 *)
        mov R.rdx (r R.rbx);
        rem R.rdx (i 100);       (* 20 *)
        mov R.rsi (i 0b1100);
        and_ R.rsi (i 0b1010);   (* 0b1000 *)
        mov R.rdi (i 1);
        shl R.rdi (i 10);        (* 1024 *)
        neg R.rdi;               (* -1024 *)
        hlt ]
  in
  check Alcotest.int "add" 42 (Cpu.get cpu R.rax);
  check Alcotest.int "imul" 420 (Cpu.get cpu R.rbx);
  check Alcotest.int "div" 10 (Cpu.get cpu R.rcx);
  check Alcotest.int "rem" 20 (Cpu.get cpu R.rdx);
  check Alcotest.int "and" 0b1000 (Cpu.get cpu R.rsi);
  check Alcotest.int "neg shl" (-1024) (Cpu.get cpu R.rdi)

let fibonacci () =
  (* iterative fib(20) = 6765 *)
  let cpu, _ =
    run_to_halt
      [ label "main";
        mov R.rax (i 0);
        mov R.rbx (i 1);
        mov R.rcx (i 20);
        label "loop_";
        test R.rcx (r R.rcx);
        je "done_";
        mov R.rdx (r R.rbx);
        add R.rbx (r R.rax);
        mov R.rax (r R.rdx);
        dec R.rcx;
        jmp "loop_";
        label "done_";
        hlt ]
  in
  check Alcotest.int "fib 20" 6765 (Cpu.get cpu R.rax)

let recursion_factorial () =
  (* recursive factorial via the stack: fact(10) = 3628800 *)
  let cpu, _ =
    run_to_halt
      [ label "main";
        mov R.rdi (i 10);
        call "fact";
        hlt;
        label "fact";
        cmp R.rdi (i 1);
        jg "recurse";
        mov R.rax (i 1);
        ret;
        label "recurse";
        push (r R.rdi);
        dec R.rdi;
        call "fact";
        pop R.rdi;
        imul R.rax (r R.rdi);
        ret ]
  in
  check Alcotest.int "fact 10" 3628800 (Cpu.get cpu R.rax)

let memory_and_lea () =
  let cpu, _ =
    run_to_halt
      [ label "main";
        movl R.r8 "table";
        (* table[3] = 7 (byte); then read back with scaled index *)
        mov R.rcx (i 3);
        mov R.rdx (i 7);
        stb (idx R.r8 (R.rcx, 1)) R.rdx;
        ldb R.rax (Isa.Insn.mem ~base:R.r8 ~disp:3 ());
        (* lea: rbx = r8 + rcx*8 + 16 *)
        lea R.rbx (idxd R.r8 (R.rcx, 8) 16);
        sub R.rbx (r R.r8);
        (* qword store/load *)
        sti (R.r8 @+ 8) 123456;
        ld R.rdx (R.r8 @+ 8);
        hlt;
        label "table";
        zeros 64 ]
  in
  check Alcotest.int "byte store/load" 7 (Cpu.get cpu R.rax);
  check Alcotest.int "lea arithmetic" 40 (Cpu.get cpu R.rbx);
  check Alcotest.int "qword" 123456 (Cpu.get cpu R.rdx)

let conditions () =
  (* setcc across the cond space, signed and unsigned *)
  let cpu, _ =
    run_to_halt
      [ label "main";
        mov R.rax (i (-5));
        cmp R.rax (i 3);
        setcc Isa.Insn.L R.rbx;   (* -5 < 3 signed: 1 *)
        setcc Isa.Insn.B R.rcx;   (* -5 < 3 unsigned: 0 (huge vs 3) *)
        setcc Isa.Insn.NE R.rdx;  (* 1 *)
        mov R.rsi (i 7);
        cmp R.rsi (i 7);
        setcc Isa.Insn.E R.rdi;   (* 1 *)
        setcc Isa.Insn.GE R.r8;   (* 1 *)
        setcc Isa.Insn.A R.r9;    (* 0 *)
        hlt ]
  in
  check Alcotest.int "signed less" 1 (Cpu.get cpu R.rbx);
  check Alcotest.int "unsigned not-less" 0 (Cpu.get cpu R.rcx);
  check Alcotest.int "ne" 1 (Cpu.get cpu R.rdx);
  check Alcotest.int "eq" 1 (Cpu.get cpu R.rdi);
  check Alcotest.int "ge" 1 (Cpu.get cpu R.r8);
  check Alcotest.int "above(eq) = 0" 0 (Cpu.get cpu R.r9)

let alu_flags () =
  (* dec to zero sets zf; sub below zero sets sf *)
  let cpu, _ =
    run_to_halt
      [ label "main";
        mov R.rax (i 1);
        dec R.rax;
        setcc Isa.Insn.E R.rbx;  (* zf from dec *)
        sub R.rax (i 5);
        setcc Isa.Insn.S R.rcx;  (* sf from sub *)
        hlt ]
  in
  check Alcotest.int "zf after dec" 1 (Cpu.get cpu R.rbx);
  check Alcotest.int "sf after sub" 1 (Cpu.get cpu R.rcx)

let div_by_zero_faults () =
  let cpu, aspace =
    load [ label "main"; mov R.rax (i 1); mov R.rbx (i 0); div R.rax (r R.rbx); hlt ]
  in
  match Interp.run cpu aspace ~fuel:100 with
  | Interp.Fault (Interp.Div_by_zero _) -> ()
  | other -> Alcotest.failf "expected div fault, got %a" Interp.pp_vmexit other

let bad_shift_faults () =
  let cpu, aspace =
    load [ label "main"; mov R.rax (i 1); shl R.rax (i 63); hlt ]
  in
  match Interp.run cpu aspace ~fuel:100 with
  | Interp.Fault (Interp.Bad_shift { count = 63; _ }) -> ()
  | other -> Alcotest.failf "expected shift fault, got %a" Interp.pp_vmexit other

let page_fault_reports_rip () =
  let cpu, aspace =
    load [ label "main"; mov R.rax (i 0x900000); ld R.rbx (R.rax @+ 0); hlt ]
  in
  match Interp.run cpu aspace ~fuel:100 with
  | Interp.Fault (Interp.Page_fault { rip; addr; access = As.Read }) ->
    check Alcotest.int "fault addr" 0x900000 addr;
    check Alcotest.int "rip at faulting insn" rip cpu.Cpu.rip
  | other -> Alcotest.failf "expected page fault, got %a" Interp.pp_vmexit other

let fuel_is_resumable () =
  let cpu, aspace =
    load
      [ label "main";
        mov R.rax (i 0);
        label "spin";
        inc R.rax;
        cmp R.rax (i 1000);
        jl "spin";
        hlt ]
  in
  (* run in tiny fuel slices; must still converge to the same answer *)
  let rec drive () =
    match Interp.run cpu aspace ~fuel:17 with
    | Interp.Out_of_fuel -> drive ()
    | Interp.Halt -> ()
    | other -> Alcotest.failf "unexpected %a" Interp.pp_vmexit other
  in
  drive ();
  check Alcotest.int "converged" 1000 (Cpu.get cpu R.rax)

let syscall_advances_rip () =
  let cpu, aspace = load [ label "main"; syscall; hlt ] in
  check exit_testable "syscall exit" Interp.Syscall (Interp.run cpu aspace ~fuel:10);
  (* resuming must execute the hlt, not the syscall again *)
  check exit_testable "resume hits hlt" Interp.Halt (Interp.run cpu aspace ~fuel:10)

let save_load_roundtrip () =
  let cpu, _ = run_to_halt [ label "main"; mov R.rax (i 11); hlt ] in
  let saved = Cpu.save cpu in
  Cpu.set cpu R.rax 99;
  cpu.Cpu.rip <- 0;
  Cpu.load cpu saved;
  check Alcotest.int "rax restored" 11 (Cpu.get cpu R.rax);
  check Alcotest.int "rip restored" (Cpu.saved_rip saved) cpu.Cpu.rip

let retired_counts () =
  let cpu, _ = run_to_halt [ label "main"; nop; nop; nop; hlt ] in
  check Alcotest.int "retired" 4 cpu.Cpu.retired

(* Decode-cache soundness: the same guest under all three dispatch modes
   (no cache, per-instruction cache, basic-block superinstructions) must
   retire the same instruction count into the same terminal state.  The
   address space is sealed after load (as the libOS does) so cached runs
   actually cache from the first fetch. *)
let icache_of_mode = function
  | `Off -> None
  | `Insn -> Some (Interp.create_icache ~dispatch:Interp.Insn ())
  | `Block -> Some (Interp.create_icache ~dispatch:Interp.Block ())

let mode_name = function `Off -> "off" | `Insn -> "insn" | `Block -> "block"

let run_mode ?(fuel = 1_000_000) items mode =
  let cpu, aspace = load items in
  As.seal aspace;
  let icache = icache_of_mode mode in
  let e = Interp.run ?icache cpu aspace ~fuel in
  e, cpu, aspace

let compare_cpus name (cpu_ref : Cpu.t) (cpu : Cpu.t) =
  check Alcotest.int (name ^ ": same retired count") cpu_ref.Cpu.retired
    cpu.Cpu.retired;
  check Alcotest.int (name ^ ": same rip") cpu_ref.Cpu.rip cpu.Cpu.rip;
  List.iter
    (fun reg ->
      check Alcotest.int
        (Printf.sprintf "%s: same %s" name (R.name reg))
        (Cpu.get cpu_ref reg) (Cpu.get cpu reg))
    R.all

let run_both ?fuel items =
  let (e_off, cpu_off, _) = run_mode ?fuel items `Off in
  List.iter
    (fun mode ->
      let e, cpu, _ = run_mode ?fuel items mode in
      let name = mode_name mode in
      check exit_testable (name ^ ": same vmexit") e_off e;
      compare_cpus name cpu_off cpu)
    [ `Insn; `Block ]

let icache_sound_adjacent_data () =
  (* writable data on the page right after the code page: the E9 layout
     discipline.  The loop hammers the data page; code frames stay in
     retired generations, so cached decode must stay byte-for-byte true. *)
  run_both
    [ label "main";
      movl R.r8 "counter";
      mov R.rax (i 0);
      mov R.rcx (i 200);
      label "loop_";
      sti (R.r8 @+ 0) 0;
      st (R.r8 @+ 0) R.rcx;
      ld R.rbx (R.r8 @+ 0);
      add R.rax (r R.rbx);
      dec R.rcx;
      jg "loop_";
      hlt;
      align 4096;
      label "counter";
      zeros 8 ]

let icache_sound_same_page_data () =
  (* data deliberately on the SAME page as the code: every store COWs the
     sealed code frame, so cached entries for the old frame must not be
     replayed for the fresh one.  Slower (the E9 cliff), never unsound. *)
  run_both
    [ label "main";
      movl R.r8 "cell";
      mov R.rax (i 0);
      mov R.rcx (i 50);
      label "loop_";
      st (R.r8 @+ 0) R.rcx;
      ld R.rbx (R.r8 @+ 0);
      add R.rax (r R.rbx);
      dec R.rcx;
      jg "loop_";
      hlt;
      label "cell";
      zeros 8 ]

(* {2 Basic-block superinstruction dispatch} *)

let block_branch_into_middle () =
  (* The fall-through pass fuses one block from "head" through the
     backward branch; the branch then re-enters at "mid", the middle of
     that cached block, which must dispatch as its own block — not replay
     the head's fused prefix. *)
  run_both
    [ label "main";
      mov R.rax (i 0);
      mov R.rcx (i 3);
      label "head";
      add R.rax (i 1);
      add R.rax (i 10);
      label "mid";
      add R.rax (i 100);
      dec R.rcx;
      jg "mid";
      hlt ]

let block_across_page_edge () =
  (* A straight-line run long enough to cross the page-edge guard band
     and continue onto the next code page: fusion must stop at the band,
     the band itself single-steps, and a fresh block starts on the next
     page — retiring exactly the same state as per-instruction mode. *)
  run_both
    ([ label "main"; mov R.rax (i 0) ]
    @ List.concat (List.init 700 (fun k -> [ add R.rax (i (k land 7)) ]))
    @ [ hlt ])

let block_fault_mid_block () =
  (* Instruction k of a fused straight-line block faults: rip must
     address the faulting store, the prefix must have retired, and after
     mapping the page every mode resumes to the same halt state. *)
  let items =
    [ label "main";
      mov R.r8 (i 0);
      mov R.rax (i 1);
      add R.rax (i 2);
      st (R.r8 @+ 0) R.rax;  (* store to unmapped vpn 0: faults *)
      add R.rax (i 100);
      hlt ]
  in
  List.iter
    (fun mode ->
      let (e_off, cpu_off, as_off) = run_mode items `Off in
      (match e_off with
      | Interp.Fault (Interp.Page_fault { addr = 0; _ }) -> ()
      | other ->
        Alcotest.failf "expected page fault, got %a" Interp.pp_vmexit other);
      let e, cpu, aspace = run_mode items mode in
      let name = mode_name mode in
      check exit_testable (name ^ ": same fault") e_off e;
      compare_cpus (name ^ " at fault") cpu_off cpu;
      (* resumable: map the page and both executions converge on halt *)
      As.map_zero aspace ~vpn:0;
      As.map_zero as_off ~vpn:0;
      let resume c a = Interp.run c a ~fuel:1_000 in
      check exit_testable "off: resumes to halt" Interp.Halt
        (resume cpu_off as_off);
      check exit_testable (name ^ ": resumes to halt") Interp.Halt
        (resume cpu aspace);
      compare_cpus (name ^ " after resume") cpu_off cpu)
    [ `Insn; `Block ]

let block_fuel_exhaustion_mid_block () =
  (* Out-of-fuel inside a fused block: exactly [fuel] instructions retire
     (never the whole block), and the run is resumable to the same end
     state — the no-overshoot property replay depends on. *)
  let items =
    [ label "main"; mov R.rax (i 0) ]
    @ List.concat (List.init 40 (fun _ -> [ add R.rax (i 1) ]))
    @ [ hlt ]
  in
  List.iter
    (fun fuel ->
      let (e_off, cpu_off, _) = run_mode ~fuel items `Off in
      check exit_testable "off runs out of fuel" Interp.Out_of_fuel e_off;
      check Alcotest.int "off retires exactly fuel" fuel cpu_off.Cpu.retired;
      let e, cpu, aspace = run_mode ~fuel items `Block in
      check exit_testable "block runs out of fuel" Interp.Out_of_fuel e;
      compare_cpus (Printf.sprintf "block at fuel %d" fuel) cpu_off cpu;
      check exit_testable "block resumes to halt" Interp.Halt
        (Interp.run cpu aspace ~fuel:1_000))
    [ 3; 7; 17 ]

let block_self_modifying_code () =
  (* A fused store overwrites a later instruction of its own block: the
     store COWs the sealed code frame, so block dispatch must split at
     the store and re-fetch from the fresh frame instead of replaying the
     stale fused tail.  All modes must agree on whatever the patched
     bytes decode to. *)
  run_both
    [ label "main";
      movl R.r8 "target";
      mov R.rax (i 5);
      sti (R.r8 @+ 0) 0;
      label "target";
      add R.rax (i 1);  (* overwritten before it executes *)
      hlt ]

let block_invalidation_on_generation_retire () =
  (* Rewrite the whole code page between runs (COW into a fresh frame,
     then seal so the new frame retires and becomes cacheable): the same
     icache must serve the new code, because block tables are keyed by
     frame id and a retired frame is never written in place. *)
  let prog n = assemble ~entry:"main" [ label "main"; mov R.rax (i n); hlt ] in
  let image1 = prog 1 in
  let aspace = As.create (Mem.Phys_mem.create ()) in
  let vpn = Mem.Page.vpn_of_addr image1.origin in
  As.map_data aspace ~vpn image1.code;
  As.seal aspace;
  let cache = Interp.create_icache () in
  let run () =
    let cpu = Cpu.create ~entry:image1.entry in
    check exit_testable "halts" Interp.Halt
      (Interp.run ~icache:cache cpu aspace ~fuel:100);
    Cpu.get cpu R.rax
  in
  check Alcotest.int "first program" 1 (run ());
  check Alcotest.int "cached rerun" 1 (run ());
  As.write_bytes aspace ~addr:image1.origin (prog 2).code;
  As.seal aspace;
  check Alcotest.int "rewritten program" 2 (run ());
  let fuses, hits, _ = Interp.block_counts cache in
  check Alcotest.bool "fused both frames" true (fuses >= 2);
  check Alcotest.bool "served the stable frame from cache" true (hits >= 1)

let shared_page_never_cached () =
  (* Explicitly-shared pages are written in place on every path — same
     frame, same id — so neither the decode cache nor the block cache may
     key on them.  Rewriting the shared code page in place must take
     effect immediately under every dispatch mode and a warm cache. *)
  let prog n = assemble ~entry:"main" [ label "main"; mov R.rax (i n); hlt ] in
  let image1 = prog 1 in
  List.iter
    (fun mode ->
      let aspace = As.create (Mem.Phys_mem.create ()) in
      let vpn = Mem.Page.vpn_of_addr image1.origin in
      As.map_shared aspace ~vpn;
      As.write_bytes aspace ~addr:image1.origin image1.code;
      As.seal aspace;
      let icache = icache_of_mode mode in
      let run () =
        let cpu = Cpu.create ~entry:image1.entry in
        check exit_testable (mode_name mode ^ ": halts") Interp.Halt
          (Interp.run ?icache cpu aspace ~fuel:100);
        Cpu.get cpu R.rax
      in
      check Alcotest.int (mode_name mode ^ ": first program") 1 (run ());
      As.write_bytes aspace ~addr:image1.origin (prog 2).code;
      check Alcotest.int
        (mode_name mode ^ ": in-place rewrite visible")
        2 (run ()))
    [ `Off; `Insn; `Block ]

let tests =
  [ Alcotest.test_case "arithmetic" `Quick arithmetic;
    Alcotest.test_case "fibonacci loop" `Quick fibonacci;
    Alcotest.test_case "recursive factorial" `Quick recursion_factorial;
    Alcotest.test_case "memory and lea" `Quick memory_and_lea;
    Alcotest.test_case "conditions" `Quick conditions;
    Alcotest.test_case "ALU flags" `Quick alu_flags;
    Alcotest.test_case "div by zero faults" `Quick div_by_zero_faults;
    Alcotest.test_case "bad shift faults" `Quick bad_shift_faults;
    Alcotest.test_case "page fault reports rip" `Quick page_fault_reports_rip;
    Alcotest.test_case "fuel is resumable" `Quick fuel_is_resumable;
    Alcotest.test_case "syscall advances rip" `Quick syscall_advances_rip;
    Alcotest.test_case "save/load roundtrip" `Quick save_load_roundtrip;
    Alcotest.test_case "retired counts" `Quick retired_counts;
    Alcotest.test_case "icache sound: adjacent data page" `Quick
      icache_sound_adjacent_data;
    Alcotest.test_case "icache sound: data on the code page" `Quick
      icache_sound_same_page_data;
    Alcotest.test_case "block: branch into the middle of a cached block"
      `Quick block_branch_into_middle;
    Alcotest.test_case "block: straight line across the page edge" `Quick
      block_across_page_edge;
    Alcotest.test_case "block: fault at instruction k of a fused block"
      `Quick block_fault_mid_block;
    Alcotest.test_case "block: fuel exhaustion mid-block" `Quick
      block_fuel_exhaustion_mid_block;
    Alcotest.test_case "block: self-modifying store splits the block" `Quick
      block_self_modifying_code;
    Alcotest.test_case "block: generation retire invalidates by frame id"
      `Quick block_invalidation_on_generation_retire;
    Alcotest.test_case "shared page is never decode- or block-cached" `Quick
      shared_page_never_cached ]
