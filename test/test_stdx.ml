(* Substrate data structures: Patricia tries, pairing heaps, PRNG, vectors. *)

module Ptmap = Stdx.Ptmap
module Pheap = Stdx.Pheap
module Prng = Stdx.Prng
module Vec = Stdx.Vec
module Intset = Stdx.Intset
module Codec = Stdx.Codec

let check = Alcotest.check
let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* {1 Ptmap} *)

let ptmap_basic () =
  let m = Ptmap.of_list [ 1, "a"; 2, "b"; 3, "c" ] in
  check (Alcotest.option Alcotest.string) "find 2" (Some "b") (Ptmap.find_opt 2 m);
  check Alcotest.int "cardinal" 3 (Ptmap.cardinal m);
  let m = Ptmap.remove 2 m in
  check (Alcotest.option Alcotest.string) "removed" None (Ptmap.find_opt 2 m);
  check Alcotest.bool "mem 1" true (Ptmap.mem 1 m);
  check Alcotest.bool "empty" true (Ptmap.is_empty Ptmap.empty)

let ptmap_overwrite () =
  let m = Ptmap.add 7 "x" (Ptmap.add 7 "y" Ptmap.empty) in
  check Alcotest.int "single binding" 1 (Ptmap.cardinal m);
  check (Alcotest.option Alcotest.string) "latest wins" (Some "x") (Ptmap.find_opt 7 m)

let ptmap_negative_keys () =
  let m = Ptmap.of_list [ -5, 1; 3, 2; min_int, 3; max_int, 4 ] in
  check (Alcotest.option Alcotest.int) "neg" (Some 1) (Ptmap.find_opt (-5) m);
  check (Alcotest.option Alcotest.int) "min_int" (Some 3) (Ptmap.find_opt min_int m);
  check (Alcotest.option Alcotest.int) "max_int" (Some 4) (Ptmap.find_opt max_int m);
  check Alcotest.int "cardinal" 4 (Ptmap.cardinal m)

let ptmap_update () =
  let m = Ptmap.of_list [ 1, 10 ] in
  let m = Ptmap.update 1 (Option.map (( + ) 5)) m in
  check (Alcotest.option Alcotest.int) "updated" (Some 15) (Ptmap.find_opt 1 m);
  let m = Ptmap.update 1 (fun _ -> None) m in
  check Alcotest.bool "deleted" false (Ptmap.mem 1 m);
  let m = Ptmap.update 9 (fun _ -> Some 42) m in
  check (Alcotest.option Alcotest.int) "inserted" (Some 42) (Ptmap.find_opt 9 m)

let ptmap_union () =
  let a = Ptmap.of_list [ 1, 1; 2, 2; 3, 3 ] in
  let b = Ptmap.of_list [ 3, 30; 4, 40 ] in
  let u = Ptmap.union (fun _ x y -> x + y) a b in
  check (Alcotest.option Alcotest.int) "left only" (Some 1) (Ptmap.find_opt 1 u);
  check (Alcotest.option Alcotest.int) "right only" (Some 40) (Ptmap.find_opt 4 u);
  check (Alcotest.option Alcotest.int) "combined" (Some 33) (Ptmap.find_opt 3 u)

let ptmap_sym_diff () =
  let a = Ptmap.of_list [ 1, 1; 2, 2; 3, 3 ] in
  let b = Ptmap.add 2 20 (Ptmap.remove 3 a) in
  let diff = Ptmap.sym_diff ( = ) a b in
  check Alcotest.int "two differences" 2 (List.length diff);
  check (Alcotest.list Alcotest.int) "no self diff" []
    (List.map (fun (k, _, _) -> k) (Ptmap.sym_diff ( = ) a a))

(* model-based property: a Ptmap behaves like a Hashtbl under a random
   script of add/remove operations *)
let ptmap_model =
  let gen = QCheck2.Gen.(list (pair (int_range (-100) 100) (option small_int))) in
  qtest "ptmap agrees with Hashtbl model" gen (fun script ->
      let tbl = Hashtbl.create 32 in
      let m =
        List.fold_left
          (fun m (k, op) ->
            match op with
            | Some v ->
              Hashtbl.replace tbl k v;
              Ptmap.add k v m
            | None ->
              Hashtbl.remove tbl k;
              Ptmap.remove k m)
          Ptmap.empty script
      in
      Hashtbl.length tbl = Ptmap.cardinal m
      && Hashtbl.fold (fun k v acc -> acc && Ptmap.find_opt k m = Some v) tbl true)

let ptmap_union_model =
  let gen =
    QCheck2.Gen.(pair (list (pair (int_range 0 63) small_int))
                   (list (pair (int_range 0 63) small_int)))
  in
  qtest "union = right-biased merge of models" gen (fun (la, lb) ->
      let a = Ptmap.of_list la and b = Ptmap.of_list lb in
      let u = Ptmap.union (fun _ _ y -> y) a b in
      List.for_all
        (fun k ->
          let expect =
            match Ptmap.find_opt k b with
            | Some v -> Some v
            | None -> Ptmap.find_opt k a
          in
          Ptmap.find_opt k u = expect)
        (List.init 64 Fun.id))

(* {1 Pheap} *)

let pheap_order () =
  let h =
    List.fold_left
      (fun h (p, v) -> Pheap.insert ~prio:p v h)
      Pheap.empty
      [ 3.0, "c"; 1.0, "a"; 2.0, "b"; 1.5, "ab" ]
  in
  let drained = List.map snd (Pheap.to_sorted_list h) in
  check (Alcotest.list Alcotest.string) "sorted" [ "a"; "ab"; "b"; "c" ] drained

let pheap_fifo_ties () =
  let h =
    List.fold_left (fun h v -> Pheap.insert ~prio:1.0 v h) Pheap.empty [ 1; 2; 3 ]
  in
  check (Alcotest.list Alcotest.int) "FIFO on equal priorities" [ 1; 2; 3 ]
    (List.map snd (Pheap.to_sorted_list h))

let pheap_delete_max () =
  let h =
    List.fold_left
      (fun h (p, v) -> Pheap.insert ~prio:p v h)
      Pheap.empty [ 1.0, "a"; 5.0, "worst"; 3.0, "b" ]
  in
  match Pheap.delete_max h with
  | Some ((p, v), rest) ->
    check (Alcotest.float 0.0) "max prio" 5.0 p;
    check Alcotest.string "max value" "worst" v;
    check Alcotest.int "size" 2 (Pheap.size rest)
  | None -> Alcotest.fail "expected a max"

let pheap_model =
  let gen = QCheck2.Gen.(list (pair (float_bound_inclusive 100.0) small_int)) in
  qtest "pheap drains in sorted order" gen (fun entries ->
      let h =
        List.fold_left (fun h (p, v) -> Pheap.insert ~prio:p v h) Pheap.empty entries
      in
      let drained = List.map fst (Pheap.to_sorted_list h) in
      List.sort compare drained = drained
      && List.length drained = List.length entries)

(* {1 Prng} *)

let prng_deterministic () =
  let a = Prng.create ~seed:99 and b = Prng.create ~seed:99 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.next a) (Prng.next b)
  done

let prng_bounds () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 10_000 do
    let f = Prng.float rng 1.0 in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of bounds"
  done

let prng_shuffle_permutes () =
  let rng = Prng.create ~seed:3 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 Fun.id) sorted

(* {1 Vec} *)

let vec_push_pop () =
  let v = Vec.create ~dummy:0 () in
  for k = 0 to 99 do
    ignore (Vec.push v k)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get" 42 (Vec.get v 42);
  check (Alcotest.option Alcotest.int) "pop" (Some 99) (Vec.pop v);
  Vec.truncate v 10;
  check Alcotest.int "truncated" 10 (Vec.length v);
  check (Alcotest.list Alcotest.int) "to_list" (List.init 10 Fun.id) (Vec.to_list v)

let vec_bounds () =
  let v = Vec.create ~dummy:0 () in
  ignore (Vec.push v 1);
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index 1 out of bounds [0,1)")
    (fun () -> ignore (Vec.get v 1))

(* {1 Codec} *)

let roundtrip s = Codec.decompress (Codec.compress s)

let codec_edges () =
  List.iter
    (fun s -> check Alcotest.string "roundtrip" s (roundtrip s))
    [ ""; "a"; "ab"; "abc"; "aaaa"; String.make 4096 '\000';
      String.make 4096 'z'; "abcabcabcabcabc" ];
  (* an all-zero page must actually compress, hard *)
  let z = Codec.compress (String.make 4096 '\000') in
  if String.length z > 600 then
    Alcotest.failf "zero page compressed to %d bytes" (String.length z)

let codec_incompressible_bound () =
  (* pseudo-random bytes: stored fallback must cap expansion at 6 bytes *)
  let rng = Prng.create ~seed:11 in
  let s = String.init 4096 (fun _ -> Char.chr (Prng.int rng 256)) in
  let c = Codec.compress s in
  check Alcotest.string "roundtrip" s (roundtrip s);
  if String.length c > String.length s + 6 then
    Alcotest.failf "expanded to %d bytes" (String.length c)

let codec_corrupt () =
  let expect_raises s =
    match Codec.decompress s with
    | _ -> Alcotest.failf "decompress accepted corrupt input %S" s
    | exception Invalid_argument _ -> ()
  in
  expect_raises "";
  expect_raises "\002\000" (* bad method byte *);
  expect_raises "\000\005abc" (* stored length mismatch *);
  expect_raises "\001\004\001\000" (* match before start of output *);
  expect_raises (String.sub (Codec.compress (String.make 4096 '\000')) 0 4)

(* compressible-by-construction input: repeated short records with noise *)
let gen_page =
  QCheck2.Gen.(
    let* kind = int_range 0 2 in
    match kind with
    | 0 -> string_size ~gen:char (int_range 0 5000)
    | 1 ->
      (* zero page with a few dirty bytes *)
      let* edits = list_size (int_range 0 20) (pair (int_range 0 4095) char) in
      let b = Bytes.make 4096 '\000' in
      List.iter (fun (i, c) -> Bytes.set b i c) edits;
      return (Bytes.unsafe_to_string b)
    | _ ->
      let* record = string_size ~gen:char (int_range 1 16) in
      let* reps = int_range 1 400 in
      return (String.concat "" (List.init reps (fun _ -> record))))

let codec_roundtrip_prop =
  qtest ~count:300 "codec roundtrip on random pages" gen_page (fun s ->
      roundtrip s = s)

(* {1 Intset} *)

let intset_ops () =
  let s = Intset.of_list [ 5; 1; 5; 9 ] in
  check Alcotest.int "dedup" 3 (Intset.cardinal s);
  check Alcotest.bool "mem" true (Intset.mem 9 s);
  check Alcotest.bool "subset" true (Intset.subset (Intset.of_list [ 1; 5 ]) s);
  check Alcotest.bool "not subset" false (Intset.subset s (Intset.of_list [ 1; 5 ]));
  check (Alcotest.list Alcotest.int) "union"
    [ 1; 2; 5; 9 ]
    (List.sort compare (Intset.elements (Intset.union s (Intset.of_list [ 2; 1 ]))))

let tests =
  [ Alcotest.test_case "ptmap basic" `Quick ptmap_basic;
    Alcotest.test_case "ptmap overwrite" `Quick ptmap_overwrite;
    Alcotest.test_case "ptmap negative keys" `Quick ptmap_negative_keys;
    Alcotest.test_case "ptmap update" `Quick ptmap_update;
    Alcotest.test_case "ptmap union" `Quick ptmap_union;
    Alcotest.test_case "ptmap sym_diff" `Quick ptmap_sym_diff;
    ptmap_model;
    ptmap_union_model;
    Alcotest.test_case "pheap order" `Quick pheap_order;
    Alcotest.test_case "pheap fifo ties" `Quick pheap_fifo_ties;
    Alcotest.test_case "pheap delete_max" `Quick pheap_delete_max;
    pheap_model;
    Alcotest.test_case "prng deterministic" `Quick prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick prng_bounds;
    Alcotest.test_case "prng shuffle permutes" `Quick prng_shuffle_permutes;
    Alcotest.test_case "vec push/pop" `Quick vec_push_pop;
    Alcotest.test_case "vec bounds" `Quick vec_bounds;
    Alcotest.test_case "codec edge cases" `Quick codec_edges;
    Alcotest.test_case "codec incompressible bound" `Quick codec_incompressible_bound;
    Alcotest.test_case "codec corrupt input" `Quick codec_corrupt;
    codec_roundtrip_prop;
    Alcotest.test_case "intset ops" `Quick intset_ops ]
