(* Search-strategy frontiers: scheduling orders, bounds, eviction. *)

module F = Search.Frontier

let check = Alcotest.check

let meta ?(depth = 0) ?(hint = 0) () = { F.depth; hint }

let push_all f entries = f.F.push_batch entries

let drain f =
  let rec go acc =
    match f.F.pop () with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let dfs_explores_first_extension_first () =
  let f = F.dfs () in
  push_all f [ meta (), "a0"; meta (), "a1"; meta (), "a2" ];
  check (Alcotest.option Alcotest.string) "extension 0 first" (Some "a0") (f.F.pop ());
  (* children pushed during a0 are explored before a1 *)
  push_all f [ meta ~depth:1 (), "b0"; meta ~depth:1 (), "b1" ];
  check (Alcotest.list Alcotest.string) "depth first order" [ "b0"; "b1"; "a1"; "a2" ]
    (drain f)

let bfs_is_fifo () =
  let f = F.bfs () in
  push_all f [ meta (), "a0"; meta (), "a1" ];
  check (Alcotest.option Alcotest.string) "first in" (Some "a0") (f.F.pop ());
  push_all f [ meta ~depth:1 (), "b0" ];
  check (Alcotest.list Alcotest.string) "level order" [ "a1"; "b0" ] (drain f)

let astar_orders_by_f () =
  let f = F.astar () in
  push_all f
    [ meta ~depth:5 ~hint:10 (), "f15";
      meta ~depth:1 ~hint:2 (), "f3";
      meta ~depth:2 ~hint:2 (), "f4";
      meta ~depth:0 ~hint:3 (), "f3b" ];
  check (Alcotest.list Alcotest.string) "ascending f, FIFO ties"
    [ "f3"; "f3b"; "f4"; "f15" ] (drain f)

let sma_bounds_memory () =
  let f = F.sma ~capacity:3 () in
  push_all f
    (List.init 10 (fun k -> meta ~depth:0 ~hint:k (), Printf.sprintf "h%d" k));
  check Alcotest.bool "bounded" true (f.F.length () <= 3);
  let evicted = f.F.evicted () in
  check Alcotest.int "evictions reported" 7 (List.length evicted);
  check (Alcotest.list Alcotest.string) "evictions drained" [] (f.F.evicted ());
  (* the best survive *)
  check (Alcotest.list Alcotest.string) "best kept" [ "h0"; "h1"; "h2" ] (drain f)

let zero_capacity_rejected () =
  Alcotest.check_raises "sma capacity 0"
    (Invalid_argument "Frontier.sma(0): capacity must be positive") (fun () ->
      ignore (F.sma ~capacity:0 ()));
  Alcotest.check_raises "beam width 0"
    (Invalid_argument "Frontier.beam(0): capacity must be positive") (fun () ->
      ignore (F.beam ~width:0 ()));
  Alcotest.check_raises "sma negative capacity"
    (Invalid_argument "Frontier.sma(-2): capacity must be positive") (fun () ->
      ignore (F.sma ~capacity:(-2) ()))

let capacity_one_keeps_single_best () =
  let f = F.sma ~capacity:1 () in
  push_all f
    [ meta ~hint:4 (), "h4"; meta ~hint:1 (), "h1"; meta ~hint:3 (), "h3" ];
  check Alcotest.int "never more than one held" 1 (f.F.length ());
  check Alcotest.int "the other two evicted" 2 (List.length (f.F.evicted ()));
  check (Alcotest.list Alcotest.string) "the best survives" [ "h1" ] (drain f)

let beam_width_one_is_pure_greedy () =
  let f = F.beam ~width:1 () in
  push_all f
    [ meta ~depth:9 ~hint:2 (), "deep-close"; meta ~depth:0 ~hint:7 (), "shallow-far" ];
  check Alcotest.int "loser evicted" 1 (List.length (f.F.evicted ()));
  (* the beam scores on the hint alone — depth must not matter *)
  check (Alcotest.list Alcotest.string) "hint alone decides" [ "deep-close" ] (drain f)

let eviction_conserves_entries () =
  (* Every pushed extension leaves the frontier exactly once — popped or
     reported via [evicted] — which is what lets the scheduler release the
     snapshot behind each evicted extension without leaking or
     double-releasing (the reclaim store's handles are freed on that
     report). *)
  let f = F.sma ~capacity:3 () in
  let seen = Hashtbl.create 32 in
  let note tag x =
    if Hashtbl.mem seen x then Alcotest.failf "%s returned %s twice" tag x;
    Hashtbl.replace seen x tag
  in
  List.iter
    (fun batch ->
      push_all f batch;
      List.iter (note "evicted") (f.F.evicted ());
      match f.F.pop () with Some x -> note "popped" x | None -> ())
    [ List.init 5 (fun k -> meta ~hint:k (), Printf.sprintf "a%d" k);
      List.init 5 (fun k -> meta ~hint:(9 - k) (), Printf.sprintf "b%d" k);
      [] ];
  List.iter (note "drained") (drain f);
  List.iter (note "evicted") (f.F.evicted ());
  check Alcotest.int "all ten accounted for exactly once" 10 (Hashtbl.length seen)

let random_is_seed_deterministic () =
  let mk seed =
    let f = F.random ~seed () in
    push_all f (List.init 20 (fun k -> meta (), k));
    drain f
  in
  check (Alcotest.list Alcotest.int) "same seed same order" (mk 5) (mk 5);
  check Alcotest.bool "different seed differs" true (mk 5 <> mk 6)

let random_is_permutation () =
  let f = F.random ~seed:11 () in
  push_all f (List.init 50 (fun k -> meta (), k));
  check (Alcotest.list Alcotest.int) "permutation" (List.init 50 Fun.id)
    (List.sort compare (drain f))

let best_first_custom_score () =
  let f = F.best_first ~name:"depth-desc" ~score:(fun m -> -.Float.of_int m.F.depth) () in
  push_all f [ meta ~depth:1 (), "d1"; meta ~depth:9 (), "d9"; meta ~depth:4 (), "d4" ];
  check (Alcotest.list Alcotest.string) "deepest first" [ "d9"; "d4"; "d1" ] (drain f)

let wastar_greediness () =
  (* weight 0 = uniform-cost (depth only); large weight = greedy on hint *)
  let f = F.wastar ~weight:10.0 () in
  push_all f
    [ meta ~depth:9 ~hint:0 (), "deep-close"; meta ~depth:0 ~hint:5 (), "shallow-far" ];
  check (Alcotest.option Alcotest.string) "greedy prefers small hint"
    (Some "deep-close") (f.F.pop ());
  let f0 = F.wastar ~weight:0.0 () in
  push_all f0
    [ meta ~depth:9 ~hint:0 (), "deep"; meta ~depth:0 ~hint:5 (), "shallow" ];
  check (Alcotest.option Alcotest.string) "weight 0 prefers shallow"
    (Some "shallow") (f0.F.pop ())

let beam_keeps_best_hints () =
  let f = F.beam ~width:2 () in
  push_all f
    (List.map (fun h -> meta ~hint:h (), Printf.sprintf "h%d" h) [ 5; 1; 9; 3 ]);
  check Alcotest.int "bounded" 2 (f.F.length ());
  check Alcotest.int "evicted two" 2 (List.length (f.F.evicted ()));
  check (Alcotest.list Alcotest.string) "best hints kept" [ "h1"; "h3" ] (drain f)

let dfs_bounded_refuses_deep () =
  let f = F.dfs_bounded ~max_depth:2 () in
  push_all f
    [ meta ~depth:1 (), "d1"; meta ~depth:2 (), "d2"; meta ~depth:3 (), "d3" ];
  check (Alcotest.list Alcotest.string) "deep refused" [ "d3" ]
    (f.F.evicted ());
  check (Alcotest.list Alcotest.string) "shallow kept in order" [ "d1"; "d2" ] (drain f)

let empty_pops_none () =
  List.iter
    (fun f ->
      check Alcotest.bool (f.F.name ^ " empty") true (f.F.pop () = None);
      check Alcotest.int (f.F.name ^ " length") 0 (f.F.length ()))
    [ F.dfs (); F.bfs (); F.astar (); F.sma ~capacity:4 (); F.random ~seed:1 () ]

let length_is_constant_time () =
  (* The explorers consult [length] on every push (max_frontier tracking).
     Regression: dfs/dfs_bounded computed it with [List.length] on the live
     stack, making an n-push search quadratic; 100k pushes took seconds.
     With the O(1) counter this loop is a few milliseconds, so a generous
     CPU-time bound keeps the test robust while still failing the
     quadratic implementation. *)
  List.iter
    (fun f ->
      let t0 = Sys.time () in
      for i = 1 to 100_000 do
        push_all f [ (meta (), i) ];
        ignore (f.F.length ())
      done;
      check Alcotest.int (f.F.name ^ " length") 100_000 (f.F.length ());
      let elapsed = Sys.time () -. t0 in
      check Alcotest.bool
        (Printf.sprintf "%s: 100k pushes with length lookups in %.2fs" f.F.name
           elapsed)
        true (elapsed < 2.0))
    [ F.dfs (); F.dfs_bounded ~max_depth:10 () ]

let tests =
  [ Alcotest.test_case "dfs order" `Quick dfs_explores_first_extension_first;
    Alcotest.test_case "bfs fifo" `Quick bfs_is_fifo;
    Alcotest.test_case "astar orders by depth+hint" `Quick astar_orders_by_f;
    Alcotest.test_case "sma bounds memory" `Quick sma_bounds_memory;
    Alcotest.test_case "zero capacity rejected" `Quick zero_capacity_rejected;
    Alcotest.test_case "capacity one keeps single best" `Quick
      capacity_one_keeps_single_best;
    Alcotest.test_case "beam width one" `Quick beam_width_one_is_pure_greedy;
    Alcotest.test_case "eviction conserves entries" `Quick
      eviction_conserves_entries;
    Alcotest.test_case "random deterministic by seed" `Quick random_is_seed_deterministic;
    Alcotest.test_case "random is a permutation" `Quick random_is_permutation;
    Alcotest.test_case "custom best-first" `Quick best_first_custom_score;
    Alcotest.test_case "weighted A*" `Quick wastar_greediness;
    Alcotest.test_case "beam search" `Quick beam_keeps_best_hints;
    Alcotest.test_case "bounded dfs" `Quick dfs_bounded_refuses_deep;
    Alcotest.test_case "empty frontiers" `Quick empty_pops_none;
    Alcotest.test_case "length is O(1)" `Quick length_is_constant_time ]
