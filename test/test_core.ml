(* The paper's contribution: snapshots, the explorer protocol, the
   externally-driven service, and the replay ablation. *)

module Explorer = Core.Explorer
module Snapshot = Core.Snapshot
module Service = Core.Service
module Tenancy = Core.Tenancy
module Native_bt = Core.Native_bt
module Libos = Os.Libos
module Abi = Os.Sys_abi
module R = Isa.Reg
module Wl_common = Workloads.Wl_common
open Isa.Asm

let check = Alcotest.check

let transcript_lines (r : Explorer.result) =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' r.Explorer.transcript)

let completed (r : Explorer.result) =
  match r.Explorer.outcome with
  | Explorer.Completed s -> s
  | Explorer.Stopped_first_exit _ -> Alcotest.fail "unexpected first-exit stop"
  | Explorer.Aborted m -> Alcotest.failf "aborted: %s" m

(* {1 Explorer protocol} *)

let nqueens_all_sizes () =
  List.iter
    (fun n ->
      let r = Explorer.run_image (Workloads.Nqueens.program ~n) in
      check Alcotest.int "exit status" 0 (completed r);
      check Alcotest.int
        (Printf.sprintf "solutions for n=%d" n)
        (Workloads.Nqueens.expected_solutions n)
        (List.length (transcript_lines r)))
    [ 2; 3; 4; 5; 6 ]

let nqueens_boards_match_host () =
  let r = Explorer.run_image (Workloads.Nqueens.program ~n:6) in
  check (Alcotest.list Alcotest.string) "same boards, same DFS order"
    (Workloads.Nqueens.host_boards 6) (transcript_lines r)

let counting_tree_exact () =
  let r = Explorer.run_image (Workloads.Counting.program ~depth:4 ~branch:3) in
  check Alcotest.int "every leaf failed" 81 r.Explorer.stats.Core.Stats.fails;
  (* interior guesses: (3^4 - 1) / 2 = 40 *)
  check Alcotest.int "interior guesses" 40 r.Explorer.stats.Core.Stats.guesses;
  check Alcotest.int "extensions = 3 * guesses" 120
    r.Explorer.stats.Core.Stats.extensions_pushed

let recycling_is_invisible () =
  (* Frame recycling (the default) must not change a single observable:
     same transcript, same stop counts, same guest instruction count as
     the GC-only baseline — while actually exercising the free list and
     the DFS tail-child adopting restore. *)
  let image = Workloads.Nqueens.program ~n:5 in
  let on = Explorer.run_image image in
  let off = Explorer.run_image ~recycle:false image in
  check Alcotest.string "transcript identical" off.Explorer.transcript
    on.Explorer.transcript;
  check Alcotest.int "fails identical" off.Explorer.stats.Core.Stats.fails
    on.Explorer.stats.Core.Stats.fails;
  check Alcotest.int "instructions identical"
    off.Explorer.stats.Core.Stats.instructions
    on.Explorer.stats.Core.Stats.instructions;
  check Alcotest.bool "tail children were adopted" true
    (on.Explorer.stats.Core.Stats.adopting_restores > 0);
  check Alcotest.bool "frames were recycled" true
    (on.Explorer.stats.Core.Stats.mem.Mem.Mem_metrics.frames_recycled > 0);
  check Alcotest.int "baseline recycles nothing" 0
    off.Explorer.stats.Core.Stats.mem.Mem.Mem_metrics.frames_recycled;
  check Alcotest.int "baseline adopts nothing" 0
    off.Explorer.stats.Core.Stats.adopting_restores

let strategy_scope_returns_zero_after_exhaustion () =
  (* Figure 1's protocol: the if-block runs with rax=1, and after the scope
     is exhausted the program continues with rax=0 and exits 77. *)
  let image =
    assemble ~entry:"main"
      ([ label "main" ]
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ cmp R.rax (i 0); je "after" ]
      @ Wl_common.sys_guess_imm ~n:2
      @ Wl_common.sys_guess_fail
      @ [ label "after" ]
      @ Wl_common.sys_exit ~status:77)
  in
  let r = Explorer.run_image image in
  check Alcotest.int "continues after scope" 77 (completed r);
  check Alcotest.int "two extensions" 2 r.Explorer.stats.Core.Stats.extensions_evaluated

let guess_outside_scope_aborts () =
  let image =
    assemble ~entry:"main" ([ label "main" ] @ Wl_common.sys_guess_imm ~n:2 @ [ hlt ])
  in
  let r = Explorer.run_image image in
  match r.Explorer.outcome with
  | Explorer.Aborted msg ->
    check Alcotest.bool "mentions scope" true
      (String.length msg > 0 && String.lowercase_ascii msg <> "")
  | _ -> Alcotest.fail "expected abort"

let first_exit_mode_stops () =
  let values = [ 1; 2; 4; 8; 16 ] in
  let image = Workloads.Subset_sum.program ~target:21 values in
  let r = Explorer.run_image ~mode:`First_exit image in
  match r.Explorer.outcome with
  | Explorer.Stopped_first_exit 0 ->
    check (Alcotest.list Alcotest.string) "first mask" [ "10101" ] (transcript_lines r)
  | _ -> Alcotest.fail "expected first-exit"

let all_solutions_subset_sum () =
  let values = [ 3; 34; 4; 12; 5; 2 ] in
  let r =
    Explorer.run_image (Workloads.Subset_sum.program ~all_solutions:true ~target:9 values)
  in
  check (Alcotest.list Alcotest.string) "masks match host"
    (Workloads.Subset_sum.host_solutions ~values ~target:9)
    (transcript_lines r)

let coloring_counts () =
  List.iter
    (fun (g, k) ->
      let r = Explorer.run_image (Workloads.Coloring.program g ~k) in
      check Alcotest.int "colourings" (Workloads.Coloring.host_count g ~k)
        (List.length (transcript_lines r)))
    [ Workloads.Coloring.cycle 5, 3;
      Workloads.Coloring.complete 4, 4;
      Workloads.Coloring.petersen, 3 ]

let output_survives_backtracking () =
  (* a guest that prints then fails; Prolog-style stdout must keep both *)
  let image =
    assemble ~entry:"main"
      ([ label "main" ]
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ cmp R.rax (i 0); je "after" ]
      @ Wl_common.sys_guess_imm ~n:2
      @ [ (* print 'A' + extension number *)
          mov R.rcx (r R.rax);
          add R.rcx (i (Char.code 'A'));
          movl R.r8 "buf";
          stb (R.r8 @+ 0) R.rcx ]
      @ Wl_common.write_label ~buf:"buf" ~len:1
      @ Wl_common.sys_guess_fail
      @ [ label "after" ]
      @ Wl_common.sys_exit ~status:0
      @ [ label "buf"; zeros 1 ])
  in
  let r = Explorer.run_image image in
  check Alcotest.string "both paths' output survives" "AB" r.Explorer.transcript;
  let outputs = List.map (fun t -> t.Explorer.output) r.Explorer.terminals in
  check (Alcotest.list Alcotest.string) "attributed per path" [ "A"; "B" ] outputs

let file_writes_are_contained () =
  (* each extension writes its own content to the same file; the surviving
     (exhausted) state must see the pre-scope file *)
  let image =
    assemble ~entry:"main"
      ([ label "main" ]
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ cmp R.rax (i 0); je "after" ]
      @ Wl_common.sys_guess_imm ~n:3
      @ [ (* write extension number into /shared *)
          movl R.rdi "path";
          mov R.rsi (i (Abi.o_wronly lor Abi.o_creat lor Abi.o_trunc)) ]
      @ Wl_common.syscall3 ~number:Abi.sys_open
      @ [ mov R.rbx (r R.rax);
          mov R.rdi (r R.rbx);
          movl R.rsi "digit";
          mov R.rdx (i 1) ]
      @ Wl_common.syscall3 ~number:Abi.sys_write
      @ Wl_common.sys_guess_fail
      @ [ label "after" ]
      @ Wl_common.sys_exit ~status:0
      @ [ label "path"; bytes "/shared\000"; label "digit"; bytes "x" ])
  in
  let phys = Mem.Phys_mem.create () in
  let machine = Libos.boot phys image in
  Libos.add_file machine ~path:"/shared" "original";
  let r = Explorer.run machine in
  check Alcotest.int "completed" 0 (completed r);
  check (Alcotest.option Alcotest.string) "file effects rolled back"
    (Some "original") (Libos.read_file machine ~path:"/shared")

let killed_path_does_not_stop_search () =
  (* extension 0 dereferences a wild pointer; extensions 1 and 2 print *)
  let image =
    assemble ~entry:"main"
      ([ label "main" ]
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ cmp R.rax (i 0); je "after" ]
      @ Wl_common.sys_guess_imm ~n:2
      @ [ cmp R.rax (i 0); jne "ok";
          mov R.rcx (i 0x7000000);
          ld R.rdx (R.rcx @+ 0);   (* fault *)
          label "ok" ]
      @ Wl_common.write_label ~buf:"msg" ~len:1
      @ Wl_common.sys_guess_fail
      @ [ label "after" ]
      @ Wl_common.sys_exit ~status:0
      @ [ label "msg"; bytes "k" ])
  in
  let r = Explorer.run_image image in
  check Alcotest.int "completed" 0 (completed r);
  check Alcotest.int "one kill" 1 r.Explorer.stats.Core.Stats.kills;
  check Alcotest.string "survivor printed" "k" r.Explorer.transcript

let hint_drives_astar () =
  (* two arms: the guest hints arm 1 as closer; A* must evaluate it first *)
  let image =
    assemble ~entry:"main"
      ([ label "main" ]
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_astar
      @ [ cmp R.rax (i 0); je "after" ]
      @ [ mov R.rdi (i 5) ]
      @ Wl_common.sys_guess_hint_reg
      @ Wl_common.sys_guess_imm ~n:2
      @ [ cmp R.rax (i 0); je "deep" ]
      (* arm 1: cheap exit *)
      @ Wl_common.sys_exit ~status:11
      (* arm 0: would exit 22 *)
      @ [ label "deep" ]
      @ Wl_common.sys_exit ~status:22
      @ [ label "after" ]
      @ Wl_common.sys_exit ~status:0)
  in
  let r = Explorer.run_image ~mode:`First_exit image in
  (* both extensions share the same hint; FIFO tie-break picks ext 0.  Run
     under DFS and A*: both deterministic, exercising the hint plumbing. *)
  match r.Explorer.outcome with
  | Explorer.Stopped_first_exit s -> check Alcotest.int "deterministic pick" 22 s
  | _ -> Alcotest.fail "expected first exit"

let max_extensions_aborts () =
  let image = Workloads.Counting.program ~depth:30 ~branch:2 in
  let r = Explorer.run_image ~max_extensions:1000 image in
  match r.Explorer.outcome with
  | Explorer.Aborted _ -> ()
  | _ -> Alcotest.fail "expected budget abort"

let shared_page_survives_backtracking () =
  (* the guest shares a page, then every leaf of a 2^3 guess tree
     increments a counter in it; after exhaustion the guest exits with the
     counter value — only possible because the page escapes snapshots *)
  let image =
    assemble ~entry:"main"
      ([ label "main";
         (* allocate a heap page and share it *)
         mov R.rdi (i 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ mov R.r15 (r R.rax); mov R.rdi (r R.rax); add R.rdi (i 4096) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ mov R.rdi (r R.r15); mov R.rsi (i 8) ]
      @ Wl_common.syscall3 ~number:Abi.sys_share
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ cmp R.rax (i 0); je "after"; mov R.r12 (i 3) ]
      @ [ label "step"; cmp R.r12 (i 0); jle "leaf" ]
      @ Wl_common.sys_guess_imm ~n:2
      @ [ dec R.r12; jmp "step"; label "leaf";
          ld R.rcx (R.r15 @+ 0); inc R.rcx; st (R.r15 @+ 0) R.rcx ]
      @ Wl_common.sys_guess_fail
      @ [ label "after"; ld R.rdi (R.r15 @+ 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit)
  in
  let r = Explorer.run_image image in
  check Alcotest.int "all 8 leaves counted across paths" 8 (completed r)

let timeout_kills_runaway_extension () =
  (* extension 0 spins forever; the guest-set timeout bounds it and the
     search continues to extension 1 *)
  let image =
    assemble ~entry:"main"
      ([ label "main"; mov R.rdi (i 20000) ]
      @ Wl_common.syscall3 ~number:Abi.sys_timeout
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ cmp R.rax (i 0); je "after" ]
      @ Wl_common.sys_guess_imm ~n:2
      @ [ cmp R.rax (i 0); jne "good"; label "spin"; jmp "spin"; label "good" ]
      @ Wl_common.sys_exit ~status:5
      @ [ label "after" ]
      @ Wl_common.sys_exit ~status:7)
  in
  let r = Explorer.run_image image in
  check Alcotest.int "scope exhausted normally" 7 (completed r);
  check Alcotest.int "runaway killed" 1 r.Explorer.stats.Core.Stats.kills;
  check Alcotest.int "survivor exited" 1 r.Explorer.stats.Core.Stats.exits

let beam_strategy_runs () =
  let maze = Workloads.Grid.generate ~width:7 ~height:7 ~wall_density:0.2 ~seed:3 in
  let r =
    Explorer.run_image ~mode:`First_exit ~strategy_override:(`Beam 32)
      (Workloads.Grid.program maze)
  in
  match r.Explorer.outcome, Workloads.Grid.host_shortest maze with
  | Explorer.Stopped_first_exit len, Some opt ->
    check Alcotest.bool "reaches goal" true (len >= opt)
  | Explorer.Completed 255, None -> ()
  | _ -> Alcotest.fail "unexpected outcome"

let dfs_bounded_prunes_depth () =
  (* a 2^6 counting tree explored with bound 3 only reaches 2^3 leaves...
     bound refuses deeper extensions, so fails happen only at depth <= 3 *)
  let image = Workloads.Counting.program ~depth:6 ~branch:2 in
  let r = Explorer.run_image ~strategy_override:(`Dfs_bounded 3) image in
  check Alcotest.int "completed" 0 (completed r);
  check Alcotest.bool "pruned extensions reported" true
    (r.Explorer.stats.Core.Stats.evicted > 0);
  check Alcotest.int "no leaf reached" 0 r.Explorer.stats.Core.Stats.fails

(* {1 Snapshot tree properties} *)

let snapshot_parent_chain () =
  let image = Workloads.Counting.program ~depth:3 ~branch:2 in
  let phys = Mem.Phys_mem.create () in
  let machine = Libos.boot phys image in
  (* drive manually: take the strategy stop then three guesses deep *)
  (match Libos.run machine ~fuel:100000 with
  | Libos.Guess_strategy _ -> Vcpu.Cpu.set machine.Libos.cpu R.rax 1
  | other -> Alcotest.failf "unexpected %a" Libos.pp_stop other);
  let ids = Snapshot.ids () in
  let root = Snapshot.capture ~ids ~depth:0 machine in
  let rec descend parent depth =
    if depth = 3 then parent
    else
      match Libos.run machine ~fuel:100000 with
      | Libos.Guess _ ->
        let snap = Snapshot.capture ~ids ~parent ~depth machine in
        Vcpu.Cpu.set machine.Libos.cpu R.rax 0;
        descend snap (depth + 1)
      | other -> Alcotest.failf "unexpected %a" Libos.pp_stop other
  in
  let leaf = descend root 0 in
  check Alcotest.int "lineage length" 4 (List.length (Snapshot.lineage leaf));
  check Alcotest.int "root is last"
    root.Snapshot.id
    (List.nth (Snapshot.lineage leaf) 3).Snapshot.id

let snapshot_ids_are_per_run () =
  (* Regression: snapshot ids came from one global counter, so two
     simultaneous runs shared (and raced on) the sequence.  Each allocator
     must start from 0 independently. *)
  let image = Workloads.Counting.program ~depth:2 ~branch:2 in
  let boot () = Libos.boot (Mem.Phys_mem.create ()) image in
  let m1 = boot () and m2 = boot () in
  let ids1 = Snapshot.ids () and ids2 = Snapshot.ids () in
  let s1 = Snapshot.capture ~ids:ids1 ~depth:0 m1 in
  let s1' = Snapshot.capture ~ids:ids1 ~depth:0 m1 in
  let s2 = Snapshot.capture ~ids:ids2 ~depth:0 m2 in
  check Alcotest.int "run 1 starts at 0" 0 s1.Snapshot.id;
  check Alcotest.int "run 1 continues" 1 s1'.Snapshot.id;
  check Alcotest.int "run 2 starts at 0 too" 0 s2.Snapshot.id

let snapshot_ids_atomic_across_domains () =
  (* One run's captures racing across two domains must still allocate
     distinct, dense ids. *)
  let image = Workloads.Counting.program ~depth:2 ~branch:2 in
  let ids = Snapshot.ids () in
  let captures () =
    let m = Libos.boot (Mem.Phys_mem.create ()) image in
    List.init 200 (fun _ -> (Snapshot.capture ~ids ~depth:0 m).Snapshot.id)
  in
  let d = Domain.spawn captures in
  let mine = captures () in
  let theirs = Domain.join d in
  let all = List.sort_uniq compare (mine @ theirs) in
  check Alcotest.int "distinct ids" 400 (List.length all);
  check Alcotest.int "dense from 0" 399 (List.nth all 399)

(* {1 Service} *)

let service_resume_is_repeatable () =
  let image = Workloads.Counting.program ~depth:2 ~branch:2 in
  let svc, outcome = Service.boot image in
  match outcome with
  | Service.Ready { candidate; arity; _ } ->
    check Alcotest.int "arity" 2 arity;
    (* resuming the same candidate twice must give identical outcomes *)
    let a = Service.resume svc candidate ~choice:0 () in
    let b = Service.resume svc candidate ~choice:0 () in
    (match a, b with
    | Service.Ready { arity = a1; _ }, Service.Ready { arity = a2; _ } ->
      check Alcotest.int "same arity" a1 a2
    | _ -> Alcotest.fail "expected two ready outcomes");
    check Alcotest.bool "candidates accumulate" true (Service.live_candidates svc >= 3)
  | _ -> Alcotest.fail "expected a choice point"

let service_distinct_branches () =
  (* guest prints the chosen extension; two resumes of one candidate must
     produce their own outputs *)
  let image =
    assemble ~entry:"main"
      ([ label "main" ]
      @ Wl_common.sys_guess_imm ~n:2
      @ [ mov R.rcx (r R.rax);
          add R.rcx (i (Char.code '0'));
          movl R.r8 "buf";
          stb (R.r8 @+ 0) R.rcx ]
      @ Wl_common.write_label ~buf:"buf" ~len:1
      @ Wl_common.sys_exit ~status:0
      @ [ label "buf"; zeros 1 ])
  in
  let svc, outcome = Service.boot image in
  match outcome with
  | Service.Ready { candidate; _ } ->
    (match Service.resume svc candidate ~choice:0 () with
    | Service.Finished { output; _ } -> check Alcotest.string "branch 0" "0" output
    | _ -> Alcotest.fail "expected finish");
    (match Service.resume svc candidate ~choice:1 () with
    | Service.Finished { output; _ } -> check Alcotest.string "branch 1" "1" output
    | _ -> Alcotest.fail "expected finish")
  | _ -> Alcotest.fail "expected a choice point"

let service_guest_dpll_increments () =
  (* solve p, then p ∧ q for a q that flips a model bit *)
  let clauses = [ [ 1; 2 ]; [ -1; 2 ] ] in
  let image = Workloads.Guest_dpll.program ~num_vars:2 clauses in
  let svc, outcome = Service.boot image in
  (* drive DFS externally: always choice 0, backtracking manually *)
  let rec to_yield outcome stack =
    match outcome with
    | Service.Ready { candidate; arity = 1; output } -> Some (candidate, output)
    | Service.Ready { candidate; arity; _ } ->
      to_yield (Service.resume svc candidate ~choice:0 ())
        ((candidate, 1, arity) :: stack)
    | Service.Failed _ -> (
      match stack with
      | [] -> None
      | (c, k, a) :: rest ->
        to_yield (Service.resume svc c ~choice:k ())
          (if k + 1 < a then (c, k + 1, a) :: rest else rest))
    | Service.Finished _ | Service.Crashed _ -> None
  in
  match to_yield outcome [] with
  | None -> Alcotest.fail "p unsolved"
  | Some (p_ref, output) ->
    check Alcotest.bool "solved p" true
      (String.length output >= 4 && String.sub output 0 4 = "SAT\n");
    let q = Workloads.Guest_dpll.encode_increments [ [ [ -2; 1 ] ] ] in
    (match to_yield (Service.resume svc p_ref ~choice:0 ~stdin:q ()) [] with
    | Some (_, output2) ->
      check Alcotest.bool "solved p and q" true
        (String.length output2 >= 4 && String.sub output2 0 4 = "SAT\n")
    | None -> Alcotest.fail "p ∧ q should be satisfiable")

let service_release () =
  (* A workload whose steps dirty arena pages, so a child candidate owns
     frames of its own and releasing it observably shrinks the footprint. *)
  let svc, outcome =
    Service.boot
      (Workloads.Locality.program
         { depth = 2; branch = 2; touch_pages = 2; work = 1; arena_pages = 8 })
  in
  match outcome with
  | Service.Ready { candidate; _ } -> (
    (* Publish a child so releasing it observably drops frames while the
       root candidate keeps the shared ones pinned. *)
    match Service.resume svc candidate ~choice:0 () with
    | Service.Ready { candidate = child; _ } ->
      let live_before = Service.live_candidates svc in
      let frames_before = Service.distinct_frames svc in
      Service.release svc child;
      check Alcotest.int "one fewer live" (live_before - 1)
        (Service.live_candidates svc);
      check Alcotest.bool "distinct frames drop" true
        (Service.distinct_frames svc < frames_before);
      Alcotest.check_raises "resume after release"
        (Invalid_argument "Reclaim: reference 1 was released") (fun () ->
          ignore (Service.resume svc child ~choice:0 ()));
      (* The un-released sibling is untouched by the release. *)
      (match Service.resume svc candidate ~choice:1 () with
      | Service.Ready _ | Service.Finished _ | Service.Failed _ -> ()
      | Service.Crashed msg -> Alcotest.fail ("sibling resume crashed: " ^ msg))
    | _ -> Alcotest.fail "expected a child choice point")
  | _ -> Alcotest.fail "expected a choice point"

(* {1 Reclaim: eviction and replay under memory pressure} *)

let explorer_survives_memory_pressure () =
  let image =
    Workloads.Locality.program
      { depth = 4; branch = 3; touch_pages = 3; work = 5; arena_pages = 16 }
  in
  (* Fault-free run on unbounded memory establishes the footprint.
     Recycling off: the budget must undercut the GC-only peak, not the
     (much smaller) eagerly-recycled one. *)
  let phys0 = Mem.Phys_mem.create ~track_live:true ~recycle:false () in
  let base = Explorer.run (Libos.boot phys0 image) in
  let peak = Mem.Phys_mem.peak_frames_live phys0 in
  let capacity = max 24 (peak / 10) in
  check Alcotest.bool "budget is genuinely below the fault-free peak" true
    (capacity < peak);
  (* Same exploration under a frame budget the footprint does not fit. *)
  let phys = Mem.Phys_mem.create ~capacity () in
  let r = Explorer.run (Libos.boot phys image) in
  check Alcotest.int "same exit status" (completed base) (completed r);
  check (Alcotest.list Alcotest.string) "same transcript, same order"
    (transcript_lines base) (transcript_lines r);
  check Alcotest.int "same terminal count"
    (List.length base.Explorer.terminals)
    (List.length r.Explorer.terminals);
  check Alcotest.bool "payloads were demoted under pressure" true
    (r.Explorer.stats.Core.Stats.demotions > 0);
  check Alcotest.bool "demoted payloads were promoted back" true
    (r.Explorer.stats.Core.Stats.promotions > 0);
  check Alcotest.int "nothing was truncated outright" 0
    r.Explorer.stats.Core.Stats.payload_evictions;
  check Alcotest.int "no reconstruction fell back to replay" 0
    r.Explorer.stats.Core.Stats.replays;
  check Alcotest.int "replay work is excluded from the instruction count"
    base.Explorer.stats.Core.Stats.instructions
    r.Explorer.stats.Core.Stats.instructions;
  check Alcotest.bool "frame budget was respected" true
    (Mem.Phys_mem.peak_frames_live phys <= capacity)

let service_resume_survives_eviction () =
  let svc, outcome =
    Service.boot
      (Workloads.Locality.program
         { depth = 3; branch = 2; touch_pages = 2; work = 1; arena_pages = 8 })
  in
  match outcome with
  | Service.Ready { candidate; _ } -> (
    match Service.resume svc candidate ~choice:0 () with
    | Service.Ready { candidate = child; arity; output } ->
      (* Drop every materialised payload, then resume the child: the store
         must rebuild it by replaying from the pinned root, and the resume
         must be indistinguishable from the pre-eviction one. *)
      let evicted = Service.evict_all svc in
      check Alcotest.bool "something was evicted" true (evicted >= 1);
      check Alcotest.int "only the pinned root stays materialised" 1
        (Service.materialised_candidates svc);
      (match Service.resume svc child ~choice:0 () with
      | Service.Ready { arity = arity'; output = output'; _ } ->
        check Alcotest.int "same arity after replay" arity arity';
        check Alcotest.string "same output after replay" output output'
      | Service.Finished _ | Service.Failed _ ->
        Alcotest.fail "expected another choice point"
      | Service.Crashed msg -> Alcotest.fail ("resume crashed: " ^ msg));
      check Alcotest.bool "resume went through replay" true
        (Service.replays svc >= 1)
    | _ -> Alcotest.fail "expected a child choice point")
  | _ -> Alcotest.fail "expected a choice point"

let divergent_path_killed_by_fuel () =
  (* Extension 1 spins forever; a finite [fuel_per_step] must kill that
     path alone and let the rest of the search finish. *)
  let image =
    assemble ~entry:"main"
      ([ label "main" ]
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ cmp R.rax (i 0); je "after" ]
      @ Wl_common.sys_guess_imm ~n:2
      @ [ cmp R.rax (i 1); je "spin" ]
      @ Wl_common.sys_exit ~status:3
      @ [ label "spin"; jmp "spin"; label "after" ]
      @ Wl_common.sys_exit ~status:0)
  in
  let r = Explorer.run_image ~fuel_per_step:5_000 image in
  check Alcotest.int "search completes" 0 (completed r);
  check Alcotest.int "one path killed" 1 r.Explorer.stats.Core.Stats.kills;
  check Alcotest.bool "killed terminal names fuel" true
    (List.exists
       (fun t ->
         match t.Explorer.kind with
         | Explorer.Path_killed msg ->
           (* substring check: the reason string mentions fuel *)
           let lower = String.lowercase_ascii msg in
           let has needle =
             let n = String.length needle and l = String.length lower in
             let rec go i = i + n <= l && (String.sub lower i n = needle || go (i + 1)) in
             go 0
           in
           has "fuel"
         | _ -> false)
       r.Explorer.terminals);
  check Alcotest.bool "surviving path recorded its exit" true
    (List.exists
       (fun t -> match t.Explorer.kind with Explorer.Exit 3 -> true | _ -> false)
       r.Explorer.terminals)

(* {1 Native replay ablation} *)

let native_bt_enumerates () =
  let result =
    Native_bt.run_all (fun ctx ->
        let a = Native_bt.guess ctx 2 in
        let b = Native_bt.guess ctx 3 in
        (a, b))
  in
  check Alcotest.int "all paths" 6 (List.length result.Native_bt.solutions);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "DFS order"
    [ 0, 0; 0, 1; 0, 2; 1, 0; 1, 1; 1, 2 ]
    result.Native_bt.solutions

let native_bt_fail_prunes () =
  let result =
    Native_bt.run_all (fun ctx ->
        let a = Native_bt.guess ctx 3 in
        if a = 1 then Native_bt.fail ctx else a)
  in
  check (Alcotest.list Alcotest.int) "pruned" [ 0; 2 ] result.Native_bt.solutions

let native_bt_replay_cost () =
  (* replay-based restoration re-executes prefixes: decisions_replayed
     grows with the square-ish of the tree, unlike snapshots *)
  let result =
    Native_bt.run_all (fun ctx ->
        let rec go depth acc =
          if depth = 0 then acc
          else go (depth - 1) ((2 * acc) + Native_bt.guess ctx 2)
        in
        go 6 0)
  in
  check Alcotest.int "paths" 64 (List.length result.Native_bt.solutions);
  check Alcotest.bool "replays happened" true (result.Native_bt.replays >= 64);
  check Alcotest.bool "prefix re-execution cost" true
    (result.Native_bt.decisions_replayed > 64)

let native_bt_nqueens_matches () =
  let count n =
    let solutions = ref 0 in
    let result =
      Native_bt.run_all (fun ctx ->
          let row = Array.make n false in
          let ld = Array.make (2 * n) false in
          let rd = Array.make (2 * n) false in
          for c = 0 to n - 1 do
            let r = Native_bt.guess ctx n in
            if row.(r) || ld.(r + c) || rd.(n + r - c) then Native_bt.fail ctx;
            row.(r) <- true;
            ld.(r + c) <- true;
            rd.(n + r - c) <- true
          done)
    in
    solutions := List.length result.Native_bt.solutions;
    !solutions
  in
  check Alcotest.int "native replay queens 6" (Workloads.Nqueens.expected_solutions 6)
    (count 6)

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let counting_tree_invariants =
  (* for any (depth, branch): fails = B^D, guesses = (B^D - 1)/(B - 1),
     pushed = B * guesses, evaluated = pushed — parametric correctness of
     the whole scheduler *)
  qtest "explorer node counts on random trees"
    QCheck2.Gen.(pair (int_range 1 5) (int_range 1 4))
    (fun (depth, branch) ->
      let r = Explorer.run_image (Workloads.Counting.program ~depth ~branch) in
      let leaves = Workloads.Counting.leaves ~depth ~branch in
      let interior =
        if branch = 1 then depth else (leaves - 1) / (branch - 1)
      in
      let s = r.Explorer.stats in
      (match r.Explorer.outcome with Explorer.Completed 0 -> true | _ -> false)
      && s.Core.Stats.fails = leaves
      && s.Core.Stats.guesses = interior
      && s.Core.Stats.extensions_pushed = branch * interior
      && s.Core.Stats.extensions_evaluated = branch * interior)

let parallel_counts_match_sequential =
  qtest ~count:20 "parallel explorer matches sequential counts"
    QCheck2.Gen.(triple (int_range 1 4) (int_range 1 3) (int_range 1 6))
    (fun (depth, branch, workers) ->
      let image = Workloads.Counting.program ~depth ~branch in
      let seq = Explorer.run_image image in
      let par =
        Core.Parallel.run
          ~config:{ Core.Parallel.default_config with workers; quantum = 700 }
          image
      in
      seq.Explorer.stats.Core.Stats.fails = par.Core.Parallel.stats.Core.Stats.fails
      && seq.Explorer.stats.Core.Stats.guesses
         = par.Core.Parallel.stats.Core.Stats.guesses)

(* {1 Reclaim: the tiered payload store, driven directly}

   Everything runs on a poisoned allocator: a frame wrongly freed while a
   delta or a held snapshot still needs its bytes diverges loudly instead
   of silently. *)

module Reclaim = Core.Reclaim

(* Drive the machine to its next choice point, answering hints and
   strategy requests the way [Service.advance] does. *)
let rec run_to_guess m =
  match Libos.run m ~fuel:50_000_000 with
  | Libos.Guess { n } -> n
  | Libos.Guess_hint _ ->
    Vcpu.Cpu.set m.Libos.cpu R.rax 0;
    run_to_guess m
  | Libos.Guess_strategy _ ->
    Vcpu.Cpu.set m.Libos.cpu R.rax 1;
    run_to_guess m
  | stop ->
    Alcotest.failf "expected a choice point, got %a" Libos.pp_stop stop

let boot_store ?spill_threshold () =
  let phys = Mem.Phys_mem.create ~track_live:true ~poison:true () in
  let image =
    Workloads.Locality.program
      { depth = 3; branch = 2; touch_pages = 2; work = 1; arena_pages = 8 }
  in
  let m = Libos.boot phys image in
  ignore (run_to_guess m);
  let store = Reclaim.create ?spill_threshold m in
  let ids = Reclaim.snapshot_ids store in
  let root = Snapshot.capture ~ids ~depth:0 m in
  let h0 = Reclaim.add_root store root in
  (phys, m, store, ids, h0)

(* Resume [parent] with [choice], run to the next publish, register it. *)
let extend store ids m parent ~choice =
  Snapshot.restore m (Reclaim.get store parent);
  Vcpu.Cpu.set m.Libos.cpu R.rax choice;
  ignore (run_to_guess m);
  let depth = Reclaim.depth store parent + 1 in
  Reclaim.add store ~parent ~choice ~depth (Snapshot.capture ~ids ~depth m)

(* Bit-level identity of a snapshot: resume point plus every mapped page. *)
let snap_image (s : Snapshot.t) =
  ( Vcpu.Cpu.saved_rip s.Snapshot.regs,
    List.sort compare (Mem.Addr_space.snapshot_contents s.Snapshot.mem) )

let reclaim_tier_transitions () =
  let phys, m, store, ids, h0 = boot_store () in
  let h1 = extend store ids m h0 ~choice:0 in
  let h2 = extend store ids m h1 ~choice:1 in
  let img2 = snap_image (Reclaim.get store h2) in
  check Alcotest.int "fresh entry is tier 0" 0 (Reclaim.tier store h2);
  check Alcotest.bool "live payload demotes" true (Reclaim.demote store h2);
  check Alcotest.int "demoted entry is tier 1" 1 (Reclaim.tier store h2);
  check Alcotest.bool "a demoted payload cannot demote again" false
    (Reclaim.demote store h2);
  check Alcotest.bool "delta bytes are accounted" true
    (Mem.Phys_mem.delta_bytes_held phys > 0);
  let s2 = Reclaim.get store h2 in
  check Alcotest.int "get promotes back to tier 0" 0 (Reclaim.tier store h2);
  check Alcotest.bool "promotion is bit-identical" true (snap_image s2 = img2);
  check Alcotest.int "promotion accounted" 1 (Reclaim.promotions store);
  check Alcotest.int "delta bytes drained by promotion" 0
    (Mem.Phys_mem.delta_bytes_held phys);
  check Alcotest.int "no edge was re-executed" 0 (Reclaim.replays store);
  check Alcotest.int "no get needed the replay fallback" 0
    (Reclaim.replay_fallbacks store)

let reclaim_pressure_handler_allocates_no_frames () =
  let phys, m, store, ids, h0 = boot_store () in
  let h1 = extend store ids m h0 ~choice:0 in
  let _h2 = extend store ids m h1 ~choice:0 in
  (* Any frame allocation inside the handler would trip the injected
     fault; the policy must demote without allocating a single frame —
     and without replaying guest code (replays capture, which allocates). *)
  Mem.Phys_mem.set_alloc_fault phys (Some (fun _ -> true));
  let n = Reclaim.demote_under_pressure store in
  Mem.Phys_mem.set_alloc_fault phys None;
  check Alcotest.bool "pressure demoted something" true (n >= 1);
  check Alcotest.int "pressure never replays" 0 (Reclaim.replays store);
  check Alcotest.int "demotions counted" n (Reclaim.demotions store);
  check Alcotest.int "deepest payload went first" 1
    (Reclaim.tier store _h2)

let reclaim_truncated_chain_falls_back_to_replay () =
  let _phys, m, store, ids, h0 = boot_store () in
  let h1 = extend store ids m h0 ~choice:0 in
  let h2 = extend store ids m h1 ~choice:1 in
  let img2 = snap_image (Reclaim.get store h2) in
  check Alcotest.bool "child demotes against its live parent" true
    (Reclaim.demote store h2);
  check Alcotest.bool "the base truncates" true (Reclaim.evict store h1);
  check Alcotest.int "truncated entry is tier 3" 3 (Reclaim.tier store h1);
  (* h2's delta now hangs off a truncated base: reconstruction must
     replay exactly the missing edge and promote the rest. *)
  let s2 = Reclaim.get store h2 in
  check Alcotest.bool "identical across the truncation" true
    (snap_image s2 = img2);
  check Alcotest.int "exactly the missing edge replayed" 1
    (Reclaim.replays store);
  check Alcotest.int "the get counts as a replay fallback" 1
    (Reclaim.replay_fallbacks store);
  check Alcotest.int "the truncated base is live again" 0
    (Reclaim.tier store h1)

let reclaim_pinned_root_stops_at_tier1 () =
  let _phys, m, store, ids, h0 = boot_store ~spill_threshold:0 () in
  let _h1 = extend store ids m h0 ~choice:0 in
  let img0 = snap_image (Reclaim.get store h0) in
  check Alcotest.bool "root refuses truncation" false (Reclaim.evict store h0);
  check Alcotest.bool "root demotes to a full image" true
    (Reclaim.demote store h0);
  Reclaim.flush_pending store;
  check Alcotest.bool "root refuses spilling" false (Reclaim.spill store h0);
  check Alcotest.int "root stops at tier 1" 1 (Reclaim.tier store h0);
  check Alcotest.bool "root promotes from its full image" true
    (snap_image (Reclaim.get store h0) = img0);
  check Alcotest.int "full-image promotion replays nothing" 0
    (Reclaim.replays store)

let reclaim_spill_roundtrip () =
  let phys, m, store, ids, h0 = boot_store ~spill_threshold:0 () in
  let h1 = extend store ids m h0 ~choice:0 in
  let img1 = snap_image (Reclaim.get store h1) in
  ignore (Reclaim.demote store h1);
  Reclaim.flush_pending store;
  check Alcotest.int "cold delta spilled to disk" 2 (Reclaim.tier store h1);
  check Alcotest.bool "spill bytes accounted" true
    (Mem.Phys_mem.spill_bytes_held phys > 0);
  check Alcotest.int "spilled delta left host memory" 0
    (Mem.Phys_mem.delta_bytes_held phys);
  check Alcotest.int "spill counted" 1 (Reclaim.spills store);
  let s1 = Reclaim.get store h1 in
  check Alcotest.bool "identical after the disk round-trip" true
    (snap_image s1 = img1);
  check Alcotest.int "spill load counted" 1 (Reclaim.spill_loads store);
  check Alcotest.int "spill bytes drained" 0
    (Mem.Phys_mem.spill_bytes_held phys)

let reclaim_tier_roundtrip_prop =
  (* Random walk over the candidate tree with random demotions, flushes
     and truncations interleaved; every handle must then reconstruct to
     the bit-identical snapshot it published, on a poisoned allocator. *)
  qtest ~count:25 "tiered store reconstructs bit-identical snapshots"
    QCheck2.Gen.(
      list_size (int_range 1 12)
        (triple (int_range 0 1000) (int_range 0 1) (int_range 0 4)))
    (fun script ->
      let _phys, m, store, ids, h0 = boot_store () in
      let published = ref [ (h0, snap_image (Reclaim.get store h0)) ] in
      List.iter
        (fun (pick, choice, action) ->
          let h, _ = List.nth !published (pick mod List.length !published) in
          (match action with
          | 0 | 1 ->
            (* extend, but only from parents whose resumption reaches
               another guess (the workload guesses at depths 0..2) *)
            if Reclaim.depth store h < 2 then begin
              let h' = extend store ids m h ~choice in
              published :=
                (h', snap_image (Reclaim.get store h')) :: !published
            end
          | 2 -> ignore (Reclaim.demote store h)
          | 3 ->
            ignore (Reclaim.demote_all store);
            Reclaim.flush_pending store
          | _ -> ignore (Reclaim.evict store h)))
        script;
      List.for_all
        (fun (h, img) -> snap_image (Reclaim.get store h) = img)
        !published)

(* {1 Service robustness: spill tier and fault containment} *)

let locality_image =
  Workloads.Locality.program
    { depth = 3; branch = 2; touch_pages = 2; work = 1; arena_pages = 8 }

let same_outcome msg (a : Service.outcome) (b : Service.outcome) =
  match a, b with
  | Service.Ready { arity = a1; output = o1; _ },
    Service.Ready { arity = a2; output = o2; _ } ->
    check Alcotest.int (msg ^ ": arity") a1 a2;
    check Alcotest.string (msg ^ ": output") o1 o2
  | Service.Finished { status = s1; output = o1 },
    Service.Finished { status = s2; output = o2 } ->
    check Alcotest.int (msg ^ ": status") s1 s2;
    check Alcotest.string (msg ^ ": output") o1 o2
  | Service.Failed { output = o1 }, Service.Failed { output = o2 } ->
    check Alcotest.string (msg ^ ": output") o1 o2
  | _ -> Alcotest.failf "%s: outcomes differ in kind" msg

let service_spill_threshold_end_to_end () =
  (* boot -> demote -> spill (tier 2) -> resume promotes via spill-load
     with bit-identical output *)
  let svc, outcome = Service.boot ~spill_threshold:0 locality_image in
  match outcome with
  | Service.Ready { candidate; _ } -> (
    match Service.resume svc candidate ~choice:0 () with
    | Service.Ready { candidate = child; _ } ->
      let baseline = Service.resume svc child ~choice:0 () in
      ignore (Service.demote_all svc);
      Service.flush_spills svc;
      check Alcotest.int "child sits at tier 2 (spilled)" 2
        (Service.candidate_tier svc child);
      check Alcotest.bool "spill counted" true (Service.spills svc >= 1);
      let after = Service.resume svc child ~choice:0 () in
      same_outcome "resume across the disk round-trip" baseline after;
      check Alcotest.bool "promotion loaded from disk" true
        (Service.spill_loads svc >= 1);
      check Alcotest.int "no reconstruction fell back to replay" 0
        (Service.replays svc)
    | _ -> Alcotest.fail "expected a child choice point")
  | _ -> Alcotest.fail "expected a choice point"

let service_alloc_fail_contained () =
  (* An injected Alloc_fail mid-resume must return Crashed without
     corrupting sibling candidates. *)
  let svc, outcome = Service.boot locality_image in
  match outcome with
  | Service.Ready { candidate; _ } ->
    let baseline = Service.resume svc candidate ~choice:0 () in
    let phys = Service.phys svc in
    let armed =
      Inject.arm
        { Inject.seed = 0;
          faults = [ Inject.Alloc_fail (Mem.Phys_mem.next_frame_ordinal phys) ] }
    in
    Mem.Phys_mem.set_alloc_fault phys (Inject.alloc_hook armed);
    (match Service.resume svc candidate ~choice:1 () with
    | Service.Crashed _ -> ()
    | _ -> Alcotest.fail "expected the injected fault to crash the resume");
    check Alcotest.bool "classified as allocation failure, not a kill" true
      (Service.last_crash_reason svc = None);
    Mem.Phys_mem.set_alloc_fault phys None;
    (* the sibling path is bit-identical resumable after the crash *)
    same_outcome "sibling resume after injected crash" baseline
      (Service.resume svc candidate ~choice:0 ())
  | _ -> Alcotest.fail "expected a choice point"

(* {1 Multi-tenant pool} *)

let pool_roots pool n image =
  List.init n (fun _ ->
      match Tenancy.boot pool image with
      | Tenancy.Admitted (id, Service.Ready { candidate; _ }) -> (id, candidate)
      | Tenancy.Admitted (_, _) -> Alcotest.fail "tenant boot missed its choice point"
      | Tenancy.Queued _ | Tenancy.Rejected -> Alcotest.fail "tenant boot refused")

let tenancy_dedup_shares_image_frames () =
  let pool = Tenancy.create () in
  let tenants = pool_roots pool 8 locality_image in
  let phys = Tenancy.phys pool in
  let pages =
    (String.length locality_image.code + Mem.Page.size - 1) / Mem.Page.size
  in
  let entries = Mem.Phys_mem.dedup_entries phys in
  (* identical pages within ONE image (zeroed arena pages) hash-cons to a
     single entry too, so the table is no larger than the page count *)
  check Alcotest.bool "image pages hash-consed" true
    (entries >= 1 && entries <= pages);
  check Alcotest.int "one reference per mapped page per tenant"
    (8 * pages) (Mem.Phys_mem.dedup_refs phys);
  check Alcotest.int "all but the first-sight pages came from the table"
    ((8 * pages) - entries) (Mem.Phys_mem.dedup_hits phys);
  check Alcotest.bool "sharing multiplier at least the tenant count" true
    (Tenancy.dedup_ratio pool >= 8.0);
  (* refcounts return to zero at teardown *)
  List.iter (fun (id, _) -> Tenancy.kill pool id) tenants;
  check Alcotest.int "dedup references drain at teardown" 0
    (Mem.Phys_mem.dedup_refs phys);
  check Alcotest.int "dedup table empties with the last tenant" 0
    (Mem.Phys_mem.dedup_entries phys)

let tenancy_fault_containment () =
  (* kill one tenant with an injected allocation fault; its siblings'
     candidates stay bit-identical resumable *)
  let pool = Tenancy.create () in
  (match pool_roots pool 3 locality_image with
  | [ (t0, r0); (t1, r1); (t2, r2) ] ->
    let run id r ~choice =
      check Alcotest.bool "posted" true (Tenancy.post pool id r ~choice ());
      match Tenancy.step pool with
      | Some (id', outcome) ->
        check Alcotest.int "round-robin served the poster" id id';
        outcome
      | None -> Alcotest.fail "pool had work but no step"
    in
    let baseline0 = run t0 r0 ~choice:0 in
    (* aim the fault at tenant 1's next allocation *)
    let phys = Tenancy.phys pool in
    check Alcotest.bool "victim posted" true (Tenancy.post pool t1 r1 ~choice:0 ());
    check (Alcotest.option Alcotest.int) "victim is next" (Some t1)
      (Tenancy.next_tenant pool);
    let armed =
      Inject.arm
        { Inject.seed = 1;
          faults = [ Inject.Alloc_fail (Mem.Phys_mem.next_frame_ordinal phys) ] }
    in
    Mem.Phys_mem.set_alloc_fault phys (Inject.alloc_hook armed);
    (match Tenancy.step pool with
    | Some (id, Service.Crashed _) -> check Alcotest.int "victim crashed" t1 id
    | _ -> Alcotest.fail "expected the victim to crash");
    Mem.Phys_mem.set_alloc_fault phys None;
    (match Tenancy.state pool t1 with
    | Some (Tenancy.Crashed _) -> ()
    | _ -> Alcotest.fail "victim not marked crashed");
    check Alcotest.bool "crashed tenant refuses new work" false
      (Tenancy.post pool t1 r1 ~choice:0 ());
    check Alcotest.int "one crash counted" 1 (Tenancy.crashes pool);
    (* survivors: bit-identical to their fault-free resumes *)
    same_outcome "survivor t0 after the storm" baseline0 (run t0 r0 ~choice:0);
    (match run t2 r2 ~choice:0 with
    | Service.Ready _ -> ()
    | _ -> Alcotest.fail "survivor t2 lost its choice point");
    check Alcotest.int "two tenants still live" 2 (Tenancy.live_tenants pool)
  | _ -> Alcotest.fail "expected three tenants")

let tenancy_round_robin_is_fair () =
  let pool = Tenancy.create () in
  match pool_roots pool 2 locality_image with
  | [ (t0, r0); (t1, r1) ] ->
    (* t0 floods the pool with work before t1 posts anything; the schedule
       must still alternate — one slot per tenant per round *)
    ignore (Tenancy.post pool t0 r0 ~choice:0 ());
    ignore (Tenancy.post pool t0 r0 ~choice:1 ());
    ignore (Tenancy.post pool t0 r0 ~choice:0 ());
    ignore (Tenancy.post pool t1 r1 ~choice:0 ());
    ignore (Tenancy.post pool t1 r1 ~choice:1 ());
    let order =
      List.init 5 (fun _ ->
          match Tenancy.step pool with
          | Some (id, _) -> id
          | None -> Alcotest.fail "queued work vanished")
    in
    check (Alcotest.list Alcotest.int) "one slot per tenant per round"
      [ t0; t1; t0; t1; t0 ] order;
    check Alcotest.bool "drained" true (Tenancy.step pool = None)
  | _ -> Alcotest.fail "expected two tenants"

let tenancy_admission_control () =
  let pool = Tenancy.create ~max_tenants:2 ~queue_limit:1 () in
  let _tenants = pool_roots pool 2 locality_image in
  (match Tenancy.boot pool locality_image with
  | Tenancy.Queued 1 -> ()
  | _ -> Alcotest.fail "third boot should queue");
  (match Tenancy.boot pool locality_image with
  | Tenancy.Rejected -> ()
  | _ -> Alcotest.fail "fourth boot should be rejected: queue full");
  check Alcotest.int "nothing admitted while full" 0
    (List.length (Tenancy.pump pool));
  check Alcotest.int "still one pending boot" 1 (Tenancy.pending_boots pool);
  (* room opens; the queued boot must eventually be admitted (backoff may
     push the retry a few pumps out) *)
  Tenancy.kill pool 0;
  let rec pump_until n =
    if n = 0 then Alcotest.fail "queued boot never admitted"
    else
      match Tenancy.pump pool with
      | [] -> pump_until (n - 1)
      | [ (_, Service.Ready _) ] -> ()
      | _ -> Alcotest.fail "unexpected admission result"
  in
  pump_until 20;
  check Alcotest.int "queue drained" 0 (Tenancy.pending_boots pool);
  check Alcotest.int "admissions counted" 3 (Tenancy.admits pool);
  check Alcotest.int "rejections counted" 1 (Tenancy.rejects pool)

let tenancy_deadline_kills_runaway () =
  (* extension 1 spins forever; the pool deadline must kill that tenant
     alone, classified as a deadline kill, and leave its sibling intact *)
  let spin_image =
    assemble ~entry:"main"
      ([ label "main" ]
      @ Wl_common.sys_guess_imm ~n:2
      @ [ cmp R.rax (i 1); je "spin" ]
      @ Wl_common.sys_exit ~status:0
      @ [ label "spin"; jmp "spin" ])
  in
  let pool = Tenancy.create ~deadline:5_000 () in
  match pool_roots pool 2 spin_image with
  | [ (t0, r0); (t1, r1) ] ->
    ignore (Tenancy.post pool t0 r0 ~choice:1 ());
    (match Tenancy.step pool with
    | Some (id, Service.Crashed _) -> check Alcotest.int "runaway killed" t0 id
    | _ -> Alcotest.fail "expected a deadline kill");
    check Alcotest.int "classified as deadline kill" 1
      (Tenancy.deadline_kills pool);
    (match Tenancy.state pool t0 with
    | Some (Tenancy.Crashed _) -> ()
    | _ -> Alcotest.fail "runaway not marked crashed");
    ignore (Tenancy.post pool t1 r1 ~choice:0 ());
    (match Tenancy.step pool with
    | Some (id, Service.Finished { status; _ }) ->
      check Alcotest.int "sibling survives" t1 id;
      check Alcotest.int "sibling exits cleanly" 0 status
    | _ -> Alcotest.fail "sibling should finish")
  | _ -> Alcotest.fail "expected two tenants"

let tenancy_frame_budget_degrades_fairly () =
  (* Probe the per-step working set on an unbudgeted pool, then give a
     budget a wide frontier will exceed: the pool must demote the tenant's
     cold candidates back under it (fair degradation), not evict — and a
     hopeless budget must evict.

     The shape matters: frontier siblings off one root are reclaimable
     (demoted, their delta frames free immediately — no child shares
     them), whereas the anchor chain under the machine's current state is
     pinned by design.  Fanning out from the root keeps the irreducible
     footprint at one candidate's delta, so a modest budget is something
     demotion can actually maintain. *)
  let image =
    Workloads.Locality.program
      { depth = 4; branch = 2; touch_pages = 4; work = 1; arena_pages = 16 }
  in
  let drive pool id root rounds =
    let cur = ref root in
    for k = 1 to rounds do
      ignore (Tenancy.post pool id !cur ~choice:(k mod 2) ());
      match Tenancy.step pool with
      | Some (_, Service.Ready { candidate; _ }) -> cur := candidate
      | Some (_, _) -> ()
      | None -> Alcotest.fail "pool had work but no step"
    done
  in
  (* resume the same root over and over: a frontier of siblings *)
  let fan pool id root rounds =
    for k = 1 to rounds do
      if not (Tenancy.post pool id root ~choice:(k mod 2) ()) then
        Alcotest.fail "tenant stopped running mid-fan";
      match Tenancy.step pool with
      | Some (_, Service.Ready _) -> ()
      | Some (_, Service.Crashed msg) ->
        Alcotest.fail ("tenant crashed mid-fan: " ^ msg)
      | Some (_, _) -> Alcotest.fail "root stopped publishing mid-fan"
      | None -> Alcotest.fail "pool had work but no step"
    done
  in
  let probe = Tenancy.create () in
  let ws =
    match pool_roots probe 1 image with
    | [ (id, root) ] ->
      drive probe id root 1;
      Tenancy.tenant_frames probe id
    | _ -> Alcotest.fail "probe boot failed"
  in
  check Alcotest.bool "probe found a real working set" true (ws >= 4);
  let budget = (2 * ws) + 4 in
  let pool = Tenancy.create ~frame_budget:budget () in
  (match pool_roots pool 1 image with
  | [ (id, root) ] ->
    fan pool id root 12;
    check Alcotest.bool "tenant still running" true
      (Tenancy.state pool id = Some Tenancy.Running);
    check Alcotest.int "no eviction needed" 0 (Tenancy.budget_evictions pool);
    check Alcotest.bool "payloads were demoted to fit" true
      (Service.demotions (Tenancy.service pool id) > 0);
    check Alcotest.bool "budget respected after degradation" true
      (Tenancy.tenant_frames pool id <= budget)
  | _ -> Alcotest.fail "budgeted boot failed");
  (* a budget below the live working set is incompressible: evict *)
  let pool2 = Tenancy.create ~frame_budget:2 () in
  match pool_roots pool2 1 image with
  | [ (id, root) ] ->
    drive pool2 id root 1;
    check Alcotest.bool "incompressible tenant evicted" true
      (Tenancy.state pool2 id = Some (Tenancy.Evicted "frame budget"));
    check Alcotest.int "eviction counted" 1 (Tenancy.budget_evictions pool2)
  | _ -> Alcotest.fail "tiny-budget boot failed"

let tenancy_shared_pressure_pool () =
  (* Many tenants over one bounded pool: pressure must demote across
     tenants rather than fail allocations, and every tenant's search must
     still complete correctly. *)
  let image =
    Workloads.Locality.program
      { depth = 3; branch = 2; touch_pages = 2; work = 1; arena_pages = 8 }
  in
  (* fault-free footprint of ONE tenant *)
  let probe = Tenancy.create () in
  let dfs pool id root =
    (* exhaustive DFS via the pool, returning terminal outputs in order *)
    let terminals = ref [] in
    let rec go r =
      ignore (Tenancy.post pool id r ~choice:0 ());
      ignore (Tenancy.post pool id r ~choice:1 ());
      (* requests are queued FIFO per tenant; serve both *)
      for _ = 1 to 2 do
        match Tenancy.step pool with
        | Some (_, Service.Ready { candidate; _ }) -> go candidate
        | Some (_, Service.Finished { status; output }) ->
          terminals := (status, output) :: !terminals
        | Some (_, Service.Failed { output }) ->
          terminals := (-1, output) :: !terminals
        | Some (_, Service.Crashed msg) -> Alcotest.fail ("crash: " ^ msg)
        | None -> Alcotest.fail "queued request vanished"
      done
    in
    go root;
    List.rev !terminals
  in
  let baseline =
    match pool_roots probe 1 image with
    | [ (id, root) ] -> dfs probe id root
    | _ -> Alcotest.fail "probe boot failed"
  in
  let peak = Mem.Phys_mem.peak_frames_live (Tenancy.phys probe) in
  (* four tenants under a pool budget well below 4x one tenant's peak *)
  let capacity = max 48 (peak * 2) in
  let pool = Tenancy.create ~capacity () in
  let tenants = pool_roots pool 4 image in
  List.iter
    (fun (id, root) ->
      let got = dfs pool id root in
      check
        (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
        (Printf.sprintf "tenant %d terminal set" id)
        baseline got)
    tenants;
  check Alcotest.bool "budget respected" true
    (Mem.Phys_mem.peak_frames_live (Tenancy.phys pool) <= capacity);
  check Alcotest.int "all tenants survived" 4 (Tenancy.live_tenants pool)

let tests =
  [ Alcotest.test_case "nqueens all sizes" `Quick nqueens_all_sizes;
    Alcotest.test_case "nqueens boards match host" `Quick nqueens_boards_match_host;
    Alcotest.test_case "counting tree exact" `Quick counting_tree_exact;
    Alcotest.test_case "frame recycling is invisible" `Quick
      recycling_is_invisible;
    Alcotest.test_case "scope returns 0 after exhaustion" `Quick
      strategy_scope_returns_zero_after_exhaustion;
    Alcotest.test_case "guess outside scope aborts" `Quick guess_outside_scope_aborts;
    Alcotest.test_case "first-exit mode" `Quick first_exit_mode_stops;
    Alcotest.test_case "all-solutions subset sum" `Quick all_solutions_subset_sum;
    Alcotest.test_case "coloring counts" `Quick coloring_counts;
    Alcotest.test_case "stdout survives backtracking" `Quick output_survives_backtracking;
    Alcotest.test_case "file writes contained" `Quick file_writes_are_contained;
    Alcotest.test_case "killed path does not stop search" `Quick
      killed_path_does_not_stop_search;
    Alcotest.test_case "hint plumbing" `Quick hint_drives_astar;
    Alcotest.test_case "extension budget aborts" `Quick max_extensions_aborts;
    Alcotest.test_case "shared page survives backtracking" `Quick
      shared_page_survives_backtracking;
    Alcotest.test_case "timeout kills runaway extension" `Quick
      timeout_kills_runaway_extension;
    Alcotest.test_case "beam strategy" `Quick beam_strategy_runs;
    Alcotest.test_case "bounded dfs prunes" `Quick dfs_bounded_prunes_depth;
    Alcotest.test_case "snapshot parent chain" `Quick snapshot_parent_chain;
    Alcotest.test_case "snapshot ids are per-run" `Quick snapshot_ids_are_per_run;
    Alcotest.test_case "snapshot ids atomic across domains" `Quick
      snapshot_ids_atomic_across_domains;
    Alcotest.test_case "service resume repeatable" `Quick service_resume_is_repeatable;
    Alcotest.test_case "service distinct branches" `Quick service_distinct_branches;
    Alcotest.test_case "service incremental dpll" `Quick service_guest_dpll_increments;
    Alcotest.test_case "service release" `Quick service_release;
    Alcotest.test_case "explorer survives memory pressure" `Quick
      explorer_survives_memory_pressure;
    Alcotest.test_case "service resume survives eviction" `Quick
      service_resume_survives_eviction;
    Alcotest.test_case "reclaim tier transitions" `Quick
      reclaim_tier_transitions;
    Alcotest.test_case "reclaim pressure allocates no frames" `Quick
      reclaim_pressure_handler_allocates_no_frames;
    Alcotest.test_case "reclaim truncated chain replays" `Quick
      reclaim_truncated_chain_falls_back_to_replay;
    Alcotest.test_case "reclaim pinned root stops at tier 1" `Quick
      reclaim_pinned_root_stops_at_tier1;
    Alcotest.test_case "reclaim spill roundtrip" `Quick
      reclaim_spill_roundtrip;
    reclaim_tier_roundtrip_prop;
    Alcotest.test_case "service spill threshold end to end" `Quick
      service_spill_threshold_end_to_end;
    Alcotest.test_case "service alloc fail contained" `Quick
      service_alloc_fail_contained;
    Alcotest.test_case "tenancy dedup shares image frames" `Quick
      tenancy_dedup_shares_image_frames;
    Alcotest.test_case "tenancy fault containment" `Quick
      tenancy_fault_containment;
    Alcotest.test_case "tenancy round robin fair" `Quick
      tenancy_round_robin_is_fair;
    Alcotest.test_case "tenancy admission control" `Quick
      tenancy_admission_control;
    Alcotest.test_case "tenancy deadline kill" `Quick
      tenancy_deadline_kills_runaway;
    Alcotest.test_case "tenancy frame budget degrades fairly" `Quick
      tenancy_frame_budget_degrades_fairly;
    Alcotest.test_case "tenancy shared pressure pool" `Quick
      tenancy_shared_pressure_pool;
    Alcotest.test_case "divergent path killed by fuel" `Quick
      divergent_path_killed_by_fuel;
    Alcotest.test_case "native replay enumerates" `Quick native_bt_enumerates;
    Alcotest.test_case "native replay fail prunes" `Quick native_bt_fail_prunes;
    Alcotest.test_case "native replay cost" `Quick native_bt_replay_cost;
    Alcotest.test_case "native replay queens" `Quick native_bt_nqueens_matches;
    counting_tree_invariants;
    parallel_counts_match_sequential ]
