(* The memory substrate: COW address spaces, snapshots, the radix (EPT)
   backend, and their equivalence. *)

module As = Mem.Addr_space
module Ept = Mem.Ept
module Page = Mem.Page
module Phys = Mem.Phys_mem

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let fresh () = As.create (Phys.create ())

let page_geometry () =
  check Alcotest.int "size" 4096 Page.size;
  check Alcotest.int "vpn" 2 (Page.vpn_of_addr 8192);
  check Alcotest.int "offset" 17 (Page.offset_of_addr (8192 + 17));
  check Alcotest.int "round_up" 4096 (Page.round_up 1);
  check Alcotest.int "round_up aligned" 4096 (Page.round_up 4096);
  check Alcotest.int "round_down" 4096 (Page.round_down 5000);
  check Alcotest.bool "aligned" true (Page.is_aligned 8192)

let rw_roundtrip () =
  let t = fresh () in
  As.map_zero t ~vpn:1;
  As.write_u8 t 4096 0xAB;
  check Alcotest.int "u8" 0xAB (As.read_u8 t 4096);
  As.write_u64 t 4104 0x1234_5678_9ABC;
  check Alcotest.int "u64" 0x1234_5678_9ABC (As.read_u64 t 4104);
  As.write_u64 t 4104 (-42);
  check Alcotest.int "negative u64" (-42) (As.read_u64 t 4104)

let cross_page_access () =
  let t = fresh () in
  As.map_zero t ~vpn:1;
  As.map_zero t ~vpn:2;
  let addr = 8192 - 3 in
  As.write_u64 t addr 0x1122_3344_5566;
  check Alcotest.int "crossing u64" 0x1122_3344_5566 (As.read_u64 t addr);
  As.write_bytes t ~addr:(8192 - 2) "hello";
  check Alcotest.string "crossing bytes" "hello"
    (Bytes.to_string (As.read_bytes t ~addr:(8192 - 2) ~len:5))

let unmapped_faults () =
  let t = fresh () in
  (match As.read_u8 t 4096 with
  | _ -> Alcotest.fail "expected fault"
  | exception As.Page_fault { addr; access = As.Read } ->
    check Alcotest.int "fault addr" 4096 addr
  | exception As.Page_fault _ -> Alcotest.fail "wrong access kind");
  match As.write_u8 t 4096 1 with
  | () -> Alcotest.fail "expected write fault"
  | exception As.Page_fault { access = As.Write; _ } -> ()
  | exception As.Page_fault _ -> Alcotest.fail "wrong access kind"

let map_data_contents () =
  let t = fresh () in
  As.map_data t ~vpn:3 "content here";
  check Alcotest.string "data" "content here"
    (Bytes.to_string (As.read_bytes t ~addr:(3 * 4096) ~len:12));
  check Alcotest.int "zero filled tail" 0 (As.read_u8 t ((3 * 4096) + 100));
  As.unmap t ~vpn:3;
  check Alcotest.bool "unmapped" false (As.is_mapped t ~vpn:3)

let u64_boundary_paths_agree () =
  (* write_u64/read_u64 take a fast aligned path when the 8 bytes fit the
     page and a byte-assembled path when they straddle the boundary; the
     two must agree for every split. *)
  let t = fresh () in
  As.map_zero t ~vpn:1;
  As.map_zero t ~vpn:2;
  let v = 0x0123_4567_89AB_CDEF in
  for k = 0 to 8 do
    let addr = 8192 - k in
    As.write_u64 t addr v;
    check Alcotest.int (Printf.sprintf "read back, %d bytes before boundary" k)
      v (As.read_u64 t addr);
    let assembled = ref 0 in
    for i = 7 downto 0 do
      assembled := (!assembled lsl 8) lor As.read_u8 t (addr + i)
    done;
    check Alcotest.int (Printf.sprintf "bytes agree, %d before boundary" k)
      v !assembled
  done

let u64_crossing_into_unmapped_faults () =
  let t = fresh () in
  As.map_zero t ~vpn:1;
  (* vpn 2 unmapped: an access straddling into it must fault, not wrap *)
  (match As.read_u64 t (8192 - 4) with
  | _ -> Alcotest.fail "expected read fault"
  | exception As.Page_fault { access = As.Read; _ } -> ());
  match As.write_u64 t (8192 - 4) 0x1234_5678 with
  | () -> Alcotest.fail "expected write fault"
  | exception As.Page_fault { access = As.Write; _ } -> ()

let shared_page_unmap_is_local () =
  (* Two machines over one Phys_mem: A unmapping its shared page must not
     destroy the page for B.  Regression: unmap used to clear the global
     registry entry, killing the mapping for every sibling machine. *)
  let phys = Phys.create () in
  let a = As.create phys and b = As.create phys in
  As.map_shared a ~vpn:5;
  As.write_u64 a (5 * 4096) 42;
  check Alcotest.bool "B sees the shared page" true (As.is_shared b ~vpn:5);
  check Alcotest.int "B reads through" 42 (As.read_u64 b (5 * 4096));
  As.unmap a ~vpn:5;
  check Alcotest.bool "A lost it" false (As.is_mapped a ~vpn:5);
  check Alcotest.bool "B keeps it" true (As.is_mapped b ~vpn:5);
  check Alcotest.int "B still reads 42" 42 (As.read_u64 b (5 * 4096));
  As.write_u64 b (5 * 4096) 43;
  check Alcotest.int "B still writes through" 43 (As.read_u64 b (5 * 4096));
  (match As.read_u8 a (5 * 4096) with
  | _ -> Alcotest.fail "A must fault after its unmap"
  | exception As.Page_fault _ -> ());
  (* remapping brings A back to the same system-wide frame *)
  As.map_shared a ~vpn:5;
  check Alcotest.int "A rejoins the sharing" 43 (As.read_u64 a (5 * 4096))

let share_shoots_down_sibling_tlbs () =
  (* Regression (found by [sharing_matches_model]): B translates vpn 3
     privately, filling its TLB; A then shares the same vpn.  Without the
     share-epoch shootdown B's next access hit the cached private frame
     instead of the now-authoritative shared one. *)
  let phys = Phys.create () in
  let a = As.create phys and b = As.create phys in
  As.map_data b ~vpn:3 "\007";
  check Alcotest.int "B fills its TLB from the private frame" 7
    (As.read_u8 b (3 * 4096));
  As.map_shared a ~vpn:3;
  As.write_u8 a (3 * 4096) 9;
  check Alcotest.int "B's stale translation was shot down" 9
    (As.read_u8 b (3 * 4096));
  (* tearing the sharing down again must also invalidate B's (now shared)
     translation, exposing the private frame underneath *)
  Phys.clear_shared_page phys ~vpn:3;
  check Alcotest.int "B falls back to its private frame" 7
    (As.read_u8 b (3 * 4096))

let snapshot_immutable () =
  let t = fresh () in
  As.map_zero t ~vpn:0;
  As.write_u64 t 0 111;
  let snap = As.snapshot t in
  As.write_u64 t 0 222;
  As.write_u64 t 8 333;
  check Alcotest.int "current sees new" 222 (As.read_u64 t 0);
  As.restore t snap;
  check Alcotest.int "snapshot preserved" 111 (As.read_u64 t 0);
  check Alcotest.int "snapshot preserved 2" 0 (As.read_u64 t 8)

let snapshot_tree () =
  let t = fresh () in
  As.map_zero t ~vpn:0;
  As.write_u8 t 0 1;
  let root = As.snapshot t in
  As.write_u8 t 0 2;
  let left = As.snapshot t in
  As.restore t root;
  As.write_u8 t 0 3;
  let right = As.snapshot t in
  As.restore t left;
  check Alcotest.int "left" 2 (As.read_u8 t 0);
  As.restore t right;
  check Alcotest.int "right" 3 (As.read_u8 t 0);
  As.restore t root;
  check Alcotest.int "root" 1 (As.read_u8 t 0)

let snapshot_zero_cost () =
  let phys = Phys.create () in
  let t = As.create phys in
  for vpn = 0 to 63 do
    As.map_zero t ~vpn
  done;
  As.write_u64 t 0 7;
  let before = (Phys.metrics phys).Mem.Mem_metrics.pages_copied in
  let _snapshots = List.init 100 (fun _ -> As.snapshot t) in
  let after = (Phys.metrics phys).Mem.Mem_metrics.pages_copied in
  check Alcotest.int "capture copies nothing" before after

let cow_accounting () =
  let phys = Phys.create () in
  let t = As.create phys in
  As.map_data t ~vpn:0 "a";
  As.map_data t ~vpn:1 "b";
  let _snap = As.snapshot t in
  let m0 = Mem.Mem_metrics.copy (Phys.metrics phys) in
  As.write_u8 t 0 1;
  As.write_u8 t 1 2;      (* same page: no second fault *)
  As.write_u8 t 4096 3;   (* second page *)
  let diff = Mem.Mem_metrics.diff (Phys.metrics phys) m0 in
  check Alcotest.int "two COW faults" 2 diff.Mem.Mem_metrics.cow_faults;
  check Alcotest.int "two pages copied" 2 diff.Mem.Mem_metrics.pages_copied

let zero_page_sharing () =
  let phys = Phys.create () in
  let t = As.create phys in
  for vpn = 0 to 999 do
    As.map_zero t ~vpn
  done;
  check Alcotest.int "no frames for zero pages" 0 (Phys.frames_allocated phys);
  As.write_u8 t 0 1;
  check Alcotest.int "one frame after write" 1 (Phys.frames_allocated phys);
  let m = Phys.metrics phys in
  check Alcotest.int "counted as zero fill" 1 m.Mem.Mem_metrics.zero_fills

let distinct_frames_sharing () =
  let t = fresh () in
  for vpn = 0 to 9 do
    As.map_data t ~vpn "x"
  done;
  let a = As.snapshot t in
  As.write_u8 t 0 1;
  let b = As.snapshot t in
  check Alcotest.int "a alone" 10 (As.distinct_frames [ a ]);
  check Alcotest.int "shared pages counted once" 11 (As.distinct_frames [ a; b ]);
  check Alcotest.int "delta" 1 (As.delta_pages a b)

let restore_then_diverge () =
  let t = fresh () in
  As.map_zero t ~vpn:0;
  let snap = As.snapshot t in
  As.restore t snap;
  As.write_u8 t 0 9;
  As.restore t snap;
  check Alcotest.int "snapshot still intact" 0 (As.read_u8 t 0)

let shared_pages_survive_restores () =
  let t = fresh () in
  As.map_zero t ~vpn:0;
  As.map_shared t ~vpn:5;
  let shared_addr = 5 * 4096 in
  As.write_u64 t shared_addr 1;
  let snap = As.snapshot t in
  As.write_u64 t shared_addr 2;
  As.write_u64 t 0 99;
  As.restore t snap;
  check Alcotest.int "private rolled back" 0 (As.read_u64 t 0);
  check Alcotest.int "shared survives" 2 (As.read_u64 t shared_addr);
  check Alcotest.bool "reported shared" true (As.is_shared t ~vpn:5);
  check Alcotest.bool "not shared" false (As.is_shared t ~vpn:0)

let shared_pages_never_cow () =
  let phys = Phys.create () in
  let t = As.create phys in
  As.map_shared t ~vpn:0;
  let m0 = Mem.Mem_metrics.copy (Phys.metrics phys) in
  for round = 1 to 10 do
    let _ = As.snapshot t in
    As.write_u64 t 0 round
  done;
  let diff = Mem.Mem_metrics.diff (Phys.metrics phys) m0 in
  check Alcotest.int "no COW on shared writes" 0 diff.Mem.Mem_metrics.cow_faults;
  check Alcotest.int "accumulated" 10 (As.read_u64 t 0)

let shared_preserves_content () =
  let t = fresh () in
  As.map_data t ~vpn:3 "precious";
  As.map_shared t ~vpn:3;
  check Alcotest.string "content carried over" "precious"
    (Bytes.to_string (As.read_bytes t ~addr:(3 * 4096) ~len:8));
  As.unmap t ~vpn:3;
  check Alcotest.bool "unmap clears sharing" false (As.is_shared t ~vpn:3)

(* {1 EPT backend} *)

let ept_fresh () = Ept.create (Phys.create ())

let ept_basic () =
  let t = ept_fresh () in
  Ept.map_zero t ~vpn:5;
  Ept.write_u64 t (5 * 4096) 77;
  check Alcotest.int "u64" 77 (Ept.read_u64 t (5 * 4096));
  check Alcotest.int "mapped" 1 (Ept.mapped_pages t);
  Ept.unmap t ~vpn:5;
  check Alcotest.bool "unmapped" false (Ept.is_mapped t ~vpn:5)

let ept_snapshot_pt_cow () =
  let phys = Phys.create () in
  let t = Ept.create phys in
  Ept.map_data t ~vpn:0 "x";
  let snap = Ept.snapshot t in
  let m0 = Mem.Mem_metrics.copy (Phys.metrics phys) in
  Ept.write_u8 t 0 9;
  let diff = Mem.Mem_metrics.diff (Phys.metrics phys) m0 in
  (* first post-snapshot write path-copies the table: root + 3 levels *)
  check Alcotest.int "page-table nodes copied" Ept.levels diff.Mem.Mem_metrics.pt_node_copies;
  check Alcotest.int "one data COW" 1 diff.Mem.Mem_metrics.cow_faults;
  Ept.restore t snap;
  check Alcotest.int "snapshot intact" (Char.code 'x') (Ept.read_u8 t 0)

let ept_deep_vpn () =
  let t = ept_fresh () in
  (* exercise all four radix levels: a vpn needing high-level indices *)
  let vpn = (3 lsl 27) lor (5 lsl 18) lor (7 lsl 9) lor 11 in
  Ept.map_zero t ~vpn;
  Ept.write_u8 t (Page.addr_of_vpn vpn) 123;
  check Alcotest.int "deep page" 123 (Ept.read_u8 t (Page.addr_of_vpn vpn));
  check Alcotest.bool "not a neighbour" false (Ept.is_mapped t ~vpn:(vpn + 1))

(* random operation script applied to both backends must agree *)
type op =
  | Map of int
  | MapData of int * int
  | Unmap of int
  | Write of int * int
  | WriteBytes of int * int  (* page-crossing multi-byte write *)
  | Seal
  | Snapshot
  | Restore of int

let op_gen =
  QCheck2.Gen.(
    oneof
      [ map (fun v -> Map (v land 15)) small_int;
        map2 (fun v x -> MapData (v land 15, x land 0xff)) small_int small_int;
        map (fun v -> Unmap (v land 15)) small_int;
        map2 (fun v x -> Write (v land 15, x land 0xff)) small_int small_int;
        map2 (fun v x -> WriteBytes (v land 15, x land 0xff)) small_int small_int;
        return Seal;
        return Snapshot;
        map (fun k -> Restore k) small_int ])

let backends_agree =
  qtest ~count:100 "Addr_space and Ept agree on random scripts"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 60) op_gen)
    (fun script ->
      let a = fresh () in
      let e = ept_fresh () in
      let a_snaps = ref [] and e_snaps = ref [] in
      let agree = ref true in
      List.iter
        (fun op ->
          match op with
          | Map vpn ->
            As.map_zero a ~vpn;
            Ept.map_zero e ~vpn
          | MapData (vpn, v) ->
            let data = String.make 5 (Char.chr v) in
            As.map_data a ~vpn data;
            Ept.map_data e ~vpn data
          | Unmap vpn ->
            As.unmap a ~vpn;
            Ept.unmap e ~vpn
          | Write (vpn, v) ->
            let addr = Page.addr_of_vpn vpn + (v mod 64) in
            let ra = try As.write_u8 a addr v; `Ok with As.Page_fault _ -> `Fault in
            let re = try Ept.write_u8 e addr v; `Ok with As.Page_fault _ -> `Fault in
            if ra <> re then agree := false
          | WriteBytes (vpn, v) ->
            (* straddles the page boundary; faults (possibly mid-write,
               leaving a partial prefix) must match byte for byte *)
            let addr = Page.addr_of_vpn vpn + Page.size - 5 in
            let data = String.init 11 (fun i -> Char.chr ((v + i) land 0xff)) in
            let ra =
              try As.write_bytes a ~addr data; `Ok with As.Page_fault _ -> `Fault
            in
            let re =
              try Ept.write_bytes e ~addr data; `Ok with As.Page_fault _ -> `Fault
            in
            if ra <> re then agree := false
          | Seal ->
            (* Addr_space-only generation retirement: observationally inert,
               so equivalence with Ept must survive it *)
            As.seal a
          | Snapshot ->
            a_snaps := As.snapshot a :: !a_snaps;
            e_snaps := Ept.snapshot e :: !e_snaps
          | Restore k -> (
            match !a_snaps, !e_snaps with
            | [], [] -> ()
            | sa, se ->
              let k = k mod List.length sa in
              As.restore a (List.nth sa k);
              Ept.restore e (List.nth se k)))
        script;
      (* compare first and last bytes of every reachable page (crossing
         writes from vpn 15 can touch vpn 16) *)
      !agree
      && List.for_all
           (fun vpn ->
             List.for_all
               (fun addr ->
                 let ra = try `V (As.read_u8 a addr) with As.Page_fault _ -> `F in
                 let re = try `V (Ept.read_u8 e addr) with As.Page_fault _ -> `F in
                 ra = re)
               [ Page.addr_of_vpn vpn; Page.addr_of_vpn vpn + Page.size - 1 ])
           (List.init 17 Fun.id))

(* Two address spaces on one Phys_mem, exercising explicit sharing,
   unmap-of-shared locality (the PR 1 fix) and snapshot/restore
   interleavings, against a first-byte reference model implementing the
   documented semantics: shared pages resolve before private ones, an
   unmap hides a shared page for that space only, and neither the
   sharing registry nor the hidden set rolls back on restore. *)
module Imap = Map.Make (Int)

type shop =
  | S_map_zero of int * int
  | S_map_data of int * int * int
  | S_map_shared of int * int
  | S_unmap of int * int
  | S_write of int * int * int
  | S_snapshot of int
  | S_restore of int * int

let shop_gen =
  QCheck2.Gen.(
    let sp = int_range 0 1 and vp = int_range 0 7 in
    oneof
      [ map2 (fun s v -> S_map_zero (s, v)) sp vp;
        map3 (fun s v b -> S_map_data (s, v, b land 0xff)) sp vp small_int;
        map2 (fun s v -> S_map_shared (s, v)) sp vp;
        map2 (fun s v -> S_unmap (s, v)) sp vp;
        map3 (fun s v b -> S_write (s, v, b land 0xff)) sp vp small_int;
        map (fun s -> S_snapshot s) sp;
        map2 (fun s k -> S_restore (s, k land 7)) sp small_int ])

let sharing_matches_model =
  qtest ~count:150 "two machines + sharing agree with a reference model"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 80) shop_gen)
    (fun script ->
      let phys = Phys.create () in
      let spaces = [| As.create phys; As.create phys |] in
      let snaps = [| ref []; ref [] |] in
      (* the model: per-space private first-byte maps and hidden sets, one
         global shared-content table *)
      let m_shared : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
      let m_priv = [| ref Imap.empty; ref Imap.empty |] in
      let m_hidden = [| Hashtbl.create 8; Hashtbl.create 8 |] in
      let m_snaps = [| ref []; ref [] |] in
      let visible s vpn =
        Hashtbl.mem m_shared vpn && not (Hashtbl.mem m_hidden.(s) vpn)
      in
      let agree = ref true in
      List.iter
        (fun op ->
          match op with
          | S_map_zero (s, vpn) ->
            As.map_zero spaces.(s) ~vpn;
            m_priv.(s) := Imap.add vpn 0 !(m_priv.(s))
          | S_map_data (s, vpn, b) ->
            As.map_data spaces.(s) ~vpn (String.make 3 (Char.chr b));
            m_priv.(s) := Imap.add vpn b !(m_priv.(s))
          | S_map_shared (s, vpn) ->
            As.map_shared spaces.(s) ~vpn;
            Hashtbl.remove m_hidden.(s) vpn;
            if not (Hashtbl.mem m_shared vpn) then begin
              let init =
                match Imap.find_opt vpn !(m_priv.(s)) with
                | Some v -> v
                | None -> 0
              in
              Hashtbl.add m_shared vpn (ref init)
            end;
            m_priv.(s) := Imap.remove vpn !(m_priv.(s))
          | S_unmap (s, vpn) ->
            As.unmap spaces.(s) ~vpn;
            m_priv.(s) := Imap.remove vpn !(m_priv.(s));
            if Hashtbl.mem m_shared vpn then
              Hashtbl.replace m_hidden.(s) vpn ()
          | S_write (s, vpn, v) ->
            let ra =
              try
                As.write_u8 spaces.(s) (Page.addr_of_vpn vpn) v;
                `Ok
              with As.Page_fault _ -> `Fault
            in
            let rm =
              if visible s vpn then begin
                Hashtbl.find m_shared vpn := v;
                `Ok
              end
              else if Imap.mem vpn !(m_priv.(s)) then begin
                m_priv.(s) := Imap.add vpn v !(m_priv.(s));
                `Ok
              end
              else `Fault
            in
            if ra <> rm then agree := false
          | S_snapshot s ->
            snaps.(s) := As.snapshot spaces.(s) :: !(snaps.(s));
            m_snaps.(s) := !(m_priv.(s)) :: !(m_snaps.(s))
          | S_restore (s, k) -> (
            match !(snaps.(s)) with
            | [] -> ()
            | real ->
              let k = k mod List.length real in
              As.restore spaces.(s) (List.nth real k);
              m_priv.(s) := List.nth !(m_snaps.(s)) k))
        script;
      !agree
      && List.for_all
           (fun s ->
             List.for_all
               (fun vpn ->
                 let real_read =
                   try `V (As.read_u8 spaces.(s) (Page.addr_of_vpn vpn))
                   with As.Page_fault _ -> `F
                 in
                 let model_read =
                   if visible s vpn then `V !(Hashtbl.find m_shared vpn)
                   else
                     match Imap.find_opt vpn !(m_priv.(s)) with
                     | Some v -> `V v
                     | None -> `F
                 in
                 real_read = model_read
                 && As.is_mapped spaces.(s) ~vpn
                    = (visible s vpn || Imap.mem vpn !(m_priv.(s)))
                 && As.is_shared spaces.(s) ~vpn = visible s vpn)
               (List.init 8 Fun.id))
           [ 0; 1 ])

let write_read_model =
  qtest ~count:100 "reads return last write (byte model)"
    QCheck2.Gen.(list_size (int_range 1 100) (pair (int_range 0 8191) (int_range 0 255)))
    (fun writes ->
      let t = fresh () in
      As.map_zero t ~vpn:0;
      As.map_zero t ~vpn:1;
      let model = Hashtbl.create 64 in
      List.iter
        (fun (addr, v) ->
          Hashtbl.replace model addr v;
          As.write_u8 t addr v)
        writes;
      Hashtbl.fold (fun addr v acc -> acc && As.read_u8 t addr = v) model true)

(* --- Frame budget, memory pressure, allocation faults ---------------- *)

let capacity_enforced () =
  let phys = Phys.create ~capacity:8 () in
  let held = ref [] in
  for _ = 1 to 8 do held := Phys.alloc phys ~owner:1 :: !held done;
  check Alcotest.int "live at capacity" 8 (Phys.frames_live phys);
  (match Phys.alloc phys ~owner:1 with
  | _ -> Alcotest.fail "alloc beyond capacity must fail"
  | exception Phys.Out_of_frames { capacity; live } ->
      check Alcotest.int "reported capacity" 8 capacity;
      check Alcotest.int "reported live" 8 live);
  check Alcotest.bool "pressure protocol ran" true (Phys.pressure_events phys >= 1);
  check Alcotest.int "peak never overshoots" 8 (Phys.peak_frames_live phys);
  ignore (Sys.opaque_identity !held)

let pressure_handler_reclaims () =
  let phys = Phys.create ~capacity:8 () in
  let held = ref [] in
  for _ = 1 to 8 do held := Phys.alloc phys ~owner:1 :: !held done;
  (* The handler drops every held reference; the allocator's follow-up
     collection must then free the frames and let the allocation through. *)
  Phys.set_pressure_handler phys (Some (fun () -> held := []));
  let f = Phys.alloc phys ~owner:1 in
  check Alcotest.bool "alloc succeeds after reclaim" true (f.Phys.id > 0);
  check Alcotest.bool "live dropped below capacity" true
    (Phys.frames_live phys < 8);
  check Alcotest.int "peak is the pre-reclaim high-water mark" 8
    (Phys.peak_frames_live phys)

let injected_alloc_fault_single_shot () =
  let phys = Phys.create () in
  let inj = Inject.arm { Inject.seed = 0; faults = [ Inject.Alloc_fail 3 ] } in
  Phys.set_alloc_fault phys (Inject.alloc_hook inj);
  let f1 = Phys.alloc phys ~owner:1 in
  let f2 = Phys.alloc phys ~owner:1 in
  check Alcotest.bool "ordinals below the trigger pass" true
    (f1.Phys.id = 1 && f2.Phys.id = 2);
  (match Phys.alloc phys ~owner:1 with
  | _ -> Alcotest.fail "third allocation must hit the injected fault"
  | exception Phys.Out_of_frames _ -> ());
  (* The hook is single-shot: retrying the same ordinal succeeds, which is
     exactly the recovery contract the supervised schedulers rely on. *)
  let f3 = Phys.alloc phys ~owner:1 in
  check Alcotest.int "retry re-presents the same ordinal" 3 f3.Phys.id;
  let f4 = Phys.alloc phys ~owner:1 in
  check Alcotest.int "subsequent allocations unaffected" 4 f4.Phys.id

(* --- Frame recycling: free list, poison, explicit lifecycle ----------- *)

let crossing_u64_is_chunked () =
  (* Regression: a page-crossing write_u64/read_u64 used to fall back to a
     per-byte loop with a full translation each byte; it must now cost at
     most one walk per page touched (2 for a crossing access). *)
  let check_one access label =
    let phys = Phys.create () in
    let t = As.create phys in
    As.map_data t ~vpn:1 "x";
    As.map_data t ~vpn:2 "y";
    let addr = (2 * Page.size) - 3 in
    let m0 = Mem.Mem_metrics.copy (Phys.metrics phys) in
    access t addr;
    let d = Mem.Mem_metrics.diff (Phys.metrics phys) m0 in
    check Alcotest.bool (label ^ ": at most 2 walks") true
      (d.Mem.Mem_metrics.pt_walks <= 2);
    check Alcotest.bool (label ^ ": at most 2 tlb misses") true
      (d.Mem.Mem_metrics.tlb_misses <= 2)
  in
  check_one (fun t addr -> As.write_u64 t addr 0x1122_3344_5566_7788) "write";
  check_one (fun t addr -> ignore (As.read_u64 t addr)) "read"

let free_list_recycles_buffers () =
  let phys = Phys.create () in
  let f = Phys.alloc phys ~owner:1 in
  Bytes.set f.Phys.bytes 0 'z';
  Phys.free_frame phys f;
  check Alcotest.int "buffer pooled" 1 (Phys.free_buffers phys);
  check Alcotest.bool "marked freed" true f.Phys.freed;
  (match Phys.free_frame phys f with
  | () -> Alcotest.fail "double free must raise"
  | exception Invalid_argument _ -> ());
  (match Phys.free_frame phys (Phys.zero_frame phys) with
  | () -> Alcotest.fail "freeing the zero frame must raise"
  | exception Invalid_argument _ -> ());
  let g = Phys.alloc phys ~owner:2 in
  check Alcotest.int "pool drained" 0 (Phys.free_buffers phys);
  check Alcotest.bool "same buffer reused" true (g.Phys.bytes == f.Phys.bytes);
  check Alcotest.bool "fresh id (decode caches key on ids)" true
    (g.Phys.id <> f.Phys.id);
  check Alcotest.int "demand-zero alloc re-zeroes the dirty buffer" 0
    (Char.code (Bytes.get g.Phys.bytes 0));
  let m = Phys.metrics phys in
  check Alcotest.int "free counted" 1 m.Mem.Mem_metrics.frames_freed;
  check Alcotest.int "recycle counted" 1 m.Mem.Mem_metrics.frames_recycled

let no_pool_without_recycling () =
  let phys = Phys.create ~recycle:false () in
  let f = Phys.alloc phys ~owner:1 in
  Phys.free_frame phys f;
  check Alcotest.int "nothing pooled" 0 (Phys.free_buffers phys);
  check Alcotest.int "free still counted" 1
    (Phys.metrics phys).Mem.Mem_metrics.frames_freed;
  check Alcotest.int "no elision in the baseline cost model" 0
    (let g = Phys.alloc_data phys ~owner:1 "d" in
     ignore (Sys.opaque_identity g);
     (Phys.metrics phys).Mem.Mem_metrics.zero_fills_elided)

let poison_marks_freed_buffers () =
  let phys = Phys.create ~poison:true () in
  let f = Phys.alloc phys ~owner:1 in
  Bytes.set f.Phys.bytes 17 'q';
  Phys.free_frame phys f;
  check Alcotest.int "poison byte visible through stale aliases" 0xa5
    (Char.code (Bytes.get f.Phys.bytes 17))

let recycled_data_frame_clears_tail () =
  (* alloc_data elides the zero fill but must still clear the tail beyond
     the payload when handed a dirty recycled buffer. *)
  let phys = Phys.create () in
  let f = Phys.alloc phys ~owner:1 in
  Bytes.fill f.Phys.bytes 0 Page.size '\xff';
  Phys.free_frame phys f;
  let g = Phys.alloc_data phys ~owner:2 "hi" in
  check Alcotest.bool "recycled" true (g.Phys.bytes == f.Phys.bytes);
  check Alcotest.string "payload installed" "hi"
    (Bytes.sub_string g.Phys.bytes 0 2);
  check Alcotest.int "tail head cleared" 0 (Char.code (Bytes.get g.Phys.bytes 2));
  check Alcotest.int "tail end cleared" 0
    (Char.code (Bytes.get g.Phys.bytes (Page.size - 1)));
  check Alcotest.bool "elision counted" true
    ((Phys.metrics phys).Mem.Mem_metrics.zero_fills_elided >= 1)

let release_snapshot_frees_delta () =
  let phys = Phys.create () in
  let t = As.create phys in
  As.map_data t ~vpn:0 "a";
  As.map_data t ~vpn:1 "b";
  let parent = As.snapshot t in
  As.write_u8 t 0 1;
  As.write_u8 t Page.size 2;
  let child = As.snapshot t in
  As.restore t parent;
  let freed = As.release_snapshot ~phys ~parent child in
  check Alcotest.int "delta-vs-parent freed" 2 freed;
  check Alcotest.int "buffers pooled" 2 (Phys.free_buffers phys);
  check Alcotest.int "parent branch intact" (Char.code 'a') (As.read_u8 t 0);
  check Alcotest.int "parent branch intact 2" (Char.code 'b')
    (As.read_u8 t Page.size)

let discard_segment_frees_cow_tail () =
  let phys = Phys.create () in
  let t = As.create phys in
  As.map_data t ~vpn:0 "a";
  let s = As.snapshot t in
  let epoch = As.epoch t in
  As.write_u8 t 0 9;
  check Alcotest.int "no snapshot grabbed the segment" epoch (As.epoch t);
  let n = As.discard_segment t ~base:s in
  check Alcotest.int "one COW frame discarded" 1 n;
  As.restore t s;
  check Alcotest.int "base intact after the mandated restore" (Char.code 'a')
    (As.read_u8 t 0);
  check Alcotest.int "buffer pooled" 1 (Phys.free_buffers phys)

let restore_adopt_writes_in_place () =
  let phys = Phys.create () in
  let t = As.create phys in
  As.map_data t ~vpn:0 "a";
  let parent = As.snapshot t in
  As.write_u8 t 0 (Char.code 'b');
  let child = As.snapshot t in
  As.restore t parent;
  let m0 = Mem.Mem_metrics.copy (Phys.metrics phys) in
  let adopted = As.restore_adopt t ~parent child in
  check Alcotest.int "one frame adopted" 1 adopted;
  check Alcotest.int "child contents visible" (Char.code 'b') (As.read_u8 t 0);
  As.write_u8 t 0 (Char.code 'c');
  let d = Mem.Mem_metrics.diff (Phys.metrics phys) m0 in
  check Alcotest.int "write hits the adopted frame in place" 0
    d.Mem.Mem_metrics.cow_faults;
  check Alcotest.int "in-place write landed" (Char.code 'c') (As.read_u8 t 0);
  As.restore t parent;
  check Alcotest.int "parent never saw any of it" (Char.code 'a')
    (As.read_u8 t 0)

(* Random map/write/snapshot/restore/release interleavings on a poisoned
   allocator, against a first-byte model.  A release is only issued when
   the snapshot is provably dead (no live children, current map elsewhere,
   has a parent) — exactly the discipline [Core.Snapshot]'s refcounts
   enforce — and then no byte readable through any live snapshot or the
   current map may come from a freed (poisoned, recyclable) buffer. *)
type rop =
  | R_map of int
  | R_map_data of int * int
  | R_write of int * int
  | R_capture
  | R_restore of int
  | R_release of int

let rop_gen =
  QCheck2.Gen.(
    let vp = int_range 0 7 in
    (* values stay below 0x80 so the 0xa5 poison can never be legit data *)
    let bv = map (fun b -> b land 0x7f) small_int in
    oneof
      [ map (fun v -> R_map v) vp;
        map2 (fun v b -> R_map_data (v, b)) vp bv;
        map2 (fun v b -> R_write (v, b)) vp bv;
        return R_capture;
        map (fun k -> R_restore k) small_int;
        map (fun k -> R_release k) small_int ])

type rnode = {
  n_snap : As.snapshot;
  n_model : int option array;       (* first byte per vpn; None = unmapped *)
  n_parent : int option;            (* index into nodes; None = root *)
  mutable n_children : int;
  mutable n_released : bool;
}

let released_frames_never_alias_live_state =
  qtest ~count:300 "released delta frames never alias live-readable bytes"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 60) rop_gen)
    (fun script ->
      let phys = Phys.create ~poison:true () in
      let t = As.create phys in
      let model = Array.make 8 None in
      As.map_data t ~vpn:0 "s";
      model.(0) <- Some (Char.code 's');
      let nodes = ref [] in          (* newest first *)
      let nnodes = ref 0 in
      let node i = List.nth !nodes (!nnodes - 1 - i) in
      let add_node parent =
        (match parent with
        | Some p -> (node p).n_children <- (node p).n_children + 1
        | None -> ());
        nodes :=
          { n_snap = As.snapshot t; n_model = Array.copy model;
            n_parent = parent; n_children = 0; n_released = false }
          :: !nodes;
        incr nnodes;
        !nnodes - 1
      in
      let current = ref (add_node None) in    (* root: never released *)
      List.iter
        (fun op ->
          match op with
          | R_map vpn ->
            As.map_zero t ~vpn;
            model.(vpn) <- Some 0
          | R_map_data (vpn, b) ->
            As.map_data t ~vpn (String.make 2 (Char.chr b));
            model.(vpn) <- Some b
          | R_write (vpn, b) -> (
            match model.(vpn) with
            | Some _ ->
              As.write_u8 t (Page.addr_of_vpn vpn) b;
              model.(vpn) <- Some b
            | None -> ())
          | R_capture -> current := add_node (Some !current)
          | R_restore k ->
            let live = List.filter (fun n -> not n.n_released) !nodes in
            if live <> [] then begin
              let n = List.nth live (k mod List.length live) in
              As.restore t n.n_snap;
              Array.blit n.n_model 0 model 0 8;
              (* find its index back *)
              let idx = ref (-1) in
              List.iteri
                (fun j m -> if m == n then idx := !nnodes - 1 - j)
                !nodes;
              current := !idx
            end
          | R_release k ->
            let dead_candidates = ref [] in
            List.iteri
              (fun j n ->
                let i = !nnodes - 1 - j in
                if
                  (not n.n_released) && n.n_children = 0 && i <> !current
                  && n.n_parent <> None
                then dead_candidates := i :: !dead_candidates)
              !nodes;
            match !dead_candidates with
            | [] -> ()
            | cs ->
              let i = List.nth cs (k mod List.length cs) in
              let n = node i in
              let p = node (Option.get n.n_parent) in
              ignore
                (As.release_snapshot ~phys ~parent:p.n_snap n.n_snap);
              n.n_released <- true;
              p.n_children <- p.n_children - 1)
        script;
      (* Every live snapshot (and the map restored from it) must still read
         exactly its model: a freed frame reachable from live state would
         show the 0xa5 poison instead. *)
      List.for_all
        (fun n ->
          n.n_released
          ||
          (As.restore t n.n_snap;
           Array.to_list n.n_model
           |> List.mapi (fun vpn m -> vpn, m)
           |> List.for_all (fun (vpn, m) ->
                  match m with
                  | Some b -> (
                    try As.read_u8 t (Page.addr_of_vpn vpn) = b
                    with As.Page_fault _ -> false)
                  | None -> (
                    try
                      ignore (As.read_u8 t (Page.addr_of_vpn vpn));
                      false
                    with As.Page_fault _ -> true))))
        !nodes)

(* {1 Byte-level deltas (the tiered payload store's substrate)} *)

(* Random map/write/unmap scripts around two captures; the byte delta
   between the captures, applied over a restore of the parent, must rebuild
   the child's full image bit for bit — even from an unrelated machine
   state, and even after more mutation clobbered the map.  The same scripts
   check the full-image path ([base:None]). *)
type dop =
  | D_map_zero of int
  | D_map_data of int * int
  | D_write of int * int * int       (* vpn, offset, byte *)
  | D_unmap of int

let dop_gen =
  QCheck2.Gen.(
    let vp = int_range 0 7 in
    oneof
      [ map (fun v -> D_map_zero v) vp;
        map2 (fun v b -> D_map_data (v, b land 0xff)) vp small_int;
        map (fun (v, (o, b)) -> D_write (v, o, b land 0xff))
          (pair vp (pair (int_range 0 (Page.size - 1)) small_int));
        map (fun v -> D_unmap v) vp ])

let d_apply t op =
  match op with
  | D_map_zero vpn -> As.map_zero t ~vpn
  | D_map_data (vpn, b) -> As.map_data t ~vpn (String.make 3 (Char.chr b))
  | D_write (vpn, off, b) ->
    if As.is_mapped t ~vpn then As.write_u8 t (Page.addr_of_vpn vpn + off) b
  | D_unmap vpn -> As.unmap t ~vpn

let sorted_contents s =
  List.sort compare (As.snapshot_contents s)

let delta_roundtrip =
  qtest ~count:300 "snapshot byte delta applies back bit-identically"
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 30) dop_gen)
        (list_size (int_range 0 30) dop_gen)
        (list_size (int_range 0 15) dop_gen))
    (fun (s1, s2, s3) ->
      let t = As.create (Phys.create ~poison:true ()) in
      As.map_data t ~vpn:0 "root";
      List.iter (d_apply t) s1;
      let parent = As.snapshot t in
      List.iter (d_apply t) s2;
      let child = As.snapshot t in
      let pages, dead = As.snapshot_delta ~parent child in
      (* wander off: the rebuild must not depend on the current map *)
      List.iter (d_apply t) s3;
      As.restore_pages t ~base:(Some parent) ~pages ~dead;
      let rebuilt = As.snapshot t in
      let ok_delta = sorted_contents rebuilt = sorted_contents child in
      (* full-image path: contents over an emptied map *)
      List.iter (d_apply t) s3;
      As.restore_pages t ~base:None ~pages:(As.snapshot_contents child) ~dead:[];
      let rebuilt_full = As.snapshot t in
      ok_delta && sorted_contents rebuilt_full = sorted_contents child)

let delta_restore_keeps_zero_sharing () =
  let phys = Phys.create () in
  let t = As.create phys in
  As.map_zero t ~vpn:1;
  As.map_data t ~vpn:2 "x";
  let parent = As.snapshot t in
  As.write_u8 t (Page.addr_of_vpn 2) (Char.code 'y');
  As.map_zero t ~vpn:3;
  let child = As.snapshot t in
  let pages, dead = As.snapshot_delta ~parent child in
  check Alcotest.int "no dead vpns" 0 (List.length dead);
  As.restore_pages t ~base:(Some parent) ~pages ~dead;
  (* vpn 3 was demand-zero in the child; the rebuild must route it through
     the shared zero frame, not burn a private frame on 4096 zeroes *)
  let rebuilt = As.snapshot t in
  check Alcotest.bool "all-zero page stays on the zero frame" true
    (match Stdx.Ptmap.find_opt 3 (As.snapshot_map_for_debug rebuilt) with
    | Some f -> f == Phys.zero_frame phys
    | None -> false);
  check Alcotest.int "contents match" (Char.code 'y')
    (As.read_u8 t (Page.addr_of_vpn 2))

let delta_bytes_accounting () =
  let phys = Phys.create () in
  Phys.note_delta_bytes phys 1000;
  Phys.note_delta_bytes phys 500;
  check Alcotest.int "held" 1500 (Phys.delta_bytes_held phys);
  Phys.note_delta_bytes phys (-1200);
  check Alcotest.int "released" 300 (Phys.delta_bytes_held phys);
  check Alcotest.int "peak sticks" 1500 (Phys.peak_delta_bytes phys);
  Phys.note_spill_bytes phys 700;
  Phys.note_spill_bytes phys (-700);
  check Alcotest.int "spill back to zero" 0 (Phys.spill_bytes_held phys)

let untracked_by_default () =
  let phys = Phys.create () in
  let _f = Phys.alloc phys ~owner:1 in
  check Alcotest.int "no live accounting without capacity" 0
    (Phys.frames_live phys);
  check Alcotest.int "no peak either" 0 (Phys.peak_frames_live phys);
  let tracked = Phys.create ~track_live:true () in
  let keep = Phys.alloc tracked ~owner:1 in
  check Alcotest.int "opt-in tracking counts" 1 (Phys.frames_live tracked);
  ignore (Sys.opaque_identity keep)

let tests =
  [ Alcotest.test_case "page geometry" `Quick page_geometry;
    Alcotest.test_case "read/write roundtrip" `Quick rw_roundtrip;
    Alcotest.test_case "cross-page access" `Quick cross_page_access;
    Alcotest.test_case "unmapped faults" `Quick unmapped_faults;
    Alcotest.test_case "map_data contents" `Quick map_data_contents;
    Alcotest.test_case "u64 boundary paths agree" `Quick u64_boundary_paths_agree;
    Alcotest.test_case "u64 crossing into unmapped faults" `Quick
      u64_crossing_into_unmapped_faults;
    Alcotest.test_case "shared-page unmap is per-machine" `Quick
      shared_page_unmap_is_local;
    Alcotest.test_case "sharing shoots down sibling TLBs" `Quick
      share_shoots_down_sibling_tlbs;
    Alcotest.test_case "snapshot immutability" `Quick snapshot_immutable;
    Alcotest.test_case "snapshot tree" `Quick snapshot_tree;
    Alcotest.test_case "snapshot capture is O(1) copies" `Quick snapshot_zero_cost;
    Alcotest.test_case "COW accounting" `Quick cow_accounting;
    Alcotest.test_case "zero-page sharing" `Quick zero_page_sharing;
    Alcotest.test_case "distinct frames sharing" `Quick distinct_frames_sharing;
    Alcotest.test_case "restore then diverge" `Quick restore_then_diverge;
    Alcotest.test_case "shared pages survive restores" `Quick shared_pages_survive_restores;
    Alcotest.test_case "shared pages never COW" `Quick shared_pages_never_cow;
    Alcotest.test_case "shared preserves content" `Quick shared_preserves_content;
    Alcotest.test_case "ept basic" `Quick ept_basic;
    Alcotest.test_case "ept page-table COW" `Quick ept_snapshot_pt_cow;
    Alcotest.test_case "ept deep vpn" `Quick ept_deep_vpn;
    Alcotest.test_case "frame capacity enforced" `Quick capacity_enforced;
    Alcotest.test_case "pressure handler reclaims" `Quick pressure_handler_reclaims;
    Alcotest.test_case "injected alloc fault is single-shot" `Quick
      injected_alloc_fault_single_shot;
    Alcotest.test_case "live tracking is opt-in" `Quick untracked_by_default;
    Alcotest.test_case "crossing u64 is chunked, not per-byte" `Quick
      crossing_u64_is_chunked;
    Alcotest.test_case "free list recycles buffers" `Quick
      free_list_recycles_buffers;
    Alcotest.test_case "no pool without recycling" `Quick
      no_pool_without_recycling;
    Alcotest.test_case "poison marks freed buffers" `Quick
      poison_marks_freed_buffers;
    Alcotest.test_case "recycled data frame clears tail" `Quick
      recycled_data_frame_clears_tail;
    Alcotest.test_case "release_snapshot frees the delta" `Quick
      release_snapshot_frees_delta;
    Alcotest.test_case "discard_segment frees the COW tail" `Quick
      discard_segment_frees_cow_tail;
    Alcotest.test_case "restore_adopt writes in place" `Quick
      restore_adopt_writes_in_place;
    released_frames_never_alias_live_state;
    Alcotest.test_case "delta restore keeps zero sharing" `Quick
      delta_restore_keeps_zero_sharing;
    Alcotest.test_case "delta/spill byte accounting" `Quick
      delta_bytes_accounting;
    delta_roundtrip;
    backends_agree;
    sharing_matches_model;
    write_read_model ]
