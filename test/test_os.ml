(* The libOS: VFS, fd tables, syscalls, demand paging, containment. *)

module Vfs = Os.Vfs
module Fd = Os.Fd_table
module Libos = Os.Libos
module Abi = Os.Sys_abi
module R = Isa.Reg
module Wl_common = Workloads.Wl_common
open Isa.Asm

let check = Alcotest.check

(* {1 Vfs} *)

let vfs_persistence () =
  let v0 = Vfs.empty in
  let v1 = Vfs.add v0 ~path:"/a" "hello" in
  let v2 = Vfs.write_at v1 ~path:"/a" ~offset:5 " world" in
  check (Alcotest.option Alcotest.string) "v1 unchanged" (Some "hello")
    (Vfs.find v1 ~path:"/a");
  check (Alcotest.option Alcotest.string) "v2 extended" (Some "hello world")
    (Vfs.find v2 ~path:"/a");
  check Alcotest.bool "v0 still empty" false (Vfs.exists v0 ~path:"/a")

let vfs_write_gap () =
  let v = Vfs.write_at Vfs.empty ~path:"/f" ~offset:4 "data" in
  check (Alcotest.option Alcotest.string) "zero-filled gap" (Some "\000\000\000\000data")
    (Vfs.find v ~path:"/f")

let vfs_overwrite_middle () =
  let v = Vfs.add Vfs.empty ~path:"/f" "abcdefgh" in
  let v = Vfs.write_at v ~path:"/f" ~offset:2 "XY" in
  check (Alcotest.option Alcotest.string) "middle" (Some "abXYefgh") (Vfs.find v ~path:"/f")

let vfs_write_gap_past_existing_eof () =
  (* extending an EXISTING file through a hole: the gap between the old
     end and the new write must read back as zeroes, not garbage *)
  let v = Vfs.add Vfs.empty ~path:"/f" "abc" in
  let v = Vfs.write_at v ~path:"/f" ~offset:6 "XY" in
  check (Alcotest.option Alcotest.string) "old + hole + new"
    (Some "abc\000\000\000XY") (Vfs.find v ~path:"/f");
  check (Alcotest.option Alcotest.int) "size spans the hole" (Some 8)
    (Vfs.size v ~path:"/f")

let vfs_overwrite_at_offset_zero () =
  let v = Vfs.add Vfs.empty ~path:"/f" "abcdefgh" in
  let v = Vfs.write_at v ~path:"/f" ~offset:0 "XY" in
  check (Alcotest.option Alcotest.string) "prefix replaced, tail kept"
    (Some "XYcdefgh") (Vfs.find v ~path:"/f");
  check (Alcotest.option Alcotest.int) "size unchanged" (Some 8)
    (Vfs.size v ~path:"/f")

let vfs_size_after_sparse_writes () =
  (* size is governed by the furthest byte ever written, and shrinks for
     nobody: a later write inside the hole must not truncate *)
  let v = Vfs.write_at Vfs.empty ~path:"/f" ~offset:10 "Z" in
  check (Alcotest.option Alcotest.int) "sparse size" (Some 11) (Vfs.size v ~path:"/f");
  let v = Vfs.write_at v ~path:"/f" ~offset:2 "mid" in
  check (Alcotest.option Alcotest.int) "interior write keeps size" (Some 11)
    (Vfs.size v ~path:"/f");
  check (Alcotest.option Alcotest.string) "hole still zero" (Some "\000\000")
    (Vfs.read_at v ~path:"/f" ~offset:0 ~len:2);
  check (Alcotest.option Alcotest.string) "tail intact" (Some "Z")
    (Vfs.read_at v ~path:"/f" ~offset:10 ~len:5)

let vfs_read_exactly_at_eof () =
  let v = Vfs.add Vfs.empty ~path:"/f" "0123" in
  (* offset = size: a zero-length read, not a fault and not None *)
  check (Alcotest.option Alcotest.string) "at eof" (Some "")
    (Vfs.read_at v ~path:"/f" ~offset:4 ~len:10);
  check (Alcotest.option Alcotest.string) "last byte only" (Some "3")
    (Vfs.read_at v ~path:"/f" ~offset:3 ~len:1)

let vfs_read_at () =
  let v = Vfs.add Vfs.empty ~path:"/f" "0123456789" in
  check (Alcotest.option Alcotest.string) "window" (Some "345")
    (Vfs.read_at v ~path:"/f" ~offset:3 ~len:3);
  check (Alcotest.option Alcotest.string) "short read" (Some "89")
    (Vfs.read_at v ~path:"/f" ~offset:8 ~len:100);
  check (Alcotest.option Alcotest.string) "past eof" (Some "")
    (Vfs.read_at v ~path:"/f" ~offset:50 ~len:4);
  check (Alcotest.option Alcotest.string) "missing" None
    (Vfs.read_at v ~path:"/nope" ~offset:0 ~len:1)

(* {1 Fd_table} *)

let fd_alloc_reuse () =
  let t = Fd.initial in
  let t, fd1 = Fd.alloc t { Fd.path = "/a"; offset = 0; flags = 0 } in
  let t, fd2 = Fd.alloc t { Fd.path = "/b"; offset = 0; flags = 0 } in
  check Alcotest.int "first fd" 3 fd1;
  check Alcotest.int "second fd" 4 fd2;
  let t = Option.get (Fd.close t fd1) in
  let t, fd3 = Fd.alloc t { Fd.path = "/c"; offset = 0; flags = 0 } in
  check Alcotest.int "lowest free reused" 3 fd3;
  check Alcotest.int "open count" 2 (Fd.open_count t);
  check Alcotest.bool "close unknown" true (Fd.close t 77 = None)

(* {1 Libos guests} *)

let boot items =
  let image = assemble ~entry:"main" items in
  Libos.boot (Mem.Phys_mem.create ()) image

let stop_testable = Alcotest.testable Libos.pp_stop ( = )

let run m = Libos.run m ~fuel:10_000_000

let exit_code_of = function
  | Libos.Exited { status } -> status
  | other -> Alcotest.failf "expected exit, got %a" Libos.pp_stop other

let hello_stdout () =
  let m =
    boot
      ([ label "main" ]
      @ Wl_common.write_label ~buf:"msg" ~len:6
      @ Wl_common.sys_exit ~status:0
      @ [ label "msg"; bytes "hello\n" ])
  in
  check Alcotest.int "exit 0" 0 (exit_code_of (run m));
  check Alcotest.string "stdout" "hello\n" (Libos.stdout_text m)

let brk_grows_heap () =
  let m =
    boot
      ([ label "main"; mov R.rdi (i 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ mov R.r15 (r R.rax);          (* heap base *)
          mov R.rdi (r R.rax);
          add R.rdi (i 8192) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ (* write at base and base+8191 *)
          sti (R.r15 @+ 0) 42;
          mov R.rcx (r R.r15);
          add R.rcx (i 8191);
          mov R.rdx (i 7);
          stb (R.rcx @+ 0) R.rdx;
          ldb R.rdi (R.rcx @+ 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit)
  in
  check Alcotest.int "wrote across heap" 7 (exit_code_of (run m));
  check Alcotest.int "brk value" (Libos.default_layout.Libos.heap_base + 8192)
    (Libos.brk_value m)

let brk_huge_is_lazy () =
  (* Regression (found by the differential fuzzer): a gigabyte-scale brk
     must only move the bound — mapping the range eagerly stalled the host
     on ~250k page-table inserts.  Pages materialise on first touch; a
     retreat below a touched page drops it again. *)
  let gb = 1 lsl 30 in
  let m =
    boot
      ([ label "main"; mov R.rdi (i 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ mov R.r15 (r R.rax);          (* heap base *)
          mov R.rdi (r R.rax);
          add R.rdi (i gb) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ (* touch one page deep inside the grown range *)
          mov R.rcx (r R.r15);
          add R.rcx (i (gb / 2));
          sti (R.rcx @+ 0) 42;
          (* retreat below the touched page, then re-extend over it *)
          mov R.rdi (r R.r15);
          add R.rdi (i 4096) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ mov R.rdi (r R.r15); add R.rdi (i gb) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ (* the re-extended page must read back as zero, not 42 *)
          ld R.rdi (R.rcx @+ 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit)
  in
  check Alcotest.int "re-extended heap reads zero" 0 (exit_code_of (run m));
  check Alcotest.int "brk value" (Libos.default_layout.Libos.heap_base + gb)
    (Libos.brk_value m);
  check Alcotest.bool "page count stays small" true
    (Mem.Addr_space.mapped_pages m.Libos.aspace < 64)

let heap_oob_kills () =
  let m =
    boot
      ([ label "main"; mov R.rdi (i 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ add R.rax (i 100000); sti (R.rax @+ 0) 1; hlt ])
  in
  match run m with
  | Libos.Killed (Libos.Fault (Vcpu.Interp.Page_fault _)) -> ()
  | other -> Alcotest.failf "expected kill, got %a" Libos.pp_stop other

let stack_demand_paging () =
  (* recurse deep enough to need several stack pages *)
  let m =
    boot
      [ label "main";
        mov R.rdi (i 2000);
        call "rec";
        mov R.rdi (i 0);
        mov R.rax (i 0);
        syscall;
        label "rec";
        test R.rdi (r R.rdi);
        je "base";
        push (r R.rdi);
        dec R.rdi;
        call "rec";
        pop R.rdi;
        ret;
        label "base";
        ret ]
  in
  check Alcotest.int "deep recursion ok" 0 (exit_code_of (run m));
  check Alcotest.bool "several stack pages demand-mapped" true
    (m.Libos.counters.Libos.demand_pages >= 4)

let file_roundtrip () =
  (* open for write, write, close, open for read, read back, exit len *)
  let m =
    boot
      ([ label "main";
         movl R.rdi "path";
         mov R.rsi (i (Abi.o_wronly lor Abi.o_creat)) ]
      @ Wl_common.syscall3 ~number:Abi.sys_open
      @ [ mov R.rbx (r R.rax);       (* fd *)
          mov R.rdi (r R.rbx);
          movl R.rsi "payload";
          mov R.rdx (i 9) ]
      @ Wl_common.syscall3 ~number:Abi.sys_write
      @ [ mov R.rdi (r R.rbx) ]
      @ Wl_common.syscall3 ~number:Abi.sys_close
      @ [ movl R.rdi "path"; mov R.rsi (i Abi.o_rdonly) ]
      @ Wl_common.syscall3 ~number:Abi.sys_open
      @ [ mov R.rbx (r R.rax);
          mov R.rdi (r R.rbx);
          movl R.rsi "buf";
          mov R.rdx (i 64) ]
      @ Wl_common.syscall3 ~number:Abi.sys_read
      @ [ mov R.rdi (r R.rax) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit
      @ [ label "path"; bytes "/tmp/out\000";
          label "payload"; bytes "some data";
          label "buf"; zeros 64 ])
  in
  check Alcotest.int "read back 9 bytes" 9 (exit_code_of (run m));
  check (Alcotest.option Alcotest.string) "file content" (Some "some data")
    (Libos.read_file m ~path:"/tmp/out")

let open_missing_enoent () =
  let m =
    boot
      ([ label "main"; movl R.rdi "path"; mov R.rsi (i Abi.o_rdonly) ]
      @ Wl_common.syscall3 ~number:Abi.sys_open
      @ [ neg R.rax; mov R.rdi (r R.rax) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit
      @ [ label "path"; bytes "/missing\000" ])
  in
  check Alcotest.int "ENOENT" Abi.enoent (exit_code_of (run m))

let device_refused () =
  let m =
    boot
      ([ label "main"; movl R.rdi "path"; mov R.rsi (i Abi.o_rdonly) ]
      @ Wl_common.syscall3 ~number:Abi.sys_open
      @ [ neg R.rax; mov R.rdi (r R.rax) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit
      @ [ label "path"; bytes "/dev/mem\000" ])
  in
  check Alcotest.int "ENOTSUP per soundness rule" Abi.enotsup (exit_code_of (run m));
  check Alcotest.int "counted as denied" 1 m.Libos.counters.Libos.denied

let socket_refused () =
  let m =
    boot
      ([ label "main" ]
      @ Wl_common.syscall3 ~number:Abi.sys_socket
      @ [ neg R.rax; mov R.rdi (r R.rax) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit)
  in
  check Alcotest.int "socket ENOTSUP" Abi.enotsup (exit_code_of (run m))

let unknown_syscall_enosys () =
  let m =
    boot
      ([ label "main"; mov R.rax (i 31); insn Isa.Insn.Syscall;
         neg R.rax; mov R.rdi (r R.rax) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit)
  in
  check Alcotest.int "ENOSYS" Abi.enosys (exit_code_of (run m))

let stdin_read () =
  let m =
    boot
      ([ label "main"; mov R.rdi (i 0); movl R.rsi "buf"; mov R.rdx (i 5) ]
      @ Wl_common.syscall3 ~number:Abi.sys_read
      @ [ mov R.rbx (r R.rax);      (* bytes read *)
          movl R.rsi "buf";
          ldb R.rdi (R.rsi @+ 0);
          add R.rdi (r R.rbx) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit
      @ [ label "buf"; zeros 8 ])
  in
  Libos.set_stdin m "AB";
  (* reads 2 bytes; first is 'A' = 65; exit status 65 + 2 *)
  check Alcotest.int "stdin consumed" 67 (exit_code_of (run m))

let lseek_positions () =
  let m =
    boot
      ([ label "main"; movl R.rdi "path"; mov R.rsi (i Abi.o_rdonly) ]
      @ Wl_common.syscall3 ~number:Abi.sys_open
      @ [ mov R.rbx (r R.rax);
          mov R.rdi (r R.rbx);
          mov R.rsi (i (-2));
          mov R.rdx (i Abi.seek_end) ]
      @ Wl_common.syscall3 ~number:Abi.sys_lseek
      @ [ mov R.rdi (r R.rbx); movl R.rsi "buf"; mov R.rdx (i 8) ]
      @ Wl_common.syscall3 ~number:Abi.sys_read
      @ [ movl R.rsi "buf"; ldb R.rdi (R.rsi @+ 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit
      @ [ label "path"; bytes "/data\000"; label "buf"; zeros 8 ])
  in
  Libos.add_file m ~path:"/data" "wxyz";
  (* seek to end-2, read: first byte is 'y' = 121 *)
  check Alcotest.int "seek_end" (Char.code 'y') (exit_code_of (run m))

let os_state_snapshot_restores_files () =
  let m =
    boot ([ label "main" ] @ Wl_common.sys_exit ~status:0)
  in
  Libos.add_file m ~path:"/f" "one";
  let saved = Libos.os_capture m in
  Libos.add_file m ~path:"/f" "two";
  Libos.set_stdin m "leftover";
  check (Alcotest.option Alcotest.string) "mutated" (Some "two")
    (Libos.read_file m ~path:"/f");
  Libos.os_restore m saved;
  check (Alcotest.option Alcotest.string) "restored" (Some "one")
    (Libos.read_file m ~path:"/f")

let unlink_file () =
  let m =
    boot
      ([ label "main"; movl R.rdi "path" ]
      @ Wl_common.syscall3 ~number:Abi.sys_unlink
      @ [ mov R.rdi (r R.rax) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit
      @ [ label "path"; bytes "/gone\000" ])
  in
  Libos.add_file m ~path:"/gone" "x";
  check Alcotest.int "unlink ok" 0 (exit_code_of (run m));
  check (Alcotest.option Alcotest.string) "removed" None (Libos.read_file m ~path:"/gone")

let guess_stops_surface () =
  let m =
    boot
      ([ label "main" ]
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ hlt ])
  in
  check stop_testable "strategy surfaces" (Libos.Guess_strategy { strategy = 0 }) (run m)

let tests =
  [ Alcotest.test_case "vfs persistence" `Quick vfs_persistence;
    Alcotest.test_case "vfs write gap" `Quick vfs_write_gap;
    Alcotest.test_case "vfs overwrite middle" `Quick vfs_overwrite_middle;
    Alcotest.test_case "vfs write gap past existing eof" `Quick
      vfs_write_gap_past_existing_eof;
    Alcotest.test_case "vfs overwrite at offset zero" `Quick
      vfs_overwrite_at_offset_zero;
    Alcotest.test_case "vfs size after sparse writes" `Quick
      vfs_size_after_sparse_writes;
    Alcotest.test_case "vfs read exactly at eof" `Quick vfs_read_exactly_at_eof;
    Alcotest.test_case "vfs read_at" `Quick vfs_read_at;
    Alcotest.test_case "fd alloc/reuse" `Quick fd_alloc_reuse;
    Alcotest.test_case "hello stdout" `Quick hello_stdout;
    Alcotest.test_case "brk grows heap" `Quick brk_grows_heap;
    Alcotest.test_case "huge brk is lazy" `Quick brk_huge_is_lazy;
    Alcotest.test_case "heap out-of-bounds kills" `Quick heap_oob_kills;
    Alcotest.test_case "stack demand paging" `Quick stack_demand_paging;
    Alcotest.test_case "file roundtrip" `Quick file_roundtrip;
    Alcotest.test_case "open missing ENOENT" `Quick open_missing_enoent;
    Alcotest.test_case "device refused" `Quick device_refused;
    Alcotest.test_case "socket refused" `Quick socket_refused;
    Alcotest.test_case "unknown syscall ENOSYS" `Quick unknown_syscall_enosys;
    Alcotest.test_case "stdin read" `Quick stdin_read;
    Alcotest.test_case "lseek positions" `Quick lseek_positions;
    Alcotest.test_case "os snapshot restores files" `Quick os_state_snapshot_restores_files;
    Alcotest.test_case "unlink" `Quick unlink_file;
    Alcotest.test_case "guess stops surface" `Quick guess_stops_surface ]
