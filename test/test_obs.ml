(* The observability layer: ring tracer, metrics registry, exporters,
   and the Stats -> Metrics publishing bridge. *)

module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Export = Obs.Export
module Json = Obs.Json
module Explorer = Core.Explorer
module Stats = Core.Stats

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Tracing state is global; every test that enables it must clear it on
   the way out so the rest of the suite stays untraced. *)
let with_trace ?capacity f =
  Trace.start ?capacity ();
  Fun.protect ~finally:Trace.clear f

(* {1 Ring tracer} *)

let disabled_records_nothing () =
  Trace.clear ();
  Trace.instant ~a:1 "x";
  Trace.counter "c" 5;
  Trace.span_begin "s";
  Trace.span_end "s";
  check Alcotest.int "recorded" 0 (Trace.recorded ());
  check Alcotest.int "dropped" 0 (Trace.dropped ());
  check Alcotest.int "events" 0 (List.length (Trace.events ()))

let ring_wraparound_keeps_newest () =
  with_trace ~capacity:16 (fun () ->
      for i = 0 to 39 do
        Trace.instant ~a:i "tick"
      done;
      Trace.stop ();
      check Alcotest.int "recorded counts overwritten" 40 (Trace.recorded ());
      check Alcotest.int "dropped" 24 (Trace.dropped ());
      let surviving = List.map (fun e -> e.Trace.v_a) (Trace.events ()) in
      check
        (Alcotest.list Alcotest.int)
        "newest events survive, in order"
        (List.init 16 (fun k -> 24 + k))
        surviving)

let span_pairing_survives_wraparound () =
  with_trace ~capacity:16 (fun () ->
      Trace.span_begin "orphan";
      for _ = 1 to 12 do
        Trace.span_begin "s";
        Trace.span_end "s"
      done;
      Trace.stop ();
      (* 25 events; the ring keeps the last 16 = pairs 5..12 intact *)
      let aggs = Export.span_summary (Trace.events ()) in
      (match List.assoc_opt "s" aggs with
      | None -> Alcotest.fail "no aggregate for s"
      | Some a ->
        check Alcotest.int "complete pairs" 8 a.Export.s_count;
        check Alcotest.int "unmatched" 0 a.Export.s_unmatched);
      check Alcotest.bool "overwritten orphan leaves no aggregate" true
        (not (List.mem_assoc "orphan" aggs)))

let truncated_span_counts_unmatched () =
  with_trace ~capacity:16 (fun () ->
      Trace.span_begin "t";
      for i = 0 to 14 do
        Trace.instant ~a:i "filler"
      done;
      Trace.span_end "t";
      Trace.stop ();
      (* 17 events: the begin fell off the ring, its end survives *)
      let a = List.assoc "t" (Export.span_summary (Trace.events ())) in
      check Alcotest.int "dangling end is unmatched" 1 a.Export.s_unmatched;
      check Alcotest.int "no complete pairs" 0 a.Export.s_count)

let four_domains_produce_clean_records () =
  with_trace ~capacity:8192 (fun () ->
      let n = 5000 in
      let doms =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to n - 1 do
                  Trace.instant ~a:d ~b:i "d.tick"
                done))
      in
      List.iter Domain.join doms;
      Trace.stop ();
      check Alcotest.int "recorded" (4 * n) (Trace.recorded ());
      check Alcotest.int "dropped" 0 (Trace.dropped ());
      let evs = Trace.events () in
      check Alcotest.int "merged event count" (4 * n) (List.length evs);
      (* every record is intact: the name survived, each domain's [b]
         payloads arrive as the exact sequence 0..n-1, and timestamps
         are globally non-decreasing after the merge *)
      let next = Hashtbl.create 8 in
      let last_ts = ref min_int in
      List.iter
        (fun e ->
          if not (String.equal e.Trace.v_name "d.tick") then
            Alcotest.failf "corrupt name %S" e.Trace.v_name;
          if e.Trace.v_ts < !last_ts then Alcotest.fail "timestamps regress";
          last_ts := e.Trace.v_ts;
          let expect =
            match Hashtbl.find_opt next e.Trace.v_tid with
            | Some k -> k
            | None -> 0
          in
          if e.Trace.v_b <> expect then
            Alcotest.failf "tid %d: expected seq %d, got %d" e.Trace.v_tid
              expect e.Trace.v_b;
          Hashtbl.replace next e.Trace.v_tid (expect + 1))
        evs;
      check Alcotest.int "four distinct recording domains" 4
        (Hashtbl.length next))

(* {1 Chrome trace_event export} *)

let chrome_json_roundtrips () =
  with_trace (fun () ->
      ignore (Explorer.run_image (Workloads.Nqueens.program ~n:4));
      Trace.stop ();
      let s =
        Export.chrome_json_string ~dropped:(Trace.dropped ()) (Trace.events ())
      in
      let doc = Json.parse s in
      let evs =
        match Json.member "traceEvents" doc with
        | Some (Json.Arr evs) -> evs
        | _ -> Alcotest.fail "traceEvents missing"
      in
      check Alcotest.bool "events present" true (evs <> []);
      List.iter
        (fun e ->
          (match Json.member "ph" e with
          | Some (Json.Str ("B" | "E" | "i" | "C")) -> ()
          | _ -> Alcotest.fail "event with missing or unknown ph");
          (match Json.member "ts" e with
          | Some (Json.Int ts) when ts >= 0 -> ()
          | _ -> Alcotest.fail "event without a timestamp");
          match (Json.member "name" e, Json.member "pid" e) with
          | Some (Json.Str _), Some (Json.Int _) -> ()
          | _ -> Alcotest.fail "event without name/pid")
        evs;
      let names =
        List.filter_map
          (fun e ->
            match Json.member "name" e with
            | Some (Json.Str n) -> Some n
            | _ -> None)
          evs
      in
      let has n = List.exists (String.equal n) names in
      check Alcotest.bool "guess stop traced" true (has "stop.guess");
      check Alcotest.bool "syscall span traced" true (has "sys.guess");
      check Alcotest.bool "snapshot capture traced" true (has "snap.capture"))

let json_string_escaping_roundtrips () =
  let s = "a\"b\\c\nd\te\x01f\127 \xcf\x80" in
  match Json.parse (Json.to_string (Json.Str s)) with
  | Json.Str s' -> check Alcotest.string "escapes survive" s s'
  | _ -> Alcotest.fail "not a string"

(* {1 Snapshot-tree export} *)

let tree_export_is_sane () =
  with_trace (fun () ->
      ignore (Explorer.run_image (Workloads.Counting.program ~depth:3 ~branch:2));
      Trace.stop ();
      let evs = Trace.events () in
      let nodes = Export.snapshot_tree evs in
      check Alcotest.bool "several nodes" true (List.length nodes > 1);
      let roots = List.filter (fun n -> n.Export.n_parent = -1) nodes in
      check Alcotest.int "exactly one root" 1 (List.length roots);
      List.iter
        (fun n ->
          if n.Export.n_us < 0 || n.Export.n_instr < 0 then
            Alcotest.fail "negative node cost")
        nodes;
      let evals =
        List.length
          (List.filter
             (fun e ->
               e.Trace.v_kind = Trace.Span_begin
               && String.equal e.Trace.v_name "explorer.eval")
             evs)
      in
      let visits = List.fold_left (fun s n -> s + n.Export.n_visits) 0 nodes in
      check Alcotest.int "visits account for every eval" evals visits;
      (match Json.member "nodes" (Export.tree_json evs) with
      | Some (Json.Arr l) -> check Alcotest.int "json nodes" (List.length nodes) (List.length l)
      | _ -> Alcotest.fail "tree_json lacks nodes");
      let dot = Export.tree_dot evs in
      check Alcotest.bool "dot preamble" true
        (String.length dot > 8 && String.equal (String.sub dot 0 8) "digraph "))

(* {1 Parallel exploration under tracing} *)

let traced_domains_run_matches_untraced () =
  let image = Workloads.Nqueens.program ~n:5 in
  let config =
    { Core.Parallel.default_config with
      Core.Parallel.workers = 4;
      backend = `Domains }
  in
  let lines (r : Core.Parallel.result) =
    List.sort compare
      (List.filter (fun l -> l <> "")
         (String.split_on_char '\n' r.Core.Parallel.transcript))
  in
  let plain = Core.Parallel.run ~config image in
  with_trace (fun () ->
      let traced = Core.Parallel.run ~config image in
      Trace.stop ();
      check Alcotest.int "fails" plain.Core.Parallel.stats.Stats.fails
        traced.Core.Parallel.stats.Stats.fails;
      check Alcotest.int "exits" plain.Core.Parallel.stats.Stats.exits
        traced.Core.Parallel.stats.Stats.exits;
      check (Alcotest.list Alcotest.string) "same solutions" (lines plain)
        (lines traced);
      let worker_spans =
        List.filter
          (fun e ->
            e.Trace.v_kind = Trace.Span_begin
            && String.equal e.Trace.v_name "worker")
          (Trace.events ())
      in
      check Alcotest.int "one span per worker domain" 4
        (List.length worker_spans))

(* {1 Metrics registry} *)

let histogram_bucket_edges () =
  check Alcotest.int "negative" 0 (Metrics.bucket_of (-5));
  check Alcotest.int "zero" 0 (Metrics.bucket_of 0);
  check Alcotest.int "one" 1 (Metrics.bucket_of 1);
  check Alcotest.int "two" 2 (Metrics.bucket_of 2);
  check Alcotest.int "three" 2 (Metrics.bucket_of 3);
  check Alcotest.int "four" 3 (Metrics.bucket_of 4);
  (* OCaml's max_int is 2^62 - 1: 62 significant bits *)
  check Alcotest.int "max_int" 62 (Metrics.bucket_of max_int);
  check Alcotest.bool "max_int under the cap" true
    (Metrics.bucket_of max_int <= Metrics.bucket_count - 1);
  (* buckets past the int width are unreachable; bucket_lo must still
     not overflow into a negative bound for them *)
  for i = 0 to min (Metrics.bucket_count - 1) (Sys.int_size - 2) do
    check Alcotest.int "bucket_lo lands in its bucket" i
      (Metrics.bucket_of (Metrics.bucket_lo i))
  done;
  check Alcotest.bool "bucket_lo never negative" true
    (Metrics.bucket_lo (Metrics.bucket_count - 1) > 0)

let kind_mismatch_rejected () =
  let r = Metrics.create () in
  Metrics.incr r "n";
  Alcotest.check_raises "gauge on a counter name"
    (Invalid_argument "Obs.Metrics: n used with two kinds") (fun () ->
      Metrics.gauge_set r "n" 1)

(* Registries built from random op sequences; names are per-kind so the
   generator never trips the kind-mismatch check. *)
let ops_gen =
  QCheck2.Gen.(
    list_size (int_range 0 40)
      (oneof
         [ map2 (fun n v -> `C (n, v)) (oneofl [ "c1"; "c2" ]) (int_range 0 1000);
           map2 (fun n v -> `G (n, v)) (oneofl [ "g1"; "g2" ]) (int_range 0 1000);
           map2 (fun n v -> `H (n, v)) (oneofl [ "h1" ]) (int_range (-4) 100_000)
         ]))

let build ops =
  let r = Metrics.create () in
  List.iter
    (function
      | `C (n, v) -> Metrics.incr r ~by:v n
      | `G (n, v) -> Metrics.gauge_max r n v
      | `H (n, v) -> Metrics.observe r n v)
    ops;
  r

let merged a b =
  let acc = Metrics.create () in
  Metrics.merge ~into:acc a;
  Metrics.merge ~into:acc b;
  acc

let merge_commutes =
  qtest "Metrics.merge commutes"
    QCheck2.Gen.(pair ops_gen ops_gen)
    (fun (x, y) ->
      let a = build x and b = build y in
      Metrics.equal (merged a b) (merged b a))

let merge_associates =
  qtest "Metrics.merge associates"
    QCheck2.Gen.(triple ops_gen ops_gen ops_gen)
    (fun (x, y, z) ->
      let a = build x and b = build y and c = build z in
      Metrics.equal (merged (merged a b) c) (merged a (merged b c)))

let merge_builds_the_concatenation =
  qtest "merge of split op list = registry of whole list"
    QCheck2.Gen.(pair ops_gen ops_gen)
    (fun (x, y) ->
      Metrics.equal (merged (build x) (build y)) (build (x @ y)))

(* {1 Stats -> Metrics publishing} *)

let stats_gen =
  QCheck2.Gen.(
    array_size (return 8) (int_range 0 10_000))

let mk_stats a =
  let s = Stats.create () in
  s.Stats.guesses <- a.(0);
  s.Stats.fails <- a.(1);
  s.Stats.max_frontier <- a.(2);
  s.Stats.max_live_snapshots <- a.(3);
  s.Stats.instructions <- a.(4);
  s.Stats.replayed_instructions <- a.(5);
  s.Stats.mem.Mem.Mem_metrics.cow_faults <- a.(6);
  s.Stats.mem.Mem.Mem_metrics.bytes_copied <- a.(7);
  s

let publish s =
  let r = Metrics.create () in
  Stats.publish s r;
  r

let publish_agrees_with_merge =
  qtest "per-worker publish = merge then publish"
    QCheck2.Gen.(pair stats_gen stats_gen)
    (fun (x, y) ->
      let separate = Metrics.create () in
      Stats.publish (mk_stats x) separate;
      Stats.publish (mk_stats y) separate;
      let acc = mk_stats x in
      Stats.merge acc (mk_stats y);
      Metrics.equal separate (publish acc))

let stats_merge_commutes =
  qtest "Stats.merge commutes (observed through publish)"
    QCheck2.Gen.(pair stats_gen stats_gen)
    (fun (x, y) ->
      let ab = mk_stats x in
      Stats.merge ab (mk_stats y);
      let ba = mk_stats y in
      Stats.merge ba (mk_stats x);
      Metrics.equal (publish ab) (publish ba))

let tests =
  [ Alcotest.test_case "disabled tracer records nothing" `Quick
      disabled_records_nothing;
    Alcotest.test_case "ring wraparound keeps newest" `Quick
      ring_wraparound_keeps_newest;
    Alcotest.test_case "span pairing survives wraparound" `Quick
      span_pairing_survives_wraparound;
    Alcotest.test_case "truncated span counts unmatched" `Quick
      truncated_span_counts_unmatched;
    Alcotest.test_case "4-domain tracing produces clean records" `Quick
      four_domains_produce_clean_records;
    Alcotest.test_case "chrome JSON round-trips through the parser" `Quick
      chrome_json_roundtrips;
    Alcotest.test_case "JSON string escaping round-trips" `Quick
      json_string_escaping_roundtrips;
    Alcotest.test_case "snapshot-tree export is sane" `Quick
      tree_export_is_sane;
    Alcotest.test_case "traced Domains run matches untraced" `Quick
      traced_domains_run_matches_untraced;
    Alcotest.test_case "histogram bucket edges" `Quick histogram_bucket_edges;
    Alcotest.test_case "kind mismatch rejected" `Quick kind_mismatch_rejected;
    merge_commutes;
    merge_associates;
    merge_builds_the_concatenation;
    publish_agrees_with_merge;
    stats_merge_commutes ]
