(* Aggregate test runner: one suite per library. *)

let () =
  Alcotest.run "lwsnap"
    [ "stdx", Test_stdx.tests;
      "obs", Test_obs.tests;
      "mem", Test_mem.tests;
      "isa", Test_isa.tests;
      "asm-parser", Test_asm_parser.tests;
      "vcpu", Test_vcpu.tests;
      "os", Test_os.tests;
      "search", Test_search.tests;
      "core", Test_core.tests;
      "work-queue", Test_work_queue.tests;
      "parallel", Test_parallel.tests;
      "fuzz", Test_fuzz.tests;
      "sat", Test_sat.tests;
      "smt", Test_smt.tests;
      "symex", Test_symex.tests;
      "prolog", Test_prolog.tests;
      "prolog-parser", Test_prolog_parser.tests;
      "ckpt", Test_ckpt.tests;
      "record", Test_record.tests;
      "workloads", Test_workloads.tests;
      "integration", Test_integration.tests ]
