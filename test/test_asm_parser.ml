(* The textual assembler: parse -> assemble -> run, plus error reporting. *)

module P = Isa.Asm_parser
module Insn = Isa.Insn
module Libos = Os.Libos

let check = Alcotest.check

let run_text ?stdin text =
  let image = P.assemble_text text in
  let machine = Libos.boot (Mem.Phys_mem.create ()) image in
  Option.iter (Libos.set_stdin machine) stdin;
  match Libos.run machine ~fuel:10_000_000 with
  | Libos.Exited { status } -> status, Libos.stdout_text machine
  | other -> Alcotest.failf "unexpected stop: %a" Libos.pp_stop other

let parses_to text expected =
  let image = P.assemble_text text in
  let listing =
    List.map snd
      (Isa.Disasm.disassemble ~code:image.Isa.Asm.code ~origin:image.Isa.Asm.origin ())
  in
  check (Alcotest.list (Alcotest.testable Insn.pp ( = ))) text expected listing

let basic_instructions () =
  parses_to "nop\nhlt"
    [ Insn.Nop; Insn.Hlt ];
  parses_to "mov rax, 42\nmov rbx, rax\nhlt"
    [ Insn.Mov (Isa.Reg.rax, Insn.Imm 42);
      Insn.Mov (Isa.Reg.rbx, Insn.Reg Isa.Reg.rax);
      Insn.Hlt ];
  parses_to "add r10, -7\nshl r10, 3\nneg r10\nhlt"
    [ Insn.Bin (Insn.Add, Isa.Reg.r10, Insn.Imm (-7));
      Insn.Bin (Insn.Shl, Isa.Reg.r10, Insn.Imm 3);
      Insn.Un (Insn.Neg, Isa.Reg.r10);
      Insn.Hlt ]

let memory_operands () =
  parses_to "ld rax, [rbx]\nhlt"
    [ Insn.Ld (Insn.Q, Isa.Reg.rax, Insn.mem ~base:Isa.Reg.rbx ()); Insn.Hlt ];
  parses_to "ldb rcx, [rbx+16]\nhlt"
    [ Insn.Ld (Insn.B, Isa.Reg.rcx, Insn.mem ~base:Isa.Reg.rbx ~disp:16 ()); Insn.Hlt ];
  parses_to "st [r8+rcx*8-4], rdx\nhlt"
    [ Insn.St
        (Insn.Q, Insn.mem ~base:Isa.Reg.r8 ~index:(Isa.Reg.rcx, 8) ~disp:(-4) (),
         Isa.Reg.rdx);
      Insn.Hlt ];
  parses_to "sti [rax], 99\nstib [rax+1], 'x'\nhlt"
    [ Insn.Sti (Insn.Q, Insn.mem ~base:Isa.Reg.rax (), 99);
      Insn.Sti (Insn.B, Insn.mem ~base:Isa.Reg.rax ~disp:1 (), Char.code 'x');
      Insn.Hlt ]

let hex_and_char_literals () =
  parses_to "mov rax, 0x1f\ncmp rax, 'a'\nhlt"
    [ Insn.Mov (Isa.Reg.rax, Insn.Imm 31);
      Insn.Cmp (Isa.Reg.rax, Insn.Imm 97);
      Insn.Hlt ]

let labels_and_jumps () =
  let image =
    P.assemble_text "main:\n  jmp end\nmid:\n  nop\nend:\n  hlt\n"
  in
  check Alcotest.int "entry picks main" image.Isa.Asm.origin image.Isa.Asm.entry;
  match
    List.map snd
      (Isa.Disasm.disassemble ~code:image.Isa.Asm.code ~origin:image.Isa.Asm.origin ())
  with
  | [ Insn.Jmp target; Insn.Nop; Insn.Hlt ] ->
    check Alcotest.int "jmp target" (List.assoc "end" image.Isa.Asm.symbols) target
  | _ -> Alcotest.fail "unexpected listing"

let label_same_line () =
  parses_to "start: nop\nhlt" [ Insn.Nop; Insn.Hlt ]

let conditional_family () =
  parses_to "cmp rax, 1\njle out\nsetge rbx\nout: hlt"
    [ Insn.Cmp (Isa.Reg.rax, Insn.Imm 1);
      Insn.Jcc (Insn.LE, 0x1000 + 10 + 10 + 3);
      Insn.Setcc (Insn.GE, Isa.Reg.rbx);
      Insn.Hlt ]

let comments_ignored () =
  parses_to "; leading comment\nnop ; trailing\n# hash comment\nhlt # end"
    [ Insn.Nop; Insn.Hlt ]

let data_directives () =
  let image =
    P.assemble_text
      "main: hlt\n.align 16\ndata:\n.byte \"AB\\n\"\n.qword 513\n.zeros 3\n"
  in
  let data = List.assoc "data" image.Isa.Asm.symbols - image.Isa.Asm.origin in
  check Alcotest.string "string bytes" "AB\n"
    (String.sub image.Isa.Asm.code data 3);
  check Alcotest.int "qword lo" 1 (Char.code image.Isa.Asm.code.[data + 3]);
  check Alcotest.int "qword hi" 2 (Char.code image.Isa.Asm.code.[data + 4])

let end_to_end_program () =
  (* sum 1..10 into rdi and exit with it *)
  let status, _ =
    run_text
      {|
main:
    mov rcx, 10
    mov rdi, 0
loop:
    add rdi, rcx
    dec rcx
    jne loop
    mov rax, 0        ; sys_exit
    syscall
|}
  in
  check Alcotest.int "sum" 55 status

let end_to_end_hello () =
  let status, out =
    run_text
      {|
main:
    mov rdi, 1
    mov rsi, msg
    mov rdx, 6
    mov rax, 1
    syscall
    mov rdi, 0
    mov rax, 0
    syscall
.align 8
msg:
.byte "hello\n"
|}
  in
  (* "mov rsi, msg" resolves the label as an address *)
  check Alcotest.int "exit" 0 status;
  check Alcotest.string "stdout" "hello\n" out

let error_reporting () =
  let expect_error ~line text =
    match P.parse text with
    | _ -> Alcotest.failf "expected parse error for %S" text
    | exception P.Parse_error { line = reported; _ } ->
      check Alcotest.int (Printf.sprintf "line for %S" text) line reported
  in
  expect_error ~line:1 "frobnicate rax";
  expect_error ~line:2 "nop\nmov rax";
  expect_error ~line:1 "ld rax, [rbx+rcx*3]";
  expect_error ~line:1 "ld rax, [qux]";
  expect_error ~line:3 "nop\nnop\njxx somewhere";
  expect_error ~line:1 ".align";
  expect_error ~line:1 "mov 5, rax";
  (* unterminated string literals must report the directive's own line,
     not fall through to the integer parser's message *)
  expect_error ~line:1 {|.byte "unterminated|};
  expect_error ~line:2 "nop\n.byte \"no closing quote";
  expect_error ~line:4 "main:\n    nop\n    hlt\n.byte \"oops\nlater:";
  (* bad operands after a good mnemonic still name the offending line *)
  expect_error ~line:2 "nop\nmov rax, [rbx+";
  expect_error ~line:3 "nop\nnop\nadd notareg, 1"

let unterminated_string_message () =
  let mentions_unterminated s =
    let n = String.length s and pat = "unterminated" in
    let pl = String.length pat in
    let rec scan i = i + pl <= n && (String.sub s i pl = pat || scan (i + 1)) in
    scan 0
  in
  match P.parse {|.byte "dangling|} with
  | _ -> Alcotest.fail "expected parse error"
  | exception P.Parse_error { message; _ } ->
    check Alcotest.bool
      (Printf.sprintf "message mentions the string literal: %S" message)
      true
      (mentions_unterminated message)

let roundtrip_with_edsl () =
  (* the guest n-queens program printed... simpler: text and eDSL produce
     identical images for an equivalent program *)
  let text = "main:\n  mov rdi, 3\n  cmp rdi, 3\n  je done\n  nop\ndone:\n  hlt\n" in
  let from_text = P.assemble_text text in
  let from_edsl =
    let open Isa.Asm in
    assemble ~entry:"main"
      [ label "main"; mov Isa.Reg.rdi (i 3); cmp Isa.Reg.rdi (i 3); je "done";
        nop; label "done"; hlt ]
  in
  check Alcotest.string "identical code" from_edsl.Isa.Asm.code from_text.Isa.Asm.code

let tests =
  [ Alcotest.test_case "basic instructions" `Quick basic_instructions;
    Alcotest.test_case "memory operands" `Quick memory_operands;
    Alcotest.test_case "hex and char literals" `Quick hex_and_char_literals;
    Alcotest.test_case "labels and jumps" `Quick labels_and_jumps;
    Alcotest.test_case "label on same line" `Quick label_same_line;
    Alcotest.test_case "conditional family" `Quick conditional_family;
    Alcotest.test_case "comments ignored" `Quick comments_ignored;
    Alcotest.test_case "data directives" `Quick data_directives;
    Alcotest.test_case "end-to-end program" `Quick end_to_end_program;
    Alcotest.test_case "end-to-end hello" `Quick end_to_end_hello;
    Alcotest.test_case "error reporting" `Quick error_reporting;
    Alcotest.test_case "unterminated string message" `Quick
      unterminated_string_message;
    Alcotest.test_case "roundtrip with eDSL" `Quick roundtrip_with_edsl ]
