(* Core.Work_queue: the mutex-protected shared frontier behind the
   Domains backend.  Distributed-termination ordering, stop semantics and
   initial-path accounting under real contending domains. *)

module Wq = Core.Work_queue
module Frontier = Search.Frontier

let check = Alcotest.check

let meta depth = { Frontier.depth; hint = 0 }

(* Four domains expand a synthetic binary tree through the queue.  Every
   worker pushes children BEFORE finish_path, so the queue may never
   report termination while work is pending; all domains must drain the
   whole tree and exit their take loops. *)
let push_then_finish_termination () =
  let q = Wq.create (Frontier.dfs ()) in
  Wq.push_batch q [ (meta 0, 0) ];
  let max_depth = 7 in
  let taken = Atomic.make 0 in
  let worker () =
    let rec loop () =
      match Wq.take q with
      | None -> ()
      | Some depth ->
        Atomic.incr taken;
        if depth < max_depth then
          Wq.push_batch q [ (meta (depth + 1), depth + 1); (meta (depth + 1), depth + 1) ];
        Wq.finish_path q;
        loop ()
    in
    loop ()
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  (* a complete binary tree of depth 7: 2^8 - 1 nodes *)
  check Alcotest.int "every pushed path was taken exactly once" 255
    (Atomic.get taken);
  check Alcotest.int "frontier drained" 0 (Wq.length q);
  check Alcotest.int "push accounting" 255 (Wq.pushed q);
  check Alcotest.bool "not stopped" false (Wq.stopped q)

(* take must block while paths are in flight (the frontier being empty is
   not termination), and stop must wake every blocked taker. *)
let stop_wakes_blocked_takers () =
  let q = Wq.create ~initial_paths:1 (Frontier.dfs ()) in
  let waiting = Atomic.make 0 in
  let results = Array.make 3 (Some 0) in
  let taker i () =
    Atomic.incr waiting;
    results.(i) <- Wq.take q
  in
  let domains = List.init 3 (fun i -> Domain.spawn (taker i)) in
  (* let the takers reach the queue (and, in practice, block on it) *)
  while Atomic.get waiting < 3 do
    Domain.cpu_relax ()
  done;
  for _ = 0 to 100_000 do
    Domain.cpu_relax ()
  done;
  check Alcotest.bool "not yet stopped" false (Wq.stopped q);
  Wq.stop q;
  List.iter Domain.join domains;
  Array.iteri
    (fun i r -> check Alcotest.bool (Printf.sprintf "taker %d woken" i) true (r = None))
    results;
  check Alcotest.bool "stopped" true (Wq.stopped q)

(* initial_paths pre-counts the root path a worker carries natively: with
   it, an empty frontier blocks takers until that path finishes; without
   it, an empty frontier means immediate termination. *)
let initial_paths_accounting () =
  let q0 = Wq.create (Frontier.dfs ()) in
  check Alcotest.bool "no initial paths: empty queue terminates" true
    (Wq.take q0 = None);
  let q = Wq.create ~initial_paths:1 (Frontier.dfs ()) in
  let got = ref (Some (-1)) in
  let taker = Domain.spawn (fun () -> got := Wq.take q) in
  (* the implicit root path pushes one child, then finishes *)
  Wq.push_batch q [ (meta 1, 7) ];
  Wq.finish_path q;
  Domain.join taker;
  check Alcotest.bool "taker got the root's child" true (!got = Some 7);
  (* that child is now in flight; finishing it ends the search *)
  Wq.finish_path q;
  check Alcotest.bool "drained and no paths in flight" true (Wq.take q = None)

let tests =
  [ Alcotest.test_case "push-then-finish termination, 4 domains" `Quick
      push_then_finish_termination;
    Alcotest.test_case "stop wakes blocked takers" `Quick
      stop_wakes_blocked_takers;
    Alcotest.test_case "initial_paths accounting" `Quick
      initial_paths_accounting ]
