(* Core.Work_queue: the sharded work-stealing frontier behind the Domains
   backend.  Distributed-termination ordering, stop semantics,
   initial-path accounting under real contending domains, and the
   steal-half migration rule. *)

module Wq = Core.Work_queue
module Frontier = Search.Frontier

let check = Alcotest.check

let meta depth = { Frontier.depth; hint = 0 }

(* Items in these tests are bare ints (their depth). *)
let create ?shards ?initial_paths () =
  Wq.create ?shards ?initial_paths ~meta_of:meta Frontier.dfs

(* Four domains expand a synthetic binary tree through the queue, one
   shard each.  Every worker pushes children BEFORE finish_path, so the
   queue may never report termination while work is pending; all domains
   must drain the whole tree and exit their take loops. *)
let push_then_finish_termination () =
  let q = create ~shards:4 () in
  Wq.push_batch q ~dom:0 [ (meta 0, 0) ];
  let max_depth = 7 in
  let taken = Atomic.make 0 in
  let worker dom () =
    let rec loop () =
      match Wq.take q ~dom with
      | None -> ()
      | Some depth ->
        Atomic.incr taken;
        if depth < max_depth then
          Wq.push_batch q ~dom
            [ (meta (depth + 1), depth + 1); (meta (depth + 1), depth + 1) ];
        Wq.finish_path q;
        loop ()
    in
    loop ()
  in
  let domains = List.init 4 (fun dom -> Domain.spawn (worker dom)) in
  List.iter Domain.join domains;
  (* a complete binary tree of depth 7: 2^8 - 1 nodes *)
  check Alcotest.int "every pushed path was taken exactly once" 255
    (Atomic.get taken);
  check Alcotest.int "frontier drained" 0 (Wq.length q);
  check Alcotest.int "push accounting" 255 (Wq.pushed q);
  check Alcotest.bool "not stopped" false (Wq.stopped q)

(* take must block while paths are in flight (the frontier being empty is
   not termination), and stop must wake every blocked taker. *)
let stop_wakes_blocked_takers () =
  let q = create ~shards:3 ~initial_paths:1 () in
  let waiting = Atomic.make 0 in
  let results = Array.make 3 (Some 0) in
  let taker dom () =
    Atomic.incr waiting;
    results.(dom) <- Wq.take q ~dom
  in
  let domains = List.init 3 (fun dom -> Domain.spawn (taker dom)) in
  (* let the takers reach the queue (and, in practice, block on it) *)
  while Atomic.get waiting < 3 do
    Domain.cpu_relax ()
  done;
  for _ = 0 to 100_000 do
    Domain.cpu_relax ()
  done;
  check Alcotest.bool "not yet stopped" false (Wq.stopped q);
  Wq.stop q;
  List.iter Domain.join domains;
  Array.iteri
    (fun i r -> check Alcotest.bool (Printf.sprintf "taker %d woken" i) true (r = None))
    results;
  check Alcotest.bool "stopped" true (Wq.stopped q)

(* initial_paths pre-counts the root path a worker carries natively: with
   it, an empty frontier blocks takers until that path finishes; without
   it, an empty frontier means immediate termination. *)
let initial_paths_accounting () =
  let q0 = create () in
  check Alcotest.bool "no initial paths: empty queue terminates" true
    (Wq.take q0 ~dom:0 = None);
  let q = create ~initial_paths:1 () in
  let got = ref (Some (-1)) in
  let taker = Domain.spawn (fun () -> got := Wq.take q ~dom:0) in
  (* the implicit root path pushes one child, then finishes *)
  Wq.push_batch q ~dom:0 [ (meta 1, 7) ];
  Wq.finish_path q;
  Domain.join taker;
  check Alcotest.bool "taker got the root's child" true (!got = Some 7);
  (* that child is now in flight; finishing it ends the search *)
  Wq.finish_path q;
  check Alcotest.bool "drained and no paths in flight" true (Wq.take q ~dom:0 = None)

(* Steal-half: a take on an empty shard migrates half the victim's items
   in one batch — the thief consumes one and keeps the rest locally — and
   leaves ceil(n/2) with the victim. *)
let steal_half_leaves_half () =
  let steal_case n =
    let q = create ~shards:2 () in
    Wq.push_batch q ~dom:0 (List.init n (fun i -> (meta i, i)));
    (match Wq.take q ~dom:1 with
    | None -> Alcotest.failf "n=%d: thief found nothing" n
    | Some _ -> ());
    let k = n / 2 in
    check Alcotest.int
      (Printf.sprintf "n=%d: victim keeps ceil(n/2)" n)
      (n - k)
      (Wq.shard_length q 0);
    check Alcotest.int
      (Printf.sprintf "n=%d: thief keeps the batch minus one" n)
      (k - 1)
      (Wq.shard_length q 1);
    check Alcotest.int (Printf.sprintf "n=%d: one steal batch" n) 1
      (Wq.steal_batches q);
    check Alcotest.int (Printf.sprintf "n=%d: stolen accounting" n) k
      (Wq.stolen_items q);
    check Alcotest.int (Printf.sprintf "n=%d: nothing lost" n) (n - 1)
      (Wq.length q)
  in
  steal_case 8;
  steal_case 5

(* A singleton is stolen whole — a literal floor(n/2) would leave the
   thief empty-handed forever and stall the fleet on one-item frontiers. *)
let steal_singleton () =
  let q = create ~shards:2 () in
  Wq.push_batch q ~dom:0 [ (meta 0, 42) ];
  check Alcotest.bool "thief gets the singleton" true (Wq.take q ~dom:1 = Some 42);
  check Alcotest.int "victim empty" 0 (Wq.shard_length q 0);
  check Alcotest.int "thief shard empty" 0 (Wq.shard_length q 1);
  check Alcotest.int "stolen accounting" 1 (Wq.stolen_items q)

(* Conservation: concurrent thieves hammering one victim shard must hand
   out every item exactly once, with no duplication or loss. *)
let concurrent_steal_conservation () =
  let n = 1000 in
  let q = create ~shards:4 () in
  Wq.push_batch q ~dom:0 (List.init n (fun i -> (meta 0, i)));
  let seen = Array.make n (Atomic.make 0) in
  Array.iteri (fun i _ -> seen.(i) <- Atomic.make 0) seen;
  let worker dom () =
    let rec loop () =
      match Wq.take q ~dom with
      | None -> ()
      | Some i ->
        Atomic.incr seen.(i);
        Wq.finish_path q;
        loop ()
    in
    loop ()
  in
  let domains = List.init 4 (fun dom -> Domain.spawn (worker dom)) in
  List.iter Domain.join domains;
  Array.iteri
    (fun i c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "item %d taken %d times" i (Atomic.get c))
    seen;
  check Alcotest.int "frontier drained" 0 (Wq.length q);
  check Alcotest.bool "steals migrate in batches" true
    (Wq.stolen_items q >= Wq.steal_batches q)

let tests =
  [ Alcotest.test_case "push-then-finish termination, 4 domains" `Quick
      push_then_finish_termination;
    Alcotest.test_case "stop wakes blocked takers" `Quick
      stop_wakes_blocked_takers;
    Alcotest.test_case "initial_paths accounting" `Quick
      initial_paths_accounting;
    Alcotest.test_case "steal-half leaves ceil(n/2) with the victim" `Quick
      steal_half_leaves_half;
    Alcotest.test_case "singleton is stolen whole" `Quick steal_singleton;
    Alcotest.test_case "conservation under concurrent steals" `Quick
      concurrent_steal_conservation ]
