(* Record/replay: the log codec (round-trip, truncation detection), the
   bundle container, replay determinism against the live run — including
   under injected allocation faults — and the time-travel cursor
   (forward/backward agreement, breakpoints). *)

module Log = Record.Log
module Bundle = Record.Bundle
module Replay = Record.Replay
module Recorder = Record.Recorder
module Libos = Os.Libos
module Cpu = Vcpu.Cpu
module As = Mem.Addr_space

let check = Alcotest.check

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* {1 Log codec} *)

let gen_stop =
  QCheck2.Gen.(
    oneof
      [ map (fun n -> Log.Guess n) (int_range 0 1_000_000);
        return Log.Guess_fail;
        map (fun n -> Log.Strategy n) (int_range 0 16);
        map (fun n -> Log.Hint n) (int_range (-1000) 1000);
        map (fun n -> Log.Exit n) (int_range (-1) 300);
        map (fun s -> Log.Kill s) string;
        map (fun s -> Log.Crash s) string ])

let gen_event =
  QCheck2.Gen.(
    oneof
      [ map (fun snap -> Log.Capture { snap }) nat;
        map2 (fun snap rax -> Log.Resume { snap; rax }) nat (int_range (-1) 64);
        map (fun v -> Log.Set_rax v) (int_range (-2) 2);
        map2
          (fun number ret -> Log.Sys { number; ret })
          (int_range 0 31)
          (int_range (-4096) 1_000_000);
        map2 (fun retired stop -> Log.Eval { retired; stop }) nat gen_stop ])

let gen_log =
  QCheck2.Gen.(
    map2
      (fun meta events -> { Log.fuel_per_step = 50_000_000; meta; events })
      string
      (list_size (int_range 0 40) gen_event))

let log_roundtrip =
  qcheck "encode/decode round-trips (odd strings included)" gen_log
    (fun log ->
      match Log.decode (Log.encode log) with
      | Ok log' -> log' = log
      | Error e -> QCheck2.Test.fail_reportf "decode: %s" (Log.error_to_string e))

(* A prefix cut never crashes the decoder: it yields either a clean prefix
   of the events (cut landed on an event boundary) or a Truncated/Corrupt
   error that still reports how many events survived. *)
let log_truncation_safe =
  qcheck "truncated logs are detected, never crash"
    QCheck2.Gen.(pair gen_log (float_bound_inclusive 1.))
    (fun (log, frac) ->
      let s = Log.encode log in
      let cut = int_of_float (frac *. float_of_int (String.length s - 1)) in
      let n = List.length log.Log.events in
      let prefix k =
        List.filteri (fun i _ -> i < k) log.Log.events
      in
      match Log.decode (String.sub s 0 cut) with
      | Ok log' ->
        let k = List.length log'.Log.events in
        k <= n && log'.Log.events = prefix k
      | Error (Log.Truncated { events }) -> events <= n
      | Error (Log.Corrupt _) -> true
      | Error (Log.Bad_magic | Log.Bad_version _) -> cut < 5)

let log_truncation_last_byte () =
  let log =
    { Log.fuel_per_step = 1000;
      meta = "m";
      events =
        [ Log.Capture { snap = 3 };
          Log.Sys { number = 1; ret = 2 };
          Log.Eval { retired = 7; stop = Log.Kill "page fault" } ] }
  in
  let s = Log.encode log in
  match Log.decode (String.sub s 0 (String.length s - 1)) with
  | Error (Log.Truncated { events }) ->
    check Alcotest.int "events decoded before the cut" 2 events;
    let msg = Log.error_to_string (Log.Truncated { events }) in
    check Alcotest.bool "error message mentions truncation" true
      (contains ~sub:"truncated" msg)
  | Ok _ -> Alcotest.fail "one missing byte went undetected"
  | Error e -> Alcotest.failf "wrong error: %s" (Log.error_to_string e)

let log_bad_header () =
  (match Log.decode "XXXX\001rest" with
  | Error Log.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (match Log.decode ("LWRR" ^ String.make 1 (Char.chr 99)) with
  | Error (Log.Bad_version 99) -> ()
  | _ -> Alcotest.fail "future version accepted");
  match Log.decode "LW" with
  | Error Log.Bad_magic -> ()
  | _ -> Alcotest.fail "short header accepted"

(* {1 Bundle container} *)

let tiny_source = "main:\n    mov rax, 0\n    mov rdi, 5\n    syscall\n"

let bundle_roundtrip () =
  let image = Isa.Asm_parser.assemble_text tiny_source in
  let log =
    { Log.fuel_per_step = 77;
      meta = "bundle test";
      events = [ Log.Eval { retired = 3; stop = Log.Exit 5 } ] }
  in
  let b =
    Bundle.of_image ~source:tiny_source ~stdin:"in\000put"
      ~files:[ ("a.txt", "alpha"); ("b.bin", "\000\255") ]
      image log
  in
  (match Bundle.decode (Bundle.encode b) with
  | Ok b' -> check Alcotest.bool "in-memory round-trip" true (b = b')
  | Error e -> Alcotest.failf "decode: %s" e);
  let path = Filename.temp_file "lwsnap-test" ".replay" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bundle.write ~path b;
      match Bundle.read ~path with
      | Ok b' -> check Alcotest.bool "file round-trip" true (b = b')
      | Error e -> Alcotest.failf "read: %s" e);
  match Bundle.decode "not a bundle at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted as a bundle"

(* {1 Replay determinism} *)

(* The state a guest can observe, bit for bit: registers, flags, rip, the
   whole mapped address space, the OS view (stdout, brk).  [retired] is
   deliberately excluded — it is a monotone host counter, not state. *)
let machine_digest (m : Libos.t) =
  let fnv_string h s =
    String.fold_left
      (fun h c -> (h lxor Char.code c) * 0x100000001b3 land max_int)
      h s
  in
  let mem =
    List.fold_left
      (fun h vpn ->
        fnv_string h
          (Bytes.to_string
             (As.read_bytes m.Libos.aspace ~addr:(vpn * Mem.Page.size)
                ~len:Mem.Page.size)))
      0xbf29ce484222325
      (List.sort compare (As.mapped_vpns m.Libos.aspace))
  in
  let cpu = m.Libos.cpu in
  ( Array.to_list cpu.Cpu.regs,
    cpu.Cpu.rip,
    (cpu.Cpu.flags.Cpu.zf, cpu.Cpu.flags.Cpu.sf, cpu.Cpu.flags.Cpu.lt_s,
     cpu.Cpu.flags.Cpu.lt_u),
    mem,
    Libos.stdout_text m,
    Libos.brk_value m )

let small_cfg = { Fuzz.Gen_prog.max_depth = 2; max_fanout = 2; max_stmts = 4 }

(* Record a generated guest's full exploration; optionally with injected
   allocation faults so crash segments and supervision retries land in the
   log too. *)
let record_gen_prog ?faults seed =
  let prog = Fuzz.Gen_prog.generate ~cfg:small_cfg seed in
  let source = Fuzz.Gen_prog.render prog in
  let image = Isa.Asm_parser.assemble_text source in
  let phys = Mem.Phys_mem.create () in
  (match faults with
  | Some ordinals ->
    let plan =
      { Inject.seed;
        faults = List.map (fun k -> Inject.Alloc_fail k) ordinals }
    in
    Mem.Phys_mem.set_alloc_fault phys (Inject.alloc_hook (Inject.arm plan))
  | None -> ());
  let machine = Libos.boot phys image in
  let recorder = Recorder.create ~meta:(Printf.sprintf "seed %d" seed) () in
  Recorder.install recorder machine;
  let result =
    Core.Explorer.run ~probe:(Recorder.probe recorder) machine
  in
  Libos.set_sys_hook machine None;
  (machine, result, Bundle.of_image ~source image (Recorder.log recorder))

let seek_to_end cur =
  (match Replay.seek cur (Replay.total_time cur) with
  | Replay.Stopped -> ()
  | Replay.End | Replay.Break _ -> Alcotest.fail "seek to end interrupted");
  check Alcotest.bool "cursor at end" true (Replay.at_end cur)

let replay_matches_live ?faults seed () =
  let live, result, bundle = record_gen_prog ?faults seed in
  (* a faulted recording must really contain crash segments, or the test
     silently degrades to the clean case *)
  if faults <> None then
    check Alcotest.bool "log contains a crash segment" true
      (List.exists
         (function
           | Log.Eval { stop = Log.Crash _; _ } -> true
           | _ -> false)
         bundle.Bundle.log.Log.events);
  let live_digest = machine_digest live in
  (* serialisation must not perturb replay: go through encode/decode *)
  let bundle =
    match Bundle.decode (Bundle.encode bundle) with
    | Ok b -> b
    | Error e -> Alcotest.failf "bundle round-trip: %s" e
  in
  let replay_once () =
    let cur = Replay.create ~anchor_every:4 bundle in
    seek_to_end cur;
    (machine_digest (Replay.machine cur), Replay.total_time cur)
  in
  let d1, t1 = replay_once () in
  let d2, t2 = replay_once () in
  check Alcotest.bool "replay terminal state = live terminal state" true
    (d1 = live_digest);
  check Alcotest.bool "second replay bit-identical to the first" true
    (d1 = d2 && t1 = t2);
  check Alcotest.int "logged instructions = live instructions"
    result.Core.Explorer.stats.Core.Stats.instructions t1

(* {1 The time-travel cursor} *)

let guess_three_source =
  {|
main:
    mov   rdi, 0
    mov   rax, 8
    syscall
    cmp   rax, 0
    je    done
    mov   rdi, 3
    mov   rax, 6
    syscall
    add   rax, 'A'
    mov   rcx, buf
    stb   [rcx], rax
    stib  [rcx+1], 10
    mov   rdi, 1
    mov   rsi, buf
    mov   rdx, 2
    mov   rax, 1
    syscall
    mov   rax, 7
    syscall
done:
    mov   rdi, 0
    mov   rax, 0
    syscall
.align 4096
buf:
.zeros 8
|}

let record_source source =
  let image = Isa.Asm_parser.assemble_text source in
  let machine = Libos.boot (Mem.Phys_mem.create ()) image in
  let recorder = Recorder.create () in
  Recorder.install recorder machine;
  let (_ : Core.Explorer.result) =
    Core.Explorer.run ~probe:(Recorder.probe recorder) machine
  in
  Libos.set_sys_hook machine None;
  Bundle.of_image ~source image (Recorder.log recorder)

(* Walk forward single-stepping and remember rip at every time index; then
   revisit positions backwards (exercising the anchor-restore path with a
   tight anchor interval) and demand the very same observations. *)
let cursor_forward_backward_agree () =
  let bundle = record_source guess_three_source in
  let cur = Replay.create ~anchor_every:2 bundle in
  let total = Replay.total_time cur in
  check Alcotest.bool "non-trivial run" true (total > 20);
  let trail = Array.make (total + 1) (-1) in
  let digest_at = Hashtbl.create 8 in
  let record_here () =
    trail.(Replay.time cur) <- (Replay.machine cur).Libos.cpu.Cpu.rip;
    if Replay.time cur mod 7 = 0 then
      Hashtbl.replace digest_at (Replay.time cur)
        (machine_digest (Replay.machine cur))
  in
  record_here ();
  let steps = ref 0 in
  let rec walk () =
    match Replay.step cur with
    | Replay.Stopped ->
      incr steps;
      record_here ();
      walk ()
    | Replay.End -> ()
    | Replay.Break _ -> Alcotest.fail "spurious breakpoint"
  in
  walk ();
  check Alcotest.int "steps = total instructions" total !steps;
  check Alcotest.bool "at end after stepping" true (Replay.at_end cur);
  (* backward sweep: rstep all the way home *)
  for t = total - 1 downto 0 do
    (match Replay.rstep cur with
    | Replay.Stopped -> ()
    | _ -> Alcotest.failf "rstep stopped early at time %d" t);
    check Alcotest.int (Printf.sprintf "time after rstep to %d" t) t
      (Replay.time cur);
    check Alcotest.int
      (Printf.sprintf "rip at time %d matches the forward pass" t)
      trail.(t)
      (Replay.machine cur).Libos.cpu.Cpu.rip
  done;
  (match Replay.rstep cur with
  | Replay.End -> ()
  | _ -> Alcotest.fail "rstep at time 0 should report the boundary");
  (* random-access seeks: full state agreement at the sampled points *)
  Hashtbl.iter
    (fun t digest ->
      (match Replay.seek cur t with
      | Replay.Stopped -> ()
      | _ -> Alcotest.failf "seek %d interrupted" t);
      check Alcotest.bool
        (Printf.sprintf "state at time %d identical on revisit" t)
        true
        (machine_digest (Replay.machine cur) = digest))
    digest_at

let cursor_breakpoints () =
  let bundle = record_source guess_three_source in
  let cur = Replay.create ~anchor_every:2 bundle in
  check Alcotest.bool "several stop segments" true (Replay.segments cur >= 5);
  (* stop-index breakpoint: forward, then the same one in reverse *)
  let b_stop = Replay.add_bp cur (Replay.Bp_stop 2) in
  (match Replay.continue cur with
  | Replay.Break (id, Replay.Bp_stop 2) ->
    check Alcotest.int "stop bp id" b_stop id;
    check Alcotest.int "parked at stop 2" 2 (Replay.stop_index cur)
  | _ -> Alcotest.fail "continue missed the stop breakpoint");
  seek_to_end cur;
  (match Replay.rcontinue cur with
  | Replay.Break (_, Replay.Bp_stop 2) ->
    check Alcotest.int "reverse-continue parked at stop 2" 2
      (Replay.stop_index cur)
  | _ -> Alcotest.fail "rcontinue missed the stop breakpoint");
  check Alcotest.bool "bp removed" true (Replay.remove_bp cur b_stop);
  (* syscall breakpoint: sys_write fires once per explored path *)
  let b_sys = Replay.add_bp cur (Replay.Bp_sys 1) in
  (match Replay.seek cur 0 with
  | Replay.Stopped -> ()
  | _ -> Alcotest.fail "seek 0 interrupted");
  let hits = ref 0 in
  let rec count () =
    match Replay.continue cur with
    | Replay.Break (_, Replay.Bp_sys 1) ->
      incr hits;
      count ()
    | Replay.End -> ()
    | _ -> Alcotest.fail "unexpected halt"
  in
  count ();
  check Alcotest.int "one write per explored path" 3 !hits;
  check Alcotest.bool "bp removed" true (Replay.remove_bp cur b_sys);
  (* pc breakpoint at the instruction after sys_guess returns: reachable
     on every path, including in reverse *)
  let guess_rip =
    (* find it by stepping a fresh cursor to the first write and reading
       the recorded trail is overkill: the breakpoint test below only
       needs *a* pc that occurs mid-run, so take the pc after one step
       from stop 1 *)
    (match Replay.seek_stop cur 1 with
    | Replay.Stopped -> ()
    | _ -> Alcotest.fail "seek-stop 1 interrupted");
    ignore (Replay.step cur);
    (Replay.machine cur).Libos.cpu.Cpu.rip
  in
  let expect_time = Replay.time cur in
  let b_pc = Replay.add_bp cur (Replay.Bp_pc guess_rip) in
  (match Replay.seek cur 0 with
  | Replay.Stopped -> ()
  | _ -> Alcotest.fail "seek 0 interrupted");
  (match Replay.continue cur with
  | Replay.Break (_, Replay.Bp_pc _) ->
    check Alcotest.int "pc bp hit at the recorded time" expect_time
      (Replay.time cur)
  | _ -> Alcotest.fail "continue missed the pc breakpoint");
  ignore (Replay.remove_bp cur b_pc);
  (* no breakpoints: continue runs to the end, rcontinue to the start *)
  (match Replay.continue cur with
  | Replay.End -> check Alcotest.bool "at end" true (Replay.at_end cur)
  | _ -> Alcotest.fail "continue with no bps should reach the end");
  match Replay.rcontinue cur with
  | Replay.End -> check Alcotest.int "back at time 0" 0 (Replay.time cur)
  | _ -> Alcotest.fail "rcontinue with no bps should reach the start"

let cursor_seek_stop_and_clamp () =
  let bundle = record_source guess_three_source in
  let cur = Replay.create bundle in
  let last = Replay.segments cur - 1 in
  (match Replay.seek_stop cur last with
  | Replay.Stopped -> check Alcotest.int "at last stop" last (Replay.stop_index cur)
  | _ -> Alcotest.fail "seek-stop interrupted");
  (match Replay.seek cur max_int with
  | Replay.Stopped ->
    check Alcotest.int "seek clamps high" (Replay.total_time cur)
      (Replay.time cur)
  | _ -> Alcotest.fail "clamped seek interrupted");
  (match Replay.seek cur (-5) with
  | Replay.Stopped -> check Alcotest.int "seek clamps low" 0 (Replay.time cur)
  | _ -> Alcotest.fail "clamped seek interrupted");
  check Alcotest.bool "anchor_every must be positive" true
    (match Replay.create ~anchor_every:0 bundle with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Recording composes only with the plain in-memory scheduler. *)
let recording_rejects_reclaim () =
  let image = Isa.Asm_parser.assemble_text guess_three_source in
  let machine = Libos.boot (Mem.Phys_mem.create ~capacity:4096 ()) image in
  let recorder = Recorder.create () in
  match Core.Explorer.run ~probe:(Recorder.probe recorder) machine with
  | exception Invalid_argument _ -> ()
  | (_ : Core.Explorer.result) ->
    Alcotest.fail "recording over a reclaim store should be rejected"

let tests =
  [ log_roundtrip;
    log_truncation_safe;
    Alcotest.test_case "one missing byte is reported as truncation" `Quick
      log_truncation_last_byte;
    Alcotest.test_case "bad magic and version are rejected" `Quick
      log_bad_header;
    Alcotest.test_case "bundle round-trips in memory and on disk" `Quick
      bundle_roundtrip;
    Alcotest.test_case "replay reproduces the live run (seed 11)" `Quick
      (replay_matches_live 11);
    Alcotest.test_case "replay reproduces the live run (seed 23)" `Quick
      (replay_matches_live 23);
    Alcotest.test_case "replay reproduces a faulted run (alloc faults)"
      `Quick
      (replay_matches_live ~faults:[ 6 ] 11);
    Alcotest.test_case "forward and backward passes observe the same states"
      `Quick cursor_forward_backward_agree;
    Alcotest.test_case "breakpoints: stop, syscall, pc, forward and reverse"
      `Quick cursor_breakpoints;
    Alcotest.test_case "seek clamping and seek-stop" `Quick
      cursor_seek_stop_and_clamp;
    Alcotest.test_case "recording rejects the reclaim scheduler" `Quick
      recording_rejects_reclaim ]
