(* The differential fuzzing oracle: generation, the fixed-seed smoke run,
   the encode/disasm roundtrip over generated code, and the shrinker. *)

let check = Alcotest.check

let small_cfg = { Fuzz.Gen_prog.max_depth = 2; max_fanout = 2; max_stmts = 3 }

let generation_is_deterministic () =
  let a = Fuzz.Gen_prog.render (Fuzz.Gen_prog.generate 7) in
  let b = Fuzz.Gen_prog.render (Fuzz.Gen_prog.generate 7) in
  check Alcotest.string "same seed, same program" a b;
  let c = Fuzz.Gen_prog.render (Fuzz.Gen_prog.generate 8) in
  check Alcotest.bool "different seed, different program" true (a <> c)

let generated_programs_assemble () =
  for seed = 0 to 19 do
    let text = Fuzz.Gen_prog.render (Fuzz.Gen_prog.generate seed) in
    match Isa.Asm_parser.assemble_text text with
    | (_ : Isa.Asm.image) -> ()
    | exception Isa.Asm_parser.Parse_error { line; message } ->
      Alcotest.failf "seed %d: parse error at line %d: %s" seed line message
    | exception Isa.Asm.Error message ->
      Alcotest.failf "seed %d: assembly error: %s" seed message
  done

(* The acceptance smoke run: a handful of programs through all six
   pipeline comparisons.  Small budget and tree so the suite stays fast;
   the CLI (and CI's fuzz-smoke job) runs the full budget. *)
let oracle_smoke () =
  let r = Fuzz.Oracle.run_budget ~cfg:small_cfg ~seed:42 ~budget:4 () in
  (match r.Fuzz.Oracle.failures with
  | [] -> ()
  | (prog, d) :: _ ->
    Alcotest.failf "seed %d diverges on %s: %s\nprogram:\n%s"
      prog.Fuzz.Gen_prog.seed d.Fuzz.Oracle.pipeline d.Fuzz.Oracle.detail
      (Fuzz.Gen_prog.render prog));
  check Alcotest.int "programs checked" 4 r.Fuzz.Oracle.programs

let oracle_smoke_default_cfg () =
  match (Fuzz.Oracle.run_budget ~seed:1042 ~budget:1 ()).Fuzz.Oracle.failures with
  | [] -> ()
  | (prog, d) :: _ ->
    Alcotest.failf "seed %d diverges on %s: %s" prog.Fuzz.Gen_prog.seed
      d.Fuzz.Oracle.pipeline d.Fuzz.Oracle.detail

(* The multi-tenant cross-check: a handful of generated guests, each run
   as three interleaved tenants over one shared pool against a
   single-tenant baseline.  Small trees keep the DFS frontier cheap. *)
let oracle_tenants_smoke () =
  for seed = 42 to 47 do
    let prog = Fuzz.Gen_prog.generate ~cfg:small_cfg seed in
    match Fuzz.Oracle.check_prog_tenants ~tenants:3 prog with
    | None -> ()
    | Some d ->
      Alcotest.failf "seed %d diverges as tenants: %s\nprogram:\n%s" seed
        d.Fuzz.Oracle.detail
        (Fuzz.Gen_prog.render prog)
  done

(* Disassembling the code section of a generated image and re-encoding the
   listing must reproduce the bytes exactly. *)
let encode_disasm_roundtrip () =
  for seed = 0 to 19 do
    let text = Fuzz.Gen_prog.render (Fuzz.Gen_prog.generate seed) in
    let image = Isa.Asm_parser.assemble_text text in
    let listing =
      Isa.Disasm.disassemble ~code:image.Isa.Asm.code
        ~origin:image.Isa.Asm.origin ()
    in
    if listing = [] then Alcotest.failf "seed %d: empty listing" seed;
    let reencoded = Isa.Encode.encode_to_string (List.map snd listing) in
    let prefix = String.sub image.Isa.Asm.code 0 (String.length reencoded) in
    if reencoded <> prefix then
      Alcotest.failf "seed %d: re-encoded bytes differ from the image" seed
  done

(* Shrinking against a synthetic predicate: the minimiser must preserve
   the predicate and reach a local minimum without ever producing an
   unassemblable program. *)
let shrinker_minimises () =
  let has_exit p =
    let rec node_has { Fuzz.Gen_prog.kind; _ } =
      match kind with
      | Fuzz.Gen_prog.Exit _ -> true
      | Fuzz.Gen_prog.Fail -> false
      | Fuzz.Gen_prog.Guess children -> List.exists node_has children
    in
    node_has p.Fuzz.Gen_prog.tree
  in
  let cfg = { small_cfg with Fuzz.Gen_prog.max_depth = 3 } in
  let rec first_with_exit seed =
    if seed > 100 then Alcotest.failf "no seed below 100 grew an exit leaf"
    else
      let p = Fuzz.Gen_prog.generate ~cfg seed in
      if has_exit p && Fuzz.Gen_prog.size p > 3 then p else first_with_exit (seed + 1)
  in
  let prog = first_with_exit 0 in
  let checked = ref 0 in
  let still_diverges p =
    incr checked;
    ignore (Isa.Asm_parser.assemble_text (Fuzz.Gen_prog.render p));
    has_exit p
  in
  let small = Fuzz.Shrink.minimise ~still_diverges prog in
  check Alcotest.bool "predicate preserved" true (has_exit small);
  check Alcotest.bool "actually shrank" true
    (Fuzz.Gen_prog.size small < Fuzz.Gen_prog.size prog);
  check Alcotest.bool "oracle consulted" true (!checked > 0);
  (* a minimal exit-bearing tree is a single statement-free Exit leaf *)
  check Alcotest.int "local minimum" 1 (Fuzz.Gen_prog.size small)

let tests =
  [ Alcotest.test_case "generation is deterministic" `Quick
      generation_is_deterministic;
    Alcotest.test_case "generated programs assemble" `Quick
      generated_programs_assemble;
    Alcotest.test_case "oracle smoke (fixed seeds)" `Quick oracle_smoke;
    Alcotest.test_case "oracle smoke (default config)" `Quick
      oracle_smoke_default_cfg;
    Alcotest.test_case "oracle multi-tenant smoke" `Quick oracle_tenants_smoke;
    Alcotest.test_case "encode/disasm roundtrip" `Quick encode_disasm_roundtrip;
    Alcotest.test_case "shrinker minimises" `Quick shrinker_minimises ]
