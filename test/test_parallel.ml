(* The parallel explorer: same answers as the sequential scheduler, real
   makespan scaling, cross-worker isolation and sharing. *)

module Parallel = Core.Parallel
module Explorer = Core.Explorer
module Abi = Os.Sys_abi
module R = Isa.Reg
module Wl_common = Workloads.Wl_common
open Isa.Asm

let check = Alcotest.check

let config ?(workers = 4) ?(quantum = 2000) () =
  { Parallel.default_config with Parallel.workers; quantum }

let solutions (r : Parallel.result) =
  List.sort compare
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' r.Parallel.transcript))

let completed (r : Parallel.result) =
  match r.Parallel.outcome with
  | Explorer.Completed s -> s
  | Explorer.Stopped_first_exit _ -> Alcotest.fail "unexpected first-exit"
  | Explorer.Aborted m -> Alcotest.failf "aborted: %s" m

let same_solutions_any_worker_count () =
  let expected = List.sort compare (Workloads.Nqueens.host_boards 6) in
  List.iter
    (fun workers ->
      let r = Parallel.run ~config:(config ~workers ()) (Workloads.Nqueens.program ~n:6) in
      check Alcotest.int "completed" 0 (completed r);
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "solutions with %d workers" workers)
        expected (solutions r))
    [ 1; 2; 3; 8 ]

let counting_tree_all_leaves () =
  let r =
    Parallel.run ~config:(config ~workers:4 ())
      (Workloads.Counting.program ~depth:5 ~branch:3)
  in
  check Alcotest.int "completed" 0 (completed r);
  check Alcotest.int "all leaves" 243 r.Parallel.stats.Core.Stats.fails;
  check Alcotest.int "all guesses" 121 r.Parallel.stats.Core.Stats.guesses

let makespan_shrinks_with_workers () =
  let rounds workers =
    let p =
      { Workloads.Locality.depth = 4; branch = 2; touch_pages = 1; work = 500;
        arena_pages = 4 }
    in
    let r =
      Parallel.run ~config:(config ~workers ~quantum:1000 ())
        (Workloads.Locality.program p)
    in
    check Alcotest.int "leaves" 16 r.Parallel.stats.Core.Stats.fails;
    r.Parallel.rounds
  in
  let r1 = rounds 1 and r4 = rounds 4 in
  check Alcotest.bool
    (Printf.sprintf "4 workers at least 2x faster (%d vs %d rounds)" r1 r4)
    true
    (r4 * 2 <= r1)

let total_work_is_worker_independent () =
  let instructions workers =
    let r =
      Parallel.run ~config:(config ~workers ()) (Workloads.Counting.program ~depth:6 ~branch:2)
    in
    r.Parallel.stats.Core.Stats.instructions
  in
  check Alcotest.int "no duplicated exploration" (instructions 1) (instructions 5)

let first_exit_mode () =
  let image = Workloads.Subset_sum.program ~target:21 [ 1; 2; 4; 8; 16 ] in
  let cfg = { (config ~workers:4 ()) with Parallel.mode = `First_exit } in
  let r = Parallel.run ~config:cfg image in
  match r.Parallel.outcome with
  | Explorer.Stopped_first_exit 0 -> ()
  | _ -> Alcotest.fail "expected first exit"

let shared_counter_across_workers () =
  (* every leaf of a 2^4 tree increments a shared page; with 4 workers the
     increments come from different virtual CPUs but land in one frame *)
  let image =
    assemble ~entry:"main"
      ([ label "main"; mov R.rdi (i 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ mov R.r15 (r R.rax); mov R.rdi (r R.rax); add R.rdi (i 4096) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ mov R.rdi (r R.r15); mov R.rsi (i 8) ]
      @ Wl_common.syscall3 ~number:Abi.sys_share
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ cmp R.rax (i 0); je "after"; mov R.r12 (i 4) ]
      @ [ label "step"; cmp R.r12 (i 0); jle "leaf" ]
      @ Wl_common.sys_guess_imm ~n:2
      @ [ dec R.r12; jmp "step"; label "leaf";
          ld R.rcx (R.r15 @+ 0); inc R.rcx; st (R.r15 @+ 0) R.rcx ]
      @ Wl_common.sys_guess_fail
      @ [ label "after"; ld R.rdi (R.r15 @+ 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit)
  in
  let r = Parallel.run ~config:(config ~workers:4 ~quantum:500 ()) image in
  check Alcotest.int "16 leaves counted across 4 workers" 16 (completed r)

let isolation_between_workers () =
  (* each path writes a distinct byte to its private data page then checks
     it; corruption from a sibling worker would exit non-zero *)
  let image =
    assemble ~entry:"main"
      ([ label "main" ]
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ cmp R.rax (i 0); je "after" ]
      @ Wl_common.sys_guess_imm ~n:8
      @ [ mov R.rcx (r R.rax);
          movl R.r8 "slot";
          st (R.r8 @+ 0) R.rcx;
          (* spin a little so siblings interleave *)
          mov R.r10 (i 500);
          label "spin";
          dec R.r10;
          jne "spin";
          ld R.rdx (R.r8 @+ 0);
          cmp R.rdx (r R.rcx);
          jne "corrupt" ]
      @ Wl_common.sys_guess_fail
      @ [ label "corrupt" ]
      @ Wl_common.sys_exit ~status:99
      @ [ label "after" ]
      @ Wl_common.sys_exit ~status:0
      @ [ align 4096; label "slot"; zeros 8 ])
  in
  let r = Parallel.run ~config:(config ~workers:8 ~quantum:100 ()) image in
  check Alcotest.int "no cross-worker corruption" 0 (completed r);
  check Alcotest.int "no path saw corruption" 0 r.Parallel.stats.Core.Stats.exits

let busy_rounds_reported () =
  let r =
    Parallel.run ~config:(config ~workers:3 ())
      (Workloads.Counting.program ~depth:4 ~branch:2)
  in
  check Alcotest.int "per-worker rows" 3 (Array.length r.Parallel.busy_rounds);
  Array.iter
    (fun b -> check Alcotest.bool "bounded by makespan" true (b <= r.Parallel.rounds))
    r.Parallel.busy_rounds

(* {1 Domains backend} *)

let dconfig ?(workers = 4) ?(quantum = 2000) () =
  { Parallel.default_config with Parallel.workers; quantum; backend = `Domains }

let domains_same_solutions () =
  let expected = List.sort compare (Workloads.Nqueens.host_boards 6) in
  List.iter
    (fun workers ->
      let r =
        Parallel.run ~config:(dconfig ~workers ()) (Workloads.Nqueens.program ~n:6)
      in
      check Alcotest.int "completed" 0 (completed r);
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "solutions with %d domains" workers)
        expected (solutions r))
    [ 1; 2; 4 ]

let domains_counting_tree_all_leaves () =
  let r =
    Parallel.run ~config:(dconfig ~workers:4 ())
      (Workloads.Counting.program ~depth:5 ~branch:3)
  in
  check Alcotest.int "completed" 0 (completed r);
  check Alcotest.int "all leaves" 243 r.Parallel.stats.Core.Stats.fails;
  check Alcotest.int "all guesses" 121 r.Parallel.stats.Core.Stats.guesses;
  check Alcotest.int "every extension evaluated once" 363
    r.Parallel.stats.Core.Stats.extensions_evaluated;
  check Alcotest.int "work split across domains" 363
    (Array.fold_left ( + ) 0 r.Parallel.busy_rounds)

let terminal_multiset (r : Parallel.result) =
  List.sort compare
    (List.map
       (fun (t : Explorer.terminal) -> (t.Explorer.kind, t.Explorer.output))
       r.Parallel.terminals)

let domains_recycling_terminal_identity () =
  (* Recycling is on by default (no faults armed).  The reference is a
     single-domain run under tracing — the instrumented slow path — so the
     identity also guards against instrumentation perturbing semantics. *)
  let image = Workloads.Nqueens.program ~n:5 in
  Obs.Trace.start ();
  let baseline =
    Fun.protect ~finally:(fun () -> Obs.Trace.stop (); Obs.Trace.clear ())
      (fun () -> Parallel.run ~config:(dconfig ~workers:1 ()) image)
  in
  check Alcotest.int "baseline completed" 0 (completed baseline);
  let expected = terminal_multiset baseline in
  List.iter
    (fun workers ->
      let r = Parallel.run ~config:(dconfig ~workers ()) image in
      check Alcotest.int
        (Printf.sprintf "%d domains completed" workers) 0 (completed r);
      check Alcotest.bool
        (Printf.sprintf "%d domains: recycling reached the backend" workers)
        true
        (r.Parallel.stats.Core.Stats.mem.Mem.Mem_metrics.frames_recycled > 0);
      check Alcotest.bool
        (Printf.sprintf "terminal multiset identical at %d domains" workers)
        true
        (expected = terminal_multiset r))
    [ 1; 2; 4 ]

let domains_per_domain_metrics () =
  let workers = 4 in
  (* a workload whose paths actually dirty pages, so recycling has frames
     to reuse (a register-only guest legitimately recycles nothing) *)
  let r =
    Parallel.run ~config:(dconfig ~workers ()) (Workloads.Nqueens.program ~n:5)
  in
  check Alcotest.int "completed" 0 (completed r);
  check Alcotest.int "one registry per domain" workers
    (Array.length r.Parallel.domain_metrics);
  let summed name =
    Array.fold_left
      (fun acc reg -> acc + Obs.Metrics.get_counter reg name)
      0 r.Parallel.domain_metrics
  in
  check Alcotest.int "per-domain evaluation counts sum to the aggregate"
    r.Parallel.stats.Core.Stats.extensions_evaluated
    (summed "explorer.extensions_evaluated");
  check Alcotest.int "per-domain recycling counts sum to the aggregate"
    r.Parallel.stats.Core.Stats.mem.Mem.Mem_metrics.frames_recycled
    (summed "mem.frames_recycled");
  (* Any domain that kept exploring after its first frees must show
     recycling — the E11 regression was exactly these rows reading zero. *)
  Array.iteri
    (fun dom reg ->
      if
        Obs.Metrics.get_counter reg "explorer.extensions_evaluated" >= 10
        && Obs.Metrics.get_counter reg "mem.frames_freed" > 0
      then
        check Alcotest.bool
          (Printf.sprintf "domain %d recycled frames" dom)
          true
          (Obs.Metrics.get_counter reg "mem.frames_recycled" > 0))
    r.Parallel.domain_metrics

let domains_first_exit () =
  let image = Workloads.Subset_sum.program ~target:21 [ 1; 2; 4; 8; 16 ] in
  let cfg = { (dconfig ~workers:4 ()) with Parallel.mode = `First_exit } in
  let r = Parallel.run ~config:cfg image in
  match r.Parallel.outcome with
  | Explorer.Stopped_first_exit 0 -> ()
  | Explorer.Stopped_first_exit s -> Alcotest.failf "first exit with status %d" s
  | Explorer.Completed _ -> Alcotest.fail "expected first-exit stop"
  | Explorer.Aborted m -> Alcotest.failf "aborted: %s" m

let per_path_output_attribution () =
  (* four paths each print a distinct digit then fail: the transcript holds
     all four, and each fail terminal is attributed exactly its own digit —
     under both backends (regression for per-worker harvest markers) *)
  let image =
    assemble ~entry:"main"
      ([ label "main" ]
      @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
      @ [ cmp R.rax (i 0); je "after" ]
      @ Wl_common.sys_guess_imm ~n:4
      @ [ mov R.rcx (r R.rax);
          add R.rcx (i 48);  (* '0' + extension index *)
          movl R.r8 "slot";
          st (R.r8 @+ 0) R.rcx ]
      @ Wl_common.write_label ~buf:"slot" ~len:1
      @ Wl_common.sys_guess_fail
      @ [ label "after" ]
      @ Wl_common.sys_exit ~status:0
      @ [ align 4096; label "slot"; zeros 8 ])
  in
  List.iter
    (fun backend ->
      let cfg = { (config ~workers:3 ~quantum:200 ()) with Parallel.backend } in
      let r = Parallel.run ~config:cfg image in
      check Alcotest.int "completed" 0 (completed r);
      let outputs =
        List.filter_map
          (fun (t : Explorer.terminal) ->
            match t.Explorer.kind with
            | Explorer.Fail when t.Explorer.output <> "" -> Some t.Explorer.output
            | _ -> None)
          r.Parallel.terminals
      in
      check (Alcotest.list Alcotest.string) "each path owns its digit"
        [ "0"; "1"; "2"; "3" ]
        (List.sort compare outputs);
      check (Alcotest.list Alcotest.string) "transcript is the four digits"
        [ "0"; "1"; "2"; "3" ]
        (List.sort compare
           (List.init
              (String.length r.Parallel.transcript)
              (fun i -> String.make 1 r.Parallel.transcript.[i]))))
    [ `Cooperative; `Domains ]

let max_live_snapshots_tracked () =
  (* regression: the cooperative scheduler never updated max_live_snapshots *)
  let r = Parallel.run ~config:(config ~workers:4 ()) (Workloads.Nqueens.program ~n:5) in
  check Alcotest.int "completed" 0 (completed r);
  check Alcotest.bool "live-snapshot extent tracked" true
    (r.Parallel.stats.Core.Stats.max_live_snapshots > 0);
  check Alcotest.bool "extent covers the frontier" true
    (r.Parallel.stats.Core.Stats.max_live_snapshots
    >= r.Parallel.stats.Core.Stats.max_frontier)

(* {1 Supervision and fault injection} *)

let fault_config ?(backend = `Cooperative) ?(retry_budget = 3) faults () =
  { Parallel.default_config with
    Parallel.workers = 4;
    quantum = 2000;
    backend;
    retry_budget;
    faults = Some { Inject.seed = 0; faults } }

let coop_crash_recovery () =
  let expected = List.sort compare (Workloads.Nqueens.host_boards 6) in
  let r =
    Parallel.run
      ~config:(fault_config [ Inject.Worker_crash 5 ] ())
      (Workloads.Nqueens.program ~n:6)
  in
  check Alcotest.int "completed" 0 (completed r);
  check (Alcotest.list Alcotest.string) "all solutions despite the crash"
    expected (solutions r);
  check Alcotest.bool "the crash was retried" true
    (r.Parallel.stats.Core.Stats.requeues >= 1);
  check Alcotest.int "nothing quarantined" 0
    r.Parallel.stats.Core.Stats.quarantined

let domains_crash_recovery () =
  let expected = List.sort compare (Workloads.Nqueens.host_boards 6) in
  let r =
    Parallel.run
      ~config:(fault_config ~backend:`Domains [ Inject.Worker_crash 5 ] ())
      (Workloads.Nqueens.program ~n:6)
  in
  check Alcotest.int "completed" 0 (completed r);
  check (Alcotest.list Alcotest.string) "all solutions despite the crash"
    expected (solutions r);
  check Alcotest.bool "the crash was retried" true
    (r.Parallel.stats.Core.Stats.requeues >= 1);
  check Alcotest.int "nothing quarantined" 0
    r.Parallel.stats.Core.Stats.quarantined

let coop_alloc_failure_recovery () =
  (* Several ordinals so at least one lands inside worker-path evaluation
     regardless of how many frames boot consumed; each fires at most once
     and the origin retry re-allocates successfully. *)
  let faults = [ Inject.Alloc_fail 120; Alloc_fail 200; Alloc_fail 300 ] in
  let expected = List.sort compare (Workloads.Nqueens.host_boards 6) in
  let r =
    Parallel.run ~config:(fault_config faults ()) (Workloads.Nqueens.program ~n:6)
  in
  check Alcotest.int "completed" 0 (completed r);
  check (Alcotest.list Alcotest.string) "all solutions despite failed allocations"
    expected (solutions r);
  check Alcotest.int "nothing quarantined" 0
    r.Parallel.stats.Core.Stats.quarantined

let quarantine_after_budget () =
  (* A retry budget of 1 turns the first crash into a quarantined path:
     the run still completes, minus the killed subtree. *)
  let expected = List.sort compare (Workloads.Nqueens.host_boards 6) in
  let r =
    Parallel.run
      ~config:(fault_config ~retry_budget:1 [ Inject.Worker_crash 5 ] ())
      (Workloads.Nqueens.program ~n:6)
  in
  check Alcotest.int "completed despite the quarantine" 0 (completed r);
  check Alcotest.int "one path quarantined" 1
    r.Parallel.stats.Core.Stats.quarantined;
  check Alcotest.bool "quarantine recorded as a killed path" true
    (List.exists
       (fun (t : Explorer.terminal) ->
         match t.Explorer.kind with
         | Explorer.Path_killed m ->
           String.length m >= 6 && String.sub m 0 6 = "crash:"
         | _ -> false)
       r.Parallel.terminals);
  List.iter
    (fun s ->
      check Alcotest.bool "surviving solutions are genuine" true
        (List.mem s expected))
    (solutions r)

let budget_abort_parity () =
  (* All three scheduler backends must refuse a runaway search with the
     same abort, so drivers can match on one string. *)
  let image = Workloads.Counting.program ~depth:8 ~branch:3 in
  let aborted = function
    | Explorer.Aborted m -> m
    | _ -> Alcotest.fail "expected an abort"
  in
  let expect = "extension budget exhausted" in
  check Alcotest.string "explorer"
    expect (aborted (Explorer.run_image ~max_extensions:20 image).Explorer.outcome);
  check Alcotest.string "cooperative" expect
    (aborted
       (Parallel.run
          ~config:{ (config ()) with Parallel.max_extensions = 20 }
          image)
       .Parallel.outcome);
  check Alcotest.string "domains" expect
    (aborted
       (Parallel.run
          ~config:{ (dconfig ()) with Parallel.max_extensions = 20 }
          image)
       .Parallel.outcome)

let tests =
  [ Alcotest.test_case "same solutions for any worker count" `Quick
      same_solutions_any_worker_count;
    Alcotest.test_case "coop: crash recovery" `Quick coop_crash_recovery;
    Alcotest.test_case "domains: crash recovery" `Quick domains_crash_recovery;
    Alcotest.test_case "coop: alloc failure recovery" `Quick
      coop_alloc_failure_recovery;
    Alcotest.test_case "quarantine after retry budget" `Quick
      quarantine_after_budget;
    Alcotest.test_case "budget abort parity" `Quick budget_abort_parity;
    Alcotest.test_case "counting tree all leaves" `Quick counting_tree_all_leaves;
    Alcotest.test_case "makespan shrinks" `Quick makespan_shrinks_with_workers;
    Alcotest.test_case "total work independent of workers" `Quick
      total_work_is_worker_independent;
    Alcotest.test_case "first exit mode" `Quick first_exit_mode;
    Alcotest.test_case "shared counter across workers" `Quick
      shared_counter_across_workers;
    Alcotest.test_case "isolation between workers" `Quick isolation_between_workers;
    Alcotest.test_case "busy rounds reported" `Quick busy_rounds_reported;
    Alcotest.test_case "domains: same solutions" `Quick domains_same_solutions;
    Alcotest.test_case "domains: counting tree all leaves" `Quick
      domains_counting_tree_all_leaves;
    Alcotest.test_case "domains: first exit mode" `Quick domains_first_exit;
    Alcotest.test_case "domains: recycling terminal identity" `Quick
      domains_recycling_terminal_identity;
    Alcotest.test_case "domains: per-domain metrics" `Quick
      domains_per_domain_metrics;
    Alcotest.test_case "per-path output attribution" `Quick
      per_path_output_attribution;
    Alcotest.test_case "max live snapshots tracked" `Quick
      max_live_snapshots_tracked ]
