(* Timing and table-printing helpers shared by the experiments. *)

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Median wall-clock milliseconds over [reps] runs after one warmup; the
   last run's result is returned for inspection. *)
let time_ms ?(reps = 3) f =
  ignore (f ());
  let samples =
    List.init reps (fun _ ->
        let t0 = now_ms () in
        let result = f () in
        now_ms () -. t0, result)
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) samples in
  let median_ms = fst (List.nth sorted (reps / 2)) in
  let _, result = List.nth samples (reps - 1) in
  median_ms, result

let time_once_ms f =
  let t0 = now_ms () in
  let result = f () in
  now_ms () -. t0, result

(* {1 Tables} *)

let header title claim =
  Printf.printf "\n=== %s ===\n" title;
  Printf.printf "%s\n\n" claim

let row_format widths =
  fun cells ->
    let padded =
      List.map2
        (fun w cell -> Printf.sprintf "%*s" w cell)
        widths cells
    in
    print_endline (String.concat "  " padded)

let fms ms =
  if ms < 0.1 then Printf.sprintf "%.3f" ms
  else if ms < 10.0 then Printf.sprintf "%.2f" ms
  else if ms < 1000.0 then Printf.sprintf "%.1f" ms
  else Printf.sprintf "%.0f" ms

let fus us =
  if us < 10.0 then Printf.sprintf "%.2f" us
  else if us < 1000.0 then Printf.sprintf "%.1f" us
  else Printf.sprintf "%.0f" us

let fratio r = Printf.sprintf "%.2fx" r

let fint = string_of_int

(* {1 Machine-readable results} *)

(* Write BENCH_<experiment>.json next to the working directory.  Schema
   (version 1 unless the experiment bumps it; documented in
   EXPERIMENTS.md): {experiment, quick, schema_version, params, rows}
   where [params] holds experiment-level settings and [rows] one object
   per printed table row, typically including a "metrics" sub-object from
   [Obs.Metrics.to_json]. *)
let emit_json ?(schema = 1) ~experiment ~quick ~params rows =
  let doc =
    Obs.Json.Obj
      [ "experiment", Obs.Json.Str experiment;
        "quick", Obs.Json.Bool quick;
        "schema_version", Obs.Json.Int schema;
        "params", Obs.Json.Obj params;
        "rows", Obs.Json.Arr rows ]
  in
  let path = Printf.sprintf "BENCH_%s.json" experiment in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[machine-readable results written to %s]\n" path

(* {1 Bechamel micro-benchmarks} *)

let run_micro ~name tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  let clock = Hashtbl.find results (Measure.label Toolkit.Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun test_name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> (test_name, est) :: acc
        | Some [] | None -> acc)
      clock []
  in
  List.iter
    (fun (test_name, ns) -> Printf.printf "  %-40s %12.1f ns/op\n" test_name ns)
    (List.sort compare rows)
