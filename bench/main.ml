(* The experiment harness: regenerates every experiment in DESIGN.md's
   per-experiment index (E1-E8, derived from the paper's claims — a HotOS
   position paper has no numbered tables) plus bechamel micro-benchmarks.

     dune exec bench/main.exe                 run everything
     dune exec bench/main.exe -- --only E3    one experiment
     dune exec bench/main.exe -- --quick      reduced sizes            *)

module As = Mem.Addr_space
module Phys = Mem.Phys_mem
module Mm = Mem.Mem_metrics
module Explorer = Core.Explorer
module Service = Core.Service
module U = Bench_util

let quick = ref false

(* ------------------------------------------------------------------ *)
(* E1: n-queens — system-level vs hand-coded vs Prolog (§5)           *)
(* ------------------------------------------------------------------ *)

let e1 () =
  U.header "E1  n-queens: system-level backtracking vs the §5 comparators"
    "Claim: \"substantially worse than a hand-coded implementation, but \
     better than a Prolog implementation\" for this trivial-granularity \
     problem.  All-solutions enumeration.  (Hand-coded runs native; the \
     system-level guest pays the interpreter as well as the snapshots — \
     see us/ext for the per-extension overhead alone.)";
  let row = U.row_format [ 2; 5; 12; 12; 12; 12; 14; 10 ] in
  row [ "n"; "sols"; "hand ms"; "syslvl ms"; "prolog ms"; "replay ms";
        "guest instrs"; "us/ext" ];
  let sizes = if !quick then [ 5; 6 ] else [ 5; 6; 7; 8 ] in
  List.iter
    (fun n ->
      let hand_ms, hand_count = U.time_ms (fun () -> Workloads.Nqueens.host_count n) in
      let image = Workloads.Nqueens.program ~n in
      let sys_ms, result = U.time_ms (fun () -> Explorer.run_image image) in
      let stats = result.Explorer.stats in
      let sols =
        List.length
          (List.filter (fun l -> l <> "")
             (String.split_on_char '\n' result.Explorer.transcript))
      in
      assert (sols = hand_count);
      let prolog_ms, prolog_count =
        U.time_ms (fun () -> fst (Prolog.Samples.count_queens n))
      in
      assert (prolog_count = sols);
      let replay_ms, replay_sols =
        U.time_ms (fun () ->
            let r =
              Core.Native_bt.run_all (fun ctx ->
                  let row_ = Array.make n false in
                  let ld = Array.make (2 * n) false in
                  let rd = Array.make (2 * n) false in
                  for c = 0 to n - 1 do
                    let q = Core.Native_bt.guess ctx n in
                    if row_.(q) || ld.(q + c) || rd.(n + q - c) then
                      Core.Native_bt.fail ctx;
                    row_.(q) <- true;
                    ld.(q + c) <- true;
                    rd.(n + q - c) <- true
                  done)
            in
            List.length r.Core.Native_bt.solutions)
      in
      assert (replay_sols = sols);
      let per_ext =
        sys_ms *. 1000.0 /. Float.of_int (max 1 stats.Core.Stats.extensions_evaluated)
      in
      row
        [ U.fint n; U.fint sols; U.fms hand_ms; U.fms sys_ms; U.fms prolog_ms;
          U.fms replay_ms; U.fint stats.Core.Stats.instructions; U.fus per_ext ])
    sizes

(* ------------------------------------------------------------------ *)
(* E2: snapshot cost vs address-space size (§3, §4)                   *)
(* ------------------------------------------------------------------ *)

let dirty_aspace ?recycle pages =
  let phys = Phys.create ?recycle () in
  let t = As.create phys in
  for vpn = 0 to pages - 1 do
    As.map_zero t ~vpn;
    As.write_u64 t (Mem.Page.addr_of_vpn vpn) vpn  (* materialise *)
  done;
  phys, t

let e2 () =
  U.header "E2  snapshot capture/restore latency vs address-space size"
    "Claim: lightweight snapshots are created and restored \"with very high \
     frequency\"; naive fork has \"large performance overheads\".  COW \
     capture/restore must be flat in the address-space size; eager copies \
     (fork-style clone, libckpt full checkpoint) must grow linearly.  Each \
     size runs twice: rec=off is the GC-only allocator, rec=on recycles \
     released frames (explicit release + zero-fill elision), which must \
     cut the bytes newly allocated per COW fault (B/fault).";
  let row = U.row_format [ 6; 4; 11; 11; 11; 8; 11; 10; 10; 11 ] in
  row [ "pages"; "rec"; "capture us"; "restore us"; "1st-wr us"; "B/fault";
        "release us"; "clone ms"; "ckpt ms"; "incr(8d) ms" ];
  let sizes = if !quick then [ 64; 512 ] else [ 16; 64; 256; 1024; 4096 ] in
  let json_rows = ref [] in
  let bytes_per_fault = Hashtbl.create 8 in  (* (pages, recycle) -> float *)
  List.iter
    (fun pages ->
      List.iter
        (fun recycle ->
          let phys, t = dirty_aspace ~recycle pages in
          let iters = 2000 in
          let capture_ms, _ =
            U.time_ms (fun () ->
                for _ = 1 to iters do
                  ignore (As.snapshot t)
                done)
          in
          let snap = As.snapshot t in
          let restore_ms, _ =
            U.time_ms (fun () ->
                for _ = 1 to iters do
                  As.restore t snap
                done)
          in
          (* First write after a snapshot: the COW fault service.  With
             recycling, the segment's one private frame is discarded
             before the restore drops it, so the next fault's buffer
             comes from the free list — steady state allocates nothing. *)
          let fault_iters = 500 in
          let m0 = Mm.copy (As.metrics t) in
          let fault_ms, _ =
            U.time_ms (fun () ->
                for _ = 1 to fault_iters do
                  let s = As.snapshot t in
                  As.write_u64 t 0 1;
                  if recycle then ignore (As.discard_segment t ~base:s);
                  As.restore t s
                done)
          in
          let md = Mm.diff (As.metrics t) m0 in
          let bpf =
            Float.of_int
              ((md.Mm.frames_allocated - md.Mm.frames_recycled)
              * Mem.Page.size)
            /. Float.of_int (max 1 md.Mm.cow_faults)
          in
          Hashtbl.replace bytes_per_fault (pages, recycle) bpf;
          (* Explicit release lifecycle: parent snapshot, dirty 8 pages,
             child snapshot, backtrack to the parent, release the child —
             the delta frames feed the next iteration's faults. *)
          let rel_iters = 200 in
          let rel_ms, _ =
            U.time_ms (fun () ->
                for _ = 1 to rel_iters do
                  let parent = As.snapshot t in
                  for k = 0 to 7 do
                    As.write_u64 t (Mem.Page.addr_of_vpn (k mod pages)) 7
                  done;
                  let child = As.snapshot t in
                  As.restore t parent;
                  ignore (As.release_snapshot ~phys ~parent child)
                done)
          in
          let clone_ms, _ = U.time_ms (fun () -> ignore (Ckpt.clone phys t)) in
          let ckpt_ms, _ = U.time_ms (fun () -> ignore (Ckpt.full_capture t)) in
          let chain = Ckpt.incr_start t in
          let incr_ms, _ =
            U.time_ms (fun () ->
                (* dirty 8 pages, then take one incremental checkpoint *)
                for k = 0 to 7 do
                  As.write_u64 t (Mem.Page.addr_of_vpn (k mod pages)) 9
                done;
                Ckpt.incr_capture chain t)
          in
          let total = Mm.diff (As.metrics t) m0 in
          json_rows :=
            Obs.Json.Obj
              [ "pages", Obs.Json.Int pages;
                "recycle", Obs.Json.Bool recycle;
                "capture_us",
                Obs.Json.Float (capture_ms *. 1000.0 /. Float.of_int iters);
                "restore_us",
                Obs.Json.Float (restore_ms *. 1000.0 /. Float.of_int iters);
                "fault_us",
                Obs.Json.Float (fault_ms *. 1000.0 /. Float.of_int fault_iters);
                "bytes_per_fault", Obs.Json.Float bpf;
                "release_us",
                Obs.Json.Float (rel_ms *. 1000.0 /. Float.of_int rel_iters);
                "clone_ms", Obs.Json.Float clone_ms;
                "ckpt_ms", Obs.Json.Float ckpt_ms;
                "incr_ms", Obs.Json.Float incr_ms;
                "cow_faults", Obs.Json.Int total.Mm.cow_faults;
                "frames_allocated", Obs.Json.Int total.Mm.frames_allocated;
                "frames_recycled", Obs.Json.Int total.Mm.frames_recycled;
                "frames_freed", Obs.Json.Int total.Mm.frames_freed;
                "zero_fills_elided", Obs.Json.Int total.Mm.zero_fills_elided ]
            :: !json_rows;
          row
            [ U.fint pages;
              (if recycle then "on" else "off");
              U.fus (capture_ms *. 1000.0 /. Float.of_int iters);
              U.fus (restore_ms *. 1000.0 /. Float.of_int iters);
              U.fus (fault_ms *. 1000.0 /. Float.of_int fault_iters);
              Printf.sprintf "%.0f" bpf;
              U.fus (rel_ms *. 1000.0 /. Float.of_int rel_iters);
              U.fms clone_ms;
              U.fms ckpt_ms;
              U.fms incr_ms ])
        [ false; true ])
    sizes;
  (* Acceptance: recycling must cut freshly-allocated bytes per COW fault
     by at least 1.3x at every size (in practice it is >100x: steady state
     recycles every buffer). *)
  List.iter
    (fun pages ->
      let off = Hashtbl.find bytes_per_fault (pages, false) in
      let on = Hashtbl.find bytes_per_fault (pages, true) in
      assert (off >= 1.3 *. Float.max on 1.0))
    sizes;
  U.emit_json ~experiment:"E2" ~quick:!quick
    ~params:[ "fault_iters", Obs.Json.Int 500; "release_iters", Obs.Json.Int 200 ]
    (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* E3: problem granularity and memory locality (§5)                   *)
(* ------------------------------------------------------------------ *)

let e3 () =
  U.header "E3  granularity/locality sweep: snapshots vs hand-coded undo"
    "Claim (§5): trivial extension steps favour hand-coded backtracking; \
     larger instruction counts and more pages touched per step amortise \
     the snapshot machinery.  Both programs run on the same interpreter — \
     the ratio isolates the state-management mechanism.  W = ALU ops per \
     step, K = pages written per step.";
  let row = U.row_format [ 7; 4; 11; 11; 11; 9; 11; 11 ] in
  row [ "W"; "K"; "hand ms"; "syslvl ms"; "norec ms"; "ratio"; "cow/step";
        "instr/step" ];
  let base =
    { Workloads.Locality.depth = (if !quick then 3 else 4);
      branch = 3;
      touch_pages = 0;
      work = 0;
      arena_pages = 32 }
  in
  let sweeps =
    [ 0, 1; 0, 8; 100, 1; 100, 8; 1000, 1; 1000, 8; 10000, 1; 10000, 8 ]
  in
  let json_rows = ref [] in
  List.iter
    (fun (work, touch_pages) ->
      let p = { base with Workloads.Locality.work; touch_pages } in
      let hand_image = Workloads.Locality.program_handcoded p in
      let hand_ms, hand_status =
        U.time_ms (fun () ->
            let m = Os.Libos.boot (Phys.create ()) hand_image in
            match Os.Libos.run m ~fuel:2_000_000_000 with
            | Os.Libos.Exited { status } -> status
            | other -> Format.kasprintf failwith "handcoded: %a" Os.Libos.pp_stop other)
      in
      assert (hand_status = Workloads.Locality.expected_paths p land 0xff);
      let sys_image = Workloads.Locality.program p in
      let sys_ms, result = U.time_ms (fun () -> Explorer.run_image sys_image) in
      let stats = result.Explorer.stats in
      assert (stats.Core.Stats.fails = Workloads.Locality.expected_paths p);
      (* Frame recycling must be invisible to the exploration: the same
         sweep with recycling off has to produce a bit-identical result. *)
      let norec_ms, result_off =
        U.time_ms (fun () -> Explorer.run_image ~recycle:false sys_image)
      in
      let stats_off = result_off.Explorer.stats in
      assert (stats_off.Core.Stats.fails = stats.Core.Stats.fails);
      assert (stats_off.Core.Stats.instructions = stats.Core.Stats.instructions);
      assert (result_off.Explorer.transcript = result.Explorer.transcript);
      let steps = max 1 stats.Core.Stats.extensions_evaluated in
      let reg = Obs.Metrics.create () in
      Core.Stats.publish stats reg;
      json_rows :=
        Obs.Json.Obj
          [ "work", Obs.Json.Int work;
            "touch_pages", Obs.Json.Int touch_pages;
            "hand_ms", Obs.Json.Float hand_ms;
            "syslvl_ms", Obs.Json.Float sys_ms;
            "syslvl_norecycle_ms", Obs.Json.Float norec_ms;
            "adopting_restores",
            Obs.Json.Int stats.Core.Stats.adopting_restores;
            "frames_recycled",
            Obs.Json.Int stats.Core.Stats.mem.Mm.frames_recycled;
            "frames_freed", Obs.Json.Int stats.Core.Stats.mem.Mm.frames_freed;
            "zero_fills_elided",
            Obs.Json.Int stats.Core.Stats.mem.Mm.zero_fills_elided;
            "metrics", Obs.Metrics.to_json reg ]
        :: !json_rows;
      row
        [ U.fint work; U.fint touch_pages; U.fms hand_ms; U.fms sys_ms;
          U.fms norec_ms;
          U.fratio (sys_ms /. hand_ms);
          Printf.sprintf "%.2f"
            (Float.of_int stats.Core.Stats.mem.Mm.cow_faults /. Float.of_int steps);
          U.fint (stats.Core.Stats.instructions / steps) ])
    sweeps;
  U.emit_json ~experiment:"E3" ~quick:!quick
    ~params:
      [ "depth", Obs.Json.Int base.Workloads.Locality.depth;
        "branch", Obs.Json.Int base.Workloads.Locality.branch;
        "arena_pages", Obs.Json.Int base.Workloads.Locality.arena_pages ]
    (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* E4: incremental solving from snapshots (§2)                        *)
(* ------------------------------------------------------------------ *)

let e4 () =
  U.header "E4  incremental solving: p then p∧q vs from scratch"
    "Claim (§2): \"an incremental solver given formula p immediately \
     followed by p∧q can solve both in less time than solving p and then \
     solving p∧q from scratch\" — and a lightweight snapshot of solved p \
     gives that incrementality to a solver with no incremental support of \
     its own (the guest DPLL publishes its solved state via sys_guess).";
  let num_vars = if !quick then 20 else 30 in
  let num_clauses = num_vars * 3 in
  let chain_len = 4 in
  let base = Workloads.Cnf_gen.planted ~num_vars ~num_clauses ~seed:77 in
  let increments =
    Workloads.Cnf_gen.increments ~num_vars ~count:chain_len ~width:2 ~seed:78
  in
  let prefix k = List.concat (List.filteri (fun idx _ -> idx < k) increments) in

  (* host CDCL: warm push-chain vs cold re-solves *)
  let host_warm_ms, _ =
    U.time_ms (fun () ->
        let s = Sat.Solver.create () in
        Sat.Solver.add_cnf s base.Workloads.Cnf_gen.clauses;
        ignore (Sat.Solver.solve s);
        List.iter
          (fun q ->
            Sat.Solver.push s;
            Sat.Solver.add_cnf s q;
            ignore (Sat.Solver.solve s))
          increments)
  in
  let host_cold_ms, _ =
    U.time_ms (fun () ->
        for k = 0 to chain_len do
          let s = Sat.Solver.create () in
          Sat.Solver.add_cnf s (base.Workloads.Cnf_gen.clauses @ prefix k);
          ignore (Sat.Solver.solve s)
        done)
  in
  (* guest DPLL under snapshots: one run consuming the whole chain, vs
     from-scratch runs of each prefix *)
  let stdin_chain = Workloads.Guest_dpll.encode_increments increments in
  let guest_warm_ms, warm_result =
    U.time_ms (fun () ->
        (* first-exit: stop once one path has consumed the whole chain *)
        Explorer.run_image ~mode:`First_exit ~stdin:stdin_chain
          (Workloads.Guest_dpll.program ~num_vars base.Workloads.Cnf_gen.clauses))
  in
  let sat_count =
    List.length
      (List.filter (fun l -> l = "SAT")
         (String.split_on_char '\n' warm_result.Explorer.transcript))
  in
  let guest_cold_ms, _ =
    U.time_ms (fun () ->
        for k = 0 to chain_len do
          ignore
            (Explorer.run_image ~mode:`First_exit
               (Workloads.Guest_dpll.program ~num_vars
                  (base.Workloads.Cnf_gen.clauses @ prefix k)))
        done)
  in
  Printf.printf
    "problem: %d vars, %d base clauses, %d increments of 2 clauses; \
     solved states along the warm chain: %d\n\n"
    num_vars num_clauses chain_len sat_count;
  let row = U.row_format [ 30; 12; 12; 9 ] in
  row [ "system"; "warm ms"; "cold ms"; "speedup" ];
  row
    [ "host CDCL (push/pop)"; U.fms host_warm_ms; U.fms host_cold_ms;
      U.fratio (host_cold_ms /. host_warm_ms) ];
  row
    [ "guest DPLL (snapshots)"; U.fms guest_warm_ms; U.fms guest_cold_ms;
      U.fratio (guest_cold_ms /. guest_warm_ms) ]

(* ------------------------------------------------------------------ *)
(* E5: symbolic-execution state forking, COW vs software copy (§2)    *)
(* ------------------------------------------------------------------ *)

let e5 () =
  U.header "E5  S2E-style state forking: COW snapshots vs eager copies"
    "Claim (§2): replacing S2E's software copy-on-write layers with \
     hardware snapshots cuts state-forking cost.  Both backends explore \
     identical path sets; only the forking mechanism differs.";
  let row = U.row_format [ 12; 7; 6; 10; 10; 11; 13 ] in
  row [ "target"; "mode"; "paths"; "ms"; "paths/s"; "kB copied"; "copied/fork" ];
  let depth = if !quick then 6 else 8 in
  let targets =
    [ Printf.sprintf "tree(%d)" depth, Workloads.Symex_targets.branch_tree ~depth, depth;
      "password", Workloads.Symex_targets.password, 4;
      "classifier", Workloads.Symex_targets.classifier, 2 ]
  in
  List.iter
    (fun (name, image, stdin_bytes) ->
      List.iter
        (fun (mode_name, mode) ->
          let config =
            { Symex.Engine.default_config with
              symbolic_stdin = stdin_bytes;
              fork_mode = mode }
          in
          let ms, r = U.time_ms (fun () -> Symex.Engine.run ~config image) in
          let paths = List.length r.Symex.Engine.paths in
          let copied_bytes =
            match mode with
            | Symex.Engine.Cow -> r.Symex.Engine.mem.Mm.bytes_copied
            | Symex.Engine.Eager_copy ->
              r.Symex.Engine.eager_pages_copied * Mem.Page.size
          in
          row
            [ name; mode_name; U.fint paths; U.fms ms;
              U.fint (int_of_float (Float.of_int paths /. ms *. 1000.0));
              U.fint (copied_bytes / 1024);
              Printf.sprintf "%.1f pg"
                (Float.of_int (copied_bytes / Mem.Page.size)
                /. Float.of_int (max 1 r.Symex.Engine.forks)) ])
        [ "cow", Symex.Engine.Cow; "eager", Symex.Engine.Eager_copy ])
    targets

(* ------------------------------------------------------------------ *)
(* E6: flexible search strategies (§3.1)                              *)
(* ------------------------------------------------------------------ *)

let e6 () =
  U.header "E6  search strategies over one unchanged guest program"
    "Claim (§3.1): the strategy schedules extension evaluation separately \
     from the program; DFS/BFS/A*/SM-A* explore the same maze guest with \
     very different cost/optimality/memory profiles (A* consumes the \
     guest's sys_guess_hint distances).";
  let row = U.row_format [ 6; 10; 7; 5; 11; 10; 9 ] in
  row [ "maze"; "strategy"; "found"; "opt"; "evaluated"; "max live"; "evicted" ];
  let seeds = if !quick then [ 41 ] else [ 41; 113; 7 ] in
  List.iter
    (fun seed ->
      let maze = Workloads.Grid.generate ~width:9 ~height:9 ~wall_density:0.28 ~seed in
      let opt = Workloads.Grid.host_shortest maze in
      let image = Workloads.Grid.program maze in
      List.iter
        (fun (name, strategy) ->
          let r =
            Explorer.run_image ~mode:`First_exit ~max_extensions:2_000_000
              ~strategy_override:strategy image
          in
          match r.Explorer.outcome with
          | Explorer.Stopped_first_exit len ->
            row
              [ U.fint seed; name; U.fint len;
                (match opt with Some o when o = len -> "yes" | Some _ | None -> "no");
                U.fint r.Explorer.stats.Core.Stats.extensions_evaluated;
                U.fint r.Explorer.stats.Core.Stats.max_live_snapshots;
                U.fint r.Explorer.stats.Core.Stats.evicted ]
          | Explorer.Completed _ -> row [ U.fint seed; name; "-"; "-"; "-"; "-"; "-" ]
          | Explorer.Aborted m -> Printf.printf "%d %s aborted: %s\n" seed name m)
        [ "dfs", `Dfs; "bfs", `Bfs; "astar", `Astar; "sma-128", `Sma 128;
          "wastar-2", `Wastar 2.0; "beam-64", `Beam 64; "random", `Random 5 ])
    seeds

(* ------------------------------------------------------------------ *)
(* E7: snapshot-tree space accounting (§3.1)                          *)
(* ------------------------------------------------------------------ *)

let e7 () =
  U.header "E7  snapshot trees: COW sharing across partial candidates"
    "Claim (§3.1): the immutable parent relationship encodes the candidate \
     tree space-efficiently.  Every interior node of a guess tree is kept \
     alive as a service candidate; actual frame usage is compared with the \
     naive size (every snapshot stored whole).";
  let row = U.row_format [ 16; 11; 11; 11; 11; 9 ] in
  row [ "workload"; "candidates"; "pages/cand"; "naive MB"; "actual MB"; "sharing" ];
  let workloads =
    let locality depth touch =
      Printf.sprintf "locality(%d,%d)" depth touch,
      Workloads.Locality.program
        { Workloads.Locality.depth; branch = 2; touch_pages = touch; work = 0;
          arena_pages = 16 }
    in
    if !quick then [ "queens(5)", Workloads.Nqueens.program ~n:5 ]
    else
      [ "queens(6)", Workloads.Nqueens.program ~n:6;
        locality 5 2;
        locality 5 8;
        "counting(2^8)", Workloads.Counting.program ~depth:8 ~branch:2 ]
  in
  List.iter
    (fun (name, image) ->
      let svc, first = Service.boot image in
      (* client-driven BFS over every candidate the guest publishes *)
      let queue = Queue.create () in
      let candidates = ref [] in
      let note outcome =
        match outcome with
        | Service.Ready { candidate; arity; _ } ->
          candidates := candidate :: !candidates;
          for choice = 0 to arity - 1 do
            Queue.add (candidate, choice) queue
          done
        | Service.Failed _ | Service.Finished _ | Service.Crashed _ -> ()
      in
      note first;
      while not (Queue.is_empty queue) do
        let candidate, choice = Queue.take queue in
        note (Service.resume svc candidate ~choice ())
      done;
      let n = Service.live_candidates svc in
      let total_pages =
        List.fold_left (fun acc c -> acc + Service.pages svc c) 0 !candidates
      in
      let naive_mb = Float.of_int (total_pages * Mem.Page.size) /. 1048576.0 in
      let actual_frames = Service.distinct_frames svc in
      let actual_mb = Float.of_int (actual_frames * Mem.Page.size) /. 1048576.0 in
      row
        [ name; U.fint n;
          Printf.sprintf "%.1f" (Float.of_int total_pages /. Float.of_int (max 1 n));
          Printf.sprintf "%.2f" naive_mb; Printf.sprintf "%.3f" actual_mb;
          U.fratio (naive_mb /. actual_mb) ])
    workloads

(* ------------------------------------------------------------------ *)
(* E8: MMU mechanism ablation — persistent map vs radix tables (§4)   *)
(* ------------------------------------------------------------------ *)

let replay_trace ~write ~snapshot ~restore =
  let rng = Stdx.Prng.create ~seed:12345 in
  let snaps = ref [||] in
  let nsnaps = ref 0 in
  let add s =
    if !nsnaps < 128 then begin
      if Array.length !snaps = !nsnaps then
        snaps := Array.append !snaps (Array.make (max 16 !nsnaps) s);
      !snaps.(!nsnaps) <- s;
      incr nsnaps
    end
  in
  for step = 1 to 30_000 do
    let vpn = Stdx.Prng.int rng 256 in
    write (Mem.Page.addr_of_vpn vpn + Stdx.Prng.int rng 4088) step;
    if step mod 100 = 0 then add (snapshot ());
    if step mod 400 = 0 && !nsnaps > 0 then
      restore !snaps.(Stdx.Prng.int rng !nsnaps)
  done

let e8 () =
  U.header "E8  ablation: persistent-trie MMU vs 4-level radix page table"
    "Both back-ends implement the same COW snapshot semantics; the radix \
     variant mirrors nested paging (page-table pages are COW'd on the \
     first post-snapshot write).  Same 30k-write/300-snapshot trace.";
  let row = U.row_format [ 18; 10; 12; 12; 14; 12 ] in
  row [ "backend"; "ms"; "cow faults"; "pt copies"; "tlb hit rate"; "frames" ];
  let as_ms, as_metrics =
    U.time_ms (fun () ->
        let phys = Phys.create () in
        let t = As.create phys in
        for vpn = 0 to 255 do
          As.map_zero t ~vpn
        done;
        replay_trace
          ~write:(fun addr v -> As.write_u64 t addr v)
          ~snapshot:(fun () -> As.snapshot t)
          ~restore:(fun s -> As.restore t s);
        Mm.copy (Phys.metrics phys))
  in
  let ept_ms, ept_metrics =
    U.time_ms (fun () ->
        let phys = Phys.create () in
        let t = Mem.Ept.create phys in
        for vpn = 0 to 255 do
          Mem.Ept.map_zero t ~vpn
        done;
        replay_trace
          ~write:(fun addr v -> Mem.Ept.write_u64 t addr v)
          ~snapshot:(fun () -> Mem.Ept.snapshot t)
          ~restore:(fun s -> Mem.Ept.restore t s);
        Mm.copy (Phys.metrics phys))
  in
  let print_row name ms (m : Mm.t) =
    let hit_rate =
      Float.of_int m.Mm.tlb_hits
      /. Float.of_int (max 1 (m.Mm.tlb_hits + m.Mm.tlb_misses))
    in
    row
      [ name; U.fms ms; U.fint m.Mm.cow_faults; U.fint m.Mm.pt_node_copies;
        Printf.sprintf "%.1f%%" (100.0 *. hit_rate); U.fint m.Mm.frames_allocated ]
  in
  print_row "persistent trie" as_ms as_metrics;
  print_row "radix (EPT-like)" ept_ms ept_metrics

(* ------------------------------------------------------------------ *)
(* E9: interpreter ablation — dispatch modes of the decode cache      *)
(* ------------------------------------------------------------------ *)

let e9 () =
  U.header "E9  ablation: interpreter dispatch"
    "Three fetch pipelines over identical semantics: no cache (every      fetch decodes from guest memory), the per-instruction decode cache      (PR 9 behaviour), and basic-block superinstruction dispatch (fuse      straight-line runs, resolve the fetch frame once per block).  The      work-heavy row is the ≥2x block-vs-insn gate; the cliff rows          re-measure the data/code-page-separation penalty, which block          dispatch makes steeper.  Infrastructure, not a paper claim.";
  let row = U.row_format [ 12; 10; 10; 14; 12 ] in
  row [ "workload"; "dispatch"; "ms"; "instructions"; "ns/instr" ];
  (* Drive a guest to completion on a bare interpreter (serving brk and
     demand-zero faults inline), under one of the three dispatch modes. *)
  let measure image mode =
    U.time_ms (fun () ->
        let machine = Os.Libos.boot (Phys.create ()) image in
        let cpu = machine.Os.Libos.cpu in
        let aspace = machine.Os.Libos.aspace in
        let icache =
          match mode with
          | None -> None
          | Some dispatch -> Some (Vcpu.Interp.create_icache ~dispatch ())
        in
        let brk = ref Os.Libos.default_layout.Os.Libos.heap_base in
        let rec drive () =
          match Vcpu.Interp.run ?icache cpu aspace ~fuel:2_000_000_000 with
          | Vcpu.Interp.Syscall ->
            let number = Vcpu.Cpu.get cpu Isa.Reg.rax in
            if number = Os.Sys_abi.sys_brk then begin
              let req = Vcpu.Cpu.get cpu Isa.Reg.rdi in
              if req > !brk then
                for vpn = Mem.Page.vpn_of_addr !brk
                    to Mem.Page.vpn_of_addr (req - 1) do
                  As.map_zero aspace ~vpn
                done;
              if req > 0 then brk := req;
              Vcpu.Cpu.set cpu Isa.Reg.rax !brk;
              drive ()
            end
            else ()  (* exit *)
          | Vcpu.Interp.Fault (Vcpu.Interp.Page_fault { addr; _ }) ->
            As.map_zero aspace ~vpn:(Mem.Page.vpn_of_addr addr);
            drive ()
          | Vcpu.Interp.Halt | Vcpu.Interp.Out_of_fuel
          | Vcpu.Interp.Fault _ -> ()
        in
        drive ();
        cpu.Vcpu.Cpu.retired)
  in
  let mode_name = function
    | None -> "off"
    | Some Vcpu.Interp.Insn -> "insn"
    | Some Vcpu.Interp.Block -> "block"
  in
  let json_rows = ref [] in
  let bench workload image mode =
    let ms, retired = measure image mode in
    let ns = ms *. 1e6 /. Float.of_int retired in
    row
      [ workload; mode_name mode; U.fms ms; U.fint retired;
        Printf.sprintf "%.0f" ns ];
    json_rows :=
      Obs.Json.Obj
        [ "workload", Obs.Json.Str workload;
          "dispatch", Obs.Json.Str (mode_name mode);
          "ms", Obs.Json.Float ms;
          "instructions", Obs.Json.Int retired;
          "ns_per_instr", Obs.Json.Float ns ]
      :: !json_rows;
    ns
  in
  let modes = [ None; Some Vcpu.Interp.Insn; Some Vcpu.Interp.Block ] in
  (* Row group 1: the locality search guest (branchy; short blocks). *)
  let p =
    { Workloads.Locality.depth = 4; branch = 3; touch_pages = 1;
      work = (if !quick then 500 else 2000); arena_pages = 8 }
  in
  let locality = Workloads.Locality.program_handcoded p in
  List.iter (fun m -> ignore (bench "locality" locality m)) modes;
  (* Row group 2: work-heavy straight-line ALU (the gated configuration). *)
  let iters = if !quick then 20_000 else 200_000 in
  let work = Workloads.Dispatch_micro.work_heavy ~iters () in
  let work_ns = List.map (fun m -> bench "work-heavy" work m) modes in
  (* Row group 3: the data/code-page-separation cliff under block dispatch. *)
  let cliff_iters = if !quick then 20_000 else 200_000 in
  let sep_ns =
    bench "cliff-sep"
      (Workloads.Dispatch_micro.cliff ~separate_data:true ~iters:cliff_iters)
      (Some Vcpu.Interp.Block)
  in
  let mixed_ns =
    bench "cliff-mixed"
      (Workloads.Dispatch_micro.cliff ~separate_data:false ~iters:cliff_iters)
      (Some Vcpu.Interp.Block)
  in
  let insn_ns = List.nth work_ns 1 and block_ns = List.nth work_ns 2 in
  Printf.printf
    "\n  work-heavy block vs insn: %s   data/code separation cliff: %s\n"
    (U.fratio (insn_ns /. block_ns))
    (U.fratio (mixed_ns /. sep_ns));
  if insn_ns < 2.0 *. block_ns then
    failwith "E9: block dispatch under 2x over per-instruction on work-heavy";
  U.emit_json ~experiment:"E9" ~quick:!quick
    ~params:
      [ "locality_work", Obs.Json.Int p.Workloads.Locality.work;
        "work_heavy_iters", Obs.Json.Int iters;
        "work_heavy_unroll",
        Obs.Json.Int Workloads.Dispatch_micro.default_unroll;
        "cliff_iters", Obs.Json.Int cliff_iters ]
    (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* E10: parallel exploration (Figure 2)                               *)
(* ------------------------------------------------------------------ *)

let e10 () =
  U.header "E10  parallel exploration: simulated multi-worker scheduling"
    "Figure 2 runs one evaluation thread per hardware thread over a shared \
     search graph; per section 3 a parallel DFS simply forks without \
     waiting, made safe by snapshot isolation.  Workers are full virtual \
     CPUs over shared physical memory, scheduled in deterministic rounds \
     of a fixed instruction quantum - the round count is the virtual \
     makespan.";
  let row = U.row_format [ 14; 9; 9; 10; 9; 12 ] in
  row [ "workload"; "workers"; "rounds"; "speedup"; "eff."; "fails/exits" ];
  let jobs =
    [ "queens(7)", Workloads.Nqueens.program ~n:7;
      "locality",
      Workloads.Locality.program
        { Workloads.Locality.depth = (if !quick then 3 else 5); branch = 3;
          touch_pages = 2; work = 300; arena_pages = 8 } ]
  in
  List.iter
    (fun (name, image) ->
      let base_rounds = ref 0 in
      List.iter
        (fun workers ->
          let config =
            { Core.Parallel.default_config with
              Core.Parallel.workers;
              quantum = 2000 }
          in
          let r = Core.Parallel.run ~config image in
          (match r.Core.Parallel.outcome with
          | Explorer.Completed _ -> ()
          | Explorer.Stopped_first_exit _ | Explorer.Aborted _ ->
            failwith "E10: unexpected outcome");
          if workers = 1 then base_rounds := r.Core.Parallel.rounds;
          let speedup =
            Float.of_int !base_rounds /. Float.of_int r.Core.Parallel.rounds
          in
          row
            [ name; U.fint workers; U.fint r.Core.Parallel.rounds;
              U.fratio speedup;
              Printf.sprintf "%.0f%%" (100.0 *. speedup /. Float.of_int workers);
              Printf.sprintf "%d/%d" r.Core.Parallel.stats.Core.Stats.fails
                r.Core.Parallel.stats.Core.Stats.exits ])
        [ 1; 2; 4; 8 ])
    jobs

(* ------------------------------------------------------------------ *)
(* E11: true multicore exploration (OCaml 5 domains)                  *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let host_cores = Domain.recommended_domain_count () in
  U.header "E11  true multicore exploration: OCaml 5 domains"
    (Printf.sprintf
       "The `Domains backend of Core.Parallel runs one OCaml domain per \
        worker, each owning a private physical memory with the full frame \
        recycling lifecycle, pulling from a sharded work-stealing queue \
        (steal-half batching).  Wall-clock speedup requires real cores: \
        this host reports %d (Domain.recommended_domain_count); speedup \
        assertions on the work-heavy rows are gated on that count.  \
        Terminal-set identity with the cooperative backend is asserted on \
        every row."
       host_cores);
  let row = U.row_format [ 8; 8; 9; 9; 8; 12; 8; 10; 20 ] in
  row
    [ "workload"; "domains"; "ms"; "speedup"; "eff."; "fails/exits"; "steals";
      "recycled"; "items/domain" ];
  let solution_lines transcript =
    List.sort compare
      (List.filter (fun l -> l <> "") (String.split_on_char '\n' transcript))
  in
  let dpll_image =
    let cnf =
      Workloads.Cnf_gen.planted
        ~num_vars:(if !quick then 12 else 18)
        ~num_clauses:(if !quick then 36 else 60)
        ~seed:7
    in
    Workloads.Guest_dpll.program ~num_vars:cnf.Workloads.Cnf_gen.num_vars
      cnf.Workloads.Cnf_gen.clauses
  in
  (* [work_heavy] rows have enough guest work per path for parallelism to
     pay; they carry the speedup assertions (on capable hosts) and get
     best-of-3 timing to keep those assertions off the noise floor. *)
  let jobs =
    [ "queens", Workloads.Nqueens.program ~n:(if !quick then 6 else 7), false;
      "dpll", dpll_image, false;
      "locality",
      Workloads.Locality.program
        { Workloads.Locality.depth = (if !quick then 3 else 4); branch = 3;
          touch_pages = 2; work = (if !quick then 2_000 else 10_000);
          arena_pages = 8 },
      true ]
  in
  let json_rows = ref [] in
  List.iter
    (fun (name, image, work_heavy) ->
      let reference =
        Core.Parallel.run
          ~config:{ Core.Parallel.default_config with Core.Parallel.workers = 4 }
          image
      in
      let signature (r : Core.Parallel.result) =
        ( r.Core.Parallel.stats.Core.Stats.fails,
          r.Core.Parallel.stats.Core.Stats.exits,
          solution_lines r.Core.Parallel.transcript )
      in
      let base_ms = ref 0.0 in
      List.iter
        (fun domains ->
          let config =
            { Core.Parallel.default_config with
              Core.Parallel.workers = domains;
              backend = `Domains }
          in
          let run_once () =
            U.time_once_ms (fun () -> Core.Parallel.run ~config image)
          in
          let ms, r =
            if work_heavy && not !quick then
              List.fold_left
                (fun (best_ms, best_r) () ->
                  let ms, r = run_once () in
                  if ms < best_ms then (ms, r) else (best_ms, best_r))
                (run_once ()) [ (); () ]
            else run_once ()
          in
          (match r.Core.Parallel.outcome with
          | Explorer.Completed _ -> ()
          | Explorer.Stopped_first_exit _ | Explorer.Aborted _ ->
            failwith "E11: unexpected outcome");
          if signature r <> signature reference then
            failwith
              (Printf.sprintf
                 "E11: %s at %d domains diverges from the cooperative \
                  terminal set"
                 name domains);
          if domains = 1 then base_ms := ms;
          let speedup = !base_ms /. ms in
          if work_heavy && domains = 2 && host_cores >= 2 && speedup < 1.0 then
            failwith
              (Printf.sprintf "E11: %s slower at 2 domains (%.2fx)" name speedup);
          if work_heavy && domains = 4 && host_cores >= 4 && speedup < 2.0 then
            failwith
              (Printf.sprintf "E11: %s below 2x at 4 domains (%.2fx)" name
                 speedup);
          let stats = r.Core.Parallel.stats in
          let recycled = stats.Core.Stats.mem.Mem.Mem_metrics.frames_recycled in
          (* The regression this PR fixes: per-domain rows reading
             frames_recycled = 0.  Any domain that dirtied pages over
             several paths must show reuse. *)
          let per_domain =
            Array.to_list
              (Array.mapi
                 (fun dom reg ->
                   let get = Obs.Metrics.get_counter reg in
                   let evaluated = get "explorer.extensions_evaluated" in
                   let dom_recycled = get "mem.frames_recycled" in
                   (* a domain that kept exploring after its first frees
                      must have hit the free list; small item counts can
                      legitimately free only on their last path *)
                   if
                     evaluated >= 10
                     && get "mem.frames_freed" > 0
                     && dom_recycled = 0
                   then
                     failwith
                       (Printf.sprintf
                          "E11: %s at %d domains: domain %d evaluated %d \
                           extensions, freed frames, recycled nothing"
                          name domains dom evaluated);
                   Obs.Json.Obj
                     [ "domain", Obs.Json.Int dom;
                       "extensions_evaluated", Obs.Json.Int evaluated;
                       "frames_recycled", Obs.Json.Int dom_recycled;
                       "frames_freed", Obs.Json.Int (get "mem.frames_freed");
                       "adopting_restores",
                       Obs.Json.Int (get "explorer.adopting_restores");
                       "steals", Obs.Json.Int (get "explorer.steals");
                       "tlb_shootdowns",
                       Obs.Json.Int (get "mem.tlb_shootdowns") ])
                 r.Core.Parallel.domain_metrics)
          in
          let reg = Obs.Metrics.create () in
          Core.Stats.publish stats reg;
          let steal_batches =
            Obs.Metrics.get_counter r.Core.Parallel.domain_metrics.(0)
              "queue.steal_batches"
          in
          let stolen_items =
            Obs.Metrics.get_counter r.Core.Parallel.domain_metrics.(0)
              "queue.stolen_items"
          in
          json_rows :=
            Obs.Json.Obj
              [ "workload", Obs.Json.Str name;
                "work_heavy", Obs.Json.Bool work_heavy;
                "domains", Obs.Json.Int domains;
                "ms", Obs.Json.Float ms;
                "speedup", Obs.Json.Float speedup;
                "matches_reference", Obs.Json.Bool true;
                "steals", Obs.Json.Int stats.Core.Stats.steals;
                "steal_batches", Obs.Json.Int steal_batches;
                "stolen_items", Obs.Json.Int stolen_items;
                "frames_recycled", Obs.Json.Int recycled;
                "per_domain", Obs.Json.Arr per_domain;
                "metrics", Obs.Metrics.to_json reg ]
            :: !json_rows;
          row
            [ name; U.fint domains; U.fms ms; U.fratio speedup;
              Printf.sprintf "%.0f%%" (100.0 *. speedup /. Float.of_int domains);
              Printf.sprintf "%d/%d" stats.Core.Stats.fails
                stats.Core.Stats.exits;
              U.fint stats.Core.Stats.steals;
              U.fint recycled;
              String.concat "/"
                (Array.to_list (Array.map string_of_int r.Core.Parallel.busy_rounds))
            ])
        [ 1; 2; 4; 8 ])
    jobs;
  U.emit_json ~experiment:"E11" ~quick:!quick
    ~params:[ "host_cores", Obs.Json.Int host_cores ]
    (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  U.header "MICRO  bechamel microbenchmarks"
    "Core operations, estimated by OLS over monotonic-clock samples \
     (snapshot primitives over a 256-page dirty address space).";
  let open Bechamel in
  let _, aspace = dirty_aspace 256 in
  let snap = As.snapshot aspace in
  let rng = Stdx.Prng.create ~seed:9 in
  let ptmap =
    List.fold_left
      (fun m k -> Stdx.Ptmap.add k k m)
      Stdx.Ptmap.empty
      (List.init 10_000 (fun _ -> Stdx.Prng.next rng land 0xFFFFF))
  in
  let counting_image = Workloads.Counting.program ~depth:1 ~branch:2 in
  let tests =
    [ Test.make ~name:"snapshot_capture" (Staged.stage (fun () -> As.snapshot aspace));
      Test.make ~name:"snapshot_restore" (Staged.stage (fun () -> As.restore aspace snap));
      Test.make ~name:"cow_fault_roundtrip"
        (Staged.stage (fun () ->
             let s = As.snapshot aspace in
             As.write_u64 aspace 0 1;
             As.restore aspace s));
      Test.make ~name:"write_u64_no_fault"
        (Staged.stage (fun () -> As.write_u64 aspace 8 42));
      Test.make ~name:"ptmap_find_10k"
        (Staged.stage (fun () -> Stdx.Ptmap.find_opt 0x1234 ptmap));
      Test.make ~name:"ptmap_add_10k"
        (Staged.stage (fun () -> Stdx.Ptmap.add 0x98765 1 ptmap));
      Test.make ~name:"guess_tree_2ext"
        (Staged.stage (fun () -> Explorer.run_image counting_image)) ]
  in
  U.run_micro ~name:"lwsnap" tests

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* E12: exploration under a frame budget (reclaim: evict + replay)    *)
(* ------------------------------------------------------------------ *)

let e12 () =
  U.header "E12  frame-budgeted exploration: the tiered payload store"
    "Snapshots are cheap in time but not free in space: unbounded \
     exploration holds every frontier snapshot's frames live at once \
     (section 2's 'memory-management capabilities' concern).  Under a \
     frame budget the store no longer forgets payloads - it demotes \
     them (deepest, least-recently-resumed first) to compressed \
     dirty-page deltas against a live ancestor and promotes them back \
     by decompress+apply when the scheduler pops them; re-execution is \
     only the fallback for truncated chains, which pressure alone never \
     produces.  Every budgeted run must visit the same terminals in the \
     same order as the unbounded one, peak live frames must never \
     exceed the budget, and the quarter-peak run must stay within 3x \
     of the unbounded time (the old evict-and-replay store sat at \
     32-75x here).";
  let row = U.row_format [ 10; 9; 10; 8; 8; 8; 9; 8; 8; 9 ] in
  row
    [ "budget"; "capacity"; "peak-live"; "demote"; "promote"; "replays";
      "delta-KB"; "hit%"; "ms"; "slowdown" ];
  let params =
    { Workloads.Locality.depth = (if !quick then 3 else 4); branch = 3;
      touch_pages = 3; work = (if !quick then 5 else 50); arena_pages = 16 }
  in
  let image = Workloads.Locality.program params in
  let run capacity () =
    let phys =
      if capacity = 0 then Phys.create ~track_live:true ()
      else Phys.create ~capacity ()
    in
    let r = Explorer.run (Os.Libos.boot phys image) in
    phys, r
  in
  (* Footprint probe: recycling off, so every snapshot's frames stay
     live until the GC would find them — the budget has to undercut what
     unbounded exploration actually accumulates, not the (much smaller)
     eagerly-recycled peak.  Timing still comes from the recycled run
     below: that is the configuration anyone runs without a budget. *)
  let peak =
    let phys = Phys.create ~track_live:true ~recycle:false () in
    ignore (Explorer.run (Os.Libos.boot phys image));
    Phys.peak_frames_live phys
  in
  (* Rows must start from comparable GC state: each budgeted run leaves
     demoted deltas and store records on the major heap, and without a
     collection here a later row pays the earlier rows' heap debt in its
     own wall clock (the skew dwarfs the tier machinery being measured).
     Same discipline as E13; median of 3 after one warmup. *)
  let timed capacity =
    ignore (run capacity ());
    let samples =
      List.init 3 (fun _ ->
          Gc.compact ();
          U.time_once_ms (run capacity))
    in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) samples in
    fst (List.nth sorted 1), snd (List.nth samples 2)
  in
  let base_ms, (_phys0, base) = timed 0 in
  let base_terminals = List.length base.Explorer.terminals in
  row
    [ "unbounded"; "-"; U.fint peak; "0"; "0"; "0"; "0"; "-"; U.fms base_ms;
      U.fratio 1.0 ];
  (* Fraction of reconstructions served from the delta tiers without
     re-executing a single guest instruction. *)
  let tier_hit_rate (s : Core.Stats.t) =
    let total = s.Core.Stats.promotions + s.Core.Stats.replay_fallbacks in
    if total = 0 then 1.0
    else Float.of_int s.Core.Stats.promotions /. Float.of_int total
  in
  let json_row ~label ~capacity ~peak_live ~peak_delta ~ms ~slowdown stats =
    let reg = Obs.Metrics.create () in
    Core.Stats.publish stats reg;
    Obs.Json.Obj
      [ "budget", Obs.Json.Str label;
        "capacity", Obs.Json.Int capacity;
        "peak_live", Obs.Json.Int peak_live;
        "peak_delta_bytes", Obs.Json.Int peak_delta;
        "tier_hit_rate", Obs.Json.Float (tier_hit_rate stats);
        "ms", Obs.Json.Float ms;
        "slowdown", Obs.Json.Float slowdown;
        "metrics", Obs.Metrics.to_json reg ]
  in
  let json_rows =
    ref
      [ json_row ~label:"unbounded" ~capacity:0 ~peak_live:peak ~peak_delta:0
          ~ms:base_ms ~slowdown:1.0 base.Explorer.stats ]
  in
  List.iter
    (fun (label, num, den) ->
      let capacity = max 16 (peak * num / den) in
      let ms, (phys, r) = timed capacity in
      (match r.Explorer.outcome with
      | Explorer.Completed _ -> ()
      | Explorer.Stopped_first_exit _ | Explorer.Aborted _ ->
        failwith "E12: exploration did not complete under budget");
      if List.length r.Explorer.terminals <> base_terminals then
        failwith "E12: terminal count diverged under memory pressure";
      if r.Explorer.transcript <> base.Explorer.transcript then
        failwith "E12: transcript diverged under memory pressure";
      if Phys.peak_frames_live phys > capacity then
        failwith "E12: frame budget exceeded";
      let s = r.Explorer.stats in
      let slowdown = ms /. base_ms in
      if label = "1/4 peak" && slowdown >= 3.0 then
        failwith
          (Printf.sprintf
             "E12: quarter-peak slowdown %.1fx >= 3x - the delta tiers are \
              not absorbing the pressure" slowdown);
      json_rows :=
        json_row ~label ~capacity ~peak_live:(Phys.peak_frames_live phys)
          ~peak_delta:(Phys.peak_delta_bytes phys) ~ms ~slowdown s
        :: !json_rows;
      row
        [ label; U.fint capacity; U.fint (Phys.peak_frames_live phys);
          U.fint s.Core.Stats.demotions; U.fint s.Core.Stats.promotions;
          U.fint s.Core.Stats.replays;
          U.fint (Phys.peak_delta_bytes phys / 1024);
          Printf.sprintf "%.0f%%" (100.0 *. tier_hit_rate s); U.fms ms;
          U.fratio slowdown ])
    [ "3/4 peak", 3, 4; "1/2 peak", 1, 2; "1/3 peak", 1, 3;
      "1/4 peak", 1, 4 ];
  U.emit_json ~schema:2 ~experiment:"E12" ~quick:!quick
    ~params:
      [ "depth", Obs.Json.Int params.Workloads.Locality.depth;
        "branch", Obs.Json.Int params.Workloads.Locality.branch;
        "touch_pages", Obs.Json.Int params.Workloads.Locality.touch_pages;
        "work", Obs.Json.Int params.Workloads.Locality.work ]
    (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* E13: observability overhead (lib/obs tracing on the E3 workload)   *)
(* ------------------------------------------------------------------ *)

let e13 () =
  U.header "E13  tracing overhead: the obs ring tracer on an E3 workload"
    "The lib/obs tracer must be effectively free when disabled (one \
     boolean load per guarded record call) and cheap when enabled.  Runs \
     an E3-style locality workload with tracing off and on (min of 5 \
     runs each), measures the per-call cost of a disabled record call \
     directly, and projects the disabled overhead from the number of \
     events the traced run actually records — the projection is the \
     assertable form of the <1% claim, since the true cost sits below \
     run-to-run timing noise.  Asserts: projected disabled overhead \
     < 1%, enabled overhead < 10%, identical exploration either way.";
  let p =
    { Workloads.Locality.depth = (if !quick then 3 else 4); branch = 3;
      touch_pages = 4; work = (if !quick then 2000 else 4000);
      arena_pages = 32 }
  in
  let image = Workloads.Locality.program p in
  let reps = 5 in
  (* min over [reps] runs, one warmup; a full major collection right
     before each timed run keeps GC state comparable between the two
     modes (the enabled mode allocates its ring just before running) *)
  let min_ms f =
    ignore (f ());
    let best = ref infinity in
    let last = ref None in
    for _ = 1 to reps do
      let ms, r = f () in
      if ms < !best then best := ms;
      last := Some r
    done;
    (!best, Option.get !last)
  in
  let off_ms, off_r =
    min_ms (fun () ->
        Gc.full_major ();
        U.time_once_ms (fun () -> Explorer.run_image image))
  in
  (* enabled: a fresh ring per rep so every rep pays full recording, but
     ring allocation itself stays outside the timed region (one
     pre-touch record forces this domain's lazy buffer registration) *)
  let capacity = 1 lsl 16 in
  let on_ms, on_r =
    min_ms (fun () ->
        Obs.Trace.start ~capacity ();
        Obs.Trace.instant Obs.Names.pressure;
        Gc.full_major ();
        let timed = U.time_once_ms (fun () -> Explorer.run_image image) in
        Obs.Trace.stop ();
        timed)
  in
  let recorded = Obs.Trace.recorded () in
  let dropped = Obs.Trace.dropped () in
  let events = Obs.Trace.events () in
  let export_ms, chrome =
    U.time_once_ms (fun () -> Obs.Export.chrome_json_string ~dropped events)
  in
  Obs.Trace.clear ();
  (* per-call cost of a guarded record call while tracing is disabled *)
  let guard_iters = 10_000_000 in
  let guard_ms, () =
    U.time_once_ms (fun () ->
        for i = 0 to guard_iters - 1 do
          Obs.Trace.instant ~a:i Obs.Names.cow_fault
        done)
  in
  let guard_ns = guard_ms *. 1e6 /. Float.of_int guard_iters in
  let projected_pct =
    100.0 *. (guard_ns *. Float.of_int recorded /. 1e6) /. off_ms
  in
  let enabled_pct = 100.0 *. ((on_ms /. off_ms) -. 1.0) in
  let signature (r : Explorer.result) =
    ( r.Explorer.stats.Core.Stats.fails,
      r.Explorer.stats.Core.Stats.exits,
      r.Explorer.transcript )
  in
  if signature off_r <> signature on_r then
    failwith "E13: tracing changed the exploration result";
  let row = U.row_format [ 26; 14 ] in
  row [ "tracing off (min of 5)"; U.fms off_ms ^ " ms" ];
  row [ "tracing on  (min of 5)"; U.fms on_ms ^ " ms" ];
  row [ "enabled overhead"; Printf.sprintf "%.1f%%" enabled_pct ];
  row [ "events recorded"; U.fint recorded ];
  row [ "events dropped"; U.fint dropped ];
  row [ "disabled call"; Printf.sprintf "%.2f ns" guard_ns ];
  row [ "projected off overhead"; Printf.sprintf "%.4f%%" projected_pct ];
  row
    [ "chrome export";
      Printf.sprintf "%s ms (%d bytes)" (U.fms export_ms)
        (String.length chrome) ];
  if projected_pct >= 1.0 then
    failwith "E13: projected disabled-tracing overhead reached 1%";
  if enabled_pct >= 10.0 then
    failwith "E13: enabled-tracing overhead reached 10%";
  let reg = Obs.Metrics.create () in
  Core.Stats.publish on_r.Explorer.stats reg;
  U.emit_json ~experiment:"E13" ~quick:!quick
    ~params:
      [ "depth", Obs.Json.Int p.Workloads.Locality.depth;
        "branch", Obs.Json.Int p.Workloads.Locality.branch;
        "touch_pages", Obs.Json.Int p.Workloads.Locality.touch_pages;
        "work", Obs.Json.Int p.Workloads.Locality.work;
        "ring_capacity", Obs.Json.Int capacity;
        "reps", Obs.Json.Int reps ]
    [ Obs.Json.Obj
        [ "off_ms", Obs.Json.Float off_ms;
          "on_ms", Obs.Json.Float on_ms;
          "enabled_overhead_pct", Obs.Json.Float enabled_pct;
          "events_recorded", Obs.Json.Int recorded;
          "events_dropped", Obs.Json.Int dropped;
          "disabled_call_ns", Obs.Json.Float guard_ns;
          "projected_disabled_overhead_pct", Obs.Json.Float projected_pct;
          "export_ms", Obs.Json.Float export_ms;
          "export_bytes", Obs.Json.Int (String.length chrome);
          "metrics", Obs.Metrics.to_json reg ] ]

(* ------------------------------------------------------------------ *)
(* E14: multi-tenant snapshot service (density, isolation, fairness)  *)
(* ------------------------------------------------------------------ *)

let e14 () =
  U.header
    "E14  multi-tenant snapshot service: session density and fault isolation"
    "The paper's service runs many clients' candidate sets at once \
     (section 3.2 'would need memory-management capabilities', section 4 \
     'several sessions').  One shared frame pool hosts N same-image \
     sessions: content-addressed dedup hash-conses their read-only image \
     pages (COW on first divergence), per-tenant accounts attribute every \
     other frame, and scheduling is round-robin.  The sweep reports \
     session density (sessions/GB of frames), resume latency p50/p99 and \
     the dedup sharing multiplier from 1 tenant up; the storm row then \
     kills 10% of the tenants mid-sweep with injected allocation faults \
     and asserts the survivors' outcome logs are bit-identical to the \
     fault-free run — the fault-isolation contract, measured.";
  let module Tenancy = Core.Tenancy in
  let row = U.row_format [ 8; 7; 11; 9; 8; 8; 7; 10 ] in
  row
    [ "tenants"; "killed"; "frames-live"; "sess/GB"; "p50-us"; "p99-us";
      "dedup"; "survivors" ];
  let params =
    { Workloads.Locality.depth = 3; branch = 2; touch_pages = 1; work = 1;
      arena_pages = 4 }
  in
  let image = Workloads.Locality.program params in
  let rounds = 3 in
  (* Boot [n] tenants into one pool, then [rounds] round-robin resume
     rounds each following its own candidate chain.  [victims] are killed
     after boot by aiming a single-shot injected allocation fault at each
     one's next frame ([Inject.Alloc_fail] on the allocator's next
     ordinal) and serving only that tenant.  Returns the pool, each
     tenant's outcome log (terminal signatures, for the survivor
     comparison) and every step's wall-clock latency. *)
  let drive n victims =
    let pool = Tenancy.create () in
    let phys = Tenancy.phys pool in
    let cursors =
      Array.init n (fun _ ->
          match Tenancy.boot pool image with
          | Tenancy.Admitted (id, Service.Ready { candidate; _ }) ->
            (id, ref candidate)
          | _ -> failwith "E14: boot failed")
    in
    let log = Array.make n [] in
    let note id o =
      let s =
        match (o : Service.outcome) with
        | Service.Ready { arity; output; _ } ->
          Printf.sprintf "ready(%d):%s" arity output
        | Service.Finished { status; output } ->
          Printf.sprintf "exit(%d):%s" status output
        | Service.Failed { output } -> "fail:" ^ output
        | Service.Crashed msg -> "crashed:" ^ msg
      in
      log.(id) <- s :: log.(id)
    in
    List.iter
      (fun vid ->
        let _, cur = cursors.(vid) in
        ignore (Tenancy.post pool vid !cur ~choice:0 ());
        let armed =
          Inject.arm
            { Inject.seed = 0;
              faults = [ Inject.Alloc_fail (Phys.next_frame_ordinal phys) ] }
        in
        Phys.set_alloc_fault phys (Inject.alloc_hook armed);
        (match Tenancy.step pool with
        | Some (id, Service.Crashed _) when id = vid -> ()
        | _ -> failwith "E14: fault storm missed its victim");
        Phys.set_alloc_fault phys None)
      victims;
    let latencies = ref [] in
    for k = 1 to rounds do
      Array.iter
        (fun (id, cur) ->
          if Tenancy.state pool id = Some Tenancy.Running then begin
            ignore (Tenancy.post pool id !cur ~choice:(k mod 2) ());
            let ms, served = U.time_once_ms (fun () -> Tenancy.step pool) in
            latencies := (ms *. 1000.0) :: !latencies;
            match served with
            | Some (sid, o) when sid = id ->
              note id o;
              (match o with
              | Service.Ready { candidate; _ } -> cur := candidate
              | _ -> ())
            | _ -> failwith "E14: round-robin served the wrong tenant"
          end)
        cursors
    done;
    pool, log, !latencies
  in
  let percentile p xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then 0.0
    else a.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))
  in
  let frames_per_gb = 1024 * 1024 * 1024 / Mem.Page.size in
  let json_rows = ref [] in
  let emit_row ~n ~killed ~pool ~latencies ~survivors_ok =
    let phys = Tenancy.phys pool in
    let live = Phys.frames_live phys in
    let sessions_per_gb =
      float_of_int ((n - killed) * frames_per_gb) /. float_of_int (max 1 live)
    in
    let p50 = percentile 0.50 latencies in
    let p99 = percentile 0.99 latencies in
    let dedup = Tenancy.dedup_ratio pool in
    json_rows :=
      Obs.Json.Obj
        [ "tenants", Obs.Json.Int n;
          "killed", Obs.Json.Int killed;
          "frames_live", Obs.Json.Int live;
          "sessions_per_gb", Obs.Json.Float sessions_per_gb;
          "p50_resume_us", Obs.Json.Float p50;
          "p99_resume_us", Obs.Json.Float p99;
          "dedup_ratio", Obs.Json.Float dedup;
          "survivors_ok", Obs.Json.Bool survivors_ok ]
      :: !json_rows;
    row
      [ U.fint n; U.fint killed; U.fint live;
        Printf.sprintf "%.0f" sessions_per_gb; U.fus p50; U.fus p99;
        U.fratio dedup;
        (if killed = 0 then "-" else if survivors_ok then "ok" else "FAIL") ];
    dedup
  in
  let counts = if !quick then [ 1; 16; 100 ] else [ 1; 10; 100; 1000 ] in
  let biggest = List.nth counts (List.length counts - 1) in
  let baseline_log = ref [||] in
  List.iter
    (fun n ->
      let pool, log, latencies = drive n [] in
      if n = biggest then baseline_log := log;
      let dedup = emit_row ~n ~killed:0 ~pool ~latencies ~survivors_ok:true in
      if n >= 100 && dedup <= 1.5 then
        failwith
          (Printf.sprintf
             "E14: dedup ratio %.2f at %d same-image tenants - sharing is \
              not happening"
             dedup n))
    counts;
  (* The fault storm: kill every 10th tenant mid-sweep with an injected
     allocation fault; every survivor's outcome log must be bit-identical
     to the fault-free run above. *)
  let victims = List.filter (fun v -> v mod 10 = 0) (List.init biggest Fun.id) in
  let pool, log, latencies = drive biggest victims in
  let survivors_ok =
    List.for_all
      (fun id -> log.(id) = !baseline_log.(id))
      (List.filter (fun id -> not (List.mem id victims))
         (List.init biggest Fun.id))
  in
  ignore
    (emit_row ~n:biggest ~killed:(List.length victims) ~pool ~latencies
       ~survivors_ok);
  if not survivors_ok then
    failwith "E14: a fault-storm survivor's outcomes diverged from the \
              fault-free run";
  if Tenancy.crashes pool <> List.length victims then
    failwith "E14: crash containment miscounted the storm's victims";
  U.emit_json ~experiment:"E14" ~quick:!quick
    ~params:
      [ "depth", Obs.Json.Int params.Workloads.Locality.depth;
        "branch", Obs.Json.Int params.Workloads.Locality.branch;
        "touch_pages", Obs.Json.Int params.Workloads.Locality.touch_pages;
        "work", Obs.Json.Int params.Workloads.Locality.work;
        "arena_pages", Obs.Json.Int params.Workloads.Locality.arena_pages;
        "rounds", Obs.Json.Int rounds ]
    (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* E15: record/replay — recording overhead, reverse-seek latency      *)
(* ------------------------------------------------------------------ *)

let e15 () =
  U.header "E15  record/replay: recording overhead and time-travel latency"
    "Recording a run's nondeterministic inputs (scheduler decisions plus \
     the ordinary-syscall stream, lib/record) must not slow exploration \
     by 10% or more; the time-travel cursor's reverse-step must cost \
     O(anchor interval), not O(run length).  Runs n-queens unrecorded \
     and recorded (min of 5 each, identical exploration asserted), then \
     replays the bundle and measures forward-pass and reverse-step \
     latency at anchor spacings 1/4/16/64.";
  let n = if !quick then 5 else 6 in
  let image = Workloads.Nqueens.program ~n in
  let reps = 5 in
  let boot () = Os.Libos.boot (Phys.create ()) image in
  let min_ms f =
    ignore (f ());
    let best = ref infinity in
    let last = ref None in
    for _ = 1 to reps do
      let ms, r = f () in
      if ms < !best then best := ms;
      last := Some r
    done;
    (!best, Option.get !last)
  in
  let off_ms, off_r =
    min_ms (fun () ->
        let m = boot () in
        Gc.full_major ();
        U.time_once_ms (fun () -> Explorer.run m))
  in
  let last_recorder = ref (Record.Recorder.create ()) in
  let on_ms, on_r =
    min_ms (fun () ->
        let m = boot () in
        let recorder = Record.Recorder.create () in
        Record.Recorder.install recorder m;
        last_recorder := recorder;
        Gc.full_major ();
        U.time_once_ms (fun () ->
            Explorer.run ~probe:(Record.Recorder.probe recorder) m))
  in
  let signature (r : Explorer.result) =
    ( r.Explorer.stats.Core.Stats.fails,
      r.Explorer.stats.Core.Stats.exits,
      r.Explorer.transcript )
  in
  if signature off_r <> signature on_r then
    failwith "E15: recording changed the exploration result";
  let overhead_pct = 100.0 *. ((on_ms /. off_ms) -. 1.0) in
  let log = Record.Recorder.log !last_recorder in
  let log_bytes = String.length (Record.Log.encode log) in
  let events = Record.Recorder.events !last_recorder in
  let instructions = off_r.Explorer.stats.Core.Stats.instructions in
  let row = U.row_format [ 26; 16 ] in
  row [ "recording off (min of 5)"; U.fms off_ms ^ " ms" ];
  row [ "recording on  (min of 5)"; U.fms on_ms ^ " ms" ];
  row [ "record overhead"; Printf.sprintf "%.1f%%" overhead_pct ];
  row [ "guest instructions"; U.fint instructions ];
  row [ "events logged"; U.fint events ];
  row [ "log size"; Printf.sprintf "%d bytes" log_bytes ];
  (* the time-travel axis: one bundle, four anchor spacings *)
  let bundle = Record.Bundle.of_image image log in
  let rsteps_wanted = if !quick then 50 else 200 in
  let row = U.row_format [ 12; 14; 10; 14 ] in
  row [ "anchor_every"; "fwd pass ms"; "rsteps"; "us/rstep" ];
  let seek_rows =
    List.map
      (fun anchor_every ->
        let cur = Record.Replay.create ~anchor_every bundle in
        let fwd_ms, () =
          U.time_once_ms (fun () ->
              match Record.Replay.seek cur (Record.Replay.total_time cur) with
              | Record.Replay.Stopped -> ()
              | Record.Replay.End | Record.Replay.Break _ ->
                failwith "E15: seek to end interrupted")
        in
        let k = min rsteps_wanted (Record.Replay.total_time cur - 1) in
        let rstep_ms, () =
          U.time_once_ms (fun () ->
              for _ = 1 to k do
                match Record.Replay.rstep cur with
                | Record.Replay.Stopped -> ()
                | Record.Replay.End | Record.Replay.Break _ ->
                  failwith "E15: rstep hit the boundary"
              done)
        in
        let us_per = rstep_ms *. 1000.0 /. Float.of_int k in
        row
          [ string_of_int anchor_every; U.fms fwd_ms; string_of_int k;
            Printf.sprintf "%.1f" us_per ];
        Obs.Json.Obj
          [ "anchor_every", Obs.Json.Int anchor_every;
            "forward_ms", Obs.Json.Float fwd_ms;
            "rsteps", Obs.Json.Int k;
            "us_per_rstep", Obs.Json.Float us_per ])
      [ 1; 4; 16; 64 ]
  in
  if overhead_pct >= 10.0 then
    failwith "E15: recording overhead reached 10%";
  U.emit_json ~experiment:"E15" ~quick:!quick
    ~params:
      [ "workload", Obs.Json.Str "nqueens";
        "n", Obs.Json.Int n;
        "reps", Obs.Json.Int reps;
        "rsteps", Obs.Json.Int rsteps_wanted ]
    (Obs.Json.Obj
       [ "off_ms", Obs.Json.Float off_ms;
         "on_ms", Obs.Json.Float on_ms;
         "record_overhead_pct", Obs.Json.Float overhead_pct;
         "instructions", Obs.Json.Int instructions;
         "events", Obs.Json.Int events;
         "log_bytes", Obs.Json.Int log_bytes ]
     :: seek_rows)

(* ------------------------------------------------------------------ *)

let experiments =
  [ "E1", e1; "E2", e2; "E3", e3; "E4", e4; "E5", e5; "E6", e6; "E7", e7;
    "E8", e8; "E9", e9; "E10", e10; "E11", e11; "E12", e12; "E13", e13;
    "E14", e14; "E15", e15; "MICRO", micro ]

let () =
  let only = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--only" :: name :: rest ->
      only := String.uppercase_ascii name :: !only;
      parse rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    if !only = [] then experiments
    else List.filter (fun (name, _) -> List.mem name !only) experiments
  in
  Printf.printf
    "lwsnap experiment harness — reproduces the claims of \"Lightweight \
     Snapshots and System-level Backtracking\" (HotOS 2013)\n";
  List.iter (fun (_, run) -> run ()) selected
