(* lwsnap: drive the lightweight-snapshot backtracking system from the
   command line.  Subcommands: run, solve, symex, prolog, disasm, fuzz,
   trace. *)

open Cmdliner

(* Drain the tracer into a Chrome trace_event file (Perfetto-loadable). *)
let write_trace_file path =
  let events = Obs.Trace.events () in
  let dropped = Obs.Trace.dropped () in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        (Obs.Export.chrome_json_string ~dropped events));
  Printf.printf "[trace: %d events (%d dropped) written to %s]\n"
    (List.length events) dropped path

let strategy_conv =
  let parse = function
    | "dfs" -> Ok `Dfs
    | "bfs" -> Ok `Bfs
    | "astar" -> Ok `Astar
    | "sma" -> Ok (`Sma 256)
    | "wastar" -> Ok (`Wastar 2.0)
    | "beam" -> Ok (`Beam 64)
    | "random" -> Ok (`Random 42)
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt (s : Core.Explorer.strategy) =
    Format.pp_print_string fmt
      (match s with
      | `Dfs -> "dfs"
      | `Bfs -> "bfs"
      | `Astar -> "astar"
      | `Sma _ -> "sma"
      | `Wastar _ -> "wastar"
      | `Beam _ -> "beam"
      | `Dfs_bounded _ -> "dfs-bounded"
      | `Random _ -> "random"
      | `Custom _ -> "custom")
  in
  Arg.conv (parse, print)

let strategy_arg =
  Arg.(value & opt (some strategy_conv) None
       & info [ "s"; "strategy" ] ~docv:"STRATEGY"
           ~doc:"Override the guest's strategy: dfs, bfs, astar, sma, wastar, beam, random.")

let first_arg =
  Arg.(value & flag & info [ "first" ] ~doc:"Stop at the first in-scope exit.")

let fuel_arg =
  Arg.(value & opt int 50_000_000
       & info [ "fuel" ] ~docv:"N"
           ~doc:"Guest instructions per scheduling step (default 50M).  A \
                 path that exceeds it is killed and recorded as a \
                 Path_killed terminal, so divergent guests die instead of \
                 hanging the run.")

let capacity_arg =
  Arg.(value & opt int 0
       & info [ "capacity" ] ~docv:"FRAMES"
           ~doc:"Bound physical memory to FRAMES frames (0 = unbounded).  \
                 Under pressure, snapshot payloads are evicted and rebuilt \
                 by replay when scheduled.")

let size_arg ~default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Problem size.")

let build_image workload n =
  if Filename.check_suffix workload ".s" then
    if Sys.file_exists workload then begin
      let text = In_channel.with_open_text workload In_channel.input_all in
      match Isa.Asm_parser.assemble_text text with
      | image -> Ok image
      | exception Isa.Asm_parser.Parse_error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" workload line message)
      | exception Isa.Asm.Error message ->
        Error (Printf.sprintf "%s: %s" workload message)
    end
    else Error (Printf.sprintf "no such file %S" workload)
  else
  match workload with
  | "nqueens" -> Ok (Workloads.Nqueens.program ~n)
  | "coloring" -> Ok (Workloads.Coloring.program Workloads.Coloring.petersen ~k:n)
  | "counting" -> Ok (Workloads.Counting.program ~depth:n ~branch:2)
  | "grid" ->
    let maze = Workloads.Grid.generate ~width:n ~height:n ~wall_density:0.25 ~seed:7 in
    Ok (Workloads.Grid.program maze)
  | "subset" ->
    Ok (Workloads.Subset_sum.program ~all_solutions:true ~target:(3 * n)
          (List.init n (fun k -> k + 1)))
  | other -> Error (Printf.sprintf "unknown workload %S" other)

(* Run the explorer with a recorder attached and write the replay bundle:
   the probe logs scheduler decisions, the installed sys hook logs the
   ordinary-syscall stream.  Recording needs an unbounded in-memory
   scheduler, so the machine is booted on a fresh unbounded memory here
   rather than going through [run_image]. *)
let record_explored ?source ?stdin ?(files = []) ?mode ?strategy_override
    ~fuel ~meta image path =
  let phys = Mem.Phys_mem.create () in
  let machine = Os.Libos.boot phys image in
  List.iter (fun (p, c) -> Os.Libos.add_file machine ~path:p c) files;
  Option.iter (Os.Libos.set_stdin machine) stdin;
  let recorder = Record.Recorder.create ~fuel_per_step:fuel ~meta () in
  Record.Recorder.install recorder machine;
  let result =
    Core.Explorer.run ?mode ~fuel_per_step:fuel ?strategy_override
      ~probe:(Record.Recorder.probe recorder) machine
  in
  Record.Bundle.write ~path
    (Record.Bundle.of_image ?source ?stdin ~files image
       (Record.Recorder.log recorder));
  Printf.printf "[replay bundle: %d events written to %s]\n"
    (Record.Recorder.events recorder) path;
  result

let run_cmd =
  let workload =
    Arg.(value & pos 0 string "nqueens"
         & info [] ~docv:"WORKLOAD"
             ~doc:"A built-in workload (nqueens, coloring, counting, grid, \
                   subset) or a path to a .s assembly file (see \
                   examples/guess_three.s for the dialect).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record a trace of the run and write it to FILE as Chrome \
                   trace_event JSON (open in Perfetto or chrome://tracing).")
  in
  let record_out =
    Arg.(value & opt (some string) None
         & info [ "record" ] ~docv:"FILE"
             ~doc:"Record the run's nondeterministic inputs (scheduler \
                   decisions, syscall results) and write a self-contained \
                   replay bundle to FILE for $(b,lwsnap replay).  \
                   Incompatible with --capacity (recording needs the plain \
                   in-memory scheduler).")
  in
  let action workload n strategy first fuel capacity trace_out record_out =
    match build_image workload n with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok image ->
      if record_out <> None && capacity > 0 then begin
        prerr_endline "lwsnap: --record is incompatible with --capacity";
        exit 2
      end;
      let mode = if first then `First_exit else `Run_to_completion in
      (match trace_out with Some _ -> Obs.Trace.start () | None -> ());
      let result =
        match record_out with
        | Some path ->
          let source =
            if Filename.check_suffix workload ".s" && Sys.file_exists workload
            then
              Some (In_channel.with_open_text workload In_channel.input_all)
            else None
          in
          record_explored ?source ~mode ?strategy_override:strategy ~fuel
            ~meta:(Printf.sprintf "lwsnap run %s (n=%d)" workload n)
            image path
        | None ->
          Core.Explorer.run_image ~mode ~fuel_per_step:fuel
            ?capacity:(if capacity > 0 then Some capacity else None)
            ?strategy_override:strategy image
      in
      print_string result.Core.Explorer.transcript;
      (match result.Core.Explorer.outcome with
      | Core.Explorer.Completed s -> Printf.printf "[completed, status %d]\n" s
      | Core.Explorer.Stopped_first_exit s -> Printf.printf "[first exit, status %d]\n" s
      | Core.Explorer.Aborted m -> Printf.printf "[aborted: %s]\n" m);
      Format.printf "%a@." Core.Stats.pp result.Core.Explorer.stats;
      (match trace_out with
      | Some path ->
        Obs.Trace.stop ();
        write_trace_file path;
        Obs.Trace.clear ()
      | None -> ());
      0
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a guest search workload under the explorer.")
    Term.(const action $ workload $ size_arg ~default:6 $ strategy_arg
          $ first_arg $ fuel_arg $ capacity_arg $ trace_out $ record_out)

(* The time-travel debugger: a small command interpreter over
   [Record.Replay].  One grammar serves both the interactive prompt and
   --script (semicolon-separated), so CI can drive the same paths a human
   would. *)
let replay_cmd =
  let bundle_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"BUNDLE"
             ~doc:"A replay bundle written by $(b,run --record) or the \
                   fuzzer's counterexample emitter.")
  in
  let script_arg =
    Arg.(value & opt (some string) None
         & info [ "script" ] ~docv:"CMDS"
             ~doc:"Execute semicolon-separated debugger commands and exit, \
                   e.g. \"break stop 3; continue; regs; rstep; where\".")
  in
  let anchor_arg =
    Arg.(value & opt int 8
         & info [ "anchor-every" ] ~docv:"K"
             ~doc:"Drop a reverse-seek anchor every K scheduler stops \
                   (default 8).  Smaller = faster reverse motion, more \
                   memory.")
  in
  let parse_int s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "not a number: %S" s)
  in
  let action path script anchor_every =
    match Record.Bundle.read ~path with
    | Error msg ->
      Printf.eprintf "lwsnap: %s: %s\n" path msg;
      1
    | Ok bundle -> (
      let cur = Record.Replay.create ~anchor_every bundle in
      let machine = Record.Replay.machine cur in
      let pp_bp fmt (bp : Record.Replay.bp) =
        match bp with
        | Record.Replay.Bp_pc a -> Format.fprintf fmt "pc 0x%x" a
        | Record.Replay.Bp_sys n ->
          Format.fprintf fmt "sys %d (%s)" n (Os.Sys_abi.name_of_syscall n)
        | Record.Replay.Bp_stop k -> Format.fprintf fmt "stop %d" k
      in
      let where () =
        Printf.printf "time %d/%d  stop %d/%d  rip=0x%x"
          (Record.Replay.time cur)
          (Record.Replay.total_time cur)
          (Record.Replay.stop_index cur)
          (Record.Replay.segments cur)
          machine.Os.Libos.cpu.Vcpu.Cpu.rip;
        (match Record.Replay.current_stop cur with
        | Some stop when not (Record.Replay.at_end cur) ->
          Printf.printf "  [segment ends: %s]"
            (Format.asprintf "%a" Record.Log.pp_stop stop)
        | Some stop ->
          Printf.printf "  [at end: %s]"
            (Format.asprintf "%a" Record.Log.pp_stop stop)
        | None -> ());
        print_newline ()
      in
      let report = function
        | Record.Replay.Stopped -> where ()
        | Record.Replay.Break (id, bp) ->
          Printf.printf "breakpoint %d (%s) hit\n" id
            (Format.asprintf "%a" pp_bp bp);
          where ()
        | Record.Replay.End ->
          print_endline "[log boundary]";
          where ()
      in
      let hexdump addr s =
        String.iteri
          (fun i c ->
            if i mod 16 = 0 then Printf.printf "%s0x%08x  " (if i > 0 then "\n" else "") (addr + i);
            Printf.printf "%02x " (Char.code c))
          s;
        print_newline ()
      in
      let repeat n f =
        let rec go i = if i < n then match f () with
          | Record.Replay.Stopped -> go (i + 1)
          | halt -> halt
        else Record.Replay.Stopped
        in
        report (go 0)
      in
      (* returns [false] to quit *)
      let exec line =
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        with
        | [] -> Ok true
        | [ ("quit" | "q" | "exit") ] -> Ok false
        | [ "info" ] ->
          Printf.printf
            "bundle: %d stop segments, %d instructions, fuel/step %d%s\n"
            (Record.Replay.segments cur)
            (Record.Replay.total_time cur)
            bundle.Record.Bundle.log.Record.Log.fuel_per_step
            (match Record.Replay.meta cur with
            | "" -> ""
            | m -> Printf.sprintf "\nmeta: %s" m);
          Ok true
        | [ "where" ] | [ "w" ] ->
          where ();
          Ok true
        | [ ("step" | "s") ] ->
          report (Record.Replay.step cur);
          Ok true
        | [ ("step" | "s"); n ] ->
          Result.map
            (fun n -> repeat n (fun () -> Record.Replay.step cur); true)
            (parse_int n)
        | [ ("rstep" | "rs") ] ->
          report (Record.Replay.rstep cur);
          Ok true
        | [ ("rstep" | "rs"); n ] ->
          Result.map
            (fun n -> repeat n (fun () -> Record.Replay.rstep cur); true)
            (parse_int n)
        | [ ("continue" | "c") ] ->
          report (Record.Replay.continue cur);
          Ok true
        | [ ("rcontinue" | "rc") ] ->
          report (Record.Replay.rcontinue cur);
          Ok true
        | [ "seek"; n ] ->
          Result.map
            (fun n -> report (Record.Replay.seek cur n); true)
            (parse_int n)
        | [ "seek-stop"; n ] ->
          Result.map
            (fun n -> report (Record.Replay.seek_stop cur n); true)
            (parse_int n)
        | [ "regs" ] ->
          Format.printf "%a@." Vcpu.Cpu.pp machine.Os.Libos.cpu;
          Ok true
        | [ "mem"; addr; len ] -> (
          match (parse_int addr, parse_int len) with
          | Ok addr, Ok len -> (
            match Record.Replay.read_mem cur ~addr ~len with
            | Some bytes ->
              hexdump addr bytes;
              Ok true
            | None ->
              Printf.printf "unmapped range 0x%x+%d\n" addr len;
              Ok true)
          | (Error _ as e), _ | _, (Error _ as e) ->
            Result.map (fun _ -> true) e)
        | [ "stdout" ] ->
          print_string (Os.Libos.stdout_text machine);
          print_newline ();
          Ok true
        | [ "break"; "pc"; a ] ->
          Result.map
            (fun a ->
              Printf.printf "breakpoint %d\n"
                (Record.Replay.add_bp cur (Record.Replay.Bp_pc a));
              true)
            (parse_int a)
        | [ "break"; "sys"; n ] ->
          Result.map
            (fun n ->
              Printf.printf "breakpoint %d\n"
                (Record.Replay.add_bp cur (Record.Replay.Bp_sys n));
              true)
            (parse_int n)
        | [ "break"; "stop"; k ] ->
          Result.map
            (fun k ->
              Printf.printf "breakpoint %d\n"
                (Record.Replay.add_bp cur (Record.Replay.Bp_stop k));
              true)
            (parse_int k)
        | [ "delete"; id ] ->
          Result.map
            (fun id ->
              if not (Record.Replay.remove_bp cur id) then
                Printf.printf "no breakpoint %d\n" id;
              true)
            (parse_int id)
        | [ "breaks" ] ->
          List.iter
            (fun (id, bp) ->
              Printf.printf "%d: %s\n" id (Format.asprintf "%a" pp_bp bp))
            (Record.Replay.bps cur);
          Ok true
        | [ "help" ] ->
          print_endline
            "commands: info where step|s [N] rstep|rs [N] continue|c \
             rcontinue|rc seek T seek-stop K regs mem ADDR LEN stdout \
             break pc|sys|stop N delete ID breaks quit";
          Ok true
        | cmd :: _ -> Error (Printf.sprintf "unknown command %S (try help)" cmd)
      in
      let exec_report line =
        match exec line with
        | Ok cont -> cont
        | Error msg ->
          Printf.printf "error: %s\n" msg;
          true
      in
      try
        match script with
        | Some s ->
          List.iter
            (fun line -> ignore (exec_report line))
            (String.split_on_char ';' s);
          0
        | None ->
          where ();
          let rec loop () =
            print_string "(replay) ";
            flush Stdlib.stdout;
            match In_channel.input_line In_channel.stdin with
            | None -> 0
            | Some line -> if exec_report line then loop () else 0
          in
          loop ()
      with Record.Engine.Diverged msg ->
        Printf.eprintf "lwsnap: replay diverged from the record: %s\n" msg;
        3)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Time-travel through a recorded run: deterministic replay with \
             reverse-step/reverse-continue in O(anchor interval) via \
             snapshot anchors, and breakpoints on pc, syscall number, or \
             stop index.")
    Term.(const action $ bundle_arg $ script_arg $ anchor_arg)

let trace_cmd =
  let workload =
    Arg.(value & pos 0 string "nqueens"
         & info [] ~docv:"WORKLOAD"
             ~doc:"A built-in workload (nqueens, coloring, counting, grid, \
                   subset) or a path to a .s assembly file.")
  in
  let format_arg =
    Arg.(value
         & opt
             (enum
                [ ("chrome", `Chrome); ("summary", `Summary);
                  ("tree", `Tree_json); ("dot", `Tree_dot) ])
             `Chrome
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"Output format: $(b,chrome) (trace_event JSON for \
                   Perfetto), $(b,summary) (flat text aggregates), \
                   $(b,tree) (snapshot tree as JSON with per-node cost), \
                   $(b,dot) (snapshot tree as Graphviz).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Output file (default: trace.json / trace-tree.json / \
                   trace-tree.dot by format; summary prints to stdout).")
  in
  let action workload n strategy first fuel capacity format out =
    match build_image workload n with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok image ->
      let mode = if first then `First_exit else `Run_to_completion in
      Obs.Trace.start ();
      let result =
        Core.Explorer.run_image ~mode ~fuel_per_step:fuel
          ?capacity:(if capacity > 0 then Some capacity else None)
          ?strategy_override:strategy image
      in
      Obs.Trace.stop ();
      (match result.Core.Explorer.outcome with
      | Core.Explorer.Completed s -> Printf.printf "[completed, status %d]\n" s
      | Core.Explorer.Stopped_first_exit s ->
        Printf.printf "[first exit, status %d]\n" s
      | Core.Explorer.Aborted m -> Printf.printf "[aborted: %s]\n" m);
      let events = Obs.Trace.events () in
      let write path content what =
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc content);
        Printf.printf "[%s written to %s]\n" what path
      in
      (match format with
      | `Chrome ->
        write_trace_file (Option.value out ~default:"trace.json")
      | `Summary -> (
        let text = Obs.Export.summary events in
        match out with
        | None -> print_string text
        | Some p -> write p text "trace summary")
      | `Tree_json ->
        write
          (Option.value out ~default:"trace-tree.json")
          (Obs.Json.to_string (Obs.Export.tree_json events))
          "snapshot tree (JSON)"
      | `Tree_dot ->
        write
          (Option.value out ~default:"trace-tree.dot")
          (Obs.Export.tree_dot events)
          "snapshot tree (DOT)");
      Obs.Trace.clear ();
      0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a workload with tracing on and export the event stream \
             (Chrome JSON, text summary, or annotated snapshot tree).")
    Term.(const action $ workload $ size_arg ~default:6 $ strategy_arg
          $ first_arg $ fuel_arg $ capacity_arg $ format_arg $ out)

let solve_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.cnf" ~doc:"DIMACS CNF input.")
  in
  let guest =
    Arg.(value & flag
         & info [ "guest" ]
             ~doc:"Solve inside the guest DPLL under system-level backtracking \
                   instead of the host CDCL solver.")
  in
  let action path guest =
    let text = In_channel.with_open_text path In_channel.input_all in
    let cnf = Workloads.Cnf_gen.of_dimacs text in
    if guest then begin
      let image =
        Workloads.Guest_dpll.program ~num_vars:cnf.Workloads.Cnf_gen.num_vars
          cnf.Workloads.Cnf_gen.clauses
      in
      let result = Core.Explorer.run_image ~mode:`First_exit image in
      print_string result.Core.Explorer.transcript;
      match result.Core.Explorer.outcome with
      | Core.Explorer.Stopped_first_exit _ -> 0
      | Core.Explorer.Completed s when s = Workloads.Guest_dpll.exit_unsat -> 20
      | Core.Explorer.Completed _ -> 0
      | Core.Explorer.Aborted m ->
        prerr_endline m;
        1
    end
    else begin
      let solver = Sat.Solver.create () in
      Sat.Solver.add_cnf solver cnf.Workloads.Cnf_gen.clauses;
      match Sat.Solver.solve solver with
      | Sat.Solver.Sat ->
        print_endline "SAT";
        List.iter
          (fun (v, b) -> Printf.printf "%d " (if b then v else -v))
          (Sat.Solver.model solver);
        print_newline ();
        0
      | Sat.Solver.Unsat ->
        print_endline "UNSAT";
        20
      | Sat.Solver.Unknown ->
        print_endline "UNKNOWN";
        30
    end
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve a DIMACS CNF (host CDCL or guest DPLL).")
    Term.(const action $ file $ guest)

let symex_cmd =
  let target =
    Arg.(value & pos 0 string "password"
         & info [] ~docv:"TARGET" ~doc:"One of: password, tree, classifier, absdiff.")
  in
  let eager =
    Arg.(value & flag & info [ "eager" ] ~doc:"Use eager state copies instead of COW.")
  in
  let action target eager =
    let image, stdin_bytes =
      match target with
      | "password" -> Workloads.Symex_targets.password, 4
      | "tree" -> Workloads.Symex_targets.branch_tree ~depth:6, 6
      | "classifier" -> Workloads.Symex_targets.classifier, 2
      | "absdiff" -> Workloads.Symex_targets.abs_diff, 2
      | other -> failwith (Printf.sprintf "unknown target %S" other)
    in
    let config =
      { Symex.Engine.default_config with
        symbolic_stdin = stdin_bytes;
        fork_mode = (if eager then Symex.Engine.Eager_copy else Symex.Engine.Cow) }
    in
    let r = Symex.Engine.run ~config image in
    Printf.printf "paths=%d forks=%d infeasible=%d solver_calls=%d\n"
      r.Symex.Engine.explored r.Symex.Engine.forks r.Symex.Engine.infeasible
      r.Symex.Engine.solver_calls;
    List.iter
      (fun (p : Symex.Engine.path_report) ->
        let input =
          String.concat ","
            (List.map (fun (v, x) -> Printf.sprintf "s%d=%d" v x)
               (List.sort compare p.Symex.Engine.input))
        in
        let end_ =
          match p.Symex.Engine.end_ with
          | Symex.Engine.Exited s -> Printf.sprintf "exit(%d)" s
          | Symex.Engine.Faulted m -> "fault: " ^ m
          | Symex.Engine.Unsupported m -> "unsupported: " ^ m
          | Symex.Engine.Step_limit -> "step-limit"
        in
        Printf.printf "  %-12s [%s]\n" end_ input)
      r.Symex.Engine.paths;
    0
  in
  Cmd.v (Cmd.info "symex" ~doc:"Symbolically execute a built-in target.")
    Term.(const action $ target $ eager)

let prolog_cmd =
  let consult =
    Arg.(value & opt (some file) None
         & info [ "c"; "consult" ] ~docv:"FILE.pl" ~doc:"Consult a Prolog source file.")
  in
  let query =
    Arg.(value & opt (some string) None
         & info [ "q"; "query" ] ~docv:"GOAL" ~doc:"Goal to solve, e.g. \"append(X, Y, [1, 2])\".")
  in
  let max_solutions =
    Arg.(value & opt int 10
         & info [ "max" ] ~docv:"N" ~doc:"Stop after N solutions (default 10).")
  in
  let action n consult query max_solutions =
    match query with
    | None ->
      let count, stats = Prolog.Samples.count_queens n in
      Printf.printf "%d solutions (unifications=%d backtracks=%d choice_points=%d)\n"
        count stats.Prolog.Machine.unifications stats.Prolog.Machine.backtracks
        stats.Prolog.Machine.choice_points;
      0
    | Some goal -> (
      match
        let program =
          match consult with
          | None -> []
          | Some path ->
            Prolog.Parser.parse_program
              (In_channel.with_open_text path In_channel.input_all)
        in
        let db =
          Prolog.Machine.db_of_clauses (Prolog.Samples.list_clauses @ program)
        in
        let parsed = Prolog.Parser.parse_query goal in
        let found = ref 0 in
        let _ =
          Prolog.Parser.run_query db parsed ~on_solution:(fun bindings ->
              incr found;
              if bindings = [] then print_endline "true"
              else
                print_endline
                  (String.concat ", "
                     (List.map
                        (fun (name, t) -> name ^ " = " ^ Prolog.Term.to_string t)
                        bindings));
              !found < max_solutions)
        in
        if !found = 0 then print_endline "false";
        0
      with
      | status -> status
      | exception Prolog.Parser.Error { line; message } ->
        Printf.eprintf "parse error at line %d: %s\n" line message;
        1)
  in
  Cmd.v
    (Cmd.info "prolog"
       ~doc:"Run the Prolog engine: n-queens by default, or consult a file \
             and solve a query.")
    Term.(const action $ size_arg ~default:6 $ consult $ query $ max_solutions)

let disasm_cmd =
  let workload =
    Arg.(value & pos 0 string "nqueens" & info [] ~docv:"WORKLOAD")
  in
  let action workload n =
    match build_image workload n with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok image ->
      let listing =
        Isa.Disasm.disassemble ~code:image.Isa.Asm.code ~origin:image.Isa.Asm.origin ()
      in
      Format.printf "%a" Isa.Disasm.pp_listing listing;
      0
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a workload image.")
    Term.(const action $ workload $ size_arg ~default:6)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"Base seed; program $(i,i) uses seed N+i.")
  in
  let budget =
    Arg.(value & opt int 200
         & info [ "budget" ] ~docv:"K" ~doc:"Number of random programs to check.")
  in
  let depth =
    Arg.(value & opt int 3
         & info [ "depth" ] ~docv:"D" ~doc:"Guess-tree depth bound.")
  in
  let fanout =
    Arg.(value & opt int 3
         & info [ "fanout" ] ~docv:"F" ~doc:"Extensions per sys_guess.")
  in
  let ckpt_every =
    Arg.(value & opt int 1
         & info [ "ckpt-every" ] ~docv:"K"
             ~doc:"Checkpoint round-trip every K-th scheduler stop.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE.s"
             ~doc:"Where to write a shrunk counterexample (default \
                   fuzz-counterexample-seed<N>.s).")
  in
  let render_only =
    Arg.(value & flag
         & info [ "render" ]
             ~doc:"Print the generated program for --seed and exit without \
                   running the oracle (for inspecting reproducers).")
  in
  let faults =
    Arg.(value & opt int 0
         & info [ "faults" ] ~docv:"K"
             ~doc:"Additionally run each program under K seeded \
                   fault-injection plans (allocation failures, worker \
                   crashes, fuel jitter) on the supervised parallel \
                   backends; recovery must leave the terminal multiset \
                   identical to the fault-free baseline.  A diverging plan \
                   is written to fuzz-fault-plan-seed<N>.txt.")
  in
  let tenants =
    Arg.(value & opt int 0
         & info [ "tenants" ] ~docv:"N"
             ~doc:"Additionally run each program as N interleaved tenants \
                   over one shared multi-tenant pool (Core.Tenancy), \
                   cross-checked against a single-tenant baseline: every \
                   tenant's terminal multiset must match, dedup references \
                   must scale linearly with the tenant count and drain to \
                   zero at teardown, and every live frame must be \
                   attributed to a tenant account or the shared table.")
  in
  let trace_flag =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"On divergence, re-run the shrunk counterexample (or the \
                   diverging fault plans) with tracing on and write the \
                   event stream next to the reproducer as \
                   $(i,FILE).trace.json, so the failing pipeline's \
                   behaviour is inspectable in Perfetto.")
  in
  let traced_rerun path f =
    Obs.Trace.start ();
    (try ignore (f ()) with _ -> ());
    Obs.Trace.stop ();
    let tpath = path ^ ".trace.json" in
    let events = Obs.Trace.events () in
    Out_channel.with_open_text tpath (fun oc ->
        Out_channel.output_string oc
          (Obs.Export.chrome_json_string ~dropped:(Obs.Trace.dropped ()) events));
    Obs.Trace.clear ();
    Printf.printf "fuzz: trace of the diverging run (%d events) written to %s\n"
      (List.length events) tpath
  in
  (* Re-run the shrunk counterexample's baseline exploration under a
     recorder and drop a self-contained replay bundle next to the .s, so
     the divergence can be stepped through (forward and backward) with
     [lwsnap replay] instead of re-fuzzed.  Best-effort: a recording
     failure must not mask the divergence report. *)
  let emit_replay_bundle ~seed path prog =
    let rpath = Filename.remove_extension path ^ ".replay" in
    let source = Fuzz.Gen_prog.render prog in
    match
      let image = Isa.Asm_parser.assemble_text source in
      record_explored ~source ~fuel:50_000_000
        ~meta:(Printf.sprintf "fuzz counterexample seed %d" seed)
        image rpath
    with
    | (_ : Core.Explorer.result) ->
      Printf.printf "fuzz: time-travel it with: lwsnap replay %s\n" rpath
    | exception e ->
      Printf.printf "fuzz: could not record a replay bundle: %s\n"
        (Printexc.to_string e)
  in
  let action seed budget depth fanout ckpt_every out render_only faults
      tenants trace =
    let cfg = { Fuzz.Gen_prog.default_cfg with max_depth = depth; max_fanout = fanout } in
    if render_only then begin
      print_string (Fuzz.Gen_prog.render (Fuzz.Gen_prog.generate ~cfg seed));
      Printf.printf
        "; if this seed diverged, a replay bundle was written alongside the\n\
         ; reproducer: lwsnap replay fuzz-counterexample-seed%d.replay\n"
        seed;
      0
    end
    else
    let check_faults i prog =
      if faults <= 0 then 0
      else
        match Fuzz.Oracle.check_prog_faults ~seed:(seed + i) ~plans:faults prog with
        | None -> 0
        | Some (plan, d) ->
          let path = Printf.sprintf "fuzz-fault-plan-seed%d.txt" (seed + i) in
          Out_channel.with_open_text path (fun oc ->
              Printf.fprintf oc
                "# fault plan diverging on %s\n# %s\n%s\n# program:\n%s"
                d.Fuzz.Oracle.pipeline d.Fuzz.Oracle.detail
                (Inject.render plan)
                (Fuzz.Gen_prog.render prog));
          Printf.printf
            "fuzz: seed %d under fault plan diverges on %s: %s\n\
             fuzz: diverging plan written to %s\n%!"
            (seed + i) d.Fuzz.Oracle.pipeline d.Fuzz.Oracle.detail path;
          if trace then
            traced_rerun path (fun () ->
                Fuzz.Oracle.check_prog_faults ~seed:(seed + i) ~plans:faults
                  prog);
          1
    in
    let check_tenants i prog =
      if tenants <= 0 then 0
      else
        match Fuzz.Oracle.check_prog_tenants ~tenants prog with
        | None -> 0
        | Some d ->
          Printf.printf "fuzz: seed %d as %d tenants diverges: %s\n%!"
            (seed + i) tenants d.Fuzz.Oracle.detail;
          let still_diverges p =
            Fuzz.Oracle.check_prog_tenants ~tenants p <> None
          in
          let small = Fuzz.Shrink.minimise ~still_diverges prog in
          let path =
            match out with
            | Some p -> p
            | None -> Printf.sprintf "fuzz-counterexample-seed%d.s" (seed + i)
          in
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Fuzz.Gen_prog.render small));
          Printf.printf
            "fuzz: shrunk reproducer (%d -> %d nodes+stmts) written to %s\n"
            (Fuzz.Gen_prog.size prog) (Fuzz.Gen_prog.size small) path;
          emit_replay_bundle ~seed:(seed + i) path small;
          if trace then
            traced_rerun path (fun () ->
                Fuzz.Oracle.check_prog_tenants ~tenants small);
          1
    in
    let rec check i =
      if i >= budget then begin
        Printf.printf
          "fuzz: %d programs, 9 pipelines each (icache-off, icache-insn, \
           tight-fuel, ckpt-roundtrip, recycle, tiered-store, \
           parallel-coop, parallel-domains, ept-replay vs the \
           block-dispatch baseline)%s%s: no divergences\n"
          budget
          (if faults > 0 then
             Printf.sprintf " plus %d fault plans each" faults
           else "")
          (if tenants > 0 then
             Printf.sprintf " plus a %d-tenant pool cross-check each" tenants
           else "");
        0
      end
      else begin
        let prog = Fuzz.Gen_prog.generate ~cfg (seed + i) in
        match Fuzz.Oracle.check_prog ~ckpt_every prog with
        | None ->
          if check_faults i prog <> 0 then 1
          else if check_tenants i prog <> 0 then 1
          else begin
            if (i + 1) mod 50 = 0 then
              Printf.printf "fuzz: %d/%d programs ok\n%!" (i + 1) budget;
            check (i + 1)
          end
        | Some d ->
          Printf.printf "fuzz: seed %d diverges on %s: %s\n%!" (seed + i)
            d.Fuzz.Oracle.pipeline d.Fuzz.Oracle.detail;
          let still_diverges p =
            match Fuzz.Oracle.check_prog ~ckpt_every p with
            | Some d' -> d'.Fuzz.Oracle.pipeline = d.Fuzz.Oracle.pipeline
            | None -> false
          in
          let small = Fuzz.Shrink.minimise ~still_diverges prog in
          let path =
            match out with
            | Some p -> p
            | None -> Printf.sprintf "fuzz-counterexample-seed%d.s" (seed + i)
          in
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Fuzz.Gen_prog.render small));
          Printf.printf
            "fuzz: shrunk reproducer (%d -> %d nodes+stmts) written to %s\n"
            (Fuzz.Gen_prog.size prog) (Fuzz.Gen_prog.size small) path;
          emit_replay_bundle ~seed:(seed + i) path small;
          if trace then
            traced_rerun path (fun () -> Fuzz.Oracle.check_prog ~ckpt_every small);
          1
      end
    in
    check 0
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random guests cross-checked over every \
             execution pipeline.")
    Term.(const action $ seed $ budget $ depth $ fanout $ ckpt_every $ out
          $ render_only $ faults $ tenants $ trace_flag)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "lwsnap" ~version:"1.0.0"
      ~doc:"Lightweight snapshots and system-level backtracking."
  in
  exit (Cmd.eval' (Cmd.group ~default info
                     [ run_cmd; replay_cmd; trace_cmd; solve_cmd; symex_cmd;
                       prolog_cmd; disasm_cmd; fuzz_cmd ]))
