(* The Prolog reader: lexing, operator precedence, clauses, queries. *)

module P = Prolog.Parser
module M = Prolog.Machine
module T = Prolog.Term

let check = Alcotest.check

let solve_strings ?(program = "") query =
  let db =
    M.db_of_clauses (Prolog.Samples.list_clauses @ P.parse_program program)
  in
  let out = ref [] in
  let _ =
    P.run_query db (P.parse_query query) ~on_solution:(fun bindings ->
        out :=
          String.concat " "
            (List.map (fun (name, t) -> name ^ "=" ^ T.to_string t) bindings)
          :: !out;
        true)
  in
  List.rev !out

let facts_and_rules () =
  let program = "parent(tom, bob). parent(bob, ann).\n\
                 grandparent(X, Z) :- parent(X, Y), parent(Y, Z)." in
  check (Alcotest.list Alcotest.string) "grandparent" [ "X=tom Z=ann" ]
    (solve_strings ~program "grandparent(X, Z)")

let lists_parse () =
  check (Alcotest.list Alcotest.string) "append"
    [ "X=[1, 2, 3, 4]" ]
    (solve_strings "append([1, 2], [3, 4], X)");
  check (Alcotest.list Alcotest.string) "pipe tail"
    [ "H=1 T=[2, 3]" ]
    (solve_strings "[H | T] = [1, 2, 3]");
  check (Alcotest.list Alcotest.string) "empty list" [ "X=[]" ]
    (solve_strings "X = []")

let arithmetic_precedence () =
  (* 2 + 3 * 4 - 1 = 13 under standard precedences *)
  check (Alcotest.list Alcotest.string) "precedence" [ "X=13" ]
    (solve_strings "X is 2 + 3 * 4 - 1");
  check (Alcotest.list Alcotest.string) "left assoc" [ "X=1" ]
    (solve_strings "X is 10 - 6 - 3");
  check (Alcotest.list Alcotest.string) "parens" [ "X=28" ]
    (solve_strings "X is (2 + 5) * 4");
  check (Alcotest.list Alcotest.string) "negative literal" [ "X=-3" ]
    (solve_strings "X is -3");
  check (Alcotest.list Alcotest.string) "mod and div" [ "X=3 Y=2" ]
    (solve_strings "X is 7 mod 4, Y is 7 // 3")

let comparison_operators () =
  check Alcotest.int "=< passes" 1 (List.length (solve_strings "3 =< 3"));
  check Alcotest.int "=\\= passes" 1 (List.length (solve_strings "3 =\\= 4"));
  check Alcotest.int "< fails" 0 (List.length (solve_strings "5 < 4"))

let cut_and_negation () =
  let program = "first(X, [X | _]) :- !.\nfirst(X, [_ | T]) :- first(X, T)." in
  check (Alcotest.list Alcotest.string) "cut commits" [ "X=a" ]
    (solve_strings ~program "first(X, [a, b, c])");
  check Alcotest.int "negation holds" 1
    (List.length (solve_strings "\\+ member(5, [1, 2, 3])"));
  check Alcotest.int "negation fails" 0
    (List.length (solve_strings "\\+ member(2, [1, 2, 3])"))

let disjunction_parses () =
  check Alcotest.int "both branches" 2
    (List.length (solve_strings "(X = 1 ; X = 2)"))

let quoted_atoms_and_comments () =
  let program = "likes('Bob Smith', cheese). % a comment\n" in
  check (Alcotest.list Alcotest.string) "quoted atom" [ "W=cheese" ]
    (solve_strings ~program "likes('Bob Smith', W)")

let underscore_is_fresh () =
  (* each _ is a distinct variable: both must match *)
  let program = "pair(1, 2)." in
  check Alcotest.int "wildcards" 1
    (List.length (solve_strings ~program "pair(_, _)"))

let queens_from_source () =
  let program =
    {|
queens(N, Qs) :- numlist(1, N, Ns), place(Ns, [], Qs).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    select(Q, Unplaced, Rest),
    no_attack(Safe, Q, 1),
    place(Rest, [Q | Safe], Qs).
no_attack([], _, _).
no_attack([Y | Ys], Q, D) :-
    Q =\= Y + D, Q =\= Y - D, D1 is D + 1, no_attack(Ys, Q, D1).
|}
  in
  let count = List.length (solve_strings ~program "queens(6, Qs)") in
  check Alcotest.int "parsed queens agrees" (Workloads.Nqueens.expected_solutions 6) count

let error_positions () =
  let expect_error ~line text =
    match P.parse_program text with
    | _ -> Alcotest.failf "expected error for %S" text
    | exception P.Error { line = reported; _ } ->
      check Alcotest.int (Printf.sprintf "line of %S" text) line reported
  in
  expect_error ~line:1 "foo(X";
  expect_error ~line:2 "ok(1).\nbad(X) :- ]";
  expect_error ~line:1 "'unterminated";
  expect_error ~line:1 "foo(X) :- $bad."

let clause_missing_dot () =
  match P.parse_program "a(1)" with
  | _ -> Alcotest.fail "expected error"
  | exception P.Error _ -> ()

let var_names_reported () =
  let q = P.parse_query "append(Xs, Ys, [1])" in
  check (Alcotest.list Alcotest.string) "names"
    [ "Xs"; "Ys" ]
    (List.sort compare (List.map snd q.P.var_names))

let tests =
  [ Alcotest.test_case "facts and rules" `Quick facts_and_rules;
    Alcotest.test_case "lists" `Quick lists_parse;
    Alcotest.test_case "arithmetic precedence" `Quick arithmetic_precedence;
    Alcotest.test_case "comparisons" `Quick comparison_operators;
    Alcotest.test_case "cut and negation" `Quick cut_and_negation;
    Alcotest.test_case "disjunction" `Quick disjunction_parses;
    Alcotest.test_case "quoted atoms and comments" `Quick quoted_atoms_and_comments;
    Alcotest.test_case "underscore fresh" `Quick underscore_is_fresh;
    Alcotest.test_case "queens from source" `Quick queens_from_source;
    Alcotest.test_case "error positions" `Quick error_positions;
    Alcotest.test_case "missing dot" `Quick clause_missing_dot;
    Alcotest.test_case "query var names" `Quick var_names_reported ]
