(* The symbolic executor: expressions, the labeling solver, path
   enumeration, and the equivalence of the two forking backends. *)

module Expr = Symex.Expr
module Cons = Symex.Cons
module Engine = Symex.Engine
module Insn = Isa.Insn

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* {1 Expr} *)

let expr_folding () =
  check Alcotest.bool "consts fold" true
    (Expr.bin Insn.Add (Expr.const 2) (Expr.const 3) = Expr.const 5);
  check Alcotest.bool "add zero" true
    (Expr.bin Insn.Add (Expr.sym 0) (Expr.const 0) = Expr.sym 0);
  check Alcotest.bool "mul zero" true
    (Expr.bin Insn.Imul (Expr.sym 0) (Expr.const 0) = Expr.const 0);
  check Alcotest.bool "mul one" true
    (Expr.bin Insn.Imul (Expr.const 1) (Expr.sym 3) = Expr.sym 3);
  check Alcotest.bool "div by zero stays symbolic" true
    (not (Expr.is_concrete (Expr.bin Insn.Div (Expr.const 1) (Expr.const 0))))

let expr_eval () =
  let e =
    Expr.bin Insn.Imul
      (Expr.bin Insn.Add (Expr.sym 0) (Expr.const 3))
      (Expr.sym 1)
  in
  check (Alcotest.option Alcotest.int) "eval" (Some 50)
    (Expr.eval ~env:(fun v -> if v = 0 then 7 else 5) e);
  check (Alcotest.option Alcotest.int) "div by zero undefined" None
    (Expr.eval ~env:(fun _ -> 0) (Expr.bin Insn.Div (Expr.const 1) (Expr.sym 0)))

let expr_vars () =
  let e = Expr.bin Insn.Xor (Expr.sym 2) (Expr.bin Insn.Add (Expr.sym 5) (Expr.const 1)) in
  check (Alcotest.list Alcotest.int) "vars" [ 2; 5 ]
    (List.sort compare (Stdx.Intset.elements (Expr.vars e)))

let eval_matches_interp_semantics =
  (* Expr binop semantics must match the interpreter's for concrete
     values: run both on random pairs *)
  qtest "expr semantics = interp semantics"
    QCheck2.Gen.(triple (int_range 0 10) (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (opi, a, b) ->
      let op =
        List.nth
          [ Insn.Add; Insn.Sub; Insn.Imul; Insn.Div; Insn.Rem; Insn.And;
            Insn.Or; Insn.Xor; Insn.Shl; Insn.Shr; Insn.Sar ]
          opi
      in
      let direct =
        match op with
        | Insn.Add -> Some (a + b)
        | Insn.Sub -> Some (a - b)
        | Insn.Imul -> Some (a * b)
        | Insn.Div -> if b = 0 then None else Some (a / b)
        | Insn.Rem -> if b = 0 then None else Some (a mod b)
        | Insn.And -> Some (a land b)
        | Insn.Or -> Some (a lor b)
        | Insn.Xor -> Some (a lxor b)
        | Insn.Shl -> if b < 0 || b > 62 then None else Some (a lsl b)
        | Insn.Shr -> if b < 0 || b > 62 then None else Some (a lsr b)
        | Insn.Sar -> if b < 0 || b > 62 then None else Some (a asr b)
      in
      Expr.eval ~env:(fun _ -> 0) (Expr.Bin (op, Expr.const a, Expr.const b)) = direct)

(* {1 Cons / labeling solver} *)

let cons_simple_model () =
  let c = Cons.make ~cond:Insn.E ~a:(Expr.sym 0) ~b:(Expr.const 77) ~expect:true in
  match Cons.solve [ c ] with
  | Cons.Model [ (0, 77) ] -> ()
  | Cons.Model m ->
    Alcotest.failf "wrong model: %s"
      (String.concat "," (List.map (fun (v, x) -> Printf.sprintf "%d=%d" v x) m))
  | Cons.Unsat -> Alcotest.fail "should be sat"
  | Cons.Budget_exceeded -> Alcotest.fail "budget"

let cons_unsat () =
  let a = Cons.make ~cond:Insn.L ~a:(Expr.sym 0) ~b:(Expr.const 5) ~expect:true in
  let b = Cons.make ~cond:Insn.G ~a:(Expr.sym 0) ~b:(Expr.const 10) ~expect:true in
  check Alcotest.bool "contradiction" true (Cons.solve [ a; b ] = Cons.Unsat)

let cons_multi_var () =
  (* s0 + s1 = 300 with s0 > 200 *)
  let sum = Expr.bin Insn.Add (Expr.sym 0) (Expr.sym 1) in
  let cs =
    [ Cons.make ~cond:Insn.E ~a:sum ~b:(Expr.const 300) ~expect:true;
      Cons.make ~cond:Insn.G ~a:(Expr.sym 0) ~b:(Expr.const 200) ~expect:true ]
  in
  match Cons.solve cs with
  | Cons.Model m ->
    let v k = List.assoc k m in
    check Alcotest.int "sum" 300 (v 0 + v 1);
    check Alcotest.bool "bound" true (v 0 > 200)
  | Cons.Unsat | Cons.Budget_exceeded -> Alcotest.fail "solvable"

let cons_negate () =
  let c = Cons.make ~cond:Insn.E ~a:(Expr.sym 0) ~b:(Expr.const 3) ~expect:true in
  let n = Cons.negate c in
  match Cons.solve [ c; n ] with
  | Cons.Unsat -> ()
  | Cons.Model _ | Cons.Budget_exceeded -> Alcotest.fail "c and not c"

let cons_budget () =
  (* unsatisfiable over 3 unpruned vars exceeds a tiny budget *)
  let sum =
    Expr.bin Insn.Add (Expr.bin Insn.Add (Expr.sym 0) (Expr.sym 1)) (Expr.sym 2)
  in
  let c = Cons.make ~cond:Insn.E ~a:sum ~b:(Expr.const (-1)) ~expect:true in
  check Alcotest.bool "budget exceeded" true
    (Cons.solve ~budget:1000 [ c ] = Cons.Budget_exceeded)

let cons_empty () =
  check Alcotest.bool "no constraints" true (Cons.solve [] = Cons.Model [])

let models_always_satisfy =
  qtest ~count:150 "labeling models satisfy their constraints"
    QCheck2.Gen.(
      list_size (int_range 1 4)
        (triple (int_range 0 2) (int_range 0 255) bool))
    (fun spec ->
      let cs =
        List.map
          (fun (v, bound, expect) ->
            Cons.make ~cond:Insn.L ~a:(Expr.sym v) ~b:(Expr.const bound) ~expect)
          spec
      in
      match Cons.solve cs with
      | Cons.Model m ->
        let env v = List.assoc v m in
        List.for_all (fun c -> Cons.holds_under ~env c = Some true) cs
      | Cons.Unsat ->
        (* cross-check with brute force over the (<= 3) variables *)
        let vars = Cons.vars cs in
        let rec try_all assign = function
          | [] ->
            let env v = List.assoc v assign in
            List.for_all (fun c -> Cons.holds_under ~env c = Some true) cs
          | v :: rest ->
            let found = ref false in
            for x = 0 to 255 do
              if (not !found) && try_all ((v, x) :: assign) rest then found := true
            done;
            !found
        in
        not (try_all [] vars)
      | Cons.Budget_exceeded -> true)

(* {1 Engine} *)

let path_count_tree () =
  List.iter
    (fun depth ->
      let config = { Engine.default_config with symbolic_stdin = depth } in
      let r = Engine.run ~config (Workloads.Symex_targets.branch_tree ~depth) in
      check Alcotest.int
        (Printf.sprintf "2^%d paths" depth)
        (1 lsl depth) (List.length r.Engine.paths))
    [ 1; 3; 5 ]

let password_is_cracked () =
  let config = { Engine.default_config with symbolic_stdin = 4 } in
  let r = Engine.run ~config Workloads.Symex_targets.password in
  check Alcotest.int "5 paths" 5 (List.length r.Engine.paths);
  match List.find_opt (fun p -> p.Engine.end_ = Engine.Exited 1) r.Engine.paths with
  | None -> Alcotest.fail "bug not reached"
  | Some p ->
    let bytes = List.sort compare p.Engine.input in
    let recovered =
      String.init (List.length bytes) (fun i -> Char.chr (snd (List.nth bytes i)))
    in
    check Alcotest.string "recovered key" Workloads.Symex_targets.password_key recovered

let inputs_replay_concretely () =
  (* feed each discovered input back through the concrete libOS and check
     the concrete run exits with the same status *)
  let config = { Engine.default_config with symbolic_stdin = 4 } in
  let r = Engine.run ~config Workloads.Symex_targets.password in
  List.iter
    (fun (p : Engine.path_report) ->
      match p.Engine.end_ with
      | Engine.Exited expected ->
        let stdin =
          String.init 4 (fun i ->
              match List.assoc_opt i p.Engine.input with
              | Some v -> Char.chr v
              | None -> '\000')
        in
        let machine =
          Os.Libos.boot (Mem.Phys_mem.create ()) Workloads.Symex_targets.password
        in
        Os.Libos.set_stdin machine stdin;
        (match Os.Libos.run machine ~fuel:1_000_000 with
        | Os.Libos.Exited { status } ->
          check Alcotest.int "concrete replay agrees" expected status
        | other -> Alcotest.failf "unexpected %a" Os.Libos.pp_stop other)
      | _ -> ())
    r.Engine.paths

let fork_modes_equivalent () =
  (* identical path sets under Cow and Eager_copy *)
  let signature mode =
    let config =
      { Engine.default_config with symbolic_stdin = 5; fork_mode = mode }
    in
    let r = Engine.run ~config (Workloads.Symex_targets.branch_tree ~depth:5) in
    List.sort compare
      (List.map
         (fun (p : Engine.path_report) ->
           (match p.Engine.end_ with Engine.Exited s -> s | _ -> -1),
           List.sort compare p.Engine.input)
         r.Engine.paths)
  in
  check Alcotest.bool "same path signatures" true
    (signature Engine.Cow = signature Engine.Eager_copy)

let cow_copies_less () =
  let run mode =
    let config = { Engine.default_config with symbolic_stdin = 6; fork_mode = mode } in
    Engine.run ~config (Workloads.Symex_targets.branch_tree ~depth:6)
  in
  let cow = run Engine.Cow in
  let eager = run Engine.Eager_copy in
  check Alcotest.int "no eager copies under cow" 0 cow.Engine.eager_pages_copied;
  check Alcotest.bool "eager copies dwarf COW faults" true
    (eager.Engine.eager_pages_copied > 10 * cow.Engine.mem.Mem.Mem_metrics.cow_faults)

let classifier_outputs_contained () =
  let config = { Engine.default_config with symbolic_stdin = 2 } in
  let r = Engine.run ~config Workloads.Symex_targets.classifier in
  let outputs = List.sort compare (List.map (fun p -> p.Engine.output) r.Engine.paths) in
  check (Alcotest.list Alcotest.string) "one class per path" [ "H"; "L"; "M" ] outputs

let strategies_explore_same_paths () =
  let signature strategy =
    let config =
      { Engine.default_config with symbolic_stdin = 4; strategy }
    in
    let r = Engine.run ~config (Workloads.Symex_targets.branch_tree ~depth:4) in
    List.sort compare
      (List.map (fun p -> List.sort compare p.Engine.input) r.Engine.paths)
  in
  let dfs = signature `Dfs in
  check Alcotest.bool "bfs same" true (signature `Bfs = dfs);
  check Alcotest.bool "coverage same" true (signature `Coverage = dfs);
  check Alcotest.bool "random same" true (signature (`Random 3) = dfs)

let infeasible_paths_pruned () =
  (* abs_diff: |a-b| = 100 has exactly 4 path ends but the double branch
     structure creates infeasible combinations that must be pruned *)
  let config = { Engine.default_config with symbolic_stdin = 2 } in
  let r = Engine.run ~config Workloads.Symex_targets.abs_diff in
  check Alcotest.int "4 feasible paths" 4 (List.length r.Engine.paths);
  List.iter
    (fun (p : Engine.path_report) ->
      if p.Engine.end_ = Engine.Exited 7 then begin
        let v k = Option.value (List.assoc_opt k p.Engine.input) ~default:0 in
        check Alcotest.int "difference is 100" 100 (abs (v 0 - v 1))
      end)
    r.Engine.paths

let concretization_pins_addresses () =
  let config = { Engine.default_config with symbolic_stdin = 1 } in
  let r = Engine.run ~config Workloads.Symex_targets.lookup_table in
  check Alcotest.bool "concretised at least once" true (r.Engine.concretizations >= 1);
  (* in-bounds path: the load's value must match the pinned index under the
     reported model (table[i] = 3i + 5, exit = value + 100) *)
  List.iter
    (fun (p : Engine.path_report) ->
      match p.Engine.end_ with
      | Engine.Exited status when status >= 100 ->
        let idx = Option.value (List.assoc_opt 0 p.Engine.input) ~default:(-1) in
        check Alcotest.int "exit matches table entry" ((3 * idx) + 5 + 100) status
      | _ -> ())
    r.Engine.paths;
  check Alcotest.bool "has an in-bounds path" true
    (List.exists
       (fun p -> match p.Engine.end_ with Engine.Exited s -> s >= 100 | _ -> false)
       r.Engine.paths)

let solver_cache_hits () =
  let config = { Engine.default_config with symbolic_stdin = 6 } in
  let r = Engine.run ~config (Workloads.Symex_targets.branch_tree ~depth:6) in
  check Alcotest.bool "cache absorbed repeat solves" true (r.Engine.solver_cache_hits > 0)

let concretized_inputs_replay () =
  (* lookup_table inputs must replay concretely to the same exit *)
  let config = { Engine.default_config with symbolic_stdin = 1 } in
  let r = Engine.run ~config Workloads.Symex_targets.lookup_table in
  List.iter
    (fun (p : Engine.path_report) ->
      match p.Engine.end_ with
      | Engine.Exited expected ->
        let stdin =
          String.init 1 (fun k ->
              Char.chr (Option.value (List.assoc_opt k p.Engine.input) ~default:0))
        in
        let machine =
          Os.Libos.boot (Mem.Phys_mem.create ()) Workloads.Symex_targets.lookup_table
        in
        Os.Libos.set_stdin machine stdin;
        (match Os.Libos.run machine ~fuel:1_000_000 with
        | Os.Libos.Exited { status } -> check Alcotest.int "replay" expected status
        | other -> Alcotest.failf "unexpected %a" Os.Libos.pp_stop other)
      | _ -> ())
    r.Engine.paths

(* Differential check: with zero symbolic input the engine is a concrete
   interpreter and must agree with Vcpu.Interp on final register state. *)
let reg_gen = QCheck2.Gen.map Isa.Reg.of_int (QCheck2.Gen.int_range 0 3)

let safe_insn_gen =
  QCheck2.Gen.(
    oneof
      [ map2 (fun r v -> Isa.Asm.mov r (Isa.Asm.i v)) reg_gen (int_range (-1000) 1000);
        map2 (fun r s -> Isa.Asm.mov r (Isa.Asm.r s)) reg_gen reg_gen;
        map2 (fun r v -> Isa.Asm.add r (Isa.Asm.i v)) reg_gen (int_range (-50) 50);
        map2 (fun r s -> Isa.Asm.add r (Isa.Asm.r s)) reg_gen reg_gen;
        map2 (fun r s -> Isa.Asm.sub r (Isa.Asm.r s)) reg_gen reg_gen;
        map2 (fun r v -> Isa.Asm.imul r (Isa.Asm.i v)) reg_gen (int_range (-5) 5);
        map2 (fun r s -> Isa.Asm.xor r (Isa.Asm.r s)) reg_gen reg_gen;
        map2 (fun r s -> Isa.Asm.and_ r (Isa.Asm.r s)) reg_gen reg_gen;
        map2 (fun r s -> Isa.Asm.or_ r (Isa.Asm.r s)) reg_gen reg_gen;
        map (fun r -> Isa.Asm.neg r) reg_gen;
        map (fun r -> Isa.Asm.inc r) reg_gen;
        map (fun r -> Isa.Asm.not_ r) reg_gen ])

let concrete_differential =
  qtest ~count:200 "zero-symbolic engine agrees with the interpreter"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 40) safe_insn_gen)
    (fun insns ->
      (* program: straight-line ALU code, then exit(rax land 0xff) *)
      let items =
        (Isa.Asm.label "main" :: insns)
        @ [ Isa.Asm.mov Isa.Reg.rdi (Isa.Asm.r Isa.Reg.rax);
            Isa.Asm.and_ Isa.Reg.rdi (Isa.Asm.i 0xff);
            Isa.Asm.mov Isa.Reg.rax (Isa.Asm.i Os.Sys_abi.sys_exit);
            Isa.Asm.syscall ]
      in
      let image = Isa.Asm.assemble ~entry:"main" items in
      let concrete =
        let machine = Os.Libos.boot (Mem.Phys_mem.create ()) image in
        match Os.Libos.run machine ~fuel:1_000_000 with
        | Os.Libos.Exited { status } -> status
        | _ -> -1
      in
      let symbolic =
        let config = { Engine.default_config with symbolic_stdin = 0 } in
        let r = Engine.run ~config image in
        match r.Engine.paths with
        | [ { Engine.end_ = Engine.Exited status; _ } ] -> status
        | _ -> -2
      in
      concrete = symbolic)

let tests =
  [ Alcotest.test_case "expr folding" `Quick expr_folding;
    Alcotest.test_case "expr eval" `Quick expr_eval;
    Alcotest.test_case "expr vars" `Quick expr_vars;
    eval_matches_interp_semantics;
    Alcotest.test_case "cons simple model" `Quick cons_simple_model;
    Alcotest.test_case "cons unsat" `Quick cons_unsat;
    Alcotest.test_case "cons multi var" `Quick cons_multi_var;
    Alcotest.test_case "cons negate" `Quick cons_negate;
    Alcotest.test_case "cons budget" `Quick cons_budget;
    Alcotest.test_case "cons empty" `Quick cons_empty;
    models_always_satisfy;
    Alcotest.test_case "path counts" `Quick path_count_tree;
    Alcotest.test_case "password cracked" `Quick password_is_cracked;
    Alcotest.test_case "inputs replay concretely" `Quick inputs_replay_concretely;
    Alcotest.test_case "fork modes equivalent" `Quick fork_modes_equivalent;
    Alcotest.test_case "cow copies less" `Quick cow_copies_less;
    Alcotest.test_case "classifier outputs contained" `Quick classifier_outputs_contained;
    Alcotest.test_case "strategies explore same paths" `Quick strategies_explore_same_paths;
    Alcotest.test_case "infeasible pruned" `Quick infeasible_paths_pruned;
    Alcotest.test_case "concretization pins addresses" `Quick
      concretization_pins_addresses;
    Alcotest.test_case "solver cache hits" `Quick solver_cache_hits;
    Alcotest.test_case "concretized inputs replay" `Quick concretized_inputs_replay;
    concrete_differential ]
