(* ISA: encode/decode roundtrips, the assembler, the disassembler. *)

module Insn = Isa.Insn
module Reg = Isa.Reg
module Encode = Isa.Encode
module Asm = Isa.Asm

let check = Alcotest.check
let qtest ?(count = 1000) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let insn_testable = Alcotest.testable Insn.pp ( = )

let decode_string s addr =
  Encode.decode ~fetch:(fun a -> Char.code s.[a - addr]) addr

let roundtrip insn =
  let buf = Buffer.create 32 in
  Encode.encode buf insn;
  let encoded = Buffer.contents buf in
  let decoded, size = decode_string encoded 0 in
  check insn_testable "roundtrip" insn decoded;
  check Alcotest.int "size agrees" (String.length encoded) size;
  check Alcotest.int "size function" (Encode.size insn) size

let simple_roundtrips () =
  List.iter roundtrip
    [ Insn.Nop;
      Insn.Hlt;
      Insn.Syscall;
      Insn.Ret;
      Insn.Mov (Reg.rax, Insn.Imm 123456789);
      Insn.Mov (Reg.r15, Insn.Imm (-7));
      Insn.Mov (Reg.rbx, Insn.Reg Reg.rsp);
      Insn.Lea (Reg.rdi, Insn.mem ~base:Reg.rax ~index:(Reg.rcx, 8) ~disp:(-16) ());
      Insn.Ld (Insn.Q, Reg.rax, Insn.mem ~base:Reg.rbp ~disp:8 ());
      Insn.Ld (Insn.B, Reg.rax, Insn.mem ~disp:0x2000 ());
      Insn.St (Insn.Q, Insn.mem ~base:Reg.rsp (), Reg.rdx);
      Insn.St (Insn.B, Insn.mem ~index:(Reg.r9, 2) (), Reg.r10);
      Insn.Sti (Insn.Q, Insn.mem ~base:Reg.rax (), max_int);
      Insn.Sti (Insn.B, Insn.mem ~base:Reg.rax (), 255);
      Insn.Bin (Insn.Add, Reg.rax, Insn.Imm 5);
      Insn.Bin (Insn.Sar, Reg.r14, Insn.Reg Reg.rcx);
      Insn.Un (Insn.Neg, Reg.rax);
      Insn.Un (Insn.Dec, Reg.r8);
      Insn.Cmp (Reg.rax, Insn.Imm (-1));
      Insn.Test (Reg.rax, Insn.Reg Reg.rax);
      Insn.Jmp 0xdead0;
      Insn.Jcc (Insn.LE, 0x1234);
      Insn.Call 0x4000;
      Insn.Push (Insn.Reg Reg.rbp);
      Insn.Push (Insn.Imm 99);
      Insn.Pop Reg.rbp;
      Insn.Setcc (Insn.A, Reg.rax) ]

let reg_gen = QCheck2.Gen.map Reg.of_int (QCheck2.Gen.int_range 0 15)

let mem_gen =
  QCheck2.Gen.(
    map3
      (fun base index disp -> { Insn.base; index; disp })
      (opt reg_gen)
      (opt (pair reg_gen (oneofl [ 1; 2; 4; 8 ])))
      (int_range (-100000) 100000))

let operand_gen =
  QCheck2.Gen.(
    oneof [ map (fun r -> Insn.Reg r) reg_gen; map (fun v -> Insn.Imm v) int ])

let insn_gen =
  QCheck2.Gen.(
    oneof
      [ oneofl [ Insn.Nop; Insn.Hlt; Insn.Syscall; Insn.Ret ];
        map2 (fun r o -> Insn.Mov (r, o)) reg_gen operand_gen;
        map2 (fun r m -> Insn.Lea (r, m)) reg_gen mem_gen;
        map3 (fun w r m -> Insn.Ld (w, r, m)) (oneofl [ Insn.B; Insn.Q ]) reg_gen mem_gen;
        map3 (fun w m r -> Insn.St (w, m, r)) (oneofl [ Insn.B; Insn.Q ]) mem_gen reg_gen;
        map3 (fun w m v -> Insn.Sti (w, m, v)) (oneofl [ Insn.B; Insn.Q ]) mem_gen int;
        map3
          (fun op r o -> Insn.Bin (op, r, o))
          (oneofl
             [ Insn.Add; Insn.Sub; Insn.Imul; Insn.Div; Insn.Rem; Insn.And;
               Insn.Or; Insn.Xor; Insn.Shl; Insn.Shr; Insn.Sar ])
          reg_gen operand_gen;
        map2 (fun op r -> Insn.Un (op, r))
          (oneofl [ Insn.Neg; Insn.Not; Insn.Inc; Insn.Dec ]) reg_gen;
        map2 (fun r o -> Insn.Cmp (r, o)) reg_gen operand_gen;
        map2 (fun r o -> Insn.Test (r, o)) reg_gen operand_gen;
        map (fun a -> Insn.Jmp (a land 0xFFFFFF)) int;
        map2
          (fun c a -> Insn.Jcc (c, a land 0xFFFFFF))
          (oneofl
             [ Insn.E; Insn.NE; Insn.L; Insn.LE; Insn.G; Insn.GE; Insn.B;
               Insn.BE; Insn.A; Insn.AE; Insn.S; Insn.NS ])
          int;
        map (fun a -> Insn.Call (a land 0xFFFFFF)) int;
        map (fun o -> Insn.Push o) operand_gen;
        map (fun r -> Insn.Pop r) reg_gen;
        map2 (fun c r -> Insn.Setcc (c, r)) (oneofl [ Insn.E; Insn.NS ]) reg_gen ])

let encode_roundtrip_prop =
  qtest "encode/decode roundtrip for random instructions" insn_gen (fun insn ->
      let buf = Buffer.create 32 in
      Encode.encode buf insn;
      let decoded, size = decode_string (Buffer.contents buf) 0 in
      decoded = insn && size = Encode.size insn)

let stream_roundtrip =
  qtest ~count:200 "instruction streams decode back"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 30) insn_gen)
    (fun insns ->
      let code = Encode.encode_to_string insns in
      let listing = Isa.Disasm.disassemble ~code ~origin:0 () in
      List.map snd listing = insns)

let invalid_opcode () =
  match decode_string "\xEE" 0 with
  | _ -> Alcotest.fail "expected invalid opcode"
  | exception Encode.Invalid_opcode { opcode = 0xEE; _ } -> ()
  | exception Encode.Invalid_opcode _ -> Alcotest.fail "wrong opcode reported"

(* {1 Assembler} *)

let asm_labels () =
  let open Asm in
  let image =
    assemble
      [ label "start";
        jmp "end_";
        label "mid";
        nop;
        label "end_";
        hlt ]
  in
  check Alcotest.int "origin default" 0x1000 image.origin;
  check Alcotest.int "entry" 0x1000 image.entry;
  let listing = Isa.Disasm.disassemble ~code:image.code ~origin:image.origin () in
  match listing with
  | [ (_, Insn.Jmp target); (_, Insn.Nop); (addr, Insn.Hlt) ] ->
    check Alcotest.int "jmp resolves to hlt" addr target
  | _ -> Alcotest.fail "unexpected listing"

let asm_duplicate_label () =
  Alcotest.check_raises "duplicate" (Asm.Error "duplicate label \"x\"") (fun () ->
      ignore (Asm.assemble [ Asm.label "x"; Asm.label "x" ]))

let asm_undefined_label () =
  Alcotest.check_raises "undefined" (Asm.Error "undefined label \"nowhere\"")
    (fun () -> ignore (Asm.assemble [ Asm.jmp "nowhere" ]))

let asm_align_and_data () =
  let open Asm in
  let image =
    assemble [ nop; align 16; label "data"; qword 0x1122; bytes "xyz"; zeros 5 ]
  in
  let data_addr = List.assoc "data" image.symbols in
  check Alcotest.int "aligned" 0 (data_addr mod 16);
  let off = data_addr - image.origin in
  check Alcotest.int "qword lo byte" 0x22 (Char.code image.code.[off]);
  check Alcotest.string "bytes" "xyz" (String.sub image.code (off + 8) 3);
  check Alcotest.int "zeros" 0 (Char.code image.code.[off + 11])

let asm_entry_label () =
  let open Asm in
  let image = assemble ~entry:"main" [ nop; label "main"; hlt ] in
  check Alcotest.int "entry after nop" (image.origin + 1) image.entry

let tests =
  [ Alcotest.test_case "simple roundtrips" `Quick simple_roundtrips;
    encode_roundtrip_prop;
    stream_roundtrip;
    Alcotest.test_case "invalid opcode" `Quick invalid_opcode;
    Alcotest.test_case "asm labels" `Quick asm_labels;
    Alcotest.test_case "asm duplicate label" `Quick asm_duplicate_label;
    Alcotest.test_case "asm undefined label" `Quick asm_undefined_label;
    Alcotest.test_case "asm align and data" `Quick asm_align_and_data;
    Alcotest.test_case "asm entry label" `Quick asm_entry_label ]
