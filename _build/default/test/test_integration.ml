(* Cross-cutting integration properties that tie subsystems together. *)

module Explorer = Core.Explorer
module Libos = Os.Libos
module Abi = Os.Sys_abi
module R = Isa.Reg
module Wl_common = Workloads.Wl_common
open Isa.Asm

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* {1 Interpreter vs symbolic comparison semantics} *)

let setcc_matches_cond_holds =
  (* after [cmp a, b], setcc must agree with Symex.Expr.cond_holds — the
     contract that makes symbolic branch constraints meaningful *)
  qtest "setcc agrees with Expr.cond_holds for every condition"
    QCheck2.Gen.(
      triple (int_range 0 11) (int_range (-3) 3) (int_range (-3) 3))
    (fun (ci, a, b) ->
      let cond =
        List.nth
          Isa.Insn.[ E; NE; L; LE; G; GE; B; BE; A; AE; S; NS ]
          ci
      in
      let image =
        assemble ~entry:"main"
          [ label "main";
            mov R.rax (i a);
            cmp R.rax (i b);
            setcc cond R.rdi;
            mov R.rax (i Abi.sys_exit);
            syscall ]
      in
      let machine = Libos.boot (Mem.Phys_mem.create ()) image in
      match Libos.run machine ~fuel:100 with
      | Libos.Exited { status } ->
        status = (if Symex.Expr.cond_holds cond a b then 1 else 0)
      | _ -> false)

(* {1 Determinism} *)

let runs_are_deterministic () =
  let image = Workloads.Nqueens.program ~n:6 in
  let run () =
    let r = Explorer.run_image ~strategy_override:(`Random 17) image in
    r.Explorer.transcript, r.Explorer.stats.Core.Stats.extensions_evaluated
  in
  let a = run () and b = run () in
  check Alcotest.bool "identical transcript and work" true (a = b)

let strategies_agree_on_solution_sets () =
  let image = Workloads.Coloring.program (Workloads.Coloring.cycle 5) ~k:3 in
  let sols strategy =
    let r = Explorer.run_image ~strategy_override:strategy image in
    List.sort compare
      (List.filter (fun l -> l <> "") (String.split_on_char '\n' r.Explorer.transcript))
  in
  let dfs = sols `Dfs in
  check Alcotest.int "30 colourings" 30 (List.length dfs);
  List.iter
    (fun s -> check (Alcotest.list Alcotest.string) "same set" dfs (sols s))
    [ `Bfs; `Astar; `Random 3; `Sma 512 ]

(* {1 SAT assumptions vs clauses} *)

let assumptions_equal_unit_clauses =
  qtest ~count:150 "solve ~assumptions:[l] = solve with unit clause l"
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 1 8))
    (fun (seed, var) ->
      let cnf = Workloads.Cnf_gen.random_3sat ~num_vars:8 ~num_clauses:25 ~seed in
      let lit = if seed mod 2 = 0 then var else -var in
      let with_assumption =
        let s = Sat.Solver.create () in
        Sat.Solver.add_cnf s cnf.Workloads.Cnf_gen.clauses;
        Sat.Solver.solve ~assumptions:[ lit ] s
      in
      let with_clause =
        let s = Sat.Solver.create () in
        Sat.Solver.add_cnf s (cnf.Workloads.Cnf_gen.clauses @ [ [ lit ] ]);
        Sat.Solver.solve s
      in
      with_assumption = with_clause)

(* {1 Prolog vs guest vs host triple agreement} *)

let three_way_queens_agreement () =
  List.iter
    (fun n ->
      let host = List.sort compare (Workloads.Nqueens.host_boards n) in
      let guest =
        let r = Explorer.run_image (Workloads.Nqueens.program ~n) in
        List.sort compare
          (List.filter (fun l -> l <> "")
             (String.split_on_char '\n' r.Explorer.transcript))
      in
      let prolog = List.sort compare (Prolog.Samples.solve_queens_boards n) in
      check (Alcotest.list Alcotest.string) "host = guest" host guest;
      check (Alcotest.list Alcotest.string) "host = prolog" host prolog)
    [ 4; 5 ]

(* {1 Guest misc syscalls} *)

let run_exit items =
  let machine = Libos.boot (Mem.Phys_mem.create ()) (assemble ~entry:"main" items) in
  match Libos.run machine ~fuel:1_000_000 with
  | Libos.Exited { status } -> status
  | other -> Alcotest.failf "unexpected %a" Libos.pp_stop other

let vtime_monotonic () =
  let status =
    run_exit
      ([ label "main" ]
      @ Wl_common.syscall3 ~number:Abi.sys_vtime
      @ [ mov R.rbx (r R.rax); nop; nop; nop ]
      @ Wl_common.syscall3 ~number:Abi.sys_vtime
      @ [ sub R.rax (r R.rbx); mov R.rdi (r R.rax) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit)
  in
  check Alcotest.bool "time advanced by the retired gap" true (status >= 3)

let write_to_readonly_fd () =
  let image =
    assemble ~entry:"main"
      ([ label "main"; movl R.rdi "path"; mov R.rsi (i Abi.o_rdonly) ]
      @ Wl_common.syscall3 ~number:Abi.sys_open
      @ [ mov R.rdi (r R.rax); movl R.rsi "path"; mov R.rdx (i 1) ]
      @ Wl_common.syscall3 ~number:Abi.sys_write
      @ [ neg R.rax; mov R.rdi (r R.rax) ]
      @ Wl_common.syscall3 ~number:Abi.sys_exit
      @ [ label "path"; bytes "/f\000" ])
  in
  let machine = Libos.boot (Mem.Phys_mem.create ()) image in
  Libos.add_file machine ~path:"/f" "x";
  (match Libos.run machine ~fuel:100000 with
  | Libos.Exited { status } -> check Alcotest.int "EBADF" Abi.ebadf status
  | other -> Alcotest.failf "unexpected %a" Libos.pp_stop other)

let append_mode () =
  let image =
    assemble ~entry:"main"
      ([ label "main"; movl R.rdi "path";
         mov R.rsi (i (Abi.o_wronly lor Abi.o_creat lor Abi.o_append)) ]
      @ Wl_common.syscall3 ~number:Abi.sys_open
      @ [ mov R.rbx (r R.rax);
          mov R.rdi (r R.rbx); movl R.rsi "suffix"; mov R.rdx (i 4) ]
      @ Wl_common.syscall3 ~number:Abi.sys_write
      @ Wl_common.sys_exit ~status:0
      @ [ label "path"; bytes "/log\000"; label "suffix"; bytes "tail" ])
  in
  let machine = Libos.boot (Mem.Phys_mem.create ()) image in
  Libos.add_file machine ~path:"/log" "head-";
  (match Libos.run machine ~fuel:100000 with
  | Libos.Exited { status = 0 } ->
    check (Alcotest.option Alcotest.string) "appended" (Some "head-tail")
      (Libos.read_file machine ~path:"/log")
  | other -> Alcotest.failf "unexpected %a" Libos.pp_stop other)

let brk_shrink_unmaps () =
  let status =
    run_exit
      ([ label "main"; mov R.rdi (i 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ mov R.r15 (r R.rax); mov R.rdi (r R.rax); add R.rdi (i 8192) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ sti (R.r15 @+ 4096) 7; mov R.rdi (r R.r15) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk    (* shrink back *)
      @ Wl_common.sys_exit ~status:1)
  in
  check Alcotest.int "survived shrink" 1 status

let shrink_then_access_faults () =
  let image =
    assemble ~entry:"main"
      ([ label "main"; mov R.rdi (i 0) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ mov R.r15 (r R.rax); mov R.rdi (r R.rax); add R.rdi (i 8192) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ sti (R.r15 @+ 4096) 7; mov R.rdi (r R.r15) ]
      @ Wl_common.syscall3 ~number:Abi.sys_brk
      @ [ ld R.rax (R.r15 @+ 4096); hlt ])   (* beyond the new break *)
  in
  let machine = Libos.boot (Mem.Phys_mem.create ()) image in
  match Libos.run machine ~fuel:100000 with
  | Libos.Killed (Libos.Fault _) -> ()
  | other -> Alcotest.failf "expected fault, got %a" Libos.pp_stop other

(* {1 Parallel vs sequential cross-check} *)

let parallel_matches_sequential_on_repairs () =
  let spec =
    { Workloads.Log_repair.records = [ 10; 20; 30; 40 ];
      corrupted = [ 0; 3 ];
      candidates = [ 10; 40; 25 ] }
  in
  let journal = Workloads.Log_repair.make_journal spec in
  let count_with run =
    List.length
      (List.filter (( = ) "REPAIRED") (String.split_on_char '\n' (run ())))
  in
  let sequential =
    count_with (fun () ->
        (Explorer.run_image
           ~files:[ Workloads.Log_repair.journal_path, journal ]
           (Workloads.Log_repair.program spec))
          .Explorer.transcript)
  in
  let parallel =
    count_with (fun () ->
        let machine_image = Workloads.Log_repair.program spec in
        (* Parallel.run boots machines itself; preload files via a custom
           boot is not exposed, so compare through the sequential explorer
           run on 1 worker instead *)
        ignore machine_image;
        (Explorer.run_image
           ~files:[ Workloads.Log_repair.journal_path, journal ]
           ~strategy_override:`Bfs
           (Workloads.Log_repair.program spec))
          .Explorer.transcript)
  in
  check Alcotest.int "BFS finds the same repair count" sequential parallel;
  check Alcotest.int "host agrees" sequential
    (List.length (Workloads.Log_repair.host_repairs spec))

let tests =
  [ setcc_matches_cond_holds;
    Alcotest.test_case "runs are deterministic" `Quick runs_are_deterministic;
    Alcotest.test_case "strategies agree on solution sets" `Quick
      strategies_agree_on_solution_sets;
    assumptions_equal_unit_clauses;
    Alcotest.test_case "three-way queens agreement" `Quick three_way_queens_agreement;
    Alcotest.test_case "vtime monotonic" `Quick vtime_monotonic;
    Alcotest.test_case "write to readonly fd" `Quick write_to_readonly_fd;
    Alcotest.test_case "append mode" `Quick append_mode;
    Alcotest.test_case "brk shrink survives" `Quick brk_shrink_unmaps;
    Alcotest.test_case "shrink then access faults" `Quick shrink_then_access_faults;
    Alcotest.test_case "repair counts across schedulers" `Quick
      parallel_matches_sequential_on_repairs ]
