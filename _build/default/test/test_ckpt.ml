(* Checkpoint baselines: full, incremental, fork-style clone. *)

module As = Mem.Addr_space
module Phys = Mem.Phys_mem

let check = Alcotest.check

let setup pages =
  let phys = Phys.create () in
  let t = As.create phys in
  for vpn = 0 to pages - 1 do
    As.map_data t ~vpn (String.make 1 (Char.chr (vpn land 0xff)))
  done;
  phys, t

let full_restore_roundtrip () =
  let _, t = setup 8 in
  As.write_u64 t 0 111;
  let ck = Ckpt.full_capture t in
  check Alcotest.int "bytes accounted" (8 * 4096) (Ckpt.full_bytes ck);
  As.write_u64 t 0 222;
  As.map_zero t ~vpn:50;
  Ckpt.full_restore t ck;
  check Alcotest.int "value restored" 111 (As.read_u64 t 0);
  check Alcotest.bool "later mapping gone" false (As.is_mapped t ~vpn:50);
  check Alcotest.int "page population restored" 8 (As.mapped_pages t)

let full_is_isolated_from_source () =
  let _, t = setup 2 in
  let ck = Ckpt.full_capture t in
  As.write_u8 t 0 99;
  Ckpt.full_restore t ck;
  check Alcotest.int "checkpoint unaffected by later writes"
    0 (As.read_u8 t 1)

let incr_chain_restores_each_version () =
  let _, t = setup 4 in
  let chain = Ckpt.incr_start t in
  As.write_u64 t 0 1;
  Ckpt.incr_capture chain t;
  As.write_u64 t 0 2;
  As.write_u64 t 4096 22;
  Ckpt.incr_capture chain t;
  check Alcotest.int "three checkpoints" 3 (Ckpt.incr_count chain);
  Ckpt.incr_restore t chain ~index:0;
  check Alcotest.int "base" 0 (As.read_u64 t 0);
  Ckpt.incr_restore t chain ~index:1;
  check Alcotest.int "first delta" 1 (As.read_u64 t 0);
  Ckpt.incr_restore t chain ~index:2;
  check Alcotest.int "second delta" 2 (As.read_u64 t 0);
  check Alcotest.int "second page in delta" 22 (As.read_u64 t 4096)

let incr_copies_only_dirty () =
  let _, t = setup 64 in
  let chain = Ckpt.incr_start t in
  let base_bytes = Ckpt.incr_bytes chain in
  check Alcotest.int "base is full" (64 * 4096) base_bytes;
  As.write_u8 t 0 1;
  As.write_u8 t 4096 1;
  Ckpt.incr_capture chain t;
  check Alcotest.int "delta is two pages" ((64 + 2) * 4096) (Ckpt.incr_bytes chain)

let incr_bad_index () =
  let _, t = setup 1 in
  let chain = Ckpt.incr_start t in
  Alcotest.check_raises "bad index" (Invalid_argument "Ckpt.incr_restore: bad index")
    (fun () -> Ckpt.incr_restore t chain ~index:5)

let clone_is_deep () =
  let phys, t = setup 4 in
  As.write_u64 t 0 7;
  let dup = Ckpt.clone phys t in
  check Alcotest.int "clone sees value" 7 (As.read_u64 dup 0);
  As.write_u64 t 0 8;
  check Alcotest.int "clone unaffected" 7 (As.read_u64 dup 0);
  As.write_u64 dup 4096 9;
  (* setup wrote byte 1 at the start of vpn 1; the clone's write must not
     leak back *)
  check Alcotest.int "original unaffected" 1 (As.read_u64 t 4096)

let clone_costs_linear () =
  let phys, t = setup 32 in
  let m0 = Mem.Mem_metrics.copy (Phys.metrics phys) in
  let _ = Ckpt.clone phys t in
  let diff = Mem.Mem_metrics.diff (Phys.metrics phys) m0 in
  check Alcotest.int "one frame per mapped page" 32 diff.Mem.Mem_metrics.frames_allocated

let tests =
  [ Alcotest.test_case "full restore roundtrip" `Quick full_restore_roundtrip;
    Alcotest.test_case "full isolated" `Quick full_is_isolated_from_source;
    Alcotest.test_case "incremental chain" `Quick incr_chain_restores_each_version;
    Alcotest.test_case "incremental copies only dirty" `Quick incr_copies_only_dirty;
    Alcotest.test_case "incremental bad index" `Quick incr_bad_index;
    Alcotest.test_case "clone is deep" `Quick clone_is_deep;
    Alcotest.test_case "clone costs linear" `Quick clone_costs_linear ]
