(* The Prolog engine: unification, lists, arithmetic, control, n-queens. *)

module T = Prolog.Term
module M = Prolog.Machine
open T

let check = Alcotest.check

let cl nvars head body = { M.nvars; head; body }

let solve_all ?(extra = []) ~goal ~nvars () =
  let db = M.db_of_clauses (Prolog.Samples.list_clauses @ extra) in
  let solutions = ref [] in
  let _ =
    M.solve db ~goal ~nvars ~on_solution:(fun vars ->
        solutions := Array.map T.to_string vars :: !solutions;
        true)
  in
  List.rev !solutions

let count_solutions ?(extra = []) ~goal ~nvars () =
  List.length (solve_all ~extra ~goal ~nvars ())

let append_forward () =
  (* append([1,2], [3], X) *)
  let goal = cc "append" [ clist [ ci 1; ci 2 ]; clist [ ci 3 ]; cv 0 ] in
  check
    (Alcotest.list (Alcotest.array Alcotest.string))
    "append" [ [| "[1, 2, 3]" |] ]
    (solve_all ~goal ~nvars:1 ())

let append_backward () =
  (* append(X, Y, [1,2,3]) has 4 splits *)
  let goal = cc "append" [ cv 0; cv 1; clist [ ci 1; ci 2; ci 3 ] ] in
  check Alcotest.int "4 splits" 4 (count_solutions ~goal ~nvars:2 ())

let member_enumerates () =
  let goal = cc "member" [ cv 0; clist [ ci 7; ci 8; ci 9 ] ] in
  check
    (Alcotest.list (Alcotest.array Alcotest.string))
    "members in order"
    [ [| "7" |]; [| "8" |]; [| "9" |] ]
    (solve_all ~goal ~nvars:1 ())

let select_removes () =
  let goal = cc "select" [ ci 2; clist [ ci 1; ci 2; ci 3 ]; cv 0 ] in
  check
    (Alcotest.list (Alcotest.array Alcotest.string))
    "selection" [ [| "[1, 3]" |] ]
    (solve_all ~goal ~nvars:1 ())

let numlist_builds () =
  let goal = cc "numlist" [ ci 1; ci 5; cv 0 ] in
  check
    (Alcotest.list (Alcotest.array Alcotest.string))
    "range" [ [| "[1, 2, 3, 4, 5]" |] ]
    (solve_all ~goal ~nvars:1 ())

let length_works () =
  let goal = cc "length" [ clist [ ci 1; ci 1; ci 1 ]; cv 0 ] in
  check
    (Alcotest.list (Alcotest.array Alcotest.string))
    "length" [ [| "3" |] ]
    (solve_all ~goal ~nvars:1 ())

let arithmetic_is () =
  let goal =
    cc "is" [ cv 0; cc "+" [ cc "*" [ ci 6; ci 7 ]; cc "mod" [ ci 10; ci 3 ] ] ]
  in
  check
    (Alcotest.list (Alcotest.array Alcotest.string))
    "6*7 + 10 mod 3" [ [| "43" |] ]
    (solve_all ~goal ~nvars:1 ())

let comparison_guards () =
  check Alcotest.int "5 < 7 holds" 1
    (count_solutions ~goal:(cc "<" [ ci 5; ci 7 ]) ~nvars:0 ());
  check Alcotest.int "7 < 5 fails" 0
    (count_solutions ~goal:(cc "<" [ ci 7; ci 5 ]) ~nvars:0 ());
  check Alcotest.int "eval on both sides" 1
    (count_solutions ~goal:(cc "=:=" [ cc "+" [ ci 2; ci 2 ]; ci 4 ]) ~nvars:0 ())

let unification_occurs () =
  (* X = f(Y), Y = 3 ==> X = f(3) *)
  let goal =
    cc ","
      [ cc "=" [ cv 0; cc "f" [ cv 1 ] ]; cc "=" [ cv 1; ci 3 ] ]
  in
  check
    (Alcotest.list (Alcotest.array Alcotest.string))
    "structure sharing" [ [| "f(3)"; "3" |] ]
    (solve_all ~goal ~nvars:2 ())

let disjunction () =
  let goal = cc ";" [ cc "=" [ cv 0; ci 1 ]; cc "=" [ cv 0; ci 2 ] ] in
  check Alcotest.int "both branches" 2 (count_solutions ~goal ~nvars:1 ())

let cut_prunes () =
  (* p(1). p(2).  q(X) :- p(X), !.  q/1 must yield exactly one answer *)
  let extra =
    [ cl 0 (cc "p" [ ci 1 ]) [];
      cl 0 (cc "p" [ ci 2 ]) [];
      cl 1 (cc "q" [ cv 0 ]) [ cc "p" [ cv 0 ]; ca "!" ] ]
  in
  check Alcotest.int "cut commits" 1
    (count_solutions ~extra ~goal:(cc "q" [ cv 0 ]) ~nvars:1 ());
  check Alcotest.int "p itself has two" 2
    (count_solutions ~extra ~goal:(cc "p" [ cv 0 ]) ~nvars:1 ())

let cut_is_local_to_predicate () =
  (* r :- q(_), fail.  r :- true.  The cut inside q must not cut r's
     clauses. *)
  let extra =
    [ cl 0 (cc "p" [ ci 1 ]) [];
      cl 1 (cc "q" [ cv 0 ]) [ cc "p" [ cv 0 ]; ca "!" ];
      cl 1 (ca "r") [ cc "q" [ cv 0 ]; ca "fail" ];
      cl 0 (ca "r") [ ca "true" ] ]
  in
  check Alcotest.int "second r clause reached" 1
    (count_solutions ~extra ~goal:(ca "r") ~nvars:0 ())

let negation_as_failure () =
  let extra = [ cl 0 (cc "p" [ ci 1 ]) [] ] in
  check Alcotest.int "\\+ p(2) holds" 1
    (count_solutions ~extra ~goal:(cc "\\+" [ cc "p" [ ci 2 ] ]) ~nvars:0 ());
  check Alcotest.int "\\+ p(1) fails" 0
    (count_solutions ~extra ~goal:(cc "\\+" [ cc "p" [ ci 1 ] ]) ~nvars:0 ())

let between_enumerates () =
  check Alcotest.int "between 1 and 10" 10
    (count_solutions ~goal:(cc "between" [ ci 1; ci 10; cv 0 ]) ~nvars:1 ());
  check Alcotest.int "membership check" 1
    (count_solutions ~goal:(cc "between" [ ci 1; ci 10; ci 5 ]) ~nvars:0 ());
  check Alcotest.int "out of range" 0
    (count_solutions ~goal:(cc "between" [ ci 1; ci 10; ci 50 ]) ~nvars:0 ())

let var_nonvar () =
  check Alcotest.int "var on fresh" 1
    (count_solutions ~goal:(cc "var" [ cv 0 ]) ~nvars:1 ());
  check Alcotest.int "nonvar on int" 1
    (count_solutions ~goal:(cc "nonvar" [ ci 3 ]) ~nvars:0 ())

let writeln_captures () =
  let db = M.db_of_clauses Prolog.Samples.list_clauses in
  let _ =
    M.solve db
      ~goal:(cc "," [ cc "writeln" [ ci 42 ]; cc "writeln" [ ca "done" ] ])
      ~nvars:0
      ~on_solution:(fun _ -> true)
  in
  check Alcotest.string "captured output" "42\ndone\n" (M.last_output ())

let queens_counts () =
  List.iter
    (fun n ->
      let count, _ = Prolog.Samples.count_queens n in
      check Alcotest.int
        (Printf.sprintf "queens %d" n)
        (Workloads.Nqueens.expected_solutions n)
        count)
    [ 1; 2; 3; 4; 5; 6 ]

let queens_boards_match_guest () =
  check
    (Alcotest.list Alcotest.string)
    "prolog and guest agree on the solution set"
    (List.sort compare (Workloads.Nqueens.host_boards 6))
    (List.sort compare (Prolog.Samples.solve_queens_boards 6))

let solution_limit () =
  let db = M.db_of_clauses Prolog.Samples.list_clauses in
  let seen = ref 0 in
  let _ =
    M.solve db
      ~goal:(cc "between" [ ci 1; ci 1000; cv 0 ])
      ~nvars:1
      ~on_solution:(fun _ ->
        incr seen;
        !seen < 5)
  in
  check Alcotest.int "stopped by on_solution" 5 !seen

let choice_point_limit () =
  let db = M.db_of_clauses Prolog.Samples.list_clauses in
  let stats =
    M.solve db ~limit:50
      ~goal:(cc "between" [ ci 1; ci 100000; cv 0 ])
      ~nvars:1
      ~on_solution:(fun _ -> false)
  in
  ignore stats;
  check Alcotest.bool "bounded" true (stats.M.choice_points <= 51)

let trail_undoes_bindings () =
  (* member(X, [1,2]) , X =:= 2: the first binding must be undone *)
  let goal =
    cc "," [ cc "member" [ cv 0; clist [ ci 1; ci 2 ] ]; cc "=:=" [ cv 0; ci 2 ] ]
  in
  check
    (Alcotest.list (Alcotest.array Alcotest.string))
    "backtracked into second member" [ [| "2" |] ]
    (solve_all ~goal ~nvars:1 ())

let findall_collects () =
  let goal =
    cc "findall"
      [ cv 0; cc "member" [ cv 0; clist [ ci 3; ci 1; ci 2 ] ]; cv 1 ]
  in
  check
    (Alcotest.list (Alcotest.array Alcotest.string))
    "ordered collection"
    [ [| "_G0"; "[3, 1, 2]" |] ]
    (List.map
       (fun arr -> [| "_G0"; arr.(1) |])
       (solve_all ~goal ~nvars:2 ()))

let findall_empty () =
  let goal = cc "findall" [ cv 0; cc "member" [ cv 0; ca "[]" ]; cv 1 ] in
  let sols = solve_all ~goal ~nvars:2 () in
  check Alcotest.int "succeeds once" 1 (List.length sols);
  check Alcotest.string "empty list" "[]" (List.hd sols).(1)

let findall_does_not_leak_bindings () =
  (* X stays unbound after findall over member(X, ...) *)
  let goal =
    cc ","
      [ cc "findall" [ cv 0; cc "member" [ cv 0; clist [ ci 1 ] ]; cv 1 ];
        cc "var" [ cv 0 ] ]
  in
  check Alcotest.int "X unbound afterwards" 1 (count_solutions ~goal ~nvars:2 ())

let findall_with_template () =
  (* findall(p(X), member(X, [1,2]), L) -> L = [p(1), p(2)] *)
  let goal =
    cc "findall"
      [ cc "p" [ cv 0 ]; cc "member" [ cv 0; clist [ ci 1; ci 2 ] ]; cv 1 ]
  in
  let sols = solve_all ~goal ~nvars:2 () in
  check Alcotest.string "templated" "[p(1), p(2)]" (List.hd sols).(1)

let once_commits () =
  let goal = cc "once" [ cc "member" [ cv 0; clist [ ci 9; ci 8 ] ] ] in
  let sols = solve_all ~goal ~nvars:1 () in
  check Alcotest.int "single solution" 1 (List.length sols);
  check Alcotest.string "first kept" "9" (List.hd sols).(0)

let once_fails_when_goal_fails () =
  check Alcotest.int "once(fail) fails" 0
    (count_solutions ~goal:(cc "once" [ ca "fail" ]) ~nvars:0 ())

let first_arg_indexing_preserves_semantics () =
  (* clauses with mixed first-arg principals: atoms, ints, compounds, vars *)
  let extra =
    [ cl 0 (cc "kind" [ ca "apple"; ca "fruit" ]) [];
      cl 0 (cc "kind" [ ci 7; ca "number" ]) [];
      cl 1 (cc "kind" [ cc "box" [ cv 0 ]; ca "container" ]) [];
      cl 1 (cc "kind" [ cv 0; ca "anything" ]) [] ]
  in
  let answers goal =
    List.map (fun arr -> arr.(0)) (solve_all ~extra ~goal ~nvars:1 ())
  in
  check (Alcotest.list Alcotest.string) "atom key"
    [ "fruit"; "anything" ]
    (answers (cc "kind" [ ca "apple"; cv 0 ]));
  check (Alcotest.list Alcotest.string) "int key"
    [ "number"; "anything" ]
    (answers (cc "kind" [ ci 7; cv 0 ]));
  check (Alcotest.list Alcotest.string) "compound key"
    [ "container"; "anything" ]
    (answers (cc "kind" [ cc "box" [ ci 1 ]; cv 0 ]));
  check (Alcotest.list Alcotest.string) "no match falls to var clause"
    [ "anything" ]
    (answers (cc "kind" [ ca "rock"; cv 0 ]));
  (* unbound first argument must still try every clause *)
  check Alcotest.int "unbound key tries all" 4
    (count_solutions ~extra ~goal:(cc "kind" [ cv 0; cv 1 ]) ~nvars:2 ())

let indexing_reduces_choice_points () =
  let extra =
    List.init 50 (fun k -> cl 0 (cc "big" [ ci k; ci (k * k) ]) [])
  in
  let db = M.db_of_clauses extra in
  let stats =
    M.solve db ~goal:(cc "big" [ ci 49; cv 0 ]) ~nvars:1
      ~on_solution:(fun _ -> true)
  in
  check Alcotest.bool "skipped incompatible clauses" true
    (stats.M.choice_points <= 2)

let tests =
  [ Alcotest.test_case "append forward" `Quick append_forward;
    Alcotest.test_case "append backward" `Quick append_backward;
    Alcotest.test_case "member enumerates" `Quick member_enumerates;
    Alcotest.test_case "select removes" `Quick select_removes;
    Alcotest.test_case "numlist" `Quick numlist_builds;
    Alcotest.test_case "length" `Quick length_works;
    Alcotest.test_case "arithmetic is/2" `Quick arithmetic_is;
    Alcotest.test_case "comparisons" `Quick comparison_guards;
    Alcotest.test_case "unification sharing" `Quick unification_occurs;
    Alcotest.test_case "disjunction" `Quick disjunction;
    Alcotest.test_case "cut prunes" `Quick cut_prunes;
    Alcotest.test_case "cut is predicate-local" `Quick cut_is_local_to_predicate;
    Alcotest.test_case "negation as failure" `Quick negation_as_failure;
    Alcotest.test_case "between" `Quick between_enumerates;
    Alcotest.test_case "var/nonvar" `Quick var_nonvar;
    Alcotest.test_case "writeln captures" `Quick writeln_captures;
    Alcotest.test_case "queens counts" `Quick queens_counts;
    Alcotest.test_case "queens boards match guest" `Quick queens_boards_match_guest;
    Alcotest.test_case "solution limit" `Quick solution_limit;
    Alcotest.test_case "choice point limit" `Quick choice_point_limit;
    Alcotest.test_case "trail undoes bindings" `Quick trail_undoes_bindings;
    Alcotest.test_case "findall collects" `Quick findall_collects;
    Alcotest.test_case "findall empty" `Quick findall_empty;
    Alcotest.test_case "findall does not leak" `Quick findall_does_not_leak_bindings;
    Alcotest.test_case "findall template" `Quick findall_with_template;
    Alcotest.test_case "once commits" `Quick once_commits;
    Alcotest.test_case "once fails" `Quick once_fails_when_goal_fails;
    Alcotest.test_case "first-arg indexing semantics" `Quick
      first_arg_indexing_preserves_semantics;
    Alcotest.test_case "indexing reduces choice points" `Quick
      indexing_reduces_choice_points ]
