(* Difference logic and the lazy DPLL(T) loop. *)

module Dl = Smt.Dl
module F = Smt.Formula
module SS = Smt.Smt_solver

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let outcome_name = function
  | SS.Sat _ -> "sat"
  | SS.Unsat -> "unsat"
  | SS.Unknown -> "unknown"

let solve_formula f =
  let t = SS.create () in
  SS.assert_formula t f;
  SS.solve t

(* {1 Dl} *)

let dl_consistent_model () =
  (* x1 - x2 <= -1 (x1 < x2), x2 - x3 <= 0 *)
  let cs =
    [ { Dl.x = 1; y = 2; c = -1; tag = 1 }; { Dl.x = 2; y = 3; c = 0; tag = 2 } ]
  in
  match Dl.check ~num_vars:3 cs with
  | Dl.Consistent m ->
    check Alcotest.bool "x1 < x2" true (m.(1) < m.(2));
    check Alcotest.bool "x2 <= x3" true (m.(2) <= m.(3));
    check Alcotest.int "zero fixed" 0 m.(0)
  | Dl.Conflict _ -> Alcotest.fail "should be consistent"

let dl_negative_cycle () =
  (* x < y, y < z, z < x *)
  let cs =
    [ { Dl.x = 1; y = 2; c = -1; tag = 10 };
      { Dl.x = 2; y = 3; c = -1; tag = 20 };
      { Dl.x = 3; y = 1; c = -1; tag = 30 } ]
  in
  match Dl.check ~num_vars:3 cs with
  | Dl.Conflict tags ->
    check (Alcotest.list Alcotest.int) "whole cycle" [ 10; 20; 30 ]
      (List.sort compare tags)
  | Dl.Consistent _ -> Alcotest.fail "should conflict"

let dl_zero_cycle_ok () =
  (* x <= y and y <= x: consistent (zero-weight cycle) *)
  let cs =
    [ { Dl.x = 1; y = 2; c = 0; tag = 1 }; { Dl.x = 2; y = 1; c = 0; tag = 2 } ]
  in
  match Dl.check ~num_vars:2 cs with
  | Dl.Consistent m -> check Alcotest.int "equal" m.(1) m.(2)
  | Dl.Conflict _ -> Alcotest.fail "zero cycle is fine"

let dl_empty () =
  match Dl.check ~num_vars:4 [] with
  | Dl.Consistent _ -> ()
  | Dl.Conflict _ -> Alcotest.fail "empty must be consistent"

let dl_models_satisfy =
  qtest ~count:300 "Bellman-Ford models satisfy every constraint"
    QCheck2.Gen.(
      list_size (int_range 1 20)
        (triple (int_range 0 5) (int_range 0 5) (int_range (-8) 8)))
    (fun triples ->
      let cs = List.mapi (fun tag (x, y, c) -> { Dl.x; y; c; tag }) triples in
      match Dl.check ~num_vars:5 cs with
      | Dl.Consistent m -> List.for_all (fun e -> m.(e.Dl.x) - m.(e.Dl.y) <= e.Dl.c) cs
      | Dl.Conflict tags ->
        (* the reported core must itself be inconsistent *)
        let core = List.filter (fun e -> List.mem e.Dl.tag tags) cs in
        (match Dl.check ~num_vars:5 core with
        | Dl.Conflict _ -> true
        | Dl.Consistent _ -> false))

(* {1 Formula / solver} *)

let basic_sat_model () =
  let f = F.And [ F.lt 1 2; F.leq 2 3; F.eq_const 1 10; F.le_const 3 20 ] in
  match solve_formula f with
  | SS.Sat m ->
    check Alcotest.int "x1 pinned" 10 (m 1);
    check Alcotest.bool "ordering" true (m 1 < m 2 && m 2 <= m 3 && m 3 <= 20)
  | other -> Alcotest.failf "expected sat, got %s" (outcome_name other)

let cycle_unsat () =
  check Alcotest.string "lt cycle" "unsat"
    (outcome_name (solve_formula (F.And [ F.lt 1 2; F.lt 2 3; F.lt 3 1 ])))

let disjunction_needs_theory_rounds () =
  let t = SS.create () in
  SS.assert_formula t (F.And [ F.Or [ F.lt 1 2; F.lt 2 1 ]; F.eq 1 2 ]);
  check Alcotest.string "unsat" "unsat" (outcome_name (SS.solve t));
  check Alcotest.bool "took refinement rounds" true (SS.theory_rounds t >= 1)

let boolean_structure () =
  (* (a -> b) && a && !b is unsat, where a,b are atoms *)
  let a = F.lt 1 2 and b = F.lt 3 4 in
  check Alcotest.string "implication chain" "unsat"
    (outcome_name (solve_formula (F.And [ F.Imp (a, b); a; F.Not b ])));
  check Alcotest.string "iff" "sat"
    (outcome_name (solve_formula (F.Iff (a, b))))

let neq_works () =
  check Alcotest.string "x != x" "unsat" (outcome_name (solve_formula (F.neq 1 1)));
  match solve_formula (F.And [ F.neq 1 2; F.eq_const 1 5 ]) with
  | SS.Sat m -> check Alcotest.bool "differs" true (m 1 <> m 2)
  | other -> Alcotest.failf "expected sat, got %s" (outcome_name other)

let push_pop_incremental () =
  let t = SS.create () in
  SS.assert_formula t (F.And [ F.lt 1 2; F.lt 2 3 ]);
  check Alcotest.string "base" "sat" (outcome_name (SS.solve t));
  SS.push t;
  SS.assert_formula t (F.lt 3 1);
  check Alcotest.string "pushed" "unsat" (outcome_name (SS.solve t));
  SS.pop t;
  check Alcotest.string "popped" "sat" (outcome_name (SS.solve t))

let true_false_literals () =
  check Alcotest.string "true" "sat" (outcome_name (solve_formula F.True));
  check Alcotest.string "false" "unsat" (outcome_name (solve_formula F.False));
  check Alcotest.string "not false" "sat" (outcome_name (solve_formula (F.Not F.False)))

(* random small formulas cross-checked against brute-force enumeration of
   integer assignments in a small box *)
let random_formula_gen =
  let open QCheck2.Gen in
  let atom = map3 (fun x y c -> F.Atom { x; y; c }) (int_range 0 3) (int_range 0 3)
      (int_range (-4) 4)
  in
  let rec fgen depth =
    if depth = 0 then atom
    else
      oneof
        [ atom;
          map (fun f -> F.Not f) (fgen (depth - 1));
          map2 (fun a b -> F.And [ a; b ]) (fgen (depth - 1)) (fgen (depth - 1));
          map2 (fun a b -> F.Or [ a; b ]) (fgen (depth - 1)) (fgen (depth - 1)) ]
  in
  fgen 3

let rec eval_formula env = function
  | F.True -> true
  | F.False -> false
  | F.Atom { x; y; c } -> env.(x) - env.(y) <= c
  | F.Not f -> not (eval_formula env f)
  | F.And fs -> List.for_all (eval_formula env) fs
  | F.Or fs -> List.exists (eval_formula env) fs
  | F.Imp (a, b) -> (not (eval_formula env a)) || eval_formula env b
  | F.Iff (a, b) -> eval_formula env a = eval_formula env b

let brute_sat f =
  (* vars 0..3, but variable 0 is the zero constant; difference logic is
     shift-invariant and path lengths are bounded by 3 vars x |c| <= 4, so
     searching offsets in [-15,15] for vars 1..3 with env.(0) = 0 is
     exhaustive for these formulas *)
  let env = Array.make 4 0 in
  let found = ref false in
  for a = -15 to 15 do
    for b = -15 to 15 do
      for c = -15 to 15 do
        if not !found then begin
          env.(1) <- a;
          env.(2) <- b;
          env.(3) <- c;
          if eval_formula env f then found := true
        end
      done
    done
  done;
  !found

let agrees_with_brute =
  qtest ~count:150 "DPLL(T) agrees with bounded brute force" random_formula_gen
    (fun f ->
      match solve_formula f with
      | SS.Sat m ->
        let env = Array.init 4 (fun v -> if v = 0 then 0 else m v) in
        eval_formula env f
      | SS.Unsat -> not (brute_sat f)
      | SS.Unknown -> false)

let tests =
  [ Alcotest.test_case "dl consistent model" `Quick dl_consistent_model;
    Alcotest.test_case "dl negative cycle" `Quick dl_negative_cycle;
    Alcotest.test_case "dl zero cycle ok" `Quick dl_zero_cycle_ok;
    Alcotest.test_case "dl empty" `Quick dl_empty;
    dl_models_satisfy;
    Alcotest.test_case "basic sat model" `Quick basic_sat_model;
    Alcotest.test_case "cycle unsat" `Quick cycle_unsat;
    Alcotest.test_case "theory refinement" `Quick disjunction_needs_theory_rounds;
    Alcotest.test_case "boolean structure" `Quick boolean_structure;
    Alcotest.test_case "neq" `Quick neq_works;
    Alcotest.test_case "push/pop" `Quick push_pop_incremental;
    Alcotest.test_case "true/false" `Quick true_false_literals;
    agrees_with_brute ]
