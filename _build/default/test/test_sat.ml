(* The CDCL solver: correctness against brute force, learning behaviour,
   incrementality. *)

module S = Sat.Solver
module Brute = Sat.Brute
module Cnf = Workloads.Cnf_gen

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let outcome_testable =
  Alcotest.testable
    (fun fmt -> function
      | S.Sat -> Format.pp_print_string fmt "sat"
      | S.Unsat -> Format.pp_print_string fmt "unsat"
      | S.Unknown -> Format.pp_print_string fmt "unknown")
    ( = )

let solve_clauses clauses =
  let s = S.create () in
  S.add_cnf s clauses;
  S.solve s

let model_satisfies s clauses =
  let value v = Option.value (S.value s v) ~default:false in
  List.for_all (List.exists (fun l -> if l > 0 then value l else not (value (-l)))) clauses

let empty_problem_sat () =
  check outcome_testable "no clauses" S.Sat (solve_clauses [])

let empty_clause_unsat () =
  check outcome_testable "empty clause" S.Unsat (solve_clauses [ [] ])

let unit_propagation_chain () =
  let s = S.create () in
  S.add_cnf s [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ] ];
  check outcome_testable "sat" S.Sat (S.solve s);
  List.iter
    (fun v -> check (Alcotest.option Alcotest.bool) "forced true" (Some true) (S.value s v))
    [ 1; 2; 3; 4 ];
  check Alcotest.int "no decisions needed" 0 (S.stats s).S.decisions

let contradictory_units () =
  check outcome_testable "x and not x" S.Unsat (solve_clauses [ [ 5 ]; [ -5 ] ])

let tautologies_ignored () =
  let s = S.create () in
  S.add_clause s [ 1; -1 ];
  S.add_clause s [ 2 ];
  check outcome_testable "sat" S.Sat (S.solve s);
  check (Alcotest.option Alcotest.bool) "2 true" (Some true) (S.value s 2)

let duplicate_literals () =
  let s = S.create () in
  S.add_clause s [ 3; 3; 3 ];
  check outcome_testable "sat" S.Sat (S.solve s);
  check (Alcotest.option Alcotest.bool) "forced" (Some true) (S.value s 3)

let pigeonhole_unsat () =
  List.iter
    (fun holes ->
      let cnf = Cnf.pigeonhole ~holes in
      check outcome_testable
        (Printf.sprintf "php(%d,%d)" (holes + 1) holes)
        S.Unsat (solve_clauses cnf.Cnf.clauses))
    [ 2; 3; 4; 5 ]

let php_learns_clauses () =
  let cnf = Cnf.pigeonhole ~holes:5 in
  let s = S.create () in
  S.add_cnf s cnf.Cnf.clauses;
  ignore (S.solve s);
  check Alcotest.bool "learning happened" true ((S.stats s).S.learned > 10);
  check Alcotest.bool "conflicts counted" true ((S.stats s).S.conflicts > 10)

let planted_always_sat () =
  for seed = 1 to 20 do
    let cnf = Cnf.planted ~num_vars:60 ~num_clauses:240 ~seed in
    let s = S.create () in
    S.add_cnf s cnf.Cnf.clauses;
    check outcome_testable "planted sat" S.Sat (S.solve s);
    check Alcotest.bool "model valid" true (model_satisfies s cnf.Cnf.clauses)
  done

let agrees_with_brute_force =
  qtest ~count:250 "CDCL agrees with brute force on random 3-SAT"
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 10 45))
    (fun (seed, num_clauses) ->
      let cnf = Cnf.random_3sat ~num_vars:9 ~num_clauses ~seed in
      let s = S.create () in
      S.add_cnf s cnf.Cnf.clauses;
      match S.solve s with
      | S.Sat -> model_satisfies s cnf.Cnf.clauses
      | S.Unsat -> not (Brute.satisfiable ~num_vars:9 cnf.Cnf.clauses)
      | S.Unknown -> false)

let assumptions_restrict () =
  let s = S.create () in
  S.add_cnf s [ [ 1; 2 ] ];
  check outcome_testable "sat alone" S.Sat (S.solve s);
  check outcome_testable "sat under -1" S.Sat (S.solve ~assumptions:[ -1 ] s);
  check (Alcotest.option Alcotest.bool) "2 forced" (Some true) (S.value s 2);
  check outcome_testable "unsat under both negated" S.Unsat
    (S.solve ~assumptions:[ -1; -2 ] s);
  (* assumptions are not permanent *)
  check outcome_testable "sat again" S.Sat (S.solve s)

let push_pop_frames () =
  let s = S.create () in
  S.add_cnf s [ [ 1; 2 ]; [ -1; 2 ] ];
  check outcome_testable "base sat" S.Sat (S.solve s);
  S.push s;
  S.add_clause s [ -2 ];
  check Alcotest.int "one frame" 1 (S.frames s);
  check outcome_testable "frame makes it unsat" S.Unsat (S.solve s);
  S.pop s;
  check Alcotest.int "no frames" 0 (S.frames s);
  check outcome_testable "pop restores sat" S.Sat (S.solve s)

let nested_push_pop () =
  let s = S.create () in
  S.add_clause s [ 1; 2; 3 ];
  S.push s;
  S.add_clause s [ -1 ];
  S.push s;
  S.add_clause s [ -2 ];
  S.push s;
  S.add_clause s [ -3 ];
  check outcome_testable "deep unsat" S.Unsat (S.solve s);
  S.pop s;
  check outcome_testable "level 2 sat" S.Sat (S.solve s);
  check (Alcotest.option Alcotest.bool) "3 forced" (Some true) (S.value s 3);
  S.pop s;
  S.pop s;
  check outcome_testable "base sat" S.Sat (S.solve s)

let pop_without_push () =
  let s = S.create () in
  Alcotest.check_raises "no frame" (Invalid_argument "Sat.Solver.pop: no open frame")
    (fun () -> S.pop s)

let incremental_matches_scratch =
  qtest ~count:100 "push+solve equals from-scratch solve"
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (seed_p, seed_q) ->
      let p = Cnf.random_3sat ~num_vars:8 ~num_clauses:20 ~seed:seed_p in
      let q = Cnf.random_3sat ~num_vars:8 ~num_clauses:8 ~seed:seed_q in
      let incremental =
        let s = S.create () in
        S.add_cnf s p.Cnf.clauses;
        ignore (S.solve s);
        S.push s;
        S.add_cnf s q.Cnf.clauses;
        S.solve s
      in
      let scratch = solve_clauses (p.Cnf.clauses @ q.Cnf.clauses) in
      incremental = scratch)

let model_excludes_guards () =
  let s = S.create () in
  S.add_clause s [ 1 ];
  S.push s;
  S.add_clause s [ 2 ];
  check outcome_testable "sat" S.Sat (S.solve s);
  let vars = List.map fst (S.model s) in
  check Alcotest.bool "only user variables" true
    (List.for_all (fun v -> v = 1 || v = 2) vars)

let conflict_budget () =
  let cnf = Cnf.pigeonhole ~holes:7 in
  let s = S.create () in
  S.add_cnf s cnf.Cnf.clauses;
  check outcome_testable "budget exhausted" S.Unknown (S.solve ~max_conflicts:5 s)

let tests =
  [ Alcotest.test_case "empty problem" `Quick empty_problem_sat;
    Alcotest.test_case "empty clause" `Quick empty_clause_unsat;
    Alcotest.test_case "unit propagation chain" `Quick unit_propagation_chain;
    Alcotest.test_case "contradictory units" `Quick contradictory_units;
    Alcotest.test_case "tautologies ignored" `Quick tautologies_ignored;
    Alcotest.test_case "duplicate literals" `Quick duplicate_literals;
    Alcotest.test_case "pigeonhole unsat" `Quick pigeonhole_unsat;
    Alcotest.test_case "php learns clauses" `Quick php_learns_clauses;
    Alcotest.test_case "planted instances sat" `Quick planted_always_sat;
    agrees_with_brute_force;
    Alcotest.test_case "assumptions" `Quick assumptions_restrict;
    Alcotest.test_case "push/pop frames" `Quick push_pop_frames;
    Alcotest.test_case "nested push/pop" `Quick nested_push_pop;
    Alcotest.test_case "pop without push" `Quick pop_without_push;
    incremental_matches_scratch;
    Alcotest.test_case "model excludes guards" `Quick model_excludes_guards;
    Alcotest.test_case "conflict budget" `Quick conflict_budget ]
