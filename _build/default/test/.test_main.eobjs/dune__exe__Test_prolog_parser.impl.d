test/test_prolog_parser.ml: Alcotest List Printf Prolog String Workloads
