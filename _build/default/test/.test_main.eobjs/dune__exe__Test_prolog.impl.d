test/test_prolog.ml: Alcotest Array List Printf Prolog Workloads
