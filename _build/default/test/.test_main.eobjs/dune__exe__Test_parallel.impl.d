test/test_parallel.ml: Alcotest Array Core Isa List Os Printf String Workloads
