test/test_ckpt.ml: Alcotest Char Ckpt Mem String
