test/test_sat.ml: Alcotest Format List Option Printf QCheck2 QCheck_alcotest Sat Workloads
