test/test_isa.ml: Alcotest Buffer Char Isa List QCheck2 QCheck_alcotest String
