test/test_core.ml: Alcotest Array Char Core Isa List Mem Os Printf QCheck2 QCheck_alcotest String Vcpu Workloads
