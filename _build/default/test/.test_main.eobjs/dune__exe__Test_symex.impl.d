test/test_symex.ml: Alcotest Char Isa List Mem Option Os Printf QCheck2 QCheck_alcotest Stdx String Symex Workloads
