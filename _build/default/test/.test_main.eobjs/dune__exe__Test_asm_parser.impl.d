test/test_asm_parser.ml: Alcotest Char Isa List Mem Option Os Printf String
