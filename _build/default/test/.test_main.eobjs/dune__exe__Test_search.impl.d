test/test_search.ml: Alcotest Float Fun List Printf Search
