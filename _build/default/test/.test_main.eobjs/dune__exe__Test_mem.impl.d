test/test_mem.ml: Alcotest Bytes Char Fun Hashtbl List Mem QCheck2 QCheck_alcotest
