test/test_smt.ml: Alcotest Array List QCheck2 QCheck_alcotest Smt
