test/test_integration.ml: Alcotest Core Isa List Mem Os Prolog QCheck2 QCheck_alcotest Sat String Symex Workloads
