test/test_vcpu.ml: Alcotest Isa Mem String Vcpu
