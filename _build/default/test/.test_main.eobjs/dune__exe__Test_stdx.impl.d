test/test_stdx.ml: Alcotest Array Fun Hashtbl List Option QCheck2 QCheck_alcotest Stdx
