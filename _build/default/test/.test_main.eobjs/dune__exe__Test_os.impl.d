test/test_os.ml: Alcotest Char Isa Mem Option Os Vcpu Workloads
