test/test_workloads.ml: Alcotest Array Bytes Core Int64 List Mem Os Printf QCheck2 QCheck_alcotest Sat String Workloads
