(* Workload generators: CNF families, DIMACS, guest programs, host
   baselines. *)

module Cnf = Workloads.Cnf_gen
module Loc = Workloads.Locality

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let random_3sat_shape () =
  let cnf = Cnf.random_3sat ~num_vars:20 ~num_clauses:50 ~seed:1 in
  check Alcotest.int "clause count" 50 (List.length cnf.Cnf.clauses);
  List.iter
    (fun clause ->
      check Alcotest.int "width 3" 3 (List.length clause);
      let vars = List.map abs clause in
      check Alcotest.int "distinct vars" 3 (List.length (List.sort_uniq compare vars));
      List.iter
        (fun l -> check Alcotest.bool "in range" true (abs l >= 1 && abs l <= 20))
        clause)
    cnf.Cnf.clauses

let random_3sat_deterministic () =
  let a = Cnf.random_3sat ~num_vars:10 ~num_clauses:20 ~seed:7 in
  let b = Cnf.random_3sat ~num_vars:10 ~num_clauses:20 ~seed:7 in
  check Alcotest.bool "same seed" true (a.Cnf.clauses = b.Cnf.clauses);
  let c = Cnf.random_3sat ~num_vars:10 ~num_clauses:20 ~seed:8 in
  check Alcotest.bool "different seed" true (a.Cnf.clauses <> c.Cnf.clauses)

let planted_is_satisfiable =
  qtest ~count:50 "planted formulas are satisfiable"
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let cnf = Cnf.planted ~num_vars:8 ~num_clauses:40 ~seed in
      Sat.Brute.satisfiable ~num_vars:8 cnf.Cnf.clauses)

let pigeonhole_shape () =
  let cnf = Cnf.pigeonhole ~holes:3 in
  check Alcotest.int "vars" 12 cnf.Cnf.num_vars;
  (* 4 placement clauses + 3 * C(4,2) conflicts *)
  check Alcotest.int "clauses" (4 + (3 * 6)) (List.length cnf.Cnf.clauses);
  check Alcotest.bool "unsat" false (Sat.Brute.satisfiable ~num_vars:12 cnf.Cnf.clauses)

let dimacs_roundtrip =
  qtest ~count:100 "DIMACS print/parse roundtrip"
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 30))
    (fun (seed, num_clauses) ->
      let cnf = Cnf.random_3sat ~num_vars:12 ~num_clauses ~seed in
      let back = Cnf.of_dimacs (Cnf.to_dimacs cnf) in
      back.Cnf.num_vars = cnf.Cnf.num_vars && back.Cnf.clauses = cnf.Cnf.clauses)

let dimacs_rejects_garbage () =
  Alcotest.check_raises "unterminated clause"
    (Failure "Cnf_gen.of_dimacs: clause not terminated by 0") (fun () ->
      ignore (Cnf.of_dimacs "p cnf 2 1\n1 2\n"));
  Alcotest.check_raises "bad token" (Failure "Cnf_gen.of_dimacs: bad token \"xyz\"")
    (fun () -> ignore (Cnf.of_dimacs "p cnf 1 1\nxyz 0\n"))

let locality_hosts_agree () =
  let p = { Loc.depth = 3; branch = 2; touch_pages = 2; work = 10; arena_pages = 4 } in
  let undo = Loc.host_undo p in
  let eager = Loc.host_eager p in
  check Alcotest.int "same paths" undo.Loc.paths eager.Loc.paths;
  check Alcotest.int "expected paths" (Loc.expected_paths p) undo.Loc.paths;
  check Alcotest.int "same steps" undo.Loc.steps eager.Loc.steps;
  check Alcotest.int "undo copies nothing" 0 undo.Loc.bytes_copied;
  check Alcotest.int "eager copies arena per step"
    (eager.Loc.steps * p.Loc.arena_pages * 4096)
    eager.Loc.bytes_copied;
  check Alcotest.int "undo log entries"
    (undo.Loc.steps * p.Loc.touch_pages)
    undo.Loc.cells_undone

let locality_guest_matches_host () =
  let p = { Loc.depth = 3; branch = 2; touch_pages = 2; work = 5; arena_pages = 4 } in
  let r = Core.Explorer.run_image (Loc.program p) in
  check Alcotest.int "guest path count = host"
    (Loc.host_undo p).Loc.paths
    r.Core.Explorer.stats.Core.Stats.fails

let grid_host_shortest () =
  let open_maze = [| "..."; "..."; "..." |] in
  check (Alcotest.option Alcotest.int) "manhattan" (Some 4)
    (Workloads.Grid.host_shortest open_maze);
  let blocked = [| ".#"; "#." |] in
  check (Alcotest.option Alcotest.int) "disconnected" None
    (Workloads.Grid.host_shortest blocked);
  let corridor = [| "..."; "##."; "..." |] in
  check (Alcotest.option Alcotest.int) "forced detour" (Some 4)
    (Workloads.Grid.host_shortest corridor)

let grid_generate_keeps_endpoints () =
  for seed = 1 to 20 do
    let maze = Workloads.Grid.generate ~width:6 ~height:5 ~wall_density:0.9 ~seed in
    check Alcotest.int "height" 5 (Array.length maze);
    check Alcotest.int "width" 6 (String.length maze.(0));
    check Alcotest.bool "start free" true (maze.(0).[0] = '.');
    check Alcotest.bool "goal free" true (maze.(4).[5] = '.')
  done

let nqueens_host_counts () =
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "host count %d" n)
        (Workloads.Nqueens.expected_solutions n)
        (Workloads.Nqueens.host_count n))
    [ 4; 5; 6; 7; 8 ]

let subset_host_reference () =
  let sols = Workloads.Subset_sum.host_solutions ~values:[ 1; 2; 3 ] ~target:3 in
  check (Alcotest.list Alcotest.string) "both subsets" [ "001"; "110" ] sols

let coloring_refs () =
  check Alcotest.int "triangle 2-colourings" 0
    (Workloads.Coloring.host_count (Workloads.Coloring.complete 3) ~k:2);
  check Alcotest.int "triangle 3-colourings" 6
    (Workloads.Coloring.host_count (Workloads.Coloring.complete 3) ~k:3);
  (* even cycle with 2 colours: exactly 2 *)
  check Alcotest.int "C4 2-colourings" 2
    (Workloads.Coloring.host_count (Workloads.Coloring.cycle 4) ~k:2);
  check Alcotest.int "odd cycle 2-colourings" 0
    (Workloads.Coloring.host_count (Workloads.Coloring.cycle 5) ~k:2)

let increments_shape () =
  let incs = Cnf.increments ~num_vars:10 ~count:4 ~width:2 ~seed:3 in
  check Alcotest.int "batches" 4 (List.length incs);
  List.iter (fun batch -> check Alcotest.int "width" 2 (List.length batch)) incs

let guest_dpll_encoding () =
  let s = Workloads.Guest_dpll.encode_increments [ [ [ 1; -2 ] ]; [ [ 3 ] ] ] in
  (* (1 clause)(len 2)(1)(-2) + (1 clause)(len 1)(3) = 7 qwords *)
  check Alcotest.int "length" (7 * 8) (String.length s);
  check Alcotest.int "first qword is clause count" 1
    (Int64.to_int (Bytes.get_int64_le (Bytes.of_string s) 0))

let log_repair_roundtrip () =
  let spec =
    { Workloads.Log_repair.records = [ 7; 9; 11 ];
      corrupted = [ 0; 2 ];
      candidates = [ 7; 11; 13 ] }
  in
  let journal = Workloads.Log_repair.make_journal spec in
  check Alcotest.int "journal size" (8 * 4) (String.length journal);
  (match Workloads.Log_repair.decode_journal journal with
  | [ header; a; b; c ] ->
    check Alcotest.int "header is true sum" 27 header;
    check Alcotest.int "corrupted sentinel" (-1) a;
    check Alcotest.int "intact record" 9 b;
    check Alcotest.int "corrupted sentinel 2" (-1) c
  | _ -> Alcotest.fail "unexpected journal shape");
  (* host reference: pairs from {7,11,13} summing to 27 - 9 = 18: (7,11), (11,7) *)
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "host repairs" [ [ 7; 11 ]; [ 11; 7 ] ]
    (Workloads.Log_repair.host_repairs spec)

let log_repair_guest_agrees () =
  let spec =
    { Workloads.Log_repair.records = [ 7; 9; 11 ];
      corrupted = [ 0; 2 ];
      candidates = [ 7; 11; 13 ] }
  in
  let journal = Workloads.Log_repair.make_journal spec in
  let r =
    Core.Explorer.run_image
      ~files:[ Workloads.Log_repair.journal_path, journal ]
      (Workloads.Log_repair.program spec)
  in
  let repaired =
    List.length
      (List.filter (( = ) "REPAIRED")
         (String.split_on_char '\n' r.Core.Explorer.transcript))
  in
  check Alcotest.int "guest finds both repairs" 2 repaired

let log_repair_persists_first () =
  let spec =
    { Workloads.Log_repair.records = [ 5; 5 ];
      corrupted = [ 1 ];
      candidates = [ 3; 5 ] }
  in
  let journal = Workloads.Log_repair.make_journal spec in
  let machine =
    Os.Libos.boot (Mem.Phys_mem.create ())
      (Workloads.Log_repair.program ~all_solutions:false spec)
  in
  Os.Libos.add_file machine ~path:Workloads.Log_repair.journal_path journal;
  let r = Core.Explorer.run ~mode:`First_exit machine in
  (match r.Core.Explorer.outcome with
  | Core.Explorer.Stopped_first_exit 0 -> ()
  | _ -> Alcotest.fail "expected successful repair");
  match Os.Libos.read_file machine ~path:Workloads.Log_repair.repaired_path with
  | Some content ->
    check (Alcotest.list Alcotest.int) "repaired journal" [ 10; 5; 5 ]
      (Workloads.Log_repair.decode_journal content)
  | None -> Alcotest.fail "repaired file missing"

let program_validation () =
  Alcotest.check_raises "nqueens bounds"
    (Invalid_argument "Nqueens.program: n must be in [2, 9]") (fun () ->
      ignore (Workloads.Nqueens.program ~n:12));
  Alcotest.check_raises "locality arena"
    (Invalid_argument "Locality.program: touch_pages exceeds arena") (fun () ->
      ignore
        (Loc.program
           { Loc.depth = 1; branch = 1; touch_pages = 5; work = 0; arena_pages = 2 }))

let tests =
  [ Alcotest.test_case "random 3sat shape" `Quick random_3sat_shape;
    Alcotest.test_case "random 3sat deterministic" `Quick random_3sat_deterministic;
    planted_is_satisfiable;
    Alcotest.test_case "pigeonhole shape" `Quick pigeonhole_shape;
    dimacs_roundtrip;
    Alcotest.test_case "dimacs rejects garbage" `Quick dimacs_rejects_garbage;
    Alcotest.test_case "locality hosts agree" `Quick locality_hosts_agree;
    Alcotest.test_case "locality guest matches host" `Quick locality_guest_matches_host;
    Alcotest.test_case "grid host shortest" `Quick grid_host_shortest;
    Alcotest.test_case "grid generate endpoints" `Quick grid_generate_keeps_endpoints;
    Alcotest.test_case "nqueens host counts" `Quick nqueens_host_counts;
    Alcotest.test_case "subset host reference" `Quick subset_host_reference;
    Alcotest.test_case "coloring references" `Quick coloring_refs;
    Alcotest.test_case "increments shape" `Quick increments_shape;
    Alcotest.test_case "guest dpll encoding" `Quick guest_dpll_encoding;
    Alcotest.test_case "log repair roundtrip" `Quick log_repair_roundtrip;
    Alcotest.test_case "log repair guest agrees" `Quick log_repair_guest_agrees;
    Alcotest.test_case "log repair persists first" `Quick log_repair_persists_first;
    Alcotest.test_case "program validation" `Quick program_validation ]
