(* lwsnap: drive the lightweight-snapshot backtracking system from the
   command line.  Subcommands: run, solve, symex, prolog, disasm. *)

open Cmdliner

let strategy_conv =
  let parse = function
    | "dfs" -> Ok `Dfs
    | "bfs" -> Ok `Bfs
    | "astar" -> Ok `Astar
    | "sma" -> Ok (`Sma 256)
    | "wastar" -> Ok (`Wastar 2.0)
    | "beam" -> Ok (`Beam 64)
    | "random" -> Ok (`Random 42)
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt (s : Core.Explorer.strategy) =
    Format.pp_print_string fmt
      (match s with
      | `Dfs -> "dfs"
      | `Bfs -> "bfs"
      | `Astar -> "astar"
      | `Sma _ -> "sma"
      | `Wastar _ -> "wastar"
      | `Beam _ -> "beam"
      | `Dfs_bounded _ -> "dfs-bounded"
      | `Random _ -> "random"
      | `Custom _ -> "custom")
  in
  Arg.conv (parse, print)

let strategy_arg =
  Arg.(value & opt (some strategy_conv) None
       & info [ "s"; "strategy" ] ~docv:"STRATEGY"
           ~doc:"Override the guest's strategy: dfs, bfs, astar, sma, wastar, beam, random.")

let first_arg =
  Arg.(value & flag & info [ "first" ] ~doc:"Stop at the first in-scope exit.")

let size_arg ~default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Problem size.")

let build_image workload n =
  if Filename.check_suffix workload ".s" then
    if Sys.file_exists workload then begin
      let text = In_channel.with_open_text workload In_channel.input_all in
      match Isa.Asm_parser.assemble_text text with
      | image -> Ok image
      | exception Isa.Asm_parser.Parse_error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" workload line message)
      | exception Isa.Asm.Error message ->
        Error (Printf.sprintf "%s: %s" workload message)
    end
    else Error (Printf.sprintf "no such file %S" workload)
  else
  match workload with
  | "nqueens" -> Ok (Workloads.Nqueens.program ~n)
  | "coloring" -> Ok (Workloads.Coloring.program Workloads.Coloring.petersen ~k:n)
  | "counting" -> Ok (Workloads.Counting.program ~depth:n ~branch:2)
  | "grid" ->
    let maze = Workloads.Grid.generate ~width:n ~height:n ~wall_density:0.25 ~seed:7 in
    Ok (Workloads.Grid.program maze)
  | "subset" ->
    Ok (Workloads.Subset_sum.program ~all_solutions:true ~target:(3 * n)
          (List.init n (fun k -> k + 1)))
  | other -> Error (Printf.sprintf "unknown workload %S" other)

let run_cmd =
  let workload =
    Arg.(value & pos 0 string "nqueens"
         & info [] ~docv:"WORKLOAD"
             ~doc:"A built-in workload (nqueens, coloring, counting, grid, \
                   subset) or a path to a .s assembly file (see \
                   examples/guess_three.s for the dialect).")
  in
  let action workload n strategy first =
    match build_image workload n with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok image ->
      let mode = if first then `First_exit else `Run_to_completion in
      let result =
        Core.Explorer.run_image ~mode ?strategy_override:strategy image
      in
      print_string result.Core.Explorer.transcript;
      (match result.Core.Explorer.outcome with
      | Core.Explorer.Completed s -> Printf.printf "[completed, status %d]\n" s
      | Core.Explorer.Stopped_first_exit s -> Printf.printf "[first exit, status %d]\n" s
      | Core.Explorer.Aborted m -> Printf.printf "[aborted: %s]\n" m);
      Format.printf "%a@." Core.Stats.pp result.Core.Explorer.stats;
      0
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a guest search workload under the explorer.")
    Term.(const action $ workload $ size_arg ~default:6 $ strategy_arg $ first_arg)

let solve_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.cnf" ~doc:"DIMACS CNF input.")
  in
  let guest =
    Arg.(value & flag
         & info [ "guest" ]
             ~doc:"Solve inside the guest DPLL under system-level backtracking \
                   instead of the host CDCL solver.")
  in
  let action path guest =
    let text = In_channel.with_open_text path In_channel.input_all in
    let cnf = Workloads.Cnf_gen.of_dimacs text in
    if guest then begin
      let image =
        Workloads.Guest_dpll.program ~num_vars:cnf.Workloads.Cnf_gen.num_vars
          cnf.Workloads.Cnf_gen.clauses
      in
      let result = Core.Explorer.run_image ~mode:`First_exit image in
      print_string result.Core.Explorer.transcript;
      match result.Core.Explorer.outcome with
      | Core.Explorer.Stopped_first_exit _ -> 0
      | Core.Explorer.Completed s when s = Workloads.Guest_dpll.exit_unsat -> 20
      | Core.Explorer.Completed _ -> 0
      | Core.Explorer.Aborted m ->
        prerr_endline m;
        1
    end
    else begin
      let solver = Sat.Solver.create () in
      Sat.Solver.add_cnf solver cnf.Workloads.Cnf_gen.clauses;
      match Sat.Solver.solve solver with
      | Sat.Solver.Sat ->
        print_endline "SAT";
        List.iter
          (fun (v, b) -> Printf.printf "%d " (if b then v else -v))
          (Sat.Solver.model solver);
        print_newline ();
        0
      | Sat.Solver.Unsat ->
        print_endline "UNSAT";
        20
      | Sat.Solver.Unknown ->
        print_endline "UNKNOWN";
        30
    end
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve a DIMACS CNF (host CDCL or guest DPLL).")
    Term.(const action $ file $ guest)

let symex_cmd =
  let target =
    Arg.(value & pos 0 string "password"
         & info [] ~docv:"TARGET" ~doc:"One of: password, tree, classifier, absdiff.")
  in
  let eager =
    Arg.(value & flag & info [ "eager" ] ~doc:"Use eager state copies instead of COW.")
  in
  let action target eager =
    let image, stdin_bytes =
      match target with
      | "password" -> Workloads.Symex_targets.password, 4
      | "tree" -> Workloads.Symex_targets.branch_tree ~depth:6, 6
      | "classifier" -> Workloads.Symex_targets.classifier, 2
      | "absdiff" -> Workloads.Symex_targets.abs_diff, 2
      | other -> failwith (Printf.sprintf "unknown target %S" other)
    in
    let config =
      { Symex.Engine.default_config with
        symbolic_stdin = stdin_bytes;
        fork_mode = (if eager then Symex.Engine.Eager_copy else Symex.Engine.Cow) }
    in
    let r = Symex.Engine.run ~config image in
    Printf.printf "paths=%d forks=%d infeasible=%d solver_calls=%d\n"
      r.Symex.Engine.explored r.Symex.Engine.forks r.Symex.Engine.infeasible
      r.Symex.Engine.solver_calls;
    List.iter
      (fun (p : Symex.Engine.path_report) ->
        let input =
          String.concat ","
            (List.map (fun (v, x) -> Printf.sprintf "s%d=%d" v x)
               (List.sort compare p.Symex.Engine.input))
        in
        let end_ =
          match p.Symex.Engine.end_ with
          | Symex.Engine.Exited s -> Printf.sprintf "exit(%d)" s
          | Symex.Engine.Faulted m -> "fault: " ^ m
          | Symex.Engine.Unsupported m -> "unsupported: " ^ m
          | Symex.Engine.Step_limit -> "step-limit"
        in
        Printf.printf "  %-12s [%s]\n" end_ input)
      r.Symex.Engine.paths;
    0
  in
  Cmd.v (Cmd.info "symex" ~doc:"Symbolically execute a built-in target.")
    Term.(const action $ target $ eager)

let prolog_cmd =
  let consult =
    Arg.(value & opt (some file) None
         & info [ "c"; "consult" ] ~docv:"FILE.pl" ~doc:"Consult a Prolog source file.")
  in
  let query =
    Arg.(value & opt (some string) None
         & info [ "q"; "query" ] ~docv:"GOAL" ~doc:"Goal to solve, e.g. \"append(X, Y, [1, 2])\".")
  in
  let max_solutions =
    Arg.(value & opt int 10
         & info [ "max" ] ~docv:"N" ~doc:"Stop after N solutions (default 10).")
  in
  let action n consult query max_solutions =
    match query with
    | None ->
      let count, stats = Prolog.Samples.count_queens n in
      Printf.printf "%d solutions (unifications=%d backtracks=%d choice_points=%d)\n"
        count stats.Prolog.Machine.unifications stats.Prolog.Machine.backtracks
        stats.Prolog.Machine.choice_points;
      0
    | Some goal -> (
      match
        let program =
          match consult with
          | None -> []
          | Some path ->
            Prolog.Parser.parse_program
              (In_channel.with_open_text path In_channel.input_all)
        in
        let db =
          Prolog.Machine.db_of_clauses (Prolog.Samples.list_clauses @ program)
        in
        let parsed = Prolog.Parser.parse_query goal in
        let found = ref 0 in
        let _ =
          Prolog.Parser.run_query db parsed ~on_solution:(fun bindings ->
              incr found;
              if bindings = [] then print_endline "true"
              else
                print_endline
                  (String.concat ", "
                     (List.map
                        (fun (name, t) -> name ^ " = " ^ Prolog.Term.to_string t)
                        bindings));
              !found < max_solutions)
        in
        if !found = 0 then print_endline "false";
        0
      with
      | status -> status
      | exception Prolog.Parser.Error { line; message } ->
        Printf.eprintf "parse error at line %d: %s\n" line message;
        1)
  in
  Cmd.v
    (Cmd.info "prolog"
       ~doc:"Run the Prolog engine: n-queens by default, or consult a file \
             and solve a query.")
    Term.(const action $ size_arg ~default:6 $ consult $ query $ max_solutions)

let disasm_cmd =
  let workload =
    Arg.(value & pos 0 string "nqueens" & info [] ~docv:"WORKLOAD")
  in
  let action workload n =
    match build_image workload n with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok image ->
      let listing =
        Isa.Disasm.disassemble ~code:image.Isa.Asm.code ~origin:image.Isa.Asm.origin ()
      in
      Format.printf "%a" Isa.Disasm.pp_listing listing;
      0
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a workload image.")
    Term.(const action $ workload $ size_arg ~default:6)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "lwsnap" ~version:"1.0.0"
      ~doc:"Lightweight snapshots and system-level backtracking."
  in
  exit (Cmd.eval' (Cmd.group ~default info
                     [ run_cmd; solve_cmd; symex_cmd; prolog_cmd; disasm_cmd ]))
