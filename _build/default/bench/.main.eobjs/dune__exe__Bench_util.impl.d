bench/bench_util.ml: Analyze Bechamel Benchmark Hashtbl List Measure Printf String Test Time Toolkit Unix
