bench/main.ml: Array Bechamel Bench_util Ckpt Core Float Format Isa List Mem Os Printf Prolog Queue Sat Staged Stdx String Symex Sys Test Vcpu Workloads
