bench/main.mli:
