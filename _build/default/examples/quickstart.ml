(* Quickstart: the paper's Figure 1, end to end.

   We assemble the n-queens guest program (which contains no backtracking
   logic, only sys_guess / sys_guess_fail), run it under the DFS strategy,
   and print the transcript: every solution the guest printed before
   failing its way through the whole search space.

     dune exec examples/quickstart.exe -- [board size]           *)

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 6
  in
  Printf.printf "n-queens on a %dx%d board via system-level backtracking\n\n" n n;
  let image = Workloads.Nqueens.program ~n in
  let result = Core.Explorer.run_image image in
  (match result.Core.Explorer.outcome with
  | Core.Explorer.Completed 0 -> ()
  | Core.Explorer.Completed status ->
    Printf.printf "guest exited with unexpected status %d\n" status
  | Core.Explorer.Stopped_first_exit _ -> ()
  | Core.Explorer.Aborted msg -> Printf.printf "exploration aborted: %s\n" msg);
  let boards =
    List.filter (fun l -> l <> "")
      (String.split_on_char '\n' result.Core.Explorer.transcript)
  in
  List.iter (fun board -> Printf.printf "  %s\n" board) boards;
  Printf.printf "\n%d solutions (hand-coded reference says %d)\n"
    (List.length boards)
    (Workloads.Nqueens.host_count n);
  let stats = result.Core.Explorer.stats in
  Printf.printf
    "search: %d guesses, %d extensions evaluated, %d snapshots, %d restores\n"
    stats.Core.Stats.guesses stats.Core.Stats.extensions_evaluated
    stats.Core.Stats.snapshots_created stats.Core.Stats.restores;
  Printf.printf "memory: %d COW faults, %d pages copied (vs %d mapped pages)\n"
    stats.Core.Stats.mem.Mem.Mem_metrics.cow_faults
    stats.Core.Stats.mem.Mem.Mem_metrics.pages_copied
    (stats.Core.Stats.mem.Mem.Mem_metrics.frames_allocated)
