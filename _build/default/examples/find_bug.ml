(* In-vivo multi-path analysis, S2E style (§2).

   The target binary reads input and hides a bug behind a chain of
   comparisons.  The symbolic executor forks the entire machine state at
   every symbolic branch — each fork is a lightweight snapshot, so state
   forking costs one page-table grab instead of a state copy — and the
   constraint solver recovers the concrete input that reaches each path.

     dune exec examples/find_bug.exe                              *)

let pp_end = function
  | Symex.Engine.Exited s -> Printf.sprintf "exit(%d)" s
  | Symex.Engine.Faulted m -> "FAULT: " ^ m
  | Symex.Engine.Unsupported m -> "unsupported: " ^ m
  | Symex.Engine.Step_limit -> "step limit"

let input_string report =
  let bytes = List.sort compare report.Symex.Engine.input in
  String.concat "" (List.map (fun (_, v) -> Printf.sprintf "\\x%02x" v) bytes)

let () =
  print_endline "=== target 1: password check (the KLEE classic) ===";
  let config = { Symex.Engine.default_config with symbolic_stdin = 4 } in
  let result = Symex.Engine.run ~config Workloads.Symex_targets.password in
  Printf.printf "explored %d paths, %d forks, %d solver calls\n"
    result.Symex.Engine.explored result.Symex.Engine.forks
    result.Symex.Engine.solver_calls;
  List.iter
    (fun (p : Symex.Engine.path_report) ->
      Printf.printf "  path depth=%d %-10s input=%s\n" p.Symex.Engine.depth
        (pp_end p.Symex.Engine.end_) (input_string p))
    result.Symex.Engine.paths;
  (match
     List.find_opt
       (fun p -> p.Symex.Engine.end_ = Symex.Engine.Exited 1)
       result.Symex.Engine.paths
   with
  | Some bug ->
    let sorted = List.sort compare bug.Symex.Engine.input in
    let recovered = String.init (List.length sorted)
        (fun i -> Char.chr (snd (List.nth sorted i))) in
    Printf.printf "bug reached; recovered password: %S (expected %S)\n\n"
      recovered Workloads.Symex_targets.password_key
  | None -> print_endline "BUG NOT FOUND\n");

  print_endline "=== target 2: branch tree, COW vs eager state copying ===";
  List.iter
    (fun (name, mode) ->
      let config =
        { Symex.Engine.default_config with
          symbolic_stdin = 8;
          fork_mode = mode }
      in
      let r = Symex.Engine.run ~config (Workloads.Symex_targets.branch_tree ~depth:8) in
      Printf.printf
        "  %-11s: %4d paths, COW faults %5d, eagerly copied pages %6d\n" name
        (List.length r.Symex.Engine.paths) r.Symex.Engine.mem.Mem.Mem_metrics.cow_faults
        r.Symex.Engine.eager_pages_copied)
    [ "cow", Symex.Engine.Cow; "eager-copy", Symex.Engine.Eager_copy ];

  print_endline "\n=== target 3: |a - b| = 100 (solver works for its living) ===";
  let config = { Symex.Engine.default_config with symbolic_stdin = 2 } in
  let r = Symex.Engine.run ~config Workloads.Symex_targets.abs_diff in
  List.iter
    (fun (p : Symex.Engine.path_report) ->
      Printf.printf "  %-10s input=%s\n" (pp_end p.Symex.Engine.end_) (input_string p))
    r.Symex.Engine.paths
