examples/find_bug.mli:
