examples/solver_service.ml: Core List Printf Workloads
