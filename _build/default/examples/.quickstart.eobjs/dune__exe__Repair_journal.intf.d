examples/repair_journal.mli:
