examples/quickstart.ml: Array Core List Mem Printf String Sys Workloads
