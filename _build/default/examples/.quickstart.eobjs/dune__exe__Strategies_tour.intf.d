examples/strategies_tour.mli:
