examples/find_bug.ml: Char List Mem Printf String Symex Workloads
