examples/quickstart.mli:
