examples/repair_journal.ml: Core List Mem Os Printf String Workloads
