examples/strategies_tour.ml: Array Core List Printf Workloads
