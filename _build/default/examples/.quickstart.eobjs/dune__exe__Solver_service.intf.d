examples/solver_service.mli:
