(* Backtracking file repair — the file-system-checker use case of §2.

   A journal file has a checksum header and a handful of corrupted records
   (they read as -1).  The guest repair tool is a plain single-path
   program: scan the journal, guess a replacement for each corrupted
   record, verify the checksum, write the repaired file.  Everything
   search-like — undoing wrong guesses, rolling back the partially-written
   output file, restoring the input descriptor's offset — is done by the
   snapshot machinery, not the program.

     dune exec examples/repair_journal.exe                        *)

module Lr = Workloads.Log_repair
module Libos = Os.Libos

let () =
  let spec =
    { Lr.records = [ 10; 20; 30; 40; 50; 60 ];
      corrupted = [ 1; 4 ];
      candidates = [ 5; 20; 35; 50; 65 ] }
  in
  let journal = Lr.make_journal spec in
  Printf.printf "journal: %d records, sum header %d, records %d and %d corrupted\n"
    (List.length spec.Lr.records)
    (List.fold_left ( + ) 0 spec.Lr.records)
    (List.nth spec.Lr.corrupted 0) (List.nth spec.Lr.corrupted 1);
  Printf.printf "candidate repairs: %s\n\n"
    (String.concat ", " (List.map string_of_int spec.Lr.candidates));

  (* enumerate every valid repair *)
  let result =
    Core.Explorer.run_image
      ~files:[ Lr.journal_path, journal ]
      (Lr.program spec)
  in
  let repaired_count =
    List.length
      (List.filter (( = ) "REPAIRED")
         (String.split_on_char '\n' result.Core.Explorer.transcript))
  in
  Printf.printf "search found %d valid repair combination(s); host reference says %d:\n"
    repaired_count
    (List.length (Lr.host_repairs spec));
  List.iter
    (fun combo ->
      Printf.printf "  record repairs: %s\n"
        (String.concat ", " (List.map string_of_int combo)))
    (Lr.host_repairs spec);

  (* now take the first repair and keep the machine to inspect its VFS *)
  let phys = Mem.Phys_mem.create () in
  let machine = Libos.boot phys (Lr.program ~all_solutions:false spec) in
  Libos.add_file machine ~path:Lr.journal_path journal;
  let result = Core.Explorer.run ~mode:`First_exit machine in
  (match result.Core.Explorer.outcome with
  | Core.Explorer.Stopped_first_exit 0 -> (
    match Libos.read_file machine ~path:Lr.repaired_path with
    | Some content ->
      (match Lr.decode_journal content with
      | header :: records ->
        Printf.printf
          "\nfirst repair persisted to %s: header=%d records=[%s] (sum %d)\n"
          Lr.repaired_path header
          (String.concat "; " (List.map string_of_int records))
          (List.fold_left ( + ) 0 records)
      | [] -> print_endline "repaired file empty?!")
    | None -> print_endline "repaired file missing?!")
  | _ -> print_endline "no repair found");
  let stats = result.Core.Explorer.stats in
  Printf.printf
    "failed attempts left no trace: %d paths failed, each rolling back its \
     descriptor offsets and partial file writes\n"
    stats.Core.Stats.fails
