(* The multi-path incremental solver service of §3.2.

   The guest is a single-path DPLL SAT solver (lib/workloads/guest_dpll)
   that publishes a partial candidate at every decision point (arity-2
   guesses) and at every solved state (an arity-1 "yield" guess).  This
   client implements the paper's "externally controlled search strategy":
   it drives the guest's decisions with its own DFS stack, and once the
   base problem p is solved it holds an opaque reference to the solved
   state and resumes it repeatedly with *different* increments q — each
   resume solves p ∧ q starting from p's intact solver state, never from
   scratch.  Because candidate references are immutable, the three
   increment queries below all branch off the same solved-p snapshot.

     dune exec examples/solver_service.exe                        *)

module Service = Core.Service

(* One DFS stack entry: a published decision point with the next untried
   extension.  [fed] records whether the increment had been delivered on
   the path that created the entry — backtracking to a pre-increment
   decision means q must be re-fed at the next solved-state yield. *)
type entry = { cand : Service.ref_; next : int; arity : int; fed : bool }

type drive_outcome =
  | Solved of { yield : Service.ref_; model : string; stack : entry list }
  | Unsat
  | Ended of int

(* Drive the guest to the next solved state.  [increment] (if any) is
   delivered at every solved-state yield reached on a path where it has not
   been delivered yet; a yield on a fed path is the answer. *)
let drive svc ~increment ~stack outcome ~fed =
  let stack = ref stack in
  let rec go outcome ~fed =
    match outcome with
    | Service.Ready { candidate; arity; output } ->
      if arity = 1 then
        (* a solved state: either the answer, or the place to feed q *)
        (match increment with
        | Some stdin when not fed ->
          go (Service.resume svc candidate ~choice:0 ~stdin ()) ~fed:true
        | Some _ | None -> Solved { yield = candidate; model = output; stack = !stack })
      else begin
        if arity > 1 then stack := { cand = candidate; next = 1; arity; fed } :: !stack;
        go (Service.resume svc candidate ~choice:0 ()) ~fed
      end
    | Service.Failed _ -> backtrack ()
    | Service.Finished { status; _ } -> Ended status
    | Service.Crashed msg -> failwith ("guest crashed: " ^ msg)
  and backtrack () =
    match !stack with
    | [] -> Unsat
    | ({ cand; next; arity; fed } as e) :: rest ->
      stack := (if next + 1 < arity then { e with next = next + 1 } :: rest else rest);
      go (Service.resume svc cand ~choice:next ()) ~fed
  in
  go outcome ~fed

let () =
  let num_vars = 14 in
  let base = Workloads.Cnf_gen.planted ~num_vars ~num_clauses:30 ~seed:2026 in
  Printf.printf "base problem p: %d vars, %d clauses\n" num_vars
    (List.length base.Workloads.Cnf_gen.clauses);
  let image = Workloads.Guest_dpll.program ~num_vars base.Workloads.Cnf_gen.clauses in
  let svc, first = Service.boot image in
  match drive svc ~increment:None ~stack:[] first ~fed:false with
  | Unsat -> print_endline "p is UNSAT (unexpected for a planted instance)"
  | Ended status -> Printf.printf "guest ended early with status %d\n" status
  | Solved { yield = p_ref; model; stack = p_stack } ->
    Printf.printf "p solved: %s" model;
    Printf.printf
      "candidate #p is an immutable snapshot of the whole solver state (%d pages)\n\n"
      (Service.pages svc p_ref);
    let queries =
      [ "q1 = (¬x1 ∨ ¬x2)", [ [ -1; -2 ] ];
        "q2 = x13 ∧ x14", [ [ 13 ]; [ 14 ] ];
        "q3 = x1 ∧ ¬x1 (contradiction)", [ [ 1 ]; [ -1 ] ] ]
    in
    List.iter
      (fun (name, clauses) ->
        let stdin = Workloads.Guest_dpll.encode_increments [ clauses ] in
        (* every query branches off the same solved-p reference *)
        let outcome = Service.resume svc p_ref ~choice:0 ~stdin () in
        match drive svc ~increment:(Some stdin) ~stack:p_stack outcome ~fed:true with
        | Solved { model; _ } -> Printf.printf "p ∧ %-28s SAT   %s" name model
        | Unsat -> Printf.printf "p ∧ %-28s UNSAT\n" name
        | Ended status -> Printf.printf "p ∧ %-28s ended (%d)\n" name status)
      queries;
    Printf.printf "\nlive candidates: %d, backed by %d distinct physical frames\n"
      (Service.live_candidates svc) (Service.distinct_frames svc)
