(* Flexible search strategies over one unchanged guest program (§3.1).

   The same maze-walking binary runs under DFS, BFS, A*, memory-bounded
   SM-A* and a random strategy.  The guest communicates its heuristic
   (Manhattan distance to the goal) with sys_guess_hint; the strategy is
   chosen entirely outside the program — "the search strategy is
   implemented separately from the extensions or the partial candidates".

     dune exec examples/strategies_tour.exe                       *)

let () =
  let maze = Workloads.Grid.generate ~width:9 ~height:9 ~wall_density:0.28 ~seed:41 in
  Array.iter (fun row -> Printf.printf "   %s\n" row) maze;
  (match Workloads.Grid.host_shortest maze with
  | Some d -> Printf.printf "optimal path length (host BFS reference): %d\n\n" d
  | None -> print_endline "goal unreachable\n");
  let image = Workloads.Grid.program maze in
  Printf.printf "%-12s %8s %12s %12s %10s\n" "strategy" "found" "evaluated" "max live" "evicted";
  List.iter
    (fun (name, strategy) ->
      let r =
        Core.Explorer.run_image ~mode:`First_exit ~max_extensions:500_000
          ~strategy_override:strategy image
      in
      match r.Core.Explorer.outcome with
      | Core.Explorer.Stopped_first_exit len ->
        Printf.printf "%-12s %8d %12d %12d %10d\n" name len
          r.Core.Explorer.stats.Core.Stats.extensions_evaluated
          r.Core.Explorer.stats.Core.Stats.max_live_snapshots
          r.Core.Explorer.stats.Core.Stats.evicted
      | Core.Explorer.Completed 255 ->
        Printf.printf "%-12s %8s (exhausted: unreachable)\n" name "-"
      | Core.Explorer.Completed s -> Printf.printf "%-12s completed %d\n" name s
      | Core.Explorer.Aborted m -> Printf.printf "%-12s aborted: %s\n" name m)
    [ "dfs", `Dfs;
      "bfs", `Bfs;
      "astar", `Astar;
      "sma-256", `Sma 256;
      "random", `Random 7 ]
