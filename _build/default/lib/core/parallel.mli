(** Multi-worker exploration — Figure 2's architecture, simulated.

    The paper's libOS runs one evaluation thread per hardware thread, all
    scheduling extensions from a shared search graph.  Here each worker is
    a full virtual CPU with its own address space and OS state, but all
    workers allocate frames from one {!Mem.Phys_mem} — so a snapshot
    captured by one worker can be restored by any other (the page map is
    just frame references), and the generation discipline keeps their COW
    invariants sound across workers: frames inside a captured snapshot
    always belong to retired generations, so a worker restoring a sibling's
    candidate can never observe, or race with, the in-place writes of the
    worker that created it.  This is §3's "parallel depth-first-search
    strategy [that] simply forks without waiting" made safe by isolation.

    Execution is simulated round-robin: every busy worker runs a fixed
    quantum of guest instructions per round, deterministically.  The round
    count is the virtual makespan, so parallel speedup is measurable
    without host threads. *)

type config = {
  workers : int;
  quantum : int;      (** guest instructions per worker per round *)
  strategy : Explorer.strategy;
  mode : [ `Run_to_completion | `First_exit ];
  max_extensions : int;
}

val default_config : config
(** 4 workers, 20k-instruction quantum, DFS, run to completion. *)

type result = {
  outcome : Explorer.outcome;
  transcript : string;       (** all workers' stdout, in completion order *)
  terminals : Explorer.terminal list;
  rounds : int;              (** virtual makespan *)
  busy_rounds : int array;   (** per-worker rounds spent executing *)
  instructions : int;        (** total guest instructions, all workers *)
  stats : Stats.t;
}

val run : ?config:config -> Isa.Asm.image -> result
(** Boot [workers] machines over shared physical memory and explore.  The
    guest protocol is identical to {!Explorer}: worker 0 runs until
    [sys_guess_strategy]; the scope's extensions are then evaluated by all
    workers; when the frontier drains and every worker is idle, worker 0
    resumes from the root with 0 in [rax]. *)
