(** Replay-based backtracking for host OCaml code — the ablation baseline.

    Offers the same guess/fail programming model as the system calls, but
    "restores" a partial candidate by re-executing the program from the
    start along a recorded decision prefix.  No state is isolated: the
    program must be observationally deterministic and must not leak side
    effects between paths (the very bookkeeping burden §1 promises to
    remove — which is the point of measuring this baseline in E3). *)

exception Fail
(** Raised by user code to backtrack, like [sys_guess_fail]. *)

type ctx

val guess : ctx -> int -> int
(** [guess ctx n] returns an extension number in [0, n); across replays it
    enumerates all of them in DFS order.  [n <= 0] fails. *)

val fail : ctx -> 'a
(** Abandon the current path. *)

type 'a stats_result = {
  solutions : 'a list;       (** in DFS order *)
  replays : int;             (** times the program was re-executed *)
  decisions_replayed : int;  (** total prefix decisions re-taken *)
}

val run_all : ?max_solutions:int -> (ctx -> 'a) -> 'a stats_result
(** Enumerate every completed path of the program. *)

val run_first : (ctx -> 'a) -> 'a option
(** Stop at the first completed path. *)
