module Libos = Os.Libos
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg
module Frontier = Search.Frontier

type config = {
  workers : int;
  quantum : int;
  strategy : Explorer.strategy;
  mode : [ `Run_to_completion | `First_exit ];
  max_extensions : int;
}

let default_config =
  { workers = 4;
    quantum = 20_000;
    strategy = `Dfs;
    mode = `Run_to_completion;
    max_extensions = max_int }

type result = {
  outcome : Explorer.outcome;
  transcript : string;
  terminals : Explorer.terminal list;
  rounds : int;
  busy_rounds : int array;
  instructions : int;
  stats : Stats.t;
}

type worker = {
  machine : Libos.t;
  mutable busy : bool;
  mutable marker : string list;      (* stdout harvest point *)
  mutable pending_hint : int;
  mutable depth : int;
  mutable snap : Snapshot.t option;  (* candidate this path descends from *)
}

exception Abort of string
exception Done of Explorer.outcome

let run ?(config = default_config) (image : Isa.Asm.image) =
  if config.workers < 1 then invalid_arg "Parallel.run: need at least one worker";
  let phys = Mem.Phys_mem.create () in
  let stats = Stats.create () in
  let mem_before = Mem.Mem_metrics.copy (Mem.Phys_mem.metrics phys) in
  let workers =
    Array.init config.workers (fun _ ->
        let machine = Libos.boot phys image in
        { machine;
          busy = false;
          marker = Libos.stdout_chunks machine;
          pending_hint = 0;
          depth = 0;
          snap = None })
  in
  let transcript = Buffer.create 256 in
  let terminals = ref [] in
  let rounds = ref 0 in
  let busy_rounds = Array.make config.workers 0 in

  let harvest w =
    let cur = Libos.stdout_chunks w.machine in
    let rec collect acc l =
      if l == w.marker then acc
      else match l with [] -> acc | chunk :: rest -> collect (chunk :: acc) rest
    in
    let chunks = collect [] cur in
    w.marker <- cur;
    let text = String.concat "" chunks in
    Buffer.add_string transcript text;
    text
  in
  let record kind output depth =
    terminals := { Explorer.kind; output; depth } :: !terminals
  in

  let w0 = workers.(0) in

  (* Phase 1: worker 0 runs alone up to sys_guess_strategy. *)
  let to_scope () =
    match Libos.run w0.machine ~fuel:max_int with
    | Libos.Guess_strategy { strategy = id } ->
      let strat =
        match config.strategy with
        | `Dfs -> (
          (* honour the guest's id when the config keeps the default *)
          match Explorer.strategy_of_id id with
          | Some s -> s
          | None -> raise (Abort (Printf.sprintf "unknown strategy id %d" id)))
        | other -> other
      in
      ignore (harvest w0);
      Cpu.set w0.machine.Libos.cpu Reg.rax 0;
      let root = Snapshot.capture ~depth:0 w0.machine in
      stats.Stats.snapshots_created <- stats.Stats.snapshots_created + 1;
      Cpu.set w0.machine.Libos.cpu Reg.rax 1;
      root, Explorer.make_frontier strat
    | Libos.Exited { status } ->
      ignore (harvest w0);
      raise (Done (Explorer.Completed status))
    | Libos.Killed reason ->
      raise (Abort (Format.asprintf "%a" Libos.pp_reason reason))
    | Libos.Guess _ | Libos.Guess_fail | Libos.Guess_hint _ ->
      raise (Abort "guess before sys_guess_strategy")
  in

  let pop_into frontier w =
    match frontier.Frontier.pop () with
    | None -> ()
    | Some (ext : Ext.t) ->
      Snapshot.restore w.machine ext.Ext.snap;
      w.marker <- Libos.stdout_chunks w.machine;
      Cpu.set w.machine.Libos.cpu Reg.rax ext.Ext.index;
      w.depth <- ext.Ext.meta.Frontier.depth;
      w.snap <- Some ext.Ext.snap;
      w.busy <- true;
      stats.Stats.extensions_evaluated <- stats.Stats.extensions_evaluated + 1;
      stats.Stats.restores <- stats.Stats.restores + 1
  in

  (* One scheduling event for a busy worker. *)
  let handle_stop frontier w stop =
    match stop with
    | Libos.Killed Libos.Fuel_exhausted ->
      (* quantum expired; stays busy and resumes next round *)
      ()
    | Libos.Guess { n } ->
      ignore (harvest w);
      if n <= 0 then begin
        stats.Stats.fails <- stats.Stats.fails + 1;
        record Explorer.Fail "" w.depth;
        w.busy <- false;
        pop_into frontier w
      end
      else begin
        let snap = Snapshot.capture ?parent:w.snap ~depth:w.depth w.machine in
        stats.Stats.guesses <- stats.Stats.guesses + 1;
        stats.Stats.snapshots_created <- stats.Stats.snapshots_created + 1;
        let meta = { Frontier.depth = w.depth + 1; hint = w.pending_hint } in
        w.pending_hint <- 0;
        frontier.Frontier.push_batch
          (List.init n (fun index -> meta, { Ext.snap; index; meta }));
        stats.Stats.extensions_pushed <- stats.Stats.extensions_pushed + n;
        stats.Stats.max_frontier <-
          max stats.Stats.max_frontier (frontier.Frontier.length ());
        if stats.Stats.extensions_pushed > config.max_extensions then
          raise (Abort "extension budget exhausted");
        w.busy <- false;
        pop_into frontier w
      end
    | Libos.Guess_fail ->
      let output = harvest w in
      stats.Stats.fails <- stats.Stats.fails + 1;
      record Explorer.Fail output w.depth;
      w.busy <- false;
      pop_into frontier w
    | Libos.Guess_hint { dist } ->
      w.pending_hint <- dist;
      Cpu.set w.machine.Libos.cpu Reg.rax 0
    | Libos.Guess_strategy _ -> raise (Abort "nested sys_guess_strategy")
    | Libos.Exited { status } ->
      let output = harvest w in
      stats.Stats.exits <- stats.Stats.exits + 1;
      record (Explorer.Exit status) output w.depth;
      (match config.mode with
      | `First_exit -> raise (Done (Explorer.Stopped_first_exit status))
      | `Run_to_completion -> ());
      w.busy <- false;
      pop_into frontier w
    | Libos.Killed reason ->
      let output = harvest w in
      stats.Stats.kills <- stats.Stats.kills + 1;
      record (Explorer.Path_killed (Format.asprintf "%a" Libos.pp_reason reason))
        output w.depth;
      w.busy <- false;
      pop_into frontier w
  in

  let outcome =
    try
      let root, frontier = to_scope () in
      w0.busy <- true;
      w0.snap <- Some root;
      (* Phase 2: round-robin quanta until the scope drains. *)
      let continue_ = ref true in
      while !continue_ do
        incr rounds;
        let any_busy = ref false in
        Array.iteri
          (fun idx w ->
            if not w.busy then pop_into frontier w;
            if w.busy then begin
              any_busy := true;
              busy_rounds.(idx) <- busy_rounds.(idx) + 1;
              stats.Stats.evicted <-
                stats.Stats.evicted + List.length (frontier.Frontier.evicted ());
              handle_stop frontier w (Libos.run w.machine ~fuel:config.quantum)
            end)
          workers;
        if (not !any_busy) && frontier.Frontier.length () = 0 then continue_ := false
      done;
      (* Scope exhausted: resume worker 0 from the root with rax = 0. *)
      Snapshot.restore w0.machine root;
      w0.marker <- Libos.stdout_chunks w0.machine;
      stats.Stats.restores <- stats.Stats.restores + 1;
      let rec drain () =
        match Libos.run w0.machine ~fuel:max_int with
        | Libos.Exited { status } ->
          ignore (harvest w0);
          Explorer.Completed status
        | Libos.Guess_strategy _ -> raise (Abort "second sys_guess_strategy scope")
        | Libos.Guess _ | Libos.Guess_fail -> raise (Abort "guess after scope")
        | Libos.Guess_hint _ ->
          Cpu.set w0.machine.Libos.cpu Reg.rax 0;
          drain ()
        | Libos.Killed reason ->
          raise (Abort (Format.asprintf "%a" Libos.pp_reason reason))
      in
      drain ()
    with
    | Done outcome -> outcome
    | Abort message -> Explorer.Aborted message
  in
  stats.Stats.instructions <-
    Array.fold_left (fun acc w -> acc + w.machine.Libos.cpu.Cpu.retired) 0 workers;
  Mem.Mem_metrics.add stats.Stats.mem
    (Mem.Mem_metrics.diff (Mem.Phys_mem.metrics phys) mem_before);
  { outcome;
    transcript = Buffer.contents transcript;
    terminals = List.rev !terminals;
    rounds = !rounds;
    busy_rounds;
    instructions = stats.Stats.instructions;
    stats }
