type t = {
  snap : Snapshot.t;
  index : int;
  meta : Search.Frontier.meta;
}
