lib/core/explorer.mli: Ext Isa Os Search Stats
