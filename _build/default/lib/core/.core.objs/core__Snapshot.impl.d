lib/core/snapshot.ml: List Mem Os Vcpu
