lib/core/ext.ml: Search Snapshot
