lib/core/stats.mli: Format Mem
