lib/core/service.ml: Format Hashtbl Isa List Mem Option Os Printf Snapshot String Vcpu
