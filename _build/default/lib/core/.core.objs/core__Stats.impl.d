lib/core/stats.ml: Format Mem
