lib/core/service.mli: Isa Os
