lib/core/parallel.ml: Array Buffer Explorer Ext Format Isa List Mem Os Printf Search Snapshot Stats String Vcpu
