lib/core/native_bt.ml: Array List Stdx
