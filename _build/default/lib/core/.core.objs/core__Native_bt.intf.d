lib/core/native_bt.mli:
