lib/core/snapshot.mli: Mem Os Vcpu
