lib/core/explorer.ml: Buffer Ext Format Isa List Mem Option Os Printf Search Snapshot Stats String Vcpu
