lib/core/parallel.mli: Explorer Isa Stats
