lib/core/ext.mli: Search Snapshot
