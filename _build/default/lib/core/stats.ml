type t = {
  mutable guesses : int;
  mutable extensions_pushed : int;
  mutable extensions_evaluated : int;
  mutable fails : int;
  mutable exits : int;
  mutable kills : int;
  mutable snapshots_created : int;
  mutable restores : int;
  mutable evicted : int;
  mutable max_frontier : int;
  mutable max_live_snapshots : int;
  mutable instructions : int;
  mem : Mem.Mem_metrics.t;
}

let create () =
  { guesses = 0; extensions_pushed = 0; extensions_evaluated = 0; fails = 0;
    exits = 0; kills = 0; snapshots_created = 0; restores = 0; evicted = 0;
    max_frontier = 0; max_live_snapshots = 0; instructions = 0;
    mem = Mem.Mem_metrics.create () }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>guesses=%d pushed=%d evaluated=%d fails=%d exits=%d kills=%d@ \
     snapshots=%d restores=%d evicted=%d max_frontier=%d max_live=%d@ \
     instructions=%d@ %a@]"
    t.guesses t.extensions_pushed t.extensions_evaluated t.fails t.exits
    t.kills t.snapshots_created t.restores t.evicted t.max_frontier
    t.max_live_snapshots t.instructions Mem.Mem_metrics.pp t.mem
