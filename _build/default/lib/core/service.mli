(** Externally-controlled search (§3.1, §3.2): clients hold opaque
    references to partial candidates and decide which extension of which
    candidate runs next.

    This implements the paper's multi-path incremental solver service: the
    guest is a single-path program; whenever it calls [sys_guess(n)] it
    publishes a choice point.  The service captures the lightweight
    snapshot, hands the client an opaque reference, and the client later
    resumes {e any} published reference with a chosen extension number (and
    optionally fresh stdin for the guest to read its next request from).
    Solving [p] then [p ∧ q] incrementally is: resume the reference
    obtained after solving [p]. *)

type t

type ref_
(** Opaque reference to a published partial candidate. *)

type outcome =
  | Ready of { candidate : ref_; arity : int; output : string }
      (** the guest called [sys_guess(arity)] — a new choice point *)
  | Finished of { status : int; output : string }
  | Failed of { output : string }     (** the guest called [sys_guess_fail] *)
  | Crashed of string

val boot :
  ?fuel_per_step:int ->
  ?files:(string * string) list ->
  ?stdin:string ->
  Isa.Asm.image ->
  t * outcome
(** Boot the guest and run it to its first choice point (or completion). *)

val resume : t -> ref_ -> choice:int -> ?stdin:string -> unit -> outcome
(** Restore the candidate's snapshot, deliver [choice] as the guess result
    (and replace the guest's stdin if given), and run to the next event.
    A reference stays valid forever and can be resumed any number of
    times — that is the immutability guarantee. *)

val release : t -> ref_ -> unit
(** Drop a published candidate: its snapshot becomes unreachable from the
    service (frames are reclaimed once no other candidate shares them).
    Resuming a released reference raises [Invalid_argument]. *)

val depth : t -> ref_ -> int
val pages : t -> ref_ -> int
val live_candidates : t -> int
val distinct_frames : t -> int
(** Physical frames backing all published candidates together. *)

val machine : t -> Os.Libos.t
