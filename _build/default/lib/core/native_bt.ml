exception Fail

(* One execution replays a decision prefix, then takes 0 for every fresh
   guess; [trail] records (chosen, arity) for the whole path so the driver
   can compute the next prefix in DFS order. *)
type ctx = {
  prefix : int array;
  mutable position : int;
  trail : (int * int) Stdx.Vec.t;
  mutable replayed : int;
}

let guess ctx n =
  if n <= 0 then raise Fail;
  let k = ctx.position in
  ctx.position <- k + 1;
  let choice = if k < Array.length ctx.prefix then ctx.prefix.(k) else 0 in
  if k < Array.length ctx.prefix then ctx.replayed <- ctx.replayed + 1;
  if choice >= n then raise Fail;
  ignore (Stdx.Vec.push ctx.trail (choice, n));
  choice

let fail _ctx = raise Fail

type 'a stats_result = {
  solutions : 'a list;
  replays : int;
  decisions_replayed : int;
}

(* Next prefix in DFS order after a path whose trail is [trail]: increment
   the deepest decision that still has untried extensions, dropping
   everything below it.  [None] when the whole tree is exhausted. *)
let next_prefix trail =
  let rec scan i =
    if i < 0 then None
    else
      let chosen, arity = Stdx.Vec.get trail i in
      if chosen + 1 < arity then begin
        let prefix = Array.make (i + 1) 0 in
        for j = 0 to i - 1 do
          prefix.(j) <- fst (Stdx.Vec.get trail j)
        done;
        prefix.(i) <- chosen + 1;
        Some prefix
      end
      else scan (i - 1)
  in
  scan (Stdx.Vec.length trail - 1)

let run ?(max_solutions = max_int) ~stop_at_first f =
  let solutions = ref [] in
  let count = ref 0 in
  let replays = ref 0 in
  let decisions_replayed = ref 0 in
  let rec explore prefix =
    let ctx =
      { prefix;
        position = 0;
        trail = Stdx.Vec.create ~dummy:(0, 0) ();
        replayed = 0 }
    in
    incr replays;
    let finished =
      match f ctx with
      | v ->
        solutions := v :: !solutions;
        incr count;
        stop_at_first || !count >= max_solutions
      | exception Fail -> false
    in
    decisions_replayed := !decisions_replayed + ctx.replayed;
    if finished then ()
    else
      match next_prefix ctx.trail with
      | None -> ()
      | Some prefix -> explore prefix
  in
  explore [||];
  { solutions = List.rev !solutions;
    replays = !replays;
    decisions_replayed = !decisions_replayed }

let run_all ?max_solutions f = run ?max_solutions ~stop_at_first:false f

let run_first f =
  match (run ~stop_at_first:true f).solutions with
  | [] -> None
  | v :: _ -> Some v
