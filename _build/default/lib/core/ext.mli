(** A candidate extension step (§3.1): "simply a reference to their parent
    partial candidate and the extension number".  Deferred computation —
    nothing runs until a strategy schedules it. *)

type t = {
  snap : Snapshot.t;               (** the parent partial candidate *)
  index : int;                     (** the extension number *)
  meta : Search.Frontier.meta;
}
