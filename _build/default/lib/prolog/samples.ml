open Term

let cl nvars head body = { Machine.nvars; head; body }

(* append([], L, L).
   append([H|T], L, [H|R]) :- append(T, L, R). *)
let list_clauses =
  [ cl 1 (cc "append" [ ca "[]"; cv 0; cv 0 ]) [];
    cl 4
      (cc "append" [ clist_tl [ cv 0 ] (cv 1); cv 2; clist_tl [ cv 0 ] (cv 3) ])
      [ cc "append" [ cv 1; cv 2; cv 3 ] ];
    (* member(X, [X|_]).  member(X, [_|T]) :- member(X, T). *)
    cl 2 (cc "member" [ cv 0; clist_tl [ cv 0 ] (cv 1) ]) [];
    cl 3
      (cc "member" [ cv 0; clist_tl [ cv 1 ] (cv 2) ])
      [ cc "member" [ cv 0; cv 2 ] ];
    (* select(X, [X|T], T).  select(X, [H|T], [H|R]) :- select(X, T, R). *)
    cl 2 (cc "select" [ cv 0; clist_tl [ cv 0 ] (cv 1); cv 1 ]) [];
    cl 4
      (cc "select" [ cv 0; clist_tl [ cv 1 ] (cv 2); clist_tl [ cv 1 ] (cv 3) ])
      [ cc "select" [ cv 0; cv 2; cv 3 ] ];
    (* numlist(L, H, []) :- L > H, !.
       numlist(L, H, [L|T]) :- L =< H, L1 is L + 1, numlist(L1, H, T). *)
    cl 2 (cc "numlist" [ cv 0; cv 1; ca "[]" ]) [ cc ">" [ cv 0; cv 1 ]; ca "!" ];
    cl 4
      (cc "numlist" [ cv 0; cv 1; clist_tl [ cv 0 ] (cv 2) ])
      [ cc "=<" [ cv 0; cv 1 ];
        cc "is" [ cv 3; cc "+" [ cv 0; ci 1 ] ];
        cc "numlist" [ cv 3; cv 1; cv 2 ] ];
    (* length([], 0).  length([_|T], N) :- length(T, M), N is M + 1. *)
    cl 0 (cc "length" [ ca "[]"; ci 0 ]) [];
    cl 4
      (cc "length" [ clist_tl [ cv 0 ] (cv 1); cv 2 ])
      [ cc "length" [ cv 1; cv 3 ]; cc "is" [ cv 2; cc "+" [ cv 3; ci 1 ] ] ] ]

(* queens(N, Qs) :- numlist(1, N, Ns), place(Ns, [], Qs).
   place([], Qs, Qs).
   place(Unplaced, Safe, Qs) :-
       select(Q, Unplaced, Rest),
       no_attack(Safe, Q, 1),
       place(Rest, [Q|Safe], Qs).
   no_attack([], _, _).
   no_attack([Y|Ys], Q, D) :-
       Q =\= Y + D, Q =\= Y - D, D1 is D + 1, no_attack(Ys, Q, D1). *)
let queens_clauses =
  [ cl 3
      (cc "queens" [ cv 0; cv 1 ])
      [ cc "numlist" [ ci 1; cv 0; cv 2 ]; cc "place" [ cv 2; ca "[]"; cv 1 ] ];
    cl 1 (cc "place" [ ca "[]"; cv 0; cv 0 ]) [];
    cl 5
      (cc "place" [ cv 0; cv 1; cv 2 ])
      [ cc "select" [ cv 3; cv 0; cv 4 ];
        cc "no_attack" [ cv 1; cv 3; ci 1 ];
        cc "place" [ cv 4; clist_tl [ cv 3 ] (cv 1); cv 2 ] ];
    cl 2 (cc "no_attack" [ ca "[]"; cv 0; cv 1 ]) [];
    cl 5
      (cc "no_attack" [ clist_tl [ cv 0 ] (cv 1); cv 2; cv 3 ])
      [ cc "=\\=" [ cv 2; cc "+" [ cv 0; cv 3 ] ];
        cc "=\\=" [ cv 2; cc "-" [ cv 0; cv 3 ] ];
        cc "is" [ cv 4; cc "+" [ cv 3; ci 1 ] ];
        cc "no_attack" [ cv 1; cv 2; cv 4 ] ] ]

let full_db = Machine.db_of_clauses (list_clauses @ queens_clauses)

let count_queens n =
  let count = ref 0 in
  let stats =
    Machine.solve full_db
      ~goal:(cc "queens" [ ci n; cv 0 ])
      ~nvars:1
      ~on_solution:(fun _ ->
        incr count;
        true)
  in
  !count, stats

let solve_queens_boards n =
  let boards = ref [] in
  let _ =
    Machine.solve full_db
      ~goal:(cc "queens" [ ci n; cv 0 ])
      ~nvars:1
      ~on_solution:(fun vars ->
        (match Term.to_list vars.(0) with
        | Some items ->
          (* the program builds Qs with the last-placed queen first; queen
             values are rows (1-based) listed per column from last to
             first *)
          let rows =
            List.filter_map (function Term.Int i -> Some (i - 1) | _ -> None) items
          in
          let cols = List.rev rows in
          boards :=
            String.init (List.length cols) (fun c ->
                Char.chr (Char.code '0' + List.nth cols c))
            :: !boards
        | None -> ());
        true)
  in
  List.rev !boards
