type t =
  | Atom of string
  | Int of int
  | Var of binding ref
  | Compound of string * t array

and binding = Unbound of int | Bound of t

type cterm =
  | CAtom of string
  | CInt of int
  | CVar of int
  | CCompound of string * cterm array

let var_counter = ref 0

let fresh_var () =
  incr var_counter;
  Var (ref (Unbound !var_counter))

let rec deref t =
  match t with
  | Var { contents = Bound inner } -> deref inner
  | Var { contents = Unbound _ } | Atom _ | Int _ | Compound _ -> t

let instantiate ~nvars template =
  let vars = Array.init nvars (fun _ -> fresh_var ()) in
  let rec go = function
    | CAtom a -> Atom a
    | CInt i -> Int i
    | CVar k -> vars.(k)
    | CCompound (f, args) -> Compound (f, Array.map go args)
  in
  go template

let instantiate_all ~nvars templates =
  let vars = Array.init nvars (fun _ -> fresh_var ()) in
  let rec go = function
    | CAtom a -> Atom a
    | CInt i -> Int i
    | CVar k -> vars.(k)
    | CCompound (f, args) -> Compound (f, Array.map go args)
  in
  List.map go templates

let nil = Atom "[]"
let cons h t = Compound (".", [| h; t |])
let list_of items = List.fold_right cons items nil

let rec to_list t =
  match deref t with
  | Atom "[]" -> Some []
  | Compound (".", [| h; tl |]) ->
    Option.map (fun rest -> deref h :: rest) (to_list tl)
  | Atom _ | Int _ | Var _ | Compound _ -> None

let ca a = CAtom a
let ci i = CInt i
let cv k = CVar k
let cc f args = CCompound (f, Array.of_list args)
let clist items = List.fold_right (fun h t -> cc "." [ h; t ]) items (ca "[]")
let clist_tl items tail = List.fold_right (fun h t -> cc "." [ h; t ]) items tail

let copy t =
  let mapping : (binding ref * t) list ref = ref [] in
  let rec go t =
    match deref t with
    | Atom _ | Int _ -> deref t
    | Var r -> (
      match List.assq_opt r !mapping with
      | Some fresh -> fresh
      | None ->
        let fresh = fresh_var () in
        mapping := (r, fresh) :: !mapping;
        fresh)
    | Compound (f, args) -> Compound (f, Array.map go args)
  in
  go t

let rec pp fmt t =
  match deref t with
  | Atom a -> Format.pp_print_string fmt a
  | Int i -> Format.pp_print_int fmt i
  | Var { contents = Unbound id } -> Format.fprintf fmt "_G%d" id
  | Var { contents = Bound _ } -> assert false
  | Compound (".", [| _; _ |]) as l -> pp_list fmt l
  | Compound (f, args) ->
    Format.fprintf fmt "%s(" f;
    Array.iteri
      (fun k arg ->
        if k > 0 then Format.pp_print_string fmt ", ";
        pp fmt arg)
      args;
    Format.pp_print_string fmt ")"

and pp_list fmt l =
  Format.pp_print_char fmt '[';
  let rec go first t =
    match deref t with
    | Atom "[]" -> ()
    | Compound (".", [| h; tl |]) ->
      if not first then Format.pp_print_string fmt ", ";
      pp fmt h;
      go false tl
    | other ->
      Format.pp_print_char fmt '|';
      pp fmt other
  in
  go true l;
  Format.pp_print_char fmt ']'

let to_string t = Format.asprintf "%a" pp t
