(** Prolog terms with mutable variable bindings (structure sharing).

    Clause templates ({!cterm}) use numbered variables and are instantiated
    with fresh mutable variables at each use, the standard interpreter
    design whose trail-based backtracking is E1's software comparator. *)

type t =
  | Atom of string
  | Int of int
  | Var of binding ref
  | Compound of string * t array

and binding = Unbound of int | Bound of t

(** Clause template representation (closed, immutable). *)
type cterm =
  | CAtom of string
  | CInt of int
  | CVar of int
  | CCompound of string * cterm array

val fresh_var : unit -> t
val deref : t -> t
(** Follow bound-variable chains to the representative term. *)

val instantiate : nvars:int -> cterm -> t
val instantiate_all : nvars:int -> cterm list -> t list

(** {1 List helpers} *)

val nil : t
val cons : t -> t -> t
val list_of : t list -> t
val to_list : t -> t list option
(** [None] if the term is not a proper list. *)

(** {1 Template construction sugar} *)

val ca : string -> cterm
val ci : int -> cterm
val cv : int -> cterm
val cc : string -> cterm list -> cterm
val clist : cterm list -> cterm
val clist_tl : cterm list -> cterm -> cterm

val copy : t -> t
(** Deep copy with fresh variables for the unbound ones (preserving
    sharing), as [findall/3] needs to capture solutions. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
