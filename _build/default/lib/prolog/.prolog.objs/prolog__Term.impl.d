lib/prolog/term.ml: Array Format List Option
