lib/prolog/machine.mli: Term
