lib/prolog/parser.ml: Array Buffer Format List Machine String Term
