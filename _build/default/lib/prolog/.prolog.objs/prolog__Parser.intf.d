lib/prolog/parser.mli: Machine Term
