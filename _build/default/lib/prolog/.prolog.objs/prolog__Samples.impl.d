lib/prolog/samples.ml: Array Char List Machine String Term
