lib/prolog/term.mli: Format
