lib/prolog/machine.ml: Array Buffer Hashtbl List Option Stdx String Term
