lib/prolog/samples.mli: Machine
