(** The Prolog engine: unification with a trail, SLD resolution with
    chronological backtracking and WAM-style first-argument indexing, cut,
    and the arithmetic builtins needed by classic programs.  This is the software backtracking machine §5
    compares the prototype against ("a Prolog implementation running on
    XSB"); every choice point costs a trail mark and every backtrack
    unwinds bindings one by one — the bookkeeping the paper's snapshots
    replace with page-table work. *)

type clause = {
  nvars : int;          (** template variables in head and body *)
  head : Term.cterm;
  body : Term.cterm list;
}

type db

val db_of_clauses : clause list -> db
(** Clauses are tried in list order, grouped by head functor/arity. *)

type stats = {
  mutable unifications : int;
  mutable backtracks : int;
  mutable trail_writes : int;
  mutable choice_points : int;
}

val solve :
  ?limit:int ->
  db ->
  goal:Term.cterm ->
  nvars:int ->
  on_solution:(Term.t array -> bool) ->
  stats
(** Prove [goal] (a template over [nvars] variables).  [on_solution]
    receives the instantiated template variables and returns [true] to
    continue searching for more answers.  [limit] bounds choice points.

    Builtins: [true/0], [fail/0], [,/2] via clause bodies, [;/2], [=/2],
    [is/2] (with [+ - * // mod abs max min]), comparisons
    [=:= =\= < =< > >=], [!/0], [\+/1], [once/1], [findall/3],
    [between/3], [var/1], [nonvar/1], [writeln/1], [write/1] and [nl/0]
    (output captured; see {!last_output}). *)

val last_output : unit -> string
(** Text written by [write]/[writeln] during the most recent [solve]. *)
