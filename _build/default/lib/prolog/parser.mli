(** A parser for the Prolog subset the engine executes.

    Supported syntax: facts and rules ([head :- body.]), conjunction [,],
    disjunction [;], cut [!], negation [\+], unification [=], arithmetic
    [is] with [+ - * // mod] and comparisons [< =< > >= =:= =\=], lists
    [[a, b | T]], integers, atoms (lowercase or single-quoted), variables
    (capitalised or [_]), and [%]-to-end-of-line comments.

    Operator precedences follow ISO: [:-] 1200, [;] 1100, [,] 1000,
    comparisons and [is] 700, additive 500, multiplicative 400, [\+] 900
    prefix, [-] prefix for negative literals. *)

exception Error of { line : int; message : string }

val parse_program : string -> Machine.clause list
(** Parse clauses terminated by ['.'].
    @raise Error with a 1-based line number. *)

type query = {
  goal : Term.cterm;
  nvars : int;
  var_names : (int * string) list;  (** template index -> source name *)
}

val parse_query : string -> query
(** Parse one goal term (a trailing ['.'] is optional). *)

val run_query :
  ?limit:int ->
  Machine.db ->
  query ->
  on_solution:((string * Term.t) list -> bool) ->
  Machine.stats
(** Solve the query, reporting named variable bindings per solution. *)
