module Vec = Stdx.Vec

type clause = {
  nvars : int;
  head : Term.cterm;
  body : Term.cterm list;
}

type db = (string * int, clause list) Hashtbl.t

let functor_of = function
  | Term.CAtom a -> a, 0
  | Term.CCompound (f, args) -> f, Array.length args
  | Term.CInt _ | Term.CVar _ -> invalid_arg "Prolog: clause head must be callable"

let db_of_clauses clauses =
  let db : db = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let key = functor_of c.head in
      let existing = Option.value (Hashtbl.find_opt db key) ~default:[] in
      Hashtbl.replace db key (existing @ [ c ]))
    clauses;
  db

type stats = {
  mutable unifications : int;
  mutable backtracks : int;
  mutable trail_writes : int;
  mutable choice_points : int;
}

exception Stop
exception Cut_signal of int
exception Eval_error of string

let output_buf = Buffer.create 256
let last_output () = Buffer.contents output_buf

let solve ?(limit = max_int) (db : db) ~goal ~nvars ~on_solution =
  let stats = { unifications = 0; backtracks = 0; trail_writes = 0; choice_points = 0 } in
  Buffer.clear output_buf;
  let trail : Term.binding ref Vec.t = Vec.create ~dummy:(ref (Term.Unbound 0)) () in
  let mark () = Vec.length trail in
  let undo_to m =
    while Vec.length trail > m do
      match Vec.pop trail with
      | Some r ->
        (match !r with
        | Term.Bound _ ->
          (* recover the variable id lost by binding: ids are cosmetic, 0 ok *)
          r := Term.Unbound 0
        | Term.Unbound _ -> ())
      | None -> ()
    done
  in
  let bind r t =
    stats.trail_writes <- stats.trail_writes + 1;
    ignore (Vec.push trail r);
    r := Term.Bound t
  in
  let rec unify a b =
    stats.unifications <- stats.unifications + 1;
    let a = Term.deref a and b = Term.deref b in
    match a, b with
    | Term.Var ra, Term.Var rb -> if ra == rb then true else (bind ra b; true)
    | Term.Var r, t | t, Term.Var r ->
      bind r t;
      true
    | Term.Atom x, Term.Atom y -> String.equal x y
    | Term.Int x, Term.Int y -> x = y
    | Term.Compound (f, xs), Term.Compound (g, ys) ->
      String.equal f g
      && Array.length xs = Array.length ys
      &&
      let rec go k = k >= Array.length xs || (unify xs.(k) ys.(k) && go (k + 1)) in
      go 0
    | (Term.Atom _ | Term.Int _ | Term.Compound _), _ -> false
  in
  let rec eval_arith t =
    match Term.deref t with
    | Term.Int i -> i
    | Term.Compound ("+", [| a; b |]) -> eval_arith a + eval_arith b
    | Term.Compound ("-", [| a; b |]) -> eval_arith a - eval_arith b
    | Term.Compound ("*", [| a; b |]) -> eval_arith a * eval_arith b
    | Term.Compound ("//", [| a; b |]) ->
      let d = eval_arith b in
      if d = 0 then raise (Eval_error "zero divisor") else eval_arith a / d
    | Term.Compound ("mod", [| a; b |]) ->
      let d = eval_arith b in
      if d = 0 then raise (Eval_error "zero divisor") else eval_arith a mod d
    | Term.Compound ("-", [| a |]) -> -eval_arith a
    | Term.Compound ("abs", [| a |]) -> abs (eval_arith a)
    | Term.Compound ("max", [| a; b |]) -> max (eval_arith a) (eval_arith b)
    | Term.Compound ("min", [| a; b |]) -> min (eval_arith a) (eval_arith b)
    | t -> raise (Eval_error (Term.to_string t))
  in
  let cut_counter = ref 0 in
  (* [prove goals barrier sk]: try to prove the conjunction; [sk] is the
     success continuation, ordinary return means failure.  [barrier] is the
     cut barrier of the clause body these goals belong to. *)
  let rec prove goals barrier sk =
    match goals with
    | [] -> sk ()
    | g :: rest -> (
      let continue_ () = prove rest barrier sk in
      match Term.deref g with
      | Term.Atom "true" -> continue_ ()
      | Term.Atom "fail" | Term.Atom "false" -> ()
      | Term.Atom "!" ->
        continue_ ();
        raise (Cut_signal barrier)
      | Term.Atom "nl" ->
        Buffer.add_char output_buf '\n';
        continue_ ()
      | Term.Compound (",", [| a; b |]) -> prove (a :: b :: rest) barrier sk
      | Term.Compound (";", [| a; b |]) ->
        let m = mark () in
        prove (a :: rest) barrier sk;
        undo_to m;
        stats.backtracks <- stats.backtracks + 1;
        prove (b :: rest) barrier sk
      | Term.Compound ("=", [| a; b |]) ->
        let m = mark () in
        if unify a b then continue_ ();
        undo_to m
      | Term.Compound ("is", [| lhs; rhs |]) -> (
        match eval_arith rhs with
        | v ->
          let m = mark () in
          if unify lhs (Term.Int v) then continue_ ();
          undo_to m
        | exception Eval_error _ -> ())
      | Term.Compound (("=:=" | "=\\=" | "<" | "=<" | ">" | ">=") as op, [| a; b |]) -> (
        match eval_arith a, eval_arith b with
        | x, y ->
          let holds =
            match op with
            | "=:=" -> x = y
            | "=\\=" -> x <> y
            | "<" -> x < y
            | "=<" -> x <= y
            | ">" -> x > y
            | ">=" -> x >= y
            | _ -> assert false
          in
          if holds then continue_ ()
        | exception Eval_error _ -> ())
      | Term.Compound ("findall", [| template; inner; result |]) -> (
        let m = mark () in
        let acc = ref [] in
        incr cut_counter;
        (try prove [ inner ] !cut_counter (fun () -> acc := Term.copy template :: !acc)
         with Cut_signal _ -> ());
        undo_to m;
        let collected = Term.list_of (List.rev !acc) in
        let m2 = mark () in
        if unify result collected then continue_ ();
        undo_to m2)
      | Term.Compound ("once", [| inner |]) -> (
        let m = mark () in
        let exception First in
        incr cut_counter;
        match prove [ inner ] !cut_counter (fun () -> raise First) with
        | () -> undo_to m  (* no solution: fail *)
        | exception First ->
          continue_ ();
          undo_to m
        | exception Cut_signal _ -> undo_to m)
      | Term.Compound ("\\+", [| inner |]) -> (
        let m = mark () in
        let exception Found in
        match
          incr cut_counter;
          prove [ inner ] !cut_counter (fun () -> raise Found)
        with
        | () ->
          undo_to m;
          continue_ ()
        | exception Found -> undo_to m
        | exception Cut_signal _ -> undo_to m)
      | Term.Compound ("between", [| lo; hi; x |]) -> (
        match eval_arith lo, eval_arith hi with
        | l, h -> (
          match Term.deref x with
          | Term.Int v -> if v >= l && v <= h then continue_ ()
          | Term.Var _ ->
            let m = mark () in
            (try
               for v = l to h do
                 stats.choice_points <- stats.choice_points + 1;
                 if stats.choice_points > limit then raise Stop;
                 if unify x (Term.Int v) then continue_ ();
                 undo_to m;
                 stats.backtracks <- stats.backtracks + 1
               done
             with Stop -> raise Stop)
          | Term.Atom _ | Term.Compound _ -> ())
        | exception Eval_error _ -> ())
      | Term.Compound ("var", [| x |]) -> (
        match Term.deref x with
        | Term.Var _ -> continue_ ()
        | Term.Atom _ | Term.Int _ | Term.Compound _ -> ())
      | Term.Compound ("nonvar", [| x |]) -> (
        match Term.deref x with
        | Term.Var _ -> ()
        | Term.Atom _ | Term.Int _ | Term.Compound _ -> continue_ ())
      | Term.Compound ("writeln", [| x |]) ->
        Buffer.add_string output_buf (Term.to_string x);
        Buffer.add_char output_buf '\n';
        continue_ ()
      | Term.Compound ("write", [| x |]) ->
        Buffer.add_string output_buf (Term.to_string x);
        continue_ ()
      | (Term.Atom _ | Term.Compound _) as callable -> call callable rest barrier sk
      | Term.Int _ | Term.Var _ -> invalid_arg "Prolog: non-callable goal")
  and call goal rest _barrier sk =
    let key =
      match goal with
      | Term.Atom a -> a, 0
      | Term.Compound (f, args) -> f, Array.length args
      | Term.Int _ | Term.Var _ -> assert false
    in
    let clauses = Option.value (Hashtbl.find_opt db key) ~default:[] in
    (* First-argument indexing: when the call's first argument is bound to
       a principal functor, clauses whose head cannot unify with it are
       skipped without a choice point (the standard WAM-style filter). *)
    let clauses =
      match goal with
      | Term.Compound (_, args) when Array.length args > 0 -> (
        match Term.deref args.(0) with
        | Term.Var _ -> clauses
        | bound ->
          let head_compatible clause =
            match clause.head with
            | Term.CCompound (_, head_args) when Array.length head_args > 0 -> (
              match head_args.(0), bound with
              | Term.CVar _, _ -> true
              | Term.CAtom a, Term.Atom b -> String.equal a b
              | Term.CInt a, Term.Int b -> a = b
              | Term.CCompound (f, xs), Term.Compound (g, ys) ->
                String.equal f g && Array.length xs = Array.length ys
              | (Term.CAtom _ | Term.CInt _ | Term.CCompound _), _ -> false)
            | Term.CAtom _ | Term.CInt _ | Term.CVar _ | Term.CCompound _ -> true
          in
          List.filter head_compatible clauses)
      | Term.Atom _ | Term.Compound _ | Term.Int _ | Term.Var _ -> clauses
    in
    incr cut_counter;
    let my_barrier = !cut_counter in
    let m0 = mark () in
    match
      List.iter
        (fun clause ->
          stats.choice_points <- stats.choice_points + 1;
          if stats.choice_points > limit then raise Stop;
          let m = mark () in
          let terms =
            Term.instantiate_all ~nvars:clause.nvars (clause.head :: clause.body)
          in
          match terms with
          | head :: body ->
            if unify goal head then
              prove body my_barrier (fun () -> prove rest _barrier sk);
            undo_to m;
            stats.backtracks <- stats.backtracks + 1
          | [] -> assert false)
        clauses
    with
    | () -> ()
    | exception Cut_signal id when id = my_barrier -> undo_to m0
  in
  let goal_terms = Term.instantiate_all ~nvars (goal :: List.init nvars (fun k -> Term.CVar k)) in
  match goal_terms with
  | g :: vars ->
    let vars = Array.of_list vars in
    incr cut_counter;
    (try prove [ g ] !cut_counter (fun () -> if not (on_solution vars) then raise Stop)
     with
    | Stop -> ()
    | Cut_signal _ -> ());
    stats
  | [] -> assert false
