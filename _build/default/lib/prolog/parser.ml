exception Error of { line : int; message : string }

let fail line fmt = Format.kasprintf (fun message -> raise (Error { line; message })) fmt

(* {1 Lexer} *)

type token =
  | T_atom of string
  | T_var of string
  | T_int of int
  | T_punct of string   (* ( ) [ ] | , . and operators *)

type lexed = { token : token; at_line : int }

let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident c = is_lower c || is_upper c || is_digit c

let symbol_chars = "+-*/\\=<>:~?@#&^."

let lex text =
  let out = ref [] in
  let line = ref 1 in
  let len = String.length text in
  let pos = ref 0 in
  let peek k = if !pos + k < len then Some text.[!pos + k] else None in
  let emit token = out := { token; at_line = !line } :: !out in
  while !pos < len do
    let c = text.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '%' then begin
      while !pos < len && text.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < len && is_digit text.[!pos] do
        incr pos
      done;
      emit (T_int (int_of_string (String.sub text start (!pos - start))))
    end
    else if is_lower c then begin
      let start = !pos in
      while !pos < len && is_ident text.[!pos] do
        incr pos
      done;
      emit (T_atom (String.sub text start (!pos - start)))
    end
    else if is_upper c then begin
      let start = !pos in
      while !pos < len && is_ident text.[!pos] do
        incr pos
      done;
      emit (T_var (String.sub text start (!pos - start)))
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 8 in
      let rec scan () =
        if !pos >= len then fail !line "unterminated quoted atom"
        else if text.[!pos] = '\'' then incr pos
        else begin
          Buffer.add_char buf text.[!pos];
          incr pos;
          scan ()
        end
      in
      scan ();
      emit (T_atom (Buffer.contents buf))
    end
    else if c = '(' || c = ')' || c = '[' || c = ']' || c = '|' || c = ','
            || c = '!' || c = ';' then begin
      emit (T_punct (String.make 1 c));
      incr pos
    end
    else if String.contains symbol_chars c then begin
      (* longest run of symbol characters, but a '.' followed by layout or
         end of input is the clause terminator *)
      if c = '.'
         && (match peek 1 with
            | None -> true
            | Some (' ' | '\t' | '\n' | '\r' | '%') -> true
            | Some _ -> false)
      then begin
        emit (T_punct ".");
        incr pos
      end
      else begin
        let start = !pos in
        while !pos < len && String.contains symbol_chars text.[!pos] do
          incr pos
        done;
        emit (T_punct (String.sub text start (!pos - start)))
      end
    end
    else fail !line "unexpected character %C" c
  done;
  List.rev !out

(* {1 Pratt parser over cterm} *)

type state = {
  mutable tokens : lexed list;
  mutable vars : (string * int) list;  (* name -> template index *)
  mutable next_var : int;
  mutable last_line : int;
}

let current st =
  match st.tokens with
  | [] -> None
  | { token; at_line } :: _ ->
    st.last_line <- at_line;
    Some token

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st punct =
  match current st with
  | Some (T_punct p) when p = punct -> advance st
  | _ -> fail st.last_line "expected %S" punct

let fresh_var st name =
  if name = "_" then begin
    let idx = st.next_var in
    st.next_var <- idx + 1;
    idx
  end
  else
    match List.assoc_opt name st.vars with
    | Some idx -> idx
    | None ->
      let idx = st.next_var in
      st.next_var <- idx + 1;
      st.vars <- (name, idx) :: st.vars;
      idx

let infix_ops =
  (* name, precedence, right-associative *)
  [ ":-", 1200, false; ";", 1100, true; ",", 1000, true;
    "=", 700, false; "\\=", 700, false; "is", 700, false;
    "<", 700, false; "=<", 700, false; ">", 700, false; ">=", 700, false;
    "=:=", 700, false; "=\\=", 700, false;
    "+", 500, false; "-", 500, false;
    "*", 400, false; "//", 400, false; "mod", 400, false ]

let lookup_infix name = List.find_opt (fun (n, _, _) -> n = name) infix_ops

let rec parse_term st max_prec =
  let left = parse_primary st in
  parse_infix st left max_prec

and parse_infix st left max_prec =
  match current st with
  | Some (T_punct p) | Some (T_atom p) -> (
    match lookup_infix p with
    | Some (name, prec, right_assoc) when prec <= max_prec ->
      advance st;
      let right = parse_term st (if right_assoc then prec else prec - 1) in
      parse_infix st (Term.cc name [ left; right ]) max_prec
    | Some _ | None -> left)
  | Some (T_var _ | T_int _) | None -> left

and parse_primary st =
  match current st with
  | None -> fail st.last_line "unexpected end of input"
  | Some (T_int v) ->
    advance st;
    Term.ci v
  | Some (T_var name) ->
    advance st;
    Term.cv (fresh_var st name)
  | Some (T_punct "(") ->
    advance st;
    let t = parse_term st 1200 in
    expect st ")";
    t
  | Some (T_punct "[") ->
    advance st;
    parse_list st
  | Some (T_punct "!") ->
    advance st;
    Term.ca "!"
  | Some (T_punct "-") ->
    (* negative numeric literal or arithmetic negation *)
    advance st;
    (match current st with
    | Some (T_int v) ->
      advance st;
      Term.ci (-v)
    | _ -> Term.cc "-" [ parse_term st 200 ])
  | Some (T_punct "\\+") ->
    advance st;
    Term.cc "\\+" [ parse_term st 900 ]
  | Some (T_atom name) -> (
    advance st;
    match current st with
    | Some (T_punct "(") ->
      advance st;
      let args = parse_args st in
      expect st ")";
      Term.cc name args
    | _ -> Term.ca name)
  | Some (T_punct p) -> fail st.last_line "unexpected %S" p

and parse_args st =
  (* arguments bind tighter than the ',' operator *)
  let first = parse_term st 999 in
  match current st with
  | Some (T_punct ",") ->
    advance st;
    first :: parse_args st
  | _ -> [ first ]

and parse_list st =
  match current st with
  | Some (T_punct "]") ->
    advance st;
    Term.ca "[]"
  | _ ->
    let rec elements () =
      let head = parse_term st 999 in
      match current st with
      | Some (T_punct ",") ->
        advance st;
        let tail = elements () in
        Term.cc "." [ head; tail ]
      | Some (T_punct "|") ->
        advance st;
        let tail = parse_term st 999 in
        expect st "]";
        Term.cc "." [ head; tail ]
      | Some (T_punct "]") ->
        advance st;
        Term.cc "." [ head; Term.ca "[]" ]
      | _ -> fail st.last_line "expected ',', '|' or ']' in list"
    in
    elements ()

(* {1 Clause and program parsing} *)

(* body terms: flatten ','-conjunctions into goal lists *)
let rec flatten_conj term =
  match term with
  | Term.CCompound (",", [| a; b |]) -> flatten_conj a @ flatten_conj b
  | t -> [ t ]

let clause_of_term st term =
  match term with
  | Term.CCompound (":-", [| head; body |]) ->
    { Machine.nvars = st.next_var; head; body = flatten_conj body }
  | head -> { Machine.nvars = st.next_var; head; body = [] }

let parse_program text =
  let tokens = lex text in
  let clauses = ref [] in
  let st = ref { tokens; vars = []; next_var = 0; last_line = 1 } in
  while (!st).tokens <> [] do
    let term = parse_term !st 1200 in
    expect !st ".";
    clauses := clause_of_term !st term :: !clauses;
    (* fresh variable scope per clause *)
    st := { !st with vars = []; next_var = 0 }
  done;
  List.rev !clauses

type query = {
  goal : Term.cterm;
  nvars : int;
  var_names : (int * string) list;
}

let parse_query text =
  let st = { tokens = lex text; vars = []; next_var = 0; last_line = 1 } in
  let goal = parse_term st 1200 in
  (match current st with
  | Some (T_punct ".") -> advance st
  | Some _ -> fail st.last_line "trailing tokens after query"
  | None -> ());
  (match current st with
  | None -> ()
  | Some _ -> fail st.last_line "trailing tokens after query");
  { goal;
    nvars = st.next_var;
    var_names = List.map (fun (name, idx) -> idx, name) st.vars }

let run_query ?limit db query ~on_solution =
  Machine.solve ?limit db ~goal:query.goal ~nvars:query.nvars
    ~on_solution:(fun vars ->
      let bindings =
        List.rev_map (fun (idx, name) -> name, vars.(idx)) query.var_names
      in
      on_solution bindings)
