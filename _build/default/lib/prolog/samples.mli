(** Canned Prolog programs: the n-queens program used as E1's Prolog
    baseline, plus the list-processing predicates the tests exercise. *)

val list_clauses : Machine.clause list
(** [append/3], [member/2], [select/3], [numlist/3], [length/2]. *)

val queens_clauses : Machine.clause list
(** The classic [select]-based n-queens (placements as permutations with a
    diagonal-attack check), over {!list_clauses}. *)

val full_db : Machine.db

val count_queens : int -> int * Machine.stats
(** Number of n-queens solutions found by the Prolog engine. *)

val solve_queens_boards : int -> string list
(** Solutions as digit strings in the guest program's format (column ->
    row, 0-based), for cross-checking against the VX64 guest. *)
