type flags = {
  mutable zf : bool;
  mutable sf : bool;
  mutable lt_s : bool;
  mutable lt_u : bool;
}

type t = {
  regs : int array;
  mutable rip : int;
  flags : flags;
  mutable retired : int;
}

type saved = { s_regs : int array; s_rip : int; s_flags : bool * bool * bool * bool }

let create ~entry =
  { regs = Array.make Isa.Reg.count 0;
    rip = entry;
    flags = { zf = false; sf = false; lt_s = false; lt_u = false };
    retired = 0 }

let get t reg = t.regs.(Isa.Reg.to_int reg)

let set t reg v = t.regs.(Isa.Reg.to_int reg) <- v

let save t =
  { s_regs = Array.copy t.regs;
    s_rip = t.rip;
    s_flags = (t.flags.zf, t.flags.sf, t.flags.lt_s, t.flags.lt_u) }

let load t s =
  Array.blit s.s_regs 0 t.regs 0 Isa.Reg.count;
  t.rip <- s.s_rip;
  let zf, sf, lt_s, lt_u = s.s_flags in
  t.flags.zf <- zf;
  t.flags.sf <- sf;
  t.flags.lt_s <- lt_s;
  t.flags.lt_u <- lt_u

let saved_rip s = s.s_rip

let eval_cond t (c : Isa.Insn.cond) =
  let f = t.flags in
  match c with
  | E -> f.zf
  | NE -> not f.zf
  | L -> f.lt_s
  | GE -> not f.lt_s
  | LE -> f.lt_s || f.zf
  | G -> not (f.lt_s || f.zf)
  | B -> f.lt_u
  | AE -> not f.lt_u
  | BE -> f.lt_u || f.zf
  | A -> not (f.lt_u || f.zf)
  | S -> f.sf
  | NS -> not f.sf

let pp fmt t =
  Format.fprintf fmt "@[<v>rip=0x%x retired=%d@ " t.rip t.retired;
  List.iter
    (fun reg ->
      Format.fprintf fmt "%s=%d " (Isa.Reg.name reg) (get t reg))
    Isa.Reg.all;
  Format.fprintf fmt "@ zf=%b sf=%b lt_s=%b lt_u=%b@]" t.flags.zf t.flags.sf
    t.flags.lt_s t.flags.lt_u
