(** VX64 CPU state: sixteen general-purpose registers, the instruction
    pointer, and flags.

    [save]/[load] implement the register-file half of the paper's snapshot
    definition: a partial candidate is "a copy of the register file and an
    immutable logical copy of the entire address space". *)

type flags = {
  mutable zf : bool;   (** zero *)
  mutable sf : bool;   (** sign of last result *)
  mutable lt_s : bool; (** last compare: signed less-than *)
  mutable lt_u : bool; (** last compare: unsigned less-than *)
}

type t = {
  regs : int array;
  mutable rip : int;
  flags : flags;
  mutable retired : int;  (** instructions executed on this vCPU *)
}

type saved
(** An immutable register-file copy. *)

val create : entry:int -> t
val get : t -> Isa.Reg.t -> int
val set : t -> Isa.Reg.t -> int -> unit
val save : t -> saved
val load : t -> saved -> unit
val saved_rip : saved -> int
val eval_cond : t -> Isa.Insn.cond -> bool
val pp : Format.formatter -> t -> unit
