lib/vcpu/interp.mli: Cpu Format Mem
