lib/vcpu/interp.ml: Array Bytes Cpu Format Hashtbl Isa Mem
