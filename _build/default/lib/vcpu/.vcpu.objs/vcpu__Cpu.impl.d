lib/vcpu/cpu.ml: Array Format Isa List
