lib/vcpu/cpu.mli: Format Isa
