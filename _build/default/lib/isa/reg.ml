type t = int

let count = 16

let rax = 0
let rcx = 1
let rdx = 2
let rbx = 3
let rsp = 4
let rbp = 5
let rsi = 6
let rdi = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15

let names =
  [| "rax"; "rcx"; "rdx"; "rbx"; "rsp"; "rbp"; "rsi"; "rdi";
     "r8"; "r9"; "r10"; "r11"; "r12"; "r13"; "r14"; "r15" |]

let of_int i =
  if i < 0 || i >= count then invalid_arg (Printf.sprintf "Reg.of_int: %d" i);
  i

let to_int r = r

let name r = names.(r)

let of_name s =
  let rec scan i =
    if i >= count then None
    else if String.equal names.(i) s then Some i
    else scan (i + 1)
  in
  scan 0

let pp fmt r = Format.pp_print_string fmt (name r)

let all = List.init count (fun i -> i)
