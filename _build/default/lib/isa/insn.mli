(** The VX64 instruction set.

    A small x86-flavoured 64-bit register machine, rich enough to compile
    real search programs by hand or from generators: register/immediate
    moves, base+scaled-index addressing, ALU ops, compare-and-branch, a call
    stack, and [Syscall] as the only gateway to the libOS.

    Deviations from x86 semantics, chosen for a clean simulation and
    documented once here:
    - words are OCaml native ints (63-bit two's complement); memory cells
      are still 8 bytes wide, little-endian;
    - [Cmp]/[Test] set the full flag set; other ALU operations set only the
      zero and sign flags;
    - division by zero is a vmexit fault, not a CPU exception vector. *)

type binop =
  | Add | Sub | Imul | Div | Rem
  | And | Or | Xor | Shl | Shr | Sar

type unop = Neg | Not | Inc | Dec

type cond =
  | E | NE            (* equal / not equal *)
  | L | LE | G | GE   (* signed *)
  | B | BE | A | AE   (* unsigned *)
  | S | NS            (* sign of last ALU/compare result *)

type width = B | Q
(** Byte and 64-bit accesses. *)

type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option;  (** register and scale (1, 2, 4 or 8) *)
  disp : int;
}

type operand = Reg of Reg.t | Imm of int

type t =
  | Nop
  | Hlt                       (** exit; [rdi] is the status by convention *)
  | Syscall
  | Ret
  | Mov of Reg.t * operand
  | Lea of Reg.t * mem
  | Ld of width * Reg.t * mem (** load: byte loads zero-extend *)
  | St of width * mem * Reg.t
  | Sti of width * mem * int  (** store immediate *)
  | Bin of binop * Reg.t * operand
  | Un of unop * Reg.t
  | Cmp of Reg.t * operand
  | Test of Reg.t * operand
  | Jmp of int
  | Jcc of cond * int
  | Call of int
  | Push of operand
  | Pop of Reg.t
  | Setcc of cond * Reg.t     (** 1 if condition holds else 0 *)

val mem : ?base:Reg.t -> ?index:Reg.t * int -> ?disp:int -> unit -> mem

val pp_binop : Format.formatter -> binop -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
