(** VX64 general-purpose registers.

    Sixteen 64-bit registers with x86-64 names.  By ABI convention: [rsp] is
    the stack pointer, [rax] carries syscall numbers and return values,
    [rdi]/[rsi]/[rdx] carry syscall and call arguments. *)

type t = private int

val count : int

val rax : t
val rcx : t
val rdx : t
val rbx : t
val rsp : t
val rbp : t
val rsi : t
val rdi : t
val r8 : t
val r9 : t
val r10 : t
val r11 : t
val r12 : t
val r13 : t
val r14 : t
val r15 : t

val of_int : int -> t
(** @raise Invalid_argument outside [0, 15]. *)

val to_int : t -> int
val name : t -> string
val of_name : string -> t option
val pp : Format.formatter -> t -> unit
val all : t list
