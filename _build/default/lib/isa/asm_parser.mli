(** Textual assembly for VX64.

    A small, line-oriented dialect mirroring the eDSL in {!Asm}:

    {v
    ; comments run to end of line (# also works)
    main:                       ; labels end with ':'
        mov   rdi, 0
        mov   rax, 5            ; brk
        syscall
        ld    rbx, [rax+8]      ; base + displacement
        stb   [r8+rcx*1], rdx   ; base + index*scale
        sti   [rax], 42         ; store immediate (quad)
        cmp   rbx, 10
        jl    main
        push  rbp
        call  fn
        hlt
    .align 4096
    data:
    .byte  "raw bytes\n"        ; OCaml-style escapes
    .qword 123456
    .zeros 64
    v}

    Mnemonics are the eDSL names ([ld]/[ldb], [st]/[stb], [sti]/[stib],
    [j<cc>], [set<cc>]); immediates are decimal or 0x-hex, optionally
    negative; character literals like ['a'] are accepted where an
    immediate is. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Asm.item list
(** @raise Parse_error with a 1-based line number on malformed input. *)

val assemble_text : ?origin:int -> ?entry:string -> string -> Asm.image
(** [parse] then {!Asm.assemble}; if [entry] is omitted and a [main] label
    exists, it is used. *)
