(** Linear-sweep disassembler, for debugging guest images and for the
    symbolic executor's instruction statistics. *)

val disassemble : ?max_insns:int -> code:string -> origin:int -> unit -> (int * Insn.t) list
(** Decode instructions starting at the beginning of [code] until the first
    byte that does not decode (data sections typically stop the sweep).
    Returns (address, instruction) pairs. *)

val pp_listing : Format.formatter -> (int * Insn.t) list -> unit
