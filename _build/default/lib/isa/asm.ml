exception Error of string

let errorf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type item =
  | Label of string
  | Ins of Insn.t
  | Jmp_l of string
  | Jcc_l of Insn.cond * string
  | Call_l of string
  | Mov_l of Reg.t * string
  | Bytes of string
  | Zeros of int
  | Align of int

type image = {
  origin : int;
  code : string;
  entry : int;
  symbols : (string * int) list;
}

(* Sizes of label-referencing pseudo-instructions are those of their
   resolved forms; the fixed-width immediate encoding keeps them
   target-independent, which is what makes two passes sufficient. *)
let item_size pc = function
  | Label _ -> 0
  | Ins insn -> Encode.size insn
  | Jmp_l _ -> Encode.size (Insn.Jmp 0)
  | Jcc_l (c, _) -> Encode.size (Insn.Jcc (c, 0))
  | Call_l _ -> Encode.size (Insn.Call 0)
  | Mov_l (r, _) -> Encode.size (Insn.Mov (r, Insn.Imm 0))
  | Bytes s -> String.length s
  | Zeros n ->
    if n < 0 then errorf "zeros: negative size %d" n;
    n
  | Align n ->
    if n <= 0 || n land (n - 1) <> 0 then errorf "align: %d not a power of two" n;
    (n - (pc land (n - 1))) land (n - 1)

let assemble ?(origin = 0x1000) ?entry items =
  (* Pass 1: label addresses. *)
  let labels = Hashtbl.create 64 in
  let pc = ref origin in
  List.iter
    (fun item ->
      (match item with
      | Label name ->
        if Hashtbl.mem labels name then errorf "duplicate label %S" name;
        Hashtbl.replace labels name !pc
      | Ins _ | Jmp_l _ | Jcc_l _ | Call_l _ | Mov_l _ | Bytes _ | Zeros _ | Align _ -> ());
      pc := !pc + item_size !pc item)
    items;
  let resolve name =
    match Hashtbl.find_opt labels name with
    | Some addr -> addr
    | None -> errorf "undefined label %S" name
  in
  (* Pass 2: emit. *)
  let buf = Buffer.create 1024 in
  let pc = ref origin in
  List.iter
    (fun item ->
      let sz = item_size !pc item in
      (match item with
      | Label _ -> ()
      | Ins insn -> Encode.encode buf insn
      | Jmp_l l -> Encode.encode buf (Insn.Jmp (resolve l))
      | Jcc_l (c, l) -> Encode.encode buf (Insn.Jcc (c, resolve l))
      | Call_l l -> Encode.encode buf (Insn.Call (resolve l))
      | Mov_l (r, l) -> Encode.encode buf (Insn.Mov (r, Insn.Imm (resolve l)))
      | Bytes s -> Buffer.add_string buf s
      | Zeros n -> Buffer.add_string buf (String.make n '\000')
      | Align _ -> Buffer.add_string buf (String.make sz '\000'));
      pc := !pc + sz)
    items;
  let entry =
    match entry with None -> origin | Some name -> resolve name
  in
  { origin;
    code = Buffer.contents buf;
    entry;
    symbols = Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) labels [] }

(* Directives *)

let label name = Label name

let label_name = function
  | Label name -> Some name
  | Ins _ | Jmp_l _ | Jcc_l _ | Call_l _ | Mov_l _ | Bytes _ | Zeros _ | Align _ ->
    None
let bytes s = Bytes s
let zeros n = Zeros n

let qword v =
  let b = Buffer.create 8 in
  Buffer.add_int64_le b (Int64.of_int v);
  Bytes (Buffer.contents b)

let align n = Align n
let insn x = Ins x

(* Instructions *)

let nop = Ins Insn.Nop
let hlt = Ins Insn.Hlt
let syscall = Ins Insn.Syscall
let ret = Ins Insn.Ret
let mov reg op = Ins (Insn.Mov (reg, op))
let movl reg l = Mov_l (reg, l)
let lea reg m = Ins (Insn.Lea (reg, m))
let ld reg m = Ins (Insn.Ld (Insn.Q, reg, m))
let ldb reg m = Ins (Insn.Ld (Insn.B, reg, m))
let st m reg = Ins (Insn.St (Insn.Q, m, reg))
let stb m reg = Ins (Insn.St (Insn.B, m, reg))
let sti m v = Ins (Insn.Sti (Insn.Q, m, v))
let stib m v = Ins (Insn.Sti (Insn.B, m, v))

let binop op reg operand = Ins (Insn.Bin (op, reg, operand))

let add reg op = binop Insn.Add reg op
let sub reg op = binop Insn.Sub reg op
let imul reg op = binop Insn.Imul reg op
let div reg op = binop Insn.Div reg op
let rem reg op = binop Insn.Rem reg op
let and_ reg op = binop Insn.And reg op
let or_ reg op = binop Insn.Or reg op
let xor reg op = binop Insn.Xor reg op
let shl reg op = binop Insn.Shl reg op
let shr reg op = binop Insn.Shr reg op
let sar reg op = binop Insn.Sar reg op

let neg reg = Ins (Insn.Un (Insn.Neg, reg))
let not_ reg = Ins (Insn.Un (Insn.Not, reg))
let inc reg = Ins (Insn.Un (Insn.Inc, reg))
let dec reg = Ins (Insn.Un (Insn.Dec, reg))

let cmp reg op = Ins (Insn.Cmp (reg, op))
let test reg op = Ins (Insn.Test (reg, op))

let jmp l = Jmp_l l
let jcc c l = Jcc_l (c, l)
let je l = jcc Insn.E l
let jne l = jcc Insn.NE l
let jl l = jcc Insn.L l
let jle l = jcc Insn.LE l
let jg l = jcc Insn.G l
let jge l = jcc Insn.GE l
let jb l = jcc Insn.B l
let jbe l = jcc Insn.BE l
let ja l = jcc Insn.A l
let jae l = jcc Insn.AE l
let js l = jcc Insn.S l
let jns l = jcc Insn.NS l

let call l = Call_l l
let push op = Ins (Insn.Push op)
let pop reg = Ins (Insn.Pop reg)
let setcc c reg = Ins (Insn.Setcc (c, reg))

(* Operand sugar *)

let r reg = Insn.Reg reg
let i v = Insn.Imm v
let ( @+ ) base disp = Insn.mem ~base ~disp ()
let idx base index = Insn.mem ~base ~index ()
let idxd base index disp = Insn.mem ~base ~index ~disp ()
let abs disp = Insn.mem ~disp ()
