(** Binary encoding of VX64 instructions.

    Programs live as bytes in guest memory and are fetched and decoded
    through the MMU, so code pages participate in snapshots exactly like
    data pages.  The encoding is fixed-layout (immediates are always 8
    bytes), which makes instruction sizes deterministic for the two-pass
    assembler. *)

exception Invalid_opcode of { addr : int; opcode : int }

val size : Insn.t -> int
(** Encoded size in bytes. *)

val encode : Buffer.t -> Insn.t -> unit

val encode_to_string : Insn.t list -> string

val decode : fetch:(int -> int) -> int -> Insn.t * int
(** [decode ~fetch addr] decodes the instruction at [addr], reading bytes
    through [fetch]; returns the instruction and its size.
    @raise Invalid_opcode on junk. *)
