let disassemble ?(max_insns = max_int) ~code ~origin () =
  let len = String.length code in
  let fetch addr =
    let off = addr - origin in
    if off < 0 || off >= len then raise (Encode.Invalid_opcode { addr; opcode = -1 })
    else Char.code code.[off]
  in
  let rec sweep addr count acc =
    if count >= max_insns || addr - origin >= len then List.rev acc
    else
      match Encode.decode ~fetch addr with
      | insn, sz -> sweep (addr + sz) (count + 1) ((addr, insn) :: acc)
      | exception Encode.Invalid_opcode _ -> List.rev acc
  in
  sweep origin 0 []

let pp_listing fmt listing =
  List.iter
    (fun (addr, insn) -> Format.fprintf fmt "%08x  %a@." addr Insn.pp insn)
    listing
