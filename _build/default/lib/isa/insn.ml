type binop =
  | Add | Sub | Imul | Div | Rem
  | And | Or | Xor | Shl | Shr | Sar

type unop = Neg | Not | Inc | Dec

type cond =
  | E | NE
  | L | LE | G | GE
  | B | BE | A | AE
  | S | NS

type width = B | Q

type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option;
  disp : int;
}

type operand = Reg of Reg.t | Imm of int

type t =
  | Nop
  | Hlt
  | Syscall
  | Ret
  | Mov of Reg.t * operand
  | Lea of Reg.t * mem
  | Ld of width * Reg.t * mem
  | St of width * mem * Reg.t
  | Sti of width * mem * int
  | Bin of binop * Reg.t * operand
  | Un of unop * Reg.t
  | Cmp of Reg.t * operand
  | Test of Reg.t * operand
  | Jmp of int
  | Jcc of cond * int
  | Call of int
  | Push of operand
  | Pop of Reg.t
  | Setcc of cond * Reg.t

let mem ?base ?index ?(disp = 0) () = { base; index; disp }

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Imul -> "imul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Sar -> "sar"

let unop_name = function Neg -> "neg" | Not -> "not" | Inc -> "inc" | Dec -> "dec"

let cond_name = function
  | E -> "e" | NE -> "ne" | L -> "l" | LE -> "le" | G -> "g" | GE -> "ge"
  | B -> "b" | BE -> "be" | A -> "a" | AE -> "ae" | S -> "s" | NS -> "ns"

let pp_binop fmt op = Format.pp_print_string fmt (binop_name op)
let pp_cond fmt c = Format.pp_print_string fmt (cond_name c)

let pp_mem fmt { base; index; disp } =
  Format.pp_print_char fmt '[';
  let printed = ref false in
  (match base with
  | Some b ->
    Reg.pp fmt b;
    printed := true
  | None -> ());
  (match index with
  | Some (r, scale) ->
    if !printed then Format.pp_print_char fmt '+';
    Format.fprintf fmt "%a*%d" Reg.pp r scale;
    printed := true
  | None -> ());
  if disp <> 0 || not !printed then begin
    if !printed && disp >= 0 then Format.pp_print_char fmt '+';
    Format.pp_print_int fmt disp
  end;
  Format.pp_print_char fmt ']'

let pp_operand fmt = function
  | Reg r -> Reg.pp fmt r
  | Imm i -> Format.pp_print_int fmt i

let width_suffix = function B -> "b" | Q -> "q"

let pp fmt = function
  | Nop -> Format.pp_print_string fmt "nop"
  | Hlt -> Format.pp_print_string fmt "hlt"
  | Syscall -> Format.pp_print_string fmt "syscall"
  | Ret -> Format.pp_print_string fmt "ret"
  | Mov (r, o) -> Format.fprintf fmt "mov %a, %a" Reg.pp r pp_operand o
  | Lea (r, m) -> Format.fprintf fmt "lea %a, %a" Reg.pp r pp_mem m
  | Ld (w, r, m) -> Format.fprintf fmt "ld%s %a, %a" (width_suffix w) Reg.pp r pp_mem m
  | St (w, m, r) -> Format.fprintf fmt "st%s %a, %a" (width_suffix w) pp_mem m Reg.pp r
  | Sti (w, m, i) -> Format.fprintf fmt "st%s %a, %d" (width_suffix w) pp_mem m i
  | Bin (op, r, o) -> Format.fprintf fmt "%s %a, %a" (binop_name op) Reg.pp r pp_operand o
  | Un (op, r) -> Format.fprintf fmt "%s %a" (unop_name op) Reg.pp r
  | Cmp (r, o) -> Format.fprintf fmt "cmp %a, %a" Reg.pp r pp_operand o
  | Test (r, o) -> Format.fprintf fmt "test %a, %a" Reg.pp r pp_operand o
  | Jmp a -> Format.fprintf fmt "jmp 0x%x" a
  | Jcc (c, a) -> Format.fprintf fmt "j%s 0x%x" (cond_name c) a
  | Call a -> Format.fprintf fmt "call 0x%x" a
  | Push o -> Format.fprintf fmt "push %a" pp_operand o
  | Pop r -> Format.fprintf fmt "pop %a" Reg.pp r
  | Setcc (c, r) -> Format.fprintf fmt "set%s %a" (cond_name c) Reg.pp r

let to_string i = Format.asprintf "%a" pp i
