lib/isa/asm.mli: Insn Reg
