lib/isa/reg.ml: Array Format List Printf String
