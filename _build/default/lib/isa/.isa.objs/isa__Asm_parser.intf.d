lib/isa/asm_parser.mli: Asm
