lib/isa/disasm.mli: Format Insn
