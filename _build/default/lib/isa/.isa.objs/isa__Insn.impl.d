lib/isa/insn.ml: Format Reg
