lib/isa/encode.ml: Buffer Char Insn Int64 List Reg
