lib/isa/insn.mli: Format Reg
