lib/isa/disasm.ml: Char Encode Format Insn List String
