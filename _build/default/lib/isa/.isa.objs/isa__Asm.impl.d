lib/isa/asm.ml: Buffer Encode Format Hashtbl Insn Int64 List Reg String
