lib/isa/encode.mli: Buffer Insn
