lib/isa/asm_parser.ml: Asm Buffer Char Format Insn List Reg Scanf String
