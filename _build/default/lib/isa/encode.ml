open Insn

exception Invalid_opcode of { addr : int; opcode : int }

(* Opcode map; immediates are 8-byte little-endian, registers one byte,
   memory operands 11 bytes (base, index, scale, disp64). *)
let op_nop = 0x01
let op_hlt = 0x02
let op_syscall = 0x03
let op_ret = 0x04
let op_mov_ri = 0x05
let op_mov_rr = 0x06
let op_lea = 0x07
let op_ldq = 0x08
let op_ldb = 0x09
let op_stq = 0x0A
let op_stb = 0x0B
let op_stiq = 0x0C
let op_stib = 0x0D
let op_bin_ri = 0x0E
let op_bin_rr = 0x0F
let op_un = 0x10
let op_cmp_ri = 0x11
let op_cmp_rr = 0x12
let op_test_ri = 0x13
let op_test_rr = 0x14
let op_jmp = 0x15
let op_jcc = 0x16
let op_call = 0x17
let op_push_r = 0x18
let op_push_i = 0x19
let op_pop = 0x1A
let op_setcc = 0x1B

let binop_code = function
  | Add -> 0 | Sub -> 1 | Imul -> 2 | Div -> 3 | Rem -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9 | Sar -> 10

let binop_of_code addr = function
  | 0 -> Add | 1 -> Sub | 2 -> Imul | 3 -> Div | 4 -> Rem
  | 5 -> And | 6 -> Or | 7 -> Xor | 8 -> Shl | 9 -> Shr | 10 -> Sar
  | c -> raise (Invalid_opcode { addr; opcode = c })

let unop_code = function Neg -> 0 | Not -> 1 | Inc -> 2 | Dec -> 3

let unop_of_code addr = function
  | 0 -> Neg | 1 -> Not | 2 -> Inc | 3 -> Dec
  | c -> raise (Invalid_opcode { addr; opcode = c })

let cond_code = function
  | E -> 0 | NE -> 1 | L -> 2 | LE -> 3 | G -> 4 | GE -> 5
  | B -> 6 | BE -> 7 | A -> 8 | AE -> 9 | S -> 10 | NS -> 11

let cond_of_code addr = function
  | 0 -> E | 1 -> NE | 2 -> L | 3 -> LE | 4 -> G | 5 -> GE
  | 6 -> B | 7 -> BE | 8 -> A | 9 -> AE | 10 -> S | 11 -> NS
  | c -> raise (Invalid_opcode { addr; opcode = c })

let mem_bytes = 11
let imm_bytes = 8

let size = function
  | Nop | Hlt | Syscall | Ret -> 1
  | Mov (_, Imm _) -> 2 + imm_bytes
  | Mov (_, Reg _) -> 3
  | Lea _ | Ld _ | St _ -> 2 + mem_bytes
  | Sti _ -> 1 + mem_bytes + imm_bytes
  | Bin (_, _, Imm _) -> 3 + imm_bytes
  | Bin (_, _, Reg _) -> 4
  | Un _ -> 3
  | Cmp (_, Imm _) | Test (_, Imm _) -> 2 + imm_bytes
  | Cmp (_, Reg _) | Test (_, Reg _) -> 3
  | Jmp _ | Call _ -> 1 + imm_bytes
  | Jcc _ -> 2 + imm_bytes
  | Push (Reg _) -> 2
  | Push (Imm _) -> 1 + imm_bytes
  | Pop _ -> 2
  | Setcc _ -> 3

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_imm buf v = Buffer.add_int64_le buf (Int64.of_int v)

let put_reg buf r = put_u8 buf (Reg.to_int r)

let put_mem buf { base; index; disp } =
  (match base with None -> put_u8 buf 0xFF | Some r -> put_reg buf r);
  (match index with
  | None ->
    put_u8 buf 0xFF;
    put_u8 buf 0
  | Some (r, scale) ->
    put_reg buf r;
    put_u8 buf scale);
  put_imm buf disp

let encode buf insn =
  match insn with
  | Nop -> put_u8 buf op_nop
  | Hlt -> put_u8 buf op_hlt
  | Syscall -> put_u8 buf op_syscall
  | Ret -> put_u8 buf op_ret
  | Mov (r, Imm i) -> put_u8 buf op_mov_ri; put_reg buf r; put_imm buf i
  | Mov (r, Reg s) -> put_u8 buf op_mov_rr; put_reg buf r; put_reg buf s
  | Lea (r, m) -> put_u8 buf op_lea; put_reg buf r; put_mem buf m
  | Ld (Q, r, m) -> put_u8 buf op_ldq; put_reg buf r; put_mem buf m
  | Ld (B, r, m) -> put_u8 buf op_ldb; put_reg buf r; put_mem buf m
  | St (Q, m, r) -> put_u8 buf op_stq; put_reg buf r; put_mem buf m
  | St (B, m, r) -> put_u8 buf op_stb; put_reg buf r; put_mem buf m
  | Sti (Q, m, i) -> put_u8 buf op_stiq; put_mem buf m; put_imm buf i
  | Sti (B, m, i) -> put_u8 buf op_stib; put_mem buf m; put_imm buf i
  | Bin (op, r, Imm i) ->
    put_u8 buf op_bin_ri; put_u8 buf (binop_code op); put_reg buf r; put_imm buf i
  | Bin (op, r, Reg s) ->
    put_u8 buf op_bin_rr; put_u8 buf (binop_code op); put_reg buf r; put_reg buf s
  | Un (op, r) -> put_u8 buf op_un; put_u8 buf (unop_code op); put_reg buf r
  | Cmp (r, Imm i) -> put_u8 buf op_cmp_ri; put_reg buf r; put_imm buf i
  | Cmp (r, Reg s) -> put_u8 buf op_cmp_rr; put_reg buf r; put_reg buf s
  | Test (r, Imm i) -> put_u8 buf op_test_ri; put_reg buf r; put_imm buf i
  | Test (r, Reg s) -> put_u8 buf op_test_rr; put_reg buf r; put_reg buf s
  | Jmp a -> put_u8 buf op_jmp; put_imm buf a
  | Jcc (c, a) -> put_u8 buf op_jcc; put_u8 buf (cond_code c); put_imm buf a
  | Call a -> put_u8 buf op_call; put_imm buf a
  | Push (Reg r) -> put_u8 buf op_push_r; put_reg buf r
  | Push (Imm i) -> put_u8 buf op_push_i; put_imm buf i
  | Pop r -> put_u8 buf op_pop; put_reg buf r
  | Setcc (c, r) -> put_u8 buf op_setcc; put_u8 buf (cond_code c); put_reg buf r

let encode_to_string insns =
  let buf = Buffer.create 256 in
  List.iter (encode buf) insns;
  Buffer.contents buf

let decode ~fetch addr =
  let u8 off = fetch (addr + off) in
  let imm off =
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (u8 (off + i)))
    done;
    Int64.to_int !v
  in
  let reg off = Reg.of_int (u8 off) in
  let mem_at off =
    let base = match u8 off with 0xFF -> None | b -> Some (Reg.of_int b) in
    let index =
      match u8 (off + 1) with
      | 0xFF -> None
      | r -> Some (Reg.of_int r, u8 (off + 2))
    in
    { base; index; disp = imm (off + 3) }
  in
  let opcode = u8 0 in
  let insn =
    if opcode = op_nop then Nop
    else if opcode = op_hlt then Hlt
    else if opcode = op_syscall then Syscall
    else if opcode = op_ret then Ret
    else if opcode = op_mov_ri then Mov (reg 1, Imm (imm 2))
    else if opcode = op_mov_rr then Mov (reg 1, Reg (reg 2))
    else if opcode = op_lea then Lea (reg 1, mem_at 2)
    else if opcode = op_ldq then Ld (Q, reg 1, mem_at 2)
    else if opcode = op_ldb then Ld (B, reg 1, mem_at 2)
    else if opcode = op_stq then St (Q, mem_at 2, reg 1)
    else if opcode = op_stb then St (B, mem_at 2, reg 1)
    else if opcode = op_stiq then Sti (Q, mem_at 1, imm (1 + mem_bytes))
    else if opcode = op_stib then Sti (B, mem_at 1, imm (1 + mem_bytes))
    else if opcode = op_bin_ri then Bin (binop_of_code addr (u8 1), reg 2, Imm (imm 3))
    else if opcode = op_bin_rr then Bin (binop_of_code addr (u8 1), reg 2, Reg (reg 3))
    else if opcode = op_un then Un (unop_of_code addr (u8 1), reg 2)
    else if opcode = op_cmp_ri then Cmp (reg 1, Imm (imm 2))
    else if opcode = op_cmp_rr then Cmp (reg 1, Reg (reg 2))
    else if opcode = op_test_ri then Test (reg 1, Imm (imm 2))
    else if opcode = op_test_rr then Test (reg 1, Reg (reg 2))
    else if opcode = op_jmp then Jmp (imm 1)
    else if opcode = op_jcc then Jcc (cond_of_code addr (u8 1), imm 2)
    else if opcode = op_call then Call (imm 1)
    else if opcode = op_push_r then Push (Reg (reg 1))
    else if opcode = op_push_i then Push (Imm (imm 1))
    else if opcode = op_pop then Pop (reg 1)
    else if opcode = op_setcc then Setcc (cond_of_code addr (u8 1), reg 2)
    else raise (Invalid_opcode { addr; opcode })
  in
  insn, size insn
