(** Two-pass assembler for VX64 with an OCaml eDSL front-end.

    Programs are lists of {!item}s mixing instructions, labels and data
    directives; [assemble] resolves labels and produces a binary image ready
    to be mapped into a guest address space.  All workload generators in
    [lib/workloads] emit this representation. *)

exception Error of string

type item

type image = {
  origin : int;            (** address the code must be mapped at *)
  code : string;           (** raw bytes (instructions and data) *)
  entry : int;             (** initial instruction pointer *)
  symbols : (string * int) list;
}

val assemble : ?origin:int -> ?entry:string -> item list -> image
(** [assemble items] lays the items out starting at [origin] (default
    [0x1000]) and resolves label references.  [entry] names the start label
    (default: the image origin).
    @raise Error on duplicate or undefined labels, or bad directives. *)

(** {1 Directives} *)

val label : string -> item

(** [label_name item] is [Some name] when the item is a label definition. *)
val label_name : item -> string option
val bytes : string -> item
val zeros : int -> item
val qword : int -> item
val align : int -> item
val insn : Insn.t -> item

(** {1 Instructions} *)

val nop : item
val hlt : item
val syscall : item
val ret : item
val mov : Reg.t -> Insn.operand -> item
val movl : Reg.t -> string -> item
(** Load the address of a label. *)

val lea : Reg.t -> Insn.mem -> item
val ld : Reg.t -> Insn.mem -> item
val ldb : Reg.t -> Insn.mem -> item
val st : Insn.mem -> Reg.t -> item
val stb : Insn.mem -> Reg.t -> item
val sti : Insn.mem -> int -> item
val stib : Insn.mem -> int -> item
val add : Reg.t -> Insn.operand -> item
val sub : Reg.t -> Insn.operand -> item
val imul : Reg.t -> Insn.operand -> item
val div : Reg.t -> Insn.operand -> item
val rem : Reg.t -> Insn.operand -> item
val and_ : Reg.t -> Insn.operand -> item
val or_ : Reg.t -> Insn.operand -> item
val xor : Reg.t -> Insn.operand -> item
val shl : Reg.t -> Insn.operand -> item
val shr : Reg.t -> Insn.operand -> item
val sar : Reg.t -> Insn.operand -> item
val neg : Reg.t -> item
val not_ : Reg.t -> item
val inc : Reg.t -> item
val dec : Reg.t -> item
val cmp : Reg.t -> Insn.operand -> item
val test : Reg.t -> Insn.operand -> item
val jmp : string -> item
val je : string -> item
val jne : string -> item
val jl : string -> item
val jle : string -> item
val jg : string -> item
val jge : string -> item
val jb : string -> item
val jbe : string -> item
val ja : string -> item
val jae : string -> item
val js : string -> item
val jns : string -> item
val jcc : Insn.cond -> string -> item
val call : string -> item
val push : Insn.operand -> item
val pop : Reg.t -> item
val setcc : Insn.cond -> Reg.t -> item

(** {1 Operand sugar} *)

val r : Reg.t -> Insn.operand
val i : int -> Insn.operand
val ( @+ ) : Reg.t -> int -> Insn.mem
(** [base @+ disp]. *)

val idx : Reg.t -> Reg.t * int -> Insn.mem
(** [idx base (index, scale)]. *)

val idxd : Reg.t -> Reg.t * int -> int -> Insn.mem
val abs : int -> Insn.mem
