(** Checkpoint/restore baselines the paper argues against (§3, §6).

    Three comparators for the lightweight snapshot:
    - {!full_capture}: libckpt-style full checkpoint — eagerly copies every
      mapped page out of the address space;
    - {!incr_capture}: libckpt's incremental mode — copies only pages
      dirtied since the previous checkpoint (dirty tracking stands in for
      the mprotect write-fault scheme libckpt uses);
    - {!clone}: fork-style eager address-space duplication.

    All report bytes copied so E2 can plot cost against address-space
    size. *)

type full
(** A self-contained eager copy of an address space. *)

val full_capture : Mem.Addr_space.t -> full
val full_restore : Mem.Addr_space.t -> full -> unit
(** Restores exactly the captured pages (pages mapped since are unmapped). *)

val full_bytes : full -> int

type incr_chain
(** A base checkpoint plus a chain of dirty-page deltas. *)

val incr_start : Mem.Addr_space.t -> incr_chain
val incr_capture : incr_chain -> Mem.Addr_space.t -> unit
(** Append a delta holding the pages dirtied since the last capture. *)

val incr_restore : Mem.Addr_space.t -> incr_chain -> index:int -> unit
(** Restore checkpoint [index] (0 = base, n = after n-th delta).
    @raise Invalid_argument on a bad index. *)

val incr_count : incr_chain -> int
val incr_bytes : incr_chain -> int
(** Total bytes stored across base and deltas. *)

val clone : Mem.Phys_mem.t -> Mem.Addr_space.t -> Mem.Addr_space.t
(** Fork-style eager duplicate (its cost is what §3 calls the "large
    performance overheads" of the naive approach). *)
