(* SplitMix64 specialised to OCaml's 63-bit native ints: we run the full
   64-bit algorithm on Int64 and keep the low 62 bits of the output. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask_bits =
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits (bound - 1) 0
  in
  let mask = (1 lsl max 1 mask_bits) - 1 in
  let rec draw () =
    let v = next t land mask in
    if v < bound then v else draw ()
  in
  draw ()

let bool t = next t land 1 = 1

let float t bound = Float.of_int (next t) /. Float.ldexp 1.0 62 *. bound

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))
