(** Deterministic pseudo-random numbers (SplitMix64).

    Benchmarks and workload generators must be reproducible run to run, so
    nothing in this repository uses [Stdlib.Random]; every consumer owns a
    [Prng.t] seeded explicitly. *)

type t

val create : seed:int -> t
val copy : t -> t

val next : t -> int
(** 62 uniformly random bits (non-negative). *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [bound] must be > 0. *)

val bool : t -> bool
val float : t -> float -> float
val shuffle : t -> 'a array -> unit
val pick : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)
