lib/stdx/intset.ml: List Ptmap
