lib/stdx/vec.ml: Array List Printf
