lib/stdx/pheap.mli:
