lib/stdx/pheap.ml: List
