lib/stdx/prng.mli:
