lib/stdx/ptmap.ml: Format Hashtbl List
