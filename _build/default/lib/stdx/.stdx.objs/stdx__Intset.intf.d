lib/stdx/intset.mli:
