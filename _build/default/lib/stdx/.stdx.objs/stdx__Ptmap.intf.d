lib/stdx/ptmap.mli: Format
