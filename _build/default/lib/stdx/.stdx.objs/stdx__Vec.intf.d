lib/stdx/vec.mli:
