lib/stdx/prng.ml: Array Float Int64
