type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len

let check t i op =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0,%d)" op i t.len)

let get t i = check t i "get"; t.data.(i)

let set t i v = check t i "set"; t.data.(i) <- v

let ensure t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do cap := !cap * 2 done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t v =
  ensure t (t.len + 1);
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    let v = t.data.(t.len) in
    t.data.(t.len) <- t.dummy;
    Some v
  end

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate";
  Array.fill t.data n (t.len - n) t.dummy;
  t.len <- n

let iter f t =
  for i = 0 to t.len - 1 do f t.data.(i) done

let iteri f t =
  for i = 0 to t.len - 1 do f i t.data.(i) done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do acc := f !acc t.data.(i) done;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let to_array t = Array.sub t.data 0 t.len

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)
