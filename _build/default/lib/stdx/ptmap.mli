(** Persistent integer maps implemented as little-endian Patricia tries
    (Okasaki & Gill, "Fast Mergeable Integer Maps").

    This is the workhorse behind {!Mem.Addr_space}: a snapshot of an address
    space is just a reference to a trie root, so capture is O(1) and two
    snapshots share all unmodified subtrees structurally.  Keys may be any
    native [int], including negative ones. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val singleton : int -> 'a -> 'a t

val mem : int -> 'a t -> bool
val find_opt : int -> 'a t -> 'a option

val find : int -> 'a t -> 'a
(** @raise Not_found when the key is unbound. *)

val add : int -> 'a -> 'a t -> 'a t

val update : int -> ('a option -> 'a option) -> 'a t -> 'a t
(** [update k f m] rebinds [k] according to [f (find_opt k m)]: [None]
    removes the binding, [Some v] (re)binds it to [v]. *)

val remove : int -> 'a t -> 'a t
val cardinal : 'a t -> int

val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
val for_all : (int -> 'a -> bool) -> 'a t -> bool
val exists : (int -> 'a -> bool) -> 'a t -> bool
val filter : (int -> 'a -> bool) -> 'a t -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t

val choose_opt : 'a t -> (int * 'a) option
val min_binding_opt : 'a t -> (int * 'a) option
val max_binding_opt : 'a t -> (int * 'a) option

val union : (int -> 'a -> 'a -> 'a) -> 'a t -> 'a t -> 'a t
(** [union f a b] contains all keys of [a] and [b]; keys present in both are
    combined with [f]. *)

val sym_diff : ('a -> 'a -> bool) -> 'a t -> 'a t -> (int * 'a option * 'a option) list
(** [sym_diff eq a b] lists the keys whose bindings differ between [a] and
    [b] (missing bindings reported as [None]).  Shared subtrees are pruned by
    physical equality, which makes diffing two snapshots of the same lineage
    proportional to the number of COW'd pages, not to the address-space
    size. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
val bindings : 'a t -> (int * 'a) list
(** Bindings in increasing (unsigned) key order within each sign class; use
    only where order does not matter or keys are non-negative. *)

val of_list : (int * 'a) list -> 'a t
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
