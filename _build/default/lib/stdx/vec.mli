(** Growable arrays (amortised O(1) push), used for clause arenas, frame
    tables and instruction buffers. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused capacity; it is never observable. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val pop : 'a t -> 'a option
val clear : 'a t -> unit
val truncate : 'a t -> int -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val last : 'a t -> 'a option
