(** Persistent sets of integers, a thin veneer over {!Ptmap}. *)

type t

val empty : t
val is_empty : t -> bool
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val cardinal : t -> int
val union : t -> t -> t
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'b -> 'b) -> t -> 'b -> 'b
val elements : t -> int list
val of_list : int list -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
