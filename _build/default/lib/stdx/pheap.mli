(** Persistent pairing heaps, used by the A* / SM-A* frontiers.

    Elements carry an explicit priority; ties are broken by insertion order
    (FIFO), which keeps strategy schedules deterministic. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val insert : prio:float -> 'a -> 'a t -> 'a t

val find_min : 'a t -> (float * 'a) option
val delete_min : 'a t -> ((float * 'a) * 'a t) option

val merge : 'a t -> 'a t -> 'a t
val size : 'a t -> int
val to_sorted_list : 'a t -> (float * 'a) list

val delete_max : 'a t -> ((float * 'a) * 'a t) option
(** Remove the entry with the largest priority (linear scan; used by SM-A*'s
    worst-leaf eviction, where heaps stay bounded by the memory limit). *)

val fold : (float -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
