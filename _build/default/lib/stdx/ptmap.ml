(* Little-endian Patricia tries (Okasaki & Gill).  The branching bit is the
   lowest bit in which the two subtrees' keys differ; [prefix] holds the bits
   below the branching bit. *)

type 'a t =
  | Empty
  | Leaf of int * 'a
  | Branch of int * int * 'a t * 'a t
      (* Branch (prefix, branching_bit, left, right): [left] holds the keys
         whose [branching_bit] is 0, [right] those where it is 1. *)

let empty = Empty

let is_empty = function Empty -> true | Leaf _ | Branch _ -> false

let singleton k v = Leaf (k, v)

(* Lowest set bit of [x]; relies on two's-complement [x land (-x)]. *)
let lowest_bit x = x land (-x)

let branching_bit p0 p1 = lowest_bit (p0 lxor p1)

let mask k m = k land (m - 1)

let zero_bit k m = k land m = 0

let match_prefix k p m = mask k m = p

let rec mem k = function
  | Empty -> false
  | Leaf (j, _) -> j = k
  | Branch (p, m, l, r) ->
    match_prefix k p m && mem k (if zero_bit k m then l else r)

let rec find_opt k = function
  | Empty -> None
  | Leaf (j, v) -> if j = k then Some v else None
  | Branch (p, m, l, r) ->
    if match_prefix k p m then find_opt k (if zero_bit k m then l else r)
    else None

let find k t = match find_opt k t with Some v -> v | None -> raise Not_found

let branch p m l r =
  match l, r with
  | Empty, t | t, Empty -> t
  | _, _ -> Branch (p, m, l, r)

let join p0 t0 p1 t1 =
  let m = branching_bit p0 p1 in
  if zero_bit p0 m then Branch (mask p0 m, m, t0, t1)
  else Branch (mask p0 m, m, t1, t0)

let rec add k v = function
  | Empty -> Leaf (k, v)
  | Leaf (j, _) as t ->
    if j = k then Leaf (k, v) else join k (Leaf (k, v)) j t
  | Branch (p, m, l, r) as t ->
    if match_prefix k p m then
      if zero_bit k m then Branch (p, m, add k v l, r)
      else Branch (p, m, l, add k v r)
    else join k (Leaf (k, v)) p t

let rec remove k = function
  | Empty -> Empty
  | Leaf (j, _) as t -> if j = k then Empty else t
  | Branch (p, m, l, r) as t ->
    if match_prefix k p m then
      if zero_bit k m then branch p m (remove k l) r
      else branch p m l (remove k r)
    else t

let update k f t =
  match f (find_opt k t) with
  | None -> remove k t
  | Some v -> add k v t

let rec cardinal = function
  | Empty -> 0
  | Leaf _ -> 1
  | Branch (_, _, l, r) -> cardinal l + cardinal r

let rec iter f = function
  | Empty -> ()
  | Leaf (k, v) -> f k v
  | Branch (_, _, l, r) -> iter f l; iter f r

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Leaf (k, v) -> f k v acc
  | Branch (_, _, l, r) -> fold f r (fold f l acc)

let rec for_all p = function
  | Empty -> true
  | Leaf (k, v) -> p k v
  | Branch (_, _, l, r) -> for_all p l && for_all p r

let rec exists p = function
  | Empty -> false
  | Leaf (k, v) -> p k v
  | Branch (_, _, l, r) -> exists p l || exists p r

let rec filter p = function
  | Empty -> Empty
  | Leaf (k, v) as t -> if p k v then t else Empty
  | Branch (pr, m, l, r) -> branch pr m (filter p l) (filter p r)

let rec map f = function
  | Empty -> Empty
  | Leaf (k, v) -> Leaf (k, f v)
  | Branch (p, m, l, r) -> Branch (p, m, map f l, map f r)

let rec mapi f = function
  | Empty -> Empty
  | Leaf (k, v) -> Leaf (k, f k v)
  | Branch (p, m, l, r) -> Branch (p, m, mapi f l, mapi f r)

let rec choose_opt = function
  | Empty -> None
  | Leaf (k, v) -> Some (k, v)
  | Branch (_, _, l, _) -> choose_opt l

let min_binding_opt t =
  fold
    (fun k v acc ->
      match acc with
      | Some (k', _) when k' <= k -> acc
      | Some _ | None -> Some (k, v))
    t None

let max_binding_opt t =
  fold
    (fun k v acc ->
      match acc with
      | Some (k', _) when k' >= k -> acc
      | Some _ | None -> Some (k, v))
    t None

(* Unsigned comparison of branching bits: a mask equal to [min_int] (sign
   bit) is the *highest* little-endian branching bit, not the lowest. *)
let mask_lt m n = (m lxor min_int) < (n lxor min_int)

let rec union f a b =
  match a, b with
  | Empty, t | t, Empty -> t
  | Leaf (k, v), t -> update k (function None -> Some v | Some w -> Some (f k v w)) t
  | t, Leaf (k, v) -> update k (function None -> Some v | Some w -> Some (f k w v)) t
  | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
    if m = n && p = q then Branch (p, m, union f l0 l1, union f r0 r1)
    else if mask_lt m n && match_prefix q p m then
      (* [b] fits inside one side of [a]. *)
      if zero_bit q m then Branch (p, m, union f l0 b, r0)
      else Branch (p, m, l0, union f r0 b)
    else if mask_lt n m && match_prefix p q n then
      if zero_bit p n then Branch (q, n, union f a l1, r1)
      else Branch (q, n, l1, union f a r1)
    else join p a q b

let bindings t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let of_list l = List.fold_left (fun t (k, v) -> add k v t) empty l

let rec equal eqv a b =
  a == b
  ||
  match a, b with
  | Empty, Empty -> true
  | Leaf (k0, v0), Leaf (k1, v1) -> k0 = k1 && eqv v0 v1
  | Branch (p0, m0, l0, r0), Branch (p1, m1, l1, r1) ->
    p0 = p1 && m0 = m1 && equal eqv l0 l1 && equal eqv r0 r1
  | (Empty | Leaf _ | Branch _), _ -> false

(* Diff two tries, pruning physically-equal subtrees.  When the shapes do not
   line up we fall back to enumerating both sides through a scratch table. *)
let sym_diff eqv a b =
  if a == b then []
  else begin
    let acc = ref [] in
    let tbl : (int, 'a option * 'a option) Hashtbl.t = Hashtbl.create 64 in
    let note_left k v =
      match Hashtbl.find_opt tbl k with
      | None -> Hashtbl.replace tbl k (Some v, None)
      | Some (_, r) -> Hashtbl.replace tbl k (Some v, r)
    in
    let note_right k v =
      match Hashtbl.find_opt tbl k with
      | None -> Hashtbl.replace tbl k (None, Some v)
      | Some (l, _) -> Hashtbl.replace tbl k (l, Some v)
    in
    let rec go x y =
      if x == y then ()
      else
        match x, y with
        | Branch (p0, m0, l0, r0), Branch (p1, m1, l1, r1) when p0 = p1 && m0 = m1 ->
          go l0 l1; go r0 r1
        | _, _ ->
          iter note_left x;
          iter note_right y
    in
    go a b;
    Hashtbl.iter
      (fun k -> function
        | Some v, Some w -> if not (eqv v w) then acc := (k, Some v, Some w) :: !acc
        | (None, None) as both -> ignore both
        | l, r -> acc := (k, l, r) :: !acc)
      tbl;
    !acc
  end

let pp ppv fmt t =
  Format.fprintf fmt "@[<hov 1>{";
  let first = ref true in
  iter
    (fun k v ->
      if !first then first := false else Format.fprintf fmt ";@ ";
      Format.fprintf fmt "%d -> %a" k ppv v)
    t;
  Format.fprintf fmt "}@]"
