type t = unit Ptmap.t

let empty = Ptmap.empty
let is_empty = Ptmap.is_empty
let mem = Ptmap.mem
let add k t = Ptmap.add k () t
let remove = Ptmap.remove
let cardinal = Ptmap.cardinal
let union a b = Ptmap.union (fun _ () () -> ()) a b
let iter f t = Ptmap.iter (fun k () -> f k) t
let fold f t acc = Ptmap.fold (fun k () acc -> f k acc) t acc
let elements t = List.rev (fold (fun k acc -> k :: acc) t [])
let of_list l = List.fold_left (fun t k -> add k t) empty l
let equal a b = Ptmap.equal (fun () () -> true) a b
let subset a b = Ptmap.for_all (fun k () -> mem k b) a
