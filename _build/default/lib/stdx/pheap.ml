(* Pairing heap with an insertion sequence number for deterministic FIFO
   tie-breaking. *)

type 'a node = { prio : float; seq : int; value : 'a; kids : 'a node list }

type 'a t = { root : 'a node option; size : int; next_seq : int }

let empty = { root = None; size = 0; next_seq = 0 }

let is_empty t = t.root = None

let node_lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let meld a b =
  if node_lt a b then { a with kids = b :: a.kids }
  else { b with kids = a :: b.kids }

let insert ~prio value t =
  let n = { prio; seq = t.next_seq; value; kids = [] } in
  let root = match t.root with None -> n | Some r -> meld r n in
  { root = Some root; size = t.size + 1; next_seq = t.next_seq + 1 }

let find_min t =
  match t.root with None -> None | Some r -> Some (r.prio, r.value)

let rec merge_pairs = function
  | [] -> None
  | [ n ] -> Some n
  | a :: b :: rest -> (
    let ab = meld a b in
    match merge_pairs rest with None -> Some ab | Some r -> Some (meld ab r))

let delete_min t =
  match t.root with
  | None -> None
  | Some r ->
    let rest = { root = merge_pairs r.kids; size = t.size - 1; next_seq = t.next_seq } in
    Some ((r.prio, r.value), rest)

let merge a b =
  match a.root, b.root with
  | None, _ -> { b with next_seq = max a.next_seq b.next_seq }
  | _, None -> { a with next_seq = max a.next_seq b.next_seq }
  | Some x, Some y ->
    { root = Some (meld x y);
      size = a.size + b.size;
      next_seq = max a.next_seq b.next_seq }

let size t = t.size

let rec fold_node f n acc =
  let acc = f n.prio n.value acc in
  List.fold_left (fun acc k -> fold_node f k acc) acc n.kids

let fold f t acc = match t.root with None -> acc | Some r -> fold_node f r acc

let to_sorted_list t =
  let rec drain t acc =
    match delete_min t with
    | None -> List.rev acc
    | Some (entry, rest) -> drain rest (entry :: acc)
  in
  drain t []

(* Linear-time removal of the worst entry: rebuild the heap without the
   latest-sequenced maximal-priority node. *)
let delete_max t =
  match t.root with
  | None -> None
  | Some _ ->
    let worst =
      fold
        (fun prio v acc ->
          match acc with
          | Some (p, _) when p >= prio -> acc
          | Some _ | None -> Some (prio, v))
        t None
    in
    (match worst with
    | None -> None
    | Some (wp, wv) ->
      let rebuilt =
        fold
          (fun prio v (dropped, h) ->
            if (not dropped) && prio = wp && v == wv then true, h
            else dropped, insert ~prio v h)
          t (false, empty)
      in
      Some ((wp, wv), snd rebuilt))
