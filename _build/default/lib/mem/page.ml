let shift = 12
let size = 1 lsl shift
let offset_mask = size - 1
let vpn_of_addr addr = addr lsr shift
let addr_of_vpn vpn = vpn lsl shift
let offset_of_addr addr = addr land offset_mask
let round_up n = (n + size - 1) land lnot offset_mask
let round_down n = n land lnot offset_mask
let is_aligned n = n land offset_mask = 0
