lib/mem/page.ml:
