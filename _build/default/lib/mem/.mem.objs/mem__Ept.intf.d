lib/mem/ept.mli: Bytes Mem_metrics Phys_mem
