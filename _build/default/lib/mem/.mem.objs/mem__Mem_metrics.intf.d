lib/mem/mem_metrics.mli: Format
