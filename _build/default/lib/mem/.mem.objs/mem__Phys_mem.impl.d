lib/mem/phys_mem.ml: Bytes Hashtbl Mem_metrics Page
