lib/mem/ept.ml: Addr_space Array Bytes Char Hashtbl Int64 List Mem_metrics Page Phys_mem String
