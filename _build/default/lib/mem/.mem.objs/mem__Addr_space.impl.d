lib/mem/addr_space.ml: Array Bytes Char Hashtbl Int64 List Mem_metrics Page Phys_mem Stdx String
