lib/mem/page.mli:
