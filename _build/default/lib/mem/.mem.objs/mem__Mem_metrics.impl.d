lib/mem/mem_metrics.ml: Format
