lib/mem/phys_mem.mli: Bytes Mem_metrics
