lib/mem/addr_space.mli: Bytes Mem_metrics Phys_mem Stdx
