(** The fidelity address-space backend: an explicit 4-level radix page table
    with copy-on-write applied to the page-table pages themselves.

    This mirrors what the paper's nested-page-table implementation does in
    hardware: a snapshot shares the table {e root}, and the first store after
    a capture path-copies the table nodes from the root down to the leaf
    before copying the data page.  It implements the same operations as
    {!Addr_space} (and is checked equivalent to it by the test-suite); the E8
    bench compares the two mechanisms. *)

type t
type snapshot

val create : Phys_mem.t -> t
val metrics : t -> Mem_metrics.t

val map_zero : t -> vpn:int -> unit
val map_data : t -> vpn:int -> string -> unit
val unmap : t -> vpn:int -> unit
val is_mapped : t -> vpn:int -> bool
val mapped_pages : t -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u64 : t -> int -> int
val write_u64 : t -> int -> int -> unit
val read_bytes : t -> addr:int -> len:int -> Bytes.t
val write_bytes : t -> addr:int -> string -> unit

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val snapshot_pages : snapshot -> int
val distinct_frames : snapshot list -> int

val levels : int
(** Radix levels in the table (4, as in x86-64 long mode). *)

val fanout : int
(** Entries per table node (512). *)
