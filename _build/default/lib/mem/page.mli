(** Page geometry shared by every memory subsystem module.

    The simulated machine uses 4 KiB pages, like the x86 hardware the paper
    targets; all address-space state is tracked at page granularity and COW
    copies move exactly one page. *)

val shift : int
(** log2 of the page size (12). *)

val size : int
(** Page size in bytes (4096). *)

val offset_mask : int
(** [addr land offset_mask] is the offset within the page. *)

val vpn_of_addr : int -> int
(** Virtual page number containing byte address [addr]. *)

val addr_of_vpn : int -> int
(** First byte address of a page. *)

val offset_of_addr : int -> int

val round_up : int -> int
(** Smallest page-aligned value >= the argument. *)

val round_down : int -> int
val is_aligned : int -> bool
