(** Lazy DPLL(T) for integer difference logic: a CDCL boolean skeleton
    ({!Sat.Solver}) with theory validation by negative-cycle detection
    ({!Dl}); theory conflicts come back as blocking clauses (the classic
    lemmas-on-demand loop).

    Incrementality mirrors the SAT solver's push/pop frames, so the E4
    experiment can compare warm (push q) vs cold (re-encode p ∧ q) solving
    for the SMT fragment as well. *)

type t

type outcome =
  | Sat of (int -> int)
      (** integer model: variable -> value (variable 0 maps to 0) *)
  | Unsat
  | Unknown

val create : unit -> t

val assert_formula : t -> Formula.t -> unit
(** Assert in the current frame. *)

val solve : ?max_rounds:int -> t -> outcome
(** [max_rounds] bounds theory-refinement iterations (default 10_000). *)

val push : t -> unit
val pop : t -> unit

val theory_rounds : t -> int
(** Refinement iterations used by the last [solve]. *)

val sat_solver : t -> Sat.Solver.t
