type outcome =
  | Sat of (int -> int)
  | Unsat
  | Unknown

type t = {
  sat : Sat.Solver.t;
  mutable atoms : (int * (int * int * int)) list;  (* SAT var -> atom *)
  mutable atom_of_triple : (int * int * int, int) Hashtbl.t;
  mutable next_var : int;
  mutable max_int_var : int;
  mutable last_rounds : int;
}

let create () =
  { sat = Sat.Solver.create ();
    atoms = [];
    atom_of_triple = Hashtbl.create 64;
    next_var = 1;
    max_int_var = 0;
    last_rounds = 0 }

let assert_formula t formula =
  let enc = Formula.tseitin ~first_var:t.next_var formula in
  t.next_var <- enc.Formula.next_var;
  (* Merge atom tables: tseitin may re-create atoms already known; unify by
     adding equivalence clauses. *)
  List.iter
    (fun (v, triple) ->
      match Hashtbl.find_opt t.atom_of_triple triple with
      | None ->
        Hashtbl.replace t.atom_of_triple triple v;
        t.atoms <- (v, triple) :: t.atoms;
        let x, y, _ = triple in
        t.max_int_var <- max t.max_int_var (max x y)
      | Some v0 ->
        Sat.Solver.add_clause t.sat [ -v0; v ];
        Sat.Solver.add_clause t.sat [ v0; -v ])
    enc.Formula.atoms;
  Sat.Solver.add_cnf t.sat enc.Formula.clauses;
  Sat.Solver.add_clause t.sat [ enc.Formula.top ]

let push t = Sat.Solver.push t.sat
let pop t = Sat.Solver.pop t.sat

(* One theory check of the boolean model; [Ok model] or [Error blocking]. *)
let validate t =
  let constrs = ref [] in
  List.iter
    (fun (v, (x, y, c)) ->
      match Sat.Solver.value t.sat v with
      | Some true -> constrs := { Dl.x; y; c; tag = v } :: !constrs
      | Some false ->
        (* not (x - y <= c)  <=>  y - x <= -c-1 *)
        constrs := { Dl.x = y; y = x; c = -c - 1; tag = -v } :: !constrs
      | None -> ())
    t.atoms;
  match Dl.check ~num_vars:t.max_int_var !constrs with
  | Dl.Consistent model -> Ok model
  | Dl.Conflict tags -> Error (List.map (fun tag -> -tag) tags)

let solve ?(max_rounds = 10_000) t =
  let rec refine round =
    if round >= max_rounds then Unknown
    else
      match Sat.Solver.solve t.sat with
      | Sat.Solver.Unsat -> Unsat
      | Sat.Solver.Unknown -> Unknown
      | Sat.Solver.Sat -> (
        match validate t with
        | Ok model ->
          t.last_rounds <- round + 1;
          Sat
            (fun v ->
              if v = 0 then 0
              else if v <= t.max_int_var then model.(v)
              else 0)
        | Error blocking ->
          Sat.Solver.add_clause t.sat blocking;
          refine (round + 1))
  in
  t.last_rounds <- 0;
  let result = refine 0 in
  (match result with Sat _ -> () | Unsat | Unknown -> t.last_rounds <- max t.last_rounds 1);
  result

let theory_rounds t = t.last_rounds
let sat_solver t = t.sat
