(** The difference-logic theory solver: conjunctions of constraints
    [x - y <= c] over integer variables, decided by negative-cycle
    detection (Bellman-Ford) on the constraint graph.

    Variable 0 is the distinguished zero constant, so absolute bounds are
    expressible as [x - 0 <= c] and [0 - x <= -c]. *)

type constr = {
  x : int;
  y : int;
  c : int;   (** x - y <= c *)
  tag : int; (** caller's identifier, reported back in conflicts *)
}

type verdict =
  | Consistent of int array
      (** a satisfying integer model, indexed by variable (model.(0) = 0) *)
  | Conflict of int list
      (** tags of a minimal inconsistent subset (a negative cycle) *)

val check : num_vars:int -> constr list -> verdict
(** [num_vars] counts variables excluding the zero constant; variables are
    [0..num_vars] with 0 the constant. *)
