type constr = { x : int; y : int; c : int; tag : int }

type verdict =
  | Consistent of int array
  | Conflict of int list

(* Constraint x - y <= c is the edge y -> x with weight c; any potential
   function d with d.(x) <= d.(y) + c for every edge is a model.  A negative
   cycle is exactly an inconsistent subset. *)
let check ~num_vars constrs =
  let n = num_vars + 1 in
  let edges = Array.of_list constrs in
  let dist = Array.make n 0 in
  (* Start all-zeros (a virtual source connected to every node with weight
     0); V rounds of relaxation; a relaxation in round V exposes a cycle. *)
  let pred = Array.make n (-1) in   (* index into edges *)
  let changed = ref true in
  let round = ref 0 in
  let offending = ref (-1) in
  while !changed && !offending < 0 && !round <= n do
    changed := false;
    Array.iteri
      (fun ei e ->
        if dist.(e.y) + e.c < dist.(e.x) then begin
          dist.(e.x) <- dist.(e.y) + e.c;
          pred.(e.x) <- ei;
          changed := true;
          if !round = n then offending := ei
        end)
      edges;
    incr round
  done;
  if !offending < 0 then begin
    (* normalise so the zero constant sits at 0 *)
    let base = dist.(0) in
    Consistent (Array.map (fun d -> d - base) dist)
  end
  else begin
    (* Walk the predecessor graph backward n times from the offending
       edge's head; because that head's label needs >= n relaxations, the
       walk necessarily enters a cycle, which is the inconsistent core. *)
    let v = ref edges.(!offending).x in
    for _ = 1 to n do
      assert (pred.(!v) >= 0);
      v := edges.(pred.(!v)).y
    done;
    let start = !v in
    let tags = ref [] in
    let cur = ref start in
    let continue_ = ref true in
    while !continue_ do
      let edge = edges.(pred.(!cur)) in
      tags := edge.tag :: !tags;
      cur := edge.y;
      if !cur = start then continue_ := false
    done;
    Conflict !tags
  end
