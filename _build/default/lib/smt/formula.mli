(** Quantifier-free difference-logic formulas and their Tseitin encoding.

    Atoms are [x - y <= c] over integer variables ([Smt] variable 0 is the
    zero constant).  The usual comparisons are derived forms: [x < y] is
    [x - y <= -1], [x = y] is the conjunction of two inequalities, etc. *)

type t =
  | True
  | False
  | Atom of { x : int; y : int; c : int }  (** x - y <= c *)
  | Not of t
  | And of t list
  | Or of t list
  | Imp of t * t
  | Iff of t * t

(** {1 Sugar} *)

val le : int -> int -> int -> t
(** [le x y c] is [x - y <= c]. *)

val lt : int -> int -> t
val leq : int -> int -> t
val eq : int -> int -> t
val eq_const : int -> int -> t
(** [eq_const x c] constrains x to the constant c. *)

val le_const : int -> int -> t
val ge_const : int -> int -> t
val neq : int -> int -> t

type encoded = {
  clauses : int list list;          (** CNF over SAT variables *)
  atoms : (int * (int * int * int)) list;
      (** SAT variable -> (x, y, c); positive polarity means the atom holds *)
  top : int;                        (** SAT literal asserting the formula *)
  next_var : int;                   (** first unused SAT variable *)
}

val tseitin : ?first_var:int -> t -> encoded
(** Encode to equisatisfiable CNF.  Atom variables are allocated first,
    then definition variables; [first_var] lets callers compose multiple
    encodings into one solver. *)
