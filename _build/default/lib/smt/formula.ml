type t =
  | True
  | False
  | Atom of { x : int; y : int; c : int }
  | Not of t
  | And of t list
  | Or of t list
  | Imp of t * t
  | Iff of t * t

let le x y c = Atom { x; y; c }
let lt x y = Atom { x; y; c = -1 }
let leq x y = Atom { x; y; c = 0 }
let eq x y = And [ leq x y; leq y x ]
let eq_const x c = And [ le x 0 c; le 0 x (-c) ]
let le_const x c = le x 0 c
let ge_const x c = le 0 x (-c)
let neq x y = Or [ lt x y; lt y x ]

type encoded = {
  clauses : int list list;
  atoms : (int * (int * int * int)) list;
  top : int;
  next_var : int;
}

let tseitin ?(first_var = 1) formula =
  let next = ref first_var in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let atom_table : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let clauses = ref [] in
  let emit c = clauses := c :: !clauses in
  (* Returns a literal equivalent to the subformula. *)
  let rec enc f =
    match f with
    | True ->
      let v = fresh () in
      emit [ v ];
      v
    | False ->
      let v = fresh () in
      emit [ -v ];
      v
    | Atom { x; y; c } -> (
      match Hashtbl.find_opt atom_table (x, y, c) with
      | Some v -> v
      | None ->
        let v = fresh () in
        Hashtbl.replace atom_table (x, y, c) v;
        v)
    | Not g -> -enc g
    | And gs ->
      let v = fresh () in
      let lits = List.map enc gs in
      List.iter (fun l -> emit [ -v; l ]) lits;
      emit (v :: List.map (fun l -> -l) lits);
      v
    | Or gs ->
      let v = fresh () in
      let lits = List.map enc gs in
      List.iter (fun l -> emit [ v; -l ]) lits;
      emit (-v :: lits);
      v
    | Imp (a, b) -> enc (Or [ Not a; b ])
    | Iff (a, b) ->
      let la = enc a and lb = enc b in
      let v = fresh () in
      emit [ -v; -la; lb ];
      emit [ -v; la; -lb ];
      emit [ v; la; lb ];
      emit [ v; -la; -lb ];
      v
  in
  let top = enc formula in
  { clauses = List.rev !clauses;
    atoms = Hashtbl.fold (fun (x, y, c) v acc -> (v, (x, y, c)) :: acc) atom_table [];
    top;
    next_var = !next }
