lib/smt/dl.mli:
