lib/smt/smt_solver.mli: Formula Sat
