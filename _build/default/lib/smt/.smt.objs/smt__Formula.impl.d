lib/smt/formula.ml: Hashtbl List
