lib/smt/smt_solver.ml: Array Dl Formula Hashtbl List Sat
