lib/smt/dl.ml: Array
