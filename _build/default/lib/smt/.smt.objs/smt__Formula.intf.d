lib/smt/formula.mli:
