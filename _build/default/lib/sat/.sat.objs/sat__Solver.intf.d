lib/sat/solver.mli:
