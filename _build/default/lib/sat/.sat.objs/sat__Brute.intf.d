lib/sat/brute.mli:
