lib/sat/brute.ml: Array List
