lib/sat/solver.ml: Array List Stdx
