let eval assignment clauses =
  List.for_all
    (List.exists (fun l ->
         if l > 0 then assignment.(l) else not assignment.(-l)))
    clauses

let iter_assignments ~num_vars f =
  if num_vars > 24 then invalid_arg "Sat.Brute: too many variables";
  let assignment = Array.make (num_vars + 1) false in
  let stop = ref false in
  let total = 1 lsl num_vars in
  let mask = ref 0 in
  while (not !stop) && !mask < total do
    for v = 1 to num_vars do
      assignment.(v) <- !mask land (1 lsl (v - 1)) <> 0
    done;
    if f assignment then stop := true;
    incr mask
  done

let satisfiable ~num_vars clauses =
  let found = ref false in
  iter_assignments ~num_vars (fun a ->
      if eval a clauses then found := true;
      !found);
  !found

let count_models ~num_vars clauses =
  let count = ref 0 in
  iter_assignments ~num_vars (fun a ->
      if eval a clauses then incr count;
      false);
  !count

let find_model ~num_vars clauses =
  let result = ref None in
  iter_assignments ~num_vars (fun a ->
      if eval a clauses then begin
        result := Some (Array.copy a);
        true
      end
      else false);
  !result
