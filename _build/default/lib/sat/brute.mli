(** Exhaustive reference solver for cross-checking {!Solver} on small
    instances (tests and property checks only). *)

val satisfiable : num_vars:int -> int list list -> bool

val count_models : num_vars:int -> int list list -> int

val find_model : num_vars:int -> int list list -> bool array option
(** Index 1..num_vars; index 0 unused. *)
