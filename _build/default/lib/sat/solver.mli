(** CDCL SAT solver: two-watched-literal propagation, VSIDS decisions,
    first-UIP clause learning, phase saving and Luby restarts.

    Stands in for the paper's §2 incremental solver (Z3): [push]/[pop]
    frames make [solve] incremental, so solving [p] and then [p ∧ q] reuses
    everything learned about [p] — the behaviour E4 compares against
    solving from scratch and against snapshot-based incrementality.

    Clauses are lists of DIMACS literals (positive = variable, negative =
    negation, never 0).  Variables are created on demand. *)

type t

type outcome =
  | Sat
  | Unsat
  | Unknown  (** conflict budget exhausted *)

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learned : int;
  mutable restarts : int;
  mutable max_var : int;
}

val create : unit -> t

val add_clause : t -> int list -> unit
(** Add a clause in the current frame.  Adding the empty clause (or a
    clause that simplifies to it) makes the solver permanently UNSAT. *)

val add_cnf : t -> int list list -> unit

val solve : ?assumptions:int list -> ?max_conflicts:int -> t -> outcome

val value : t -> int -> bool option
(** Model value of a variable after [Sat]; [None] if the variable never
    occurred or was left unconstrained. *)

val model : t -> (int * bool) list
(** All assigned variables after [Sat]. *)

val push : t -> unit
(** Open a removable clause frame. *)

val pop : t -> unit
(** Discard the most recent frame's clauses (learned consequences that
    depend on them are disabled through the frame guard).
    @raise Invalid_argument if no frame is open. *)

val frames : t -> int
val stats : t -> stats
val num_vars : t -> int
