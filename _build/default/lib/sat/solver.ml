(* CDCL in the MiniSat lineage.  Internal literal encoding: variable v >= 1
   becomes 2v (positive) / 2v+1 (negated); [lit lxor 1] is negation. *)

module Vec = Stdx.Vec

type outcome = Sat | Unsat | Unknown

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learned : int;
  mutable restarts : int;
  mutable max_var : int;
}

type clause = { lits : int array; learnt : bool }

type t = {
  mutable nvars : int;
  clauses : clause Vec.t;
  mutable watches : int Vec.t array;    (* indexed by lit *)
  mutable assigns : int array;          (* by var: 0 undef, 1 true, -1 false *)
  mutable var_level : int array;
  mutable var_reason : int array;       (* clause index or -1 *)
  mutable activity : float array;
  mutable polarity : bool array;        (* saved phase *)
  mutable seen : bool array;
  trail : int Vec.t;                    (* lits in assignment order *)
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;                    (* false once UNSAT at level 0 *)
  mutable guards : int list;            (* push/pop frame guard variables *)
  mutable all_guards : Stdx.Intset.t;   (* every guard ever created *)
  stats : stats;
  order : int Vec.t;                    (* binary max-heap of vars *)
  mutable heap_pos : int array;         (* var -> index in order, -1 if absent *)
}

let lit_of_dimacs l =
  if l = 0 then invalid_arg "Sat.Solver: literal 0";
  if l > 0 then 2 * l else (2 * -l) + 1

let var_of_lit lit = lit lsr 1
let lit_sign lit = lit land 1 = 1 (* true = negated *)

let create () =
  { nvars = 0;
    clauses = Vec.create ~dummy:{ lits = [||]; learnt = false } ();
    watches = Array.init 4 (fun _ -> Vec.create ~dummy:(-1) ());
    assigns = Array.make 2 0;
    var_level = Array.make 2 0;
    var_reason = Array.make 2 (-1);
    activity = Array.make 2 0.0;
    polarity = Array.make 2 false;
    seen = Array.make 2 false;
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    guards = [];
    all_guards = Stdx.Intset.empty;
    stats =
      { conflicts = 0; decisions = 0; propagations = 0; learned = 0;
        restarts = 0; max_var = 0 };
    order = Vec.create ~dummy:0 ();
    heap_pos = Array.make 2 (-1) }

(* {1 Order heap (max-activity)} *)

let heap_less t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = Vec.get t.order i and b = Vec.get t.order j in
  Vec.set t.order i b;
  Vec.set t.order j a;
  t.heap_pos.(a) <- j;
  t.heap_pos.(b) <- i

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less t (Vec.get t.order i) (Vec.get t.order p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let n = Vec.length t.order in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_less t (Vec.get t.order l) (Vec.get t.order !best) then best := l;
  if r < n && heap_less t (Vec.get t.order r) (Vec.get t.order !best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    let i = Vec.push t.order v in
    t.heap_pos.(v) <- i;
    heap_up t i
  end

let heap_pop t =
  match Vec.length t.order with
  | 0 -> None
  | n ->
    let top = Vec.get t.order 0 in
    let last = Vec.get t.order (n - 1) in
    ignore (Vec.pop t.order);
    t.heap_pos.(top) <- -1;
    if n > 1 then begin
      Vec.set t.order 0 last;
      t.heap_pos.(last) <- 0;
      heap_down t 0
    end;
    Some top

let heap_rescore t v = if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

(* {1 Variables} *)

let grow_array arr n fill =
  let len = Array.length arr in
  if n < len then arr
  else begin
    let out = Array.make (max n (2 * len)) fill in
    Array.blit arr 0 out 0 len;
    out
  end

let ensure_var t v =
  if v > t.nvars then begin
    let n = v + 1 in
    t.assigns <- grow_array t.assigns n 0;
    t.var_level <- grow_array t.var_level n 0;
    t.var_reason <- grow_array t.var_reason n (-1);
    t.activity <- grow_array t.activity n 0.0;
    t.polarity <- grow_array t.polarity n false;
    t.seen <- grow_array t.seen n false;
    t.heap_pos <- grow_array t.heap_pos n (-1);
    if Array.length t.watches < 2 * n + 2 then begin
      let old = t.watches in
      let out = Array.init (max (2 * n + 2) (2 * Array.length old))
          (fun i -> if i < Array.length old then old.(i) else Vec.create ~dummy:(-1) ())
      in
      t.watches <- out
    end;
    for u = t.nvars + 1 to v do
      heap_insert t u
    done;
    t.nvars <- v;
    t.stats.max_var <- max t.stats.max_var v
  end

let lit_value t lit =
  let v = t.assigns.(var_of_lit lit) in
  if v = 0 then 0 else if lit_sign lit then -v else v

let decision_level t = Vec.length t.trail_lim

(* {1 Assignment} *)

let enqueue t lit reason =
  let v = var_of_lit lit in
  t.assigns.(v) <- (if lit_sign lit then -1 else 1);
  t.var_level.(v) <- decision_level t;
  t.var_reason.(v) <- reason;
  ignore (Vec.push t.trail lit)

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 1 to t.nvars do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  heap_rescore t v

let decay_activity t = t.var_inc <- t.var_inc /. 0.95

(* {1 Watched-literal propagation} *)

let watch t lit ci = ignore (Vec.push t.watches.(lit) ci)

let attach_clause t ci =
  let c = Vec.get t.clauses ci in
  (* watch the negations: when a watched literal becomes false we visit *)
  watch t (c.lits.(0) lxor 1) ci;
  watch t (c.lits.(1) lxor 1) ci

(* Propagate everything on the trail; returns the conflicting clause id or
   -1.  The watch lists are maintained MiniSat-style with in-place
   compaction. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < Vec.length t.trail do
    let lit = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.stats.propagations <- t.stats.propagations + 1;
    let ws = t.watches.(lit) in
    let n = Vec.length ws in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = Vec.get ws !i in
      incr i;
      if !conflict >= 0 then begin
        Vec.set ws !keep ci;
        incr keep
      end
      else begin
        let c = Vec.get t.clauses ci in
        let lits = c.lits in
        (* normalise: false watched literal at position 1 *)
        let falsified = lit lxor 1 in
        if lits.(0) = falsified then begin
          lits.(0) <- lits.(1);
          lits.(1) <- falsified
        end;
        if lit_value t lits.(0) = 1 then begin
          (* satisfied; keep watching *)
          Vec.set ws !keep ci;
          incr keep
        end
        else begin
          (* look for a new literal to watch *)
          let len = Array.length lits in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < len do
            if lit_value t lits.(!k) <> -1 then begin
              let l = lits.(!k) in
              lits.(!k) <- lits.(1);
              lits.(1) <- l;
              watch t (l lxor 1) ci;
              found := true
            end;
            incr k
          done;
          if !found then ()
          else begin
            (* unit or conflict *)
            Vec.set ws !keep ci;
            incr keep;
            if lit_value t lits.(0) = -1 then conflict := ci
            else enqueue t lits.(0) ci
          end
        end
      end
    done;
    Vec.truncate ws !keep
  done;
  !conflict

(* {1 Backtracking} *)

let cancel_until t level =
  if decision_level t > level then begin
    let bound = Vec.get t.trail_lim level in
    for pos = Vec.length t.trail - 1 downto bound do
      let lit = Vec.get t.trail pos in
      let v = var_of_lit lit in
      t.polarity.(v) <- not (lit_sign lit);
      t.assigns.(v) <- 0;
      t.var_reason.(v) <- -1;
      heap_insert t v
    done;
    Vec.truncate t.trail bound;
    Vec.truncate t.trail_lim level;
    t.qhead <- Vec.length t.trail
  end

(* {1 Conflict analysis (first UIP)} *)

let analyze t confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.length t.trail - 1) in
  let confl = ref confl in
  let continue_ = ref true in
  let btlevel = ref 0 in
  while !continue_ do
    let c = Vec.get t.clauses !confl in
    let start = if !p < 0 then 0 else 1 in
    for j = start to Array.length c.lits - 1 do
      let q = c.lits.(j) in
      let v = var_of_lit q in
      if (not t.seen.(v)) && t.var_level.(v) > 0 then begin
        t.seen.(v) <- true;
        bump_var t v;
        if t.var_level.(v) >= decision_level t then incr path
        else begin
          learnt := q :: !learnt;
          btlevel := max !btlevel t.var_level.(v)
        end
      end
    done;
    (* walk the trail back to the next marked literal *)
    let rec next_seen i =
      let lit = Vec.get t.trail i in
      if t.seen.(var_of_lit lit) then i else next_seen (i - 1)
    in
    index := next_seen !index;
    let lit = Vec.get t.trail !index in
    let v = var_of_lit lit in
    t.seen.(v) <- false;
    decr path;
    p := lit;
    if !path = 0 then continue_ := false
    else begin
      confl := t.var_reason.(v);
      index := !index - 1
    end
  done;
  let learnt = (!p lxor 1) :: !learnt in
  List.iter (fun q -> t.seen.(var_of_lit q) <- false) (List.tl learnt);
  learnt, !btlevel

let record_learnt t learnt btlevel =
  match learnt with
  | [] -> assert false
  | [ unit_lit ] ->
    cancel_until t 0;
    enqueue t unit_lit (-1)
  | asserting :: _ ->
    cancel_until t btlevel;
    let lits = Array.of_list learnt in
    let ci = Vec.push t.clauses { lits; learnt = true } in
    (* position 1 must hold a literal from the backjump level for correct
       watching: find the highest-level literal among the rest *)
    let best = ref 1 in
    for j = 2 to Array.length lits - 1 do
      if t.var_level.(var_of_lit lits.(j)) > t.var_level.(var_of_lit lits.(!best)) then
        best := j
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    attach_clause t ci;
    t.stats.learned <- t.stats.learned + 1;
    enqueue t asserting ci

(* {1 Clause addition} *)

let add_internal t lits =
  if t.ok then begin
    cancel_until t 0;
    (* simplify: dedupe, drop false literals, detect tautology/satisfied *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (l lxor 1) lits) lits
    in
    let satisfied = List.exists (fun l -> lit_value t l = 1) lits in
    if tautology || satisfied then ()
    else begin
      let lits = List.filter (fun l -> lit_value t l <> -1) lits in
      match lits with
      | [] -> t.ok <- false
      | [ l ] ->
        enqueue t l (-1);
        if propagate t >= 0 then t.ok <- false
      | _ :: _ :: _ ->
        let ci = Vec.push t.clauses { lits = Array.of_list lits; learnt = false } in
        attach_clause t ci
    end
  end

let add_clause_lits t dimacs_lits =
  let lits =
    List.map
      (fun l ->
        ensure_var t (abs l);
        lit_of_dimacs l)
      dimacs_lits
  in
  lits

(* Frame guards: a clause added inside push/pop frames carries the negated
   guard literal of every open frame, and solving assumes the guards. *)
let add_clause t dimacs_lits =
  let lits = add_clause_lits t dimacs_lits in
  let guarded =
    List.fold_left (fun acc g -> lit_of_dimacs (-g) :: acc) lits t.guards
  in
  add_internal t guarded

let add_cnf t cnf = List.iter (add_clause t) cnf

let push t =
  let g = t.nvars + 1 in
  ensure_var t g;
  t.guards <- g :: t.guards;
  t.all_guards <- Stdx.Intset.add g t.all_guards

let pop t =
  match t.guards with
  | [] -> invalid_arg "Sat.Solver.pop: no open frame"
  | g :: rest ->
    t.guards <- rest;
    (* permanently disable the frame's clauses *)
    add_internal t [ lit_of_dimacs (-g) ]

let frames t = List.length t.guards

(* {1 Search} *)

(* The Luby restart sequence 1 1 2 1 1 2 4 ...; [nth] is 1-based. *)
let rec luby_nth i =
  let rec find_k k = if 1 lsl k >= i + 1 then k else find_k (k + 1) in
  let k = find_k 1 in
  if i = (1 lsl k) - 1 then 1 lsl (k - 1)
  else luby_nth (i - (1 lsl (k - 1)) + 1)

let luby i = luby_nth (i + 1)

let pick_branch t =
  let rec go () =
    match heap_pop t with
    | None -> None
    | Some v ->
      if t.assigns.(v) = 0 then Some v else go ()
  in
  go ()

let solve ?(assumptions = []) ?(max_conflicts = max_int) t =
  if not t.ok then Unsat
  else begin
    let assumption_lits =
      List.map
        (fun l ->
          ensure_var t (abs l);
          lit_of_dimacs l)
        assumptions
      @ List.rev_map (fun g -> lit_of_dimacs g) t.guards
    in
    cancel_until t 0;
    let budget = ref max_conflicts in
    let restart_count = ref 0 in
    let result = ref None in
    (match propagate t with
    | -1 -> ()
    | _ ->
      t.ok <- false;
      result := Some Unsat);
    while !result = None do
      let conflict_limit = 64 * luby !restart_count in
      let conflicts_here = ref 0 in
      let restart = ref false in
      while !result = None && not !restart do
        match propagate t with
        | ci when ci >= 0 ->
          t.stats.conflicts <- t.stats.conflicts + 1;
          incr conflicts_here;
          decr budget;
          if decision_level t = 0 then begin
            t.ok <- false;
            result := Some Unsat
          end
          else begin
            let learnt, btlevel = analyze t ci in
            record_learnt t learnt btlevel;
            decay_activity t;
            if !budget <= 0 then result := Some Unknown
            else if !conflicts_here >= conflict_limit then restart := true
          end
        | _ -> (
          (* no conflict: take pending assumptions, then decide *)
          let next_assumption =
            List.find_opt (fun l -> lit_value t l <> 1) assumption_lits
          in
          match next_assumption with
          | Some l when lit_value t l = -1 ->
            (* assumption contradicted: UNSAT under assumptions *)
            result := Some Unsat
          | Some l ->
            ignore (Vec.push t.trail_lim (Vec.length t.trail));
            enqueue t l (-1)
          | None -> (
            match pick_branch t with
            | None -> result := Some Sat
            | Some v ->
              t.stats.decisions <- t.stats.decisions + 1;
              ignore (Vec.push t.trail_lim (Vec.length t.trail));
              let lit = if t.polarity.(v) then 2 * v else (2 * v) + 1 in
              enqueue t lit (-1)))
      done;
      if !restart then begin
        t.stats.restarts <- t.stats.restarts + 1;
        incr restart_count;
        (* keep assumptions? simplest: restart to level 0; assumptions are
           re-taken because they are re-checked each decision round *)
        cancel_until t 0
      end
    done;
    (match !result with
    | Some Sat -> ()
    | Some (Unsat | Unknown) | None -> cancel_until t 0);
    match !result with Some r -> r | None -> Unknown
  end

let value t v =
  if v < 1 || v > t.nvars then None
  else
    match t.assigns.(v) with 1 -> Some true | -1 -> Some false | _ -> None

let model t =
  let out = ref [] in
  for v = t.nvars downto 1 do
    if not (Stdx.Intset.mem v t.all_guards) then
      match value t v with
      | Some b -> out := (v, b) :: !out
      | None -> ()
  done;
  !out

let stats t = t.stats
let num_vars t = t.nvars
