open Isa.Asm
module R = Isa.Reg
module Abi = Os.Sys_abi

type graph = {
  vertices : int;
  edges : (int * int) list;
}

let adjacency g =
  let n = g.vertices in
  let m = Bytes.make (n * n) '\000' in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Coloring: edge out of range";
      Bytes.set m ((u * n) + v) '\001';
      Bytes.set m ((v * n) + u) '\001')
    g.edges;
  Bytes.to_string m

(* Guest registers:
     rbx vertex v, rcx colour guessed for v, r10 neighbour u,
     r8/r9 array scratch, rdx loads. *)
let program ?(all_solutions = true) g ~k =
  let n = g.vertices in
  if n < 1 || n > 32 then invalid_arg "Coloring.program: 1..32 vertices";
  if k < 1 || k > 9 then invalid_arg "Coloring.program: 1..9 colours";
  let body =
    [ label "main" ]
    @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
    @ [ cmp R.rax (i 0); je "done_"; mov R.rbx (i 0) ]
    @ [ label "vertex"; cmp R.rbx (i n); jge "print_" ]
    @ Wl_common.sys_guess_imm ~n:k
    @ [ mov R.rcx (r R.rax); mov R.r10 (i 0) ]
    @ [ label "check";
        cmp R.r10 (r R.rbx);
        jge "place";
        (* adjacent and same colour? *)
        mov R.r9 (r R.rbx);
        imul R.r9 (i n);
        add R.r9 (r R.r10);
        movl R.r8 "adj";
        ldb R.rdx (idx R.r8 (R.r9, 1));
        test R.rdx (r R.rdx);
        je "next_u";
        movl R.r8 "colour";
        ldb R.rdx (idx R.r8 (R.r10, 1));
        cmp R.rdx (r R.rcx);
        je "conflict";
        label "next_u";
        inc R.r10;
        jmp "check";
        label "conflict" ]
    @ Wl_common.sys_guess_fail
    @ [ label "place";
        movl R.r8 "colour";
        stb (idx R.r8 (R.rbx, 1)) R.rcx;
        inc R.rbx;
        jmp "vertex" ]
    (* print one digit per vertex *)
    @ [ label "print_"; mov R.rbx (i 0) ]
    @ [ label "ploop";
        cmp R.rbx (i n);
        jge "pdone";
        movl R.r8 "colour";
        ldb R.rcx (idx R.r8 (R.rbx, 1));
        add R.rcx (i (Char.code '0'));
        movl R.r8 "buf";
        stb (idx R.r8 (R.rbx, 1)) R.rcx;
        inc R.rbx;
        jmp "ploop";
        label "pdone";
        movl R.r8 "buf";
        stib (Isa.Insn.mem ~base:R.r8 ~disp:n ()) 10 ]
    @ Wl_common.write_label ~buf:"buf" ~len:(n + 1)
    @ (if all_solutions then Wl_common.sys_guess_fail else Wl_common.sys_exit ~status:0)
    @ [ label "done_" ]
    @ Wl_common.sys_exit ~status:0
    @ [ align 4096;
        label "adj"; bytes (adjacency g);
        label "colour"; zeros n;
        label "buf"; zeros (n + 2) ]
  in
  assemble ~entry:"main" body

let host_count g ~k =
  let n = g.vertices in
  let adj = adjacency g in
  let colour = Array.make n (-1) in
  let count = ref 0 in
  let rec place v =
    if v = n then incr count
    else
      for c = 0 to k - 1 do
        let ok = ref true in
        for u = 0 to v - 1 do
          if adj.[(v * n) + u] <> '\000' && colour.(u) = c then ok := false
        done;
        if !ok then begin
          colour.(v) <- c;
          place (v + 1);
          colour.(v) <- -1
        end
      done
  in
  place 0;
  !count

let cycle n =
  { vertices = n; edges = List.init n (fun v -> v, (v + 1) mod n) }

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  { vertices = n; edges = !edges }

let petersen =
  { vertices = 10;
    edges =
      [ 0, 1; 1, 2; 2, 3; 3, 4; 4, 0;       (* outer pentagon *)
        5, 7; 7, 9; 9, 6; 6, 8; 8, 5;       (* inner pentagram *)
        0, 5; 1, 6; 2, 7; 3, 8; 4, 9 ] }

let random_graph ~vertices ~edge_probability ~seed =
  let rng = Stdx.Prng.create ~seed in
  let edges = ref [] in
  for u = 0 to vertices - 1 do
    for v = u + 1 to vertices - 1 do
      if Stdx.Prng.float rng 1.0 < edge_probability then edges := (u, v) :: !edges
    done
  done;
  { vertices; edges = !edges }
