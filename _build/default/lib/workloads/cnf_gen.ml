module Prng = Stdx.Prng

type cnf = {
  num_vars : int;
  clauses : int list list;
}

let random_clause rng ~num_vars ~width =
  let rec draw acc =
    if List.length acc = width then acc
    else begin
      let v = 1 + Prng.int rng num_vars in
      if List.exists (fun l -> abs l = v) acc then draw acc
      else
        let lit = if Prng.bool rng then v else -v in
        draw (lit :: acc)
    end
  in
  draw []

let random_3sat ~num_vars ~num_clauses ~seed =
  if num_vars < 3 then invalid_arg "Cnf_gen.random_3sat: need at least 3 variables";
  let rng = Prng.create ~seed in
  { num_vars;
    clauses = List.init num_clauses (fun _ -> random_clause rng ~num_vars ~width:3) }

let planted ~num_vars ~num_clauses ~seed =
  if num_vars < 3 then invalid_arg "Cnf_gen.planted: need at least 3 variables";
  let rng = Prng.create ~seed in
  let hidden = Array.init (num_vars + 1) (fun _ -> Prng.bool rng) in
  let satisfied clause =
    List.exists (fun l -> if l > 0 then hidden.(l) else not hidden.(-l)) clause
  in
  let rec clause () =
    let c = random_clause rng ~num_vars ~width:3 in
    if satisfied c then c else clause ()
  in
  { num_vars; clauses = List.init num_clauses (fun _ -> clause ()) }

(* Variable p_{i,j}: pigeon i (0..holes) sits in hole j (0..holes-1). *)
let pigeonhole ~holes =
  if holes < 1 then invalid_arg "Cnf_gen.pigeonhole";
  let pigeons = holes + 1 in
  let var i j = (i * holes) + j + 1 in
  let placement =
    List.init pigeons (fun i -> List.init holes (fun j -> var i j))
  in
  let conflicts = ref [] in
  for j = 0 to holes - 1 do
    for i1 = 0 to pigeons - 1 do
      for i2 = i1 + 1 to pigeons - 1 do
        conflicts := [ -var i1 j; -var i2 j ] :: !conflicts
      done
    done
  done;
  { num_vars = pigeons * holes; clauses = placement @ !conflicts }

let increments ~num_vars ~count ~width ~seed =
  let rng = Prng.create ~seed in
  List.init count (fun _ ->
      List.init width (fun _ -> random_clause rng ~num_vars ~width:3))

let to_dimacs { num_vars; clauses } =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" num_vars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let of_dimacs text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref 0 in
  let clauses = ref [] in
  let pending = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "p"; "cnf"; nv; _nc ] -> num_vars := int_of_string nv
        | _ -> failwith "Cnf_gen.of_dimacs: malformed problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> failwith (Printf.sprintf "Cnf_gen.of_dimacs: bad token %S" tok)
               | Some 0 ->
                 clauses := List.rev !pending :: !clauses;
                 pending := []
               | Some l -> pending := l :: !pending))
    lines;
  if !pending <> [] then failwith "Cnf_gen.of_dimacs: clause not terminated by 0";
  { num_vars = !num_vars; clauses = List.rev !clauses }
