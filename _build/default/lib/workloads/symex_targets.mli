(** Guest binaries for the symbolic executor (E5): programs that read
    symbolic bytes from stdin and branch on them, in the KLEE/S2E demo
    tradition.  Each documents its exact path count so tests can assert
    exhaustive exploration. *)

val branch_tree : depth:int -> Isa.Asm.image
(** Reads [depth] bytes; each byte picks a branch ([< 128] or [>= 128]).
    Exactly [2^depth] feasible paths; the all-high leaf exits 42 (the
    "bug"), every other leaf exits 0. *)

val password : Isa.Asm.image
(** Reads 4 bytes and compares them to a hardcoded key byte by byte with
    early exit: 5 feasible paths; exit 1 on the full match (the bug),
    exit 0 otherwise. *)

val password_key : string

val classifier : Isa.Asm.image
(** Reads 2 bytes a, b and classifies a+b into three ranges, writing one
    byte of output per class; 3-way branching twice over (6 paths).  Used
    to check path outputs are properly contained per path. *)

val abs_diff : Isa.Asm.image
(** Reads 2 bytes, computes |a-b| via a conditional, exits 7 when the
    difference is exactly 100 (4 feasible paths). *)

val lookup_table : Isa.Asm.image
(** Reads 1 byte and, if it is below 16, loads [table[i]] — a load whose
    address is symbolic, exercising the executor's KLEE-style address
    concretisation (the index is pinned to one model value; exhaustive
    per-entry coverage is traded away, as in KLEE). *)
