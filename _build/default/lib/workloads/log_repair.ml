open Isa.Asm
module R = Isa.Reg
module Abi = Os.Sys_abi

type spec = {
  records : int list;
  corrupted : int list;
  candidates : int list;
}

let journal_path = "/journal"
let repaired_path = "/repaired"

let qword_string v =
  let b = Buffer.create 8 in
  Buffer.add_int64_le b (Int64.of_int v);
  Buffer.contents b

let make_journal spec =
  let header = List.fold_left ( + ) 0 spec.records in
  let body =
    List.mapi
      (fun idx v -> qword_string (if List.mem idx spec.corrupted then -1 else v))
      spec.records
  in
  String.concat "" (qword_string header :: body)

let decode_journal content =
  let n = String.length content / 8 in
  List.init n (fun k ->
      Int64.to_int (Bytes.get_int64_le (Bytes.of_string content) (k * 8)))

(* Guest registers:
     r15 expected sum, r14 running sum, r13 record index, rbx fd,
     r8 record slot address, rdx record value, r9 candidate base. *)
let program ?(all_solutions = true) spec =
  let n = List.length spec.records in
  let k = List.length spec.candidates in
  if n < 1 || n > 64 then invalid_arg "Log_repair.program: 1..64 records";
  if k < 1 || k > 64 then invalid_arg "Log_repair.program: 1..64 candidates";
  let body =
    [ label "main" ]
    @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
    @ [ cmp R.rax (i 0); je "exhausted" ]
    (* open the journal *)
    @ [ movl R.rdi "jpath"; mov R.rsi (i Abi.o_rdonly) ]
    @ Wl_common.syscall3 ~number:Abi.sys_open
    @ [ cmp R.rax (i 0); jl "io_error"; mov R.rbx (r R.rax) ]
    (* header *)
    @ [ mov R.rdi (r R.rbx); movl R.rsi "buf"; mov R.rdx (i 8) ]
    @ Wl_common.syscall3 ~number:Abi.sys_read
    @ [ movl R.r8 "buf"; ld R.r15 (R.r8 @+ 0); mov R.r14 (i 0); mov R.r13 (i 0) ]
    (* record loop *)
    @ [ label "rec_loop"; cmp R.r13 (i n); jge "verify";
        movl R.r8 "buf";
        lea R.r8 (idxd R.r8 (R.r13, 8) 8);
        mov R.rdi (r R.rbx);
        mov R.rsi (r R.r8);
        mov R.rdx (i 8) ]
    @ Wl_common.syscall3 ~number:Abi.sys_read
    @ [ ld R.rdx (R.r8 @+ 0); cmp R.rdx (i (-1)); jne "not_corrupt" ]
    (* corrupted: guess a replacement from the candidate table *)
    @ Wl_common.sys_guess_imm ~n:k
    @ [ movl R.r9 "cands";
        ld R.rdx (idx R.r9 (R.rax, 8));
        st (R.r8 @+ 0) R.rdx;
        label "not_corrupt";
        add R.r14 (r R.rdx);
        inc R.r13;
        jmp "rec_loop" ]
    (* checksum *)
    @ [ label "verify";
        mov R.rdi (r R.rbx) ]
    @ Wl_common.syscall3 ~number:Abi.sys_close
    @ [ cmp R.r14 (r R.r15); jne "bad" ]
    (* success: persist the repaired journal, announce, keep searching *)
    @ [ movl R.rdi "rpath";
        mov R.rsi (i (Abi.o_wronly lor Abi.o_creat lor Abi.o_trunc)) ]
    @ Wl_common.syscall3 ~number:Abi.sys_open
    @ [ cmp R.rax (i 0); jl "io_error"; mov R.rbx (r R.rax);
        mov R.rdi (r R.rbx);
        movl R.rsi "buf";
        mov R.rdx (i (8 * (n + 1))) ]
    @ Wl_common.syscall3 ~number:Abi.sys_write
    @ [ mov R.rdi (r R.rbx) ]
    @ Wl_common.syscall3 ~number:Abi.sys_close
    @ Wl_common.write_label ~buf:"msg" ~len:9
    @ (if all_solutions then Wl_common.sys_guess_fail
       else Wl_common.sys_exit ~status:0)
    @ [ label "bad" ]
    @ Wl_common.sys_guess_fail
    @ [ label "io_error" ]
    @ Wl_common.sys_exit ~status:66
    @ [ label "exhausted" ]
    @ Wl_common.sys_exit ~status:0
    @ [ align 4096;
        label "msg"; bytes "REPAIRED\n";
        label "jpath"; bytes (journal_path ^ "\000");
        label "rpath"; bytes (repaired_path ^ "\000");
        align 8; label "cands" ]
    @ List.map qword spec.candidates
    @ [ label "buf"; zeros (8 * (n + 2)) ]
  in
  assemble ~entry:"main" body

let host_repairs spec =
  let expected = List.fold_left ( + ) 0 spec.records in
  let base_sum =
    List.fold_left ( + ) 0
      (List.filteri (fun idx _ -> not (List.mem idx spec.corrupted)) spec.records)
  in
  let slots = List.length spec.corrupted in
  let out = ref [] in
  let rec go chosen sum remaining =
    if remaining = 0 then begin
      if sum = expected then out := List.rev chosen :: !out
    end
    else
      List.iter
        (fun c -> go (c :: chosen) (sum + c) (remaining - 1))
        spec.candidates
  in
  go [] base_sum slots;
  List.rev !out
