(** Shared assembly idioms for the guest workload generators. *)

val syscall3 : number:int -> Isa.Asm.item list
(** Emit [mov rax, number; syscall] — arguments must already be in
    rdi/rsi/rdx. *)

val sys_exit : status:int -> Isa.Asm.item list
val sys_guess_strategy : strategy:int -> Isa.Asm.item list
(** Leaves the 0/1 exploration flag in [rax]. *)

val sys_guess_imm : n:int -> Isa.Asm.item list
(** Guess over [n] extensions; result in [rax]. *)

val sys_guess_fail : Isa.Asm.item list
val sys_guess_hint_reg : Isa.Asm.item list
(** Hint distance must already be in [rdi]. *)

val write_label : buf:string -> len:int -> Isa.Asm.item list
(** write(1, buf_label, len). *)

val print_newline_at : buf:string -> Isa.Asm.item list
(** Store '\n' at [buf] and write 1 byte — clobbers rdi/rsi/rdx/rax. *)
