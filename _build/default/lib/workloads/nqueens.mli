(** The paper's running example (Figure 1): n-queens with system-level
    backtracking, plus the hand-coded baseline it is measured against.

    The guest program is a faithful port of the paper's C listing: DFS
    strategy, one [sys_guess(N)] per column, [sys_guess_fail] on conflict,
    print the board, then fail again to enumerate every answer. *)

val program : n:int -> Isa.Asm.image
(** All-solutions guest program for an [n]x[n] board (2 <= n <= 9; one
    digit per column in the printed board). *)

val expected_solutions : int -> int
(** Known solution counts for n = 1..10 (0 where the board has none). *)

val host_count : int -> int
(** Hand-coded OCaml backtracker (undo-on-return arrays), counting all
    solutions — the "best implemented by hand-coding the backtracking logic
    on a stack" baseline of §5. *)

val host_boards : int -> string list
(** Same backtracker, producing boards in the guest's output format (one
    digit per column, the row index of the queen). *)
