open Isa.Asm
module R = Isa.Reg
module Abi = Os.Sys_abi

(* Register use in the guest:
     rbx  current column c
     rcx  guessed row r
     r8   scratch array base
     r9   diagonal index
     rdx  scratch load target *)
let program ~n =
  if n < 2 || n > 9 then invalid_arg "Nqueens.program: n must be in [2, 9]";
  let items =
    [ label "main" ]
    @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
    @ [ cmp R.rax (i 0); je "done_"; call "nqueens" ]
    @ Wl_common.sys_guess_fail
    @ [ label "done_" ]
    @ Wl_common.sys_exit ~status:0
    (* void nqueens(void) *)
    @ [ label "nqueens"; mov R.rbx (i 0) ]
    @ [ label "col_loop"; cmp R.rbx (i n); jge "print_" ]
    @ Wl_common.sys_guess_imm ~n
    @ [ mov R.rcx (r R.rax);
        (* row[r] taken? *)
        movl R.r8 "row";
        ldb R.rdx (idx R.r8 (R.rcx, 1));
        test R.rdx (r R.rdx);
        jne "conflict";
        (* ld[r+c] taken? *)
        mov R.r9 (r R.rcx);
        add R.r9 (r R.rbx);
        movl R.r8 "ld_diag";
        ldb R.rdx (idx R.r8 (R.r9, 1));
        test R.rdx (r R.rdx);
        jne "conflict";
        (* rd[n+r-c] taken? *)
        mov R.r9 (r R.rcx);
        sub R.r9 (r R.rbx);
        add R.r9 (i n);
        movl R.r8 "rd_diag";
        ldb R.rdx (idx R.r8 (R.r9, 1));
        test R.rdx (r R.rdx);
        jne "conflict";
        (* place the queen *)
        movl R.r8 "col";
        stb (idx R.r8 (R.rbx, 1)) R.rcx;
        movl R.r8 "row";
        stib (idx R.r8 (R.rcx, 1)) 1;
        mov R.r9 (r R.rcx);
        add R.r9 (r R.rbx);
        movl R.r8 "ld_diag";
        stib (idx R.r8 (R.r9, 1)) 1;
        mov R.r9 (r R.rcx);
        sub R.r9 (r R.rbx);
        add R.r9 (i n);
        movl R.r8 "rd_diag";
        stib (idx R.r8 (R.r9, 1)) 1;
        inc R.rbx;
        jmp "col_loop";
        label "conflict" ]
    @ Wl_common.sys_guess_fail
    (* print the board as one digit per column plus newline *)
    @ [ label "print_"; mov R.rbx (i 0) ]
    @ [ label "ploop";
        cmp R.rbx (i n);
        jge "pdone";
        movl R.r8 "col";
        ldb R.rcx (idx R.r8 (R.rbx, 1));
        add R.rcx (i (Char.code '0'));
        movl R.r8 "board_buf";
        stb (idx R.r8 (R.rbx, 1)) R.rcx;
        inc R.rbx;
        jmp "ploop";
        label "pdone";
        movl R.r8 "board_buf";
        stib (Isa.Insn.mem ~base:R.r8 ~disp:n ()) 10 ]
    @ Wl_common.write_label ~buf:"board_buf" ~len:(n + 1)
    @ [ ret ]
    (* data *)
    @ [ align 4096;
        label "row"; zeros n;
        label "ld_diag"; zeros (2 * n);
        label "rd_diag"; zeros (2 * n);
        label "col"; zeros n;
        label "board_buf"; zeros (n + 2) ]
  in
  assemble ~entry:"main" items

let expected_solutions = function
  | 1 -> 1
  | 2 | 3 -> 0
  | 4 -> 2
  | 5 -> 10
  | 6 -> 4
  | 7 -> 40
  | 8 -> 92
  | 9 -> 352
  | 10 -> 724
  | _ -> invalid_arg "Nqueens.expected_solutions: tabulated for n in [1, 10]"

(* Hand-coded baseline: the §5 "hand-coding the backtracking logic on a
   stack" comparator.  Same pruning arrays as the guest, undone on return
   instead of snapshotted. *)
let host_search n ~on_solution =
  let row = Array.make n false in
  let ld = Array.make (2 * n) false in
  let rd = Array.make (2 * n) false in
  let col = Array.make n 0 in
  let rec place c =
    if c = n then on_solution col
    else
      for rr = 0 to n - 1 do
        if (not row.(rr)) && (not ld.(rr + c)) && not rd.(n + rr - c) then begin
          row.(rr) <- true;
          ld.(rr + c) <- true;
          rd.(n + rr - c) <- true;
          col.(c) <- rr;
          place (c + 1);
          row.(rr) <- false;
          ld.(rr + c) <- false;
          rd.(n + rr - c) <- false
        end
      done
  in
  place 0

let host_count n =
  let count = ref 0 in
  host_search n ~on_solution:(fun _ -> incr count);
  !count

let host_boards n =
  let boards = ref [] in
  host_search n ~on_solution:(fun col ->
      boards := String.init n (fun c -> Char.chr (Char.code '0' + col.(c))) :: !boards);
  List.rev !boards
