open Isa.Asm
module R = Isa.Reg
module Abi = Os.Sys_abi

(* Guest registers:
     rbx item index, r12 running sum, r8/r9 scratch, rcx guess. *)
let program ?(all_solutions = false) ~target values =
  if List.exists (fun v -> v < 0) values then
    invalid_arg "Subset_sum.program: negative values break pruning";
  let n = List.length values in
  if n < 1 || n > 63 then invalid_arg "Subset_sum.program: 1..63 values";
  let body =
    [ label "main" ]
    @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
    @ [ cmp R.rax (i 0); je "exhausted"; mov R.rbx (i 0); mov R.r12 (i 0) ]
    @ [ label "item"; cmp R.rbx (i n); jge "check_total" ]
    @ Wl_common.sys_guess_imm ~n:2
    @ [ mov R.rcx (r R.rax);
        (* record the mask digit *)
        add R.rcx (i (Char.code '0'));
        movl R.r8 "mask";
        stb (idx R.r8 (R.rbx, 1)) R.rcx;
        sub R.rcx (i (Char.code '0'));
        test R.rcx (r R.rcx);
        je "skip";
        (* include values[rbx] *)
        movl R.r8 "values";
        ld R.r9 (idx R.r8 (R.rbx, 8));
        add R.r12 (r R.r9);
        (* prune on overshoot *)
        cmp R.r12 (i target);
        jg "prune";
        label "skip";
        inc R.rbx;
        jmp "item";
        label "prune" ]
    @ Wl_common.sys_guess_fail
    @ [ label "check_total"; cmp R.r12 (i target); jne "miss" ]
    @ [ movl R.r8 "mask";
        stib (Isa.Insn.mem ~base:R.r8 ~disp:n ()) 10 ]
    @ Wl_common.write_label ~buf:"mask" ~len:(n + 1)
    @ (if all_solutions then Wl_common.sys_guess_fail else Wl_common.sys_exit ~status:0)
    @ [ label "miss" ]
    @ Wl_common.sys_guess_fail
    @ [ label "exhausted" ]
    @ Wl_common.sys_exit ~status:1
    @ [ align 4096; label "values" ]
    @ List.map qword values
    @ [ label "mask"; zeros (n + 2) ]
  in
  assemble ~entry:"main" body

let host_solutions ~values ~target =
  let vals = Array.of_list values in
  let n = Array.length vals in
  let mask = Bytes.make n '0' in
  let out = ref [] in
  let rec go idx sum =
    if sum > target then ()
    else if idx = n then begin
      if sum = target then out := Bytes.to_string mask :: !out
    end
    else begin
      Bytes.set mask idx '0';
      go (idx + 1) sum;
      Bytes.set mask idx '1';
      go (idx + 1) (sum + vals.(idx));
      Bytes.set mask idx '0'
    end
  in
  go 0 0;
  List.rev !out
