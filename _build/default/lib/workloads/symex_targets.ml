open Isa.Asm
module R = Isa.Reg
module Abi = Os.Sys_abi

let read_bytes ~buf ~len =
  [ mov R.rdi (i 0); movl R.rsi buf; mov R.rdx (i len) ]
  @ Wl_common.syscall3 ~number:Abi.sys_read

(* Reads [depth] bytes; byte k >= 128 takes the "high" branch.  A counter
   of high branches rides in r12; all-high exits 42. *)
let branch_tree ~depth =
  if depth < 1 || depth > 16 then invalid_arg "Symex_targets.branch_tree";
  let per_level k =
    [ movl R.r8 "input";
      ldb R.rcx (Isa.Insn.mem ~base:R.r8 ~disp:k ());
      cmp R.rcx (i 128);
      jl (Printf.sprintf "low_%d" k);
      inc R.r12;
      (* record the decision in memory so diverging paths dirty state and
         the forking mechanisms have real pages to isolate *)
      movl R.r9 "trace";
      stib (Isa.Insn.mem ~base:R.r9 ~disp:k ()) 1;
      label (Printf.sprintf "low_%d" k) ]
  in
  let body =
    [ label "main"; mov R.r12 (i 0) ]
    @ read_bytes ~buf:"input" ~len:depth
    @ List.concat_map per_level (List.init depth Fun.id)
    @ [ cmp R.r12 (i depth); jne "benign" ]
    @ Wl_common.sys_exit ~status:42
    @ [ label "benign" ]
    @ Wl_common.sys_exit ~status:0
    @ [ align 4096; label "input"; zeros 16; align 4096; label "trace"; zeros 16 ]
  in
  assemble ~entry:"main" body

let password_key = "s3cr"

let password =
  let body =
    [ label "main" ]
    @ read_bytes ~buf:"input" ~len:4
    @ List.concat_map
        (fun k ->
          [ movl R.r8 "input";
            ldb R.rcx (Isa.Insn.mem ~base:R.r8 ~disp:k ());
            cmp R.rcx (i (Char.code password_key.[k]));
            jne "reject" ])
        [ 0; 1; 2; 3 ]
    @ Wl_common.sys_exit ~status:1
    @ [ label "reject" ]
    @ Wl_common.sys_exit ~status:0
    @ [ align 4096; label "input"; zeros 8 ]
  in
  assemble ~entry:"main" body

(* classifies s = a + b into [0,100), [100,300), [300,512) twice (two
   reads), writing 'L'/'M'/'H' per classification *)
let classifier =
  let classify tag =
    [ movl R.r8 "input";
      ldb R.rcx (Isa.Insn.mem ~base:R.r8 ())
    ]
    @ [ ldb R.rdx (Isa.Insn.mem ~base:R.r8 ~disp:1 ());
        add R.rcx (r R.rdx);
        cmp R.rcx (i 100);
        jl (tag ^ "_low");
        cmp R.rcx (i 300);
        jl (tag ^ "_mid");
        movl R.r9 "chr_h";
        jmp (tag ^ "_emit");
        label (tag ^ "_low");
        movl R.r9 "chr_l";
        jmp (tag ^ "_emit");
        label (tag ^ "_mid");
        movl R.r9 "chr_m";
        label (tag ^ "_emit");
        mov R.rdi (i 1);
        mov R.rsi (r R.r9);
        mov R.rdx (i 1) ]
    @ Wl_common.syscall3 ~number:Abi.sys_write
  in
  let body =
    [ label "main" ]
    @ read_bytes ~buf:"input" ~len:2
    @ classify "c1"
    @ Wl_common.sys_exit ~status:0
    @ [ align 4096;
        label "input"; zeros 8;
        label "chr_l"; bytes "L";
        label "chr_m"; bytes "M";
        label "chr_h"; bytes "H" ]
  in
  assemble ~entry:"main" body

let abs_diff =
  let body =
    [ label "main" ]
    @ read_bytes ~buf:"input" ~len:2
    @ [ movl R.r8 "input";
        ldb R.rcx (Isa.Insn.mem ~base:R.r8 ());
        ldb R.rdx (Isa.Insn.mem ~base:R.r8 ~disp:1 ());
        sub R.rcx (r R.rdx);
        cmp R.rcx (i 0);
        jge "positive";
        neg R.rcx;
        label "positive";
        cmp R.rcx (i 100);
        jne "benign" ]
    @ Wl_common.sys_exit ~status:7
    @ [ label "benign" ]
    @ Wl_common.sys_exit ~status:0
    @ [ align 4096; label "input"; zeros 8 ]
  in
  assemble ~entry:"main" body

(* table[i] = 3i + 5; the in-bounds branch loads through a symbolic index *)
let lookup_table =
  let table = String.init 16 (fun k -> Char.chr ((3 * k) + 5)) in
  let body =
    [ label "main" ]
    @ read_bytes ~buf:"input" ~len:1
    @ [ movl R.r8 "input";
        ldb R.rcx (Isa.Insn.mem ~base:R.r8 ());
        cmp R.rcx (i 16);
        jae "out_of_bounds";
        movl R.r9 "table";
        ldb R.rdi (idx R.r9 (R.rcx, 1));   (* symbolic address *)
        add R.rdi (i 100) ]
    @ Wl_common.syscall3 ~number:Abi.sys_exit
    @ [ label "out_of_bounds" ]
    @ Wl_common.sys_exit ~status:0
    @ [ align 4096; label "input"; zeros 8; label "table"; bytes table ]
  in
  assemble ~entry:"main" body
