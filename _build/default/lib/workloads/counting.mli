(** A bare guess tree: [branch]^[depth] paths with nothing but the guesses
    themselves.  Measures the raw per-extension overhead of system-level
    backtracking (snapshot + schedule + restore round trip). *)

val program : depth:int -> branch:int -> Isa.Asm.image
(** Every leaf fails; after exhaustion the guest exits 0.  The number of
    [Fail] terminals is exactly [branch]^[depth]. *)

val leaves : depth:int -> branch:int -> int
