open Isa.Asm
module R = Isa.Reg
module Abi = Os.Sys_abi

type maze = string array

let dims maze =
  let h = Array.length maze in
  if h = 0 then invalid_arg "Grid: empty maze";
  let w = String.length maze.(0) in
  Array.iter (fun row -> if String.length row <> w then invalid_arg "Grid: ragged maze") maze;
  w, h

(* Guest registers:
     r12 x, r13 y, r14 steps, r15 cells base (walls at "walls", visited at
     "visited"), rbx scratch index, rcx direction. *)
let program maze =
  let w, h = dims maze in
  if maze.(0).[0] = '#' || maze.(h - 1).[w - 1] = '#' then
    invalid_arg "Grid.program: start or goal is a wall";
  let walls =
    String.concat ""
      (Array.to_list (Array.map (String.map (fun c -> if c = '#' then '\001' else '\000')) maze))
  in
  let gx = w - 1 and gy = h - 1 in
  let body =
    [ label "main" ]
    @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_astar
    @ [ cmp R.rax (i 0);
        je "unreachable";
        mov R.r12 (i 0);
        mov R.r13 (i 0);
        mov R.r14 (i 0);
        (* mark the start cell visited *)
        movl R.r15 "visited";
        stib (Isa.Insn.mem ~base:R.r15 ()) 1 ]
    @ [ label "walk";
        (* at goal? *)
        cmp R.r12 (i gx);
        jne "not_goal";
        cmp R.r13 (i gy);
        jne "not_goal";
        mov R.rdi (r R.r14) ]
    @ Wl_common.syscall3 ~number:Abi.sys_exit
    @ [ label "not_goal";
        (* hint = |gx - x| + |gy - y| *)
        mov R.rdi (i gx);
        sub R.rdi (r R.r12);
        jns "dx_ok";
        neg R.rdi;
        label "dx_ok";
        mov R.rcx (i gy);
        sub R.rcx (r R.r13);
        jns "dy_ok";
        neg R.rcx;
        label "dy_ok";
        add R.rdi (r R.rcx) ]
    @ Wl_common.sys_guess_hint_reg
    @ Wl_common.sys_guess_imm ~n:4
    @ [ mov R.rcx (r R.rax);
        (* r10 = nx, r11 = ny *)
        mov R.r10 (r R.r12);
        mov R.r11 (r R.r13);
        cmp R.rcx (i 0);
        jne "try1";
        inc R.r10;
        jmp "moved";
        label "try1";
        cmp R.rcx (i 1);
        jne "try2";
        inc R.r11;
        jmp "moved";
        label "try2";
        cmp R.rcx (i 2);
        jne "try3";
        dec R.r10;
        jmp "moved";
        label "try3";
        dec R.r11;
        label "moved";
        (* bounds *)
        cmp R.r10 (i 0);
        jl "blocked";
        cmp R.r10 (i w);
        jge "blocked";
        cmp R.r11 (i 0);
        jl "blocked";
        cmp R.r11 (i h);
        jge "blocked";
        (* rbx = ny * w + nx *)
        mov R.rbx (r R.r11);
        imul R.rbx (i w);
        add R.rbx (r R.r10);
        movl R.r15 "walls";
        ldb R.rdx (idx R.r15 (R.rbx, 1));
        test R.rdx (r R.rdx);
        jne "blocked";
        movl R.r15 "visited";
        ldb R.rdx (idx R.r15 (R.rbx, 1));
        test R.rdx (r R.rdx);
        jne "blocked";
        stib (idx R.r15 (R.rbx, 1)) 1;
        mov R.r12 (r R.r10);
        mov R.r13 (r R.r11);
        inc R.r14;
        jmp "walk";
        label "blocked" ]
    @ Wl_common.sys_guess_fail
    @ [ label "unreachable" ]
    @ Wl_common.sys_exit ~status:255
    @ [ align 4096; label "walls"; bytes walls; label "visited"; zeros (w * h) ]
  in
  assemble ~entry:"main" body

let generate ~width ~height ~wall_density ~seed =
  let rng = Stdx.Prng.create ~seed in
  Array.init height (fun y ->
      String.init width (fun x ->
          if (x = 0 && y = 0) || (x = width - 1 && y = height - 1) then '.'
          else if Stdx.Prng.float rng 1.0 < wall_density then '#'
          else '.'))

let host_shortest maze =
  let w, h = dims maze in
  let dist = Array.make (w * h) (-1) in
  let q = Queue.create () in
  if maze.(0).[0] = '#' then None
  else begin
    dist.(0) <- 0;
    Queue.add (0, 0) q;
    let result = ref None in
    while !result = None && not (Queue.is_empty q) do
      let x, y = Queue.take q in
      if x = w - 1 && y = h - 1 then result := Some dist.((y * w) + x)
      else
        List.iter
          (fun (nx, ny) ->
            if nx >= 0 && nx < w && ny >= 0 && ny < h
               && maze.(ny).[nx] <> '#'
               && dist.((ny * w) + nx) < 0 then begin
              dist.((ny * w) + nx) <- dist.((y * w) + x) + 1;
              Queue.add (nx, ny) q
            end)
          [ x + 1, y; x, y + 1; x - 1, y; x, y - 1 ]
    done;
    !result
  end
