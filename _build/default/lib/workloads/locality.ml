open Isa.Asm
module R = Isa.Reg
module Abi = Os.Sys_abi

type params = {
  depth : int;
  branch : int;
  touch_pages : int;
  work : int;
  arena_pages : int;
}

let page_size = 4096

(* Guest registers:
     r15  arena base
     r12  remaining depth
     r13  branch taken at this step
     r10  page loop counter / work loop counter
     r11  touched address *)
let program p =
  if p.depth <= 0 || p.branch <= 0 then invalid_arg "Locality.program: empty tree";
  if p.touch_pages > p.arena_pages then
    invalid_arg "Locality.program: touch_pages exceeds arena";
  if p.branch > 64 then
    invalid_arg "Locality.program: branch factor above 64 overruns the page stride";
  let body =
    (* arena = brk(0); brk(arena + arena_pages * page) *)
    [ label "main"; mov R.rdi (i 0) ]
    @ Wl_common.syscall3 ~number:Abi.sys_brk
    @ [ mov R.r15 (r R.rax);
        mov R.rdi (r R.rax);
        add R.rdi (i (p.arena_pages * page_size)) ]
    @ Wl_common.syscall3 ~number:Abi.sys_brk
    @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
    @ [ cmp R.rax (i 0); je "done_"; mov R.r12 (i p.depth) ]
    @ [ label "step"; cmp R.r12 (i 0); jle "leaf" ]
    @ Wl_common.sys_guess_imm ~n:p.branch
    @ [ mov R.r13 (r R.rax) ]
    @ (if p.touch_pages = 0 then []
       else
         [ mov R.r10 (i 0);
           label "touch";
           cmp R.r10 (i p.touch_pages);
           jge "touched";
           (* r11 = arena + r10*4096 + r13*64 *)
           mov R.r11 (r R.r10);
           shl R.r11 (i 12);
           add R.r11 (r R.r15);
           mov R.r9 (r R.r13);
           shl R.r9 (i 6);
           add R.r11 (r R.r9);
           ld R.r9 (R.r11 @+ 0);
           inc R.r9;
           st (R.r11 @+ 0) R.r9;
           inc R.r10;
           jmp "touch";
           label "touched" ])
    @ (if p.work = 0 then []
       else
         [ mov R.r10 (i p.work);
           mov R.r9 (i 1);
           label "work";
           imul R.r9 (i 1103515245);
           add R.r9 (i 12345);
           and_ R.r9 (i 0x3FFFFFFF);
           dec R.r10;
           jne "work" ])
    @ [ dec R.r12; jmp "step" ]
    @ [ label "leaf" ]
    @ Wl_common.sys_guess_fail
    @ [ label "done_" ]
    @ Wl_common.sys_exit ~status:0
  in
  assemble ~entry:"main" body

(* Hand-coded guest: same tree, same writes, same work loop, but an
   explicit undo log on the guest stack instead of snapshots.

   step(rdi = remaining depth):
     rdi depth, r13 branch index, r10 loop counter, r11 touched address,
     r9 scratch value. *)
let program_handcoded p =
  if p.depth <= 0 || p.branch <= 0 then invalid_arg "Locality.program_handcoded";
  if p.touch_pages > p.arena_pages then
    invalid_arg "Locality.program_handcoded: touch_pages exceeds arena";
  if p.branch > 64 then invalid_arg "Locality.program_handcoded: branch above 64";
  (* r11 = arena + r10*4096 + r13*64 *)
  let compute_addr =
    [ mov R.r11 (r R.r10);
      shl R.r11 (i 12);
      add R.r11 (r R.r15);
      mov R.r9 (r R.r13);
      shl R.r9 (i 6);
      add R.r11 (r R.r9) ]
  in
  let body =
    [ label "main"; mov R.rdi (i 0) ]
    @ Wl_common.syscall3 ~number:Abi.sys_brk
    @ [ mov R.r15 (r R.rax);
        mov R.rdi (r R.rax);
        add R.rdi (i (p.arena_pages * page_size)) ]
    @ Wl_common.syscall3 ~number:Abi.sys_brk
    @ [ mov R.rdi (i p.depth); call "step" ]
    @ [ movl R.r8 "leaves"; ld R.rdi (R.r8 @+ 0); and_ R.rdi (i 0xff) ]
    @ Wl_common.syscall3 ~number:Abi.sys_exit
    @ [ label "step";
        cmp R.rdi (i 0);
        jg "explore";
        (* leaf: count it *)
        movl R.r8 "leaves";
        ld R.r9 (R.r8 @+ 0);
        inc R.r9;
        st (R.r8 @+ 0) R.r9;
        ret;
        label "explore";
        mov R.r13 (i 0);
        label "branch_loop";
        cmp R.r13 (i p.branch);
        jge "branches_done" ]
    (* apply phase: record old cell values on the stack, then overwrite *)
    @ (if p.touch_pages = 0 then []
       else
         [ mov R.r10 (i 0); label "apply"; cmp R.r10 (i p.touch_pages); jge "applied" ]
         @ compute_addr
         @ [ ld R.r9 (R.r11 @+ 0);
             push (r R.r9);
             inc R.r9;
             st (R.r11 @+ 0) R.r9;
             inc R.r10;
             jmp "apply";
             label "applied" ])
    @ (if p.work = 0 then []
       else
         [ mov R.r10 (i p.work);
           mov R.r9 (i 1);
           label "work";
           imul R.r9 (i 1103515245);
           add R.r9 (i 12345);
           and_ R.r9 (i 0x3FFFFFFF);
           dec R.r10;
           jne "work" ])
    @ [ push (r R.rdi); push (r R.r13); dec R.rdi; call "step"; pop R.r13; pop R.rdi ]
    (* undo phase: pop in reverse order *)
    @ (if p.touch_pages = 0 then []
       else
         [ mov R.r10 (i (p.touch_pages - 1));
           label "undo";
           cmp R.r10 (i 0);
           jl "undone" ]
         @ compute_addr
         @ [ pop R.r9;
             st (R.r11 @+ 0) R.r9;
             dec R.r10;
             jmp "undo";
             label "undone" ])
    @ [ inc R.r13; jmp "branch_loop"; label "branches_done"; ret ]
    @ [ align 4096; label "leaves"; qword 0 ]
  in
  assemble ~entry:"main" body

type host_stats = {
  paths : int;
  steps : int;
  bytes_copied : int;
  cells_undone : int;
}

(* The same pseudo-random ALU churn as the guest's work loop. *)
let do_work w =
  let acc = ref 1 in
  for _ = 1 to w do
    acc := (!acc * 1103515245 + 12345) land 0x3FFFFFFF
  done;
  !acc

let host_undo p =
  let arena = Bytes.make (p.arena_pages * page_size) '\000' in
  let paths = ref 0 in
  let steps = ref 0 in
  let cells_undone = ref 0 in
  let rec explore depth =
    if depth = 0 then incr paths
    else
      for b = 0 to p.branch - 1 do
        incr steps;
        (* write phase, recording old cell values *)
        let undo = Array.make p.touch_pages (0, '\000') in
        for k = 0 to p.touch_pages - 1 do
          let off = (k * page_size) + (b * 64) in
          undo.(k) <- (off, Bytes.get arena off);
          Bytes.set arena off (Char.chr ((Char.code (Bytes.get arena off) + 1) land 0xff))
        done;
        ignore (do_work p.work);
        explore (depth - 1);
        (* undo phase *)
        for k = p.touch_pages - 1 downto 0 do
          let off, old = undo.(k) in
          Bytes.set arena off old;
          incr cells_undone
        done
      done
  in
  explore p.depth;
  { paths = !paths; steps = !steps; bytes_copied = 0; cells_undone = !cells_undone }

let host_eager p =
  let paths = ref 0 in
  let steps = ref 0 in
  let bytes_copied = ref 0 in
  let rec explore arena depth =
    if depth = 0 then incr paths
    else
      for b = 0 to p.branch - 1 do
        incr steps;
        let copy = Bytes.copy arena in
        bytes_copied := !bytes_copied + Bytes.length copy;
        for k = 0 to p.touch_pages - 1 do
          let off = (k * page_size) + (b * 64) in
          Bytes.set copy off (Char.chr ((Char.code (Bytes.get copy off) + 1) land 0xff))
        done;
        ignore (do_work p.work);
        explore copy (depth - 1)
      done
  in
  explore (Bytes.make (p.arena_pages * page_size) '\000') p.depth;
  { paths = !paths; steps = !steps; bytes_copied = !bytes_copied; cells_undone = 0 }

let expected_paths p =
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  pow p.branch p.depth
