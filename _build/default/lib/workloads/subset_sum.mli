(** Subset-sum / knapsack-style search: include-or-exclude guesses with
    sum-overshoot pruning.  Used by the examples and as a First_exit
    workload (the guest exits as soon as it finds a subset hitting the
    target). *)

val program : ?all_solutions:bool -> target:int -> int list -> Isa.Asm.image
(** Prints the chosen subset as a 0/1 mask (one char per value) on success.
    Values must be non-negative (pruning relies on monotone sums). *)

val host_solutions : values:int list -> target:int -> string list
(** Reference enumeration, masks in the guest's format and order. *)
