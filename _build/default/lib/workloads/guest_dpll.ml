open Isa.Asm
module R = Isa.Reg
module Abi = Os.Sys_abi

let exit_sat = 10 (* after consuming all increments *)
let exit_unsat = 20
let exit_done = 10

let qwords values = List.map qword values

(* Register conventions inside the guest solver:
     propagate: rbx clause index, rcx literal cursor, r14 clause end,
                r10 satisfied flag, r11 unassigned count, r12 last
                unassigned literal, r13 changed flag, rdx literal,
                r9 |literal| / loop bounds, r8 array base
     main loop: r15 decision variable / increment counter *)
let program ?(max_clauses = 4096) ?(max_lits = 16384) ~num_vars clauses =
  if num_vars < 1 || num_vars > 4000 then invalid_arg "Guest_dpll: num_vars";
  let initial_lits = List.concat clauses in
  if List.length clauses > max_clauses then invalid_arg "Guest_dpll: too many clauses";
  if List.length initial_lits > max_lits then invalid_arg "Guest_dpll: too many literals";
  List.iter
    (fun l ->
      if l = 0 || Stdlib.abs l > num_vars then
        invalid_arg "Guest_dpll: literal out of range")
    initial_lits;
  let offsets =
    (* clause_off[i] = start of clause i in lits; clause_off[nclauses] = top *)
    let rec go acc pos = function
      | [] -> List.rev (pos :: acc)
      | c :: rest -> go (pos :: acc) (pos + List.length c) rest
    in
    go [] 0 clauses
  in
  let nclauses = List.length clauses in
  let read8 buf =
    [ mov R.rdi (i 0); movl R.rsi buf; mov R.rdx (i 8) ]
    @ Wl_common.syscall3 ~number:Abi.sys_read
  in
  let body =
    [ label "main" ]
    @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
    @ [ cmp R.rax (i 0); je "unsat_exit" ]
    @ [ label "solver_loop";
        call "propagate";
        cmp R.rax (i 0);
        jne "conflict_";
        call "pick_var";
        cmp R.rax (i 0);
        je "sat_";
        mov R.r15 (r R.rax) ]
    @ Wl_common.sys_guess_imm ~n:2
    @ [ (* assign[r15] = guess + 1   (1 = true, 2 = false) *)
        mov R.rcx (r R.rax);
        inc R.rcx;
        movl R.r8 "assign";
        stb (idx R.r8 (R.r15, 1)) R.rcx;
        jmp "solver_loop";
        label "conflict_" ]
    @ Wl_common.sys_guess_fail
    @ [ label "sat_"; call "print_sat" ]
    (* publish the solved state as a partial candidate, then pull the next
       increment from stdin *)
    @ Wl_common.sys_guess_imm ~n:1
    @ [ call "read_increment"; cmp R.rax (i 0); je "done_exit"; jmp "solver_loop" ]
    @ [ label "unsat_exit" ]
    @ Wl_common.write_label ~buf:"unsat_msg" ~len:6
    @ Wl_common.sys_exit ~status:exit_unsat
    @ [ label "done_exit" ]
    @ Wl_common.sys_exit ~status:exit_done
    (* ---- propagate: rax = 1 on conflict, 0 at fixpoint ---- *)
    @ [ label "propagate";
        label "prop_restart";
        mov R.r13 (i 0);
        mov R.rbx (i 0);
        label "prop_clause_loop";
        movl R.r8 "nclauses";
        ld R.r9 (R.r8 @+ 0);
        cmp R.rbx (r R.r9);
        jge "prop_done_pass";
        movl R.r8 "clause_off";
        ld R.rcx (idx R.r8 (R.rbx, 8));
        ld R.r14 (idxd R.r8 (R.rbx, 8) 8);
        mov R.r10 (i 0);
        mov R.r11 (i 0);
        mov R.r12 (i 0);
        label "prop_lit_loop";
        cmp R.rcx (r R.r14);
        jge "prop_clause_eval";
        movl R.r8 "lits";
        ld R.rdx (idx R.r8 (R.rcx, 8));
        mov R.r9 (r R.rdx);
        cmp R.r9 (i 0);
        jge "prop_abs_ok";
        neg R.r9;
        label "prop_abs_ok";
        movl R.r8 "assign";
        ldb R.rax (idx R.r8 (R.r9, 1));
        cmp R.rax (i 0);
        jne "prop_assigned";
        inc R.r11;
        mov R.r12 (r R.rdx);
        jmp "prop_next_lit";
        label "prop_assigned";
        cmp R.rax (i 1);
        jne "prop_check_false";
        cmp R.rdx (i 0);
        jg "prop_sat";
        jmp "prop_next_lit";
        label "prop_check_false";
        cmp R.rdx (i 0);
        jl "prop_sat";
        label "prop_next_lit";
        inc R.rcx;
        jmp "prop_lit_loop";
        label "prop_sat";
        mov R.r10 (i 1);
        label "prop_clause_eval";
        cmp R.r10 (i 1);
        je "prop_next_clause";
        cmp R.r11 (i 0);
        jne "prop_not_conflict";
        mov R.rax (i 1);
        ret;
        label "prop_not_conflict";
        cmp R.r11 (i 1);
        jne "prop_next_clause";
        mov R.r9 (r R.r12);
        cmp R.r9 (i 0);
        jge "prop_unit_pos";
        neg R.r9;
        movl R.r8 "assign";
        stib (idx R.r8 (R.r9, 1)) 2;
        jmp "prop_unit_done";
        label "prop_unit_pos";
        movl R.r8 "assign";
        stib (idx R.r8 (R.r9, 1)) 1;
        label "prop_unit_done";
        mov R.r13 (i 1);
        label "prop_next_clause";
        inc R.rbx;
        jmp "prop_clause_loop";
        label "prop_done_pass";
        cmp R.r13 (i 0);
        jne "prop_restart";
        mov R.rax (i 0);
        ret ]
    (* ---- pick_var: rax = first unassigned variable, or 0 ---- *)
    @ [ label "pick_var";
        movl R.r8 "nvars";
        ld R.r9 (R.r8 @+ 0);
        mov R.rax (i 1);
        label "pick_loop";
        cmp R.rax (r R.r9);
        jg "pick_none";
        movl R.r8 "assign";
        ldb R.rcx (idx R.r8 (R.rax, 1));
        cmp R.rcx (i 0);
        je "pick_found";
        inc R.rax;
        jmp "pick_loop";
        label "pick_none";
        mov R.rax (i 0);
        label "pick_found";
        ret ]
    (* ---- print_sat: "SAT\n" + 0/1 per variable + newline ---- *)
    @ [ label "print_sat" ]
    @ Wl_common.write_label ~buf:"sat_msg" ~len:4
    @ [ movl R.r8 "nvars";
        ld R.r9 (R.r8 @+ 0);
        mov R.rbx (i 1);
        label "ps_loop";
        cmp R.rbx (r R.r9);
        jg "ps_done";
        movl R.r8 "assign";
        ldb R.rcx (idx R.r8 (R.rbx, 1));
        cmp R.rcx (i 1);
        je "ps_one";
        mov R.rcx (i (Char.code '0'));
        jmp "ps_store";
        label "ps_one";
        mov R.rcx (i (Char.code '1'));
        label "ps_store";
        movl R.r8 "outbuf";
        stb (idxd R.r8 (R.rbx, 1) (-1)) R.rcx;
        inc R.rbx;
        jmp "ps_loop";
        label "ps_done";
        movl R.r8 "outbuf";
        add R.r8 (r R.r9);
        stib (R.r8 @+ 0) 10;
        mov R.rdi (i 1);
        movl R.rsi "outbuf";
        mov R.rdx (r R.r9);
        inc R.rdx ]
    @ Wl_common.syscall3 ~number:Abi.sys_write
    @ [ ret ]
    (* ---- read_increment: rax = 1 if clauses were appended, 0 on EOF ---- *)
    @ [ label "read_increment" ]
    @ read8 "inbuf"
    @ [ cmp R.rax (i 8);
        jl "ri_eof";
        movl R.r8 "inbuf";
        ld R.r15 (R.r8 @+ 0);
        cmp R.r15 (i 0);
        jle "ri_eof";
        label "ri_clause_loop";
        cmp R.r15 (i 0);
        je "ri_done" ]
    @ read8 "inbuf"
    @ [ cmp R.rax (i 8);
        jl "ri_eof";
        movl R.r8 "inbuf";
        ld R.r14 (R.r8 @+ 0);
        movl R.r8 "nclauses";
        ld R.r9 (R.r8 @+ 0);
        movl R.r8 "clause_off";
        ld R.rbx (idx R.r8 (R.r9, 8));
        label "ri_lit_loop";
        cmp R.r14 (i 0);
        je "ri_clause_done" ]
    @ read8 "inbuf"
    @ [ cmp R.rax (i 8);
        jl "ri_eof";
        movl R.r8 "inbuf";
        ld R.rdx (R.r8 @+ 0);
        movl R.r8 "lits";
        st (idx R.r8 (R.rbx, 8)) R.rdx;
        inc R.rbx;
        dec R.r14;
        jmp "ri_lit_loop";
        label "ri_clause_done";
        movl R.r8 "nclauses";
        ld R.r9 (R.r8 @+ 0);
        inc R.r9;
        st (R.r8 @+ 0) R.r9;
        movl R.r8 "clause_off";
        st (idx R.r8 (R.r9, 8)) R.rbx;
        dec R.r15;
        jmp "ri_clause_loop";
        label "ri_done";
        mov R.rax (i 1);
        ret;
        label "ri_eof";
        mov R.rax (i 0);
        ret ]
    (* ---- data ---- *)
    @ [ align 4096;
        label "sat_msg"; bytes "SAT\n";
        label "unsat_msg"; bytes "UNSAT\n";
        align 8;
        label "nvars" ] @ [ qword num_vars ]
    @ [ label "nclauses" ] @ [ qword nclauses ]
    @ [ label "clause_off" ]
    @ qwords offsets
    @ [ zeros (8 * (max_clauses + 1 - List.length offsets)) ]
    @ [ label "lits" ]
    @ qwords initial_lits
    @ [ zeros (8 * (max_lits - List.length initial_lits)) ]
    @ [ label "inbuf"; zeros 8;
        label "outbuf"; zeros (num_vars + 2);
        label "assign"; zeros (num_vars + 1) ]
  in
  assemble ~entry:"main" body

let encode_increments increments =
  let buf = Buffer.create 256 in
  let q v = Buffer.add_int64_le buf (Int64.of_int v) in
  List.iter
    (fun clauses ->
      q (List.length clauses);
      List.iter
        (fun clause ->
          q (List.length clause);
          List.iter q clause)
        clauses)
    increments;
  Buffer.contents buf
