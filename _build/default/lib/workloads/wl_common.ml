open Isa.Asm
module R = Isa.Reg
module Abi = Os.Sys_abi

let syscall3 ~number = [ mov R.rax (i number); syscall ]

let sys_exit ~status = mov R.rdi (i status) :: syscall3 ~number:Abi.sys_exit

let sys_guess_strategy ~strategy =
  mov R.rdi (i strategy) :: syscall3 ~number:Abi.sys_guess_strategy

let sys_guess_imm ~n = mov R.rdi (i n) :: syscall3 ~number:Abi.sys_guess

let sys_guess_fail = syscall3 ~number:Abi.sys_guess_fail

let sys_guess_hint_reg = syscall3 ~number:Abi.sys_guess_hint

let write_label ~buf ~len =
  [ mov R.rdi (i 1); movl R.rsi buf; mov R.rdx (i len) ]
  @ syscall3 ~number:Abi.sys_write

let print_newline_at ~buf =
  [ movl R.rsi buf; insn (Isa.Insn.Sti (Isa.Insn.B, Isa.Insn.mem ~base:R.rsi (), 10)) ]
  @ [ mov R.rdi (i 1); mov R.rdx (i 1) ]
  @ syscall3 ~number:Abi.sys_write
