(** A DPLL SAT solver written in guest assembly, branching with
    [sys_guess(2)] — the paper's "simple single path to solution program"
    (§1): it contains no backtracking logic at all, only unit propagation,
    a decision heuristic and [sys_guess_fail] on conflict.

    After finding a model it prints ["SAT\n"] plus the assignment, then
    calls [sys_guess(1)] to {e publish the solved state as a partial
    candidate} and reads incremental clauses from stdin — which is exactly
    the multi-path incremental solver service of §3.2: resume the published
    reference with different increments and each resume solves p ∧ q from
    p's intact solver state.  Exhausting the search space prints
    ["UNSAT\n"] and exits 20; running out of increments exits 10. *)

val program :
  ?max_clauses:int -> ?max_lits:int -> num_vars:int -> int list list -> Isa.Asm.image
(** Embed the initial CNF (DIMACS literal convention).  [num_vars] is the
    variable budget including variables only mentioned by later
    increments. *)

val encode_increments : int list list list -> string
(** Binary stdin encoding of a list of increments, each a list of clauses:
    the guest consumes one increment per SAT/yield cycle. *)

val exit_sat : int
val exit_unsat : int
val exit_done : int
