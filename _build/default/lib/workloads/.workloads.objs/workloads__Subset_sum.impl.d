lib/workloads/subset_sum.ml: Array Bytes Char Isa List Os Wl_common
