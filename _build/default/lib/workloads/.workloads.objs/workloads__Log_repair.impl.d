lib/workloads/log_repair.ml: Buffer Bytes Int64 Isa List Os String Wl_common
