lib/workloads/subset_sum.mli: Isa
