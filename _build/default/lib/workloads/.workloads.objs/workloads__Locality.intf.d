lib/workloads/locality.mli: Isa
