lib/workloads/log_repair.mli: Isa
