lib/workloads/cnf_gen.mli:
