lib/workloads/coloring.ml: Array Bytes Char Isa List Os Stdx String Wl_common
