lib/workloads/counting.mli: Isa
