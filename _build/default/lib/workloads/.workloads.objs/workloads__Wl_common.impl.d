lib/workloads/wl_common.ml: Isa Os
