lib/workloads/grid.mli: Isa
