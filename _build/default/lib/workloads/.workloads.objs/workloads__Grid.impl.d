lib/workloads/grid.ml: Array Isa List Os Queue Stdx String Wl_common
