lib/workloads/cnf_gen.ml: Array Buffer List Printf Stdx String
