lib/workloads/coloring.mli: Isa
