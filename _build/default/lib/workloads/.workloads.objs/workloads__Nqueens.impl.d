lib/workloads/nqueens.ml: Array Char Isa List Os String Wl_common
