lib/workloads/counting.ml: Isa Os Wl_common
