lib/workloads/nqueens.mli: Isa
