lib/workloads/symex_targets.mli: Isa
