lib/workloads/symex_targets.ml: Char Fun Isa List Os Printf String Wl_common
