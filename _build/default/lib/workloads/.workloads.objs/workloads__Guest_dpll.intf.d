lib/workloads/guest_dpll.mli: Isa
