lib/workloads/wl_common.mli: Isa
