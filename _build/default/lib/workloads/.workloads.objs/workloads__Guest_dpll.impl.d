lib/workloads/guest_dpll.ml: Buffer Char Int64 Isa List Os Stdlib Wl_common
