lib/workloads/locality.ml: Array Bytes Char Isa Os Wl_common
