(** Graph k-colouring via [sys_guess] — a second "single path to solution"
    program in the paper's style (example and test workload).

    The guest guesses a colour per vertex, fails on any conflicting edge,
    prints the colouring as one digit per vertex, and then either fails (to
    enumerate all colourings) or exits. *)

type graph = {
  vertices : int;
  edges : (int * int) list;
}

val program : ?all_solutions:bool -> graph -> k:int -> Isa.Asm.image

val host_count : graph -> k:int -> int
(** Hand-coded colouring counter (reference). *)

val cycle : int -> graph
val complete : int -> graph
val petersen : graph

val random_graph : vertices:int -> edge_probability:float -> seed:int -> graph
