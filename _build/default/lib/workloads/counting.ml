open Isa.Asm
module R = Isa.Reg
module Abi = Os.Sys_abi

let program ~depth ~branch =
  if depth < 1 || branch < 1 then invalid_arg "Counting.program";
  let body =
    [ label "main" ]
    @ Wl_common.sys_guess_strategy ~strategy:Abi.strategy_dfs
    @ [ cmp R.rax (i 0); je "done_"; mov R.r12 (i depth) ]
    @ [ label "step"; cmp R.r12 (i 0); jle "leaf" ]
    @ Wl_common.sys_guess_imm ~n:branch
    @ [ dec R.r12; jmp "step"; label "leaf" ]
    @ Wl_common.sys_guess_fail
    @ [ label "done_" ]
    @ Wl_common.sys_exit ~status:0
  in
  assemble ~entry:"main" body

let leaves ~depth ~branch =
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  pow branch depth
