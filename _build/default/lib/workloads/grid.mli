(** Grid path-finding: the strategy-comparison workload (E6).

    The guest walks a maze from the top-left to the bottom-right corner.
    Each step sends the Manhattan distance to the goal via
    [sys_guess_hint], then guesses one of four directions; walls, bounds
    and already-visited cells fail.  Reaching the goal exits with the path
    length as the status, so running under [`First_exit] compares what DFS,
    BFS, A* and SM-A* each find and how many extensions they expand. *)

type maze = string array
(** Rows of ['.'] (free) and ['#'] (wall); rectangular, start [(0,0)] and
    goal [(w-1,h-1)] must be free. *)

val program : maze -> Isa.Asm.image

val generate : width:int -> height:int -> wall_density:float -> seed:int -> maze
(** Random maze that is guaranteed to keep start and goal free (possibly
    disconnected; the guest then exits 255 after exhausting the scope). *)

val host_shortest : maze -> int option
(** BFS reference: optimal path length (steps), [None] if unreachable. *)
