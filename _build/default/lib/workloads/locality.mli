(** The §5 "problem granularity and memory locality" workload (E3).

    A synthetic search tree of [branch]^[depth] paths.  Each extension step
    touches [touch_pages] distinct pages of a [arena_pages]-page arena and
    executes [work] ALU instructions, then guesses again; every leaf fails,
    so the whole tree is explored.  Sweeping [work] (instructions per step)
    and [touch_pages] (page-level locality) maps out when system-level
    backtracking wins over the two hand-coded regimes. *)

type params = {
  depth : int;
  branch : int;
  touch_pages : int;
  work : int;        (** ALU loop iterations per extension step *)
  arena_pages : int;
}

val program : params -> Isa.Asm.image
(** Guest implementation; the arena is allocated with [brk]. *)

val program_handcoded : params -> Isa.Asm.image
(** The same search implemented {e inside the guest} with hand-coded
    backtracking: an explicit undo log on the guest stack, no [sys_guess].
    Running both programs on the same interpreter isolates exactly the cost
    the paper discusses in §5 — system-level snapshots vs hand-coded undo
    logic — from everything else.  Exits with the leaf count (mod 256); the
    "leaves" symbol holds the full count. *)

type host_stats = {
  paths : int;           (** leaves reached *)
  steps : int;           (** extension steps executed *)
  bytes_copied : int;    (** state copied for isolation *)
  cells_undone : int;    (** undo-log entries replayed *)
}

val host_undo : params -> host_stats
(** Hand-coded backtracking with an undo log: records the [touch_pages]
    overwritten cells at each step and restores them on return — the
    "hand-coded logic on a stack" §5 expects to win at trivial step sizes. *)

val host_eager : params -> host_stats
(** Fork-style eager state copy: duplicates the whole arena at every step —
    what a naive fork-based implementation (§3) pays. *)

val expected_paths : params -> int
