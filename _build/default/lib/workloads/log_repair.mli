(** Journal repair: a file-system-checker-flavoured workload (§2 of the
    paper motivates system-level backtracking with exactly this kind of
    tool — S2E was used to build "a tester for file system code").

    A journal file holds a header (the expected sum of all records) and N
    record qwords; corrupted records read as -1.  The guest scans the
    journal, guesses a replacement from a candidate table for every
    corrupted record, verifies the checksum at the end, and on success
    writes the repaired journal to a second file and prints "REPAIRED".
    Failed repair attempts leave no trace — their file writes are rolled
    back with the snapshot, which is the point of the demo. *)

type spec = {
  records : int list;       (** true record values *)
  corrupted : int list;     (** indices replaced by the -1 sentinel *)
  candidates : int list;    (** replacement table the guest guesses from *)
}

val journal_path : string
val repaired_path : string

val make_journal : spec -> string
(** Journal file contents: header qword then record qwords with the
    corrupted ones replaced by -1. *)

val program : ?all_solutions:bool -> spec -> Isa.Asm.image
(** With [all_solutions] (default): prints "REPAIRED" and fails to search
    for more repairs, so the number of "REPAIRED" lines counts the valid
    combinations (the repaired file itself is rolled back with each
    failing path).  With [~all_solutions:false] the guest exits 0 on the
    first successful repair, leaving the repaired file in the VFS. *)

val host_repairs : spec -> int list list
(** Reference: every candidate assignment (one value per corrupted record,
    in index order) whose sum matches the header. *)

val decode_journal : string -> int list
(** Parse a journal file body back into header :: records. *)
