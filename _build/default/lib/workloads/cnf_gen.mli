(** CNF formula generators for the solver experiments (E4).

    Clauses are lists of non-zero literals in DIMACS convention: positive
    integer = variable, negative = its negation. *)

type cnf = {
  num_vars : int;
  clauses : int list list;
}

val random_3sat : num_vars:int -> num_clauses:int -> seed:int -> cnf
(** Uniform random 3-SAT (distinct variables within each clause). *)

val planted : num_vars:int -> num_clauses:int -> seed:int -> cnf
(** Random 3-SAT guaranteed satisfiable: every clause is checked against a
    hidden planted assignment. *)

val pigeonhole : holes:int -> cnf
(** PHP(holes+1, holes): unsatisfiable, classically hard for resolution. *)

val increments : num_vars:int -> count:int -> width:int -> seed:int -> int list list list
(** [count] batches of incremental clauses (each batch [width] random
    clauses over the same variable range), for the p, p∧q, p∧q∧r… chain. *)

val to_dimacs : cnf -> string
val of_dimacs : string -> cnf
(** @raise Failure on malformed input. *)
