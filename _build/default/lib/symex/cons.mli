(** Path constraints and their bounded-domain solver.

    A constraint records the outcome of one symbolic comparison: [cond]
    compared [a] with [b] and the path requires the result to be [expect].
    Satisfiability is decided by depth-first labeling of the symbolic input
    bytes (domain [0, 255]) with constraint propagation: a constraint is
    checked the moment all of its variables are assigned.  For the
    byte-oriented targets this engine runs, labeling with pruning is exact
    and fast; the node budget keeps adversarial paths from exploding. *)

type t = {
  cond : Isa.Insn.cond;
  a : Expr.t;
  b : Expr.t;
  expect : bool;
}

val make : cond:Isa.Insn.cond -> a:Expr.t -> b:Expr.t -> expect:bool -> t
val negate : t -> t
val holds_under : env:(int -> int) -> t -> bool option
(** [None] if evaluation is undefined under [env] (division by zero etc.). *)

val vars : t list -> int list
(** Sorted variable ids occurring in the constraints. *)

type solve_result =
  | Model of (int * int) list  (** variable -> byte value *)
  | Unsat
  | Budget_exceeded

val solve : ?budget:int -> t list -> solve_result
(** [budget] bounds labeling nodes (default 200_000). *)

val pp : Format.formatter -> t -> unit
