(** Symbolic word expressions over the VX64 machine.

    Symbolic variables are the bytes of symbolic input (domain [0, 255]);
    all arithmetic follows the interpreter's native-int semantics so that a
    path replayed with a solved model reproduces the symbolic run. *)

type binop = Isa.Insn.binop

type t =
  | Const of int
  | Sym of int            (** symbolic input byte, by variable id *)
  | Bin of binop * t * t
  | Neg of t
  | Not of t

val const : int -> t
val sym : int -> t
val bin : binop -> t -> t -> t
(** Constant-folds when both sides are constants (division by zero is left
    symbolic for the evaluator to refuse). *)

val is_concrete : t -> bool
val to_concrete : t -> int option
val vars : t -> Stdx.Intset.t

val eval : env:(int -> int) -> t -> int option
(** Evaluate under an assignment of variables; [None] on division by zero
    or an out-of-range shift (the path is infeasible at that point). *)

val subst_eval : env:(int -> int option) -> t -> t
(** Partial evaluation: replaces assigned variables and folds. *)

val size : t -> int
val pp : Format.formatter -> t -> unit

val cond_holds : Isa.Insn.cond -> int -> int -> bool
(** Shared comparison semantics: does [cond] hold for compared values
    (a, b)?  Matches {!Vcpu.Interp}'s flag encoding of [Cmp]. *)
