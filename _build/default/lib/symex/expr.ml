type binop = Isa.Insn.binop

type t =
  | Const of int
  | Sym of int
  | Bin of binop * t * t
  | Neg of t
  | Not of t

let const c = Const c
let sym v = Sym v

let apply_binop (op : binop) a b =
  match op with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Imul -> Some (a * b)
  | Div -> if b = 0 then None else Some (a / b)
  | Rem -> if b = 0 then None else Some (a mod b)
  | And -> Some (a land b)
  | Or -> Some (a lor b)
  | Xor -> Some (a lxor b)
  | Shl -> if b < 0 || b > 62 then None else Some (a lsl b)
  | Shr -> if b < 0 || b > 62 then None else Some (a lsr b)
  | Sar -> if b < 0 || b > 62 then None else Some (a asr b)

let bin op a b =
  match a, b with
  | Const x, Const y -> (
    match apply_binop op x y with
    | Some v -> Const v
    | None -> Bin (op, a, b))
  | (Const 0, e | e, Const 0) when op = Isa.Insn.Add -> e
  | e, Const 0 when op = Isa.Insn.Sub -> e
  | (Const 0, _ | _, Const 0) when op = Isa.Insn.Imul -> Const 0
  | (Const 1, e | e, Const 1) when op = Isa.Insn.Imul -> e
  | _, _ -> Bin (op, a, b)

let is_concrete = function Const _ -> true | Sym _ | Bin _ | Neg _ | Not _ -> false

let to_concrete = function Const c -> Some c | Sym _ | Bin _ | Neg _ | Not _ -> None

let rec vars = function
  | Const _ -> Stdx.Intset.empty
  | Sym v -> Stdx.Intset.add v Stdx.Intset.empty
  | Bin (_, a, b) -> Stdx.Intset.union (vars a) (vars b)
  | Neg e | Not e -> vars e

let rec eval ~env = function
  | Const c -> Some c
  | Sym v -> Some (env v)
  | Neg e -> Option.map (fun x -> -x) (eval ~env e)
  | Not e -> Option.map lnot (eval ~env e)
  | Bin (op, a, b) -> (
    match eval ~env a, eval ~env b with
    | Some x, Some y -> apply_binop op x y
    | (None, _ | _, None) -> None)

let rec subst_eval ~env = function
  | Const c -> Const c
  | Sym v -> (match env v with Some x -> Const x | None -> Sym v)
  | Neg e -> (
    match subst_eval ~env e with Const x -> Const (-x) | e' -> Neg e')
  | Not e -> (
    match subst_eval ~env e with Const x -> Const (lnot x) | e' -> Not e')
  | Bin (op, a, b) -> bin op (subst_eval ~env a) (subst_eval ~env b)

let rec size = function
  | Const _ | Sym _ -> 1
  | Neg e | Not e -> 1 + size e
  | Bin (_, a, b) -> 1 + size a + size b

let rec pp fmt = function
  | Const c -> Format.pp_print_int fmt c
  | Sym v -> Format.fprintf fmt "s%d" v
  | Neg e -> Format.fprintf fmt "-(%a)" pp e
  | Not e -> Format.fprintf fmt "~(%a)" pp e
  | Bin (op, a, b) -> Format.fprintf fmt "(%a %a %a)" pp a Isa.Insn.pp_binop op pp b

let unsigned_lt a b = a lxor min_int < b lxor min_int

let cond_holds (c : Isa.Insn.cond) a b =
  match c with
  | E -> a = b
  | NE -> a <> b
  | L -> a < b
  | LE -> a <= b
  | G -> a > b
  | GE -> a >= b
  | B -> unsigned_lt a b
  | BE -> unsigned_lt a b || a = b
  | A -> not (unsigned_lt a b || a = b)
  | AE -> not (unsigned_lt a b)
  | S -> a - b < 0
  | NS -> a - b >= 0
