(** The multi-path symbolic executor — this repository's S2E analogue.

    Guests are ordinary VX64 images; bytes obtained from [read(0, …)] are
    symbolic (up to a configured budget).  Execution proceeds concretely
    until a comparison over symbolic data reaches a conditional branch; the
    engine then {e forks the entire machine state}, constraining one side
    with the branch condition and the other with its negation — the paper's
    §3.2 mapping of partial candidates to VM states "executed up to the
    point where a symbolic branch condition is encountered".

    Two forking backends isolate the mechanism E5 measures:
    - [Cow]: concrete memory lives in a shared {!Mem.Addr_space}; a fork is
      an O(1) lightweight snapshot, and divergence costs one COW fault per
      page actually written (the paper's proposal);
    - [Eager_copy]: every fork duplicates all mapped pages of the parent's
      address space, the way S2E's software state copying behaves inside
      QEMU (the baseline).

    Both backends explore identical path sets; only the forking cost
    differs. *)

type fork_mode = Cow | Eager_copy

type strategy = [ `Dfs | `Bfs | `Random of int | `Coverage ]

type config = {
  fork_mode : fork_mode;
  strategy : strategy;
  max_paths : int;            (** stop after reporting this many paths *)
  max_steps_per_path : int;
  solver_budget : int;
  symbolic_stdin : int;       (** symbolic bytes served by read(0, …) *)
  check_feasibility_at_fork : bool;
}

val default_config : config

type path_end =
  | Exited of int             (** concretised exit status *)
  | Faulted of string
  | Unsupported of string     (** operation outside the symbolic fragment *)
  | Step_limit

type path_report = {
  end_ : path_end;
  input : (int * int) list;   (** solved model: symbolic byte -> value *)
  constraints : Cons.t list;
  steps : int;
  depth : int;                (** forks on the path *)
  output : string;            (** concrete stdout of the path *)
}

type result = {
  paths : path_report list;
  explored : int;
  infeasible : int;           (** forks pruned or paths found UNSAT *)
  forks : int;
  solver_calls : int;
  solver_cache_hits : int;    (** solves answered by the constraint cache *)
  concretizations : int;      (** symbolic values pinned to model values
                                  (addresses, stack pointers) *)
  eager_pages_copied : int;   (** pages duplicated by [Eager_copy] forks *)
  instructions : int;
  mem : Mem.Mem_metrics.t;    (** memory events during the run *)
}

val run : ?config:config -> Isa.Asm.image -> result
