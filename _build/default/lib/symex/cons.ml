type t = {
  cond : Isa.Insn.cond;
  a : Expr.t;
  b : Expr.t;
  expect : bool;
}

let make ~cond ~a ~b ~expect = { cond; a; b; expect }

let negate c = { c with expect = not c.expect }

let holds_under ~env c =
  match Expr.eval ~env c.a, Expr.eval ~env c.b with
  | Some x, Some y -> Some (Expr.cond_holds c.cond x y = c.expect)
  | (None, _ | _, None) -> None

let vars constraints =
  let set =
    List.fold_left
      (fun acc c -> Stdx.Intset.union acc (Stdx.Intset.union (Expr.vars c.a) (Expr.vars c.b)))
      Stdx.Intset.empty constraints
  in
  Stdx.Intset.elements set

type solve_result =
  | Model of (int * int) list
  | Unsat
  | Budget_exceeded

exception Out_of_budget

(* Depth-first labeling over the constraint variables.  [watch] maps each
   variable to the constraints whose variable set it completes last (by
   labeling order), so every constraint is checked exactly once, as early
   as possible. *)
let solve ?(budget = 200_000) constraints =
  let var_list = vars constraints in
  match var_list with
  | [] ->
    (* fully concrete: evaluate directly *)
    let env _ = 0 in
    if List.for_all (fun c -> holds_under ~env c = Some true) constraints then Model []
    else Unsat
  | _ ->
    let order = Array.of_list var_list in
    let rank = Hashtbl.create 16 in
    Array.iteri (fun idx v -> Hashtbl.replace rank v idx) order;
    let n = Array.length order in
    let checks = Array.make n [] in
    List.iter
      (fun c ->
        let deepest =
          Stdx.Intset.fold
            (fun v acc -> max acc (Hashtbl.find rank v))
            (Stdx.Intset.union (Expr.vars c.a) (Expr.vars c.b))
            0
        in
        checks.(deepest) <- c :: checks.(deepest))
      constraints;
    let values = Array.make n 0 in
    let env v = values.(Hashtbl.find rank v) in
    let nodes = ref 0 in
    let exception Found in
    let rec assign idx =
      if idx = n then raise Found
      else
        for value = 0 to 255 do
          incr nodes;
          if !nodes > budget then raise Out_of_budget;
          values.(idx) <- value;
          let ok =
            List.for_all (fun c -> holds_under ~env c = Some true) checks.(idx)
          in
          if ok then assign (idx + 1)
        done
    in
    (try
       assign 0;
       Unsat
     with
    | Found -> Model (List.init n (fun idx -> order.(idx), values.(idx)))
    | Out_of_budget -> Budget_exceeded)

let pp fmt c =
  Format.fprintf fmt "%s(%a %a %a)"
    (if c.expect then "" else "not ")
    Expr.pp c.a Isa.Insn.pp_cond c.cond Expr.pp c.b
