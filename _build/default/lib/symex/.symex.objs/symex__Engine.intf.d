lib/symex/engine.mli: Cons Isa Mem
