lib/symex/engine.ml: Array Bytes Char Cons Expr Float Hashtbl Isa List Mem Os Printf Search Stdx String
