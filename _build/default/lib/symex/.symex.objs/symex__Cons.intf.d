lib/symex/cons.mli: Expr Format Isa
