lib/symex/cons.ml: Array Expr Format Hashtbl Isa List Stdx
