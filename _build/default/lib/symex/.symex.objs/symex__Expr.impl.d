lib/symex/expr.ml: Format Isa Option Stdx
