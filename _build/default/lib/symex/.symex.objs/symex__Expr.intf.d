lib/symex/expr.mli: Format Isa Stdx
