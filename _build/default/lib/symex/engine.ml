module As = Mem.Addr_space
module Ptmap = Stdx.Ptmap
module Frontier = Search.Frontier
module Insn = Isa.Insn
module Reg = Isa.Reg

type fork_mode = Cow | Eager_copy

type strategy = [ `Dfs | `Bfs | `Random of int | `Coverage ]

type config = {
  fork_mode : fork_mode;
  strategy : strategy;
  max_paths : int;
  max_steps_per_path : int;
  solver_budget : int;
  symbolic_stdin : int;
  check_feasibility_at_fork : bool;
}

let default_config =
  { fork_mode = Cow;
    strategy = `Dfs;
    max_paths = 10_000;
    max_steps_per_path = 1_000_000;
    solver_budget = 200_000;
    symbolic_stdin = 8;
    check_feasibility_at_fork = true }

type path_end =
  | Exited of int
  | Faulted of string
  | Unsupported of string
  | Step_limit

type path_report = {
  end_ : path_end;
  input : (int * int) list;
  constraints : Cons.t list;
  steps : int;
  depth : int;
  output : string;
}

type result = {
  paths : path_report list;
  explored : int;
  infeasible : int;
  forks : int;
  solver_calls : int;
  solver_cache_hits : int;
  concretizations : int;
  eager_pages_copied : int;
  instructions : int;
  mem : Mem.Mem_metrics.t;
}

(* Symbolic memory overlay entry: a value of the given width lives at this
   address, shadowing concrete memory. *)
type entry = { width : Insn.width; value : Expr.t }

let width_len = function Insn.B -> 1 | Insn.Q -> 8

(* Flags are always "the result of comparing a with b"; Test and ALU
   results compare against zero. *)
type flags = { fa : Expr.t; fb : Expr.t }

type mem_ref = Shared of As.snapshot | Own of As.t

type pending = {
  p_regs : Expr.t array;
  p_rip : int;
  p_flags : flags;
  p_overlay : entry Ptmap.t;
  p_constraints : Cons.t list;
  p_depth : int;
  p_steps : int;
  p_stdin : int;
  p_out : string list;
  p_mem : mem_ref;
}

exception Path_end of path_end

let make_frontier : strategy -> pending Frontier.t = function
  | `Dfs -> Frontier.dfs ()
  | `Bfs -> Frontier.bfs ()
  | `Random seed -> Frontier.random ~seed ()
  | `Coverage ->
    Frontier.best_first ~name:"coverage" ~score:(fun m -> Float.of_int m.Frontier.hint) ()

let run ?(config = default_config) (image : Isa.Asm.image) =
  let phys = Mem.Phys_mem.create () in
  let mem_metrics_base = Mem.Mem_metrics.copy (Mem.Phys_mem.metrics phys) in
  (* Boot state: map the image and a stack, like the libOS but without OS
     state (the executor interposes on syscalls itself). *)
  let boot_aspace () =
    let aspace = As.create phys in
    let len = String.length image.code in
    let pages = (len + Mem.Page.size - 1) / Mem.Page.size in
    for p = 0 to pages - 1 do
      let off = p * Mem.Page.size in
      let chunk = String.sub image.code off (min Mem.Page.size (len - off)) in
      As.map_data aspace ~vpn:(Mem.Page.vpn_of_addr (image.origin + off)) chunk
    done;
    let stack_top = 0x4000000 in
    for vpn = Mem.Page.vpn_of_addr (stack_top - (64 * Mem.Page.size))
        to Mem.Page.vpn_of_addr stack_top - 1 do
      As.map_zero aspace ~vpn
    done;
    aspace, stack_top
  in
  let shared_aspace, stack_top = boot_aspace () in

  (* Mutable execution context for the path currently running. *)
  let regs = Array.make Reg.count (Expr.const 0) in
  let rip = ref image.entry in
  let flags = ref { fa = Expr.const 0; fb = Expr.const 0 } in
  let overlay = ref Ptmap.empty in
  let constraints = ref [] in
  let depth = ref 0 in
  let steps = ref 0 in
  let stdin_pos = ref 0 in
  let out = ref [] in
  let cur_aspace = ref shared_aspace in

  let frontier = make_frontier config.strategy in
  let covered = ref Stdx.Intset.empty in

  let explored = ref 0 in
  let infeasible = ref 0 in
  let forks = ref 0 in
  let solver_calls = ref 0 in
  let cache_hits = ref 0 in
  let concretizations = ref 0 in
  let eager_pages = ref 0 in
  let instructions = ref 0 in
  let reports = ref [] in

  let clone_eager src =
    let dst = As.create phys in
    List.iter
      (fun vpn ->
        let data = As.read_bytes src ~addr:(Mem.Page.addr_of_vpn vpn) ~len:Mem.Page.size in
        As.map_data dst ~vpn (Bytes.to_string data);
        incr eager_pages)
      (As.mapped_vpns src);
    dst
  in

  let save_pending ~at_rip ~constraint_ ~mem =
    { p_regs = Array.copy regs;
      p_rip = at_rip;
      p_flags = !flags;
      p_overlay = !overlay;
      p_constraints = constraint_ :: !constraints;
      p_depth = !depth + 1;
      p_steps = !steps;
      p_stdin = !stdin_pos;
      p_out = !out;
      p_mem = mem }
  in

  let install (p : pending) =
    Array.blit p.p_regs 0 regs 0 Reg.count;
    rip := p.p_rip;
    flags := p.p_flags;
    overlay := p.p_overlay;
    constraints := p.p_constraints;
    depth := p.p_depth;
    steps := p.p_steps;
    stdin_pos := p.p_stdin;
    out := p.p_out;
    match p.p_mem with
    | Shared snap ->
      As.restore shared_aspace snap;
      cur_aspace := shared_aspace
    | Own aspace -> cur_aspace := aspace
  in

  (* Solver results are memoised on the structural constraint list; path
     prefixes repeat constantly (fork feasibility checks, then the path-end
     solve), so the cache carries much of the load, like KLEE's
     counterexample cache. *)
  let solver_cache : (Cons.t list, Cons.solve_result) Hashtbl.t =
    Hashtbl.create 256
  in
  let solve cs =
    match Hashtbl.find_opt solver_cache cs with
    | Some cached ->
      incr cache_hits;
      cached
    | None ->
      incr solver_calls;
      let result = Cons.solve ~budget:config.solver_budget cs in
      Hashtbl.replace solver_cache cs result;
      result
  in

  let feasible cs =
    match solve cs with
    | Cons.Model _ | Cons.Budget_exceeded -> true
    | Cons.Unsat -> false
  in

  (* {1 Memory access} *)

  let unsupported msg = raise (Path_end (Unsupported msg)) in

  let concrete_of expr what =
    match Expr.to_concrete expr with
    | Some v -> v
    | None -> unsupported (what ^ " must be concrete")
  in

  (* KLEE-style concretisation: pick a model value for the expression and
     pin it with an equality constraint.  Sound (the path stays feasible)
     but incomplete (other values of the expression are not explored). *)
  let concretize expr what =
    match Expr.to_concrete expr with
    | Some v -> v
    | None -> (
      match solve !constraints with
      | Cons.Unsat -> unsupported "infeasible path at concretisation"
      | Cons.Budget_exceeded -> unsupported (what ^ ": solver budget")
      | Cons.Model model -> (
        let env v = match List.assoc_opt v model with Some x -> x | None -> 0 in
        match Expr.eval ~env expr with
        | None -> unsupported (what ^ ": unevaluable under model")
        | Some v ->
          incr concretizations;
          constraints :=
            Cons.make ~cond:Isa.Insn.E ~a:expr ~b:(Expr.const v) ~expect:true
            :: !constraints;
          v))
  in

  let effective (m : Insn.mem) =
    let base = match m.base with None -> Expr.const 0 | Some reg -> regs.(Reg.to_int reg) in
    let index =
      match m.index with
      | None -> Expr.const 0
      | Some (reg, scale) -> Expr.bin Insn.Imul regs.(Reg.to_int reg) (Expr.const scale)
    in
    let addr = Expr.bin Insn.Add (Expr.bin Insn.Add base index) (Expr.const m.disp) in
    concretize addr "memory address"
  in

  (* overlapping overlay entries within [addr, addr+len) *)
  let overlay_overlaps addr len =
    let lo = addr - 7 in
    let hits = ref [] in
    for a = lo to addr + len - 1 do
      match Ptmap.find_opt a !overlay with
      | Some e when a + width_len e.width > addr && a < addr + len ->
        hits := (a, e) :: !hits
      | Some _ | None -> ()
    done;
    List.rev !hits
  in

  let overlay_clear addr len =
    List.iter (fun (a, _) -> overlay := Ptmap.remove a !overlay) (overlay_overlaps addr len)
  in

  let concrete_read width addr =
    match width with
    | Insn.B -> As.read_u8 !cur_aspace addr
    | Insn.Q -> As.read_u64 !cur_aspace addr
  in

  let load width addr : Expr.t =
    match overlay_overlaps addr (width_len width) with
    | [] -> Expr.const (concrete_read width addr)
    | [ (a, e) ] when a = addr && e.width = width -> e.value
    | hits -> (
      match width with
      | Insn.B -> unsupported "partial symbolic byte load"
      | Insn.Q ->
        (* compose a quad from byte entries and concrete bytes *)
        if List.exists (fun (_, e) -> e.width = Insn.Q) hits then
          unsupported "misaligned symbolic quad load"
        else begin
          let acc = ref (Expr.const 0) in
          for byte = 7 downto 0 do
            let a = addr + byte in
            let piece =
              match Ptmap.find_opt a !overlay with
              | Some e -> e.value
              | None -> Expr.const (As.read_u8 !cur_aspace a)
            in
            acc := Expr.bin Insn.Or (Expr.bin Insn.Shl !acc (Expr.const 8)) piece
          done;
          !acc
        end)
  in

  let store width addr value =
    match Expr.to_concrete value with
    | Some v ->
      overlay_clear addr (width_len width);
      (match width with
      | Insn.B -> As.write_u8 !cur_aspace addr v
      | Insn.Q -> As.write_u64 !cur_aspace addr v)
    | None ->
      overlay_clear addr (width_len width);
      (* materialise the page so the COW cost is paid like a real write *)
      (match width with
      | Insn.B -> As.write_u8 !cur_aspace addr 0
      | Insn.Q -> As.write_u64 !cur_aspace addr 0);
      overlay := Ptmap.add addr { width; value } !overlay
  in

  (* {1 Forking} *)

  (* Fork on a symbolic condition.  [prep_true]/[prep_false] apply any
     side-specific register effect (Setcc) before the corresponding side is
     captured or continued; the surviving path continues on the true side
     when it is feasible. *)
  let no_prep () = () in
  let fork ?(prep_true = no_prep) ?(prep_false = no_prep) ~constraint_true
      ~constraint_false ~rip_true ~rip_false () =
    incr forks;
    let cs_true = constraint_true :: !constraints in
    let cs_false = constraint_false :: !constraints in
    let ok_true = (not config.check_feasibility_at_fork) || feasible cs_true in
    let ok_false = (not config.check_feasibility_at_fork) || feasible cs_false in
    if not ok_true then incr infeasible;
    if not ok_false then incr infeasible;
    let hint = if Stdx.Intset.mem !rip !covered then 1 else 0 in
    covered := Stdx.Intset.add !rip !covered;
    match ok_true, ok_false with
    | false, false -> raise (Path_end (Unsupported "both branch directions infeasible"))
    | true, false ->
      prep_true ();
      constraints := cs_true;
      rip := rip_true
    | false, true ->
      prep_false ();
      constraints := cs_false;
      rip := rip_false
    | true, true ->
      (* defer the false side; continue on the true side *)
      let mem =
        match config.fork_mode with
        | Cow -> Shared (As.snapshot !cur_aspace)
        | Eager_copy -> Own (clone_eager !cur_aspace)
      in
      prep_false ();
      let sibling = save_pending ~at_rip:rip_false ~constraint_:constraint_false ~mem in
      frontier.Frontier.push_batch
        [ { Frontier.depth = sibling.p_depth; hint }, sibling ];
      prep_true ();
      constraints := cs_true;
      incr depth;
      rip := rip_true
  in

  (* {1 Syscalls} *)

  let sys_read buf len =
    let n = ref 0 in
    for i = 0 to len - 1 do
      if !stdin_pos < config.symbolic_stdin then begin
        store Insn.B (buf + i) (Expr.const 0);
        overlay := Ptmap.add (buf + i) { width = Insn.B; value = Expr.sym !stdin_pos } !overlay;
        incr stdin_pos;
        incr n
      end
    done;
    !n
  in

  let sys_write buf len =
    let chunk = Bytes.create len in
    for i = 0 to len - 1 do
      match load Insn.B (buf + i) with
      | e -> (
        match Expr.to_concrete e with
        | Some v -> Bytes.set chunk i (Char.chr (v land 0xff))
        | None -> Bytes.set chunk i '?')
    done;
    out := Bytes.to_string chunk :: !out;
    len
  in

  let do_syscall () =
    let number = concrete_of regs.(Reg.to_int Reg.rax) "syscall number" in
    let arg0 = regs.(Reg.to_int Reg.rdi) in
    let arg1 = regs.(Reg.to_int Reg.rsi) in
    let arg2 = regs.(Reg.to_int Reg.rdx) in
    if number = Os.Sys_abi.sys_exit then begin
      let status =
        match Expr.to_concrete arg0 with
        | Some v -> v
        | None -> (
          (* concretise the exit status under the path model *)
          match solve !constraints with
          | Cons.Model model ->
            let env v = List.assoc v model in
            (match Expr.eval ~env arg0 with Some v -> v | None -> -1)
          | Cons.Unsat | Cons.Budget_exceeded -> -1)
      in
      raise (Path_end (Exited status))
    end
    else if number = Os.Sys_abi.sys_read then begin
      let fd = concrete_of arg0 "read fd" in
      if fd <> 0 then unsupported "read from non-stdin";
      let buf = concrete_of arg1 "read buffer" in
      let len = concrete_of arg2 "read length" in
      regs.(Reg.to_int Reg.rax) <- Expr.const (sys_read buf len)
    end
    else if number = Os.Sys_abi.sys_write then begin
      let fd = concrete_of arg0 "write fd" in
      if fd <> 1 && fd <> 2 then unsupported "write to non-std fd";
      let buf = concrete_of arg1 "write buffer" in
      let len = concrete_of arg2 "write length" in
      regs.(Reg.to_int Reg.rax) <- Expr.const (sys_write buf len)
    end
    else if number = Os.Sys_abi.sys_vtime then
      regs.(Reg.to_int Reg.rax) <- Expr.const !steps
    else unsupported (Printf.sprintf "syscall %s" (Os.Sys_abi.name_of_syscall number))
  in

  (* {1 The step function} *)

  let operand = function
    | Insn.Reg reg -> regs.(Reg.to_int reg)
    | Insn.Imm v -> Expr.const v
  in

  let set_flags_result e = flags := { fa = e; fb = Expr.const 0 } in

  let eval_cond_concrete c a b = Expr.cond_holds c a b in

  let step () =
    let fetch addr = As.read_u8 !cur_aspace addr in
    let insn, size =
      match Isa.Encode.decode ~fetch !rip with
      | v -> v
      | exception As.Page_fault { addr; _ } ->
        raise (Path_end (Faulted (Printf.sprintf "fetch fault at 0x%x" addr)))
      | exception Isa.Encode.Invalid_opcode { opcode; _ } ->
        raise (Path_end (Faulted (Printf.sprintf "invalid opcode 0x%x at 0x%x" opcode !rip)))
    in
    let next = !rip + size in
    incr steps;
    incr instructions;
    let set reg e = regs.(Reg.to_int reg) <- e in
    let get reg = regs.(Reg.to_int reg) in
    let push_value e =
      let sp = concretize (get Reg.rsp) "stack pointer" - 8 in
      store Insn.Q sp e;
      set Reg.rsp (Expr.const sp)
    in
    match insn with
    | Insn.Nop -> rip := next
    | Insn.Hlt ->
      raise (Path_end (Exited (concrete_of (get Reg.rdi) "exit status")))
    | Insn.Syscall ->
      rip := next;
      do_syscall ()
    | Insn.Ret ->
      let sp = concretize (get Reg.rsp) "stack pointer" in
      let target = load Insn.Q sp in
      set Reg.rsp (Expr.const (sp + 8));
      rip := concrete_of target "return address"
    | Insn.Mov (reg, op) ->
      set reg (operand op);
      rip := next
    | Insn.Lea (reg, m) ->
      let base = match m.base with None -> Expr.const 0 | Some b -> get b in
      let index =
        match m.index with
        | None -> Expr.const 0
        | Some (ir, scale) -> Expr.bin Insn.Imul (get ir) (Expr.const scale)
      in
      set reg (Expr.bin Insn.Add (Expr.bin Insn.Add base index) (Expr.const m.disp));
      rip := next
    | Insn.Ld (w, reg, m) ->
      set reg (load w (effective m));
      rip := next
    | Insn.St (w, m, reg) ->
      store w (effective m) (get reg);
      rip := next
    | Insn.Sti (w, m, v) ->
      store w (effective m) (Expr.const v);
      rip := next
    | Insn.Bin (op, reg, operand_) ->
      let a = get reg and b = operand operand_ in
      (match op with
      | Insn.Div | Insn.Rem -> (
        match Expr.to_concrete b with
        | Some 0 -> raise (Path_end (Faulted "division by zero"))
        | Some _ -> ()
        | None -> unsupported "symbolic divisor")
      | Insn.Shl | Insn.Shr | Insn.Sar -> (
        match Expr.to_concrete b with
        | Some s when s >= 0 && s <= 62 -> ()
        | Some _ -> raise (Path_end (Faulted "shift out of range"))
        | None -> unsupported "symbolic shift count")
      | Insn.Add | Insn.Sub | Insn.Imul | Insn.And | Insn.Or | Insn.Xor -> ());
      let e = Expr.bin op a b in
      set reg e;
      set_flags_result e;
      rip := next
    | Insn.Un (op, reg) ->
      let a = get reg in
      let e =
        match op with
        | Insn.Neg -> Expr.bin Insn.Sub (Expr.const 0) a
        | Insn.Not ->
          (match Expr.to_concrete a with
          | Some v -> Expr.const (lnot v)
          | None -> Expr.Not a)
        | Insn.Inc -> Expr.bin Insn.Add a (Expr.const 1)
        | Insn.Dec -> Expr.bin Insn.Sub a (Expr.const 1)
      in
      set reg e;
      set_flags_result e;
      rip := next
    | Insn.Cmp (reg, operand_) ->
      flags := { fa = get reg; fb = operand operand_ };
      rip := next
    | Insn.Test (reg, operand_) ->
      flags := { fa = Expr.bin Insn.And (get reg) (operand operand_); fb = Expr.const 0 };
      rip := next
    | Insn.Jmp target -> rip := target
    | Insn.Jcc (c, target) -> (
      let { fa; fb } = !flags in
      match Expr.to_concrete fa, Expr.to_concrete fb with
      | Some a, Some b -> rip := (if eval_cond_concrete c a b then target else next)
      | _, _ ->
        fork
          ~constraint_true:(Cons.make ~cond:c ~a:fa ~b:fb ~expect:true)
          ~constraint_false:(Cons.make ~cond:c ~a:fa ~b:fb ~expect:false)
          ~rip_true:target ~rip_false:next ())
    | Insn.Call target ->
      push_value (Expr.const next);
      rip := target
    | Insn.Push op ->
      push_value (operand op);
      rip := next
    | Insn.Pop reg ->
      let sp = concretize (get Reg.rsp) "stack pointer" in
      set reg (load Insn.Q sp);
      set Reg.rsp (Expr.const (sp + 8));
      rip := next
    | Insn.Setcc (c, reg) -> (
      let { fa; fb } = !flags in
      match Expr.to_concrete fa, Expr.to_concrete fb with
      | Some a, Some b ->
        set reg (Expr.const (if eval_cond_concrete c a b then 1 else 0));
        rip := next
      | _, _ ->
        (* both sides continue at the next rip, with the register set to
           the side's truth value before capture *)
        fork
          ~prep_true:(fun () -> set reg (Expr.const 1))
          ~prep_false:(fun () -> set reg (Expr.const 0))
          ~constraint_true:(Cons.make ~cond:c ~a:fa ~b:fb ~expect:true)
          ~constraint_false:(Cons.make ~cond:c ~a:fa ~b:fb ~expect:false)
          ~rip_true:next ~rip_false:next ())
  in

  let run_path () =
    match
      while !steps < config.max_steps_per_path do
        (match step () with
        | () -> ()
        | exception As.Page_fault { addr; _ } ->
          raise
            (Path_end (Faulted (Printf.sprintf "page fault at 0x%x (rip=0x%x)" addr !rip))))
      done
    with
    | () -> Step_limit
    | exception Path_end e -> e
  in

  let finish_path end_ =
    incr explored;
    let report input =
      reports :=
        { end_;
          input;
          constraints = !constraints;
          steps = !steps;
          depth = !depth;
          output = String.concat "" (List.rev !out) }
        :: !reports
    in
    match end_ with
    | Unsupported _ | Faulted _ | Step_limit | Exited _ -> (
      match solve !constraints with
      | Cons.Model model -> report model
      | Cons.Budget_exceeded -> report []
      | Cons.Unsat -> incr infeasible)
  in

  (* main loop *)
  let rec drive () =
    if List.length !reports >= config.max_paths then ()
    else begin
      let end_ = run_path () in
      finish_path end_;
      match frontier.Frontier.pop () with
      | None -> ()
      | Some p ->
        install p;
        drive ()
    end
  in
  (* initial state *)
  Array.fill regs 0 Reg.count (Expr.const 0);
  regs.(Reg.to_int Reg.rsp) <- Expr.const stack_top;
  rip := image.entry;
  drive ();
  let mem = Mem.Mem_metrics.diff (Mem.Phys_mem.metrics phys) mem_metrics_base in
  { paths = List.rev !reports;
    explored = !explored;
    infeasible = !infeasible;
    forks = !forks;
    solver_calls = !solver_calls;
    solver_cache_hits = !cache_hits;
    concretizations = !concretizations;
    eager_pages_copied = !eager_pages;
    instructions = !instructions;
    mem }
