module Smap = Map.Make (String)

type t = string Smap.t

let empty = Smap.empty
let add t ~path content = Smap.add path content t
let find t ~path = Smap.find_opt path t
let exists t ~path = Smap.mem path t
let remove t ~path = Smap.remove path t
let file_count t = Smap.cardinal t
let paths t = Smap.fold (fun p _ acc -> p :: acc) t []

let write_at t ~path ~offset data =
  let current = Option.value (find t ~path) ~default:"" in
  let cur_len = String.length current in
  let data_len = String.length data in
  let buf = Buffer.create (max cur_len (offset + data_len)) in
  Buffer.add_string buf (String.sub current 0 (min offset cur_len));
  if offset > cur_len then Buffer.add_string buf (String.make (offset - cur_len) '\000');
  Buffer.add_string buf data;
  if cur_len > offset + data_len then
    Buffer.add_string buf
      (String.sub current (offset + data_len) (cur_len - offset - data_len));
  add t ~path (Buffer.contents buf)

let read_at t ~path ~offset ~len =
  match find t ~path with
  | None -> None
  | Some content ->
    let cur_len = String.length content in
    if offset >= cur_len then Some ""
    else Some (String.sub content offset (min len (cur_len - offset)))

let size t ~path = Option.map String.length (find t ~path)

let equal a b = Smap.equal String.equal a b
