(** Persistent file-descriptor tables.

    Like the VFS, descriptor state (including seek offsets) is a persistent
    value so that it is captured by snapshots and diverges per extension:
    two extensions reading the same descriptor each see their own offset, as
    the paper's isolation requirement demands. *)

type desc = {
  path : string;
  offset : int;
  flags : int;  (** the open(2) flags the descriptor was created with *)
}

type t

val initial : t
(** Descriptors 0, 1, 2 reserved for stdin/stdout/stderr. *)

val alloc : t -> desc -> t * int
val find : t -> int -> desc option
val set : t -> int -> desc -> t
val close : t -> int -> t option
(** [None] if the descriptor is not open. *)

val is_std : int -> bool
val open_count : t -> int
