let sys_exit = 0
let sys_write = 1
let sys_read = 2
let sys_open = 3
let sys_close = 4
let sys_brk = 5
let sys_guess = 6
let sys_guess_fail = 7
let sys_guess_strategy = 8
let sys_guess_hint = 9
let sys_lseek = 10
let sys_unlink = 11
let sys_vtime = 12
let sys_timeout = 13
let sys_share = 14
let sys_socket = 20
let sys_ioctl = 21

let strategy_dfs = 0
let strategy_bfs = 1
let strategy_astar = 2
let strategy_sma = 3
let strategy_random = 4

let o_rdonly = 0
let o_wronly = 1
let o_rdwr = 2
let o_accmode = 3
let o_creat = 0x40
let o_trunc = 0x200
let o_append = 0x400

let seek_set = 0
let seek_cur = 1
let seek_end = 2

let enoent = 2
let ebadf = 9
let efault = 14
let einval = 22
let enomem = 12
let enotsup = 95
let enosys = 38
let emfile = 24

let name_of_syscall n =
  match n with
  | 0 -> "exit"
  | 1 -> "write"
  | 2 -> "read"
  | 3 -> "open"
  | 4 -> "close"
  | 5 -> "brk"
  | 6 -> "guess"
  | 7 -> "guess_fail"
  | 8 -> "guess_strategy"
  | 9 -> "guess_hint"
  | 10 -> "lseek"
  | 11 -> "unlink"
  | 12 -> "vtime"
  | 13 -> "timeout"
  | 14 -> "share"
  | 20 -> "socket"
  | 21 -> "ioctl"
  | _ -> Printf.sprintf "sys_%d" n
