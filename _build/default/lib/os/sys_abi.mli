(** The guest/libOS system-call ABI.

    Syscall number in [rax], arguments in [rdi], [rsi], [rdx]; the result
    (or negated errno) comes back in [rax].  Calls 6-9 are the paper's new
    backtracking system calls (§3.1): [guess], [guess_fail],
    [guess_strategy] and the heuristic-distance extension used by A*. *)

(** {1 Syscall numbers} *)

val sys_exit : int
val sys_write : int
val sys_read : int
val sys_open : int
val sys_close : int
val sys_brk : int
val sys_guess : int
val sys_guess_fail : int
val sys_guess_strategy : int
val sys_guess_hint : int
val sys_lseek : int
val sys_unlink : int
val sys_vtime : int
(** Virtual time: instructions retired by this vCPU (deterministic). *)

val sys_timeout : int
(** [sys_timeout(n)]: bound every subsequent extension evaluation to [n]
    guest instructions (0 clears the bound).  The paper's "control
    execution timeouts" API (§3.1); the bound is part of the snapshotted
    OS state, so it is inherited by descendants and rolled back with
    restores. *)

val sys_share : int
(** [sys_share(addr, len)]: make the pages covering [addr, addr+len)
    explicitly shared — excluded from snapshots, so writes are visible
    across all extensions and survive backtracking.  The paper's "explicit
    sharing mechanisms between lightweight snapshots" (§3.1). *)

val sys_socket : int
(** Always refused with ENOTSUP: the paper's soundness rule (§5) interposes
    only on reversible operations; sockets reach external peers. *)

val sys_ioctl : int

(** {1 Search-strategy identifiers for [sys_guess_strategy]} *)

val strategy_dfs : int
val strategy_bfs : int
val strategy_astar : int
val strategy_sma : int
val strategy_random : int

(** {1 Open flags (subset of POSIX)} *)

val o_rdonly : int
val o_wronly : int
val o_rdwr : int
val o_accmode : int
val o_creat : int
val o_trunc : int
val o_append : int

(** {1 lseek whence} *)

val seek_set : int
val seek_cur : int
val seek_end : int

(** {1 Errnos (returned negated)} *)

val enoent : int
val ebadf : int
val efault : int
val einval : int
val enomem : int
val enotsup : int
val enosys : int
val emfile : int

val name_of_syscall : int -> string
