module Ptmap = Stdx.Ptmap

type desc = { path : string; offset : int; flags : int }

type t = { descs : desc Ptmap.t; next : int }

let initial = { descs = Ptmap.empty; next = 3 }

let alloc t desc =
  (* Reuse the lowest free descriptor >= 3, like POSIX. *)
  let rec first_free fd = if Ptmap.mem fd t.descs then first_free (fd + 1) else fd in
  let fd = first_free 3 in
  { descs = Ptmap.add fd desc t.descs; next = max t.next (fd + 1) }, fd

let find t fd = Ptmap.find_opt fd t.descs

let set t fd desc = { t with descs = Ptmap.add fd desc t.descs }

let close t fd =
  if Ptmap.mem fd t.descs then Some { t with descs = Ptmap.remove fd t.descs }
  else None

let is_std fd = fd >= 0 && fd <= 2

let open_count t = Ptmap.cardinal t.descs
