(** A persistent in-memory filesystem.

    The paper's snapshot definition includes "a logical copy of open disk
    files"; making the whole filesystem a persistent value means capturing
    that copy is O(1) — a snapshot simply keeps the old root.  Only regular
    files exist; paths under [/dev] and [/proc] are refused by the libOS per
    the paper's soundness rule. *)

type t

val empty : t
val add : t -> path:string -> string -> t
val find : t -> path:string -> string option
val exists : t -> path:string -> bool
val remove : t -> path:string -> t
val file_count : t -> int
val paths : t -> string list

val write_at : t -> path:string -> offset:int -> string -> t
(** Write (creating the file if needed), zero-filling any gap between the
    current end of file and [offset]. *)

val read_at : t -> path:string -> offset:int -> len:int -> string option
(** [None] if the file does not exist; short reads at end of file. *)

val size : t -> path:string -> int option
val equal : t -> t -> bool
