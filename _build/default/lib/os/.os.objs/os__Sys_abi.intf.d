lib/os/sys_abi.mli:
