lib/os/vfs.ml: Buffer Map Option String
