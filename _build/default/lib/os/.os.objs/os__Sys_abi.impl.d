lib/os/sys_abi.ml: Printf
