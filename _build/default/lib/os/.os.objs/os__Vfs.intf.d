lib/os/vfs.mli:
