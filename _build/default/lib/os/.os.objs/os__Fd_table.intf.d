lib/os/fd_table.mli:
