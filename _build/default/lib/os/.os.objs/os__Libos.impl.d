lib/os/libos.ml: Array Buffer Bytes Char Fd_table Format Isa List Mem Option String Sys_abi Vcpu Vfs
