lib/os/libos.mli: Format Isa Mem Vcpu
