lib/os/fd_table.ml: Stdx
