(** Search-strategy frontiers.

    The paper separates the search strategy from partial candidates and
    extensions (§3.1): the strategy is a policy that schedules the next
    unevaluated extension.  A frontier is that policy's working set.  The
    scheduler pushes each guess's extensions as one batch (in extension-
    number order) and pops whatever the strategy says comes next.

    All built-in strategies are deterministic: DFS and BFS by construction,
    best-first ones by FIFO tie-breaking, and the random strategy by an
    explicit seed. *)

type meta = {
  depth : int;  (** guesses taken from the root to this extension *)
  hint : int;   (** guest-provided heuristic distance ([sys_guess_hint]) *)
}

type 'a t = {
  name : string;
  push_batch : (meta * 'a) list -> unit;
  pop : unit -> 'a option;
  length : unit -> int;
  evicted : unit -> 'a list;
      (** extensions dropped by a memory-bounded strategy since the last
          call (the caller must release their snapshots) *)
}

val dfs : unit -> 'a t
(** Depth-first: a batch's extension 0 is explored before its siblings. *)

val bfs : unit -> 'a t
(** Breadth-first: strict FIFO over batches. *)

val astar : unit -> 'a t
(** Best-first on [f = depth + hint]; ties broken FIFO. *)

val sma : capacity:int -> unit -> 'a t
(** Memory-bounded A*: as {!astar} but the frontier never holds more than
    [capacity] extensions; the worst (highest [f]) entries are evicted and
    reported via [evicted].  A simplification of SM-A* (no backed-up
    values), which the paper lists as a target strategy. *)

val random : seed:int -> unit -> 'a t
(** Uniformly random exploration order (deterministic in [seed]). *)

val best_first : name:string -> score:(meta -> float) -> unit -> 'a t
(** Custom best-first strategy: lower score pops first. *)

val wastar : weight:float -> unit -> 'a t
(** Weighted A*: best-first on [f = depth + weight * hint].  Weights above
    1 trade optimality for greediness. *)

val beam : width:int -> unit -> 'a t
(** Greedy beam search: best-first on the hint alone, never holding more
    than [width] extensions (the worst are evicted and reported). *)

val dfs_bounded : max_depth:int -> unit -> 'a t
(** Depth-first with a depth bound: extensions deeper than [max_depth] are
    refused at push time and reported via [evicted]. *)
