lib/search/frontier.ml: Float List Printf Queue Stdx
