lib/search/frontier.mli:
