module As = Mem.Addr_space
module Cpu = Vcpu.Cpu
module Interp = Vcpu.Interp
module Reg = Isa.Reg

type layout = {
  heap_base : int;
  stack_top : int;
  max_stack_pages : int;
}

type reason =
  | Fault of Interp.fault
  | Fuel_exhausted
  | Denied_syscall of { rip : int; number : int }

type stop =
  | Guess of { n : int }
  | Guess_fail
  | Guess_strategy of { strategy : int }
  | Guess_hint of { dist : int }
  | Exited of { status : int }
  | Killed of reason

type counters = {
  syscall_count : int array;
  mutable demand_pages : int;
  mutable denied : int;
}

type os_state = {
  vfs : Vfs.t;
  fds : Fd_table.t;
  brk : int;
  out : string list;       (* stdout chunks, most recent first *)
  err : string list;
  stdin_data : string;
  stdin_pos : int;
  timeout : int;           (* per-evaluation instruction bound; 0 = none *)
}

type t = {
  aspace : As.t;
  cpu : Cpu.t;
  layout : layout;
  counters : counters;
  icache : Interp.icache option;
  mutable os : os_state;
  mutable sys_hook : (int -> int -> unit) option;
}

let default_layout =
  { heap_base = 0x100000;          (* 1 MiB *)
    stack_top = 0x40000000;        (* 1 GiB *)
    max_stack_pages = 1024 }

let initial_os =
  { vfs = Vfs.empty;
    fds = Fd_table.initial;
    brk = 0;
    out = [];
    err = [];
    stdin_data = "";
    stdin_pos = 0;
    timeout = 0 }

let boot ?(layout = default_layout) ?(icache = true)
    ?(dispatch = Interp.Block) ?(dedup = false) ?(account = 0) phys
    (image : Isa.Asm.image) =
  if not (Mem.Page.is_aligned image.origin) then
    invalid_arg "Libos.boot: image origin not page-aligned";
  if image.origin + String.length image.code > layout.heap_base then
    invalid_arg "Libos.boot: image overlaps heap";
  let aspace = As.create phys in
  As.set_account aspace account;
  (* Map code/data one page at a time — through the content-addressed dedup
     table when requested, so same-image tenants share read-only frames.  A
     mid-boot allocation failure must return the dedup references already
     taken, or the pool leaks an entry per rejected boot. *)
  let len = String.length image.code in
  let pages = (len + Mem.Page.size - 1) / Mem.Page.size in
  (try
     for p = 0 to pages - 1 do
       let off = p * Mem.Page.size in
       let chunk = String.sub image.code off (min Mem.Page.size (len - off)) in
       let vpn = Mem.Page.vpn_of_addr (image.origin + off) in
       if dedup then As.map_dedup aspace ~vpn chunk
       else As.map_data aspace ~vpn chunk
     done
   with e ->
     ignore (As.drop_dedup_refs aspace);
     raise e);
  (* Seal the freshly-mapped image: code and initialised data become
     immutable-until-COW, like text/data mapped from an executable. *)
  As.seal aspace;
  let cpu = Cpu.create ~entry:image.entry in
  Cpu.set cpu Reg.rsp layout.stack_top;
  { aspace;
    cpu;
    layout;
    counters = { syscall_count = Array.make 32 0; demand_pages = 0; denied = 0 };
    icache = (if icache then Some (Interp.create_icache ~dispatch ()) else None);
    os = { initial_os with brk = layout.heap_base };
    sys_hook = None }

let set_sys_hook t hook = t.sys_hook <- hook

(* {1 OS state} *)

let os_capture t = t.os
let os_restore t os = t.os <- os

let add_file t ~path content = t.os <- { t.os with vfs = Vfs.add t.os.vfs ~path content }
let read_file t ~path = Vfs.find t.os.vfs ~path
let set_stdin t data = t.os <- { t.os with stdin_data = data; stdin_pos = 0 }
let stdout_text t = String.concat "" (List.rev t.os.out)
let stdout_chunks t = t.os.out
let stderr_text t = String.concat "" (List.rev t.os.err)
let brk_value t = t.os.brk

(* {1 Demand paging} *)

let in_heap t addr = addr >= t.layout.heap_base && addr < t.os.brk

let in_stack t addr =
  let lo = t.layout.stack_top - (t.layout.max_stack_pages * Mem.Page.size) in
  addr >= lo && addr < t.layout.stack_top

let service_page_fault t addr =
  if in_heap t addr || in_stack t addr then begin
    As.map_zero t.aspace ~vpn:(Mem.Page.vpn_of_addr addr);
    t.counters.demand_pages <- t.counters.demand_pages + 1;
    true
  end
  else false

(* {1 Guest memory helpers} *)

exception Guest_efault

let read_guest_string t addr =
  (* NUL-terminated, capped at 4096 bytes. *)
  let buf = Buffer.create 64 in
  let rec go i =
    if i >= 4096 then Buffer.contents buf
    else
      let c = As.read_u8 t.aspace (addr + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  (try go 0 with As.Page_fault _ -> raise Guest_efault)

let read_guest_bytes t addr len =
  try Bytes.to_string (As.read_bytes t.aspace ~addr ~len)
  with As.Page_fault _ -> raise Guest_efault

let write_guest_bytes t addr data =
  try As.write_bytes t.aspace ~addr data with As.Page_fault _ -> raise Guest_efault

(* {1 Syscall implementations}

   Each returns the value to place in rax (negative errno on failure). *)

let do_brk t requested =
  let os = t.os in
  if requested = 0 then os.brk
  else if requested < t.layout.heap_base then os.brk
  else begin
    let old_top = Mem.Page.round_up os.brk in
    let new_top = Mem.Page.round_up requested in
    (* Growing just moves the bound: [service_page_fault] demand-zeroes
       anything below [brk] on first touch, so no page-table entries are
       created until the guest writes.  Mapping the range here looks
       equivalent but costs one trie insert per page — a guest asking for a
       gigabyte of heap would stall the host on ~250k inserts and bloat
       every later snapshot walk (found by the differential fuzzer, whose
       generated guests pass garbage to brk). *)
    if new_top < old_top then begin
      (* Shrinking must still drop frames eagerly — memory above the new
         break is gone, and re-extending reads back zeroes.  Only touch
         pages that were actually materialised; for a huge retreat, walking
         the mapped set beats walking the address range. *)
      let lo = Mem.Page.vpn_of_addr new_top in
      let hi = Mem.Page.vpn_of_addr (old_top - 1) in
      if hi - lo > 256 then
        List.iter
          (fun vpn -> if vpn >= lo && vpn <= hi then As.unmap t.aspace ~vpn)
          (As.mapped_vpns t.aspace)
      else
        for vpn = lo to hi do
          if As.is_mapped t.aspace ~vpn then As.unmap t.aspace ~vpn
        done
    end;
    t.os <- { os with brk = requested };
    requested
  end

let path_is_refused path =
  (* The §5 soundness rule: regular files only. *)
  let prefixed prefix = String.length path >= String.length prefix
                        && String.sub path 0 (String.length prefix) = prefix in
  prefixed "/dev/" || prefixed "/proc/" || prefixed "/sys/"

let do_open t path_addr flags =
  match read_guest_string t path_addr with
  | exception Guest_efault -> -Sys_abi.efault
  | path ->
    if path_is_refused path then begin
      t.counters.denied <- t.counters.denied + 1;
      -Sys_abi.enotsup
    end
    else begin
      let os = t.os in
      let exists = Vfs.exists os.vfs ~path in
      let accmode = flags land Sys_abi.o_accmode in
      let creat = flags land Sys_abi.o_creat <> 0 in
      let trunc = flags land Sys_abi.o_trunc <> 0 in
      if (not exists) && not creat then -Sys_abi.enoent
      else begin
        let vfs =
          if (not exists) || (trunc && accmode <> Sys_abi.o_rdonly) then
            Vfs.add os.vfs ~path ""
          else os.vfs
        in
        let fds, fd = Fd_table.alloc os.fds { path; offset = 0; flags } in
        t.os <- { os with vfs; fds };
        fd
      end
    end

let do_close t fd =
  match Fd_table.close t.os.fds fd with
  | None -> -Sys_abi.ebadf
  | Some fds ->
    t.os <- { t.os with fds };
    0

let do_write t fd buf_addr len =
  if len < 0 then -Sys_abi.einval
  else
    match read_guest_bytes t buf_addr len with
    | exception Guest_efault -> -Sys_abi.efault
    | data ->
      if fd = 1 then begin
        t.os <- { t.os with out = data :: t.os.out };
        len
      end
      else if fd = 2 then begin
        t.os <- { t.os with err = data :: t.os.err };
        len
      end
      else begin
        match Fd_table.find t.os.fds fd with
        | None -> -Sys_abi.ebadf
        | Some desc ->
          if desc.flags land Sys_abi.o_accmode = Sys_abi.o_rdonly then -Sys_abi.ebadf
          else begin
            let offset =
              if desc.flags land Sys_abi.o_append <> 0 then
                Option.value (Vfs.size t.os.vfs ~path:desc.path) ~default:0
              else desc.offset
            in
            let vfs = Vfs.write_at t.os.vfs ~path:desc.path ~offset data in
            let fds = Fd_table.set t.os.fds fd { desc with offset = offset + len } in
            t.os <- { t.os with vfs; fds };
            len
          end
      end

let do_read t fd buf_addr len =
  if len < 0 then -Sys_abi.einval
  else if fd = 0 then begin
    let os = t.os in
    let available = String.length os.stdin_data - os.stdin_pos in
    let n = min len (max available 0) in
    let chunk = String.sub os.stdin_data os.stdin_pos n in
    match write_guest_bytes t buf_addr chunk with
    | exception Guest_efault -> -Sys_abi.efault
    | () ->
      t.os <- { os with stdin_pos = os.stdin_pos + n };
      n
  end
  else
    match Fd_table.find t.os.fds fd with
    | None -> -Sys_abi.ebadf
    | Some desc -> (
      if desc.flags land Sys_abi.o_accmode = Sys_abi.o_wronly then -Sys_abi.ebadf
      else
        match Vfs.read_at t.os.vfs ~path:desc.path ~offset:desc.offset ~len with
        | None -> -Sys_abi.enoent
        | Some chunk -> (
          match write_guest_bytes t buf_addr chunk with
          | exception Guest_efault -> -Sys_abi.efault
          | () ->
            let n = String.length chunk in
            t.os <- { t.os with fds = Fd_table.set t.os.fds fd { desc with offset = desc.offset + n } };
            n))

let do_lseek t fd pos whence =
  match Fd_table.find t.os.fds fd with
  | None -> -Sys_abi.ebadf
  | Some desc ->
    let file_size = Option.value (Vfs.size t.os.vfs ~path:desc.path) ~default:0 in
    let target =
      if whence = Sys_abi.seek_set then pos
      else if whence = Sys_abi.seek_cur then desc.offset + pos
      else if whence = Sys_abi.seek_end then file_size + pos
      else -1
    in
    if target < 0 then -Sys_abi.einval
    else begin
      t.os <- { t.os with fds = Fd_table.set t.os.fds fd { desc with offset = target } };
      target
    end

let do_share t addr len =
  if len <= 0 then -Sys_abi.einval
  else begin
    let first = Mem.Page.vpn_of_addr addr in
    let last = Mem.Page.vpn_of_addr (addr + len - 1) in
    if last - first >= 4096 then -Sys_abi.enomem
    else begin
      for vpn = first to last do
        As.map_shared t.aspace ~vpn
      done;
      0
    end
  end

let do_unlink t path_addr =
  match read_guest_string t path_addr with
  | exception Guest_efault -> -Sys_abi.efault
  | path ->
    if Vfs.exists t.os.vfs ~path then begin
      t.os <- { t.os with vfs = Vfs.remove t.os.vfs ~path };
      0
    end
    else -Sys_abi.enoent

(* {1 The vmexit loop} *)

let count_syscall t n =
  if n >= 0 && n < Array.length t.counters.syscall_count then
    t.counters.syscall_count.(n) <- t.counters.syscall_count.(n) + 1

(* Trace-event names precomputed per syscall number so the record sites
   allocate nothing ("sys.write", "sys.guess", ...). *)
let sys_span_names = Array.init 32 (fun n -> "sys." ^ Sys_abi.name_of_syscall n)
let sys_other_name = "sys.other"

let sys_span_name number =
  if number >= 0 && number < Array.length sys_span_names then
    sys_span_names.(number)
  else sys_other_name

let stop_trace_name = function
  | Guess _ -> Obs.Names.stop_guess
  | Guess_fail -> Obs.Names.stop_guess_fail
  | Guess_strategy _ -> Obs.Names.stop_strategy
  | Guess_hint _ -> Obs.Names.stop_hint
  | Exited _ -> Obs.Names.stop_exit
  | Killed _ -> Obs.Names.stop_kill

let icache_counts t = Option.map Interp.icache_counts t.icache
let block_counts t = Option.map Interp.block_counts t.icache

let run t ~fuel =
  let cpu = t.cpu in
  let fuel = if t.os.timeout > 0 then min fuel t.os.timeout else fuel in
  let rec loop remaining =
    if remaining <= 0 then Killed Fuel_exhausted
    else begin
      let retired_before = cpu.Cpu.retired in
      let exit = Interp.run ?icache:t.icache cpu t.aspace ~fuel:remaining in
      let used = max 1 (cpu.Cpu.retired - retired_before) in
      let remaining = remaining - used in
      match exit with
      | Interp.Out_of_fuel -> Killed Fuel_exhausted
      | Interp.Halt -> Exited { status = Cpu.get cpu Reg.rdi }
      | Interp.Fault (Interp.Page_fault { addr; _ } as f) ->
        if service_page_fault t addr then loop remaining else Killed (Fault f)
      | Interp.Fault f -> Killed (Fault f)
      | Interp.Syscall ->
        let number = Cpu.get cpu Reg.rax in
        let arg0 = Cpu.get cpu Reg.rdi in
        let arg1 = Cpu.get cpu Reg.rsi in
        let arg2 = Cpu.get cpu Reg.rdx in
        count_syscall t number;
        let traced = Obs.Trace.enabled () in
        (* The guess family (and exit) suspend the guest rather than
           return into it, so they trace as instants — the time until
           resume belongs to the scheduler, not the syscall. *)
        if traced && (number = Sys_abi.sys_exit || (number >= Sys_abi.sys_guess && number <= Sys_abi.sys_guess_hint))
        then Obs.Trace.instant ~a:arg0 (sys_span_name number);
        if number = Sys_abi.sys_exit then Exited { status = arg0 }
        else if number = Sys_abi.sys_guess then Guess { n = arg0 }
        else if number = Sys_abi.sys_guess_fail then Guess_fail
        else if number = Sys_abi.sys_guess_strategy then Guess_strategy { strategy = arg0 }
        else if number = Sys_abi.sys_guess_hint then Guess_hint { dist = arg0 }
        else begin
          if traced then Obs.Trace.span_begin ~a:arg0 (sys_span_name number);
          let result =
            if number = Sys_abi.sys_write then do_write t arg0 arg1 arg2
            else if number = Sys_abi.sys_read then do_read t arg0 arg1 arg2
            else if number = Sys_abi.sys_open then do_open t arg0 arg1
            else if number = Sys_abi.sys_close then do_close t arg0
            else if number = Sys_abi.sys_brk then do_brk t arg0
            else if number = Sys_abi.sys_lseek then do_lseek t arg0 arg1 arg2
            else if number = Sys_abi.sys_unlink then do_unlink t arg0
            else if number = Sys_abi.sys_vtime then cpu.Cpu.retired
            else if number = Sys_abi.sys_timeout then begin
              if arg0 < 0 then -Sys_abi.einval
              else begin
                t.os <- { t.os with timeout = arg0 };
                0
              end
            end
            else if number = Sys_abi.sys_share then do_share t arg0 arg1
            else if number = Sys_abi.sys_socket || number = Sys_abi.sys_ioctl then begin
              t.counters.denied <- t.counters.denied + 1;
              -Sys_abi.enotsup
            end
            else begin
              t.counters.denied <- t.counters.denied + 1;
              -Sys_abi.enosys
            end
          in
          if traced then Obs.Trace.span_end ~b:result (sys_span_name number);
          (match t.sys_hook with None -> () | Some f -> f number result);
          Cpu.set cpu Reg.rax result;
          loop remaining
        end
    end
  in
  loop fuel

let pp_reason fmt = function
  | Fault f -> Interp.pp_fault fmt f
  | Fuel_exhausted -> Format.pp_print_string fmt "fuel exhausted"
  | Denied_syscall { rip; number } ->
    Format.fprintf fmt "denied syscall %s at rip=0x%x" (Sys_abi.name_of_syscall number) rip

let pp_stop fmt = function
  | Guess { n } -> Format.fprintf fmt "guess(%d)" n
  | Guess_fail -> Format.pp_print_string fmt "guess_fail"
  | Guess_strategy { strategy } -> Format.fprintf fmt "guess_strategy(%d)" strategy
  | Guess_hint { dist } -> Format.fprintf fmt "guess_hint(%d)" dist
  | Exited { status } -> Format.fprintf fmt "exited(%d)" status
  | Killed r -> Format.fprintf fmt "killed: %a" pp_reason r
