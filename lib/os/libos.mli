(** The libOS: owns the vmexit loop and interposes on every guest syscall.

    This is the ring-0 (non-root) component of Figure 2.  It boots a guest
    image into an address space, serves demand paging for the heap and
    stack, implements the file and memory syscalls against persistent
    (snapshot-friendly) OS state, contains guest stdout/stderr per execution
    context, and hands the four backtracking syscalls up to the scheduler
    (the [Core.Explorer]) as {!stop} values.

    Isolation invariant: everything a guest extension can observe or mutate
    — its address space, its registers, the VFS, descriptor offsets, its
    accumulated output, the break — is either copy-on-write or a persistent
    value, so restoring a snapshot restores all of it. *)

type layout = {
  heap_base : int;
  stack_top : int;
  max_stack_pages : int;
}

type reason =
  | Fault of Vcpu.Interp.fault
  | Fuel_exhausted
  | Denied_syscall of { rip : int; number : int }
      (** raised only for [abort_on_denied] machines; by default denied
          syscalls return -ENOTSUP/-ENOSYS to the guest *)

type stop =
  | Guess of { n : int }
  | Guess_fail
  | Guess_strategy of { strategy : int }
  | Guess_hint of { dist : int }
  | Exited of { status : int }
  | Killed of reason

type counters = {
  syscall_count : int array;       (** indexed by syscall number, 0-31 *)
  mutable demand_pages : int;      (** page faults served by demand-zero *)
  mutable denied : int;            (** syscalls refused per the soundness rule *)
}

type os_state
(** Persistent OS-visible state: VFS, descriptor table, break, contained
    output streams and stdin cursor.  O(1) to capture. *)

type t = {
  aspace : Mem.Addr_space.t;
  cpu : Vcpu.Cpu.t;
  layout : layout;
  counters : counters;
  icache : Vcpu.Interp.icache option;
      (** shared decoded-instruction cache; [None] runs every fetch through
          the decoder (the E9 ablation and the fuzz oracle's icache-off
          pipeline — retired counts and semantics must not change) *)
  mutable os : os_state;
  mutable sys_hook : (int -> int -> unit) option;
      (** observer of ordinary (non-scheduler) syscalls, called with
          [(number, result)] after each one completes; [None] (the default)
          costs a single load-and-branch per syscall.  The recorder
          ([Record.Recorder]) installs one to log the syscall stream. *)
}

val default_layout : layout

val boot :
  ?layout:layout -> ?icache:bool -> ?dispatch:Vcpu.Interp.dispatch ->
  ?dedup:bool -> ?account:int -> Mem.Phys_mem.t -> Isa.Asm.image -> t
(** Map the image's code/data pages, point [rsp] at the stack top and the
    break at [heap_base].  [icache] (default true) enables the decoded
    instruction cache; [dispatch] (default {!Vcpu.Interp.Block}) selects
    per-basic-block superinstruction dispatch or the per-instruction
    cache — bit-identical semantics, different speed (the E9 ablation
    runs all three).  [dedup] (default false) maps image pages through
    the physical memory's content-addressed table so same-image guests on
    one [Phys_mem] share read-only frames (COW on first store; references
    dropped by {!Mem.Addr_space.drop_dedup_refs} at teardown).  [account]
    charges every frame the guest allocates to a
    {!Mem.Phys_mem.fresh_account} session for per-tenant budgeting.
    @raise Invalid_argument if the image overlaps the heap. *)

val set_sys_hook : t -> (int -> int -> unit) option -> unit
(** Install (or clear) the ordinary-syscall observer on a machine. *)

val run : t -> fuel:int -> stop
(** Execute the guest until a scheduler-visible stop, serving ordinary
    syscalls and demand paging internally.  [fuel] bounds retired guest
    instructions (approximately: faulted fetches count). *)

val stop_trace_name : stop -> string
(** The static [Obs.Names.stop_*] event name for a stop reason. *)

val icache_counts : t -> (int * int) option
(** Decode-cache [(misses, slow_decodes)]; [None] when booted with
    [~icache:false].  See {!Vcpu.Interp.icache_counts}. *)

val block_counts : t -> (int * int * int) option
(** Superinstruction-cache [(fuses, hits, splits)]; [None] when booted
    with [~icache:false], all zero under [~dispatch:Insn].  See
    {!Vcpu.Interp.block_counts}. *)

(** {1 OS state} *)

val os_capture : t -> os_state
val os_restore : t -> os_state -> unit

val add_file : t -> path:string -> string -> unit
val read_file : t -> path:string -> string option
val set_stdin : t -> string -> unit
val stdout_text : t -> string

(** Raw stdout chunks, most recent first.  The chunk list is a persistent
    value, which lets a scheduler harvest "output since a known point" by
    walking until physical equality — how the explorer gives guest stdout
    its Prolog-style survive-backtracking semantics. *)
val stdout_chunks : t -> string list
val stderr_text : t -> string
val brk_value : t -> int

val pp_stop : Format.formatter -> stop -> unit
val pp_reason : Format.formatter -> reason -> unit
