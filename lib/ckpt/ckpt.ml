module As = Mem.Addr_space

type full = {
  pages : (int * string) list;
  dead : int list;
      (* vpns unmapped since the previous checkpoint in a chain; a delta
         must record them or a restore resurrects pages from older deltas
         (found by the differential fuzzer).  Always [] for full captures. *)
  bytes : int;
}

let copy_page aspace vpn =
  ( vpn,
    Bytes.to_string
      (As.read_bytes aspace ~addr:(Mem.Page.addr_of_vpn vpn) ~len:Mem.Page.size)
  )

let copy_pages aspace vpns = List.map (copy_page aspace) vpns

let full_capture aspace =
  let pages = copy_pages aspace (As.mapped_vpns aspace) in
  { pages; dead = []; bytes = List.length pages * Mem.Page.size }

let full_restore aspace full =
  List.iter (fun vpn -> As.unmap aspace ~vpn) (As.mapped_vpns aspace);
  List.iter (fun (vpn, data) -> As.map_data aspace ~vpn data) full.pages

let full_bytes f = f.bytes

(* Incremental checkpoints identify dirty pages by diffing address-space
   snapshots — the moral equivalent of libckpt's mprotect dirty tracking —
   but the checkpoint data itself is an eager copy, which is the cost being
   measured. *)
type incr_chain = {
  mutable marks : As.snapshot list;  (* most recent first, for diffing *)
  mutable states : full list;        (* page images, most recent first *)
}

let incr_start aspace =
  { marks = [ As.snapshot aspace ]; states = [ full_capture aspace ] }

let incr_capture chain aspace =
  let mark = As.snapshot aspace in
  let pages, dead =
    match chain.marks with
    | [] -> (copy_pages aspace (As.mapped_vpns aspace), [])
    | prev :: _ ->
      (* Dirty pages come straight out of the snapshot byte delta — the
         same machinery the tiered payload store demotes with.  Two
         corrections keep the checkpoint equal to what the guest actually
         sees, which an explicitly-shared page overrides: a dirty vpn that
         is (also) shared re-reads through the address space, and a vpn
         dropped from the private map stays live while a shared page still
         backs it. *)
      let pages, dropped = As.snapshot_delta ~parent:prev mark in
      let pages =
        List.map
          (fun ((vpn, _) as page) ->
            if As.is_shared aspace ~vpn then copy_page aspace vpn else page)
          pages
      in
      let live, dead =
        List.partition (fun vpn -> As.is_mapped aspace ~vpn) dropped
      in
      (pages @ copy_pages aspace live, dead)
  in
  chain.marks <- mark :: chain.marks;
  chain.states <-
    { pages; dead; bytes = List.length pages * Mem.Page.size } :: chain.states

let incr_count chain = List.length chain.states

let incr_restore aspace chain ~index =
  let n = List.length chain.states in
  if index < 0 || index >= n then invalid_arg "Ckpt.incr_restore: bad index";
  (* states are most-recent-first; replay base then deltas 1..index *)
  let ordered = List.rev chain.states in
  List.iter (fun vpn -> As.unmap aspace ~vpn) (As.mapped_vpns aspace);
  List.iteri
    (fun k state ->
      if k <= index then begin
        List.iter (fun (vpn, data) -> As.map_data aspace ~vpn data) state.pages;
        List.iter (fun vpn -> As.unmap aspace ~vpn) state.dead
      end)
    ordered

let incr_bytes chain = List.fold_left (fun acc s -> acc + s.bytes) 0 chain.states

let clone phys src =
  let dst = As.create phys in
  List.iter
    (fun vpn ->
      let data = As.read_bytes src ~addr:(Mem.Page.addr_of_vpn vpn) ~len:Mem.Page.size in
      As.map_data dst ~vpn (Bytes.to_string data))
    (As.mapped_vpns src);
  dst
