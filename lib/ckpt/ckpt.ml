module As = Mem.Addr_space

type full = {
  pages : (int * string) list;
  dead : int list;
      (* vpns unmapped since the previous checkpoint in a chain; a delta
         must record them or a restore resurrects pages from older deltas
         (found by the differential fuzzer).  Always [] for full captures. *)
  bytes : int;
}

let copy_pages aspace vpns =
  List.map
    (fun vpn ->
      vpn,
      Bytes.to_string
        (As.read_bytes aspace ~addr:(Mem.Page.addr_of_vpn vpn) ~len:Mem.Page.size))
    vpns

let full_capture aspace =
  let pages = copy_pages aspace (As.mapped_vpns aspace) in
  { pages; dead = []; bytes = List.length pages * Mem.Page.size }

let full_restore aspace full =
  List.iter (fun vpn -> As.unmap aspace ~vpn) (As.mapped_vpns aspace);
  List.iter (fun (vpn, data) -> As.map_data aspace ~vpn data) full.pages

let full_bytes f = f.bytes

(* Incremental checkpoints identify dirty pages by diffing address-space
   snapshots — the moral equivalent of libckpt's mprotect dirty tracking —
   but the checkpoint data itself is an eager copy, which is the cost being
   measured. *)
type incr_chain = {
  mutable marks : As.snapshot list;  (* most recent first, for diffing *)
  mutable states : full list;        (* page images, most recent first *)
}

let incr_start aspace =
  { marks = [ As.snapshot aspace ]; states = [ full_capture aspace ] }

let incr_capture chain aspace =
  let mark = As.snapshot aspace in
  let dirty_vpns =
    match chain.marks with
    | [] -> As.mapped_vpns aspace
    | prev :: _ ->
      List.map (fun (vpn, _, _) -> vpn)
        (Stdx.Ptmap.sym_diff
           (fun (a : Mem.Phys_mem.frame) b -> a == b)
           (As.snapshot_map_for_debug prev)
           (As.snapshot_map_for_debug mark))
  in
  let live, dead = List.partition (fun vpn -> As.is_mapped aspace ~vpn) dirty_vpns in
  let pages = copy_pages aspace live in
  chain.marks <- mark :: chain.marks;
  chain.states <-
    { pages; dead; bytes = List.length pages * Mem.Page.size } :: chain.states

let incr_count chain = List.length chain.states

let incr_restore aspace chain ~index =
  let n = List.length chain.states in
  if index < 0 || index >= n then invalid_arg "Ckpt.incr_restore: bad index";
  (* states are most-recent-first; replay base then deltas 1..index *)
  let ordered = List.rev chain.states in
  List.iter (fun vpn -> As.unmap aspace ~vpn) (As.mapped_vpns aspace);
  List.iteri
    (fun k state ->
      if k <= index then begin
        List.iter (fun (vpn, data) -> As.map_data aspace ~vpn data) state.pages;
        List.iter (fun vpn -> As.unmap aspace ~vpn) state.dead
      end)
    ordered

let incr_bytes chain = List.fold_left (fun acc s -> acc + s.bytes) 0 chain.states

let clone phys src =
  let dst = As.create phys in
  List.iter
    (fun vpn ->
      let data = As.read_bytes src ~addr:(Mem.Page.addr_of_vpn vpn) ~len:Mem.Page.size in
      As.map_data dst ~vpn (Bytes.to_string data))
    (As.mapped_vpns src);
  dst
