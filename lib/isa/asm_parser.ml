exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_ident s =
  s <> "" && (not (s.[0] >= '0' && s.[0] <= '9')) && String.for_all is_ident_char s

(* Strip a comment (';' or '#') that is not inside a double-quoted string. *)
let strip_comment line =
  let len = String.length line in
  let rec scan i in_string =
    if i >= len then line
    else
      match line.[i] with
      | '"' -> scan (i + 1) (not in_string)
      | '\\' when in_string && i + 1 < len -> scan (i + 2) in_string
      | (';' | '#') when not in_string -> String.sub line 0 i
      | _ -> scan (i + 1) in_string
  in
  scan 0 false

let split_operands s =
  (* commas never appear inside brackets or strings in this dialect, but a
     char literal ',' must not split *)
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let len = String.length s in
  let rec scan i in_char in_string =
    if i >= len then parts := Buffer.contents buf :: !parts
    else
      match s.[i] with
      | '\'' when not in_string ->
        Buffer.add_char buf '\'';
        scan (i + 1) (not in_char) in_string
      | '"' when not in_char ->
        Buffer.add_char buf '"';
        scan (i + 1) in_char (not in_string)
      | ',' when (not in_char) && not in_string ->
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf;
        scan (i + 1) false false
      | c ->
        Buffer.add_char buf c;
        scan (i + 1) in_char in_string
  in
  if String.trim s = "" then []
  else begin
    scan 0 false false;
    List.rev_map String.trim !parts
  end

let parse_int line s =
  let s = String.trim s in
  if String.length s >= 3 && s.[0] = '\'' && s.[String.length s - 1] = '\'' then begin
    let inner = String.sub s 1 (String.length s - 2) in
    match Scanf.unescaped inner with
    | u when String.length u = 1 -> Char.code u.[0]
    | _ -> fail line "bad character literal %s" s
    | exception Scanf.Scan_failure _ -> fail line "bad character literal %s" s
  end
  else
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail line "bad integer %S" s

type operand_ast =
  | O_reg of Reg.t
  | O_imm of int
  | O_mem of Insn.mem
  | O_label of string

let parse_mem line inner =
  (* terms separated by + or - (the sign applies to displacement terms) *)
  let base = ref None in
  let index = ref None in
  let disp = ref 0 in
  let len = String.length inner in
  let pos = ref 0 in
  let sign = ref 1 in
  let term_buf = Buffer.create 8 in
  let flush_term () =
    let term = String.trim (Buffer.contents term_buf) in
    Buffer.clear term_buf;
    if term = "" then fail line "empty term in memory operand";
    match String.index_opt term '*' with
    | Some star ->
      let rname = String.trim (String.sub term 0 star) in
      let scale =
        parse_int line (String.sub term (star + 1) (String.length term - star - 1))
      in
      (match Reg.of_name rname with
      | Some reg ->
        if !index <> None then fail line "two index registers";
        if !sign < 0 then fail line "negative index term";
        if not (List.mem scale [ 1; 2; 4; 8 ]) then fail line "bad scale %d" scale;
        index := Some (reg, scale)
      | None -> fail line "unknown register %S" rname)
    | None -> (
      match Reg.of_name term with
      | Some reg ->
        if !sign < 0 then fail line "cannot subtract a register";
        if !base = None then base := Some reg
        else if !index = None then index := Some (reg, 1)
        else fail line "too many registers in memory operand"
      | None -> disp := !disp + (!sign * parse_int line term))
  in
  while !pos < len do
    (match inner.[!pos] with
    | '+' ->
      flush_term ();
      sign := 1
    | '-' when Buffer.length term_buf > 0 ->
      flush_term ();
      sign := -1
    | c -> Buffer.add_char term_buf c);
    incr pos
  done;
  flush_term ();
  { Insn.base = !base; index = !index; disp = !disp }

let parse_operand line s =
  let s = String.trim s in
  if s = "" then fail line "empty operand"
  else if s.[0] = '[' then
    if s.[String.length s - 1] <> ']' then fail line "unterminated memory operand"
    else O_mem (parse_mem line (String.sub s 1 (String.length s - 2)))
  else
    match Reg.of_name s with
    | Some reg -> O_reg reg
    | None ->
      if is_ident s then O_label s
      else O_imm (parse_int line s)

let cond_of_suffix = function
  | "e" -> Some Insn.E
  | "ne" -> Some Insn.NE
  | "l" -> Some Insn.L
  | "le" -> Some Insn.LE
  | "g" -> Some Insn.G
  | "ge" -> Some Insn.GE
  | "b" -> Some Insn.B
  | "be" -> Some Insn.BE
  | "a" -> Some Insn.A
  | "ae" -> Some Insn.AE
  | "s" -> Some Insn.S
  | "ns" -> Some Insn.NS
  | _ -> None

let binop_of_name = function
  | "add" -> Some Insn.Add
  | "sub" -> Some Insn.Sub
  | "imul" -> Some Insn.Imul
  | "div" -> Some Insn.Div
  | "rem" -> Some Insn.Rem
  | "and" -> Some Insn.And
  | "or" -> Some Insn.Or
  | "xor" -> Some Insn.Xor
  | "shl" -> Some Insn.Shl
  | "shr" -> Some Insn.Shr
  | "sar" -> Some Insn.Sar
  | _ -> None

let unop_of_name = function
  | "neg" -> Some Insn.Neg
  | "not" -> Some Insn.Not
  | "inc" -> Some Insn.Inc
  | "dec" -> Some Insn.Dec
  | _ -> None

let reg_operand line = function
  | O_reg reg -> reg
  | O_imm _ | O_mem _ | O_label _ -> fail line "expected a register"

let mem_operand line = function
  | O_mem m -> m
  | O_reg _ | O_imm _ | O_label _ -> fail line "expected a memory operand"

let ri_operand line = function
  | O_reg reg -> Insn.Reg reg
  | O_imm v -> Insn.Imm v
  | O_mem _ | O_label _ -> fail line "expected a register or immediate"

let label_operand line = function
  | O_label l -> l
  | O_reg _ | O_imm _ | O_mem _ -> fail line "expected a label"

let parse_instruction line mnemonic operands =
  let ops = List.map (parse_operand line) operands in
  let arity n =
    if List.length ops <> n then
      fail line "%s expects %d operand(s), got %d" mnemonic n (List.length ops)
  in
  let op1 () = arity 1; List.nth ops 0 in
  let op2 () = arity 2; (List.nth ops 0, List.nth ops 1) in
  match mnemonic with
  | "nop" -> arity 0; Asm.nop
  | "hlt" -> arity 0; Asm.hlt
  | "syscall" -> arity 0; Asm.syscall
  | "ret" -> arity 0; Asm.ret
  | "mov" -> (
    let dst, src = op2 () in
    let dst = reg_operand line dst in
    match src with
    | O_label l -> Asm.movl dst l
    | src -> Asm.mov dst (ri_operand line src))
  | "lea" ->
    let dst, src = op2 () in
    Asm.lea (reg_operand line dst) (mem_operand line src)
  | "ld" ->
    let dst, src = op2 () in
    Asm.ld (reg_operand line dst) (mem_operand line src)
  | "ldb" ->
    let dst, src = op2 () in
    Asm.ldb (reg_operand line dst) (mem_operand line src)
  | "st" ->
    let dst, src = op2 () in
    Asm.st (mem_operand line dst) (reg_operand line src)
  | "stb" ->
    let dst, src = op2 () in
    Asm.stb (mem_operand line dst) (reg_operand line src)
  | "sti" -> (
    let dst, src = op2 () in
    match src with
    | O_imm v -> Asm.sti (mem_operand line dst) v
    | _ -> fail line "sti expects an immediate source")
  | "stib" -> (
    let dst, src = op2 () in
    match src with
    | O_imm v -> Asm.stib (mem_operand line dst) v
    | _ -> fail line "stib expects an immediate source")
  | "cmp" ->
    let a, b = op2 () in
    Asm.cmp (reg_operand line a) (ri_operand line b)
  | "test" ->
    let a, b = op2 () in
    Asm.test (reg_operand line a) (ri_operand line b)
  | "jmp" -> Asm.jmp (label_operand line (op1 ()))
  | "call" -> Asm.call (label_operand line (op1 ()))
  | "push" -> Asm.push (ri_operand line (op1 ()))
  | "pop" -> Asm.pop (reg_operand line (op1 ()))
  | _ -> (
    match binop_of_name mnemonic with
    | Some op ->
      let a, b = op2 () in
      Asm.insn (Insn.Bin (op, reg_operand line a, ri_operand line b))
    | None -> (
      match unop_of_name mnemonic with
      | Some op -> Asm.insn (Insn.Un (op, reg_operand line (op1 ())))
      | None ->
        if String.length mnemonic > 1 && mnemonic.[0] = 'j' then
          match cond_of_suffix (String.sub mnemonic 1 (String.length mnemonic - 1)) with
          | Some c -> Asm.jcc c (label_operand line (op1 ()))
          | None -> fail line "unknown mnemonic %S" mnemonic
        else if String.length mnemonic > 3 && String.sub mnemonic 0 3 = "set" then
          match cond_of_suffix (String.sub mnemonic 3 (String.length mnemonic - 3)) with
          | Some c -> Asm.setcc c (reg_operand line (op1 ()))
          | None -> fail line "unknown mnemonic %S" mnemonic
        else fail line "unknown mnemonic %S" mnemonic))

let parse_directive line name rest =
  match name with
  | ".align" -> Asm.align (parse_int line rest)
  | ".qword" -> Asm.qword (parse_int line rest)
  | ".zeros" -> Asm.zeros (parse_int line rest)
  | ".byte" -> (
    let rest = String.trim rest in
    if String.length rest >= 1 && rest.[0] = '"' then
      if String.length rest >= 2 && rest.[String.length rest - 1] = '"' then
        match Scanf.unescaped (String.sub rest 1 (String.length rest - 2)) with
        | s -> Asm.bytes s
        | exception Scanf.Scan_failure _ -> fail line "bad string literal"
      else fail line "unterminated string literal"
    else Asm.bytes (String.make 1 (Char.chr (parse_int line rest land 0xff))))
  | _ -> fail line "unknown directive %S" name

let parse text =
  let items = ref [] in
  let emit item = items := item :: !items in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let rec handle s =
        let s = String.trim (strip_comment s) in
        if s = "" then ()
        else
          match String.index_opt s ':' with
          | Some colon
            when is_ident (String.sub s 0 colon)
                 && not (String.contains (String.sub s 0 colon) ' ') ->
            emit (Asm.label (String.sub s 0 colon));
            handle (String.sub s (colon + 1) (String.length s - colon - 1))
          | Some _ | None ->
            if s.[0] = '.' then begin
              match String.index_opt s ' ' with
              | None -> fail line "directive %S needs an argument" s
              | Some sp ->
                emit
                  (parse_directive line (String.sub s 0 sp)
                     (String.sub s (sp + 1) (String.length s - sp - 1)))
            end
            else begin
              let mnemonic, rest =
                match String.index_opt s ' ' with
                | None -> s, ""
                | Some sp ->
                  ( String.sub s 0 sp,
                    String.sub s (sp + 1) (String.length s - sp - 1) )
              in
              emit
                (parse_instruction line (String.lowercase_ascii mnemonic)
                   (split_operands rest))
            end
      in
      handle raw)
    (String.split_on_char '\n' text);
  List.rev !items

let assemble_text ?origin ?entry text =
  let items = parse text in
  let entry =
    match entry with
    | Some _ -> entry
    | None ->
      if List.exists (fun item -> Asm.label_name item = Some "main") items then
        Some "main"
      else None
  in
  Asm.assemble ?origin ?entry items
