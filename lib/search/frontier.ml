module Pheap = Stdx.Pheap
module Prng = Stdx.Prng

type meta = { depth : int; hint : int }

type 'a t = {
  name : string;
  push_batch : (meta * 'a) list -> unit;
  pop : unit -> 'a option;
  length : unit -> int;
  evicted : unit -> 'a list;
}

let no_evictions () = []

let dfs () =
  let stack = ref [] in
  (* Explorers consult [length] on every push ([max_frontier] tracking), so
     it must be O(1) — a [List.length] here makes deep searches quadratic. *)
  let count = ref 0 in
  { name = "dfs";
    push_batch =
      (fun batch ->
        (* Prepend keeping batch order, so extension 0 pops first. *)
        count := !count + List.length batch;
        stack := List.fold_right (fun (_, x) acc -> x :: acc) batch !stack);
    pop =
      (fun () ->
        match !stack with
        | [] -> None
        | x :: rest ->
          stack := rest;
          decr count;
          Some x);
    length = (fun () -> !count);
    evicted = no_evictions }

let bfs () =
  let q = Queue.create () in
  { name = "bfs";
    push_batch = (fun batch -> List.iter (fun (_, x) -> Queue.add x q) batch);
    pop = (fun () -> Queue.take_opt q);
    length = (fun () -> Queue.length q);
    evicted = no_evictions }

let heap_based ~name ~score () =
  let heap = ref Pheap.empty in
  { name;
    push_batch =
      (fun batch ->
        List.iter (fun (m, x) -> heap := Pheap.insert ~prio:(score m) x !heap) batch);
    pop =
      (fun () ->
        match Pheap.delete_min !heap with
        | None -> None
        | Some ((_, x), rest) ->
          heap := rest;
          Some x);
    length = (fun () -> Pheap.size !heap);
    evicted = no_evictions }

let best_first ~name ~score () = heap_based ~name ~score ()

let astar () =
  heap_based ~name:"astar" ~score:(fun m -> Float.of_int (m.depth + m.hint)) ()

(* Best-first with a hard capacity: the worst entries are evicted and
   reported so the scheduler can release their snapshots. *)
let bounded_best ~name ~score ~capacity () =
  if capacity <= 0 then invalid_arg ("Frontier." ^ name ^ ": capacity must be positive");
  let heap = ref Pheap.empty in
  let dropped = ref [] in
  { name;
    push_batch =
      (fun batch ->
        List.iter
          (fun (m, x) ->
            heap := Pheap.insert ~prio:(score m) x !heap;
            if Pheap.size !heap > capacity then
              match Pheap.delete_max !heap with
              | None -> ()
              | Some ((_, worst), rest) ->
                heap := rest;
                dropped := worst :: !dropped)
          batch);
    pop =
      (fun () ->
        match Pheap.delete_min !heap with
        | None -> None
        | Some ((_, x), rest) ->
          heap := rest;
          Some x);
    length = (fun () -> Pheap.size !heap);
    evicted =
      (fun () ->
        let d = !dropped in
        dropped := [];
        d) }

let sma ~capacity () =
  bounded_best
    ~name:(Printf.sprintf "sma(%d)" capacity)
    ~score:(fun m -> Float.of_int (m.depth + m.hint))
    ~capacity ()

let wastar ~weight () =
  if weight < 0.0 then invalid_arg "Frontier.wastar: negative weight";
  heap_based
    ~name:(Printf.sprintf "wastar(%.1f)" weight)
    ~score:(fun m -> Float.of_int m.depth +. (weight *. Float.of_int m.hint))
    ()

let beam ~width () =
  bounded_best
    ~name:(Printf.sprintf "beam(%d)" width)
    ~score:(fun m -> Float.of_int m.hint)
    ~capacity:width ()

let dfs_bounded ~max_depth () =
  if max_depth < 0 then invalid_arg "Frontier.dfs_bounded: negative bound";
  let stack = ref [] in
  let count = ref 0 in
  let dropped = ref [] in
  { name = Printf.sprintf "dfs<=%d" max_depth;
    push_batch =
      (fun batch ->
        let keep, drop = List.partition (fun (m, _) -> m.depth <= max_depth) batch in
        dropped := List.rev_append (List.map snd drop) !dropped;
        count := !count + List.length keep;
        stack := List.fold_right (fun (_, x) acc -> x :: acc) keep !stack);
    pop =
      (fun () ->
        match !stack with
        | [] -> None
        | x :: rest ->
          stack := rest;
          decr count;
          Some x);
    length = (fun () -> !count);
    evicted =
      (fun () ->
        let d = !dropped in
        dropped := [];
        d) }

let random ~seed () =
  let rng = Prng.create ~seed in
  let heap = ref Pheap.empty in
  { name = "random";
    push_batch =
      (fun batch ->
        List.iter (fun (_, x) -> heap := Pheap.insert ~prio:(Prng.float rng 1.0) x !heap) batch);
    pop =
      (fun () ->
        match Pheap.delete_min !heap with
        | None -> None
        | Some ((_, x), rest) ->
          heap := rest;
          Some x);
    length = (fun () -> Pheap.size !heap);
    evicted = no_evictions }
