let remove_i i l = List.filteri (fun j _ -> j <> i) l
let replace_i i x l = List.mapi (fun j y -> if j = i then x else y) l

(* All one-step reductions of a node, anywhere in its subtree. *)
let rec node_reductions (n : Gen_prog.node) : Gen_prog.node list =
  let collapse =
    match n.Gen_prog.kind with
    | Gen_prog.Guess children ->
      children
      @ (if List.length children > 1 then
           List.mapi
             (fun i _ -> { n with Gen_prog.kind = Gen_prog.Guess (remove_i i children) })
             children
         else [])
    | Gen_prog.Fail | Gen_prog.Exit _ -> []
  in
  let to_leaf =
    match n.Gen_prog.kind with
    | Gen_prog.Fail -> []
    | Gen_prog.Guess _ | Gen_prog.Exit _ ->
      [ { n with Gen_prog.kind = Gen_prog.Fail } ]
  in
  let in_children =
    match n.Gen_prog.kind with
    | Gen_prog.Guess children ->
      List.concat
        (List.mapi
           (fun i c ->
             List.map
               (fun c' -> { n with Gen_prog.kind = Gen_prog.Guess (replace_i i c' children) })
               (node_reductions c))
           children)
    | Gen_prog.Fail | Gen_prog.Exit _ -> []
  in
  let drop_stmt =
    List.mapi (fun i _ -> { n with Gen_prog.pre = remove_i i n.Gen_prog.pre }) n.Gen_prog.pre
  in
  collapse @ to_leaf @ in_children @ drop_stmt

let minimise ?(max_attempts = 300) ~still_diverges (prog : Gen_prog.prog) =
  let attempts = ref 0 in
  let rec go prog =
    let candidates =
      List.map (fun t -> { prog with Gen_prog.tree = t }) (node_reductions prog.Gen_prog.tree)
      (* most aggressive reductions first *)
      |> List.sort (fun a b -> compare (Gen_prog.size a) (Gen_prog.size b))
    in
    let rec try_candidates = function
      | [] -> prog
      | c :: rest ->
        if !attempts >= max_attempts then prog
        else begin
          incr attempts;
          if still_diverges c then go c else try_candidates rest
        end
    in
    try_candidates candidates
  in
  go prog
