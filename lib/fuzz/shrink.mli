(** Minimise a diverging program while the divergence persists.

    Greedy reduction over the {!Gen_prog} tree: collapse a guess node to
    one of its children, drop a child, replace a subtree with a bare
    [sys_guess_fail] leaf, or delete a straight-line statement.  Each
    candidate is re-rendered and re-checked; statements carry their own
    unique labels, so every candidate assembles.  The result is a local
    minimum — no single remaining edit preserves the divergence (or the
    attempt budget ran out). *)

val minimise :
  ?max_attempts:int ->
  still_diverges:(Gen_prog.prog -> bool) ->
  Gen_prog.prog ->
  Gen_prog.prog
(** [max_attempts] bounds oracle re-runs (default 300). *)
