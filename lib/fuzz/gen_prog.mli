(** Seeded random well-formed VX64 guest programs.

    Every generated program is a complete backtracking guest: it opens a
    scratch file, opens an exploration scope ([sys_guess_strategy] with a
    random DFS/BFS id), walks a statically generated guess tree whose
    nodes mix straight-line computation, memory traffic, syscalls and
    control flow, and exits cleanly once the scope is exhausted.  The
    programs honour the repo's layout discipline — writable data sits
    behind an [.align 4096] so code pages stay immutable for the decoded
    instruction cache — and stay within the subset whose semantics are
    identical across every execution pipeline (no [sys_share], no
    [sys_timeout], no stdin), so the differential {!Oracle} can demand
    exact agreement.

    Statements exercised: register/immediate moves, the full ALU
    (immediate-only shift counts and non-zero divisors, so no faults),
    byte and quad loads/stores with base+index*scale+disp addressing
    including page-crossing accesses, [push]/[pop], [call]/[ret] into
    generated helper functions, flag-dependent forward branches over every
    condition code, [brk] grow/touch/shrink dances, VFS write/lseek/read
    round-trips through the scratch file, [sys_guess_hint], and
    hex-printing of live registers so path state surfaces in stdout.

    Generation is a pure function of the seed: the same seed and config
    always produce byte-identical programs. *)

type cfg = {
  max_depth : int;   (** guess-tree depth bound *)
  max_fanout : int;  (** extensions per [sys_guess] (at least 1 taken) *)
  max_stmts : int;   (** straight-line statements per tree node *)
}

val default_cfg : cfg
(** depth 3, fanout 3, 5 statements per node. *)

type stmt
(** One self-contained logical statement (one or more assembly lines; any
    internal branch labels are globally unique, so statements can be
    deleted or reordered freely by the shrinker). *)

type node = { pre : stmt list; kind : kind }

and kind =
  | Guess of node list  (** [sys_guess] over the children *)
  | Fail                (** print a register digest, then [sys_guess_fail] *)
  | Exit of int         (** print register digests, then [sys_exit] *)

type prog = {
  seed : int;
  strategy : int;  (** {!Os.Sys_abi.strategy_dfs} or [strategy_bfs] *)
  helpers : (string * string list) list;  (** callable leaf functions *)
  tree : node;
  exit_status : int;  (** status of the final exit after exhaustion *)
}

val generate : ?cfg:cfg -> int -> prog
(** [generate seed] builds a program from the given seed. *)

val render : prog -> string
(** The program as [.s] text accepted by {!Isa.Asm_parser.assemble_text};
    re-rendering an edited tree (see {!Shrink}) is always well-formed. *)

val size : prog -> int
(** Nodes plus statements — the measure the shrinker minimises. *)
