module As = Mem.Addr_space
module Libos = Os.Libos
module Explorer = Core.Explorer
module Parallel = Core.Parallel
module Service = Core.Service
module Tenancy = Core.Tenancy

type divergence = { pipeline : string; detail : string }

(* A pipeline's observable behaviour, flattened for comparison. *)
type run = {
  outcome : string;
  transcript : string;
  terminals : (string * string * int) list;  (* kind, output, depth *)
  instructions : int;
  regs : int list;  (* all 16 GPRs, then rip *)
  mem_digest : int;
}

let kind_to_string = function
  | Explorer.Exit n -> Printf.sprintf "exit(%d)" n
  | Explorer.Fail -> "fail"
  | Explorer.Path_killed r -> "killed: " ^ r

let outcome_to_string = function
  | Explorer.Completed n -> Printf.sprintf "completed(%d)" n
  | Explorer.Stopped_first_exit n -> Printf.sprintf "first-exit(%d)" n
  | Explorer.Aborted s -> "aborted: " ^ s

(* FNV-1a folded into OCaml's 63-bit int range. *)
let fnv_string h s =
  String.fold_left
    (fun h c -> (h lxor Char.code c) * 0x100000001b3 land max_int)
    h s

let fnv_int h v = fnv_string h (string_of_int v)

let page_string aspace vpn =
  Bytes.to_string
    (As.read_bytes aspace ~addr:(vpn * Mem.Page.size) ~len:Mem.Page.size)

let aspace_digest aspace =
  List.fold_left
    (fun h vpn -> fnv_string (fnv_int h vpn) (page_string aspace vpn))
    0xbf29ce484222325  (* FNV offset basis, truncated to the int range *)
    (List.sort compare (As.mapped_vpns aspace))

let machine_run (machine : Libos.t) (r : Explorer.result) =
  let cpu = machine.Libos.cpu in
  { outcome = outcome_to_string r.Explorer.outcome;
    transcript = r.Explorer.transcript;
    terminals =
      List.map
        (fun (t : Explorer.terminal) ->
          (kind_to_string t.kind, t.output, t.depth))
        r.Explorer.terminals;
    instructions = r.Explorer.stats.Core.Stats.instructions;
    regs = Array.to_list cpu.Vcpu.Cpu.regs @ [ cpu.Vcpu.Cpu.rip ];
    mem_digest = aspace_digest machine.Libos.aspace }

let parallel_run (r : Parallel.result) =
  { outcome = outcome_to_string r.Parallel.outcome;
    transcript = r.Parallel.transcript;
    terminals =
      List.map
        (fun (t : Explorer.terminal) ->
          (kind_to_string t.kind, t.output, t.depth))
        r.Parallel.terminals;
    instructions = r.Parallel.stats.Core.Stats.instructions;
    regs = [];
    mem_digest = 0 }

(* {1 Comparison} *)

let terminal_to_string (kind, output, depth) =
  Printf.sprintf "%s depth=%d output=%S" kind depth output

let diff_list name to_string xs ys =
  if List.length xs <> List.length ys then
    Some
      (Printf.sprintf "%s count: %d vs %d" name (List.length xs)
         (List.length ys))
  else
    List.find_map
      (fun (i, (x, y)) ->
        if x = y then None
        else
          Some
            (Printf.sprintf "%s[%d]: %s vs %s" name i (to_string x)
               (to_string y)))
      (List.mapi (fun i p -> (i, p)) (List.combine xs ys))

(* Exact agreement: deterministic pipelines must be indistinguishable. *)
let compare_exact pipeline (a : run) (b : run) =
  let check =
    if a.outcome <> b.outcome then
      Some (Printf.sprintf "outcome: %s vs %s" a.outcome b.outcome)
    else if a.transcript <> b.transcript then
      Some
        (Printf.sprintf "transcript: %S vs %S" a.transcript b.transcript)
    else
      match diff_list "terminal" terminal_to_string a.terminals b.terminals with
      | Some _ as d -> d
      | None ->
        if a.instructions <> b.instructions then
          Some
            (Printf.sprintf "instructions retired: %d vs %d" a.instructions
               b.instructions)
        else
          match diff_list "reg" string_of_int a.regs b.regs with
          | Some _ as d -> d
          | None ->
            if a.mem_digest <> b.mem_digest then
              Some
                (Printf.sprintf "memory digest: %x vs %x" a.mem_digest
                   b.mem_digest)
            else None
  in
  Option.map (fun detail -> { pipeline; detail }) check

(* Multiset agreement: parallel backends complete paths in
   schedule-dependent order, so sort terminals and transcript lines. *)
let compare_multiset pipeline (a : run) (b : run) =
  let lines s = List.sort compare (String.split_on_char '\n' s) in
  let check =
    if a.outcome <> b.outcome then
      Some (Printf.sprintf "outcome: %s vs %s" a.outcome b.outcome)
    else
      match
        diff_list "sorted terminal" terminal_to_string
          (List.sort compare a.terminals)
          (List.sort compare b.terminals)
      with
      | Some _ as d -> d
      | None ->
        diff_list "sorted transcript line"
          (Printf.sprintf "%S")
          (lines a.transcript) (lines b.transcript)
  in
  Option.map (fun detail -> { pipeline; detail }) check

(* {1 Pipelines} *)

let boot ?recycle ?poison ?track_live ?dispatch image ~icache =
  let phys = Mem.Phys_mem.create ?recycle ?poison ?track_live () in
  Libos.boot ~icache ?dispatch phys image

let explorer_pipeline ?on_stop ?recycle ?poison ?dispatch ?fuel_per_step
    ~icache image =
  let machine = boot ?recycle ?poison ?dispatch image ~icache in
  let r = Explorer.run ?on_stop ?fuel_per_step machine in
  machine_run machine r

(* Checkpoint round-trips at scheduler stops: a full eager
   capture/restore plus an incremental-chain capture and restore of the
   newest state.  If Ckpt is faithful these are invisible. *)
(* The chain is rebased every few checkpoints: [incr_restore ~index]
   replays every delta up to [index], so an unbounded chain would make the
   k-th checkpoint cost O(k) page maps — quadratic over a long exploration
   (the first cut of this hook spent >90% of the whole oracle's runtime
   here).  Short chains keep the round trip honest and the cost linear. *)
let ckpt_chain_limit = 8

let ckpt_on_stop every =
  let stops = ref 0 in
  let chain = ref None in
  fun (m : Libos.t) (_ : Libos.stop) ->
    incr stops;
    if !stops mod every = 0 then begin
      let full = Ckpt.full_capture m.Libos.aspace in
      Ckpt.full_restore m.Libos.aspace full;
      match !chain with
      | Some c when Ckpt.incr_count c < ckpt_chain_limit ->
        Ckpt.incr_capture c m.Libos.aspace;
        Ckpt.incr_restore m.Libos.aspace c ~index:(Ckpt.incr_count c - 1)
      | _ -> chain := Some (Ckpt.incr_start m.Libos.aspace)
    end

let parallel_pipeline ~backend image =
  let config = { Parallel.default_config with backend } in
  parallel_run (Parallel.run ~config image)

(* Replay the baseline's Addr_space operation trace against the Ept radix
   page table and compare final memory images page by page. *)
let ept_replay ~initial_pages ~ops ~(final : Libos.t) =
  let phys = Mem.Phys_mem.create () in
  let ept = Mem.Ept.create phys in
  List.iter (fun (vpn, data) -> Mem.Ept.map_data ept ~vpn data) initial_pages;
  let snaps = Hashtbl.create 64 in
  List.iter
    (fun (op : As.trace_op) ->
      match op with
      | T_map_zero vpn -> Mem.Ept.map_zero ept ~vpn
      | T_map_data (vpn, data) -> Mem.Ept.map_data ept ~vpn data
      | T_map_shared _ ->
        (* generated guests never use sys_share (its semantics are
           deliberately backend-specific); nothing to replay *)
        ()
      | T_unmap vpn -> Mem.Ept.unmap ept ~vpn
      | T_write_u8 (addr, v) -> Mem.Ept.write_u8 ept addr v
      | T_write_u64 (addr, v) -> Mem.Ept.write_u64 ept addr v
      | T_write_bytes (addr, data) -> Mem.Ept.write_bytes ept ~addr data
      | T_seal -> ()  (* generation bookkeeping; no observable content *)
      | T_snapshot id -> Hashtbl.replace snaps id (Mem.Ept.snapshot ept)
      | T_restore id -> Mem.Ept.restore ept (Hashtbl.find snaps id))
    ops;
  let aspace = final.Libos.aspace in
  let vpns = List.sort compare (As.mapped_vpns aspace) in
  let mismatch =
    List.find_map
      (fun vpn ->
        if not (Mem.Ept.is_mapped ept ~vpn) then
          Some (Printf.sprintf "vpn %#x mapped in Addr_space, not in Ept" vpn)
        else
          let a = page_string aspace vpn in
          let b =
            Bytes.to_string
              (Mem.Ept.read_bytes ept ~addr:(vpn * Mem.Page.size)
                 ~len:Mem.Page.size)
          in
          if a <> b then Some (Printf.sprintf "vpn %#x contents differ" vpn)
          else None)
      vpns
  in
  let mismatch =
    match mismatch with
    | Some _ -> mismatch
    | None ->
      if Mem.Ept.mapped_pages ept <> List.length vpns then
        Some
          (Printf.sprintf "page count: %d in Addr_space vs %d in Ept"
             (List.length vpns) (Mem.Ept.mapped_pages ept))
      else None
  in
  Option.map (fun detail -> { pipeline = "ept-replay"; detail }) mismatch

(* {1 Entry points} *)

let first_some checks =
  List.fold_left
    (fun acc check -> match acc with Some _ -> acc | None -> check ())
    None checks

let check_image ?(ckpt_every = 1) image =
  (* Baseline: explorer with icache, tracing every Addr_space op.  Frame
     recycling off: the baseline keeps the GC-only seed cost model, so the
     recycling pipeline below is checked against an allocator that never
     reuses a buffer.  Live tracking gives the peak the tiered-store
     pipeline sizes its frame budget under. *)
  let machine = boot ~recycle:false ~track_live:true image ~icache:true in
  let initial_pages =
    List.map
      (fun vpn -> (vpn, page_string machine.Libos.aspace vpn))
      (As.mapped_vpns machine.Libos.aspace)
  in
  let ops = ref [] in
  As.set_trace machine.Libos.aspace (Some (fun op -> ops := op :: !ops));
  let base_result = Explorer.run machine in
  As.set_trace machine.Libos.aspace None;
  let base = machine_run machine base_result in
  let ops = List.rev !ops in
  first_some
    [ (fun () ->
        compare_exact "icache-off" base
          (explorer_pipeline ~icache:false image));
      (fun () ->
        (* The baseline runs basic-block superinstruction dispatch (the
           default); per-instruction decode-cache dispatch must be
           indistinguishable from it — and both from icache-off above. *)
        compare_exact "icache-insn" base
          (explorer_pipeline ~icache:true ~dispatch:Vcpu.Interp.Insn image));
      (fun () ->
        (* Fuel exhaustion mid-block, deterministically: a quantum far
           smaller than typical block lengths lands Out_of_fuel inside
           fused blocks at every step, and tight-fuel explorer runs kill
           paths at the quantum — so block and per-instruction dispatch
           must agree on every retired count, kill point and register. *)
        let tight = 97 in
        compare_exact "tight-fuel"
          (explorer_pipeline ~icache:true ~dispatch:Vcpu.Interp.Insn
             ~fuel_per_step:tight image)
          (explorer_pipeline ~icache:true ~dispatch:Vcpu.Interp.Block
             ~fuel_per_step:tight image));
      (fun () ->
        compare_exact "ckpt-roundtrip" base
          (explorer_pipeline ~icache:true
             ~on_stop:(ckpt_on_stop ckpt_every) image));
      (fun () ->
        (* Eager release + adoption + buffer reuse, with freed buffers
           poisoned: a frame released while a live path could still read
           it diverges loudly instead of silently. *)
        compare_exact "recycle" base
          (explorer_pipeline ~icache:true ~recycle:true ~poison:true image));
      (fun () ->
        (* Tiered payload store under maximum stress: a frame budget below
           the GC-only peak, a hook that demotes every live payload to its
           compressed delta at every scheduler stop (truncating everything
           every 5th, so the replay fallback runs too), and a zero spill
           budget pushing cold deltas through host disk — on a poisoned
           recycling allocator, so a frame freed while a delta still
           described it diverges loudly.  Reconstruction is supposed to be
           invisible: exact agreement, instruction count included. *)
        let peak = Mem.Phys_mem.peak_frames_live (As.phys machine.Libos.aspace) in
        let phys =
          Mem.Phys_mem.create ~capacity:(max 64 (peak / 3)) ~poison:true ()
        in
        let m = Libos.boot ~icache:true phys image in
        let r = Explorer.run ~tier_stress:1 ~spill_threshold:0 m in
        compare_exact "tiered-store" base (machine_run m r));
      (fun () ->
        compare_multiset "parallel-coop" base
          (parallel_pipeline ~backend:`Cooperative image));
      (fun () ->
        compare_multiset "parallel-domains" base
          (parallel_pipeline ~backend:`Domains image));
      (fun () -> ept_replay ~initial_pages ~ops ~final:machine) ]

(* {1 Fault mode}

   A recoverable fault plan must be invisible at the multiset level: the
   supervised backends requeue crashed paths and retry failed allocations,
   so the terminal multiset and transcript-line multiset must equal the
   fault-free baseline's.  The retry budget is sized so that a recoverable
   plan can never quarantine a path: one worker-crash trigger plus one
   per-allocator allocation failure per domain bounds the crashes any
   single path can absorb. *)

let check_plan ~base image plan =
  let with_faults backend name =
    let config =
      { Parallel.default_config with
        backend;
        faults = Some plan;
        retry_budget = Parallel.default_config.Parallel.workers + 3 }
    in
    compare_multiset name base (parallel_run (Parallel.run ~config image))
  in
  first_some
    [ (fun () -> with_faults `Cooperative "faults-coop");
      (fun () -> with_faults `Domains "faults-domains") ]

let check_image_faults ?(seed = 0) ?(plans = 4) image =
  let machine = boot image ~icache:true in
  let base = machine_run machine (Explorer.run machine) in
  let rec go i =
    if i >= plans then None
    else
      let plan = Inject.generate ~seed:(seed + i) in
      match check_plan ~base image plan with
      | Some d -> Some (plan, d)
      | None -> go (i + 1)
  in
  go 0

let check_prog_faults ?seed ?plans prog =
  check_image_faults ?seed ?plans
    (Isa.Asm_parser.assemble_text (Gen_prog.render prog))

let check_text ?ckpt_every text =
  check_image ?ckpt_every (Isa.Asm_parser.assemble_text text)

let check_prog ?ckpt_every prog =
  check_text ?ckpt_every (Gen_prog.render prog)

(* {1 Multi-tenant mode}

   The same generated guest as [tenants] interleaved sessions in one
   shared pool, cross-checked against a single-tenant baseline pool run
   by the same driver.  Exploration is an explicit-frontier DFS expressed
   through [Tenancy.post]/[Tenancy.step], so the pool's round-robin
   scheduler interleaves the tenants edge by edge; every tenant must
   produce the baseline's terminal multiset bit for bit, and the shared
   pool's dedup accounting must obey its invariants: boot references
   scale linearly with the tenant count, distinct hash-consed frames
   match the single-tenant table, every live frame is attributed (charged
   to some tenant's account or shared in the dedup table), and all
   references drain to zero at teardown. *)

(* One tenant's DFS state: a stack of (candidate, choice, depth, output
   prefix) edges still to resume, and the terminals found so far. *)
type walk = {
  w_id : Tenancy.id;
  mutable w_frontier : (Service.ref_ * int * int * string) list;
  mutable w_terminals : (string * string * int) list;
  mutable w_dead : bool;
}

let walk_note w ~depth ~prefix (o : Service.outcome) =
  match o with
  | Service.Ready { candidate; arity; output } ->
    let prefix = prefix ^ output in
    for c = arity - 1 downto 0 do
      w.w_frontier <- (candidate, c, depth + 1, prefix) :: w.w_frontier
    done
  | Service.Finished { status; output } ->
    w.w_terminals <-
      (Printf.sprintf "exit(%d)" status, prefix ^ output, depth)
      :: w.w_terminals
  | Service.Failed { output } ->
    w.w_terminals <- ("fail", prefix ^ output, depth) :: w.w_terminals
  | Service.Crashed msg ->
    (* The pool tears the tenant down on a crash; the rest of the
       frontier is unreachable.  Deterministic guests crash at the same
       point in every session, so the truncation is identical across
       tenants and the multisets still agree. *)
    w.w_terminals <- ("killed: " ^ msg, prefix, depth) :: w.w_terminals

let walk_of_admission = function
  | Tenancy.Admitted (id, first) ->
    let w = { w_id = id; w_frontier = []; w_terminals = []; w_dead = false } in
    walk_note w ~depth:0 ~prefix:"" first;
    w
  | Tenancy.Queued _ | Tenancy.Rejected ->
    invalid_arg "Oracle: unbounded pool refused an admission"

(* Round-robin over the walks, one edge per tenant per round, until every
   frontier drains.  Each post is served by an immediate [step], so the
   pool's own scheduler decides which tenant runs — with one request
   outstanding that is exactly the posting tenant, keeping the DFS order
   deterministic per tenant while the pool interleaves them. *)
let run_walks pool walks =
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun w ->
        if not w.w_dead then
          match w.w_frontier with
          | [] -> ()
          | (r, c, depth, prefix) :: rest ->
            w.w_frontier <- rest;
            if Tenancy.post pool w.w_id r ~choice:c () then begin
              progress := true;
              match Tenancy.step pool with
              | Some (id, o) when id = w.w_id -> walk_note w ~depth ~prefix o
              | Some _ | None ->
                invalid_arg "Oracle: pool served the wrong tenant"
            end
            else begin
              (* torn down by an earlier crash: drop the dead frontier *)
              w.w_dead <- true;
              w.w_frontier <- []
            end)
      walks
  done

let check_image_tenants ?(tenants = 4) image =
  let fail fmt =
    Printf.ksprintf (fun detail -> Some { pipeline = "tenancy"; detail }) fmt
  in
  let base_pool = Tenancy.create () in
  let base = walk_of_admission (Tenancy.boot base_pool image) in
  let refs1 = Mem.Phys_mem.dedup_refs (Tenancy.phys base_pool) in
  let entries1 = Mem.Phys_mem.dedup_entries (Tenancy.phys base_pool) in
  run_walks base_pool [ base ];
  let pool = Tenancy.create () in
  let walks =
    List.init tenants (fun _ -> walk_of_admission (Tenancy.boot pool image))
  in
  let phys = Tenancy.phys pool in
  let refs_boot = Mem.Phys_mem.dedup_refs phys in
  let entries_boot = Mem.Phys_mem.dedup_entries phys in
  (* crash-at-boot teardown already returned that tenant's references, so
     scale by the sessions that actually survived admission *)
  let expected_refs = Tenancy.live_tenants pool * refs1 in
  if refs_boot <> expected_refs then
    fail "dedup refs after %d boots: %d, expected %d (baseline %d per tenant)"
      tenants refs_boot expected_refs refs1
  else if entries_boot <> entries1 then
    fail "dedup entries after %d boots: %d, baseline table has %d" tenants
      entries_boot entries1
  else begin
    run_walks pool walks;
    let sorted w = List.sort compare w.w_terminals in
    let base_terms = sorted base in
    match
      List.find_map
        (fun w ->
          Option.map
            (Printf.sprintf "tenant %d vs baseline: %s" w.w_id)
            (diff_list "sorted terminal" terminal_to_string base_terms
               (sorted w)))
        walks
    with
    | Some detail -> Some { pipeline = "tenancy"; detail }
    | None ->
      let charged =
        List.fold_left
          (fun n w -> n + Tenancy.tenant_frames pool w.w_id)
          0 walks
      in
      let live = Mem.Phys_mem.frames_live phys in
      let entries = Mem.Phys_mem.dedup_entries phys in
      if live > charged + entries then
        fail "unattributed frames: %d live > %d charged + %d shared" live
          charged entries
      else begin
        List.iter (fun w -> Tenancy.kill pool w.w_id) walks;
        (* finalisers registered during one major cycle run in the next *)
        Gc.full_major ();
        Gc.full_major ();
        let refs = Mem.Phys_mem.dedup_refs phys in
        let entries = Mem.Phys_mem.dedup_entries phys in
        if refs <> 0 then
          fail "dedup refs did not drain at teardown: %d left" refs
        else if entries <> 0 then
          fail "dedup entries survived their last reference: %d left" entries
        else None
      end
  end

let check_prog_tenants ?tenants prog =
  check_image_tenants ?tenants
    (Isa.Asm_parser.assemble_text (Gen_prog.render prog))

type report = {
  programs : int;
  failures : (Gen_prog.prog * divergence) list;
}

let run_budget ?cfg ?ckpt_every ~seed ~budget () =
  let failures = ref [] in
  for i = 0 to budget - 1 do
    let prog = Gen_prog.generate ?cfg (seed + i) in
    match check_prog ?ckpt_every prog with
    | None -> ()
    | Some d -> failures := (prog, d) :: !failures
  done;
  { programs = budget; failures = List.rev !failures }
