module Abi = Os.Sys_abi

type cfg = {
  max_depth : int;
  max_fanout : int;
  max_stmts : int;
}

let default_cfg = { max_depth = 3; max_fanout = 3; max_stmts = 5 }

type stmt = { lines : string list }

type node = { pre : stmt list; kind : kind }

and kind =
  | Guess of node list
  | Fail
  | Exit of int

type prog = {
  seed : int;
  strategy : int;
  helpers : (string * string list) list;
  tree : node;
  exit_status : int;
}

(* Writable data layout: [arena] must come first so random displacements
   (bounded by [arena_size]) can never clobber the hexdig table, the print
   buffer or the scratch-file name behind it. *)
let arena_size = 3 * 4096

(* Registers the statement generator owns.  rax/rdi/rsi/rdx/rcx are the
   syscall and helper scratch set, r15 holds the arena base, r12 the
   scratch-file descriptor, r14 is print_hex-internal. *)
let scratch = [| "rbx"; "rbp"; "r8"; "r9"; "r10"; "r11"; "r13" |]

let pick st arr = arr.(Random.State.int st (Array.length arr))
let reg st = pick st scratch

(* A mix of small, page-scale, large and negative immediates. *)
let imm st =
  match Random.State.int st 5 with
  | 0 -> Random.State.int st 16
  | 1 -> Random.State.int st 8192 - 4096
  | 2 -> Random.State.int st 0x3fff_ffff
  | 3 -> -Random.State.int st 0x1_0000
  | _ -> (Random.State.int st 256 * 0x0101_0101) + Random.State.int st 97

(* An arena displacement leaving [room] bytes before the end; every third
   draw sits astride a page boundary to exercise crossing accesses. *)
let arena_disp st ~room =
  if Random.State.int st 3 = 0 then
    let page = (1 + Random.State.int st 2) * 4096 in
    let d = page - room + Random.State.int st (2 * room) in
    max 0 (min (arena_size - room) d)
  else Random.State.int st (arena_size - room + 1)

let conds = [| "e"; "ne"; "l"; "le"; "g"; "ge"; "b"; "be"; "a"; "ae"; "s"; "ns" |]

let ins fmt = Printf.ksprintf (fun s -> "    " ^ s) fmt

let gen_simple st =
  match Random.State.int st 4 with
  | 0 -> [ ins "mov   %s, %d" (reg st) (imm st) ]
  | 1 ->
    let op = pick st [| "add"; "sub"; "imul"; "and"; "or"; "xor" |] in
    let rhs = if Random.State.bool st then reg st else string_of_int (imm st) in
    [ ins "%-5s %s, %s" op (reg st) rhs ]
  | 2 ->
    let op = pick st [| "shl"; "shr"; "sar" |] in
    [ ins "%-5s %s, %d" op (reg st) (Random.State.int st 63) ]
  | _ -> [ ins "%-5s %s" (pick st [| "neg"; "not"; "inc"; "dec" |]) (reg st) ]

let gen_stmt st ~label_counter ~n_helpers =
  let fresh_label () =
    incr label_counter;
    Printf.sprintf "l%d" !label_counter
  in
  let lines =
    match Random.State.int st 14 with
    | 0 | 1 -> gen_simple st
    | 13 ->
      (* long straight-line ALU run: fuses into one superinstruction
         block (and, at random offsets, strays into the page-edge
         slow-path band), so block dispatch is hammered with runs longer
         than a tight fuel quantum *)
      List.concat
        (List.init (8 + Random.State.int st 17) (fun _ -> gen_simple st))
    | 2 ->
      (* non-zero immediate divisor: quotient/remainder without faults *)
      let op = if Random.State.bool st then "div" else "rem" in
      [ ins "%-5s %s, %d" op (reg st) (1 + Random.State.int st 1000) ]
    | 3 ->
      (* store to the arena, sometimes astride a page boundary *)
      let byte = Random.State.bool st in
      let room = if byte then 1 else 8 in
      let m = Printf.sprintf "[r15+%d]" (arena_disp st ~room) in
      if Random.State.bool st then
        [ ins "%-5s %s, %s" (if byte then "stb" else "st") m (reg st) ]
      else
        [ ins "%-5s %s, %d" (if byte then "stib" else "sti") m (imm st) ]
    | 4 ->
      let byte = Random.State.bool st in
      let room = if byte then 1 else 8 in
      [ ins "%-5s %s, [r15+%d]" (if byte then "ldb" else "ld") (reg st)
          (arena_disp st ~room) ]
    | 5 ->
      (* base+index*scale+disp addressing *)
      let idx = reg st and dst = reg st in
      let scale = pick st [| 1; 2; 4; 8 |] in
      let disp = arena_disp st ~room:(8 + (8 * scale)) in
      [ ins "mov   %s, %d" idx (Random.State.int st 8);
        ins "st    [r15+%s*%d+%d], %s" idx scale disp dst;
        ins "ld    %s, [r15+%s*%d+%d]" dst idx scale disp ]
    | 6 ->
      (* brk dance: query, grow two pages, touch them, shrink back *)
      let a = reg st and b = reg st in
      [ ins "mov   rdi, 0";
        ins "mov   rax, %d" Abi.sys_brk;
        ins "syscall";
        ins "mov   %s, rax" a;
        ins "mov   rdi, rax";
        ins "add   rdi, 8192";
        ins "mov   rax, %d" Abi.sys_brk;
        ins "syscall";
        ins "sti   [rax-16], %d" (imm st);
        ins "ld    %s, [rax-16]" b;
        ins "mov   rdi, %s" a;
        ins "mov   rax, %d" Abi.sys_brk;
        ins "syscall" ]
    | 7 ->
      (* write a slice of the arena into the scratch file *)
      [ ins "mov   rdi, r12";
        ins "mov   rsi, r15";
        ins "add   rsi, %d" (arena_disp st ~room:64);
        ins "mov   rdx, %d" (1 + Random.State.int st 64);
        ins "mov   rax, %d" Abi.sys_write;
        ins "syscall" ]
    | 8 ->
      (* seek (possibly past EOF) and read back into the arena *)
      let dst = reg st in
      [ ins "mov   rdi, r12";
        ins "mov   rsi, %d" (Random.State.int st 96);
        ins "mov   rdx, %d" Abi.seek_set;
        ins "mov   rax, %d" Abi.sys_lseek;
        ins "syscall";
        ins "mov   rdi, r12";
        ins "mov   rsi, r15";
        ins "add   rsi, %d" (arena_disp st ~room:64);
        ins "mov   rdx, %d" (1 + Random.State.int st 64);
        ins "mov   rax, %d" Abi.sys_read;
        ins "syscall";
        ins "mov   %s, rax" dst ]
    | 9 ->
      (* flag-dependent forward branch over a couple of statements *)
      let l = fresh_label () in
      let body = List.concat [ gen_simple st; gen_simple st ] in
      [ ins "cmp   %s, %d" (reg st) (imm st);
        ins "j%-4s %s" (pick st conds) l ]
      @ body
      @ [ l ^ ":" ]
    | 10 -> [ ins "call  fn%d" (Random.State.int st n_helpers) ]
    | 11 ->
      let a = reg st and b = reg st in
      [ ins "push  %s" a ] @ gen_simple st @ [ ins "pop   %s" b ]
    | _ ->
      (* print a live register; also exercises sys_guess_hint *)
      if Random.State.int st 4 = 0 then
        [ ins "mov   rdi, %d" (Random.State.int st 100);
          ins "mov   rax, %d" Abi.sys_guess_hint;
          ins "syscall" ]
      else [ ins "mov   rdi, %s" (reg st); ins "call  print_hex" ]
  in
  { lines }

let gen_helpers st =
  let n = 1 + Random.State.int st 3 in
  List.init n (fun i ->
      let body =
        List.concat (List.init (1 + Random.State.int st 3) (fun _ -> gen_simple st))
      in
      (Printf.sprintf "fn%d" i, body @ [ ins "ret" ]))

let rec gen_node st cfg ~label_counter ~n_helpers ~depth =
  let n_stmts = Random.State.int st (cfg.max_stmts + 1) in
  let pre = List.init n_stmts (fun _ -> gen_stmt st ~label_counter ~n_helpers) in
  let kind =
    if depth >= cfg.max_depth || Random.State.int st 10 < 3 then
      if Random.State.bool st then Fail else Exit (Random.State.int st 4)
    else
      let k = 1 + Random.State.int st cfg.max_fanout in
      Guess
        (List.init k (fun _ ->
             gen_node st cfg ~label_counter ~n_helpers ~depth:(depth + 1)))
  in
  { pre; kind }

let generate ?(cfg = default_cfg) seed =
  let st = Random.State.make [| 0x15a9; seed |] in
  let helpers = gen_helpers st in
  let n_helpers = List.length helpers in
  let label_counter = ref 0 in
  let strategy =
    if Random.State.bool st then Abi.strategy_dfs else Abi.strategy_bfs
  in
  (* The root always guesses, so every program actually backtracks. *)
  let k = 1 + Random.State.int st cfg.max_fanout in
  let children =
    List.init k (fun _ -> gen_node st cfg ~label_counter ~n_helpers ~depth:1)
  in
  let pre =
    List.init
      (Random.State.int st (cfg.max_stmts + 1))
      (fun _ -> gen_stmt st ~label_counter ~n_helpers)
  in
  { seed;
    strategy;
    helpers;
    tree = { pre; kind = Guess children };
    exit_status = Random.State.int st 4 }

let print_hex_lines =
  [ "; print_hex: write rdi as 16 hex digits plus newline to stdout.";
    "print_hex:";
    ins "mov   r14, buf";
    ins "mov   rcx, 15";
    "ph_loop:";
    ins "mov   rax, rdi";
    ins "and   rax, 15";
    ins "mov   rsi, hexdig";
    ins "add   rsi, rax";
    ins "ldb   rax, [rsi]";
    ins "stb   [r14+rcx*1], rax";
    ins "shr   rdi, 4";
    ins "dec   rcx";
    ins "jns   ph_loop";
    ins "stib  [r14+16], 10";
    ins "mov   rdi, 1";
    ins "mov   rsi, r14";
    ins "mov   rdx, 17";
    ins "mov   rax, %d" Abi.sys_write;
    ins "syscall";
    ins "ret" ]

let render p =
  let b = Buffer.create 4096 in
  let out line = Buffer.add_string b line; Buffer.add_char b '\n' in
  let node_counter = ref 0 in
  let fresh_node () =
    let id = !node_counter in
    incr node_counter;
    Printf.sprintf "node%d" id
  in
  out (Printf.sprintf "; generated by Fuzz.Gen_prog, seed %d" p.seed);
  out "main:";
  out (ins "mov   r15, arena");
  out (ins "mov   rdi, fname");
  out (ins "mov   rsi, %d" (Abi.o_creat lor Abi.o_rdwr));
  out (ins "mov   rax, %d" Abi.sys_open);
  out (ins "syscall");
  out (ins "mov   r12, rax");
  out (ins "mov   rdi, %d" p.strategy);
  out (ins "mov   rax, %d" Abi.sys_guess_strategy);
  out (ins "syscall");
  out (ins "cmp   rax, 0");
  out (ins "je    finish");
  let rec emit_node label { pre; kind } =
    out (label ^ ":");
    List.iter (fun s -> List.iter out s.lines) pre;
    match kind with
    | Fail ->
      out (ins "mov   rdi, r8");
      out (ins "call  print_hex");
      out (ins "mov   rax, %d" Abi.sys_guess_fail);
      out (ins "syscall")
    | Exit status ->
      out (ins "mov   rdi, rbx");
      out (ins "call  print_hex");
      out (ins "mov   rdi, r9");
      out (ins "call  print_hex");
      out (ins "mov   rdi, %d" status);
      out (ins "mov   rax, %d" Abi.sys_exit);
      out (ins "syscall")
    | Guess children ->
      let n = List.length children in
      out (ins "mov   rdi, %d" n);
      out (ins "mov   rax, %d" Abi.sys_guess);
      out (ins "syscall");
      let labels = List.map (fun _ -> fresh_node ()) children in
      List.iteri
        (fun i l -> if i < n - 1 then begin
            out (ins "cmp   rax, %d" i);
            out (ins "je    %s" l)
          end)
        labels;
      out (ins "jmp   %s" (List.nth labels (n - 1)));
      List.iter2 emit_node labels children
  in
  emit_node (fresh_node ()) p.tree;
  out "finish:";
  out (ins "mov   rdi, %d" p.exit_status);
  out (ins "mov   rax, %d" Abi.sys_exit);
  out (ins "syscall");
  out "";
  List.iter
    (fun (name, body) ->
      out (name ^ ":");
      List.iter out body;
      out "")
    p.helpers;
  List.iter out print_hex_lines;
  out "";
  out ".align 4096";
  out "arena:";
  out (Printf.sprintf ".zeros %d" arena_size);
  out "hexdig:";
  out ".byte \"0123456789abcdef\"";
  out "buf:";
  out ".zeros 32";
  out "fname:";
  out ".byte \"scratch.dat\"";
  out ".zeros 1";
  Buffer.contents b

let size p =
  let rec node_size { pre; kind } =
    1 + List.length pre
    + match kind with
      | Guess children -> List.fold_left (fun a n -> a + node_size n) 0 children
      | Fail | Exit _ -> 0
  in
  node_size p.tree
