(** The differential oracle: one guest program, every execution pipeline.

    All pipelines promise the same semantics — that is the paper's
    transparency claim (§3) — so the oracle runs a program through each
    and demands they agree:

    + {b baseline}: {!Core.Explorer} with the decoded-instruction cache
      under basic-block superinstruction dispatch (the default),
      recording the address-space operation trace (see
      {!Mem.Addr_space.set_trace});
    + {b icache-off}: the same explorer with the decode cache disabled —
      must match the baseline {e exactly} (outcome, transcript, ordered
      terminals, retired instruction count, final registers, memory
      digest);
    + {b icache-insn}: the explorer with the cache in per-instruction
      dispatch mode — block fusion must be invisible, so this too must
      match exactly;
    + {b tight-fuel}: per-instruction vs block dispatch under a fuel
      quantum far below typical block lengths, compared exactly against
      each other — every step lands [Out_of_fuel] {e inside} a fused
      block, so partial-block fuel accounting, kill points and register
      state are all exercised;
    + {b ckpt-roundtrip}: the explorer again, but an [on_stop] hook
      performs an eager {!Ckpt} full-checkpoint capture/restore (plus an
      incremental-chain round-trip) at every k-th scheduler stop — a
      faithful checkpoint implementation is invisible, so this too must
      match exactly;
    + {b recycle}: the explorer with frame recycling on and freed
      buffers poisoned, against a baseline that runs the GC-only
      [recycle:false] allocator — eager frame reclamation, zero-fill
      elision and adopting restores must be guest-invisible, and the
      poison turns any premature free into a loud divergence; must match
      exactly;
    + {b tiered-store}: the explorer under a frame budget below the
      baseline's peak with the tiered {!Core.Reclaim} store hammered at
      every scheduler stop — every live payload demoted to its compressed
      delta (truncated outright every 5th stop, so the replay fallback
      runs too) and a zero spill budget pushing cold deltas through host
      disk, on a poisoned recycling allocator.  Demotion, promotion,
      spilling and replay are supposed to be invisible, so this must
      match {e exactly}, retired instruction count included;
    + {b parallel-coop} / {b parallel-domains}: {!Core.Parallel} with 4
      workers on each backend.  Path completion order is
      schedule-dependent, so these are compared as multisets: same
      outcome, same terminal multiset, same transcript line multiset;
    + {b ept-replay}: the baseline's operation trace replayed against the
      {!Mem.Ept} radix-page-table backend; the final memory images must
      be page-for-page identical.

    Generated guests avoid the documented semantic deltas between
    backends (no [sys_share], no stdin, no [sys_timeout]), which is what
    entitles the oracle to demand agreement. *)

type divergence = { pipeline : string; detail : string }

val check_text : ?ckpt_every:int -> string -> divergence option
(** Assemble the [.s] text and cross-check all pipelines; [None] means
    they all agree.  [ckpt_every] (default 1) is the k in
    "checkpoint round-trip every k-th scheduler stop".
    @raise Isa.Asm_parser.Parse_error on unparseable input. *)

val check_prog : ?ckpt_every:int -> Gen_prog.prog -> divergence option

val check_image_faults :
  ?seed:int -> ?plans:int -> Isa.Asm.image -> (Inject.plan * divergence) option
(** Fault-injection mode: generate [plans] (default 4) seeded fault plans
    and run the supervised parallel backends under each.  Every plan is
    recoverable by construction (faults fire once and only during
    worker-path evaluation), so each run's outcome, terminal multiset and
    transcript-line multiset must equal the fault-free baseline's — crash
    recovery and allocation-failure retry must be semantically invisible.
    Returns the first diverging plan. *)

val check_prog_faults :
  ?seed:int -> ?plans:int -> Gen_prog.prog -> (Inject.plan * divergence) option

val check_image_tenants : ?tenants:int -> Isa.Asm.image -> divergence option
(** Multi-tenant mode: the same guest as [tenants] (default 4) interleaved
    sessions in one shared {!Core.Tenancy} pool, cross-checked against a
    single-tenant baseline pool driven identically.  Every tenant must
    reproduce the baseline's terminal multiset exactly, and the pool's
    dedup accounting must hold: boot-time references scale linearly with
    the surviving tenant count, the hash-consed table matches the
    single-tenant one, live frames never exceed the sum of per-tenant
    charges plus shared frames, and references drain to zero once every
    tenant is killed. *)

val check_prog_tenants : ?tenants:int -> Gen_prog.prog -> divergence option

type report = {
  programs : int;  (** programs checked *)
  failures : (Gen_prog.prog * divergence) list;
}

val run_budget :
  ?cfg:Gen_prog.cfg -> ?ckpt_every:int -> seed:int -> budget:int -> unit ->
  report
(** Generate and check [budget] programs seeded [seed], [seed+1], ... *)
