module Ptmap = Stdx.Ptmap

type access = Read | Write

exception Page_fault of { addr : int; access : access }

(* Direct-mapped TLB.  Entries cache vpn -> frame for the current page map;
   they stay valid across stores (COW updates the entry in place) and are
   flushed wholesale on snapshot capture and restore. *)
let tlb_bits = 8
let tlb_size = 1 lsl tlb_bits
let tlb_mask = tlb_size - 1

(* Frames with this owner are explicitly shared: never COW'd, excluded
   from snapshots (they live in [shared], not in the snapshot map). *)
let shared_owner = -1

type trace_op =
  | T_map_zero of int
  | T_map_data of int * string
  | T_map_shared of int
  | T_unmap of int
  | T_write_u8 of int * int
  | T_write_u64 of int * int
  | T_write_bytes of int * string
  | T_seal
  | T_snapshot of int
  | T_restore of int

type t = {
  phys : Phys_mem.t;
  metrics : Mem_metrics.t;
  mutable map : Phys_mem.frame Ptmap.t;
  mutable gen : int;
  tlb_vpn : int array;                     (* -1 = invalid *)
  mutable tlb_frame : Phys_mem.frame array;
  mutable next_snap_id : int;
  mutable seen_share_epoch : int;
      (* the sharing-registry epoch this space last observed; a mismatch in
         [lookup] means a sibling machine changed the registry since our
         TLB entries were filled, so they must be shot down before use *)
  mutable shared_hidden : unit Ptmap.t;
      (* shared vpns this address space has unmapped.  The registry in
         [phys] is system-global, so an unmap must hide the page from this
         space only — clearing the registry entry would destroy the page
         for every other machine booted on the same physical memory.  Like
         the registry itself, the hidden set sits outside the snapshot
         discipline: restores do not roll it back. *)
  mutable trace : (trace_op -> unit) option;
      (* operation recorder for differential replay; [None] in production *)
  mutable account : int;
      (* session (tenant) every frame this space allocates is charged to;
         0 = unattributed.  See {!Phys_mem.fresh_account}. *)
  mutable dedup_held : Phys_mem.frame list;
      (* boot-lifetime references into the phys dedup table taken by
         [map_dedup]; returned wholesale by [drop_dedup_refs] at teardown *)
  mutable epoch : int;
      (* bumped on every capture, restore and seal.  A caller that restored
         a snapshot and sees the epoch unchanged knows no other map has
         grabbed frames since: everything the map acquired in between is
         private to the segment and safe to discard (see
         [discard_segment]). *)
}

type snapshot = { snap_id : int; snap_map : Phys_mem.frame Ptmap.t }

let create phys =
  let zero = Phys_mem.zero_frame phys in
  { phys;
    metrics = Phys_mem.metrics phys;
    map = Ptmap.empty;
    gen = Phys_mem.fresh_generation phys;
    tlb_vpn = Array.make tlb_size (-1);
    tlb_frame = Array.make tlb_size zero;
    next_snap_id = 0;
    seen_share_epoch = Phys_mem.share_epoch phys;
    shared_hidden = Ptmap.empty;
    trace = None;
    account = 0;
    dedup_held = [];
    epoch = 0 }

let set_trace t sink = t.trace <- sink

let record t op =
  match t.trace with None -> () | Some sink -> sink op

let phys t = t.phys
let metrics t = t.metrics
let set_account t account = t.account <- account
let account t = t.account
let generation t = t.gen
let epoch t = t.epoch

let tlb_flush t =
  Array.fill t.tlb_vpn 0 tlb_size (-1);
  t.metrics.tlb_flushes <- t.metrics.tlb_flushes + 1

let tlb_invalidate t vpn =
  let i = vpn land tlb_mask in
  if t.tlb_vpn.(i) = vpn then t.tlb_vpn.(i) <- -1

(* The shared page backing [vpn] as seen by THIS address space. *)
let shared_frame t vpn =
  if Ptmap.mem vpn t.shared_hidden then None
  else Phys_mem.shared_page t.phys ~vpn

(* Catch up with sharing-registry changes made by sibling machines since
   this space last looked.  This is the simulated TLB shootdown: the
   registry is system-global, so a sibling mapping (or tearing down) a
   shared page must invalidate OUR cached translation for that vpn too, or
   a page we had translated privately would keep resolving to the stale
   private frame.  Only the vpns that actually changed ownership need
   shooting down; the whole-TLB wipe is kept as the fallback for a space
   that fell behind the bounded change ring. *)
let share_catch_up t epoch =
  let n = ref 0 in
  let targeted =
    Phys_mem.share_changes_since t.phys ~seen:t.seen_share_epoch
      ~f:(fun vpn -> tlb_invalidate t vpn; incr n)
  in
  if targeted then t.metrics.tlb_shootdowns <- t.metrics.tlb_shootdowns + !n
  else tlb_flush t;
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:epoch ~b:(if targeted then !n else -1)
      Obs.Names.share_flush;
  t.seen_share_epoch <- epoch

(* Look up the frame backing [vpn]; raises [Page_fault] when unmapped. *)
let lookup t vpn access addr =
  let epoch = Phys_mem.share_epoch t.phys in
  if t.seen_share_epoch <> epoch then share_catch_up t epoch;
  let i = vpn land tlb_mask in
  if t.tlb_vpn.(i) = vpn then begin
    t.metrics.tlb_hits <- t.metrics.tlb_hits + 1;
    t.tlb_frame.(i)
  end
  else begin
    t.metrics.tlb_misses <- t.metrics.tlb_misses + 1;
    t.metrics.pt_walks <- t.metrics.pt_walks + 1;
    let resolved =
      match shared_frame t vpn with
      | Some _ as hit -> hit
      | None -> Ptmap.find_opt vpn t.map
    in
    match resolved with
    | None -> raise (Page_fault { addr; access })
    | Some f ->
      t.tlb_vpn.(i) <- vpn;
      t.tlb_frame.(i) <- f;
      f
  end

(* The COW fault path: the frame belongs to an older generation (a snapshot
   may still reference it), so service the write by copying it.  A write to
   the shared zero frame materialises a fresh zero page instead. *)
let cow t vpn (f : Phys_mem.frame) =
  let zero = Phys_mem.zero_frame t.phys in
  let f' =
    if f == zero then begin
      t.metrics.zero_fills <- t.metrics.zero_fills + 1;
      if Obs.Trace.enabled () then Obs.Trace.instant ~a:vpn Obs.Names.zero_fill;
      Phys_mem.alloc ~account:t.account t.phys ~owner:t.gen
    end
    else begin
      t.metrics.cow_faults <- t.metrics.cow_faults + 1;
      if Obs.Trace.enabled () then Obs.Trace.instant ~a:vpn Obs.Names.cow_fault;
      Phys_mem.alloc_copy t.phys ~account:t.account ~owner:t.gen f
    end
  in
  t.map <- Ptmap.add vpn f' t.map;
  let i = vpn land tlb_mask in
  if t.tlb_vpn.(i) = vpn then t.tlb_frame.(i) <- f';
  f'

let writable_frame t vpn addr =
  let f = lookup t vpn Write addr in
  if f.Phys_mem.owner = t.gen || f.Phys_mem.owner = shared_owner then f
  else cow t vpn f

(* {1 Mapping} *)

let map_zero t ~vpn =
  t.map <- Ptmap.add vpn (Phys_mem.zero_frame t.phys) t.map;
  tlb_invalidate t vpn;
  if Obs.Trace.enabled () then Obs.Trace.instant ~a:vpn Obs.Names.map;
  record t (T_map_zero vpn)

let map_data t ~vpn data =
  if String.length data > Page.size then
    invalid_arg "Addr_space.map_data: more than a page";
  let f = Phys_mem.alloc_data t.phys ~account:t.account ~owner:t.gen data in
  t.map <- Ptmap.add vpn f t.map;
  tlb_invalidate t vpn;
  if Obs.Trace.enabled () then Obs.Trace.instant ~a:vpn Obs.Names.map;
  record t (T_map_data (vpn, data))

(* Map [data] through the system-global dedup table: tenants booting the
   same image resolve the same read-only frame, and the first store COWs it
   private (its owner is a reserved pseudo-generation no live generation
   ever matches).  The reference taken here is boot-lifetime — returned by
   [drop_dedup_refs] when the space is torn down.  Recorded as a plain
   data map: differential replay cares about contents, not sharing. *)
let map_dedup t ~vpn data =
  if String.length data > Page.size then
    invalid_arg "Addr_space.map_dedup: more than a page";
  let f = Phys_mem.dedup_frame t.phys data in
  t.dedup_held <- f :: t.dedup_held;
  t.map <- Ptmap.add vpn f t.map;
  tlb_invalidate t vpn;
  if Obs.Trace.enabled () then Obs.Trace.instant ~a:vpn Obs.Names.map;
  record t (T_map_data (vpn, data))

let drop_dedup_refs t =
  let held = t.dedup_held in
  t.dedup_held <- [];
  List.iter (fun f -> Phys_mem.dedup_unref t.phys f) held;
  List.length held

let map_shared t ~vpn =
  if Obs.Trace.enabled () then Obs.Trace.instant ~a:vpn Obs.Names.map;
  record t (T_map_shared vpn);
  t.shared_hidden <- Ptmap.remove vpn t.shared_hidden;
  match Phys_mem.shared_page t.phys ~vpn with
  | Some _ ->
    (* already shared system-wide; just drop any private shadow *)
    t.map <- Ptmap.remove vpn t.map;
    tlb_invalidate t vpn
  | None ->
    let f = Phys_mem.alloc t.phys ~owner:shared_owner in
    (match Ptmap.find_opt vpn t.map with
    | Some (existing : Phys_mem.frame) ->
      Bytes.blit existing.bytes 0 f.Phys_mem.bytes 0 Page.size;
      t.map <- Ptmap.remove vpn t.map
    | None -> ());
    Phys_mem.set_shared_page t.phys ~vpn f;
    tlb_invalidate t vpn

let is_shared t ~vpn = shared_frame t vpn <> None

let unmap t ~vpn =
  t.map <- Ptmap.remove vpn t.map;
  (* A shared page is unmapped from this address space only: the registry
     entry stays so sibling machines on the same [Phys_mem] keep it. *)
  if Phys_mem.shared_page t.phys ~vpn <> None then
    t.shared_hidden <- Ptmap.add vpn () t.shared_hidden;
  tlb_invalidate t vpn;
  if Obs.Trace.enabled () then Obs.Trace.instant ~a:vpn Obs.Names.unmap;
  record t (T_unmap vpn)

let is_mapped t ~vpn = Ptmap.mem vpn t.map || is_shared t ~vpn

let visible_shared_vpns t =
  List.filter (fun vpn -> not (Ptmap.mem vpn t.shared_hidden))
    (Phys_mem.shared_vpns t.phys)

let mapped_pages t = Ptmap.cardinal t.map + List.length (visible_shared_vpns t)

let mapped_vpns t =
  let from_map = Ptmap.fold (fun vpn _ acc -> vpn :: acc) t.map [] in
  List.sort_uniq compare (visible_shared_vpns t @ from_map)

(* {1 Access} *)

let read_u8 t addr =
  let f = lookup t (Page.vpn_of_addr addr) Read addr in
  Char.code (Bytes.unsafe_get f.Phys_mem.bytes (Page.offset_of_addr addr))

let write_u8 t addr v =
  let f = writable_frame t (Page.vpn_of_addr addr) addr in
  Bytes.unsafe_set f.Phys_mem.bytes (Page.offset_of_addr addr) (Char.unsafe_chr (v land 0xff));
  record t (T_write_u8 (addr, v land 0xff))

let read_u64 t addr =
  let off = Page.offset_of_addr addr in
  if off <= Page.size - 8 then begin
    let f = lookup t (Page.vpn_of_addr addr) Read addr in
    Int64.to_int (Bytes.get_int64_le f.Phys_mem.bytes off)
  end
  else begin
    (* Crosses a page boundary: two per-page chunk reads — one translation
       each, not one per byte.  [k] bytes come from the first page.  The
       lookups probe in the order the old byte loop touched the pages
       (high half first), so a fault lands on the same address. *)
    let k = Page.size - off in
    let vpn = Page.vpn_of_addr addr in
    let f2 = lookup t (vpn + 1) Read (addr + 7) in
    let f1 = lookup t vpn Read (addr + k - 1) in
    let v = ref 0 in
    for i = 7 downto k do
      v := (!v lsl 8) lor Char.code (Bytes.unsafe_get f2.Phys_mem.bytes (i - k))
    done;
    for i = k - 1 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.unsafe_get f1.Phys_mem.bytes (off + i))
    done;
    !v
  end

let read_bytes t ~addr ~len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = Page.offset_of_addr a in
    let chunk = min (len - !pos) (Page.size - off) in
    let f = lookup t (Page.vpn_of_addr a) Read a in
    Bytes.blit f.Phys_mem.bytes off out !pos chunk;
    pos := !pos + chunk
  done;
  out

let write_bytes t ~addr data =
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = Page.offset_of_addr a in
    let chunk = min (len - !pos) (Page.size - off) in
    let f = writable_frame t (Page.vpn_of_addr a) a in
    Bytes.blit_string data !pos f.Phys_mem.bytes off chunk;
    (match t.trace with
    | None -> ()
    | Some sink -> sink (T_write_bytes (a, String.sub data !pos chunk)));
    pos := !pos + chunk
  done

let write_u64 t addr v =
  let off = Page.offset_of_addr addr in
  if off <= Page.size - 8 then begin
    let f = writable_frame t (Page.vpn_of_addr addr) addr in
    Bytes.set_int64_le f.Phys_mem.bytes off (Int64.of_int v);
    record t (T_write_u64 (addr, v))
  end
  else begin
    (* Crosses a page boundary: delegate to the chunked byte writer — at
       most two translations and two COW checks instead of eight.  Each
       chunk records itself, so a write that faults on the second page
       still leaves a byte-exact trace prefix for the first. *)
    let le = Bytes.create 8 in
    Bytes.set_int64_le le 0 (Int64.of_int v);
    write_bytes t ~addr (Bytes.unsafe_to_string le)
  end

(* {1 Snapshots} *)

let seal t =
  tlb_flush t;
  t.gen <- Phys_mem.fresh_generation t.phys;
  t.epoch <- t.epoch + 1;
  record t T_seal

let snapshot t =
  t.metrics.snapshots <- t.metrics.snapshots + 1;
  tlb_flush t;
  let s = { snap_id = t.next_snap_id; snap_map = t.map } in
  t.next_snap_id <- t.next_snap_id + 1;
  (* From now on every frame in [s] belongs to a retired generation, so the
     next store to any of them COWs.  Capture itself copies nothing. *)
  t.gen <- Phys_mem.fresh_generation t.phys;
  t.epoch <- t.epoch + 1;
  record t (T_snapshot s.snap_id);
  s

let restore t s =
  t.metrics.restores <- t.metrics.restores + 1;
  tlb_flush t;
  t.map <- s.snap_map;
  t.gen <- Phys_mem.fresh_generation t.phys;
  t.epoch <- t.epoch + 1;
  record t (T_restore s.snap_id)

(* {1 Explicit frame lifecycle}

   All three entry points below free or adopt exactly the frames of a
   *delta*: the pages whose backing differs between a base map and a later
   map derived from it.  Under the generation discipline those frames were
   allocated (COW'd or eagerly mapped) after the base's capture, on the one
   execution path that leads from the base to the later map — private
   frames enter a map at one vpn and are never re-mapped elsewhere, so no
   other snapshot or address space can reach them.  The zero frame,
   explicitly-shared frames and dedup-table frames never satisfy that
   (shared frames do not even live in snapshot maps; dedup frames are
   reachable from every tenant of the same image) and are skipped — the
   [owner >= 0] guard admits only frames some live-or-retired private
   generation allocated. *)

let frame_eq (x : Phys_mem.frame) (y : Phys_mem.frame) = x == y

(* Free the now-side frames of [delta]: entries added or replaced relative
   to the base.  Frames only present on the base side (unmapped later) stay
   — the base still references them. *)
let free_delta phys delta =
  let zero = Phys_mem.zero_frame phys in
  List.fold_left
    (fun n (_vpn, _before, now) ->
      match now with
      | Some (f : Phys_mem.frame)
        when f != zero && f.owner >= 0 && not f.freed ->
        Phys_mem.free_frame phys f;
        n + 1
      | Some _ | None -> n)
    0 delta

(* Release a dead snapshot: return the frames it acquired since [parent] to
   the allocator.  The caller asserts the snapshot left the frontier, every
   descendant is already dead, and the current map was restored away — the
   Snapshot/Explorer refcount discipline (see lib/core/snapshot.ml) is what
   makes each of those checkable.  Takes the physical memory, not the
   address space: releases happen after the machine restored away. *)
let release_snapshot ~phys ~parent s =
  let freed =
    free_delta phys (Ptmap.sym_diff frame_eq parent.snap_map s.snap_map)
  in
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:s.snap_id ~b:freed Obs.Names.snap_release;
  freed

(* Free what the current map acquired since [base] was restored — the COW
   tail of a finished path segment that no capture ever froze.  Only sound
   when the epoch is unchanged since that restore (no snapshot grabbed the
   map in between) and when the caller restores another snapshot
   immediately after, before any further access through the map. *)
let discard_segment t ~base =
  free_delta t.phys (Ptmap.sym_diff frame_eq base.snap_map t.map)

(* Restore [s] knowing it is the last reference to its branch: the frames
   it holds beyond [parent] become ours to write in place, instead of being
   COW'd again one fault at a time — the DFS tail-child fast path.  After
   this the snapshot must never be restored again (its frames will change
   under it). *)
let restore_adopt t ~parent s =
  restore t s;
  let gen = t.gen in
  let adopted =
    List.fold_left
      (fun n (_vpn, _before, now) ->
        match now with
        | Some (f : Phys_mem.frame)
          when f != Phys_mem.zero_frame t.phys
               && f.owner >= 0 && not f.freed ->
          Phys_mem.adopt_frame t.phys f ~owner:gen;
          n + 1
        | Some _ | None -> n)
      0
      (Ptmap.sym_diff frame_eq parent.snap_map s.snap_map)
  in
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:adopted Obs.Names.frame_adopt;
  adopted

(* Rebuild, in THIS address space, the page delta between two snapshots a
   sibling address space captured over the same logical root contents: map
   a private copy of every frame [target] holds beyond [base], and unmap
   every vpn [target] dropped.  This is the work-stealing import path — the
   caller has just restored its own replica of [base]'s logical state, and
   the producing domain guarantees the delta frames are immutable (they
   belong to retired generations and are pinned by the queued item's
   snapshot reference) for the duration of the call. *)
let import_delta t ~base ~target =
  List.fold_left
    (fun n (vpn, _before, now) ->
      (match (now : Phys_mem.frame option) with
      | Some f ->
        (* the blit in [alloc_data] copies the foreign bytes before this
           call returns; avoid the extra copy unless a trace sink would
           retain the string past the frame's lifetime *)
        let data =
          if t.trace = None then Bytes.unsafe_to_string f.Phys_mem.bytes
          else Bytes.to_string f.Phys_mem.bytes
        in
        map_data t ~vpn data
      | None -> unmap t ~vpn);
      n + 1)
    0
    (Ptmap.sym_diff frame_eq base.snap_map target.snap_map)

(* {1 Byte-level deltas}

   The frame-level entry points above free or adopt the delta's frames;
   these two read the delta's *contents*.  The result is pure data —
   strings, no frames — so it stays valid however long it is retained and
   wherever the parent's frames go afterwards: snapshot contents are
   logically deterministic, so a byte delta recorded against one
   materialisation of the parent applies equally to any later rebuild of
   it.  This is the demotion path of the tiered payload store
   ([Core.Reclaim]): reading frame bytes allocates no frames, so it is
   safe inside the allocator's pressure handler. *)

(* Pages whose backing differs between [parent] and [s], as
   [(vpn, contents) list] plus the vpns [s] dropped.  Shared pages live
   outside snapshot maps and never appear. *)
let snapshot_delta ~parent s =
  List.fold_left
    (fun (pages, dead) (vpn, _before, now) ->
      match (now : Phys_mem.frame option) with
      | Some f -> ((vpn, Bytes.to_string f.bytes) :: pages, dead)
      | None -> (pages, vpn :: dead))
    ([], [])
    (Ptmap.sym_diff frame_eq parent.snap_map s.snap_map)

(* The full private image of [s]: every (vpn, contents) it maps. *)
let snapshot_contents s =
  Ptmap.fold
    (fun vpn (f : Phys_mem.frame) acc -> (vpn, Bytes.to_string f.bytes) :: acc)
    s.snap_map []

let is_zero_page data =
  let n = String.length data in
  let rec go i = i >= n || (String.unsafe_get data i = '\000' && go (i + 1)) in
  go 0

(* Rebuild a snapshot's logical state from a byte delta: restore [base]
   (or wipe the private map when the delta is a full image), then map each
   delta page and unmap each dead vpn.  All-zero pages go through the
   shared zero frame so a promoted snapshot keeps the same demand-zero
   sharing a replayed one would have.  The caller captures immediately
   after, freezing the result. *)
let restore_pages t ~base ~pages ~dead =
  (match base with
  | Some b -> restore t b
  | None ->
    t.metrics.restores <- t.metrics.restores + 1;
    tlb_flush t;
    t.map <- Ptmap.empty;
    t.gen <- Phys_mem.fresh_generation t.phys;
    t.epoch <- t.epoch + 1);
  List.iter
    (fun (vpn, data) ->
      if is_zero_page data then map_zero t ~vpn else map_data t ~vpn data)
    pages;
  List.iter (fun vpn -> unmap t ~vpn) dead

let snapshot_id s = s.snap_id
let snapshot_pages s = Ptmap.cardinal s.snap_map

let distinct_frames snaps =
  let seen = Hashtbl.create 256 in
  List.iter
    (fun s ->
      Ptmap.iter (fun _ (f : Phys_mem.frame) -> Hashtbl.replace seen f.id ()) s.snap_map)
    snaps;
  Hashtbl.length seen

let delta_pages a b =
  let frame_eq (x : Phys_mem.frame) (y : Phys_mem.frame) = x == y in
  List.length (Ptmap.sym_diff frame_eq a.snap_map b.snap_map)

let snapshot_map_for_debug s = s.snap_map

let immutable_frame t ~addr =
  match Ptmap.find_opt (Page.vpn_of_addr addr) t.map with
  | Some (f : Phys_mem.frame) when f.owner <> t.gen && f.owner <> shared_owner ->
    Some (f.id, f.bytes)
  | Some _ | None -> None

let frame_is_immutable t (f : Phys_mem.frame) =
  f.owner <> t.gen && f.owner <> shared_owner

let reading_frame t addr = lookup t (Page.vpn_of_addr addr) Read addr
