(* 4-level radix page table, 9 bits per level => 36-bit virtual page numbers
   (48-bit virtual addresses), matching x86-64 long mode.  Table nodes carry
   the same generation-ownership discipline as data frames: mutating a node
   that an older generation may still reference copies it first (a path
   copy), which is exactly the work a hardware NPT snapshot implementation
   spreads across its first post-snapshot faults. *)

let levels = 4
let bits_per_level = 9
let fanout = 1 lsl bits_per_level
let level_mask = fanout - 1

type entry =
  | Empty
  | Table of node
  | Frame of Phys_mem.frame

and node = { mutable owner : int; slots : entry array }

type t = {
  phys : Phys_mem.t;
  metrics : Mem_metrics.t;
  mutable root : node;
  mutable gen : int;
  mutable pages : int;
  tlb_vpn : int array;
  mutable tlb_frame : Phys_mem.frame array;
}

type snapshot = { snap_root : node; snap_pages : int }

let tlb_bits = 8
let tlb_size = 1 lsl tlb_bits
let tlb_mask = tlb_size - 1

exception Unmapped

let fresh_node t =
  { owner = t.gen; slots = Array.make fanout Empty }

let create phys =
  let zero = Phys_mem.zero_frame phys in
  let gen = Phys_mem.fresh_generation phys in
  let t =
    { phys;
      metrics = Phys_mem.metrics phys;
      root = { owner = gen; slots = Array.make fanout Empty };
      gen;
      pages = 0;
      tlb_vpn = Array.make tlb_size (-1);
      tlb_frame = Array.make tlb_size zero }
  in
  t

let metrics t = t.metrics

let tlb_flush t =
  Array.fill t.tlb_vpn 0 tlb_size (-1);
  t.metrics.tlb_flushes <- t.metrics.tlb_flushes + 1

let tlb_invalidate t vpn =
  let i = vpn land tlb_mask in
  if t.tlb_vpn.(i) = vpn then t.tlb_vpn.(i) <- -1

let index vpn level = (vpn lsr (bits_per_level * level)) land level_mask

(* Read-only walk; raises [Unmapped]. *)
let walk t vpn =
  let rec go node level =
    let e = node.slots.(index vpn level) in
    match e with
    | Empty -> raise Unmapped
    | Table child -> go child (level - 1)
    | Frame f -> if level = 0 then f else raise Unmapped
  in
  go t.root (levels - 1)

(* Mutable walk: path-copies every node not owned by the current generation
   and materialises missing interior nodes. *)
let copy_node t node =
  t.metrics.pt_node_copies <- t.metrics.pt_node_copies + 1;
  { owner = t.gen; slots = Array.copy node.slots }

let writable_root t =
  if t.root.owner <> t.gen then t.root <- copy_node t t.root;
  t.root

let walk_mut t vpn =
  let rec go node level =
    (* [node] is already owned by the current generation. *)
    if level = 0 then node
    else begin
      let i = index vpn level in
      let child =
        match node.slots.(i) with
        | Empty ->
          let c = fresh_node t in
          node.slots.(i) <- Table c;
          c
        | Table c ->
          if c.owner = t.gen then c
          else begin
            let c' = copy_node t c in
            node.slots.(i) <- Table c';
            c'
          end
        | Frame _ -> invalid_arg "Ept: frame entry at interior level"
      in
      go child (level - 1)
    end
  in
  go (writable_root t) (levels - 1)

let set_leaf t vpn entry =
  let leaf = walk_mut t vpn in
  let i = index vpn 0 in
  let was = leaf.slots.(i) in
  leaf.slots.(i) <- entry;
  (match was, entry with
  | Empty, (Frame _ | Table _) -> t.pages <- t.pages + 1
  | (Frame _ | Table _), Empty -> t.pages <- t.pages - 1
  | Empty, Empty | (Frame _ | Table _), (Frame _ | Table _) -> ());
  tlb_invalidate t vpn

let map_zero t ~vpn = set_leaf t vpn (Frame (Phys_mem.zero_frame t.phys))

let map_data t ~vpn data =
  if String.length data > Page.size then
    invalid_arg "Ept.map_data: more than a page";
  set_leaf t vpn (Frame (Phys_mem.alloc_data t.phys ~owner:t.gen data))

let unmap t ~vpn = set_leaf t vpn Empty

let is_mapped t ~vpn =
  match walk t vpn with _ -> true | exception Unmapped -> false

let mapped_pages t = t.pages

let lookup t vpn access addr =
  let i = vpn land tlb_mask in
  if t.tlb_vpn.(i) = vpn then begin
    t.metrics.tlb_hits <- t.metrics.tlb_hits + 1;
    t.tlb_frame.(i)
  end
  else begin
    t.metrics.tlb_misses <- t.metrics.tlb_misses + 1;
    t.metrics.pt_walks <- t.metrics.pt_walks + 1;
    match walk t vpn with
    | f ->
      t.tlb_vpn.(i) <- vpn;
      t.tlb_frame.(i) <- f;
      f
    | exception Unmapped -> raise (Addr_space.Page_fault { addr; access })
  end

let writable_frame t vpn addr =
  let f = lookup t vpn Addr_space.Write addr in
  if f.Phys_mem.owner = t.gen then f
  else begin
    let zero = Phys_mem.zero_frame t.phys in
    let f' =
      if f == zero then begin
        t.metrics.zero_fills <- t.metrics.zero_fills + 1;
        Phys_mem.alloc t.phys ~owner:t.gen
      end
      else begin
        t.metrics.cow_faults <- t.metrics.cow_faults + 1;
        Phys_mem.alloc_copy t.phys ~owner:t.gen f
      end
    in
    let leaf = walk_mut t vpn in
    leaf.slots.(index vpn 0) <- Frame f';
    let i = vpn land tlb_mask in
    if t.tlb_vpn.(i) = vpn then t.tlb_frame.(i) <- f';
    f'
  end

let read_u8 t addr =
  let f = lookup t (Page.vpn_of_addr addr) Addr_space.Read addr in
  Char.code (Bytes.unsafe_get f.Phys_mem.bytes (Page.offset_of_addr addr))

let write_u8 t addr v =
  let f = writable_frame t (Page.vpn_of_addr addr) addr in
  Bytes.unsafe_set f.Phys_mem.bytes (Page.offset_of_addr addr) (Char.unsafe_chr (v land 0xff))

let read_u64 t addr =
  let off = Page.offset_of_addr addr in
  if off <= Page.size - 8 then begin
    let f = lookup t (Page.vpn_of_addr addr) Addr_space.Read addr in
    Int64.to_int (Bytes.get_int64_le f.Phys_mem.bytes off)
  end
  else begin
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor read_u8 t (addr + i)
    done;
    !v
  end

let write_u64 t addr v =
  let off = Page.offset_of_addr addr in
  if off <= Page.size - 8 then begin
    let f = writable_frame t (Page.vpn_of_addr addr) addr in
    Bytes.set_int64_le f.Phys_mem.bytes off (Int64.of_int v)
  end
  else
    for i = 0 to 7 do
      write_u8 t (addr + i) ((v lsr (8 * i)) land 0xff)
    done

let read_bytes t ~addr ~len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = Page.offset_of_addr a in
    let chunk = min (len - !pos) (Page.size - off) in
    let f = lookup t (Page.vpn_of_addr a) Addr_space.Read a in
    Bytes.blit f.Phys_mem.bytes off out !pos chunk;
    pos := !pos + chunk
  done;
  out

let write_bytes t ~addr data =
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = Page.offset_of_addr a in
    let chunk = min (len - !pos) (Page.size - off) in
    let f = writable_frame t (Page.vpn_of_addr a) a in
    Bytes.blit_string data !pos f.Phys_mem.bytes off chunk;
    pos := !pos + chunk
  done

let snapshot t =
  t.metrics.snapshots <- t.metrics.snapshots + 1;
  tlb_flush t;
  let s = { snap_root = t.root; snap_pages = t.pages } in
  t.gen <- Phys_mem.fresh_generation t.phys;
  s

let restore t s =
  t.metrics.restores <- t.metrics.restores + 1;
  tlb_flush t;
  t.root <- s.snap_root;
  t.pages <- s.snap_pages;
  t.gen <- Phys_mem.fresh_generation t.phys

let snapshot_pages s = s.snap_pages

let distinct_frames snaps =
  let seen = Hashtbl.create 256 in
  let rec visit node level =
    Array.iter
      (fun e ->
        match e with
        | Empty -> ()
        | Frame f -> Hashtbl.replace seen f.Phys_mem.id ()
        | Table child -> visit child (level - 1))
      node.slots
  in
  List.iter (fun s -> visit s.snap_root levels) snaps;
  Hashtbl.length seen
