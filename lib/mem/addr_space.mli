(** The production address-space backend: a persistent page map with
    generation-based copy-on-write.

    This module is the OCaml analogue of the paper's virtual-memory
    integration.  The page map (virtual page number -> frame) is a persistent
    Patricia trie, so a {e lightweight immutable snapshot} is captured in
    O(1) by grabbing the trie root and bumping the current generation.
    Stores check the owning generation of the target frame: a mismatch is a
    simulated COW page fault, serviced by copying exactly one 4 KiB frame —
    the same event the paper's nested-page-table implementation takes in
    hardware.  A direct-mapped TLB sits in front of the trie and is flushed
    on snapshot capture and restore, mirroring the hardware cost model. *)

type access = Read | Write

exception Page_fault of { addr : int; access : access }
(** Raised on access to an unmapped page; the libOS interposes on it. *)

type t

type snapshot
(** An immutable logical copy of the entire address space.  Holding one
    keeps its frames alive; dropping the last reference lets the GC reclaim
    them — or, under the explicit lifecycle below, lets the owner return
    them to the allocator's free list without waiting for a collection. *)

val create : Phys_mem.t -> t
val phys : t -> Phys_mem.t
val metrics : t -> Mem_metrics.t

(** {1 Mapping} *)

val map_zero : t -> vpn:int -> unit
(** Map a page as demand-zero (shared zero frame; first store COWs). *)

val map_shared : t -> vpn:int -> unit
(** Map a page as {e explicitly shared}: it is excluded from snapshots —
    writes hit the same frame on every path and survive restores.  This is
    the paper's "explicit sharing mechanisms between lightweight
    snapshots" (§3.1); the libOS exposes it as [sys_share].  The sharing
    registry lives in {!Phys_mem}, so every address space over the same
    physical memory resolves the same frame.  Remapping or unmapping the
    page removes the sharing {e for this address space only} — sibling
    machines keep theirs.  Like the registry itself, that removal sits
    outside the snapshot discipline and is not rolled back by restores. *)

val is_shared : t -> vpn:int -> bool

val map_data : t -> vpn:int -> string -> unit
(** Map a page initialised with up to {!Page.size} bytes of data. *)

val map_dedup : t -> vpn:int -> string -> unit
(** Map a page through the system-global content-addressed dedup table
    ({!Phys_mem.dedup_frame}): address spaces booting the same image
    resolve the same read-only frame, and the first store COWs it private
    under the ordinary generation discipline.  Takes a boot-lifetime
    reference on the deduped frame; {!drop_dedup_refs} returns them. *)

val drop_dedup_refs : t -> int
(** Return every dedup-table reference this space took via {!map_dedup}
    and report how many were dropped.  Call at teardown (or when undoing
    a partial boot); the map must not be accessed through those vpns
    afterwards unless the pages were COW'd private. *)

val set_account : t -> int -> unit
(** Charge every frame this space allocates from now on (COW copies,
    zero-fills, data maps) to the given {!Phys_mem.fresh_account} session;
    0 (the default) leaves allocations unattributed. *)

val account : t -> int

val unmap : t -> vpn:int -> unit
val is_mapped : t -> vpn:int -> bool
val mapped_pages : t -> int

val mapped_vpns : t -> int list
(** Every mapped virtual page number (used by eager-copy baselines that
    must duplicate the whole address space). *)

(** {1 Access (byte-addressed, little-endian)} *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u64 : t -> int -> int
(** Note: the simulated machine's words are OCaml native ints (63-bit); the
    memory cell is still 8 bytes wide. *)

val write_u64 : t -> int -> int -> unit
val read_bytes : t -> addr:int -> len:int -> Bytes.t
val write_bytes : t -> addr:int -> string -> unit

(** {1 Snapshots} *)

val seal : t -> unit
(** Retire the current generation without capturing a snapshot: every
    currently-mapped frame becomes immutable-until-COW.  The libOS seals
    the address space after loading an image, mirroring how exec(2) maps
    text and data copy-on-write from the file — which also makes code
    pages eligible for the decoded-instruction cache from the first
    instruction. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val snapshot_id : snapshot -> int
val snapshot_pages : snapshot -> int

val distinct_frames : snapshot list -> int
(** Number of physical frames backing the union of the given snapshots —
    the space-accounting measure behind the paper's "space-efficient parent
    relationship" claim (shared pages are counted once). *)

val delta_pages : snapshot -> snapshot -> int
(** Pages whose backing frame differs between two snapshots; proportional to
    COW activity between them, not to address-space size. *)

val generation : t -> int
val snapshot_map_for_debug : snapshot -> Phys_mem.frame Stdx.Ptmap.t

(** {1 Explicit frame lifecycle}

    The GC reclaims dead snapshots eventually; these entry points reclaim
    them {e now}, feeding {!Phys_mem}'s buffer free list so the COW fault
    path stops allocating in steady state.  All three operate on a
    {e delta}: the frames a map acquired relative to a base it was derived
    from.  Under the generation discipline those frames are private to the
    one execution path between the two maps, which is what makes eager
    reclamation sound — provided the caller really holds the last
    reference (see the refcount discipline in [Core.Snapshot]). *)

val epoch : t -> int
(** Bumped on every [snapshot], [restore] and [seal].  A caller that
    restored a base and observes the epoch unchanged knows no snapshot has
    grabbed the map since, so everything acquired in between is segment-
    private (the precondition of {!discard_segment}). *)

val release_snapshot : phys:Phys_mem.t -> parent:snapshot -> snapshot -> int
(** [release_snapshot ~phys ~parent s] returns the frames [s] acquired since
    [parent] to the allocator and reports how many were freed.  Sound only
    once [s] is dead: off the frontier, every descendant already released,
    and the current map restored away from its branch.  The zero frame,
    explicitly-shared frames and dedup-table frames are skipped; frames
    [parent] still references (pages unmapped in [s]) are kept. *)

val discard_segment : t -> base:snapshot -> int
(** Free what the current map acquired since [base] was restored — the COW
    tail of a finished path segment that no capture froze.  Requires
    {!epoch} unchanged since that restore, and the caller must restore
    another snapshot immediately after, before any access through the
    now-dangling map. *)

val restore_adopt : t -> parent:snapshot -> snapshot -> int
(** Restore [s] and take ownership of the frames it holds beyond [parent]:
    they join the new current generation and are written in place instead
    of being COW'd again — the restore-last-reference (DFS tail-child)
    fast path.  Returns the number of frames adopted.  [s] must never be
    restored again afterwards: its pages change under it. *)

val import_delta : t -> base:snapshot -> target:snapshot -> int
(** Rebuild in this address space the page delta between two snapshots a
    {e sibling} address space captured over the same logical root
    contents: map a private copy of every frame [target] holds beyond
    [base] and unmap every vpn [target] dropped; returns the number of
    pages touched.  The caller must have just restored its own replica of
    [base]'s logical state, and the producing side must guarantee the
    delta frames stay immutable for the duration of the call (queued
    snapshot references pin them — see the Domains backend in
    [Core.Parallel]). *)

(** {1 Byte-level deltas}

    Where the explicit-lifecycle entry points free or adopt a delta's
    {e frames}, these read its {e contents}.  The result is pure data —
    no frames — so it stays valid however long it is retained and
    survives the parent being freed, rematerialised or replayed: snapshot
    contents are logically deterministic, so a byte delta recorded
    against one materialisation applies equally to any later rebuild.
    Reading frame bytes allocates no frames, which is what lets the
    tiered payload store ([Core.Reclaim]) demote snapshots from inside
    the allocator's pressure handler. *)

val snapshot_delta :
  parent:snapshot -> snapshot -> (int * string) list * int list
(** [snapshot_delta ~parent s] is [(pages, dead)]: the [(vpn, contents)]
    of every page whose backing differs between [parent] and [s], plus
    the vpns [s] unmapped.  Explicitly-shared pages live outside snapshot
    maps and never appear. *)

val snapshot_contents : snapshot -> (int * string) list
(** The full private image of a snapshot — a delta against the empty
    map.  Used when demoting a snapshot with no materialised ancestor. *)

val restore_pages :
  t -> base:snapshot option -> pages:(int * string) list -> dead:int list -> unit
(** Rebuild a snapshot's logical state from a byte delta: restore [base]
    ([None] wipes the private map — the full-image case), then map each
    page of [pages] and unmap each vpn of [dead].  All-zero pages map
    through the shared zero frame, preserving demand-zero sharing.  The
    caller must capture immediately after to freeze the result. *)

(** {1 Operation tracing}

    A recorder for the state-changing operations applied to this address
    space, rich enough to replay the same trace against another MMU backend
    ({!Ept}) and compare the resulting memory images — the mechanism behind
    the differential-fuzzing oracle and the E8-style equivalence checks.
    Reads are not recorded.  With no sink installed the cost is one branch
    per mutating operation. *)

type trace_op =
  | T_map_zero of int                (** vpn *)
  | T_map_data of int * string       (** vpn, initial contents *)
  | T_map_shared of int              (** vpn *)
  | T_unmap of int                   (** vpn *)
  | T_write_u8 of int * int          (** addr, value *)
  | T_write_u64 of int * int         (** addr, value *)
  | T_write_bytes of int * string    (** addr, data *)
  | T_seal
  | T_snapshot of int                (** the captured snapshot's id *)
  | T_restore of int                 (** id of the snapshot restored *)

val set_trace : t -> (trace_op -> unit) option -> unit
(** Install (or remove) the trace sink.  Each mutating operation is
    reported exactly once, after it succeeds — an operation that raises
    {!Page_fault} records nothing. *)

val reading_frame : t -> int -> Phys_mem.frame
(** TLB-backed resolution of the frame backing a byte address (the fetch
    path of the interpreter).  A frame whose [owner] is not the current
    {!generation} is immutable until COW'd, which callers may exploit for
    caching. @raise Page_fault when unmapped. *)

val immutable_frame : t -> addr:int -> (int * Bytes.t) option
(** [Some (frame_id, bytes)] when the page backing [addr] is owned by a
    retired generation and therefore can never change in place (any write
    COWs it into a fresh frame with a fresh id).  This is what makes
    decoded-instruction caches sound: a cache keyed by frame id needs no
    invalidation.  [None] while the frame is still writable in place. *)

val frame_is_immutable : t -> Phys_mem.frame -> bool
(** Whether a frame already resolved (e.g. via {!reading_frame}) can never
    change in place under this address space: it is owned neither by the
    current generation nor by the explicit-sharing pseudo-generation
    (shared pages are written in place on every path, so they must never
    be decode- or block-cached).  The predicate the interpreter's decode
    and superinstruction caches gate on. *)
