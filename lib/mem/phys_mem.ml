type frame = { id : int; bytes : Bytes.t; mutable owner : int }

type t = {
  mutable next_frame : int;
  mutable next_gen : int;
  zero : frame;
  metrics : Mem_metrics.t;
  shared_pages : (int, frame) Hashtbl.t;
      (* explicitly-shared frames by vpn: system-global so that every
         address space over this physical memory sees the same page *)
  mutable share_epoch : int;
      (* bumped on every registry change; address spaces compare it against
         the epoch they last observed and flush their TLB on mismatch — the
         simulation's stand-in for a cross-CPU TLB shootdown, without which
         a machine that cached a private translation would keep reading its
         stale frame after a sibling shares the same vpn *)
}

(* Generation 0 is reserved: it owns the zero frame and nothing else, so no
   live address space can ever write the zero frame in place. *)
let zero_generation = 0

let create () =
  let zero = { id = 0; bytes = Bytes.make Page.size '\000'; owner = zero_generation } in
  { next_frame = 1; next_gen = 1; zero; metrics = Mem_metrics.create ();
    shared_pages = Hashtbl.create 8; share_epoch = 0 }

let metrics t = t.metrics

let zero_frame t = t.zero

let alloc t ~owner =
  let f = { id = t.next_frame; bytes = Bytes.make Page.size '\000'; owner } in
  t.next_frame <- t.next_frame + 1;
  t.metrics.frames_allocated <- t.metrics.frames_allocated + 1;
  f

let alloc_copy t ~owner src =
  let f = alloc t ~owner in
  Bytes.blit src.bytes 0 f.bytes 0 Page.size;
  t.metrics.pages_copied <- t.metrics.pages_copied + 1;
  t.metrics.bytes_copied <- t.metrics.bytes_copied + Page.size;
  f

let frames_allocated t = t.next_frame - 1

let shared_page t ~vpn = Hashtbl.find_opt t.shared_pages vpn
let set_shared_page t ~vpn frame =
  Hashtbl.replace t.shared_pages vpn frame;
  t.share_epoch <- t.share_epoch + 1

let clear_shared_page t ~vpn =
  Hashtbl.remove t.shared_pages vpn;
  t.share_epoch <- t.share_epoch + 1

let share_epoch t = t.share_epoch
let shared_page_count t = Hashtbl.length t.shared_pages
let shared_vpns t = Hashtbl.fold (fun vpn _ acc -> vpn :: acc) t.shared_pages []

let fresh_generation t =
  let g = t.next_gen in
  t.next_gen <- t.next_gen + 1;
  g
