type frame = {
  mutable id : int;
  bytes : Bytes.t;
  mutable owner : int;
  mutable freed : bool;
  mutable account : int;
}

exception Out_of_frames of { capacity : int; live : int }

(* Keep at most this many released page buffers around; beyond it a free
   is a plain drop (the GC gets the buffer).  Bounds the pool's footprint
   on workloads that release far more than they re-allocate. *)
let max_free_bufs = 4096

let poison_byte = '\xa5'

(* Depth of the share-change ring.  Sized so that a machine which ran a
   whole scheduling quantum while siblings reconfigured sharing still
   catches up entry by entry; falling further behind degrades to the old
   full flush, never to incoherence. *)
let share_log_size = 64

(* A dedup-table entry: the hash-consed frame plus the number of address
   spaces currently holding a boot-time reference to it. *)
type dedup_entry = { d_frame : frame; mutable d_refs : int }

type t = {
  mutable next_frame : int;
  mutable next_gen : int;
  zero : frame;
  metrics : Mem_metrics.t;
  shared_pages : (int, frame) Hashtbl.t;
      (* explicitly-shared frames by vpn: system-global so that every
         address space over this physical memory sees the same page *)
  mutable share_epoch : int;
      (* bumped on every registry change; address spaces compare it against
         the epoch they last observed and invalidate stale translations on
         mismatch — the simulation's stand-in for a cross-CPU TLB shootdown,
         without which a machine that cached a private translation would
         keep reading its stale frame after a sibling shares the same vpn *)
  share_log : int array;
      (* ring of the vpns behind the last [share_log_size] epoch bumps, so
         an address space that fell at most that far behind can shoot down
         just the affected entries instead of wiping its whole TLB *)
  capacity : int;  (* 0 = unbounded *)
  track_live : bool;
  live : int Atomic.t;
      (* frames allocated minus frames the GC has proven unreachable; the
         finaliser on each frame is the simulation's refcounted free list *)
  mutable peak_live : int;
  mutable on_pressure : (unit -> unit) option;
  mutable pressure_events : int;
  mutable watermark_armed : bool;
  mutable alloc_fault : (int -> bool) option;
  recycle : bool;
      (* when set, explicitly-released frames feed a buffer free list and
         full-page-overwrite allocations skip the zero fill; when clear the
         allocator behaves exactly like the GC-only seed (the conservative
         baseline the fuzz oracle compares against) *)
  mutable poison : bool;
      (* debug: fill released buffers with [poison_byte] immediately, so a
         frame freed while still reachable diverges loudly *)
  mutable free_bufs : Bytes.t list;
  mutable free_len : int;
  mutable total_allocs : int;
      (* frames ever allocated; [next_frame] cannot serve because adoption
         re-stamps frame ids from the same sequence *)
  mutable delta_bytes : int;
      (* bytes of demoted snapshot deltas currently held in host memory by
         the tiered payload store — the budget the simulated machine spends
         on "compressed snapshots" instead of frames.  Reported, not
         charged against [capacity]: the substitution table maps the
         paper's compressed store to host heap outside guest frame RAM *)
  mutable peak_delta_bytes : int;
  mutable spill_bytes : int;
      (* bytes of deltas currently spilled to host disk (tier 2) *)
  mutable next_account : int;
  account_live_tbl : (int, int ref) Hashtbl.t;
      (* live frames charged to each non-zero account — the per-tenant
         frame accounting the tenancy layer's budgets read.  Account 0 is
         the shared/unattributed pool and is never tracked. *)
  dedup : (string, dedup_entry) Hashtbl.t;
      (* content digest -> hash-consed read-only frame.  Entries are owned
         by [dedup_owner], a reserved pseudo-generation that never matches
         any address space's current generation, so every store through a
         mapping of a deduped frame COWs — the frame-generation discipline
         is what makes cross-tenant sharing sound. *)
  dedup_rev : (int, string) Hashtbl.t;  (* frame id -> digest, for unref *)
  mutable dedup_refs : int;             (* sum of d_refs over all entries *)
  mutable dedup_hits : int;             (* dedup_frame calls served by an
                                           existing entry *)
}

(* Generation 0 is reserved: it owns the zero frame and nothing else, so no
   live address space can ever write the zero frame in place. *)
let zero_generation = 0

(* Pseudo-generation owning hash-consed (deduplicated) frames.  Like
   [Addr_space.shared_owner] (-1) it is negative so it can never collide
   with a real generation — but unlike shared frames, deduped frames are
   never written in place: a store through them always COWs. *)
let dedup_owner = -2

let create ?(capacity = 0) ?(track_live = false) ?(recycle = true)
    ?(poison = false) () =
  if capacity < 0 then invalid_arg "Phys_mem.create: negative capacity";
  let zero =
    { id = 0; bytes = Bytes.make Page.size '\000'; owner = zero_generation;
      freed = false; account = 0 }
  in
  { next_frame = 1; next_gen = 1; zero; metrics = Mem_metrics.create ();
    shared_pages = Hashtbl.create 8; share_epoch = 0;
    share_log = Array.make share_log_size (-1);
    capacity; track_live = track_live || capacity > 0;
    live = Atomic.make 0; peak_live = 0;
    on_pressure = None; pressure_events = 0; watermark_armed = true;
    alloc_fault = None;
    recycle; poison; free_bufs = []; free_len = 0; total_allocs = 0;
    delta_bytes = 0; peak_delta_bytes = 0; spill_bytes = 0;
    next_account = 1; account_live_tbl = Hashtbl.create 8;
    dedup = Hashtbl.create 64; dedup_rev = Hashtbl.create 64;
    dedup_refs = 0; dedup_hits = 0 }

let metrics t = t.metrics

let zero_frame t = t.zero

let capacity t = t.capacity
let recycling t = t.recycle
let set_poison t b = t.poison <- b
let poisoning t = t.poison
let free_buffers t = t.free_len
let frames_live t = Atomic.get t.live
let peak_frames_live t = t.peak_live
let pressure_events t = t.pressure_events
let set_pressure_handler t f = t.on_pressure <- f
let set_alloc_fault t f = t.alloc_fault <- f

let note_delta_bytes t n =
  t.delta_bytes <- t.delta_bytes + n;
  if t.delta_bytes > t.peak_delta_bytes then t.peak_delta_bytes <- t.delta_bytes

let delta_bytes_held t = t.delta_bytes
let peak_delta_bytes t = t.peak_delta_bytes
let note_spill_bytes t n = t.spill_bytes <- t.spill_bytes + n
let spill_bytes_held t = t.spill_bytes

(* Finalisers registered during one major cycle run as part of the next, so
   a single [full_major] can leave just-dropped frames still counted; the
   second pass makes "unreachable now" observable in [live]. *)
let collect t =
  Gc.full_major ();
  Gc.full_major ();
  ignore t

let high_watermark t = t.capacity - (t.capacity / 8)

let below_watermark t = t.capacity > 0 && Atomic.get t.live < high_watermark t

(* Fire the pressure protocol: let the registered reclaimer shed payload
   references, then collect so the freed frames actually leave [live].
   A handler that returns frames explicitly (the tiered store's eager
   demotion free feeds {!free_frame} directly) already moved [live]; when
   that alone clears the watermark the full collection — two major GC
   cycles, by far the dominant cost of a pressure event — is skipped. *)
let pressure t =
  t.pressure_events <- t.pressure_events + 1;
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:(Atomic.get t.live) ~b:t.capacity Obs.Names.pressure;
  (match t.on_pressure with Some f -> f () | None -> ());
  if Atomic.get t.live >= high_watermark t then collect t

let ensure_frame_available t =
  (match t.alloc_fault with
  | Some fail when fail t.next_frame ->
    (* Injected transient allocation failure: indistinguishable from a
       momentarily exhausted free list, so callers exercise the same
       recovery path a real out-of-frames condition takes. *)
    raise (Out_of_frames { capacity = t.capacity; live = Atomic.get t.live })
  | _ -> ());
  if t.capacity > 0 then begin
    let live = Atomic.get t.live in
    if live >= t.capacity then begin
      pressure t;
      let live = Atomic.get t.live in
      if live >= t.capacity then begin
        if Obs.Trace.enabled () then
          Obs.Trace.instant ~a:live ~b:t.capacity Obs.Names.out_of_frames;
        raise (Out_of_frames { capacity = t.capacity; live })
      end
    end
    else if live >= high_watermark t then begin
      (* High-watermark crossing: reclaim early, and only once per
         excursion above the mark, so steady state near the watermark does
         not degenerate into a collection per allocation. *)
      if t.watermark_armed then begin
        t.watermark_armed <- false;
        pressure t
      end
    end
    else t.watermark_armed <- true
  end

(* {1 Per-account accounting}

   Accounts attribute live frames to the session (tenant) whose address
   space allocated them, independently of generation ownership.  Account 0
   is the shared/unattributed pool and is never tracked, so the tables stay
   empty (and the per-allocation cost stays one integer compare) for every
   user that never calls {!fresh_account}. *)

let fresh_account t =
  let a = t.next_account in
  t.next_account <- a + 1;
  a

let account_cell t account =
  match Hashtbl.find_opt t.account_live_tbl account with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.account_live_tbl account r;
    r

let charge_account t account =
  if account <> 0 then incr (account_cell t account)

let credit_account t account =
  if account <> 0 then decr (account_cell t account)

let account_frames_live t account =
  if account = 0 then 0
  else match Hashtbl.find_opt t.account_live_tbl account with
    | Some r -> !r
    | None -> 0

let account_live t f =
  if t.track_live then begin
    let live = 1 + Atomic.fetch_and_add t.live 1 in
    if live > t.peak_live then t.peak_live <- live;
    charge_account t f.account;
    (* An explicitly-freed frame already gave its live slot back; the
       finaliser must not return it twice. *)
    Gc.finalise
      (fun (f : frame) ->
        if not f.freed then begin
          Atomic.decr t.live;
          credit_account t f.account
        end)
      f
  end

(* Pop a released page buffer, if the pool has one.  The buffer comes back
   with arbitrary contents (possibly poisoned): callers overwrite it. *)
let take_buf t =
  match t.free_bufs with
  | [] -> None
  | b :: rest ->
    t.free_bufs <- rest;
    t.free_len <- t.free_len - 1;
    t.metrics.frames_recycled <- t.metrics.frames_recycled + 1;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:t.free_len Obs.Names.frame_recycle;
    Some b

let mint t ~owner ~account bytes =
  let f = { id = t.next_frame; bytes; owner; freed = false; account } in
  t.next_frame <- t.next_frame + 1;
  t.total_allocs <- t.total_allocs + 1;
  t.metrics.frames_allocated <- t.metrics.frames_allocated + 1;
  account_live t f;
  f

let alloc ?(account = 0) t ~owner =
  ensure_frame_available t;
  let bytes =
    match take_buf t with
    | Some b -> Bytes.fill b 0 Page.size '\000'; b
    | None -> Bytes.make Page.size '\000'
  in
  mint t ~owner ~account bytes

(* A frame whose every byte is about to be overwritten: recycle a buffer or
   take uninitialised memory, either way skipping the zero fill that
   [Bytes.make] would pay.  Gated on [recycle] so the recycling-off
   baseline keeps the seed's exact cost model. *)
let alloc_overwritten t ~owner ~account =
  ensure_frame_available t;
  if not t.recycle then mint t ~owner ~account (Bytes.make Page.size '\000')
  else begin
    t.metrics.zero_fills_elided <- t.metrics.zero_fills_elided + 1;
    let bytes =
      match take_buf t with Some b -> b | None -> Bytes.create Page.size
    in
    mint t ~owner ~account bytes
  end

let alloc_copy t ?(account = 0) ~owner src =
  let f = alloc_overwritten t ~owner ~account in
  Bytes.blit src.bytes 0 f.bytes 0 Page.size;
  t.metrics.pages_copied <- t.metrics.pages_copied + 1;
  t.metrics.bytes_copied <- t.metrics.bytes_copied + Page.size;
  f

let alloc_data t ?(account = 0) ~owner data =
  let len = String.length data in
  if len > Page.size then invalid_arg "Phys_mem.alloc_data: more than a page";
  let f = alloc_overwritten t ~owner ~account in
  Bytes.blit_string data 0 f.bytes 0 len;
  (* only the tail needs clearing: the recycled buffer carries old bytes *)
  if len < Page.size then Bytes.fill f.bytes len (Page.size - len) '\000';
  f

let free_frame t (f : frame) =
  if f == t.zero then invalid_arg "Phys_mem.free_frame: the zero frame";
  if f.freed then
    invalid_arg (Printf.sprintf "Phys_mem.free_frame: double free of frame %d" f.id);
  f.freed <- true;
  t.metrics.frames_freed <- t.metrics.frames_freed + 1;
  if t.track_live then begin
    Atomic.decr t.live;
    credit_account t f.account
  end;
  if t.recycle && t.free_len < max_free_bufs then begin
    if t.poison then Bytes.fill f.bytes 0 Page.size poison_byte;
    t.free_bufs <- f.bytes :: t.free_bufs;
    t.free_len <- t.free_len + 1
  end

(* Transfer a frame into generation [owner] so stores hit it in place.  The
   id is re-stamped from the same sequence as fresh frames: decode caches
   key on frame ids under the frames-never-change-in-place invariant, and an
   adopted frame is about to start changing. *)
let adopt_frame t (f : frame) ~owner =
  f.id <- t.next_frame;
  t.next_frame <- t.next_frame + 1;
  f.owner <- owner

let frames_allocated t = t.total_allocs
let next_frame_ordinal t = t.next_frame

(* {1 Content-addressed frame dedup}

   Hash-consing for read-only image pages shared across tenants of the
   same guest image.  A deduped frame is owned by [dedup_owner], so any
   store through a mapping of it COWs into a private frame (first
   divergence); the shared original is never written in place, which is
   exactly the invariant snapshots and the decode cache already rely on
   for retired-generation frames.  References are boot-lifetime: one per
   address space that mapped the frame, dropped at tenant teardown, and
   the frame itself is freed when the last reference drains. *)

let page_digest data =
  (* digest of the full page image: short data is padded with zeroes, the
     same contents the frame will hold *)
  if String.length data = Page.size then Digest.string data
  else Digest.string (data ^ String.make (Page.size - String.length data) '\000')

let dedup_frame t data =
  if String.length data > Page.size then
    invalid_arg "Phys_mem.dedup_frame: more than a page";
  let key = page_digest data in
  match Hashtbl.find_opt t.dedup key with
  | Some e ->
    e.d_refs <- e.d_refs + 1;
    t.dedup_refs <- t.dedup_refs + 1;
    t.dedup_hits <- t.dedup_hits + 1;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:e.d_frame.id ~b:e.d_refs Obs.Names.dedup_hit;
    e.d_frame
  | None ->
    let f = alloc_data t ~owner:dedup_owner data in
    Hashtbl.replace t.dedup key { d_frame = f; d_refs = 1 };
    Hashtbl.replace t.dedup_rev f.id key;
    t.dedup_refs <- t.dedup_refs + 1;
    f

let dedup_unref t (f : frame) =
  match Hashtbl.find_opt t.dedup_rev f.id with
  | None -> invalid_arg "Phys_mem.dedup_unref: frame is not in the dedup table"
  | Some key ->
    let e = Hashtbl.find t.dedup key in
    e.d_refs <- e.d_refs - 1;
    t.dedup_refs <- t.dedup_refs - 1;
    if e.d_refs = 0 then begin
      Hashtbl.remove t.dedup key;
      Hashtbl.remove t.dedup_rev f.id;
      (* every address space that booted over this frame is gone: its
         buffer can rejoin the free list *)
      free_frame t f
    end

let dedup_entries t = Hashtbl.length t.dedup
let dedup_refs t = t.dedup_refs
let dedup_hits t = t.dedup_hits

let shared_page t ~vpn = Hashtbl.find_opt t.shared_pages vpn

let log_share_change t vpn =
  t.share_epoch <- t.share_epoch + 1;
  t.share_log.(t.share_epoch mod share_log_size) <- vpn

let set_shared_page t ~vpn frame =
  Hashtbl.replace t.shared_pages vpn frame;
  log_share_change t vpn

let clear_shared_page t ~vpn =
  Hashtbl.remove t.shared_pages vpn;
  log_share_change t vpn

let share_epoch t = t.share_epoch

(* Replay the vpns behind epochs (seen, share_epoch] through [f].  Returns
   [false] without calling [f] when [seen] is too far behind for the ring
   to still hold every change — the caller must fall back to a full
   flush. *)
let share_changes_since t ~seen ~f =
  let cur = t.share_epoch in
  if cur - seen > share_log_size then false
  else begin
    for e = seen + 1 to cur do
      f t.share_log.(e mod share_log_size)
    done;
    true
  end
let shared_page_count t = Hashtbl.length t.shared_pages
let shared_vpns t = Hashtbl.fold (fun vpn _ acc -> vpn :: acc) t.shared_pages []

let fresh_generation t =
  let g = t.next_gen in
  t.next_gen <- t.next_gen + 1;
  g
