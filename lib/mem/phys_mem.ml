type frame = { id : int; bytes : Bytes.t; mutable owner : int }

exception Out_of_frames of { capacity : int; live : int }

type t = {
  mutable next_frame : int;
  mutable next_gen : int;
  zero : frame;
  metrics : Mem_metrics.t;
  shared_pages : (int, frame) Hashtbl.t;
      (* explicitly-shared frames by vpn: system-global so that every
         address space over this physical memory sees the same page *)
  mutable share_epoch : int;
      (* bumped on every registry change; address spaces compare it against
         the epoch they last observed and flush their TLB on mismatch — the
         simulation's stand-in for a cross-CPU TLB shootdown, without which
         a machine that cached a private translation would keep reading its
         stale frame after a sibling shares the same vpn *)
  capacity : int;  (* 0 = unbounded *)
  track_live : bool;
  live : int Atomic.t;
      (* frames allocated minus frames the GC has proven unreachable; the
         finaliser on each frame is the simulation's refcounted free list *)
  mutable peak_live : int;
  mutable on_pressure : (unit -> unit) option;
  mutable pressure_events : int;
  mutable watermark_armed : bool;
  mutable alloc_fault : (int -> bool) option;
}

(* Generation 0 is reserved: it owns the zero frame and nothing else, so no
   live address space can ever write the zero frame in place. *)
let zero_generation = 0

let create ?(capacity = 0) ?(track_live = false) () =
  if capacity < 0 then invalid_arg "Phys_mem.create: negative capacity";
  let zero = { id = 0; bytes = Bytes.make Page.size '\000'; owner = zero_generation } in
  { next_frame = 1; next_gen = 1; zero; metrics = Mem_metrics.create ();
    shared_pages = Hashtbl.create 8; share_epoch = 0;
    capacity; track_live = track_live || capacity > 0;
    live = Atomic.make 0; peak_live = 0;
    on_pressure = None; pressure_events = 0; watermark_armed = true;
    alloc_fault = None }

let metrics t = t.metrics

let zero_frame t = t.zero

let capacity t = t.capacity
let frames_live t = Atomic.get t.live
let peak_frames_live t = t.peak_live
let pressure_events t = t.pressure_events
let set_pressure_handler t f = t.on_pressure <- f
let set_alloc_fault t f = t.alloc_fault <- f

(* Finalisers registered during one major cycle run as part of the next, so
   a single [full_major] can leave just-dropped frames still counted; the
   second pass makes "unreachable now" observable in [live]. *)
let collect t =
  Gc.full_major ();
  Gc.full_major ();
  ignore t

(* Fire the pressure protocol: let the registered reclaimer shed payload
   references, then collect so the freed frames actually leave [live]. *)
let pressure t =
  t.pressure_events <- t.pressure_events + 1;
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:(Atomic.get t.live) ~b:t.capacity Obs.Names.pressure;
  (match t.on_pressure with Some f -> f () | None -> ());
  collect t

let high_watermark t = t.capacity - (t.capacity / 8)

let ensure_frame_available t =
  (match t.alloc_fault with
  | Some fail when fail t.next_frame ->
    (* Injected transient allocation failure: indistinguishable from a
       momentarily exhausted free list, so callers exercise the same
       recovery path a real out-of-frames condition takes. *)
    raise (Out_of_frames { capacity = t.capacity; live = Atomic.get t.live })
  | _ -> ());
  if t.capacity > 0 then begin
    let live = Atomic.get t.live in
    if live >= t.capacity then begin
      pressure t;
      let live = Atomic.get t.live in
      if live >= t.capacity then begin
        if Obs.Trace.enabled () then
          Obs.Trace.instant ~a:live ~b:t.capacity Obs.Names.out_of_frames;
        raise (Out_of_frames { capacity = t.capacity; live })
      end
    end
    else if live >= high_watermark t then begin
      (* High-watermark crossing: reclaim early, and only once per
         excursion above the mark, so steady state near the watermark does
         not degenerate into a collection per allocation. *)
      if t.watermark_armed then begin
        t.watermark_armed <- false;
        pressure t
      end
    end
    else t.watermark_armed <- true
  end

let account_live t f =
  if t.track_live then begin
    let live = 1 + Atomic.fetch_and_add t.live 1 in
    if live > t.peak_live then t.peak_live <- live;
    Gc.finalise (fun (_ : frame) -> Atomic.decr t.live) f
  end

let alloc t ~owner =
  ensure_frame_available t;
  let f = { id = t.next_frame; bytes = Bytes.make Page.size '\000'; owner } in
  t.next_frame <- t.next_frame + 1;
  t.metrics.frames_allocated <- t.metrics.frames_allocated + 1;
  account_live t f;
  f

let alloc_copy t ~owner src =
  let f = alloc t ~owner in
  Bytes.blit src.bytes 0 f.bytes 0 Page.size;
  t.metrics.pages_copied <- t.metrics.pages_copied + 1;
  t.metrics.bytes_copied <- t.metrics.bytes_copied + Page.size;
  f

let frames_allocated t = t.next_frame - 1

let shared_page t ~vpn = Hashtbl.find_opt t.shared_pages vpn
let set_shared_page t ~vpn frame =
  Hashtbl.replace t.shared_pages vpn frame;
  t.share_epoch <- t.share_epoch + 1

let clear_shared_page t ~vpn =
  Hashtbl.remove t.shared_pages vpn;
  t.share_epoch <- t.share_epoch + 1

let share_epoch t = t.share_epoch
let shared_page_count t = Hashtbl.length t.shared_pages
let shared_vpns t = Hashtbl.fold (fun vpn _ acc -> vpn :: acc) t.shared_pages []

let fresh_generation t =
  let g = t.next_gen in
  t.next_gen <- t.next_gen + 1;
  g
