(** Event counters for the memory subsystem.

    Every quantitative claim in the paper is ultimately about these events —
    COW faults, pages copied, snapshot captures/restores — so they are
    counted at the point where they happen and surfaced by the benches. *)

type t = {
  mutable cow_faults : int;       (** writes that had to copy a page *)
  mutable zero_fills : int;       (** demand-zero pages materialised *)
  mutable pages_copied : int;     (** page-sized copies, COW or eager *)
  mutable bytes_copied : int;
  mutable frames_allocated : int;
  mutable snapshots : int;        (** snapshot captures *)
  mutable restores : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable tlb_flushes : int;
  mutable tlb_shootdowns : int;
      (** single-entry invalidations from a targeted cross-machine
          share-epoch catch-up (vs. [tlb_flushes], which count whole-TLB
          wipes) *)
  mutable pt_walks : int;         (** page-table / trie lookups on TLB miss *)
  mutable pt_node_copies : int;   (** EPT backend: page-table pages COW'd *)
  mutable frames_freed : int;     (** frames explicitly released to the free list *)
  mutable frames_recycled : int;  (** allocations served from a recycled buffer *)
  mutable zero_fills_elided : int;
      (** allocations that skipped the zero-fill because the whole page was
          about to be overwritten (COW copies, eager data maps) *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val copy : t -> t
val diff : t -> t -> t
(** [diff after before] is the per-field difference. *)

val pp : Format.formatter -> t -> unit
