(** Simulated physical memory: a frame allocator with generation ownership.

    A frame is one 4 KiB page of backing store plus the id of the
    address-space *generation* that owns it.  Ownership drives copy-on-write:
    a store through a mapping whose frame belongs to an older generation must
    first copy the frame (see {!Addr_space}).  Frames unreachable from any
    live snapshot are reclaimed by the OCaml GC, standing in for the
    refcounted physical-page free list a real libOS would keep. *)

type frame = private {
  id : int;                 (** unique stamp, used for space accounting *)
  bytes : Bytes.t;          (** always {!Page.size} bytes *)
  mutable owner : int;      (** generation allowed to write in place *)
}

type t

val create : unit -> t

val metrics : t -> Mem_metrics.t

val zero_frame : t -> frame
(** The shared all-zeroes frame backing demand-zero mappings.  Its owner is a
    reserved generation that never matches a live one, so the first store
    always COWs it. *)

val alloc : t -> owner:int -> frame
(** A fresh zero-filled frame owned by [owner]. *)

val alloc_copy : t -> owner:int -> frame -> frame
(** A fresh frame owned by [owner] whose contents copy the given frame; this
    is the COW-fault service path and is counted in the metrics. *)

val frames_allocated : t -> int

val shared_page : t -> vpn:int -> frame option
(** Explicitly-shared frames are registered system-globally so that every
    address space over this physical memory resolves the same frame — how
    §3.1's "explicit sharing mechanisms" stay coherent across parallel
    workers. *)

val set_shared_page : t -> vpn:int -> frame -> unit
val clear_shared_page : t -> vpn:int -> unit
val shared_page_count : t -> int
val shared_vpns : t -> int list

val share_epoch : t -> int
(** Bumped on every sharing-registry change.  Address spaces flush their
    TLB when the epoch moves past the one they last observed — the
    simulated TLB shootdown that keeps sibling machines coherent when one
    of them shares (or tears down) a page the others had translated
    privately. *)

val fresh_generation : t -> int
(** Monotonically increasing generation ids; generation 0 is reserved for
    the zero frame. *)
