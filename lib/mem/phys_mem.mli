(** Simulated physical memory: a frame allocator with generation ownership.

    A frame is one 4 KiB page of backing store plus the id of the
    address-space *generation* that owns it.  Ownership drives copy-on-write:
    a store through a mapping whose frame belongs to an older generation must
    first copy the frame (see {!Addr_space}).  Frames unreachable from any
    live snapshot are reclaimed by the OCaml GC, standing in for the
    refcounted physical-page free list a real libOS would keep. *)

type frame = private {
  mutable id : int;
      (** unique stamp, used for space accounting and decode-cache keys;
          re-stamped by {!adopt_frame} because adoption ends the frame's
          never-written-in-place phase *)
  bytes : Bytes.t;          (** always {!Page.size} bytes *)
  mutable owner : int;      (** generation allowed to write in place *)
  mutable freed : bool;     (** released via {!free_frame}; any further use
                                through a page map is a lifecycle bug *)
  mutable account : int;    (** session (tenant) the frame's live slot is
                                charged to; 0 = shared/unattributed *)
}

type t

exception Out_of_frames of { capacity : int; live : int }
(** Raised by {!alloc} when the frame capacity is exhausted and the
    pressure protocol could not reclaim anything, or when an injected
    allocation fault fires (see {!set_alloc_fault}).  Schedulers treat it
    as a recoverable per-path failure, not a crash. *)

val create :
  ?capacity:int -> ?track_live:bool -> ?recycle:bool -> ?poison:bool ->
  unit -> t
(** [capacity] (default 0 = unbounded) bounds the number of
    simultaneously-live frames.  [track_live] (implied by a positive
    capacity) enables live-frame accounting: every frame carries a GC
    finaliser that decrements the live count when the frame becomes
    unreachable — the simulation's stand-in for the refcounted free list a
    real libOS would keep.

    [recycle] (default [true]) enables the explicit free list:
    {!free_frame} keeps released page buffers for reuse and
    full-page-overwrite allocations ({!alloc_copy}, {!alloc_data}) skip
    the zero fill.  With [recycle:false] the allocator reproduces the
    GC-only baseline bit for bit — the reference the fuzz oracle's
    recycling pipeline is compared against.  [poison] (default [false])
    fills released buffers with a recognizable byte immediately, so a
    frame freed while still reachable diverges loudly instead of
    silently. *)

val metrics : t -> Mem_metrics.t

(** {1 Frame budget and memory pressure} *)

val capacity : t -> int
(** The configured frame capacity; 0 means unbounded. *)

val frames_live : t -> int
(** Frames allocated and not yet proven unreachable by the GC.  Only
    meaningful when live tracking is enabled. *)

val peak_frames_live : t -> int
(** High-water mark of {!frames_live} — with a capacity set, never exceeds
    it: allocation fails rather than overshoot. *)

val pressure_events : t -> int
(** Times the pressure protocol ran (watermark crossings plus hard
    capacity hits). *)

val below_watermark : t -> bool
(** [true] when {!frames_live} sits below the pressure watermark (⅞ of
    capacity) — the pressure handler's stopping condition: once its
    explicit frees bring the count back under, shedding more payload
    buys nothing.  Always [false] on an unbounded allocator. *)

val set_pressure_handler : t -> (unit -> unit) option -> unit
(** The reclaimer invoked under memory pressure: at the high watermark
    (⅞ of capacity, once per excursion above it) and again before giving
    up at the hard capacity limit.  The handler should drop references to
    reclaimable frames (e.g. evict snapshot payloads); the allocator then
    collects and re-checks.  Called from inside {!alloc}, so it must not
    allocate frames itself. *)

val note_delta_bytes : t -> int -> unit
(** Adjust (signed) the count of demoted-snapshot delta bytes held in host
    memory by the tiered payload store.  Accounting only — the budget is
    reported next to the frame numbers, not charged against {!capacity}:
    in the substitution table the paper's compressed snapshot store maps
    to host heap outside guest frame RAM. *)

val delta_bytes_held : t -> int
val peak_delta_bytes : t -> int

val note_spill_bytes : t -> int -> unit
(** Adjust (signed) the bytes of deltas currently spilled to host disk
    (tier 2 of the payload store). *)

val spill_bytes_held : t -> int

val set_alloc_fault : t -> (int -> bool) option -> unit
(** Deterministic fault injection: the callback is consulted with the
    would-be frame ordinal on every allocation attempt; returning [true]
    makes that attempt raise {!Out_of_frames}.  A retried allocation
    consults it again with the same ordinal, so single-shot plans must
    consume their trigger. *)

val zero_frame : t -> frame
(** The shared all-zeroes frame backing demand-zero mappings.  Its owner is a
    reserved generation that never matches a live one, so the first store
    always COWs it. *)

val alloc : ?account:int -> t -> owner:int -> frame
(** A fresh zero-filled frame owned by [owner] — genuine demand-zero
    materialisation, so a recycled buffer is re-zeroed here.  [account]
    (default 0 = unattributed) charges the frame's live slot to a session
    opened with {!fresh_account}. *)

val alloc_copy : t -> ?account:int -> owner:int -> frame -> frame
(** A fresh frame owned by [owner] whose contents copy the given frame; this
    is the COW-fault service path and is counted in the metrics.  Under
    [recycle] the backing buffer is pooled or uninitialised (never
    zeroed): the blit overwrites every byte. *)

val alloc_data : t -> ?account:int -> owner:int -> string -> frame
(** A fresh frame holding [data] (at most a page) followed by zeroes.
    Under [recycle] only the tail beyond [data] is cleared. *)

val free_frame : t -> frame -> unit
(** Explicitly release a frame: its live slot is returned immediately and
    (under [recycle]) its buffer joins the free list for the next
    allocation.  The caller asserts no live page map, snapshot, or TLB can
    reach the frame any more — see {!Addr_space.release_snapshot} for the
    discipline that makes the assertion checkable.  Raises
    [Invalid_argument] on a double free or on the zero frame; shared
    frames must not be passed. *)

val adopt_frame : t -> frame -> owner:int -> unit
(** Transfer the frame to generation [owner] so the next store hits it in
    place instead of COWing — the restore-last-reference fast path.  The
    frame id is re-stamped (decode caches key on ids under the
    frames-never-change-in-place invariant). *)

val recycling : t -> bool
val poisoning : t -> bool
val set_poison : t -> bool -> unit
val free_buffers : t -> int
(** Buffers currently pooled in the free list. *)

val frames_allocated : t -> int

val shared_page : t -> vpn:int -> frame option
(** Explicitly-shared frames are registered system-globally so that every
    address space over this physical memory resolves the same frame — how
    §3.1's "explicit sharing mechanisms" stay coherent across parallel
    workers. *)

val set_shared_page : t -> vpn:int -> frame -> unit
val clear_shared_page : t -> vpn:int -> unit
val shared_page_count : t -> int
val shared_vpns : t -> int list

val share_epoch : t -> int
(** Bumped on every sharing-registry change.  Address spaces invalidate
    stale translations when the epoch moves past the one they last
    observed — the simulated TLB shootdown that keeps sibling machines
    coherent when one of them shares (or tears down) a page the others had
    translated privately. *)

val share_changes_since : t -> seen:int -> f:(int -> unit) -> bool
(** Replay, oldest first, the vpn behind every sharing-registry change in
    epochs [(seen, share_epoch t]] through [f] and return [true] — the
    targeted shootdown: an address space that fell behind invalidates just
    those entries instead of wiping its whole TLB.  Returns [false]
    without calling [f] when [seen] is too far behind the bounded change
    ring, in which case the caller must fall back to a full flush. *)

val fresh_generation : t -> int
(** Monotonically increasing generation ids; generation 0 is reserved for
    the zero frame. *)

(** {1 Per-account (per-tenant) frame accounting}

    Accounts attribute live frames to the session that allocated them —
    the quantity a multi-tenant pool's per-tenant frame budgets are
    enforced against.  Accounting requires live tracking (a positive
    capacity, or [track_live:true]); account 0 is the shared pool and is
    never tracked. *)

val fresh_account : t -> int
(** A fresh non-zero account id. *)

val account_frames_live : t -> int -> int
(** Frames charged to the account and not yet freed or proven unreachable.
    Always 0 for account 0. *)

(** {1 Content-addressed frame dedup}

    Hash-consed read-only frames shared across the address spaces (tenants)
    that boot the same guest image.  Deduped frames are owned by a reserved
    pseudo-generation that can never match a live one, so every store
    through a mapping of one raises a COW fault and copies it private — the
    same frame-generation discipline that makes snapshots sound makes this
    sharing invisible.  References are boot-lifetime: {!dedup_frame} takes
    one, {!Addr_space.drop_dedup_refs} gives them back at teardown, and the
    frame is freed when the last reference drains. *)

val dedup_frame : t -> string -> frame
(** The hash-consed frame holding [data] (at most a page, zero-padded),
    minting it on first sight; bumps the entry's refcount either way. *)

val dedup_unref : t -> frame -> unit
(** Drop one reference; frees the frame and its table entry at zero.
    Raises [Invalid_argument] if the frame is not a dedup-table entry. *)

val dedup_entries : t -> int
(** Distinct hash-consed frames currently in the table. *)

val dedup_refs : t -> int
(** Outstanding references over all entries; 0 once every address space
    that booted through the table has been torn down. *)

val dedup_hits : t -> int
(** {!dedup_frame} calls served by an existing entry — each one is a frame
    some earlier tenant already paid for. *)

val next_frame_ordinal : t -> int
(** The ordinal the next allocated frame will carry — the value an
    injected allocation fault ({!set_alloc_fault}) is matched against,
    exposed so tests and benches can arm a fault for exactly the next
    allocation. *)
