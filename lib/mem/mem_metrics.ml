type t = {
  mutable cow_faults : int;
  mutable zero_fills : int;
  mutable pages_copied : int;
  mutable bytes_copied : int;
  mutable frames_allocated : int;
  mutable snapshots : int;
  mutable restores : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable tlb_flushes : int;
  mutable tlb_shootdowns : int;
  mutable pt_walks : int;
  mutable pt_node_copies : int;
  mutable frames_freed : int;
  mutable frames_recycled : int;
  mutable zero_fills_elided : int;
}

let create () =
  { cow_faults = 0; zero_fills = 0; pages_copied = 0; bytes_copied = 0;
    frames_allocated = 0; snapshots = 0; restores = 0; tlb_hits = 0;
    tlb_misses = 0; tlb_flushes = 0; tlb_shootdowns = 0; pt_walks = 0;
    pt_node_copies = 0;
    frames_freed = 0; frames_recycled = 0; zero_fills_elided = 0 }

let reset t =
  t.cow_faults <- 0; t.zero_fills <- 0; t.pages_copied <- 0;
  t.bytes_copied <- 0; t.frames_allocated <- 0; t.snapshots <- 0;
  t.restores <- 0; t.tlb_hits <- 0; t.tlb_misses <- 0; t.tlb_flushes <- 0;
  t.tlb_shootdowns <- 0; t.pt_walks <- 0; t.pt_node_copies <- 0;
  t.frames_freed <- 0; t.frames_recycled <- 0; t.zero_fills_elided <- 0

let add acc x =
  acc.cow_faults <- acc.cow_faults + x.cow_faults;
  acc.zero_fills <- acc.zero_fills + x.zero_fills;
  acc.pages_copied <- acc.pages_copied + x.pages_copied;
  acc.bytes_copied <- acc.bytes_copied + x.bytes_copied;
  acc.frames_allocated <- acc.frames_allocated + x.frames_allocated;
  acc.snapshots <- acc.snapshots + x.snapshots;
  acc.restores <- acc.restores + x.restores;
  acc.tlb_hits <- acc.tlb_hits + x.tlb_hits;
  acc.tlb_misses <- acc.tlb_misses + x.tlb_misses;
  acc.tlb_flushes <- acc.tlb_flushes + x.tlb_flushes;
  acc.tlb_shootdowns <- acc.tlb_shootdowns + x.tlb_shootdowns;
  acc.pt_walks <- acc.pt_walks + x.pt_walks;
  acc.pt_node_copies <- acc.pt_node_copies + x.pt_node_copies;
  acc.frames_freed <- acc.frames_freed + x.frames_freed;
  acc.frames_recycled <- acc.frames_recycled + x.frames_recycled;
  acc.zero_fills_elided <- acc.zero_fills_elided + x.zero_fills_elided

let copy x =
  let t = create () in
  add t x; t

let diff a b =
  { cow_faults = a.cow_faults - b.cow_faults;
    zero_fills = a.zero_fills - b.zero_fills;
    pages_copied = a.pages_copied - b.pages_copied;
    bytes_copied = a.bytes_copied - b.bytes_copied;
    frames_allocated = a.frames_allocated - b.frames_allocated;
    snapshots = a.snapshots - b.snapshots;
    restores = a.restores - b.restores;
    tlb_hits = a.tlb_hits - b.tlb_hits;
    tlb_misses = a.tlb_misses - b.tlb_misses;
    tlb_flushes = a.tlb_flushes - b.tlb_flushes;
    tlb_shootdowns = a.tlb_shootdowns - b.tlb_shootdowns;
    pt_walks = a.pt_walks - b.pt_walks;
    pt_node_copies = a.pt_node_copies - b.pt_node_copies;
    frames_freed = a.frames_freed - b.frames_freed;
    frames_recycled = a.frames_recycled - b.frames_recycled;
    zero_fills_elided = a.zero_fills_elided - b.zero_fills_elided }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cow_faults=%d zero_fills=%d pages_copied=%d bytes_copied=%d@ \
     frames_allocated=%d snapshots=%d restores=%d@ \
     tlb: hits=%d misses=%d flushes=%d shootdowns=%d pt_walks=%d \
     pt_node_copies=%d@ \
     frames_freed=%d frames_recycled=%d zero_fills_elided=%d@]"
    t.cow_faults t.zero_fills t.pages_copied t.bytes_copied
    t.frames_allocated t.snapshots t.restores t.tlb_hits t.tlb_misses
    t.tlb_flushes t.tlb_shootdowns t.pt_walks t.pt_node_copies
    t.frames_freed t.frames_recycled t.zero_fills_elided
