(** Guest microbenchmarks for the E9 interpreter-dispatch ablation:
    pure-ALU straight-line churn (the work-heavy ≥2× gate row) and the
    data/code-page-separation cliff pair. *)

val default_unroll : int

val work_heavy : ?unroll:int -> iters:int -> unit -> Isa.Asm.image
(** [Locality]'s pseudo-random ALU work loop unrolled [unroll]-fold
    (default {!default_unroll}): the hot path is one long basic block, so
    per-block dispatch amortises the fetch-frame walk over [3*unroll + 2]
    instructions. *)

val work_heavy_insns : ?unroll:int -> iters:int -> unit -> int
(** Instructions {!work_heavy} retires to completion. *)

val cliff : separate_data:bool -> iters:int -> Isa.Asm.image
(** Read-modify-write loop over one counter cell.  [separate_data] puts
    the cell behind [align 4096] (the CLAUDE.md discipline); without it
    the cell shares the code page, whose first store makes the page
    permanently uncacheable — no decode memoisation, no fused blocks. *)

val cliff_insns : iters:int -> int
(** Instructions {!cliff} retires to completion (either layout). *)
