open Isa.Asm
module R = Isa.Reg

(* Microbenchmarks for the E9 interpreter-dispatch ablation.  Unlike the
   search workloads these have no guess tree: they isolate the dispatch
   loop itself so the three modes (no cache / per-instruction cache /
   basic-block superinstructions) differ only in fetch-and-decode cost. *)

let default_unroll = 16

(* Straight-line ALU churn: the work loop of [Locality.program] unrolled
   [unroll]-fold, so the hot path is one [3*unroll + 2]-instruction basic
   block instead of a 5-instruction one.  This is the shape E3's
   work-heavy rows spend ~98% of their time in — compilers unroll hot
   ALU loops exactly like this — and it is the row the ≥2× block-vs-insn
   gate runs on. *)
let work_heavy ?(unroll = default_unroll) ~iters () =
  if iters <= 0 || unroll <= 0 then invalid_arg "Dispatch_micro.work_heavy";
  let step =
    [ imul R.r9 (i 1103515245); add R.r9 (i 12345); and_ R.r9 (i 0x3FFFFFFF) ]
  in
  let body =
    [ label "main"; mov R.r9 (i 1); mov R.r10 (i iters); label "work" ]
    @ List.concat (List.init unroll (fun _ -> step))
    @ [ dec R.r10; jne "work" ]
    @ Wl_common.sys_exit ~status:0
  in
  assemble ~entry:"main" body

let work_heavy_insns ?(unroll = default_unroll) ~iters () =
  ignore (work_heavy ~unroll ~iters ());
  (* main prologue (2) + iters * (unrolled body + dec/jne) + exit (3) *)
  2 + (iters * ((3 * unroll) + 2)) + 3

(* The data/code-page-separation cliff: a loop that read-modify-writes a
   counter cell, with the cell either on its own page ([separate_data =
   true], the [align 4096] discipline) or on the same page as the code.
   In the mixed layout the first store COWs the code page into the
   current generation, where it is writable in place and therefore
   permanently uncacheable — every later fetch decodes from scratch and
   no block is ever fused.  E9 measures the ratio. *)
let cliff ~separate_data ~iters =
  if iters <= 0 then invalid_arg "Dispatch_micro.cliff";
  let body =
    [ label "main"; movl R.r8 "cell"; mov R.r10 (i iters); label "loop_" ]
    @ [ ld R.r9 (R.r8 @+ 0);
        imul R.r9 (i 1103515245);
        add R.r9 (i 12345);
        and_ R.r9 (i 0x3FFFFFFF);
        st (R.r8 @+ 0) R.r9;
        dec R.r10;
        jne "loop_" ]
    @ Wl_common.sys_exit ~status:0
    @ (if separate_data then [ align 4096 ] else [])
    @ [ label "cell"; qword 0 ]
  in
  assemble ~entry:"main" body

let cliff_insns ~iters = 3 + (iters * 7) + 3
