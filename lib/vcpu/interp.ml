module As = Mem.Addr_space

type fault =
  | Page_fault of { rip : int; addr : int; access : As.access }
  | Div_by_zero of { rip : int }
  | Invalid_opcode of { rip : int; opcode : int }
  | Bad_shift of { rip : int; count : int }

type vmexit =
  | Syscall
  | Halt
  | Fault of fault
  | Out_of_fuel

exception Exit_run of vmexit

(* Unsigned comparison of native ints (flip the sign bit). *)
let unsigned_lt a b = a lxor min_int < b lxor min_int

let effective_addr (cpu : Cpu.t) (m : Isa.Insn.mem) =
  let base = match m.base with None -> 0 | Some r -> Cpu.get cpu r in
  let index =
    match m.index with None -> 0 | Some (r, scale) -> Cpu.get cpu r * scale
  in
  base + index + m.disp

let operand_value cpu = function
  | Isa.Insn.Reg r -> Cpu.get cpu r
  | Isa.Insn.Imm v -> v

let set_zs (cpu : Cpu.t) v =
  cpu.flags.zf <- v = 0;
  cpu.flags.sf <- v < 0

(* Execute one decoded instruction whose size is [sz]; returns an exit or
   unit.  [cpu.rip] still points at the instruction on entry.  All helpers
   are top-level so the hot loop allocates nothing per instruction. *)
let[@inline] retire_at (cpu : Cpu.t) addr =
  cpu.rip <- addr;
  cpu.retired <- cpu.retired + 1

let[@inline] push_word (cpu : Cpu.t) aspace v =
  let sp = Cpu.get cpu Isa.Reg.rsp - 8 in
  As.write_u64 aspace sp v;
  Cpu.set cpu Isa.Reg.rsp sp

let[@inline] pop_word (cpu : Cpu.t) aspace =
  let sp = Cpu.get cpu Isa.Reg.rsp in
  let v = As.read_u64 aspace sp in
  Cpu.set cpu Isa.Reg.rsp (sp + 8);
  v

let exec (cpu : Cpu.t) aspace insn sz : vmexit option =
  let open Isa.Insn in
  let next = cpu.rip + sz in
  match insn with
  | Nop ->
    retire_at cpu next;
    None
  | Hlt ->
    cpu.retired <- cpu.retired + 1;
    Some Halt
  | Syscall ->
    (* rip advances first so the libOS can resume the guest after serving
       the call (or restart a guess from a snapshot taken here). *)
    retire_at cpu next;
    Some Syscall
  | Ret ->
    let target = pop_word cpu aspace in
    retire_at cpu target;
    None
  | Mov (r, op) ->
    Cpu.set cpu r (operand_value cpu op);
    retire_at cpu next;
    None
  | Lea (r, m) ->
    Cpu.set cpu r (effective_addr cpu m);
    retire_at cpu next;
    None
  | Ld (Q, r, m) ->
    Cpu.set cpu r (As.read_u64 aspace (effective_addr cpu m));
    retire_at cpu next;
    None
  | Ld (B, r, m) ->
    Cpu.set cpu r (As.read_u8 aspace (effective_addr cpu m));
    retire_at cpu next;
    None
  | St (Q, m, r) ->
    As.write_u64 aspace (effective_addr cpu m) (Cpu.get cpu r);
    retire_at cpu next;
    None
  | St (B, m, r) ->
    As.write_u8 aspace (effective_addr cpu m) (Cpu.get cpu r);
    retire_at cpu next;
    None
  | Sti (Q, m, v) ->
    As.write_u64 aspace (effective_addr cpu m) v;
    retire_at cpu next;
    None
  | Sti (B, m, v) ->
    As.write_u8 aspace (effective_addr cpu m) v;
    retire_at cpu next;
    None
  | Bin (op, r, operand) ->
    let a = Cpu.get cpu r in
    let b = operand_value cpu operand in
    let v =
      match op with
      | Add -> a + b
      | Sub -> a - b
      | Imul -> a * b
      | Div ->
        if b = 0 then raise (Exit_run (Fault (Div_by_zero { rip = cpu.rip })));
        a / b
      | Rem ->
        if b = 0 then raise (Exit_run (Fault (Div_by_zero { rip = cpu.rip })));
        a mod b
      | And -> a land b
      | Or -> a lor b
      | Xor -> a lxor b
      | Shl | Shr | Sar ->
        if b < 0 || b > 62 then
          raise (Exit_run (Fault (Bad_shift { rip = cpu.rip; count = b })));
        (match op with
        | Shl -> a lsl b
        | Shr -> a lsr b
        | Sar -> a asr b
        | Add | Sub | Imul | Div | Rem | And | Or | Xor -> assert false)
    in
    Cpu.set cpu r v;
    set_zs cpu v;
    retire_at cpu next;
    None
  | Un (op, r) ->
    let a = Cpu.get cpu r in
    let v =
      match op with Neg -> -a | Not -> lnot a | Inc -> a + 1 | Dec -> a - 1
    in
    Cpu.set cpu r v;
    set_zs cpu v;
    retire_at cpu next;
    None
  | Cmp (r, operand) ->
    let a = Cpu.get cpu r in
    let b = operand_value cpu operand in
    cpu.flags.zf <- a = b;
    cpu.flags.sf <- a - b < 0;
    cpu.flags.lt_s <- a < b;
    cpu.flags.lt_u <- unsigned_lt a b;
    retire_at cpu next;
    None
  | Test (r, operand) ->
    let v = Cpu.get cpu r land operand_value cpu operand in
    cpu.flags.zf <- v = 0;
    cpu.flags.sf <- v < 0;
    cpu.flags.lt_s <- false;
    cpu.flags.lt_u <- false;
    retire_at cpu next;
    None
  | Jmp target ->
    retire_at cpu target;
    None
  | Jcc (c, target) ->
    retire_at cpu (if Cpu.eval_cond cpu c then target else next);
    None
  | Call target ->
    push_word cpu aspace next;
    retire_at cpu target;
    None
  | Push op ->
    push_word cpu aspace (operand_value cpu op);
    retire_at cpu next;
    None
  | Pop r ->
    Cpu.set cpu r (pop_word cpu aspace);
    retire_at cpu next;
    None
  | Setcc (c, r) ->
    Cpu.set cpu r (if Cpu.eval_cond cpu c then 1 else 0);
    retire_at cpu next;
    None

(* Decoded instructions are memoised per immutable frame: Addr_space
   guarantees that a frame owned by a retired generation never changes in
   place (writes COW into a fresh frame with a fresh id), so per-frame
   decode arrays never need invalidation.  The cache keeps the last-used
   frame's array in a hot slot — guest code is typically one or two frames.
   Instructions close to the page edge (they may cross it) always take the
   slow path. *)
let max_insn_bytes = 24

type icache = {
  mutable hot_fid : int;
  mutable hot_arr : (Isa.Insn.t * int) option array;
  frames : (int, (Isa.Insn.t * int) option array) Hashtbl.t;
  (* Observability counters, kept off the per-instruction hit path: the
     hit count is derivable as retired - misses - slow_decodes. *)
  mutable misses : int; (* cacheable but not yet decoded into the cache *)
  mutable slow_decodes : int; (* uncacheable: page edge or mutable frame *)
}

let create_icache () =
  { hot_fid = -1; hot_arr = [||]; frames = Hashtbl.create 16;
    misses = 0; slow_decodes = 0 }

let icache_counts cache = (cache.misses, cache.slow_decodes)

let decode_at ?icache (cpu : Cpu.t) aspace rip =
  let slow () =
    let fetch addr = As.read_u8 aspace addr in
    Isa.Encode.decode ~fetch rip
  in
  ignore cpu;
  match icache with
  | None -> slow ()
  | Some cache ->
    let offset = Mem.Page.offset_of_addr rip in
    if offset > Mem.Page.size - max_insn_bytes then begin
      cache.slow_decodes <- cache.slow_decodes + 1;
      slow ()
    end
    else begin
      let frame = As.reading_frame aspace rip in
      if frame.Mem.Phys_mem.owner = As.generation aspace then begin
        cache.slow_decodes <- cache.slow_decodes + 1;
        slow ()
      end
      else begin
        if cache.hot_fid <> frame.Mem.Phys_mem.id then begin
          let arr =
            match Hashtbl.find_opt cache.frames frame.Mem.Phys_mem.id with
            | Some arr -> arr
            | None ->
              let arr = Array.make Mem.Page.size None in
              Hashtbl.replace cache.frames frame.Mem.Phys_mem.id arr;
              arr
          in
          cache.hot_fid <- frame.Mem.Phys_mem.id;
          cache.hot_arr <- arr
        end;
        match Array.unsafe_get cache.hot_arr offset with
        | Some decoded -> decoded
        | None ->
          cache.misses <- cache.misses + 1;
          let bytes = frame.Mem.Phys_mem.bytes in
          let fetch addr = Bytes.get_uint8 bytes (offset + (addr - rip)) in
          let decoded = Isa.Encode.decode ~fetch rip in
          cache.hot_arr.(offset) <- Some decoded;
          decoded
      end
    end

let step_inner ?icache (cpu : Cpu.t) aspace =
  let rip = cpu.rip in
  match decode_at ?icache cpu aspace rip with
  | exception As.Page_fault { addr; access } ->
    Some (Fault (Page_fault { rip; addr; access }))
  | exception Isa.Encode.Invalid_opcode { addr = _; opcode } ->
    Some (Fault (Invalid_opcode { rip; opcode }))
  | insn, sz -> (
    match exec cpu aspace insn sz with
    | result -> result
    | exception As.Page_fault { addr; access } ->
      cpu.rip <- rip;
      (* faults leave rip at the faulting instruction *)
      Some (Fault (Page_fault { rip; addr; access }))
    | exception Exit_run e ->
      cpu.rip <- rip;
      Some e)

let step cpu aspace = step_inner cpu aspace

let run ?icache cpu aspace ~fuel =
  let rec loop remaining =
    if remaining <= 0 then Out_of_fuel
    else
      match step_inner ?icache cpu aspace with
      | None -> loop (remaining - 1)
      | Some e -> e
  in
  loop fuel

let pp_fault fmt = function
  | Page_fault { rip; addr; access } ->
    Format.fprintf fmt "page fault at rip=0x%x addr=0x%x (%s)" rip addr
      (match access with As.Read -> "read" | As.Write -> "write")
  | Div_by_zero { rip } -> Format.fprintf fmt "division by zero at rip=0x%x" rip
  | Invalid_opcode { rip; opcode } ->
    Format.fprintf fmt "invalid opcode 0x%x at rip=0x%x" opcode rip
  | Bad_shift { rip; count } ->
    Format.fprintf fmt "shift count %d out of range at rip=0x%x" count rip

let pp_vmexit fmt = function
  | Syscall -> Format.pp_print_string fmt "syscall"
  | Halt -> Format.pp_print_string fmt "halt"
  | Fault f -> Format.fprintf fmt "fault: %a" pp_fault f
  | Out_of_fuel -> Format.pp_print_string fmt "out of fuel"
