module As = Mem.Addr_space

type fault =
  | Page_fault of { rip : int; addr : int; access : As.access }
  | Div_by_zero of { rip : int }
  | Invalid_opcode of { rip : int; opcode : int }
  | Bad_shift of { rip : int; count : int }

type vmexit =
  | Syscall
  | Halt
  | Fault of fault
  | Out_of_fuel

exception Exit_run of vmexit

(* Unsigned comparison of native ints (flip the sign bit). *)
let unsigned_lt a b = a lxor min_int < b lxor min_int

let effective_addr (cpu : Cpu.t) (m : Isa.Insn.mem) =
  let base = match m.base with None -> 0 | Some r -> Cpu.get cpu r in
  let index =
    match m.index with None -> 0 | Some (r, scale) -> Cpu.get cpu r * scale
  in
  base + index + m.disp

let operand_value cpu = function
  | Isa.Insn.Reg r -> Cpu.get cpu r
  | Isa.Insn.Imm v -> v

let set_zs (cpu : Cpu.t) v =
  cpu.flags.zf <- v = 0;
  cpu.flags.sf <- v < 0

(* Execute one decoded instruction whose size is [sz]; returns an exit or
   unit.  [cpu.rip] still points at the instruction on entry.  All helpers
   are top-level so the hot loop allocates nothing per instruction. *)
let[@inline] retire_at (cpu : Cpu.t) addr =
  cpu.rip <- addr;
  cpu.retired <- cpu.retired + 1

let[@inline] push_word (cpu : Cpu.t) aspace v =
  let sp = Cpu.get cpu Isa.Reg.rsp - 8 in
  As.write_u64 aspace sp v;
  Cpu.set cpu Isa.Reg.rsp sp

let[@inline] pop_word (cpu : Cpu.t) aspace =
  let sp = Cpu.get cpu Isa.Reg.rsp in
  let v = As.read_u64 aspace sp in
  Cpu.set cpu Isa.Reg.rsp (sp + 8);
  v

let exec (cpu : Cpu.t) aspace insn sz : vmexit option =
  let open Isa.Insn in
  let next = cpu.rip + sz in
  match insn with
  | Nop ->
    retire_at cpu next;
    None
  | Hlt ->
    cpu.retired <- cpu.retired + 1;
    Some Halt
  | Syscall ->
    (* rip advances first so the libOS can resume the guest after serving
       the call (or restart a guess from a snapshot taken here). *)
    retire_at cpu next;
    Some Syscall
  | Ret ->
    let target = pop_word cpu aspace in
    retire_at cpu target;
    None
  | Mov (r, op) ->
    Cpu.set cpu r (operand_value cpu op);
    retire_at cpu next;
    None
  | Lea (r, m) ->
    Cpu.set cpu r (effective_addr cpu m);
    retire_at cpu next;
    None
  | Ld (Q, r, m) ->
    Cpu.set cpu r (As.read_u64 aspace (effective_addr cpu m));
    retire_at cpu next;
    None
  | Ld (B, r, m) ->
    Cpu.set cpu r (As.read_u8 aspace (effective_addr cpu m));
    retire_at cpu next;
    None
  | St (Q, m, r) ->
    As.write_u64 aspace (effective_addr cpu m) (Cpu.get cpu r);
    retire_at cpu next;
    None
  | St (B, m, r) ->
    As.write_u8 aspace (effective_addr cpu m) (Cpu.get cpu r);
    retire_at cpu next;
    None
  | Sti (Q, m, v) ->
    As.write_u64 aspace (effective_addr cpu m) v;
    retire_at cpu next;
    None
  | Sti (B, m, v) ->
    As.write_u8 aspace (effective_addr cpu m) v;
    retire_at cpu next;
    None
  | Bin (op, r, operand) ->
    let a = Cpu.get cpu r in
    let b = operand_value cpu operand in
    let v =
      match op with
      | Add -> a + b
      | Sub -> a - b
      | Imul -> a * b
      | Div ->
        if b = 0 then raise (Exit_run (Fault (Div_by_zero { rip = cpu.rip })));
        a / b
      | Rem ->
        if b = 0 then raise (Exit_run (Fault (Div_by_zero { rip = cpu.rip })));
        a mod b
      | And -> a land b
      | Or -> a lor b
      | Xor -> a lxor b
      | Shl | Shr | Sar ->
        if b < 0 || b > 62 then
          raise (Exit_run (Fault (Bad_shift { rip = cpu.rip; count = b })));
        (match op with
        | Shl -> a lsl b
        | Shr -> a lsr b
        | Sar -> a asr b
        | Add | Sub | Imul | Div | Rem | And | Or | Xor -> assert false)
    in
    Cpu.set cpu r v;
    set_zs cpu v;
    retire_at cpu next;
    None
  | Un (op, r) ->
    let a = Cpu.get cpu r in
    let v =
      match op with Neg -> -a | Not -> lnot a | Inc -> a + 1 | Dec -> a - 1
    in
    Cpu.set cpu r v;
    set_zs cpu v;
    retire_at cpu next;
    None
  | Cmp (r, operand) ->
    let a = Cpu.get cpu r in
    let b = operand_value cpu operand in
    cpu.flags.zf <- a = b;
    cpu.flags.sf <- a - b < 0;
    cpu.flags.lt_s <- a < b;
    cpu.flags.lt_u <- unsigned_lt a b;
    retire_at cpu next;
    None
  | Test (r, operand) ->
    let v = Cpu.get cpu r land operand_value cpu operand in
    cpu.flags.zf <- v = 0;
    cpu.flags.sf <- v < 0;
    cpu.flags.lt_s <- false;
    cpu.flags.lt_u <- false;
    retire_at cpu next;
    None
  | Jmp target ->
    retire_at cpu target;
    None
  | Jcc (c, target) ->
    retire_at cpu (if Cpu.eval_cond cpu c then target else next);
    None
  | Call target ->
    push_word cpu aspace next;
    retire_at cpu target;
    None
  | Push op ->
    push_word cpu aspace (operand_value cpu op);
    retire_at cpu next;
    None
  | Pop r ->
    Cpu.set cpu r (pop_word cpu aspace);
    retire_at cpu next;
    None
  | Setcc (c, r) ->
    Cpu.set cpu r (if Cpu.eval_cond cpu c then 1 else 0);
    retire_at cpu next;
    None

(* Decoded instructions are memoised per immutable frame: Addr_space
   guarantees that a frame owned by a retired generation never changes in
   place (writes COW into a fresh frame with a fresh id), so per-frame
   decode arrays never need invalidation.  The cache keeps the last-used
   frame's array in a hot slot — guest code is typically one or two frames.
   Instructions close to the page edge (they may cross it) always take the
   slow path.

   On top of the per-instruction arrays sits basic-block superinstruction
   dispatch (the default): a cache miss decodes forward through
   straight-line code — stopping at control flow, [syscall]/[hlt], the
   page edge, and a maximum block length — and fuses the run into a
   preassembled instruction array.  Dispatch then executes whole blocks,
   resolving the fetch frame once per block instead of once per
   instruction.  Invalidation rides the same frame-generation discipline
   (blocks are keyed to retired-generation frame ids that never change in
   place); the one case the per-block grain adds is a store COWing the
   block's own code page mid-block (self-modifying straight-line code),
   which is caught by re-checking the fetch mapping after every fused
   store and splitting the block there. *)
let max_insn_bytes = 24
let max_block_insns = 64

type dispatch = Insn | Block

type op = Cpu.t -> As.t -> vmexit option
(* One fused instruction, compiled to a closure at fuse time: operand
   shapes are pre-matched, register numbers and immediates live in the
   closure environment, and the rip delta is baked in.  Contract: behaves
   exactly like [exec insn sz] — retires-and-returns-[None], returns
   [Some] for syscall/hlt, or raises [As.Page_fault]/[Exit_run] with
   [cpu.rip] still at the instruction. *)

type block = {
  b_fid : int;
      (* frame the block was fused from; compared against the live fetch
         mapping after fused stores to catch self-modifying code *)
  b_ops : op array;
      (* straight-line run, terminator (branch/syscall/hlt) last *)
  b_writes : bool array;
      (* b_writes.(i): instruction i may store to guest memory, so the
         fetch mapping must be re-verified before running i+1 *)
  b_has_writes : bool; (* false lets dispatch skip the per-insn check *)
}

type icache = {
  dispatch : dispatch;
  (* per-instruction decode arrays (Insn dispatch, and block fusion) *)
  mutable hot_fid : int;
  mutable hot_arr : (Isa.Insn.t * int) option array;
  frames : (int, (Isa.Insn.t * int) option array) Hashtbl.t;
  (* per-block superinstruction tables (Block dispatch), keyed by the
     block's first-instruction offset within its frame *)
  mutable hot_bfid : int;
  mutable hot_blocks : block option array;
  bframes : (int, block option array) Hashtbl.t;
  (* Observability counters, kept off the per-instruction hit path: the
     hit count is derivable as retired - misses - slow_decodes. *)
  mutable misses : int; (* cacheable instructions decoded into the cache *)
  mutable slow_decodes : int; (* uncacheable: page edge or mutable frame *)
  mutable block_fuses : int; (* blocks assembled *)
  mutable block_hits : int; (* whole-block dispatches from the cache *)
  mutable block_splits : int; (* dispatches that exited a block early *)
}

let create_icache ?(dispatch = Block) () =
  { dispatch;
    hot_fid = -1; hot_arr = [||]; frames = Hashtbl.create 16;
    hot_bfid = -1; hot_blocks = [||]; bframes = Hashtbl.create 16;
    misses = 0; slow_decodes = 0;
    block_fuses = 0; block_hits = 0; block_splits = 0 }

let icache_counts cache = (cache.misses, cache.slow_decodes)
let block_counts cache =
  (cache.block_fuses, cache.block_hits, cache.block_splits)

let decode_at ?icache (cpu : Cpu.t) aspace rip =
  let slow () =
    let fetch addr = As.read_u8 aspace addr in
    Isa.Encode.decode ~fetch rip
  in
  ignore cpu;
  match icache with
  | None -> slow ()
  | Some cache ->
    let offset = Mem.Page.offset_of_addr rip in
    if offset > Mem.Page.size - max_insn_bytes then begin
      cache.slow_decodes <- cache.slow_decodes + 1;
      slow ()
    end
    else begin
      let frame = As.reading_frame aspace rip in
      if not (As.frame_is_immutable aspace frame) then begin
        cache.slow_decodes <- cache.slow_decodes + 1;
        slow ()
      end
      else begin
        if cache.hot_fid <> frame.Mem.Phys_mem.id then begin
          let arr =
            match Hashtbl.find_opt cache.frames frame.Mem.Phys_mem.id with
            | Some arr -> arr
            | None ->
              let arr = Array.make Mem.Page.size None in
              Hashtbl.replace cache.frames frame.Mem.Phys_mem.id arr;
              arr
          in
          cache.hot_fid <- frame.Mem.Phys_mem.id;
          cache.hot_arr <- arr
        end;
        match Array.unsafe_get cache.hot_arr offset with
        | Some decoded -> decoded
        | None ->
          cache.misses <- cache.misses + 1;
          let bytes = frame.Mem.Phys_mem.bytes in
          let fetch addr = Bytes.get_uint8 bytes (offset + (addr - rip)) in
          let decoded = Isa.Encode.decode ~fetch rip in
          cache.hot_arr.(offset) <- Some decoded;
          decoded
      end
    end

let step_inner ?icache (cpu : Cpu.t) aspace =
  let rip = cpu.rip in
  match decode_at ?icache cpu aspace rip with
  | exception As.Page_fault { addr; access } ->
    Some (Fault (Page_fault { rip; addr; access }))
  | exception Isa.Encode.Invalid_opcode { addr = _; opcode } ->
    Some (Fault (Invalid_opcode { rip; opcode }))
  | insn, sz -> (
    match exec cpu aspace insn sz with
    | result -> result
    | exception As.Page_fault { addr; access } ->
      cpu.rip <- rip;
      (* faults leave rip at the faulting instruction *)
      Some (Fault (Page_fault { rip; addr; access }))
    | exception Exit_run e ->
      cpu.rip <- rip;
      Some e)

let step cpu aspace = step_inner cpu aspace

(* {1 Basic-block superinstruction dispatch} *)

let ends_block (insn : Isa.Insn.t) =
  match insn with
  | Hlt | Syscall | Ret | Jmp _ | Jcc _ | Call _ -> true
  | Nop | Mov _ | Lea _ | Ld _ | St _ | Sti _ | Bin _ | Un _ | Cmp _
  | Test _ | Push _ | Pop _ | Setcc _ -> false

let writes_memory (insn : Isa.Insn.t) =
  match insn with
  | St _ | Sti _ | Push _ | Call _ -> true
  | Nop | Hlt | Syscall | Ret | Mov _ | Lea _ | Ld _ | Bin _ | Un _ | Cmp _
  | Test _ | Jmp _ | Jcc _ | Pop _ | Setcc _ -> false

(* Compile one decoded instruction into a superinstruction slot.  The
   specialised arms cover the ALU/mov/compare shapes straight-line code is
   made of; everything with a rare or faulting shape falls back to a
   closure over the generic [exec].  Each arm re-derives exactly the
   semantics of the corresponding [exec] arm — keep them in lockstep. *)
let compile_op (insn : Isa.Insn.t) sz : op =
  let open Isa.Insn in
  let fallback () cpu aspace = exec cpu aspace insn sz in
  match insn with
  | Nop ->
    fun (cpu : Cpu.t) _ ->
      cpu.rip <- cpu.rip + sz;
      cpu.retired <- cpu.retired + 1;
      None
  | Mov (r, Imm v) ->
    let r = Isa.Reg.to_int r in
    fun (cpu : Cpu.t) _ ->
      Array.unsafe_set cpu.regs r v;
      cpu.rip <- cpu.rip + sz;
      cpu.retired <- cpu.retired + 1;
      None
  | Mov (r, Reg r2) ->
    let r = Isa.Reg.to_int r and r2 = Isa.Reg.to_int r2 in
    fun (cpu : Cpu.t) _ ->
      Array.unsafe_set cpu.regs r (Array.unsafe_get cpu.regs r2);
      cpu.rip <- cpu.rip + sz;
      cpu.retired <- cpu.retired + 1;
      None
  | Bin (op, r, operand) -> (
    let r = Isa.Reg.to_int r in
    let alu f =
      fun (cpu : Cpu.t) _ ->
        let v = f cpu in
        Array.unsafe_set cpu.regs r v;
        cpu.flags.zf <- v = 0;
        cpu.flags.sf <- v < 0;
        cpu.rip <- cpu.rip + sz;
        cpu.retired <- cpu.retired + 1;
        None
    in
    match op, operand with
    | Add, Imm v -> alu (fun cpu -> Array.unsafe_get cpu.regs r + v)
    | Sub, Imm v -> alu (fun cpu -> Array.unsafe_get cpu.regs r - v)
    | Imul, Imm v -> alu (fun cpu -> Array.unsafe_get cpu.regs r * v)
    | And, Imm v -> alu (fun cpu -> Array.unsafe_get cpu.regs r land v)
    | Or, Imm v -> alu (fun cpu -> Array.unsafe_get cpu.regs r lor v)
    | Xor, Imm v -> alu (fun cpu -> Array.unsafe_get cpu.regs r lxor v)
    | Add, Reg r2 ->
      let r2 = Isa.Reg.to_int r2 in
      alu (fun cpu -> Array.unsafe_get cpu.regs r + Array.unsafe_get cpu.regs r2)
    | Sub, Reg r2 ->
      let r2 = Isa.Reg.to_int r2 in
      alu (fun cpu -> Array.unsafe_get cpu.regs r - Array.unsafe_get cpu.regs r2)
    | Imul, Reg r2 ->
      let r2 = Isa.Reg.to_int r2 in
      alu (fun cpu -> Array.unsafe_get cpu.regs r * Array.unsafe_get cpu.regs r2)
    | And, Reg r2 ->
      let r2 = Isa.Reg.to_int r2 in
      alu (fun cpu ->
          Array.unsafe_get cpu.regs r land Array.unsafe_get cpu.regs r2)
    | Or, Reg r2 ->
      let r2 = Isa.Reg.to_int r2 in
      alu (fun cpu ->
          Array.unsafe_get cpu.regs r lor Array.unsafe_get cpu.regs r2)
    | Xor, Reg r2 ->
      let r2 = Isa.Reg.to_int r2 in
      alu (fun cpu ->
          Array.unsafe_get cpu.regs r lxor Array.unsafe_get cpu.regs r2)
    | (Div | Rem | Shl | Shr | Sar), _ ->
      (* faulting shapes: shared with the cold interpreter arm *)
      fallback ())
  | Un (op, r) ->
    let r = Isa.Reg.to_int r in
    let f =
      match op with
      | Inc -> fun a -> a + 1
      | Dec -> fun a -> a - 1
      | Neg -> fun a -> -a
      | Not -> lnot
    in
    fun (cpu : Cpu.t) _ ->
      let v = f (Array.unsafe_get cpu.regs r) in
      Array.unsafe_set cpu.regs r v;
      cpu.flags.zf <- v = 0;
      cpu.flags.sf <- v < 0;
      cpu.rip <- cpu.rip + sz;
      cpu.retired <- cpu.retired + 1;
      None
  | Cmp (r, operand) ->
    let r = Isa.Reg.to_int r in
    let value =
      match operand with
      | Imm v -> fun (_ : Cpu.t) -> v
      | Reg r2 ->
        let r2 = Isa.Reg.to_int r2 in
        fun (cpu : Cpu.t) -> Array.unsafe_get cpu.regs r2
    in
    fun (cpu : Cpu.t) _ ->
      let a = Array.unsafe_get cpu.regs r in
      let b = value cpu in
      cpu.flags.zf <- a = b;
      cpu.flags.sf <- a - b < 0;
      cpu.flags.lt_s <- a < b;
      cpu.flags.lt_u <- unsigned_lt a b;
      cpu.rip <- cpu.rip + sz;
      cpu.retired <- cpu.retired + 1;
      None
  | Test (r, operand) ->
    let r = Isa.Reg.to_int r in
    let value =
      match operand with
      | Imm v -> fun (_ : Cpu.t) -> v
      | Reg r2 ->
        let r2 = Isa.Reg.to_int r2 in
        fun (cpu : Cpu.t) -> Array.unsafe_get cpu.regs r2
    in
    fun (cpu : Cpu.t) _ ->
      let v = Array.unsafe_get cpu.regs r land value cpu in
      cpu.flags.zf <- v = 0;
      cpu.flags.sf <- v < 0;
      cpu.flags.lt_s <- false;
      cpu.flags.lt_u <- false;
      cpu.rip <- cpu.rip + sz;
      cpu.retired <- cpu.retired + 1;
      None
  | Ld (Q, r, { base = Some b; index = None; disp }) ->
    let r = Isa.Reg.to_int r and b = Isa.Reg.to_int b in
    fun (cpu : Cpu.t) aspace ->
      Array.unsafe_set cpu.regs r
        (As.read_u64 aspace (Array.unsafe_get cpu.regs b + disp));
      cpu.rip <- cpu.rip + sz;
      cpu.retired <- cpu.retired + 1;
      None
  | St (Q, { base = Some b; index = None; disp }, r) ->
    let r = Isa.Reg.to_int r and b = Isa.Reg.to_int b in
    fun (cpu : Cpu.t) aspace ->
      As.write_u64 aspace
        (Array.unsafe_get cpu.regs b + disp)
        (Array.unsafe_get cpu.regs r);
      cpu.rip <- cpu.rip + sz;
      cpu.retired <- cpu.retired + 1;
      None
  | Jmp target ->
    fun (cpu : Cpu.t) _ ->
      cpu.rip <- target;
      cpu.retired <- cpu.retired + 1;
      None
  | Jcc (c, target) ->
    fun (cpu : Cpu.t) _ ->
      cpu.rip <- (if Cpu.eval_cond cpu c then target else cpu.rip + sz);
      cpu.retired <- cpu.retired + 1;
      None
  | Setcc (c, r) ->
    let r = Isa.Reg.to_int r in
    fun (cpu : Cpu.t) _ ->
      Array.unsafe_set cpu.regs r (if Cpu.eval_cond cpu c then 1 else 0);
      cpu.rip <- cpu.rip + sz;
      cpu.retired <- cpu.retired + 1;
      None
  | Hlt | Syscall | Ret | Lea _ | Ld _ | St _ | Sti _ | Call _ | Push _
  | Pop _ ->
    fallback ()

(* Decode forward from [start_offset] through straight-line code, entirely
   within the immutable frame's bytes.  Stops at block terminators, the
   page-edge guard (an instruction that may cross the edge must take the
   slow path, exactly as in per-instruction mode), [max_block_insns], and
   undecodable bytes (the block ends before them; reaching them re-raises
   the fault through the slow path).  [None] iff not even the first
   instruction was fusable. *)
let fuse_block cache (frame : Mem.Phys_mem.frame) start_offset start_rip =
  let bytes = frame.Mem.Phys_mem.bytes in
  let insns = ref [] in
  let count = ref 0 in
  let offset = ref start_offset in
  let rip = ref start_rip in
  let fusing = ref true in
  while !fusing do
    if !offset > Mem.Page.size - max_insn_bytes || !count >= max_block_insns
    then fusing := false
    else begin
      let off = !offset and pc = !rip in
      match
        Isa.Encode.decode
          ~fetch:(fun addr -> Bytes.get_uint8 bytes (off + (addr - pc)))
          pc
      with
      | exception Isa.Encode.Invalid_opcode _ -> fusing := false
      | (insn, sz) as decoded ->
        cache.misses <- cache.misses + 1;
        insns := decoded :: !insns;
        incr count;
        offset := off + sz;
        rip := pc + sz;
        if ends_block insn then fusing := false
    end
  done;
  match !insns with
  | [] -> None
  | l ->
    let arr = Array.of_list (List.rev l) in
    let writes = Array.map (fun (insn, _) -> writes_memory insn) arr in
    Some
      { b_fid = frame.Mem.Phys_mem.id;
        b_ops = Array.map (fun (insn, sz) -> compile_op insn sz) arr;
        b_writes = writes;
        b_has_writes = Array.exists Fun.id writes }

(* Execute up to [budget] instructions of [b] from its head (cpu.rip is the
   head).  Returns the vmexit if one materialised; [None] means every
   instruction retired and either the block is done or the budget ran out —
   the caller recomputes consumed fuel from the retired delta, which keeps
   block dispatch bit-identical to per-instruction fuel accounting.

   The exception handler is hoisted out of the per-instruction loop: ops
   (like [exec], whose contract they share) only move [cpu.rip] as the
   last step of a retiring instruction, so when [As.Page_fault] or
   [Exit_run] escapes, [cpu.rip] still addresses the faulting
   instruction — exactly the rip per-instruction dispatch reports. *)
let exec_block cache (cpu : Cpu.t) aspace (b : block) ~budget =
  let n = Array.length b.b_ops in
  let limit = if budget < n then budget else n in
  let ops = b.b_ops in
  match
    if b.b_has_writes then begin
      let rec go i =
        if i >= limit then begin
          if limit < n then cache.block_splits <- cache.block_splits + 1;
          None
        end
        else
          match (Array.unsafe_get ops i) cpu aspace with
          | Some e -> Some e (* syscall/hlt terminator: always last *)
          | None ->
            if
              i + 1 < limit
              && Array.unsafe_get b.b_writes i
              && (As.reading_frame aspace cpu.rip).Mem.Phys_mem.id <> b.b_fid
            then begin
              (* The store COW'd the block's own code page (self-modifying
                 straight-line code): the fused tail decodes stale bytes, so
                 split here and re-dispatch at the — now mutable — frame. *)
              cache.block_splits <- cache.block_splits + 1;
              None
            end
            else go (i + 1)
      in
      go 0
    end
    else begin
      let rec go i =
        if i >= limit then begin
          if limit < n then cache.block_splits <- cache.block_splits + 1;
          None
        end
        else
          match (Array.unsafe_get ops i) cpu aspace with
          | Some e -> Some e
          | None -> go (i + 1)
      in
      go 0
    end
  with
  | result -> result
  | exception As.Page_fault { addr; access } ->
    cache.block_splits <- cache.block_splits + 1;
    let rip = cpu.rip in
    Some (Fault (Page_fault { rip; addr; access }))
  | exception Exit_run e ->
    cache.block_splits <- cache.block_splits + 1;
    Some e

let run_block cache (cpu : Cpu.t) aspace ~fuel =
  let rec loop remaining =
    if remaining <= 0 then Out_of_fuel
    else begin
      let rip = cpu.rip in
      let offset = Mem.Page.offset_of_addr rip in
      if offset > Mem.Page.size - max_insn_bytes then slow_step remaining
      else
        match As.reading_frame aspace rip with
        | exception As.Page_fault { addr; access } ->
          Fault (Page_fault { rip; addr; access })
        | frame ->
          if not (As.frame_is_immutable aspace frame) then slow_step remaining
          else begin
            if cache.hot_bfid <> frame.Mem.Phys_mem.id then begin
              let arr =
                match Hashtbl.find_opt cache.bframes frame.Mem.Phys_mem.id with
                | Some arr -> arr
                | None ->
                  let arr = Array.make Mem.Page.size None in
                  Hashtbl.replace cache.bframes frame.Mem.Phys_mem.id arr;
                  arr
              in
              cache.hot_bfid <- frame.Mem.Phys_mem.id;
              cache.hot_blocks <- arr
            end;
            match Array.unsafe_get cache.hot_blocks offset with
            | Some b ->
              cache.block_hits <- cache.block_hits + 1;
              dispatch b remaining
            | None -> (
              match fuse_block cache frame offset rip with
              | None -> slow_step remaining
              | Some b ->
                cache.block_fuses <- cache.block_fuses + 1;
                cache.hot_blocks.(offset) <- Some b;
                dispatch b remaining)
          end
    end
  and dispatch b remaining =
    let before = cpu.retired in
    match exec_block cache cpu aspace b ~budget:remaining with
    | Some e -> e
    | None -> loop (remaining - (cpu.retired - before))
  and slow_step remaining =
    cache.slow_decodes <- cache.slow_decodes + 1;
    match step_inner cpu aspace with
    | None -> loop (remaining - 1)
    | Some e -> e
  in
  loop fuel

let run ?icache cpu aspace ~fuel =
  match icache with
  | Some ({ dispatch = Block; _ } as cache) -> run_block cache cpu aspace ~fuel
  | None | Some { dispatch = Insn; _ } ->
    let rec loop remaining =
      if remaining <= 0 then Out_of_fuel
      else
        match step_inner ?icache cpu aspace with
        | None -> loop (remaining - 1)
        | Some e -> e
    in
    loop fuel

let pp_fault fmt = function
  | Page_fault { rip; addr; access } ->
    Format.fprintf fmt "page fault at rip=0x%x addr=0x%x (%s)" rip addr
      (match access with As.Read -> "read" | As.Write -> "write")
  | Div_by_zero { rip } -> Format.fprintf fmt "division by zero at rip=0x%x" rip
  | Invalid_opcode { rip; opcode } ->
    Format.fprintf fmt "invalid opcode 0x%x at rip=0x%x" opcode rip
  | Bad_shift { rip; count } ->
    Format.fprintf fmt "shift count %d out of range at rip=0x%x" count rip

let pp_vmexit fmt = function
  | Syscall -> Format.pp_print_string fmt "syscall"
  | Halt -> Format.pp_print_string fmt "halt"
  | Fault f -> Format.fprintf fmt "fault: %a" pp_fault f
  | Out_of_fuel -> Format.pp_print_string fmt "out of fuel"
