(** The VX64 interpreter: fetch, decode and execute from guest memory until
    a vmexit.

    This stands in for VT-x non-root execution: the guest runs unobserved
    until it traps — a syscall, a halt, a fault, or fuel exhaustion — and
    control returns to the libOS with the full CPU state available for
    inspection, exactly the boundary Figure 2 of the paper draws between
    ring 3 and the ring-0 libOS. *)

type fault =
  | Page_fault of { rip : int; addr : int; access : Mem.Addr_space.access }
  | Div_by_zero of { rip : int }
  | Invalid_opcode of { rip : int; opcode : int }
  | Bad_shift of { rip : int; count : int }

type vmexit =
  | Syscall      (** [rip] already advanced past the [syscall] instruction *)
  | Halt         (** [hlt]; by convention [rdi] holds the exit status *)
  | Fault of fault
  | Out_of_fuel  (** instruction budget exhausted; resumable *)

type icache
(** Decoded-instruction cache, one per machine: per-frame decode arrays
    keyed by frame id, plus (under {!Block} dispatch) per-frame
    basic-block superinstruction tables.  Sound with no invalidation
    because entries are only created for frames that are owned by a
    retired generation — such frames can never change in place (writes
    COW them into fresh frames with fresh ids).  The one hazard the
    per-block grain adds — a store COWing the block's own code page
    mid-block — is caught by re-verifying the fetch mapping after every
    fused store and splitting the block there. *)

type dispatch =
  | Insn   (** per-instruction decode-cache dispatch (the PR-9 behaviour) *)
  | Block
      (** basic-block superinstruction dispatch: straight-line runs are
          fused on first execution and dispatched whole, resolving the
          fetch frame once per block instead of once per instruction.
          Bit-identical to [Insn] in semantics, fuel accounting and
          vmexit placement. *)

val create_icache : ?dispatch:dispatch -> unit -> icache
(** [dispatch] defaults to {!Block}. *)

val icache_counts : icache -> int * int
(** [(misses, slow_decodes)]: cache fills of cacheable instructions, and
    decodes that bypassed the cache (page-edge or current-generation
    frame).  Cache hits are not counted on the hot path; derive them as
    [retired - misses - slow_decodes]. *)

val block_counts : icache -> int * int * int
(** [(fuses, hits, splits)]: blocks assembled, whole-block dispatches
    served from the cache, and dispatches that exited a block before its
    last instruction (fault, fuel boundary, or self-modified code).  All
    zero under {!Insn} dispatch. *)

val run : ?icache:icache -> Cpu.t -> Mem.Addr_space.t -> fuel:int -> vmexit
(** Execute at most [fuel] instructions.  The CPU state is mutated in place;
    on [Fault] the instruction pointer still addresses the faulting
    instruction. *)

val step : Cpu.t -> Mem.Addr_space.t -> vmexit option
(** Execute one instruction; [None] means it retired without a vmexit. *)

val pp_fault : Format.formatter -> fault -> unit
val pp_vmexit : Format.formatter -> vmexit -> unit
