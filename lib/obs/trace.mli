(** Fixed-capacity, allocation-light ring-buffer tracer.

    The disabled path costs one boolean load and a branch; record
    functions take only immediate ints and static strings, so a guarded
    call site allocates nothing when tracing is off.  Each domain
    records into its own preallocated ring buffer (registered lazily
    through domain-local storage); buffers are merged and stably sorted
    by timestamp at export time, so the Domains backend traces safely.

    [start]/[stop]/[clear] must be called from a quiescent point — no
    other domain concurrently recording.  Recording itself is safe from
    any number of domains. *)

type kind = Span_begin | Span_end | Instant | Counter

type view = {
  v_kind : kind;
  v_name : string;
  v_ts : int;  (** microseconds since [start], monotone per domain *)
  v_tid : int;  (** recording domain's id *)
  v_a : int;  (** payload (counter value for [Counter]) *)
  v_b : int;  (** payload *)
}

val start : ?capacity:int -> unit -> unit
(** Enable tracing into fresh ring buffers of [capacity] events per
    domain (default 65536, minimum 16).  Resets the timestamp epoch and
    discards any events from a previous session. *)

val stop : unit -> unit
(** Disable recording; captured events stay readable via {!events}. *)

val clear : unit -> unit
(** Disable recording and discard all captured events. *)

val enabled : unit -> bool

val span_begin : ?a:int -> ?b:int -> string -> unit
val span_end : ?a:int -> ?b:int -> string -> unit
val instant : ?a:int -> ?b:int -> string -> unit

val counter : string -> int -> unit
(** [counter name v] records a counter sample; the value travels in
    [v_a]. *)

val recorded : unit -> int
(** Total events recorded this session, including overwritten ones. *)

val dropped : unit -> int
(** Events lost to ring wraparound (oldest are overwritten first). *)

val events : unit -> view list
(** Merged view of all per-domain buffers, stably sorted by timestamp
    (per-buffer order is preserved for equal timestamps).  Call after
    {!stop} and after joining any recording domains. *)
