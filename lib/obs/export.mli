(** Exporters over a merged event stream ([Trace.events ()]). *)

val chrome_json : ?dropped:int -> Trace.view list -> Json.t
(** Chrome [trace_event] document (loadable in Perfetto and
    [chrome://tracing]): spans become B/E pairs, instants [i], counter
    samples [C]; the recording domain id is the [tid]; the drop count
    is recorded under [otherData.dropped]. *)

val chrome_json_string : ?dropped:int -> Trace.view list -> string

type span_agg = {
  s_count : int;  (** completed begin/end pairs *)
  s_total_us : int;
  s_max_us : int;
  s_unmatched : int;  (** begins without end + ends without begin *)
}

val span_summary : Trace.view list -> (string * span_agg) list
(** Per-name span aggregates, name-sorted.  Pairing is per (domain,
    name) with a stack, so nesting of a name within one domain is
    handled; pairs truncated by ring wraparound count as unmatched. *)

val summary : Trace.view list -> string
(** Flat human-readable text: span aggregates, instant counts, counter
    last/max values. *)

type node = {
  n_id : int;
  n_parent : int;  (** -1: root; -2: synthetic (referenced, never captured) *)
  mutable n_visits : int;
  mutable n_us : int;
  mutable n_instr : int;
  mutable n_restores : int;
}

val snapshot_tree : Trace.view list -> node list
(** Snapshot tree rebuilt from [snap.capture]/[snap.restore] instants
    and [explorer.eval] spans, each node annotated with its evaluation
    cost (visits, microseconds, instructions retired, restores). *)

val tree_json : Trace.view list -> Json.t
val tree_dot : Trace.view list -> string
