(** Minimal JSON tree, printer and parser — enough for the Chrome trace
    exporter, [BENCH_E*.json] emission and round-trip tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) rendering with string escaping. *)

val parse : string -> t
(** Inverse of {!to_string}; also accepts ordinary interchange JSON
    (whitespace, \uXXXX escapes, exponents).  @raise Parse_error. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any. *)
