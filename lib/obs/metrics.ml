(* Metrics registry: named counters, gauges and log2-bucket histograms.

   Values are plain ints; merge is commutative and associative for all
   three kinds (counter: +, gauge: max, histogram: bucket-wise +), so
   per-domain registries can be combined in any order — the qcheck
   property in test/test_obs.ml pins this down. *)

let bucket_count = 64

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array; (* bucket 0: v <= 0; bucket i: 2^(i-1) <= v < 2^i *)
}

type value = Counter of int | Gauge of int | Histogram of histogram
type t = { tbl : (string, value) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let bucket_of v =
  if v <= 0 then 0
  else
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (bucket_count - 1) (bits v 0)

let bucket_lo i =
  if i <= 0 then 0
  else if i - 1 >= Sys.int_size - 1 then max_int (* 1 lsl would overflow *)
  else 1 lsl (i - 1)

let kind_error name =
  invalid_arg (Printf.sprintf "Obs.Metrics: %s used with two kinds" name)

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.tbl name with
  | None -> Hashtbl.replace t.tbl name (Counter by)
  | Some (Counter c) -> Hashtbl.replace t.tbl name (Counter (c + by))
  | Some _ -> kind_error name

let gauge_set t name v =
  match Hashtbl.find_opt t.tbl name with
  | None | Some (Gauge _) -> Hashtbl.replace t.tbl name (Gauge v)
  | Some _ -> kind_error name

let gauge_max t name v =
  match Hashtbl.find_opt t.tbl name with
  | None -> Hashtbl.replace t.tbl name (Gauge v)
  | Some (Gauge g) -> Hashtbl.replace t.tbl name (Gauge (max g v))
  | Some _ -> kind_error name

let observe t name v =
  let h =
    match Hashtbl.find_opt t.tbl name with
    | Some (Histogram h) -> h
    | None ->
        let h = { h_count = 0; h_sum = 0; h_buckets = Array.make bucket_count 0 } in
        Hashtbl.replace t.tbl name (Histogram h);
        h
    | Some _ -> kind_error name
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let i = bucket_of v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let merge ~into src =
  Hashtbl.iter
    (fun name v ->
      match (Hashtbl.find_opt into.tbl name, v) with
      | None, Counter c -> Hashtbl.replace into.tbl name (Counter c)
      | None, Gauge g -> Hashtbl.replace into.tbl name (Gauge g)
      | None, Histogram h ->
          Hashtbl.replace into.tbl name
            (Histogram
               {
                 h_count = h.h_count;
                 h_sum = h.h_sum;
                 h_buckets = Array.copy h.h_buckets;
               })
      | Some (Counter a), Counter b -> Hashtbl.replace into.tbl name (Counter (a + b))
      | Some (Gauge a), Gauge b -> Hashtbl.replace into.tbl name (Gauge (max a b))
      | Some (Histogram a), Histogram b ->
          a.h_count <- a.h_count + b.h_count;
          a.h_sum <- a.h_sum + b.h_sum;
          Array.iteri (fun i n -> a.h_buckets.(i) <- a.h_buckets.(i) + n) b.h_buckets
      | Some _, _ -> kind_error name)
    src.tbl

let find t name = Hashtbl.find_opt t.tbl name

let get_counter t name =
  match find t name with Some (Counter c) -> c | _ -> 0

let get_gauge t name = match find t name with Some (Gauge g) -> g | _ -> 0

let to_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let equal a b =
  let norm t =
    List.map
      (fun (k, v) ->
        match v with
        | Counter c -> (k, `C c)
        | Gauge g -> (k, `G g)
        | Histogram h -> (k, `H (h.h_count, h.h_sum, Array.to_list h.h_buckets)))
      (to_list t)
  in
  norm a = norm b

let to_json t =
  let value_json = function
    | Counter c -> Json.Int c
    | Gauge g -> Json.Obj [ ("gauge", Json.Int g) ]
    | Histogram h ->
        let buckets =
          Array.to_list h.h_buckets
          |> List.mapi (fun i n -> (i, n))
          |> List.filter (fun (_, n) -> n > 0)
          |> List.map (fun (i, n) ->
                 Json.Obj [ ("ge", Json.Int (bucket_lo i)); ("n", Json.Int n) ])
        in
        Json.Obj
          [
            ("count", Json.Int h.h_count);
            ("sum", Json.Int h.h_sum);
            ("buckets", Json.Arr buckets);
          ]
  in
  Json.Obj (List.map (fun (k, v) -> (k, value_json v)) (to_list t))

let pp ppf t =
  List.iter
    (fun (k, v) ->
      match v with
      | Counter c -> Format.fprintf ppf "%-32s %d@." k c
      | Gauge g -> Format.fprintf ppf "%-32s %d (gauge)@." k g
      | Histogram h ->
          Format.fprintf ppf "%-32s count=%d sum=%d@." k h.h_count h.h_sum)
    (to_list t)
