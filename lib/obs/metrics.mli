(** Metrics registry: named counters, gauges and histograms.

    All values are ints.  {!merge} is commutative and associative for
    every kind — counters add, gauges combine by max, histograms add
    bucket-wise — so per-domain registries combine in any order.
    Binding a name to two different kinds raises [Invalid_argument]. *)

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array;
      (** log2 buckets: index 0 holds v <= 0, index i holds
          2^(i-1) <= v < 2^i, capped at {!bucket_count} - 1 *)
}

type value = Counter of int | Gauge of int | Histogram of histogram
type t

val bucket_count : int

val bucket_of : int -> int
(** Histogram bucket index for a value. *)

val bucket_lo : int -> int
(** Inclusive lower bound of a bucket. *)

val create : unit -> t
val incr : t -> ?by:int -> string -> unit
val gauge_set : t -> string -> int -> unit
val gauge_max : t -> string -> int -> unit
val observe : t -> string -> int -> unit

val merge : into:t -> t -> unit
(** Fold [src] into [into]; commutative and associative. *)

val find : t -> string -> value option
val get_counter : t -> string -> int
(** 0 when absent. *)

val get_gauge : t -> string -> int
(** 0 when absent. *)

val to_list : t -> (string * value) list
(** Name-sorted. *)

val equal : t -> t -> bool
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
