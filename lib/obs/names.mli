(** Canonical event names shared by instrumentation sites and exporters.

    All values are static string literals: record sites pass them to
    {!Trace} without allocating, and exporters compare against the very
    same constants. *)

val cow_fault : string
val zero_fill : string
val map : string
val unmap : string
val share_flush : string
val pressure : string
val out_of_frames : string
val frame_recycle : string
val frame_adopt : string
val icache_misses : string
val icache_slow : string
val block_fuse : string
val block_hit : string
val block_split : string
val stop_guess : string
val stop_guess_fail : string
val stop_strategy : string
val stop_hint : string
val stop_exit : string
val stop_kill : string
val snap_capture : string
val snap_restore : string
val snap_release : string
val explorer_eval : string
val worker : string
val worker_eval : string
val frontier_len : string
val queue_len : string
val queue_steal : string
val sched_requeue : string
val sched_quarantine : string
val instructions : string
val dedup_hit : string
val tenancy_admit : string
val tenancy_reject : string
val tenancy_queue : string
val tenancy_deadline_kill : string
val tenancy_evict : string
val reclaim_evict : string
val reclaim_replay : string
val reclaim_demote : string
val reclaim_promote : string
val reclaim_spill : string
val reclaim_spill_load : string
val record_append : string
val replay_seek : string
val replay_anchor_restore : string
