(* Canonical event names shared by instrumentation sites and exporters.

   Keeping them in one module guarantees the strings are physically
   shared (no per-event allocation at record sites) and that exporters
   match the exact constants the producers used. *)

(* memory layer *)
let cow_fault = "mem.cow_fault"
let zero_fill = "mem.zero_fill"
let map = "mem.map"
let unmap = "mem.unmap"
let share_flush = "mem.share_flush"
let pressure = "mem.pressure"
let out_of_frames = "mem.out_of_frames"
let frame_recycle = "mem.frame_recycle" (* instant; a = free-list length *)
let frame_adopt = "mem.frame_adopt" (* instant; a = frames adopted *)

(* vcpu / decode cache (counter samples) *)
let icache_misses = "vcpu.icache_misses"
let icache_slow = "vcpu.icache_slow"

(* vcpu / superinstruction block cache (counter samples) *)
let block_fuse = "interp.block_fuse"
let block_hit = "interp.block_hit"
let block_split = "interp.block_split"

(* scheduler stop reasons (instants) *)
let stop_guess = "stop.guess"
let stop_guess_fail = "stop.guess_fail"
let stop_strategy = "stop.strategy"
let stop_hint = "stop.hint"
let stop_exit = "stop.exit"
let stop_kill = "stop.kill"

(* snapshot lifecycle (instants; a = snapshot id, b = parent id or -1) *)
let snap_capture = "snap.capture"
let snap_restore = "snap.restore"
let snap_release = "snap.release" (* instant; a = snapshot id, b = frames freed *)

(* explorer / parallel *)
let explorer_eval = "explorer.eval" (* span; a = snapshot id, b = instructions *)
let worker = "worker" (* span; a = worker index *)
let worker_eval = "worker.eval" (* span; a = worker index, b = instructions *)
let frontier_len = "frontier.len" (* counter *)
let queue_len = "queue.len" (* counter *)
let queue_steal = "queue.steal" (* instant; a = origin domain, b = this domain *)
let sched_requeue = "sched.requeue"
let sched_quarantine = "sched.quarantine"
let instructions = "explorer.instructions" (* counter *)

(* content-addressed frame dedup *)
let dedup_hit = "mem.dedup_hit" (* instant; a = frame id, b = refs *)

(* multi-tenant pool *)
let tenancy_admit = "tenancy.admit" (* instant; a = tenant id, b = live tenants *)
let tenancy_reject = "tenancy.reject" (* instant; a = live tenants *)
let tenancy_queue = "tenancy.queue" (* instant; a = queue length *)
let tenancy_deadline_kill = "tenancy.deadline_kill" (* instant; a = tenant id *)
let tenancy_evict = "tenancy.evict" (* instant; a = tenant id *)

(* reclaim *)
let reclaim_evict = "reclaim.evict" (* instant; a = handle, b = depth *)
let reclaim_replay = "reclaim.replay" (* span; a = chain length, b = instrs *)
let reclaim_demote = "reclaim.demote" (* instant; a = handle, b = depth *)
let reclaim_promote = "reclaim.promote" (* span; a = handle, b = pages applied *)
let reclaim_spill = "reclaim.spill" (* instant; a = handle, b = bytes *)
let reclaim_spill_load = "reclaim.spill_load" (* instant; a = bytes *)

(* record / replay *)
let record_append = "record.append" (* instant; a = events logged *)
let replay_seek = "replay.seek" (* instant; a = target stop index *)
let replay_anchor_restore = "replay.anchor_restore" (* instant; a = anchor stop index *)
