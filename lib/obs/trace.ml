(* Fixed-capacity, allocation-light ring-buffer tracer.

   Design constraints (see DESIGN.md "Observability"):

   - Disabled path is one mutable-bool load and a conditional branch;
     record functions take only immediate ints and static strings so
     call sites allocate nothing when tracing is off.
   - Enabled path writes into a preallocated ring of mutable event
     records: no allocation per event, one [Unix.gettimeofday] call.
   - Domains safety: each domain lazily registers its own buffer via
     [Domain.DLS]; no cross-domain mutation ever happens on the hot
     path.  Buffers are merged (stable-sorted by timestamp) at export.
   - A session generation counter invalidates buffers cached in DLS by
     earlier [start]/[clear] calls, so a long-lived domain that traced
     in a previous session transparently re-registers.

   [start]/[stop]/[clear] must be called from a quiescent point (no
   other domain concurrently recording); recording itself is safe from
   any number of domains. *)

type kind = Span_begin | Span_end | Instant | Counter

type event = {
  mutable e_kind : kind;
  mutable e_name : string;
  mutable e_ts : int; (* microseconds since session epoch *)
  mutable e_a : int;
  mutable e_b : int;
}

type view = {
  v_kind : kind;
  v_name : string;
  v_ts : int;
  v_tid : int;
  v_a : int;
  v_b : int;
}

type buffer = {
  bu_session : int;
  bu_tid : int;
  bu_slots : event array;
  bu_cap : int;
  mutable bu_len : int; (* total events ever recorded into this buffer *)
  mutable bu_last_ts : int;
}

let default_capacity = 1 lsl 16
let enabled_flag = ref false
let session = Atomic.make 0
let capacity = ref default_capacity
let epoch = ref 0.0
let registry : buffer list ref = ref []
let registry_mutex = Mutex.create ()
let enabled () = !enabled_flag

let fresh_buffer () =
  let cap = !capacity in
  let slots =
    Array.init cap (fun _ ->
        { e_kind = Instant; e_name = ""; e_ts = 0; e_a = 0; e_b = 0 })
  in
  let b =
    {
      bu_session = Atomic.get session;
      bu_tid = (Domain.self () :> int);
      bu_slots = slots;
      bu_cap = cap;
      bu_len = 0;
      bu_last_ts = 0;
    }
  in
  Mutex.lock registry_mutex;
  registry := b :: !registry;
  Mutex.unlock registry_mutex;
  b

let dls_key : buffer option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let buffer () =
  match Domain.DLS.get dls_key with
  | Some b when b.bu_session = Atomic.get session -> b
  | _ ->
      let b = fresh_buffer () in
      Domain.DLS.set dls_key (Some b);
      b

let now_us () = int_of_float ((Unix.gettimeofday () -. !epoch) *. 1e6)

let record kind name a b =
  if !enabled_flag then begin
    let buf = buffer () in
    let e = buf.bu_slots.(buf.bu_len mod buf.bu_cap) in
    let ts = now_us () in
    (* Clamp monotone per buffer: gettimeofday can step backwards. *)
    let ts = if ts >= buf.bu_last_ts then ts else buf.bu_last_ts in
    buf.bu_last_ts <- ts;
    e.e_kind <- kind;
    e.e_name <- name;
    e.e_ts <- ts;
    e.e_a <- a;
    e.e_b <- b;
    buf.bu_len <- buf.bu_len + 1
  end

let span_begin ?(a = 0) ?(b = 0) name = record Span_begin name a b
let span_end ?(a = 0) ?(b = 0) name = record Span_end name a b
let instant ?(a = 0) ?(b = 0) name = record Instant name a b
let counter name v = record Counter name v 0

let start ?capacity:(cap = default_capacity) () =
  Mutex.lock registry_mutex;
  registry := [];
  Mutex.unlock registry_mutex;
  capacity := max 16 cap;
  Atomic.incr session;
  epoch := Unix.gettimeofday ();
  enabled_flag := true

let stop () = enabled_flag := false

let clear () =
  enabled_flag := false;
  Atomic.incr session;
  Mutex.lock registry_mutex;
  registry := [];
  Mutex.unlock registry_mutex

let buffers () =
  Mutex.lock registry_mutex;
  let bs = !registry in
  Mutex.unlock registry_mutex;
  bs

let recorded () = List.fold_left (fun acc b -> acc + b.bu_len) 0 (buffers ())

let dropped () =
  List.fold_left (fun acc b -> acc + max 0 (b.bu_len - b.bu_cap)) 0 (buffers ())

let events () =
  let of_buffer b =
    let kept = min b.bu_len b.bu_cap in
    let oldest = if b.bu_len <= b.bu_cap then 0 else b.bu_len mod b.bu_cap in
    List.init kept (fun i ->
        let e = b.bu_slots.((oldest + i) mod b.bu_cap) in
        {
          v_kind = e.e_kind;
          v_name = e.e_name;
          v_ts = e.e_ts;
          v_tid = b.bu_tid;
          v_a = e.e_a;
          v_b = e.e_b;
        })
  in
  (* Oldest-registered buffer first so the main domain usually leads;
     stable sort keeps per-buffer order for equal timestamps. *)
  let all = List.concat_map of_buffer (List.rev (buffers ())) in
  List.stable_sort (fun x y -> compare x.v_ts y.v_ts) all
