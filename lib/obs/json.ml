(* Minimal JSON tree, printer and parser.

   Just enough for the Chrome trace exporter, BENCH_E*.json emission and
   the round-trip tests — not a general-purpose implementation.  Parsing
   accepts what [to_string] produces plus ordinary interchange JSON
   (escapes incl. \uXXXX, exponents, nested containers). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  emit buf t;
  Buffer.contents buf

(* ---- parser ---- *)

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "at %d: %s" c.pos msg))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.src then fail c "unterminated string";
    let ch = c.src.[c.pos] in
    c.pos <- c.pos + 1;
    if ch = '"' then Buffer.contents buf
    else if ch = '\\' then begin
      (if c.pos >= String.length c.src then fail c "unterminated escape";
       let e = c.src.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' ->
           if c.pos + 4 > String.length c.src then fail c "short \\u escape";
           let hex = String.sub c.src c.pos 4 in
           c.pos <- c.pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail c "bad \\u escape"
           in
           add_utf8 buf code
       | _ -> fail c "unknown escape");
      go ()
    end
    else begin
      Buffer.add_char buf ch;
      go ()
    end
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let continue_ () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> true
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        true
    | _ -> false
  in
  while continue_ () do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        Arr (elements [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %c" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
