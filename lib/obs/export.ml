(* Exporters over a merged event stream (Trace.events ()):

   - Chrome trace_event JSON, loadable in Perfetto / chrome://tracing;
   - a flat text summary (span aggregates, instant counts, counters);
   - a snapshot-tree dump (DOT or JSON) annotated with per-node cost,
     rebuilt from snap.capture instants and explorer.eval spans. *)

let category name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let chrome_json ?(dropped = 0) events =
  let ev (e : Trace.view) =
    let ph =
      match e.v_kind with
      | Trace.Span_begin -> "B"
      | Trace.Span_end -> "E"
      | Trace.Instant -> "i"
      | Trace.Counter -> "C"
    in
    let args =
      match e.v_kind with
      | Trace.Counter -> [ ("value", Json.Int e.v_a) ]
      | _ -> [ ("a", Json.Int e.v_a); ("b", Json.Int e.v_b) ]
    in
    let scope =
      match e.v_kind with Trace.Instant -> [ ("s", Json.Str "t") ] | _ -> []
    in
    Json.Obj
      ([
         ("name", Json.Str e.v_name);
         ("cat", Json.Str (category e.v_name));
         ("ph", Json.Str ph);
         ("ts", Json.Int e.v_ts);
         ("pid", Json.Int 0);
         ("tid", Json.Int e.v_tid);
       ]
      @ scope
      @ [ ("args", Json.Obj args) ])
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map ev events));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [ ("tool", Json.Str "lwsnap"); ("dropped", Json.Int dropped) ] );
    ]

let chrome_json_string ?dropped events =
  Json.to_string (chrome_json ?dropped events)

(* ---- span aggregation ---- *)

type span_agg = {
  s_count : int; (* completed begin/end pairs *)
  s_total_us : int;
  s_max_us : int;
  s_unmatched : int; (* begins without end + ends without begin *)
}

let span_summary events =
  let aggs : (string, span_agg ref) Hashtbl.t = Hashtbl.create 16 in
  let agg name =
    match Hashtbl.find_opt aggs name with
    | Some r -> r
    | None ->
        let r = ref { s_count = 0; s_total_us = 0; s_max_us = 0; s_unmatched = 0 } in
        Hashtbl.replace aggs name r;
        r
  in
  (* Per (tid, name) stack of open begin timestamps: spans never cross
     domains, and within a domain the stream is chronological. *)
  let open_ : (int * string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.view) ->
      match e.v_kind with
      | Trace.Span_begin ->
          let key = (e.v_tid, e.v_name) in
          let stack =
            match Hashtbl.find_opt open_ key with
            | Some s -> s
            | None ->
                let s = ref [] in
                Hashtbl.replace open_ key s;
                s
          in
          stack := e.v_ts :: !stack
      | Trace.Span_end -> (
          let key = (e.v_tid, e.v_name) in
          let r = agg e.v_name in
          match Hashtbl.find_opt open_ key with
          | Some ({ contents = t0 :: rest } as stack) ->
              stack := rest;
              let d = e.v_ts - t0 in
              r :=
                {
                  !r with
                  s_count = !r.s_count + 1;
                  s_total_us = !r.s_total_us + d;
                  s_max_us = max !r.s_max_us d;
                }
          | _ -> r := { !r with s_unmatched = !r.s_unmatched + 1 })
      | _ -> ())
    events;
  Hashtbl.iter
    (fun (_, name) stack ->
      let n = List.length !stack in
      if n > 0 then
        let r = agg name in
        r := { !r with s_unmatched = !r.s_unmatched + n })
    open_;
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) aggs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let summary events =
  let buf = Buffer.create 1024 in
  let instants : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let counters : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.view) ->
      match e.v_kind with
      | Trace.Instant ->
          Hashtbl.replace instants e.v_name
            (1 + Option.value ~default:0 (Hashtbl.find_opt instants e.v_name))
      | Trace.Counter ->
          let _, mx =
            Option.value ~default:(0, min_int) (Hashtbl.find_opt counters e.v_name)
          in
          Hashtbl.replace counters e.v_name (e.v_a, max mx e.v_a)
      | _ -> ())
    events;
  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
                   |> List.sort (fun (a, _) (b, _) -> String.compare a b) in
  Buffer.add_string buf
    (Printf.sprintf "events: %d\n" (List.length events));
  let spans = span_summary events in
  if spans <> [] then begin
    Buffer.add_string buf "\nspans (name, count, total us, max us, unmatched):\n";
    List.iter
      (fun (name, a) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-28s %8d %10d %8d %4d\n" name a.s_count a.s_total_us
             a.s_max_us a.s_unmatched))
      spans
  end;
  (match sorted instants with
  | [] -> ()
  | xs ->
      Buffer.add_string buf "\ninstants (name, count):\n";
      List.iter
        (fun (name, n) -> Buffer.add_string buf (Printf.sprintf "  %-28s %8d\n" name n))
        xs);
  (match sorted counters with
  | [] -> ()
  | xs ->
      Buffer.add_string buf "\ncounters (name, last, max):\n";
      List.iter
        (fun (name, (last, mx)) ->
          Buffer.add_string buf (Printf.sprintf "  %-28s %8d %8d\n" name last mx))
        xs);
  Buffer.contents buf

(* ---- snapshot tree ---- *)

type node = {
  n_id : int;
  n_parent : int; (* -1: root; -2: synthetic (referenced, never captured) *)
  mutable n_visits : int; (* explorer.eval spans attributed to this node *)
  mutable n_us : int;
  mutable n_instr : int;
  mutable n_restores : int;
}

let snapshot_tree events =
  let nodes : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let ensure ?(parent = -2) id =
    match Hashtbl.find_opt nodes id with
    | Some n -> n
    | None ->
        let n =
          { n_id = id; n_parent = parent; n_visits = 0; n_us = 0; n_instr = 0;
            n_restores = 0 }
        in
        Hashtbl.replace nodes id n;
        n
  in
  (* eval spans never nest per domain, so one open slot per tid. *)
  let open_eval : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.view) ->
      if String.equal e.v_name Names.snap_capture then
        ignore (ensure ~parent:e.v_b e.v_a)
      else if String.equal e.v_name Names.snap_restore then begin
        match e.v_kind with
        | Trace.Instant ->
            let n = ensure e.v_a in
            n.n_restores <- n.n_restores + 1
        | _ -> ()
      end
      else if String.equal e.v_name Names.explorer_eval then
        match e.v_kind with
        | Trace.Span_begin -> Hashtbl.replace open_eval e.v_tid (e.v_a, e.v_ts)
        | Trace.Span_end -> (
            match Hashtbl.find_opt open_eval e.v_tid with
            | Some (sid, t0) when sid = e.v_a ->
                Hashtbl.remove open_eval e.v_tid;
                let n = ensure sid in
                n.n_visits <- n.n_visits + 1;
                n.n_us <- n.n_us + (e.v_ts - t0);
                n.n_instr <- n.n_instr + e.v_b
            | _ -> ())
        | _ -> ())
    events;
  Hashtbl.fold (fun _ n acc -> n :: acc) nodes []
  |> List.sort (fun a b -> compare a.n_id b.n_id)

let tree_json events =
  let nodes = snapshot_tree events in
  Json.Obj
    [
      ( "nodes",
        Json.Arr
          (List.map
             (fun n ->
               Json.Obj
                 [
                   ("id", Json.Int n.n_id);
                   ("parent", Json.Int n.n_parent);
                   ("visits", Json.Int n.n_visits);
                   ("us", Json.Int n.n_us);
                   ("instructions", Json.Int n.n_instr);
                   ("restores", Json.Int n.n_restores);
                 ])
             nodes) );
    ]

let tree_dot events =
  let nodes = snapshot_tree events in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph snapshots {\n  node [shape=box, fontsize=10];\n";
  List.iter
    (fun n ->
      let label =
        if n.n_id < 0 then Printf.sprintf "boot\\n%d us, %d instr" n.n_us n.n_instr
        else
          Printf.sprintf "s%d\\n%d visit(s), %d us\\n%d instr, %d restore(s)"
            n.n_id n.n_visits n.n_us n.n_instr n.n_restores
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" (n.n_id + 2) label))
    nodes;
  List.iter
    (fun n ->
      if n.n_parent >= 0 then
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d;\n" (n.n_parent + 2) (n.n_id + 2)))
    nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
