(** A replay bundle: everything needed to re-create the recorded run on a
    fresh machine — the guest image, its inputs (stdin, VFS files), and
    the event log.  One self-contained file, so a fuzz counterexample or a
    bug report travels as a single artifact. *)

type t = {
  origin : int;
  code : string;
  entry : int;            (** the assembled image (symbols are not kept) *)
  source : string option; (** original .s text when known, for display *)
  stdin : string option;
  files : (string * string) list;
  log : Log.t;
}

val image : t -> Isa.Asm.image

val of_image :
  ?source:string ->
  ?stdin:string ->
  ?files:(string * string) list ->
  Isa.Asm.image ->
  Log.t ->
  t

val encode : t -> string
(** "LWRB" magic + version byte + sections; the log is embedded with its
    own header so {!Log.decode} errors surface intact. *)

val decode : string -> (t, string) result

val write : path:string -> t -> unit
val read : path:string -> (t, string) result
