module Libos = Os.Libos

type t = {
  mutable rev_events : Log.event list;
  mutable count : int;
  fuel_per_step : int;
  meta : string;
}

let create ?(fuel_per_step = 50_000_000) ?(meta = "") () =
  { rev_events = []; count = 0; fuel_per_step; meta }

let append t e =
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1;
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:t.count Obs.Names.record_append

let stop_code (stop : Libos.stop) : Log.stop =
  match stop with
  | Libos.Guess { n } -> Log.Guess n
  | Libos.Guess_fail -> Log.Guess_fail
  | Libos.Guess_strategy { strategy } -> Log.Strategy strategy
  | Libos.Guess_hint { dist } -> Log.Hint dist
  | Libos.Exited { status } -> Log.Exit status
  | Libos.Killed r -> Log.Kill (Format.asprintf "%a" Libos.pp_reason r)

let probe t : Probe.t =
  { Probe.eval =
      (fun ~retired stop ->
        append t (Log.Eval { retired; stop = stop_code stop }));
    crash =
      (fun ~retired msg -> append t (Log.Eval { retired; stop = Log.Crash msg }));
    capture = (fun ~snap -> append t (Log.Capture { snap }));
    resume = (fun ~snap ~rax -> append t (Log.Resume { snap; rax }));
    set_rax = (fun v -> append t (Log.Set_rax v)) }

let install t m =
  Libos.set_sys_hook m (Some (fun number ret -> append t (Log.Sys { number; ret })))

let events t = t.count

let log t =
  { Log.fuel_per_step = t.fuel_per_step;
    meta = t.meta;
    events = List.rev t.rev_events }
