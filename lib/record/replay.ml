module As = Mem.Addr_space
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg
module Libos = Os.Libos

type segment = {
  pre : Log.event list;     (* boundary actions entering this segment *)
  sys : (int * int) list;   (* expected ordinary syscalls, in order *)
  retired : int;
  stop : Log.stop;
  start_time : int;         (* cumulative retired before this segment *)
}

type bp =
  | Bp_pc of int
  | Bp_sys of int
  | Bp_stop of int

type halt =
  | Stopped
  | Break of int * bp
  | End

type t = {
  machine : Libos.t;
  meta : string;
  segs : segment array;
  total : int;
  anchor_every : int;
  anchors : (int, Engine.checkpoint) Hashtbl.t;  (* stop index -> state at
                                                    its start *)
  snaps : (int, Engine.checkpoint) Hashtbl.t;    (* recorded snapshot id *)
  mutable seg : int;
  mutable off : int;         (* instructions retired into the segment *)
  mutable sys_seen : (int * int) list;  (* this segment so far, reversed *)
  mutable sys_count : int;   (* monotone, never reset *)
  mutable last_sys : (int * int) option;
  mutable bp_next : int;
  mutable bp_list : (int * bp) list;
}

let diverged fmt = Format.kasprintf (fun s -> raise (Engine.Diverged s)) fmt

let segments_of_log (log : Log.t) =
  let segs = ref [] in
  let pre = ref [] in
  let sys = ref [] in
  let time = ref 0 in
  List.iter
    (fun (e : Log.event) ->
      match e with
      | Log.Eval { retired; stop } ->
        segs :=
          { pre = List.rev !pre;
            sys = List.rev !sys;
            retired;
            stop;
            start_time = !time }
          :: !segs;
        time := !time + retired;
        pre := [];
        sys := []
      | Log.Sys { number; ret } -> sys := (number, ret) :: !sys
      | (Log.Capture _ | Log.Resume _ | Log.Set_rax _) as a -> pre := a :: !pre)
    log.Log.events;
  Array.of_list (List.rev !segs)

let nsegs t = Array.length t.segs

let at_end t =
  nsegs t = 0 || (t.seg = nsegs t - 1 && t.off = t.segs.(t.seg).retired)

let time t = if nsegs t = 0 then 0 else t.segs.(t.seg).start_time + t.off
let total_time t = t.total
let stop_index t = t.seg
let segments t = nsegs t
let meta t = t.meta
let machine t = t.machine

let current_stop t = if nsegs t = 0 then None else Some t.segs.(t.seg).stop

let apply_pre t k =
  List.iter
    (fun (e : Log.event) ->
      match e with
      | Log.Capture { snap } ->
        Hashtbl.replace t.snaps snap (Engine.checkpoint t.machine)
      | Log.Resume { snap; rax } -> (
        match Hashtbl.find_opt t.snaps snap with
        | None -> diverged "stop %d: resume of unknown snapshot %d" k snap
        | Some ck ->
          Engine.restore t.machine ck;
          if rax >= 0 then Cpu.set t.machine.Libos.cpu Reg.rax rax)
      | Log.Set_rax v -> Cpu.set t.machine.Libos.cpu Reg.rax v
      | Log.Sys _ | Log.Eval _ -> assert false)
    t.segs.(k).pre

(* Compare the syscalls executed so far in the current segment against the
   record: a strict prefix mid-segment, the full stream at the stop. *)
let check_sys t ~final =
  let s = t.segs.(t.seg) in
  let rec cmp i actual expected =
    match (actual, expected) with
    | [], [] -> ()
    | [], _ when not final -> ()
    | [], _ -> diverged "stop %d: replay performed %d of %d recorded syscalls" t.seg i (List.length s.sys)
    | _ :: _, [] -> diverged "stop %d: replay performed an unrecorded syscall (index %d)" t.seg i
    | (n, r) :: a', (n', r') :: e' ->
      if n <> n' || r <> r' then
        diverged
          "stop %d: syscall %d diverges (replay %d -> %d, recorded %d -> %d)"
          t.seg i n r n' r'
      else cmp (i + 1) a' e'
  in
  cmp 0 (List.rev t.sys_seen) s.sys

(* Execute [delta] more instructions of the current segment.  Reaching the
   segment's end validates the recorded stop and syscall stream and — when
   a successor exists — applies its boundary actions, normalising the
   position to (seg+1, 0) and dropping an anchor on the spacing grid. *)
let advance t delta =
  let s = t.segs.(t.seg) in
  assert (delta >= 0 && t.off + delta <= s.retired);
  let stop =
    if delta = 0 then None
    else
      Engine.run_until_retired t.machine
        ~target:(t.machine.Libos.cpu.Cpu.retired + delta)
  in
  t.off <- t.off + delta;
  if t.off < s.retired then begin
    (match stop with
    | Some actual ->
      diverged "stop %d at +%d: premature %a (the recorded run continued)"
        t.seg t.off Libos.pp_stop actual
    | None -> ());
    check_sys t ~final:false
  end
  else begin
    (match (s.stop, stop) with
    | (Log.Guess _ | Log.Guess_fail | Log.Strategy _ | Log.Hint _ | Log.Exit _), Some actual ->
      if Recorder.stop_code actual <> s.stop then
        diverged "stop %d: replay produced %a where the log records %a" t.seg
          Libos.pp_stop actual Log.pp_stop s.stop
    | (Log.Guess _ | Log.Guess_fail | Log.Strategy _ | Log.Hint _ | Log.Exit _), None ->
      diverged "stop %d: replay ran past the recorded %a" t.seg Log.pp_stop
        s.stop
    | Log.Kill msg, None ->
      (* A fuel-exhaustion kill is indistinguishable from the replayer's
         own fuel boundary and is validated by the retired count alone.  A
         fault kill is validated by attempting the next instruction: a
         faithful replay faults without retiring or mutating anything. *)
      if msg <> "fuel exhausted" then begin
        let r0 = t.machine.Libos.cpu.Cpu.retired in
        match Libos.run t.machine ~fuel:1 with
        | Libos.Killed (Libos.Fault _) as actual
          when t.machine.Libos.cpu.Cpu.retired = r0 ->
          if Recorder.stop_code actual <> s.stop then
            diverged "stop %d: replay was killed by %a, the log records %a"
              t.seg Libos.pp_stop actual Log.pp_stop s.stop
        | actual ->
          diverged "stop %d: expected kill (%s), replay produced %a" t.seg msg
            Libos.pp_stop actual
      end
    | Log.Kill msg, Some actual ->
      (* only fault kills can fire exactly at the target retirement *)
      if Recorder.stop_code actual <> s.stop then
        diverged "stop %d: replay was killed by %a, the log records kill (%s)"
          t.seg Libos.pp_stop actual msg
    | Log.Crash _, None ->
      (* A host exception (injected fault, out of frames) cannot reproduce
         on the clean replay machine; the recorded run's next boundary
         action always restores away the crashed tail, so the position is
         still exact. *)
      ()
    | Log.Crash _, Some actual ->
      diverged "stop %d: replay stopped (%a) where the recorded run crashed"
        t.seg Libos.pp_stop actual);
    check_sys t ~final:true;
    if t.seg < nsegs t - 1 then begin
      let k = t.seg + 1 in
      apply_pre t k;
      t.seg <- k;
      t.off <- 0;
      t.sys_seen <- [];
      if k mod t.anchor_every = 0 && not (Hashtbl.mem t.anchors k) then
        Hashtbl.replace t.anchors k (Engine.checkpoint t.machine)
    end
  end

type pos = { p_seg : int; p_off : int }

let cur_pos t = { p_seg = t.seg; p_off = t.off }

let pos_compare a b =
  if a.p_seg <> b.p_seg then compare a.p_seg b.p_seg
  else compare a.p_off b.p_off

(* Normalise (k, retired_k) to (k+1, 0) so positions compare on one grid. *)
let normalize t p =
  if p.p_seg < nsegs t - 1 && p.p_off = t.segs.(p.p_seg).retired then
    { p_seg = p.p_seg + 1; p_off = 0 }
  else p

let pos_of_time t target =
  let target = max 0 (min target t.total) in
  if target >= t.total then
    { p_seg = nsegs t - 1; p_off = t.segs.(nsegs t - 1).retired }
  else begin
    let k = ref 0 in
    while
      not
        (t.segs.(!k).retired > 0
        && target < t.segs.(!k).start_time + t.segs.(!k).retired)
    do
      incr k
    done;
    { p_seg = !k; p_off = target - t.segs.(!k).start_time }
  end

let forward t target =
  while t.seg < target.p_seg do
    advance t (t.segs.(t.seg).retired - t.off)
  done;
  advance t (target.p_off - t.off)

(* Move to an arbitrary position.  Going backward restores the nearest
   anchor at or below the target stop and forward-executes from there —
   the O(anchor interval) reverse-seek. *)
let goto t target =
  let target = normalize t target in
  let c = pos_compare target (cur_pos t) in
  if c > 0 then forward t target
  else if c < 0 then begin
    let rec find k =
      if Hashtbl.mem t.anchors k then k else find (max 0 (k - t.anchor_every))
    in
    let a = find (target.p_seg - (target.p_seg mod t.anchor_every)) in
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a Obs.Names.replay_anchor_restore;
    Engine.restore t.machine (Hashtbl.find t.anchors a);
    t.seg <- a;
    t.off <- 0;
    t.sys_seen <- [];
    forward t target
  end

let create ?(anchor_every = 8) (b : Bundle.t) =
  if anchor_every <= 0 then
    invalid_arg "Replay.create: anchor_every must be positive";
  let phys = Mem.Phys_mem.create ~recycle:false () in
  let machine = Libos.boot phys (Bundle.image b) in
  List.iter
    (fun (path, content) -> Libos.add_file machine ~path content)
    b.Bundle.files;
  Option.iter (Libos.set_stdin machine) b.Bundle.stdin;
  let segs = segments_of_log b.Bundle.log in
  let total = Array.fold_left (fun acc s -> acc + s.retired) 0 segs in
  let t =
    { machine;
      meta = b.Bundle.log.Log.meta;
      segs;
      total;
      anchor_every;
      anchors = Hashtbl.create 64;
      snaps = Hashtbl.create 64;
      seg = 0;
      off = 0;
      sys_seen = [];
      sys_count = 0;
      last_sys = None;
      bp_next = 0;
      bp_list = [] }
  in
  Libos.set_sys_hook machine
    (Some
       (fun number ret ->
         t.sys_seen <- (number, ret) :: t.sys_seen;
         t.sys_count <- t.sys_count + 1;
         t.last_sys <- Some (number, ret)));
  if Array.length segs > 0 then apply_pre t 0;
  Hashtbl.replace t.anchors 0 (Engine.checkpoint machine);
  t

(* {1 Breakpoints} *)

let add_bp t bp =
  let id = t.bp_next in
  t.bp_next <- id + 1;
  t.bp_list <- t.bp_list @ [ (id, bp) ];
  id

let remove_bp t id =
  let found = List.mem_assoc id t.bp_list in
  t.bp_list <- List.filter (fun (i, _) -> i <> id) t.bp_list;
  found

let bps t = t.bp_list

let find_bp t pred = List.find_opt (fun (_, b) -> pred b) t.bp_list

let has_fine_bps t =
  List.exists
    (fun (_, b) -> match b with Bp_pc _ | Bp_sys _ -> true | Bp_stop _ -> false)
    t.bp_list

(* {1 Motion} *)

(* Skip over zero-length segments (a crash before the first retirement):
   they are validated and their boundary actions applied, but hold no
   instruction to execute. *)
let rec skip_empty t =
  if (not (at_end t)) && t.segs.(t.seg).retired - t.off = 0 then begin
    advance t 0;
    skip_empty t
  end

let step t =
  if at_end t then End
  else begin
    skip_empty t;
    if at_end t then End
    else begin
      advance t 1;
      Stopped
    end
  end

let rstep t =
  let tm = time t in
  if tm = 0 then End
  else begin
    goto t (pos_of_time t (tm - 1));
    Stopped
  end

let seek t n =
  if nsegs t = 0 then End
  else begin
    let target = pos_of_time t n in
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:target.p_seg Obs.Names.replay_seek;
    goto t target;
    Stopped
  end

let seek_stop t k =
  if nsegs t = 0 then End
  else begin
    let k = max 0 (min k (nsegs t - 1)) in
    if Obs.Trace.enabled () then Obs.Trace.instant ~a:k Obs.Names.replay_seek;
    goto t { p_seg = k; p_off = 0 };
    Stopped
  end

let continue t =
  let fine = has_fine_bps t in
  let rec go () =
    if at_end t then End
    else if fine then begin
      let count0 = t.sys_count in
      match step t with
      | End -> End
      | _ -> (
        let rip = t.machine.Libos.cpu.Cpu.rip in
        match
          find_bp t (function
            | Bp_pc a -> a = rip
            | Bp_sys n -> (
              t.sys_count > count0
              && match t.last_sys with Some (num, _) -> num = n | None -> false)
            | Bp_stop n -> n = t.seg && t.off = 0)
        with
        | Some (id, b) -> Break (id, b)
        | None -> go ())
    end
    else begin
      advance t (t.segs.(t.seg).retired - t.off);
      if at_end t then End
      else
        match
          find_bp t (function
            | Bp_stop n -> n = t.seg && t.off = 0
            | Bp_pc _ | Bp_sys _ -> false)
        with
        | Some (id, b) -> Break (id, b)
        | None -> go ()
    end
  in
  if at_end t then End else go ()

(* Reverse-continue: scan stop segments backwards; each candidate segment
   is re-entered at its start (an anchored goto) and, when instruction-level
   breakpoints exist, stepped through to find the *last* hit strictly
   before the starting position. *)
let rcontinue t =
  if nsegs t = 0 then End
  else begin
    let start = cur_pos t in
    if pos_compare start { p_seg = 0; p_off = 0 } = 0 then End
    else begin
      let fine = has_fine_bps t in
      let before p = pos_compare (normalize t p) start < 0 in
      let rec scan k =
        if k < 0 then begin
          goto t { p_seg = 0; p_off = 0 };
          End
        end
        else begin
          let stop_hit =
            find_bp t (function
              | Bp_stop n -> n = k && before { p_seg = k; p_off = 0 }
              | Bp_pc _ | Bp_sys _ -> false)
          in
          if not fine then begin
            match stop_hit with
            | Some (id, b) ->
              goto t { p_seg = k; p_off = 0 };
              Break (id, b)
            | None -> scan (k - 1)
          end
          else begin
            let hi =
              if k = start.p_seg then start.p_off else t.segs.(k).retired
            in
            goto t { p_seg = k; p_off = 0 };
            let best = ref (Option.map (fun h -> ({ p_seg = k; p_off = 0 }, h)) stop_hit) in
            for o = 1 to hi do
              let count0 = t.sys_count in
              advance t 1;
              let here = normalize t { p_seg = k; p_off = o } in
              if before { p_seg = k; p_off = o } then begin
                let rip = t.machine.Libos.cpu.Cpu.rip in
                match
                  find_bp t (function
                    | Bp_pc a -> a = rip
                    | Bp_sys n -> (
                      t.sys_count > count0
                      && match t.last_sys with
                         | Some (num, _) -> num = n
                         | None -> false)
                    | Bp_stop _ -> false)
                with
                | Some h -> best := Some (here, h)
                | None -> ()
              end
            done;
            match !best with
            | Some (p, (id, b)) ->
              goto t p;
              Break (id, b)
            | None -> scan (k - 1)
          end
        end
      in
      scan start.p_seg
    end
  end

let read_mem t ~addr ~len =
  if len <= 0 then Some ""
  else
    match As.read_bytes t.machine.Libos.aspace ~addr ~len with
    | b -> Some (Bytes.to_string b)
    | exception As.Page_fault _ -> None
