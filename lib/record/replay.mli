(** The time-travel cursor: deterministic replay of a recorded run with
    bidirectional seeking.

    The cursor boots a fresh machine from the bundle's image and re-drives
    it through the log.  Forward motion executes the guest for real and
    validates every segment against the record (stop identity, retired
    count, the ordinary-syscall stream) — replay isn't trusted, it is
    checked.  Backward motion is the paper's snapshot machinery pointed at
    time: restore the nearest ancestor anchor (a lightweight checkpoint
    dropped every [anchor_every] stops as the cursor first passes) and
    forward-execute, so [rstep]/[rcontinue] cost O(anchor interval) guest
    instructions, never a from-scratch rerun.

    Scheduler restores recorded as [Resume] events are replayed from a
    table of checkpoints keyed by the recorded snapshot ids, re-captured
    as the cursor passes each [Capture] event; re-passing a capture
    replaces the entry with an equivalent checkpoint, which the
    generation discipline makes sound.

    Positions sit on two axes: [time] (global retired-instruction index)
    and [stop_index] (scheduler stops completed).  A position is always
    "inside" a stop segment, after the boundary actions that started it.

    After a {!Engine.Diverged} escape the cursor's machine state is
    unspecified; create a fresh cursor. *)

type t

val create : ?anchor_every:int -> Bundle.t -> t
(** Boot and position the cursor at time 0.  [anchor_every] (default 8)
    is the stop-index spacing of reverse-seek anchors.
    @raise Invalid_argument if [anchor_every <= 0]. *)

(** {1 Position} *)

val time : t -> int
val total_time : t -> int
val stop_index : t -> int
val segments : t -> int
val at_end : t -> bool
val meta : t -> string
val machine : t -> Os.Libos.t
val current_stop : t -> Log.stop option
(** The recorded stop that ends the current segment ([None] on an empty
    log). *)

(** {1 Breakpoints} *)

type bp =
  | Bp_pc of int   (** halt when rip reaches this address *)
  | Bp_sys of int  (** halt after an ordinary syscall with this number *)
  | Bp_stop of int (** halt at the start of this stop segment *)

val add_bp : t -> bp -> int
val remove_bp : t -> int -> bool
val bps : t -> (int * bp) list

type halt =
  | Stopped         (** completed the requested motion *)
  | Break of int * bp  (** hit breakpoint [id] *)
  | End             (** reached the log boundary (end going forward,
                        start going backward) *)

(** {1 Motion}

    All motion validates against the record and raises {!Engine.Diverged}
    on any departure. *)

val step : t -> halt
val rstep : t -> halt
val continue : t -> halt
val rcontinue : t -> halt
val seek : t -> int -> halt
(** [seek t n] moves to absolute time [n] (clamped to [0, total_time]). *)

val seek_stop : t -> int -> halt
(** [seek_stop t k] moves to the start of stop segment [k]. *)

val read_mem : t -> addr:int -> len:int -> string option
(** Guest memory at the cursor, [None] if any byte is unmapped. *)
