(** The recorder: accumulates a {!Log.t} while a live exploration runs.

    Attach it twice — {!probe} goes to [Core.Explorer.run ?probe] for the
    scheduler-boundary events, {!install} puts the ordinary-syscall hook
    on the machine — then run, then take {!log}.  Appends are per-segment
    and per-syscall, never per-instruction; with tracing enabled each
    append emits a static [record.append] instant (E13's cost rules). *)

type t

val create : ?fuel_per_step:int -> ?meta:string -> unit -> t
(** [fuel_per_step] (default 50M) must match the explorer's grant; it is
    stored in the log header.  [meta] is free-form provenance. *)

val probe : t -> Probe.t
val install : t -> Os.Libos.t -> unit
(** Install the ordinary-syscall hook on the machine about to be recorded
    (replaces any existing hook). *)

val events : t -> int
val log : t -> Log.t

val stop_code : Os.Libos.stop -> Log.stop
(** Render a live stop as its log representation (kill reasons become
    their pretty-printed strings).  Shared with the replayer's validator:
    a replayed stop matches iff its [stop_code] equals the recorded one. *)
