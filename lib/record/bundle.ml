type t = {
  origin : int;
  code : string;
  entry : int;
  source : string option;
  stdin : string option;
  files : (string * string) list;
  log : Log.t;
}

let magic = "LWRB"
let version = 1

let image t : Isa.Asm.image =
  { Isa.Asm.origin = t.origin; code = t.code; entry = t.entry; symbols = [] }

let of_image ?source ?stdin ?(files = []) (image : Isa.Asm.image) log =
  { origin = image.Isa.Asm.origin;
    code = image.Isa.Asm.code;
    entry = image.Isa.Asm.entry;
    source;
    stdin;
    files;
    log }

(* Reuse the log's primitive codec conventions: zigzag varints and
   length-prefixed strings.  An option is a 0/1 byte plus the payload. *)

let put_int buf n =
  let n = (n lsl 1) lxor (n asr 62) in
  let rec go n =
    if n land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go (n land max_int)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_opt buf = function
  | None -> Buffer.add_char buf '\000'
  | Some s ->
    Buffer.add_char buf '\001';
    put_string buf s

exception Short

type cursor = { s : string; mutable pos : int }

let get_int c =
  let rec go shift acc =
    if c.pos >= String.length c.s then raise Short;
    let b = Char.code c.s.[c.pos] in
    c.pos <- c.pos + 1;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let n = go 0 0 in
  (n lsr 1) lxor (- (n land 1))

let get_string c =
  let len = get_int c in
  if len < 0 || c.pos + len > String.length c.s then raise Short;
  let s = String.sub c.s c.pos len in
  c.pos <- c.pos + len;
  s

let get_opt c =
  if c.pos >= String.length c.s then raise Short;
  let tag = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  match tag with
  | 0 -> None
  | 1 -> Some (get_string c)
  | n -> raise (Failure (Printf.sprintf "bad option tag %d" n))

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  put_int buf t.origin;
  put_string buf t.code;
  put_int buf t.entry;
  put_opt buf t.source;
  put_opt buf t.stdin;
  put_int buf (List.length t.files);
  List.iter
    (fun (path, content) ->
      put_string buf path;
      put_string buf content)
    t.files;
  put_string buf (Log.encode t.log);
  Buffer.contents buf

let decode s =
  let mlen = String.length magic in
  if String.length s < mlen + 1 || String.sub s 0 mlen <> magic then
    Error "not a replay bundle (bad magic)"
  else begin
    let v = Char.code s.[mlen] in
    if v <> version then
      Error (Printf.sprintf "unsupported bundle version %d (expected %d)" v version)
    else begin
      let c = { s; pos = mlen + 1 } in
      match
        let origin = get_int c in
        let code = get_string c in
        let entry = get_int c in
        let source = get_opt c in
        let stdin = get_opt c in
        let nfiles = get_int c in
        if nfiles < 0 || nfiles > 1_000_000 then failwith "bad file count";
        let files =
          List.init nfiles (fun _ ->
              let path = get_string c in
              let content = get_string c in
              (path, content))
        in
        let log_bytes = get_string c in
        match Log.decode log_bytes with
        | Ok log -> Ok { origin; code; entry; source; stdin; files; log }
        | Error e -> Error (Log.error_to_string e)
      with
      | r -> r
      | exception Short -> Error "replay bundle truncated"
      | exception Failure msg -> Error ("replay bundle corrupt: " ^ msg)
    end
  end

let write ~path t =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (encode t))

let read ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> decode s
  | exception Sys_error msg -> Error msg
