type stop =
  | Guess of int
  | Guess_fail
  | Strategy of int
  | Hint of int
  | Exit of int
  | Kill of string
  | Crash of string

type event =
  | Capture of { snap : int }
  | Resume of { snap : int; rax : int }
  | Set_rax of int
  | Sys of { number : int; ret : int }
  | Eval of { retired : int; stop : stop }

type t = {
  fuel_per_step : int;
  meta : string;
  events : event list;
}

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated of { events : int }
  | Corrupt of { events : int; detail : string }

let magic = "LWRR"
let version = 1

(* {1 Primitive codec}

   Every integer is zigzag-mapped then LEB128-varint-packed (rax may be -1,
   syscall results are negative errnos, exit statuses are arbitrary);
   strings are a varint length plus raw bytes.  Reads go through a mutable
   cursor and raise [Short] past the end — [decode] turns that into the
   typed [Truncated] error with the count of complete events. *)

exception Short

let put_int buf n =
  let n = (n lsl 1) lxor (n asr 62) in
  let rec go n =
    if n land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go (n land max_int)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

type cursor = { s : string; mutable pos : int }

let get_int c =
  let rec go shift acc =
    if c.pos >= String.length c.s then raise Short;
    let b = Char.code c.s.[c.pos] in
    c.pos <- c.pos + 1;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let n = go 0 0 in
  (n lsr 1) lxor (- (n land 1))

let get_string c =
  let len = get_int c in
  if len < 0 || c.pos + len > String.length c.s then raise Short;
  let s = String.sub c.s c.pos len in
  c.pos <- c.pos + len;
  s

(* {1 Events} *)

let put_stop buf = function
  | Guess n -> Buffer.add_char buf '\000'; put_int buf n
  | Guess_fail -> Buffer.add_char buf '\001'
  | Strategy s -> Buffer.add_char buf '\002'; put_int buf s
  | Hint d -> Buffer.add_char buf '\003'; put_int buf d
  | Exit s -> Buffer.add_char buf '\004'; put_int buf s
  | Kill m -> Buffer.add_char buf '\005'; put_string buf m
  | Crash m -> Buffer.add_char buf '\006'; put_string buf m

exception Bad_tag of string

let get_stop c =
  if c.pos >= String.length c.s then raise Short;
  let tag = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  match tag with
  | 0 -> Guess (get_int c)
  | 1 -> Guess_fail
  | 2 -> Strategy (get_int c)
  | 3 -> Hint (get_int c)
  | 4 -> Exit (get_int c)
  | 5 -> Kill (get_string c)
  | 6 -> Crash (get_string c)
  | n -> raise (Bad_tag (Printf.sprintf "stop tag %d" n))

let put_event buf = function
  | Capture { snap } -> Buffer.add_char buf '\001'; put_int buf snap
  | Resume { snap; rax } ->
    Buffer.add_char buf '\002';
    put_int buf snap;
    put_int buf rax
  | Set_rax v -> Buffer.add_char buf '\003'; put_int buf v
  | Sys { number; ret } ->
    Buffer.add_char buf '\004';
    put_int buf number;
    put_int buf ret
  | Eval { retired; stop } ->
    Buffer.add_char buf '\005';
    put_int buf retired;
    put_stop buf stop

let get_event c =
  let tag = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  match tag with
  | 1 -> Capture { snap = get_int c }
  | 2 ->
    let snap = get_int c in
    let rax = get_int c in
    Resume { snap; rax }
  | 3 -> Set_rax (get_int c)
  | 4 ->
    let number = get_int c in
    let ret = get_int c in
    Sys { number; ret }
  | 5 ->
    let retired = get_int c in
    let stop = get_stop c in
    Eval { retired; stop }
  | n -> raise (Bad_tag (Printf.sprintf "event tag %d" n))

let encode t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  put_int buf t.fuel_per_step;
  put_string buf t.meta;
  List.iter (put_event buf) t.events;
  Buffer.contents buf

let decode s =
  let mlen = String.length magic in
  if String.length s < mlen + 1 then Error Bad_magic
  else if String.sub s 0 mlen <> magic then Error Bad_magic
  else begin
    let v = Char.code s.[mlen] in
    if v <> version then Error (Bad_version v)
    else begin
      let c = { s; pos = mlen + 1 } in
      match
        let fuel_per_step = get_int c in
        let meta = get_string c in
        let events = ref [] in
        let count = ref 0 in
        (try
           while c.pos < String.length s do
             events := get_event c :: !events;
             incr count
           done;
           Ok { fuel_per_step; meta; events = List.rev !events }
         with
        | Short -> Error (Truncated { events = !count })
        | Bad_tag detail -> Error (Corrupt { events = !count; detail }))
      with
      | r -> r
      | exception Short -> Error (Truncated { events = 0 })
      | exception Bad_tag detail -> Error (Corrupt { events = 0; detail })
    end
  end

let error_to_string = function
  | Bad_magic -> "not a record log (bad magic)"
  | Bad_version v -> Printf.sprintf "unsupported record-log version %d (expected %d)" v version
  | Truncated { events } ->
    Printf.sprintf "record log truncated mid-event after %d complete events" events
  | Corrupt { events; detail } ->
    Printf.sprintf "record log corrupt after %d events: unknown %s" events detail

let pp_stop fmt = function
  | Guess n -> Format.fprintf fmt "guess(%d)" n
  | Guess_fail -> Format.pp_print_string fmt "guess_fail"
  | Strategy s -> Format.fprintf fmt "guess_strategy(%d)" s
  | Hint d -> Format.fprintf fmt "guess_hint(%d)" d
  | Exit s -> Format.fprintf fmt "exited(%d)" s
  | Kill m -> Format.fprintf fmt "killed: %s" m
  | Crash m -> Format.fprintf fmt "crashed: %s" m

let pp_event fmt = function
  | Capture { snap } -> Format.fprintf fmt "capture snap=%d" snap
  | Resume { snap; rax } -> Format.fprintf fmt "resume snap=%d rax=%d" snap rax
  | Set_rax v -> Format.fprintf fmt "set_rax %d" v
  | Sys { number; ret } -> Format.fprintf fmt "sys %d -> %d" number ret
  | Eval { retired; stop } -> Format.fprintf fmt "eval retired=%d %a" retired pp_stop stop
