(** The shared deterministic re-execution engine.

    Both consumers of "run this guest again and get the same run" sit on
    top of this module: {!Core.Reclaim} re-derives truncated snapshot
    payloads with {!run_to_publish}, and {!Replay} drives a time-travel
    cursor with {!run_until_retired} over {!checkpoint}s.  Keeping them on
    one engine is the point — reconstruction and replay-debugging must not
    grow divergent ideas of what re-execution means. *)

exception Diverged of string
(** Replay departed from the recorded run: a stop fired where the original
    kept executing, or execution stalled without retiring instructions. *)

type checkpoint
(** A lightweight whole-machine checkpoint: the register file, an O(1)
    immutable address-space snapshot, and the persistent OS state — the
    same triple {!Core.Snapshot} wraps, minus the tree bookkeeping.  Valid
    for the machine it was taken from, indefinitely (the generation
    discipline in [Addr_space] keeps captured frames immutable). *)

val checkpoint : Os.Libos.t -> checkpoint
val restore : Os.Libos.t -> checkpoint -> unit

val run_to_publish : Os.Libos.t -> fuel:int -> Os.Libos.stop
(** Run the guest, auto-resuming the stops that never reach a scheduler
    during re-execution — [Guess_hint] (rax←0) and [Guess_strategy]
    (rax←1) — until a publishable stop: [Guess], [Guess_fail], [Exited]
    or [Killed].  Each resumed leg gets a fresh [fuel] grant, matching the
    live scheduler's per-stop accounting. *)

val run_until_retired : Os.Libos.t -> target:int -> Os.Libos.stop option
(** Run the guest until its retired-instruction counter reaches [target]
    (an absolute value of [cpu.retired]).  Fuel is granted in
    [target - retired] slices, so execution can never overshoot: an
    instruction costs one fuel and a page-fault service costs one more, so
    fuel always runs dry at or before the target retirement.  Returns
    [Some stop] when a non-fuel stop fires exactly at the target, [None]
    when the target is reached at a fuel boundary.
    @raise Diverged on a stop before the target, or if execution stalls. *)
