module As = Mem.Addr_space
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg
module Libos = Os.Libos

exception Diverged of string

type checkpoint = {
  ck_regs : Cpu.saved;
  ck_mem : As.snapshot;
  ck_os : Libos.os_state;
}

let checkpoint (m : Libos.t) =
  { ck_regs = Cpu.save m.Libos.cpu;
    ck_mem = As.snapshot m.Libos.aspace;
    ck_os = Libos.os_capture m }

let restore (m : Libos.t) ck =
  Cpu.load m.Libos.cpu ck.ck_regs;
  As.restore m.Libos.aspace ck.ck_mem;
  Libos.os_restore m ck.ck_os

let run_to_publish (m : Libos.t) ~fuel =
  let rec step () =
    match Libos.run m ~fuel with
    | Libos.Guess_hint _ ->
      Cpu.set m.Libos.cpu Reg.rax 0;
      step ()
    | Libos.Guess_strategy _ ->
      Cpu.set m.Libos.cpu Reg.rax 1;
      step ()
    | stop -> stop
  in
  step ()

let run_until_retired (m : Libos.t) ~target =
  let cpu = m.Libos.cpu in
  let rec go stalls =
    let cur = cpu.Cpu.retired in
    if cur >= target then None
    else
      match Libos.run m ~fuel:(target - cur) with
      | Libos.Killed Libos.Fuel_exhausted ->
        let cur' = cpu.Cpu.retired in
        if cur' >= target then None
        else if cur' = cur then begin
          (* A guest-set sys_timeout can clamp the grant and an instruction
             may need a few fault services before retiring, but dozens of
             fuel-only rounds with zero retirement means replay is stuck. *)
          if stalls >= 64 then
            raise
              (Diverged
                 (Printf.sprintf
                    "no forward progress at instruction %d (target %d)" cur'
                    target));
          go (stalls + 1)
        end
        else go 0
      | stop ->
        let cur' = cpu.Cpu.retired in
        if cur' >= target then Some stop
        else
          raise
            (Diverged
               (Format.asprintf
                  "premature stop %a at instruction %d (target %d)"
                  Libos.pp_stop stop cur' target))
  in
  go 0
