(** The record log: one event per scheduler-visible action of a recorded
    exploration.

    The guest machine itself is deterministic — the libOS recomputes every
    syscall result from rolled-back persistent state — so what the log
    captures is the nondeterminism *above* the vmexit boundary: which
    snapshot the scheduler restored and what it put in [rax] (the analogue
    of rr's scheduling decisions), plus enough per-segment bookkeeping
    (retired-instruction counts, stop identity, the ordinary-syscall
    stream) for the replayer to validate, instruction by instruction, that
    a re-execution really is the recorded run.

    Events appear in strict chronological order.  An [Eval] closes a
    segment of guest execution; [Capture]/[Resume]/[Set_rax] between two
    [Eval]s are the scheduler's boundary actions, and [Sys] events are the
    ordinary syscalls the closing segment performed. *)

type stop =
  | Guess of int           (** [sys_guess n] *)
  | Guess_fail
  | Strategy of int        (** [sys_guess_strategy] with the strategy id *)
  | Hint of int            (** [sys_guess_hint dist] *)
  | Exit of int            (** exit status *)
  | Kill of string         (** rendered {!Os.Libos.reason} *)
  | Crash of string        (** host exception ended the segment (injected
                               fault, out of frames) *)

type event =
  | Capture of { snap : int }           (** snapshot [snap] captured here *)
  | Resume of { snap : int; rax : int } (** [snap] restored; [rax >= 0] is
                                            delivered to the guest, [-1]
                                            restores without touching it *)
  | Set_rax of int                      (** in-place rax rewrite (hint
                                            resume, strategy-scope open) *)
  | Sys of { number : int; ret : int }  (** ordinary syscall + its result *)
  | Eval of { retired : int; stop : stop }
      (** one guest-execution segment: instructions retired and why it
          stopped *)

type t = {
  fuel_per_step : int;  (** scheduler fuel grant the run was recorded with *)
  meta : string;        (** free-form provenance ("fuzz seed 17", ...) *)
  events : event list;
}

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated of { events : int }
      (** the file ends mid-event; [events] complete events precede the cut *)
  | Corrupt of { events : int; detail : string }

val version : int

val encode : t -> string
(** Versioned binary encoding: "LWRR" magic, a version byte, then
    varint-packed events.  [decode (encode t) = Ok t]. *)

val decode : string -> (t, error) result

val error_to_string : error -> string
val pp_stop : Format.formatter -> stop -> unit
val pp_event : Format.formatter -> event -> unit
