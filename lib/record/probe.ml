(* The explorer-side recording hook: a record of closures the scheduler
   invokes at every replay-relevant action.  Defined here (below [core] in
   the layering) so [Core.Explorer] can accept a [?probe] without the
   record library depending on the scheduler.  All call sites are
   per-segment, not per-instruction, and guard with a [None] check, so an
   unprobed run pays one branch per scheduler stop. *)

type t = {
  eval : retired:int -> Os.Libos.stop -> unit;
      (* one guest-execution segment ended: instructions retired and why *)
  crash : retired:int -> string -> unit;
      (* a host exception ended the segment (injected fault, out of frames) *)
  capture : snap:int -> unit;
      (* the scheduler captured snapshot [snap] at the current state *)
  resume : snap:int -> rax:int -> unit;
      (* the scheduler restored [snap]; [rax >= 0] was delivered, [-1]
         means the restore left the captured rax in place *)
  set_rax : int -> unit;
      (* in-place rax rewrite without a restore (hint resume, strategy
         scope open) *)
}
