module As = Mem.Addr_space

type t = {
  id : int;
  regs : Vcpu.Cpu.saved;
  mem : As.snapshot;
  os : Os.Libos.os_state;
  parent : t option;
  depth : int;
}

(* Snapshot ids are allocated per exploration run, not from a process-global
   counter: two runs (possibly concurrent — the domains backend captures
   from several domains at once) never share an allocator, and within a run
   the counter is atomic so captures racing across domains still get
   distinct ids. *)
type ids = int Atomic.t

let ids () = Atomic.make 0

let capture ~ids ?parent ~depth (machine : Os.Libos.t) =
  let id = Atomic.fetch_and_add ids 1 in
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:id
      ~b:(match parent with Some p -> p.id | None -> -1)
      Obs.Names.snap_capture;
  { id;
    regs = Vcpu.Cpu.save machine.cpu;
    mem = As.snapshot machine.aspace;
    os = Os.Libos.os_capture machine;
    parent;
    depth }

let restore (machine : Os.Libos.t) t =
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:t.id Obs.Names.snap_restore;
  Vcpu.Cpu.load machine.cpu t.regs;
  As.restore machine.aspace t.mem;
  Os.Libos.os_restore machine t.os

let pages t = As.snapshot_pages t.mem

let distinct_frames snaps = As.distinct_frames (List.map (fun s -> s.mem) snaps)

let delta_pages a b = As.delta_pages a.mem b.mem

let rec lineage t =
  t :: (match t.parent with None -> [] | Some p -> lineage p)
