module As = Mem.Addr_space

type t = {
  id : int;
  regs : Vcpu.Cpu.saved;
  mem : As.snapshot;
  os : Os.Libos.os_state;
  parent : t option;
  depth : int;
  (* Explicit-release bookkeeping (see [release_ext]).  [ext_refs] counts
     frontier extensions (plus pins) that may still restore this snapshot;
     [child_refs] counts live child snapshots whose maps share our frames.
     Both are plain ints: a snapshot's refcounts are only ever mutated by
     the domain that owns it — single-threaded schedulers trivially, and
     the domains backend routes cross-domain releases through per-domain
     mailboxes back to the owner ([Parallel.Mailbox]). *)
  mutable ext_refs : int;
  mutable child_refs : int;
  mutable freed : bool;
  mutable adopted : bool;
      (* restored via [restore_adopting]: its frames now change in place,
         so restoring it again would observe the adopter's writes *)
}

(* Snapshot ids are allocated per exploration run, not from a process-global
   counter: two runs (possibly concurrent — the domains backend captures
   from several domains at once) never share an allocator, and within a run
   the counter is atomic so captures racing across domains still get
   distinct ids. *)
type ids = int Atomic.t

let ids () = Atomic.make 0

let capture ~ids ?parent ~depth (machine : Os.Libos.t) =
  let id = Atomic.fetch_and_add ids 1 in
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:id
      ~b:(match parent with Some p -> p.id | None -> -1)
      Obs.Names.snap_capture;
  (match parent with Some p -> p.child_refs <- p.child_refs + 1 | None -> ());
  { id;
    regs = Vcpu.Cpu.save machine.cpu;
    mem = As.snapshot machine.aspace;
    os = Os.Libos.os_capture machine;
    parent;
    depth;
    ext_refs = 0;
    child_refs = 0;
    freed = false;
    adopted = false }

let restore (machine : Os.Libos.t) t =
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:t.id Obs.Names.snap_restore;
  Vcpu.Cpu.load machine.cpu t.regs;
  As.restore machine.aspace t.mem;
  Os.Libos.os_restore machine t.os

(* {1 Explicit release}

   A snapshot is dead — its private frames reusable — exactly when no
   frontier extension can restore it any more ([ext_refs] = 0) and no child
   snapshot shares its frames ([child_refs] = 0).  Death cascades upward: a
   parent whose extensions all drained may only have been kept alive by
   us.  Roots (no parent) are never freed: there is no base to compute
   their delta against, and the scheduler restores them after exhaustion.

   The counts are advisory in one direction only: failing to release leaks
   nothing (the GC is still underneath), but releasing twice would free
   live frames — which is why every transition here is guarded. *)

let retain ?(n = 1) t = t.ext_refs <- t.ext_refs + n

let sole_extension t =
  t.ext_refs = 1 && t.child_refs = 0 && t.parent <> None
  && not t.freed && not t.adopted

let adopted t = t.adopted

let rec try_free ~phys t =
  if
    (not t.freed) && t.ext_refs <= 0 && t.child_refs = 0
    && Mem.Phys_mem.recycling phys
  then
    match t.parent with
    | None -> ()
    | Some p ->
      t.freed <- true;
      ignore (As.release_snapshot ~phys ~parent:p.mem t.mem);
      p.child_refs <- p.child_refs - 1;
      try_free ~phys p

let release_ext ~phys t =
  t.ext_refs <- t.ext_refs - 1;
  try_free ~phys t

let free_delta ~phys ~parent t =
  if t.freed then 0
  else begin
    t.freed <- true;
    As.release_snapshot ~phys ~parent:parent.mem t.mem
  end

let restore_adopting (machine : Os.Libos.t) t =
  match t.parent with
  | None -> invalid_arg "Snapshot.restore_adopting: snapshot has no parent"
  | Some p ->
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:t.id Obs.Names.snap_restore;
    Vcpu.Cpu.load machine.cpu t.regs;
    ignore (As.restore_adopt machine.aspace ~parent:p.mem t.mem);
    Os.Libos.os_restore machine t.os;
    t.adopted <- true

let pages t = As.snapshot_pages t.mem

let distinct_frames snaps = As.distinct_frames (List.map (fun s -> s.mem) snaps)

let delta_pages a b = As.delta_pages a.mem b.mem

let rec lineage t =
  t :: (match t.parent with None -> [] | Some p -> lineage p)
