(* Multi-tenant snapshot service: N independent Service-style sessions
   multiplexed over ONE shared physical memory.

   The robustness contract, in one sentence: a misbehaving tenant — guest
   crash, fuel/deadline overrun, frame-budget blowout, injected allocation
   fault — is contained to its own session, demoted first under pressure,
   and evicted if incompressible, while every other tenant's published
   candidates stay bit-identical resumable.

   Mechanisms, and where each lives:

   - {e sharing}: same-image tenants boot through the content-addressed
     dedup table ([Phys_mem.dedup_frame]); read-only code pages are one
     frame pool-wide, COW'd private on first divergence under the same
     generation discipline that makes snapshots sound.
   - {e attribution}: each tenant allocates under its own
     [Phys_mem.fresh_account], so the pool can ask exactly how many live
     frames any tenant holds ([Phys_mem.account_frames_live]).
   - {e two-level pressure}: the pool owns the allocator's pressure
     handler.  Level 1 sheds the OFFENDER — the tenant whose allocation
     tripped the watermark (it is the one running).  Level 2, only if the
     mark is still exceeded, sheds the remaining tenants least-recently-
     scheduled first.  Both levels demote payloads through the tiered
     [Reclaim] store (allocation-free), never truncate.
   - {e admission control}: past the high watermark (or the tenant cap)
     a new boot is queued with exponential backoff, or rejected when the
     queue is full — allocations mid-resume never fail on behalf of an
     over-eager admit.
   - {e fair scheduling}: one resume per tenant per round (a run queue a
     tenant re-enters at the back while it has work), with a per-resume
     instruction deadline enforced through the same fuel bound
     [sys_timeout] uses.
   - {e containment}: [Service.advance] already converts an allocation
     failure mid-step into a [Crashed] outcome for that session only;
     the pool classifies the crash (deadline vs fault vs allocation),
     retires the tenant, and returns its dedup references. *)

module Libos = Os.Libos
module Phys = Mem.Phys_mem

type id = int

type state =
  | Running
  | Crashed of string
  | Evicted of string
  | Retired

type tenant = {
  id : id;
  account : int;
  svc : Service.t;
  mutable st : state;
  mutable last_tick : int;
  mutable resumes : int;
  mutable queued_up : bool; (* member of the run queue *)
  requests : (Service.ref_ * int * string option) Queue.t;
}

type pending_boot = {
  p_image : Isa.Asm.image;
  p_files : (string * string) list;
  p_stdin : string option;
  mutable retry_at : int;
  mutable backoff : int;
}

type t = {
  phys : Phys.t;
  fuel_per_step : int;
  spill_threshold : int option;
  frame_budget : int;
  fuel_budget : int;
  deadline : int;
  max_tenants : int;
  queue_limit : int;
  dedup : bool;
  tenants : (id, tenant) Hashtbl.t;
  mutable next_id : int;
  mutable tick : int;
  run_queue : id Queue.t;
  mutable pending : pending_boot list; (* FIFO; admitted from the head *)
  mutable running : tenant option;     (* the pressure offender *)
  (* counters *)
  mutable admits : int;
  mutable rejects : int;
  mutable queued_boots : int;
  mutable deadline_kills : int;
  mutable budget_evictions : int;
  mutable fuel_evictions : int;
  mutable crashes : int;
  mutable pressure_level2 : int;
}

type admission =
  | Admitted of id * Service.outcome
  | Queued of int
  | Rejected

(* {1 Pressure} *)

let live_tenant_count t =
  Hashtbl.fold (fun _ tn n -> if tn.st = Running then n + 1 else n) t.tenants 0

(* Level 1: the offender is whoever is allocating — the running tenant, or
   the booting one (admission already gated on the watermark, so a boot
   that trips pressure is squeezed like anyone else).  Level 2: remaining
   tenants, least-recently-scheduled first.  Demotion only — reads frame
   bytes, allocates nothing, so this is legal inside [Phys_mem.alloc]. *)
let pressure t () =
  (match t.running with
  | Some tn when tn.st = Running -> ignore (Service.shed tn.svc)
  | Some _ | None -> ());
  if not (Phys.below_watermark t.phys) then begin
    t.pressure_level2 <- t.pressure_level2 + 1;
    let others =
      Hashtbl.fold
        (fun _ tn acc ->
          match t.running with
          | Some r when r.id = tn.id -> acc
          | _ -> if tn.st = Running then tn :: acc else acc)
        t.tenants []
    in
    let lru = List.sort (fun a b -> compare a.last_tick b.last_tick) others in
    List.iter
      (fun tn ->
        if not (Phys.below_watermark t.phys) then ignore (Service.shed tn.svc))
      lru
  end

let create ?(capacity = 0) ?spill_threshold ?(fuel_per_step = 50_000_000)
    ?(frame_budget = 0) ?(fuel_budget = 0) ?(deadline = 0) ?(max_tenants = 0)
    ?(queue_limit = 64) ?(dedup = true) () =
  let phys = Phys.create ~capacity ~track_live:true () in
  let t =
    { phys;
      fuel_per_step;
      spill_threshold;
      frame_budget;
      fuel_budget;
      deadline;
      max_tenants;
      queue_limit;
      dedup;
      tenants = Hashtbl.create 64;
      next_id = 0;
      tick = 0;
      run_queue = Queue.create ();
      pending = [];
      running = None;
      admits = 0;
      rejects = 0;
      queued_boots = 0;
      deadline_kills = 0;
      budget_evictions = 0;
      fuel_evictions = 0;
      crashes = 0;
      pressure_level2 = 0 }
  in
  if capacity > 0 then Phys.set_pressure_handler phys (Some (pressure t));
  t

(* {1 Teardown} *)

(* Retire a tenant's footprint: compress its candidate payloads out of the
   frame pool and return its dedup-table references.  The service record
   stays (clients may still query state and counters); its remaining
   frames become unreachable and drain back through the GC finalisers. *)
let teardown_tenant tn st =
  if tn.st = Running then begin
    tn.st <- st;
    Queue.clear tn.requests;
    ignore (Service.demote_all tn.svc);
    ignore (Service.teardown tn.svc);
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:tn.id Obs.Names.tenancy_evict
  end

let kill t id =
  match Hashtbl.find_opt t.tenants id with
  | None -> invalid_arg "Tenancy.kill: unknown tenant"
  | Some tn -> teardown_tenant tn Retired

(* {1 Admission} *)

let admissible t =
  (t.max_tenants = 0 || live_tenant_count t < t.max_tenants)
  && (Phys.capacity t.phys = 0 || Phys.below_watermark t.phys)

let admit t image files stdin =
  let id = t.next_id in
  t.next_id <- id + 1;
  let account = Phys.fresh_account t.phys in
  let fuel_per_step =
    if t.deadline > 0 then min t.fuel_per_step t.deadline else t.fuel_per_step
  in
  let svc, first =
    Service.boot ~fuel_per_step ?spill_threshold:t.spill_threshold ~files
      ?stdin ~phys:t.phys ~manage_pressure:false ~dedup:t.dedup ~account image
  in
  let tn =
    { id;
      account;
      svc;
      st = Running;
      last_tick = t.tick;
      resumes = 0;
      queued_up = false;
      requests = Queue.create () }
  in
  Hashtbl.add t.tenants id tn;
  t.admits <- t.admits + 1;
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:id ~b:(live_tenant_count t) Obs.Names.tenancy_admit;
  (* A boot that crashed on arrival (e.g. allocation failure despite the
     admission gate) is contained exactly like a crashed resume. *)
  (match first with
  | Service.Crashed msg ->
    t.crashes <- t.crashes + 1;
    teardown_tenant tn (Crashed msg)
  | _ -> ());
  (id, first)

let boot ?(files = []) ?stdin t image =
  if admissible t then begin
    let id, first = admit t image files stdin in
    Admitted (id, first)
  end
  else if List.length t.pending >= t.queue_limit then begin
    t.rejects <- t.rejects + 1;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:(live_tenant_count t) Obs.Names.tenancy_reject;
    Rejected
  end
  else begin
    t.pending <-
      t.pending
      @ [ { p_image = image;
            p_files = files;
            p_stdin = stdin;
            retry_at = t.tick + 1;
            backoff = 1 } ];
    t.queued_boots <- t.queued_boots + 1;
    let pos = List.length t.pending in
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:pos Obs.Names.tenancy_queue;
    Queued pos
  end

(* Retry queued boots, oldest first, stopping at the first that is not yet
   due or still inadmissible (FIFO: nobody jumps the queue).  An attempt
   blocked by pressure doubles its backoff. *)
let pump t =
  t.tick <- t.tick + 1;
  let admitted = ref [] in
  let rec go () =
    match t.pending with
    | [] -> ()
    | head :: rest ->
      if head.retry_at > t.tick then ()
      else if admissible t then begin
        t.pending <- rest;
        let id, first = admit t head.p_image head.p_files head.p_stdin in
        admitted := (id, first) :: !admitted;
        go ()
      end
      else begin
        head.backoff <- head.backoff * 2;
        head.retry_at <- t.tick + head.backoff
      end
  in
  go ();
  List.rev !admitted

(* {1 Scheduling} *)

let enqueue_run t tn =
  if (not tn.queued_up) && tn.st = Running && not (Queue.is_empty tn.requests)
  then begin
    tn.queued_up <- true;
    Queue.push tn.id t.run_queue
  end

let post t id r ~choice ?stdin () =
  match Hashtbl.find_opt t.tenants id with
  | None -> invalid_arg "Tenancy.post: unknown tenant"
  | Some tn ->
    if tn.st <> Running then false
    else begin
      Queue.push (r, choice, stdin) tn.requests;
      enqueue_run t tn;
      true
    end

let next_tenant t = Queue.peek_opt t.run_queue

(* Post-step police work, in degradation order: classify a crash; then the
   cumulative fuel budget (cheap: the vCPU's retired counter is monotone —
   snapshots do not save it); then the frame budget — demote everything
   the tenant holds, collect so the finaliser-driven accounting catches
   up, and evict only if the tenant is still over (incompressible). *)
let police t tn outcome =
  (match (outcome : Service.outcome) with
  | Crashed msg ->
    (match Service.last_crash_reason tn.svc with
    | Some Libos.Fuel_exhausted when t.deadline > 0 ->
      t.deadline_kills <- t.deadline_kills + 1;
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~a:tn.id Obs.Names.tenancy_deadline_kill
    | _ -> ());
    t.crashes <- t.crashes + 1;
    teardown_tenant tn (Crashed msg)
  | Ready _ | Finished _ | Failed _ -> ());
  if tn.st = Running && t.fuel_budget > 0
     && (Service.machine tn.svc).Libos.cpu.Vcpu.Cpu.retired > t.fuel_budget
  then begin
    t.fuel_evictions <- t.fuel_evictions + 1;
    teardown_tenant tn (Evicted "fuel budget")
  end;
  if tn.st = Running && t.frame_budget > 0
     && Phys.account_frames_live t.phys tn.account > t.frame_budget
  then begin
    ignore (Service.demote_all tn.svc);
    Service.flush_spills tn.svc;
    (* finalisers registered during one major cycle run as part of the
       next; two collections make "unreachable now" visible in the
       account before we judge the tenant incompressible *)
    Gc.full_major ();
    Gc.full_major ();
    if Phys.account_frames_live t.phys tn.account > t.frame_budget then begin
      t.budget_evictions <- t.budget_evictions + 1;
      teardown_tenant tn (Evicted "frame budget")
    end
  end

let rec step t =
  match Queue.take_opt t.run_queue with
  | None -> None
  | Some id ->
    t.tick <- t.tick + 1;
    let tn = Hashtbl.find t.tenants id in
    tn.queued_up <- false;
    if tn.st <> Running || Queue.is_empty tn.requests then step t
    else begin
      let r, choice, stdin = Queue.pop tn.requests in
      tn.last_tick <- t.tick;
      tn.resumes <- tn.resumes + 1;
      t.running <- Some tn;
      let outcome =
        match Service.resume tn.svc r ~choice ?stdin () with
        | o -> t.running <- None; o
        | exception e -> t.running <- None; raise e
      in
      police t tn outcome;
      enqueue_run t tn;
      Some (id, outcome)
    end

(* {1 Introspection} *)

let phys t = t.phys
let service t id =
  match Hashtbl.find_opt t.tenants id with
  | None -> invalid_arg "Tenancy.service: unknown tenant"
  | Some tn -> tn.svc

let state t id =
  Option.map (fun tn -> tn.st) (Hashtbl.find_opt t.tenants id)

let tenant_count t = Hashtbl.length t.tenants
let live_tenants t = live_tenant_count t
let tenant_frames t id =
  match Hashtbl.find_opt t.tenants id with
  | None -> 0
  | Some tn -> Phys.account_frames_live t.phys tn.account

let resumes_of t id =
  match Hashtbl.find_opt t.tenants id with
  | None -> 0
  | Some tn -> tn.resumes

let pending_boots t = List.length t.pending
let admits t = t.admits
let rejects t = t.rejects
let queued_boots t = t.queued_boots
let deadline_kills t = t.deadline_kills
let budget_evictions t = t.budget_evictions
let fuel_evictions t = t.fuel_evictions
let crashes t = t.crashes
let pressure_level2 t = t.pressure_level2

let dedup_ratio t =
  let entries = Phys.dedup_entries t.phys in
  if entries = 0 then 1.0
  else float_of_int (Phys.dedup_refs t.phys) /. float_of_int entries
